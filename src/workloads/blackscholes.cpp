#include "workloads/blackscholes.hpp"

#include <cmath>

namespace rfs::workloads {

double cndf(double x) {
  // Abramowitz & Stegun 26.2.17, the approximation PARSEC uses.
  const bool negative = x < 0.0;
  if (negative) x = -x;
  const double k = 1.0 / (1.0 + 0.2316419 * x);
  const double poly =
      k * (0.319381530 +
           k * (-0.356563782 + k * (1.781477937 + k * (-1.821255978 + k * 1.330274429))));
  const double pdf = std::exp(-0.5 * x * x) / std::sqrt(2.0 * M_PI);
  double cnd = 1.0 - pdf * poly;
  return negative ? 1.0 - cnd : cnd;
}

double price_option(const OptionData& opt) {
  const double s = opt.spot;
  const double k = opt.strike;
  const double r = opt.rate;
  const double v = opt.volatility;
  const double t = opt.time;
  const double sqrt_t = std::sqrt(t);
  const double d1 = (std::log(s / k) + (r + 0.5 * v * v) * t) / (v * sqrt_t);
  const double d2 = d1 - v * sqrt_t;
  const double discounted_k = k * std::exp(-r * t);
  if (opt.type == 0) {  // call
    return s * cndf(d1) - discounted_k * cndf(d2);
  }
  return discounted_k * cndf(-d2) - s * cndf(-d1);  // put
}

void price_all(std::span<const OptionData> options, std::span<float> prices) {
  for (std::size_t i = 0; i < options.size() && i < prices.size(); ++i) {
    prices[i] = static_cast<float>(price_option(options[i]));
  }
}

std::vector<OptionData> generate_options(std::size_t count, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<OptionData> options(count);
  for (auto& o : options) {
    o.spot = static_cast<float>(rng.uniform(50.0, 150.0));
    o.strike = static_cast<float>(rng.uniform(50.0, 150.0));
    o.rate = static_cast<float>(rng.uniform(0.01, 0.08));
    o.volatility = static_cast<float>(rng.uniform(0.1, 0.6));
    o.time = static_cast<float>(rng.uniform(0.1, 2.0));
    o.type = rng.bernoulli(0.5) ? 1 : 0;
  }
  return options;
}

}  // namespace rfs::workloads

// Batch-cluster utilization simulator for Fig. 2.
//
// The paper samples the Piz Daint supercomputer through SLURM at a
// one-minute interval for a week, showing (a) a bursty 0-50% idle-CPU
// rate and (b) 80-95% free memory. We cannot query Piz Daint, so this
// module implements the substrate that produces such traces: a batch
// scheduler (FCFS + EASY backfill) fed by a synthetic job mix with
// heavy-tailed sizes and durations and low memory intensity — the
// well-documented characteristics of HPC workloads the paper cites.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "common/units.hpp"

namespace rfs::workloads {

struct ClusterConfig {
  unsigned nodes = 1000;
  unsigned cores_per_node = 36;
  double memory_per_node_gb = 64.0;

  Duration horizon = 7ull * 24 * 3600 * 1'000'000'000ull;  // one week
  Duration sample_interval = 60_s;                          // SLURM poll rate

  /// Job mix: inter-arrival exponential, node counts heavy-tailed,
  /// durations log-normal (minutes to many hours), memory use low.
  /// The arrival rate is derived from the target utilization so the same
  /// config scales to any cluster size (Piz Daint runs at 80-94%).
  double target_utilization = 0.82;
  double lognormal_duration_mu = 7.6;    // median ~ 33 min
  double lognormal_duration_sigma = 1.4;
  double mean_memory_fraction = 0.17;    // HPC jobs leave ~3/4 memory idle

  /// Samples collected before this point are discarded (fill transient).
  Duration warmup = 12ull * 3600 * 1'000'000'000ull;
};

struct UtilizationSample {
  Time at = 0;
  double idle_cpu_pct = 0.0;
  double free_memory_pct = 0.0;
  std::size_t queued_jobs = 0;
  std::size_t running_jobs = 0;
};

struct ClusterTrace {
  std::vector<UtilizationSample> samples;

  [[nodiscard]] double mean_idle_cpu() const;
  [[nodiscard]] double mean_free_memory() const;
  [[nodiscard]] double max_idle_cpu() const;
};

/// Runs the scheduler simulation and returns the sampled trace.
ClusterTrace simulate_cluster(const ClusterConfig& config, std::uint64_t seed);

}  // namespace rfs::workloads

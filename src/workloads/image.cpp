#include "workloads/image.hpp"

#include <cmath>
#include <cstdio>
#include <cstring>

#include "common/rng.hpp"

namespace rfs::workloads {

Bytes encode_ppm(const Image& img) {
  char header[64];
  int len = std::snprintf(header, sizeof(header), "P6\n%u %u\n255\n", img.width, img.height);
  Bytes out;
  out.reserve(static_cast<std::size_t>(len) + img.pixels.size());
  out.insert(out.end(), header, header + len);
  out.insert(out.end(), img.pixels.begin(), img.pixels.end());
  return out;
}

Result<Image> decode_ppm(std::span<const std::uint8_t> data) {
  // Parse "P6\n<width> <height>\n<maxval>\n".
  if (data.size() < 11 || data[0] != 'P' || data[1] != '6') {
    return Error::make(60, "ppm: bad magic");
  }
  std::size_t pos = 2;
  auto skip_ws = [&] {
    while (pos < data.size() && (data[pos] == ' ' || data[pos] == '\n' || data[pos] == '\t' ||
                                 data[pos] == '\r')) {
      ++pos;
    }
  };
  auto read_int = [&]() -> Result<std::uint32_t> {
    skip_ws();
    if (pos >= data.size() || data[pos] < '0' || data[pos] > '9') {
      return Error::make(61, "ppm: expected integer");
    }
    std::uint64_t v = 0;
    while (pos < data.size() && data[pos] >= '0' && data[pos] <= '9') {
      v = v * 10 + (data[pos] - '0');
      if (v > 1u << 30) return Error::make(62, "ppm: dimension overflow");
      ++pos;
    }
    return static_cast<std::uint32_t>(v);
  };
  auto width = read_int();
  if (!width) return width.error();
  auto height = read_int();
  if (!height) return height.error();
  auto maxval = read_int();
  if (!maxval) return maxval.error();
  if (maxval.value() != 255) return Error::make(63, "ppm: only maxval 255 supported");
  ++pos;  // single whitespace after maxval

  const std::size_t expected = 3ull * width.value() * height.value();
  if (data.size() - pos < expected) return Error::make(64, "ppm: truncated pixel data");
  Image img;
  img.width = width.value();
  img.height = height.value();
  img.pixels.assign(data.begin() + static_cast<std::ptrdiff_t>(pos),
                    data.begin() + static_cast<std::ptrdiff_t>(pos + expected));
  return img;
}

Image resize_bilinear(const Image& src, std::uint32_t width, std::uint32_t height) {
  Image dst;
  dst.width = width;
  dst.height = height;
  dst.pixels.resize(3ull * width * height);
  const double sx = static_cast<double>(src.width) / width;
  const double sy = static_cast<double>(src.height) / height;
  for (std::uint32_t y = 0; y < height; ++y) {
    const double fy = (y + 0.5) * sy - 0.5;
    const std::uint32_t y0 = static_cast<std::uint32_t>(std::max(0.0, std::floor(fy)));
    const std::uint32_t y1 = std::min(y0 + 1, src.height - 1);
    const double wy = fy - y0;
    for (std::uint32_t x = 0; x < width; ++x) {
      const double fx = (x + 0.5) * sx - 0.5;
      const std::uint32_t x0 = static_cast<std::uint32_t>(std::max(0.0, std::floor(fx)));
      const std::uint32_t x1 = std::min(x0 + 1, src.width - 1);
      const double wx = fx - x0;
      for (int c = 0; c < 3; ++c) {
        const double top = src.at(x0, y0)[c] * (1 - wx) + src.at(x1, y0)[c] * wx;
        const double bottom = src.at(x0, y1)[c] * (1 - wx) + src.at(x1, y1)[c] * wx;
        dst.at(x, y)[c] = static_cast<std::uint8_t>(std::lround(top * (1 - wy) + bottom * wy));
      }
    }
  }
  return dst;
}

Result<Bytes> thumbnail(std::span<const std::uint8_t> ppm, std::uint32_t max_dim) {
  auto img = decode_ppm(ppm);
  if (!img) return img.error();
  const Image& src = img.value();
  const std::uint32_t longest = std::max(src.width, src.height);
  std::uint32_t tw = src.width;
  std::uint32_t th = src.height;
  if (longest > max_dim) {
    const double scale = static_cast<double>(max_dim) / longest;
    tw = std::max(1u, static_cast<std::uint32_t>(std::lround(src.width * scale)));
    th = std::max(1u, static_cast<std::uint32_t>(std::lround(src.height * scale)));
  }
  Image thumb = resize_bilinear(src, tw, th);
  return encode_ppm(thumb);
}

Image synthetic_image(std::size_t target_bytes, std::uint64_t seed) {
  // Square RGB image: 3*w*h + ~15 header bytes = target.
  const auto side = static_cast<std::uint32_t>(std::sqrt(static_cast<double>(target_bytes) / 3.0));
  Image img;
  img.width = std::max(8u, side);
  img.height = std::max(8u, side);
  img.pixels.resize(3ull * img.width * img.height);
  Rng rng(seed);
  const double phase = rng.uniform(0.0, 6.28);
  for (std::uint32_t y = 0; y < img.height; ++y) {
    for (std::uint32_t x = 0; x < img.width; ++x) {
      auto* px = img.at(x, y);
      px[0] = static_cast<std::uint8_t>(127 + 120 * std::sin(0.01 * x + phase));
      px[1] = static_cast<std::uint8_t>(127 + 120 * std::sin(0.013 * y + phase));
      px[2] = static_cast<std::uint8_t>((x ^ y) & 0xff);
    }
  }
  return img;
}

}  // namespace rfs::workloads

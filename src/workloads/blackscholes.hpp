// Black-Scholes option pricing (PARSEC-style), the Fig. 12 workload:
// "Black-Scholes solves the same partial differential equation for
// different parameters, and we dispatch independent equations to
// bare-metal parallel executors."
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "common/units.hpp"

namespace rfs::workloads {

/// One European option, PARSEC layout (36 bytes packed as floats+flag).
struct OptionData {
  float spot = 0;       // underlying price
  float strike = 0;
  float rate = 0;       // risk-free rate
  float volatility = 0;
  float time = 0;       // years to maturity
  std::uint32_t type = 0;  // 0 = call, 1 = put
  float divq = 0;       // unused (PARSEC keeps it)
  float divs = 0;
  float padding = 0;
};
static_assert(sizeof(OptionData) == 36);

/// Cumulative normal distribution (PARSEC's polynomial approximation).
double cndf(double x);

/// Closed-form Black-Scholes price of one option.
double price_option(const OptionData& opt);

/// Prices `options` into `prices` (sequential kernel).
void price_all(std::span<const OptionData> options, std::span<float> prices);

/// Generates a reproducible portfolio.
std::vector<OptionData> generate_options(std::size_t count, std::uint64_t seed);

/// Calibrated single-core cost of pricing one option (~70 ns: matches the
/// paper's ~450 ms serial runtime on its 229 MB / 6.7 M-option input).
constexpr Duration kCostPerOption = 70;

inline Duration blackscholes_time(std::size_t options) { return options * kCostPerOption; }

}  // namespace rfs::workloads

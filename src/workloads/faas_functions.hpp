// rFaaS code packages wrapping the workload kernels: the serverless
// functions of Fig. 11 (thumbnailer, image recognition) and the offload
// kernels of Figs. 12/13 (Black-Scholes, matmul stripes, Jacobi sweeps).
// Every entry performs real computation on the transferred bytes and the
// cost models charge the paper-calibrated virtual durations.
#pragma once

#include <cstdint>

#include "rfaas/functions.hpp"

namespace rfs::workloads {

/// Registers "thumbnail": PPM in -> PPM thumbnail out (SeBS thumbnailer).
void register_thumbnail(rfaas::FunctionRegistry& registry, std::uint32_t max_dim = 128);

/// Registers "inference": PPM in -> class probabilities out (ResNet-style).
void register_inference(rfaas::FunctionRegistry& registry, std::size_t classes = 1000);

/// Registers "blackscholes": OptionData[] in -> float prices out.
void register_blackscholes(rfaas::FunctionRegistry& registry);

/// Registers "matmul-half": [u32 n | A | B] in -> top half of C out.
/// `sample_shift` > 0 computes only every 2^shift-th row for real (the
/// cost model still charges the full stripe) — used by the Fig. 13 bench
/// where running 64 ranks' worth of full DGEMMs on the simulation host
/// would be prohibitive. Tests use sample_shift = 0 (fully real).
void register_matmul_half(rfaas::FunctionRegistry& registry, unsigned sample_shift = 0);

/// Registers "jacobi-half": stateful warm-cache kernel. First call per
/// session ships [u32 n | u64 session | A | b | x]; subsequent calls ship
/// [u32 n | u64 session | x] only, exactly the caching optimization of
/// Sec. V-G(b). Computes the top half of the next iterate.
void register_jacobi_half(rfaas::FunctionRegistry& registry, unsigned sample_shift = 0);

/// Registers everything above with default parameters.
void register_all(rfaas::FunctionRegistry& registry);

}  // namespace rfs::workloads

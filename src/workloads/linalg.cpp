#include "workloads/linalg.hpp"

#include <algorithm>
#include <cmath>

namespace rfs::workloads {

Matrix Matrix::random(std::size_t rows, std::size_t cols, std::uint64_t seed) {
  Matrix m(rows, cols);
  Rng rng(seed);
  for (std::size_t i = 0; i < rows * cols; ++i) {
    m.data_[i] = rng.uniform(-1.0, 1.0);
  }
  return m;
}

void matmul_stripe(const Matrix& a, const Matrix& b, Matrix& c, std::size_t row_begin,
                   std::size_t row_end) {
  constexpr std::size_t kBlock = 64;
  const std::size_t n = a.cols();
  const std::size_t m = b.cols();
  for (std::size_t i = row_begin; i < row_end; ++i) {
    for (std::size_t j = 0; j < m; ++j) c.at(i, j) = 0.0;
  }
  for (std::size_t kk = 0; kk < n; kk += kBlock) {
    const std::size_t k_end = std::min(kk + kBlock, n);
    for (std::size_t i = row_begin; i < row_end; ++i) {
      for (std::size_t k = kk; k < k_end; ++k) {
        const double aik = a.at(i, k);
        const double* brow = b.data() + k * m;
        double* crow = c.data() + i * m;
        for (std::size_t j = 0; j < m; ++j) {
          crow[j] += aik * brow[j];
        }
      }
    }
  }
}

void matmul(const Matrix& a, const Matrix& b, Matrix& c) {
  matmul_stripe(a, b, c, 0, a.rows());
}

void matmul_naive(const Matrix& a, const Matrix& b, Matrix& c) {
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < b.cols(); ++j) {
      double sum = 0.0;
      for (std::size_t k = 0; k < a.cols(); ++k) sum += a.at(i, k) * b.at(k, j);
      c.at(i, j) = sum;
    }
  }
}

void jacobi_sweep(const Matrix& a, std::span<const double> b, std::span<const double> x,
                  std::span<double> x_new, std::size_t row_begin, std::size_t row_end) {
  const std::size_t n = a.cols();
  for (std::size_t i = row_begin; i < row_end; ++i) {
    double sum = 0.0;
    const double* row = a.data() + i * n;
    for (std::size_t j = 0; j < n; ++j) {
      if (j != i) sum += row[j] * x[j];
    }
    x_new[i] = (b[i] - sum) / row[i];
  }
}

double jacobi_solve(const Matrix& a, std::span<const double> b, std::span<double> x,
                    unsigned iterations) {
  const std::size_t n = a.rows();
  std::vector<double> next(n, 0.0);
  for (unsigned it = 0; it < iterations; ++it) {
    jacobi_sweep(a, b, x, next, 0, n);
    std::copy(next.begin(), next.end(), x.begin());
  }
  return residual_norm(a, b, x);
}

Matrix diagonally_dominant(std::size_t n, std::uint64_t seed) {
  Matrix a = Matrix::random(n, n, seed);
  for (std::size_t i = 0; i < n; ++i) {
    double off = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      if (j != i) off += std::abs(a.at(i, j));
    }
    a.at(i, i) = off + 1.0;  // strict dominance
  }
  return a;
}

double residual_norm(const Matrix& a, std::span<const double> b, std::span<const double> x) {
  const std::size_t n = a.rows();
  double norm = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    double ax = 0.0;
    for (std::size_t j = 0; j < a.cols(); ++j) ax += a.at(i, j) * x[j];
    const double r = ax - b[i];
    norm += r * r;
  }
  return std::sqrt(norm);
}

}  // namespace rfs::workloads

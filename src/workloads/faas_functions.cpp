#include "workloads/faas_functions.hpp"

#include <cmath>
#include <cstring>
#include <map>
#include <memory>
#include <vector>

#include "workloads/blackscholes.hpp"
#include "workloads/image.hpp"
#include "workloads/linalg.hpp"
#include "workloads/nn.hpp"

namespace rfs::workloads {

void register_thumbnail(rfaas::FunctionRegistry& registry, std::uint32_t max_dim) {
  rfaas::CodePackage pkg;
  pkg.name = "thumbnail";
  pkg.code_size = 412 * 1024;  // statically linked codec + resizer
  pkg.entry = [max_dim](const void* in, std::uint32_t size, void* out) -> std::uint32_t {
    auto result = thumbnail({static_cast<const std::uint8_t*>(in), size}, max_dim);
    if (!result) return 0;
    std::memcpy(out, result.value().data(), result.value().size());
    return static_cast<std::uint32_t>(result.value().size());
  };
  pkg.cost = [](std::uint32_t input) -> Duration { return thumbnail_time(input); };
  registry.add(std::move(pkg));
}

void register_inference(rfaas::FunctionRegistry& registry, std::size_t classes) {
  // The model is loaded once and "stored in the function memory after the
  // first invocation" — shared across invocations like the TorchScript
  // model in the paper.
  auto model = std::make_shared<nn::Classifier>(classes, /*seed=*/42);
  rfaas::CodePackage pkg;
  pkg.name = "inference";
  pkg.code_size = 3800 * 1024;  // libtorch-style fat library
  pkg.entry = [model](const void* in, std::uint32_t size, void* out) -> std::uint32_t {
    auto probs = model->classify_ppm({static_cast<const std::uint8_t*>(in), size});
    if (!probs) return 0;
    const auto bytes = static_cast<std::uint32_t>(probs.value().size() * sizeof(float));
    std::memcpy(out, probs.value().data(), bytes);
    return bytes;
  };
  pkg.cost = [](std::uint32_t input) -> Duration { return nn::inference_time(input); };
  // Compute-bound inference barely slows inside a container (Fig. 11b:
  // 112 ms bare vs ~118 ms Docker).
  pkg.docker_compute_multiplier = 1.05;
  registry.add(std::move(pkg));
}

void register_blackscholes(rfaas::FunctionRegistry& registry) {
  rfaas::CodePackage pkg;
  pkg.name = "blackscholes";
  pkg.code_size = 64 * 1024;
  pkg.entry = [](const void* in, std::uint32_t size, void* out) -> std::uint32_t {
    const std::size_t count = size / sizeof(OptionData);
    const auto* options = static_cast<const OptionData*>(in);
    auto* prices = static_cast<float*>(out);
    price_all({options, count}, {prices, count});
    return static_cast<std::uint32_t>(count * sizeof(float));
  };
  pkg.cost = [](std::uint32_t input) -> Duration {
    return blackscholes_time(input / sizeof(OptionData));
  };
  registry.add(std::move(pkg));
}

void register_matmul_half(rfaas::FunctionRegistry& registry, unsigned sample_shift) {
  rfaas::CodePackage pkg;
  pkg.name = "matmul-half";
  pkg.code_size = 96 * 1024;
  pkg.entry = [sample_shift](const void* in, std::uint32_t size, void* out) -> std::uint32_t {
    std::uint32_t n = 0;
    std::memcpy(&n, in, 4);
    const std::size_t matrix_doubles = static_cast<std::size_t>(n) * n;
    if (size < 4 + 2 * matrix_doubles * sizeof(double)) return 0;
    // The doubles sit at payload offset 4 and are not 8-byte aligned in
    // the wire buffer: copy into aligned storage instead of casting
    // (UBSan: misaligned load). The copy is O(n^2) under an O(n^3) kernel.
    std::vector<double> ab(2 * matrix_doubles);
    std::memcpy(ab.data(), static_cast<const std::uint8_t*>(in) + 4,
                2 * matrix_doubles * sizeof(double));
    const double* a = ab.data();
    const double* b = a + matrix_doubles;
    auto* c = static_cast<double*>(out);
    const std::size_t half = n / 2;
    const std::size_t step = sample_shift == 0 ? 1 : (1ull << sample_shift);
    for (std::size_t i = 0; i < half; i += step) {
      for (std::size_t j = 0; j < n; ++j) {
        double sum = 0.0;
        for (std::size_t k = 0; k < n; ++k) sum += a[i * n + k] * b[k * n + j];
        c[i * n + j] = sum;
      }
    }
    return static_cast<std::uint32_t>(half * n * sizeof(double));
  };
  pkg.cost = [](std::uint32_t input) -> Duration {
    const auto n = static_cast<std::size_t>(
        std::sqrt(static_cast<double>((input - 4) / sizeof(double)) / 2.0));
    return matmul_time(n / 2, n, n);
  };
  registry.add(std::move(pkg));
}

void register_jacobi_half(rfaas::FunctionRegistry& registry, unsigned sample_shift) {
  struct Session {
    Matrix a;
    std::vector<double> b;
  };
  auto sessions = std::make_shared<std::map<std::uint64_t, Session>>();

  rfaas::CodePackage pkg;
  pkg.name = "jacobi-half";
  pkg.code_size = 80 * 1024;
  pkg.entry = [sessions, sample_shift](const void* in, std::uint32_t size,
                                       void* out) -> std::uint32_t {
    const auto* bytes = static_cast<const std::uint8_t*>(in);
    std::uint32_t n = 0;
    std::uint64_t session_id = 0;
    std::memcpy(&n, bytes, 4);
    std::memcpy(&session_id, bytes + 4, 8);
    const std::size_t header = 12;
    const std::size_t x_bytes = n * sizeof(double);

    auto it = sessions->find(session_id);
    if (size >= header + static_cast<std::size_t>(n) * n * sizeof(double) + 2 * x_bytes) {
      // Full payload: cache A and b in the warm sandbox.
      Session s;
      s.a = Matrix(n, n);
      std::memcpy(s.a.data(), bytes + header, static_cast<std::size_t>(n) * n * sizeof(double));
      s.b.resize(n);
      std::memcpy(s.b.data(), bytes + header + static_cast<std::size_t>(n) * n * sizeof(double),
                  x_bytes);
      it = sessions->insert_or_assign(session_id, std::move(s)).first;
    }
    if (it == sessions->end() || size < header + x_bytes) return 0;

    // The solution vector is always the trailing x_bytes of the payload.
    std::vector<double> x(n);
    std::memcpy(x.data(), bytes + (size - x_bytes), x_bytes);

    const std::size_t half = n / 2;
    std::vector<double> x_new(n, 0.0);
    const std::size_t step = sample_shift == 0 ? 1 : (1ull << sample_shift);
    for (std::size_t row = 0; row < half; row += step) {
      jacobi_sweep(it->second.a, it->second.b, x, x_new, row, row + 1);
    }
    std::memcpy(out, x_new.data(), half * sizeof(double));
    return static_cast<std::uint32_t>(half * sizeof(double));
  };
  pkg.cost = [](std::uint32_t input) -> Duration {
    // Recover n from the payload size. Cached calls carry 12 + 8n bytes;
    // first calls carry 12 + 8n^2 + 16n bytes and additionally pay the
    // deserialization of A (memcpy at ~8 GB/s).
    const std::uint64_t body = input > 12 ? input - 12 : 0;
    const std::uint64_t n_cached = body / 8;
    const double n_full = (-16.0 + std::sqrt(256.0 + 32.0 * static_cast<double>(body))) / 16.0;
    const auto n_first = static_cast<std::uint64_t>(n_full + 0.5);
    if (8 * n_first * n_first + 16 * n_first == body) {
      const Duration deserialize =
          static_cast<Duration>(static_cast<double>(8 * n_first * n_first) / 8e9 * 1e9);
      return jacobi_time(n_first / 2, n_first) + deserialize;
    }
    return jacobi_time(n_cached / 2, n_cached);
  };
  registry.add(std::move(pkg));
}

void register_all(rfaas::FunctionRegistry& registry) {
  registry.add_echo();
  register_thumbnail(registry);
  register_inference(registry);
  register_blackscholes(registry);
  register_matmul_half(registry);
  register_jacobi_half(registry);
}

}  // namespace rfs::workloads

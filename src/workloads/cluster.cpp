#include "workloads/cluster.hpp"

#include <algorithm>
#include <cmath>
#include <deque>

namespace rfs::workloads {

namespace {

struct Job {
  Time arrival = 0;
  Time duration = 0;
  unsigned nodes = 0;
  double memory_fraction = 0.0;
  Time start = 0;
};

struct RunningJob {
  Time end = 0;
  unsigned nodes = 0;
  double memory_fraction = 0.0;
  bool operator>(const RunningJob& o) const { return end > o.end; }
};

}  // namespace

double ClusterTrace::mean_idle_cpu() const {
  double s = 0.0;
  for (const auto& x : samples) s += x.idle_cpu_pct;
  return samples.empty() ? 0.0 : s / static_cast<double>(samples.size());
}

double ClusterTrace::mean_free_memory() const {
  double s = 0.0;
  for (const auto& x : samples) s += x.free_memory_pct;
  return samples.empty() ? 0.0 : s / static_cast<double>(samples.size());
}

double ClusterTrace::max_idle_cpu() const {
  double m = 0.0;
  for (const auto& x : samples) m = std::max(m, x.idle_cpu_pct);
  return m;
}

ClusterTrace simulate_cluster(const ClusterConfig& config, std::uint64_t seed) {
  Rng rng(seed);

  // Derive the mean inter-arrival time from the target utilization:
  // offered_load = E[nodes] * E[duration] / interarrival = target * nodes.
  const double mean_duration_s =
      std::exp(config.lognormal_duration_mu +
               0.5 * config.lognormal_duration_sigma * config.lognormal_duration_sigma);
  const double mean_nodes = 0.55 * 2.5 + 0.30 * 18.5 + 0.12 * 80.5 +
                            0.03 * (129.0 + config.nodes / 2.0) / 2.0;
  const double interarrival_s =
      mean_nodes * mean_duration_s / (config.target_utilization * config.nodes);

  // Generate the full arrival stream up front (deterministic).
  std::deque<Job> queue_source;
  Time t = 0;
  while (t < config.horizon) {
    t += static_cast<Time>(rng.exponential(1.0 / interarrival_s) * 1e9);
    Job job;
    job.arrival = t;
    double minutes = rng.lognormal(config.lognormal_duration_mu, config.lognormal_duration_sigma);
    minutes = std::clamp(minutes, 60.0, 48.0 * 3600.0);  // 1 min .. 48 h (seconds here)
    job.duration = static_cast<Time>(minutes * 1e9);
    // Heavy-tailed node counts: mostly small jobs, occasional large ones.
    const double u = rng.uniform();
    if (u < 0.55) {
      job.nodes = static_cast<unsigned>(rng.uniform_int(1, 4));
    } else if (u < 0.85) {
      job.nodes = static_cast<unsigned>(rng.uniform_int(5, 32));
    } else if (u < 0.97) {
      job.nodes = static_cast<unsigned>(rng.uniform_int(33, 128));
    } else {
      job.nodes = static_cast<unsigned>(rng.uniform_int(129, config.nodes / 2));
    }
    job.memory_fraction = std::clamp(
        rng.lognormal(std::log(config.mean_memory_fraction), 0.6), 0.02, 0.95);
    queue_source.push_back(job);
  }

  ClusterTrace trace;
  std::deque<Job> waiting;
  std::vector<RunningJob> running;  // kept sorted by end time (small sizes)
  unsigned free_nodes = config.nodes;
  double used_memory_nodes = 0.0;  // sum of nodes*memory_fraction

  auto retire_finished = [&](Time now) {
    auto it = running.begin();
    while (it != running.end()) {
      if (it->end <= now) {
        free_nodes += it->nodes;
        used_memory_nodes -= it->nodes * it->memory_fraction;
        it = running.erase(it);
      } else {
        ++it;
      }
    }
  };

  auto try_schedule = [&](Time now) {
    // FCFS head-of-line...
    while (!waiting.empty() && waiting.front().nodes <= free_nodes) {
      Job j = waiting.front();
      waiting.pop_front();
      free_nodes -= j.nodes;
      used_memory_nodes += j.nodes * j.memory_fraction;
      running.push_back(RunningJob{now + j.duration, j.nodes, j.memory_fraction});
    }
    // ...plus EASY backfill: smaller jobs may jump the queue if they fit
    // now (shadow-time check simplified to a fit check against the head's
    // earliest possible start).
    if (!waiting.empty()) {
      Time shadow = now;
      unsigned avail = free_nodes;
      std::vector<RunningJob> sorted = running;
      std::sort(sorted.begin(), sorted.end(),
                [](const RunningJob& a, const RunningJob& b) { return a.end < b.end; });
      for (const auto& r : sorted) {
        avail += r.nodes;
        if (avail >= waiting.front().nodes) {
          shadow = r.end;
          break;
        }
      }
      for (auto it = waiting.begin() + 1; it != waiting.end();) {
        if (it->nodes <= free_nodes && now + it->duration <= shadow) {
          free_nodes -= it->nodes;
          used_memory_nodes += it->nodes * it->memory_fraction;
          running.push_back(RunningJob{now + it->duration, it->nodes, it->memory_fraction});
          it = waiting.erase(it);
        } else {
          ++it;
        }
      }
    }
  };

  for (Time now = 0; now < config.horizon; now += config.sample_interval) {
    retire_finished(now);
    while (!queue_source.empty() && queue_source.front().arrival <= now) {
      waiting.push_back(queue_source.front());
      queue_source.pop_front();
    }
    try_schedule(now);

    UtilizationSample s;
    s.at = now;
    s.idle_cpu_pct = 100.0 * static_cast<double>(free_nodes) / config.nodes;
    // Free memory: idle nodes contribute 100%, busy nodes (1 - fraction).
    const double busy_nodes = static_cast<double>(config.nodes - free_nodes);
    const double used_mem = used_memory_nodes;
    (void)busy_nodes;
    s.free_memory_pct = 100.0 * (1.0 - used_mem / config.nodes);
    s.queued_jobs = waiting.size();
    s.running_jobs = running.size();
    if (now >= config.warmup) trace.samples.push_back(s);
  }
  return trace;
}

}  // namespace rfs::workloads

#include "workloads/nn.hpp"

#include <algorithm>
#include <cmath>

#include "common/rng.hpp"

namespace rfs::workloads::nn {

namespace {
void he_init(std::vector<float>& w, std::size_t fan_in, std::uint64_t seed) {
  Rng rng(seed);
  const double scale = std::sqrt(2.0 / static_cast<double>(fan_in));
  for (auto& v : w) v = static_cast<float>(rng.normal(0.0, scale));
}
}  // namespace

Conv2d::Conv2d(std::size_t in, std::size_t out, std::size_t k, std::size_t s,
               std::uint64_t seed)
    : in_channels(in),
      out_channels(out),
      kernel(k),
      stride(s),
      weights(out * in * k * k),
      bias(out, 0.0f) {
  he_init(weights, in * k * k, seed);
}

Tensor Conv2d::forward(const Tensor& x) const {
  const std::size_t pad = kernel / 2;
  const std::size_t out_h = (x.height() + 2 * pad - kernel) / stride + 1;
  const std::size_t out_w = (x.width() + 2 * pad - kernel) / stride + 1;
  Tensor y(out_channels, out_h, out_w);
  // Direct convolution; dimensions are small enough that im2col buys
  // little here and this form is easy to verify.
  for (std::size_t oc = 0; oc < out_channels; ++oc) {
    for (std::size_t oy = 0; oy < out_h; ++oy) {
      for (std::size_t ox = 0; ox < out_w; ++ox) {
        float acc = bias[oc];
        for (std::size_t ic = 0; ic < in_channels; ++ic) {
          for (std::size_t ky = 0; ky < kernel; ++ky) {
            const std::ptrdiff_t iy =
                static_cast<std::ptrdiff_t>(oy * stride + ky) - static_cast<std::ptrdiff_t>(pad);
            if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(x.height())) continue;
            for (std::size_t kx = 0; kx < kernel; ++kx) {
              const std::ptrdiff_t ix = static_cast<std::ptrdiff_t>(ox * stride + kx) -
                                        static_cast<std::ptrdiff_t>(pad);
              if (ix < 0 || ix >= static_cast<std::ptrdiff_t>(x.width())) continue;
              const float w =
                  weights[((oc * in_channels + ic) * kernel + ky) * kernel + kx];
              acc += w * x.at(ic, static_cast<std::size_t>(iy), static_cast<std::size_t>(ix));
            }
          }
        }
        y.at(oc, oy, ox) = acc;
      }
    }
  }
  return y;
}

std::uint64_t Conv2d::flops(std::size_t out_h, std::size_t out_w) const {
  return 2ull * out_channels * out_h * out_w * in_channels * kernel * kernel;
}

Linear::Linear(std::size_t in, std::size_t out, std::uint64_t seed)
    : in_features(in), out_features(out), weights(in * out), bias(out, 0.0f) {
  he_init(weights, in, seed);
}

std::vector<float> Linear::forward(const std::vector<float>& x) const {
  std::vector<float> y(out_features, 0.0f);
  for (std::size_t o = 0; o < out_features; ++o) {
    float acc = bias[o];
    const float* row = weights.data() + o * in_features;
    for (std::size_t i = 0; i < in_features; ++i) acc += row[i] * x[i];
    y[o] = acc;
  }
  return y;
}

void relu_inplace(Tensor& t) {
  for (std::size_t i = 0; i < t.size(); ++i) t.data()[i] = std::max(0.0f, t.data()[i]);
}

Tensor max_pool2(const Tensor& t) {
  Tensor y(t.channels(), t.height() / 2, t.width() / 2);
  for (std::size_t c = 0; c < t.channels(); ++c) {
    for (std::size_t oy = 0; oy < y.height(); ++oy) {
      for (std::size_t ox = 0; ox < y.width(); ++ox) {
        float m = t.at(c, 2 * oy, 2 * ox);
        m = std::max(m, t.at(c, 2 * oy, 2 * ox + 1));
        m = std::max(m, t.at(c, 2 * oy + 1, 2 * ox));
        m = std::max(m, t.at(c, 2 * oy + 1, 2 * ox + 1));
        y.at(c, oy, ox) = m;
      }
    }
  }
  return y;
}

std::vector<float> global_avg_pool(const Tensor& t) {
  std::vector<float> y(t.channels(), 0.0f);
  const auto hw = static_cast<float>(t.height() * t.width());
  for (std::size_t c = 0; c < t.channels(); ++c) {
    float acc = 0.0f;
    for (std::size_t i = 0; i < t.height(); ++i) {
      for (std::size_t j = 0; j < t.width(); ++j) acc += t.at(c, i, j);
    }
    y[c] = acc / hw;
  }
  return y;
}

std::vector<float> softmax(const std::vector<float>& logits) {
  std::vector<float> p(logits.size());
  const float mx = *std::max_element(logits.begin(), logits.end());
  float sum = 0.0f;
  for (std::size_t i = 0; i < logits.size(); ++i) {
    p[i] = std::exp(logits[i] - mx);
    sum += p[i];
  }
  for (auto& v : p) v /= sum;
  return p;
}

Classifier::Classifier(std::size_t num_classes, std::uint64_t seed)
    : num_classes_(num_classes), stem_(3, 16, 3, 1, seed + 1), head_(64, num_classes, seed + 99) {
  blocks_.push_back(Block{Conv2d(16, 32, 3, 2, seed + 2), Conv2d(32, 32, 3, 1, seed + 3)});
  blocks_.push_back(Block{Conv2d(32, 64, 3, 2, seed + 4), Conv2d(64, 64, 3, 1, seed + 5)});
}

std::vector<float> Classifier::forward(const Tensor& input) const {
  Tensor x = stem_.forward(input);
  relu_inplace(x);
  x = max_pool2(x);
  for (const auto& block : blocks_) {
    Tensor y = block.conv1.forward(x);
    relu_inplace(y);
    Tensor z = block.conv2.forward(y);
    // Residual connection where shapes match (conv2 is stride 1).
    for (std::size_t i = 0; i < z.size() && i < y.size(); ++i) {
      z.data()[i] += y.data()[i];
    }
    relu_inplace(z);
    x = std::move(z);
  }
  auto pooled = global_avg_pool(x);
  return softmax(head_.forward(pooled));
}

Result<std::vector<float>> Classifier::classify_ppm(std::span<const std::uint8_t> ppm) const {
  auto decoded = decode_ppm(ppm);
  if (!decoded) return decoded.error();
  Image resized = resize_bilinear(decoded.value(), 64, 64);
  Tensor input(3, 64, 64);
  for (std::size_t y = 0; y < 64; ++y) {
    for (std::size_t x = 0; x < 64; ++x) {
      const auto* px = resized.at(static_cast<std::uint32_t>(x), static_cast<std::uint32_t>(y));
      for (std::size_t c = 0; c < 3; ++c) {
        input.at(c, y, x) = (static_cast<float>(px[c]) / 255.0f - 0.5f) * 2.0f;
      }
    }
  }
  return forward(input);
}

}  // namespace rfs::workloads::nn

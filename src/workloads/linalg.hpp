// Dense linear algebra kernels for the Fig. 13 HPC applications:
// blocked matrix-matrix multiplication and the Jacobi linear solver.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "common/units.hpp"

namespace rfs::workloads {

/// Row-major dense matrix.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols) : rows_(rows), cols_(cols), data_(rows * cols) {}

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  [[nodiscard]] double& at(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  [[nodiscard]] double at(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }
  [[nodiscard]] double* data() { return data_.data(); }
  [[nodiscard]] const double* data() const { return data_.data(); }
  [[nodiscard]] std::size_t size_bytes() const { return data_.size() * sizeof(double); }

  static Matrix random(std::size_t rows, std::size_t cols, std::uint64_t seed);

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Cache-blocked C = A * B. `row_begin/row_end` select a row stripe of C,
/// which is how the MPI + rFaaS benchmark splits the work between the
/// rank and the offloaded function.
void matmul_stripe(const Matrix& a, const Matrix& b, Matrix& c, std::size_t row_begin,
                   std::size_t row_end);

/// Full product, convenience.
void matmul(const Matrix& a, const Matrix& b, Matrix& c);

/// Naive triple loop, reference for tests.
void matmul_naive(const Matrix& a, const Matrix& b, Matrix& c);

/// One Jacobi sweep over rows [row_begin, row_end):
///   x_new[i] = (b[i] - sum_{j!=i} A[i][j] x[j]) / A[i][i].
void jacobi_sweep(const Matrix& a, std::span<const double> b, std::span<const double> x,
                  std::span<double> x_new, std::size_t row_begin, std::size_t row_end);

/// Runs `iterations` Jacobi iterations; returns the final residual norm.
double jacobi_solve(const Matrix& a, std::span<const double> b, std::span<double> x,
                    unsigned iterations);

/// Generates a strictly diagonally dominant system (guaranteed Jacobi
/// convergence).
Matrix diagonally_dominant(std::size_t n, std::uint64_t seed);

/// ||Ax - b||_2.
double residual_norm(const Matrix& a, std::span<const double> b, std::span<const double> x);

/// Calibrated effective single-core throughput used by the virtual-time
/// cost models (~1.1 GFLOP/s sustained on the paper's Xeon Gold 6154 for
/// these unblocked-ish kernels).
constexpr double kFlopsPerSecond = 1.1e9;

/// Cost of multiplying a row stripe of height `rows` (2*n*k flops/row).
inline Duration matmul_time(std::size_t rows, std::size_t n, std::size_t k) {
  return static_cast<Duration>(2.0 * static_cast<double>(rows) * static_cast<double>(n) *
                               static_cast<double>(k) / kFlopsPerSecond * 1e9);
}

/// Cost of one Jacobi sweep over `rows` rows of an n-column system.
inline Duration jacobi_time(std::size_t rows, std::size_t n) {
  return static_cast<Duration>(2.0 * static_cast<double>(rows) * static_cast<double>(n) /
                               kFlopsPerSecond * 1e9);
}

}  // namespace rfs::workloads

// Neural-network inference substrate for Fig. 11b (image recognition):
// a small tensor library with GEMM-based convolution and a ResNet-style
// classifier, replacing the paper's PyTorch/TorchScript dependency with
// real from-scratch inference on real pixels.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.hpp"
#include "workloads/image.hpp"

namespace rfs::workloads::nn {

/// Dense tensor in NCHW-ish layout (we only need CHW, batch = 1).
class Tensor {
 public:
  Tensor() = default;
  Tensor(std::size_t channels, std::size_t height, std::size_t width)
      : c_(channels), h_(height), w_(width), data_(channels * height * width, 0.0f) {}

  [[nodiscard]] std::size_t channels() const { return c_; }
  [[nodiscard]] std::size_t height() const { return h_; }
  [[nodiscard]] std::size_t width() const { return w_; }
  [[nodiscard]] std::size_t size() const { return data_.size(); }
  [[nodiscard]] float& at(std::size_t c, std::size_t y, std::size_t x) {
    return data_[(c * h_ + y) * w_ + x];
  }
  [[nodiscard]] float at(std::size_t c, std::size_t y, std::size_t x) const {
    return data_[(c * h_ + y) * w_ + x];
  }
  [[nodiscard]] float* data() { return data_.data(); }
  [[nodiscard]] const float* data() const { return data_.data(); }

 private:
  std::size_t c_ = 0, h_ = 0, w_ = 0;
  std::vector<float> data_;
};

/// 2D convolution layer (kernel k x k, stride s, same-ish padding),
/// deterministic He-style random weights.
struct Conv2d {
  std::size_t in_channels, out_channels, kernel, stride;
  std::vector<float> weights;  // [out][in][k][k]
  std::vector<float> bias;     // [out]

  Conv2d(std::size_t in, std::size_t out, std::size_t k, std::size_t s, std::uint64_t seed);
  [[nodiscard]] Tensor forward(const Tensor& x) const;
  [[nodiscard]] std::uint64_t flops(std::size_t out_h, std::size_t out_w) const;
};

/// Fully connected layer.
struct Linear {
  std::size_t in_features, out_features;
  std::vector<float> weights;
  std::vector<float> bias;

  Linear(std::size_t in, std::size_t out, std::uint64_t seed);
  [[nodiscard]] std::vector<float> forward(const std::vector<float>& x) const;
};

void relu_inplace(Tensor& t);
Tensor max_pool2(const Tensor& t);           // 2x2, stride 2
std::vector<float> global_avg_pool(const Tensor& t);
std::vector<float> softmax(const std::vector<float>& logits);

/// A ResNet-style classifier: stem conv + residual blocks + pooled FC
/// head. Depth/width are scaled down so inference is feasible in tests;
/// the virtual-time cost model charges the paper-measured 112 ms.
class Classifier {
 public:
  Classifier(std::size_t num_classes, std::uint64_t seed);

  /// Decodes the PPM, resizes to the 64x64 input, normalizes and runs the
  /// network. Returns class probabilities.
  Result<std::vector<float>> classify_ppm(std::span<const std::uint8_t> ppm) const;

  /// Raw tensor inference.
  [[nodiscard]] std::vector<float> forward(const Tensor& input) const;

  [[nodiscard]] std::size_t num_classes() const { return num_classes_; }

 private:
  struct Block {
    Conv2d conv1;
    Conv2d conv2;
  };
  std::size_t num_classes_;
  Conv2d stem_;
  std::vector<Block> blocks_;
  Linear head_;
};

/// Paper-calibrated inference latency (ResNet-50 on one core: ~112 ms,
/// nearly input-size independent because the model dominates).
inline Duration inference_time(std::size_t /*input_bytes*/) { return 112_ms; }

}  // namespace rfs::workloads::nn

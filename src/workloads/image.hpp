// Image substrate for the Fig. 11a thumbnailer benchmark: a binary PPM
// (P6) codec, bilinear resizing and a thumbnail function — the same
// pipeline the paper implements with OpenCV, built from scratch so the
// payloads carry real decodable pixels.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bytes.hpp"
#include "common/result.hpp"
#include "common/units.hpp"

namespace rfs::workloads {

struct Image {
  std::uint32_t width = 0;
  std::uint32_t height = 0;
  std::vector<std::uint8_t> pixels;  // RGB, row-major

  [[nodiscard]] std::size_t byte_size() const { return pixels.size(); }
  [[nodiscard]] std::uint8_t* at(std::uint32_t x, std::uint32_t y) {
    return pixels.data() + 3 * (static_cast<std::size_t>(y) * width + x);
  }
  [[nodiscard]] const std::uint8_t* at(std::uint32_t x, std::uint32_t y) const {
    return pixels.data() + 3 * (static_cast<std::size_t>(y) * width + x);
  }
};

/// Serializes to binary PPM (P6 header + RGB bytes).
Bytes encode_ppm(const Image& img);

/// Parses a binary PPM; validates the header and pixel count.
Result<Image> decode_ppm(std::span<const std::uint8_t> data);

/// Bilinear resampling to the target dimensions.
Image resize_bilinear(const Image& src, std::uint32_t width, std::uint32_t height);

/// The serverless thumbnailer: decode -> resize to fit in `max_dim`
/// (preserving aspect ratio) -> encode. Mirrors the SeBS benchmark.
Result<Bytes> thumbnail(std::span<const std::uint8_t> ppm, std::uint32_t max_dim);

/// Deterministic synthetic photo (smooth gradients + texture) with a PPM
/// encoding of roughly `target_bytes` (paper inputs: 97 kB and 3.6 MB).
Image synthetic_image(std::size_t target_bytes, std::uint64_t seed);

/// Calibrated compute cost of thumbnailing an input of `bytes` (the paper
/// measures 4.4 ms for 97 kB and ~115 ms for 3.6 MB on bare metal).
inline Duration thumbnail_time(std::size_t bytes) {
  return 1_ms + static_cast<Duration>(static_cast<double>(bytes) * 31.5);
}

}  // namespace rfs::workloads

// Deadline-bucketed timer wheel (the carried-over ROADMAP item).
//
// A pure data structure — no coroutines, no engine dependency — shared
// by LeaseSet (renewal due-times) and Invoker (invocation deadlines and
// hedge timers). Deadlines hash into a ring of coarse buckets
// (`1 << shift` ns wide); timers beyond the ring's horizon park in an
// overflow list and cascade into the ring as the cursor approaches.
// arm/cancel/rearm are O(1) amortized; advance() touches only the
// buckets the clock actually crossed, so a wheel with thousands of
// armed-but-distant timers costs nothing per tick. Cancellation is
// lazy: a cancelled id stays in its bucket and is dropped when the
// bucket drains — the price of O(1) cancel without per-bucket lookup.
#pragma once

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/units.hpp"

namespace rfs::sim {

class TimerWheel {
 public:
  using Id = std::uint64_t;

  /// `shift`: log2 of the bucket width in ns (default 1 << 20 ≈ 1 ms);
  /// `buckets`: ring size — the wheel's horizon is buckets << shift.
  explicit TimerWheel(unsigned shift = 20, std::size_t buckets = 256)
      : shift_(shift), ring_(buckets) {}

  /// Arms a timer at absolute `deadline` and returns its id (never 0).
  Id arm(Time deadline) {
    const Id id = next_id_++;
    deadlines_[id] = deadline;
    place(id, deadline);
    return id;
  }

  /// Disarms `id`; false when the id is unknown or already expired.
  bool cancel(Id id) { return deadlines_.erase(id) != 0; }

  /// Moves a live timer to a new deadline (earlier or later); false when
  /// the id is unknown or already expired. The stale bucket entry is
  /// dropped lazily; the new deadline gets a fresh bucket slot.
  bool rearm(Id id, Time deadline) {
    auto it = deadlines_.find(id);
    if (it == deadlines_.end()) return false;
    it->second = deadline;
    place(id, deadline);
    return true;
  }

  /// True while `id` is armed and unexpired.
  [[nodiscard]] bool armed(Id id) const { return deadlines_.contains(id); }

  /// Deadline of a live timer (0 when unknown/expired).
  [[nodiscard]] Time deadline_of(Id id) const {
    auto it = deadlines_.find(id);
    return it != deadlines_.end() ? it->second : 0;
  }

  /// Earliest live deadline, or 0 when nothing is armed. O(live timers);
  /// callers that poll it hold few timers (a LeaseSet's leases).
  [[nodiscard]] Time next_deadline() const {
    Time best = 0;
    for (const auto& [id, deadline] : deadlines_) {
      if (best == 0 || deadline < best) best = deadline;
    }
    return best;
  }

  [[nodiscard]] std::size_t size() const { return deadlines_.size(); }
  [[nodiscard]] bool empty() const { return deadlines_.empty(); }

  /// Advances the wheel to `now`, appending every id whose deadline has
  /// passed to `expired` (in bucket order, then insertion order — the
  /// clock-edge contract: a timer armed exactly AT `now` fires, one
  /// armed one tick later does not). Expired ids are forgotten; re-check
  /// armed() rather than caching ids across an advance.
  void advance(Time now, std::vector<Id>& expired) {
    const std::uint64_t now_bucket = now >> shift_;
    // Cascade overflow timers whose buckets entered the horizon. The
    // overflow list is scanned at most once per horizon crossing, and
    // entries either cascade or stay far — no thrash.
    if (!far_.empty() && now_bucket + ring_.size() > far_horizon_) {
      std::vector<Id> keep;
      for (Id id : far_) {
        auto it = deadlines_.find(id);
        if (it == deadlines_.end()) continue;  // lazily dropped
        if ((it->second >> shift_) < now_bucket + ring_.size()) {
          ring_[(it->second >> shift_) % ring_.size()].push_back(id);
        } else {
          keep.push_back(id);
        }
      }
      far_ = std::move(keep);
      far_horizon_ = now_bucket + ring_.size();
    }
    // Drain every bucket the clock crossed, plus the current one. When
    // the jump exceeds a full revolution the drain range is clamped, so
    // ring slots alias: a surviving entry whose true bucket differs from
    // `b` may be a cascade victim of the clamp, not just a rearm's stale
    // slot — re-place it (duplicate slots are benign: the first drain
    // hit expires the id, later hits see it gone) instead of dropping
    // it, which would orphan the timer forever.
    const std::uint64_t start = cursor_;
    const std::uint64_t stop = now_bucket < start + ring_.size()
                                   ? now_bucket
                                   : start + ring_.size() - 1;
    cursor_ = now_bucket;  // place() below must target post-advance time
    for (std::uint64_t b = start; b <= stop; ++b) {
      auto& bucket = ring_[b % ring_.size()];
      std::size_t kept = 0;
      for (std::size_t i = 0; i < bucket.size(); ++i) {
        const Id id = bucket[i];
        auto it = deadlines_.find(id);
        if (it == deadlines_.end()) continue;  // cancelled
        if (it->second <= now) {
          expired.push_back(id);
          deadlines_.erase(it);
          continue;
        }
        // Unexpired ⇒ its true bucket is at/after the new cursor.
        const std::uint64_t home = it->second >> shift_;
        if (home == b ||
            (home < cursor_ + ring_.size() && home % ring_.size() == b % ring_.size())) {
          bucket[kept++] = id;  // right slot (possibly a later revolution)
        } else {
          place(id, it->second);  // rearmed away or aliased by a long jump
        }
      }
      bucket.resize(kept);
    }
  }

 private:
  void place(Id id, Time deadline) {
    // A deadline already behind the cursor (armed at or before "now")
    // lands in the cursor's own bucket, which every advance() scans —
    // it fires on the next tick instead of a full wheel turn late.
    const std::uint64_t bucket = std::max(deadline >> shift_, cursor_);
    if (bucket < cursor_ + ring_.size()) {
      ring_[bucket % ring_.size()].push_back(id);
    } else {
      far_.push_back(id);
      if (far_horizon_ == 0) far_horizon_ = cursor_ + ring_.size();
    }
  }

  unsigned shift_;
  std::vector<std::vector<Id>> ring_;
  std::vector<Id> far_;
  std::uint64_t far_horizon_ = 0;
  std::uint64_t cursor_ = 0;
  std::unordered_map<Id, Time> deadlines_;
  Id next_id_ = 1;
};

}  // namespace rfs::sim

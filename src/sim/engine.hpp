// Discrete-event simulation engine.
//
// The engine owns a time-ordered queue of coroutine resumptions. All
// simulated components (clients, resource manager, executors, NICs) are
// C++20 coroutines that suspend on awaitables (delays, events, channels)
// and are resumed by the engine at the right virtual time. The simulation
// is single-threaded and fully deterministic: ties in time are broken by
// insertion order.
#pragma once

#include <coroutine>
#include <cstdint>
#include <queue>
#include <unordered_map>
#include <vector>

#include "common/units.hpp"

namespace rfs::sim {

class Engine {
 public:
  Engine();
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current virtual time.
  [[nodiscard]] Time now() const { return now_; }

  /// Schedules `h` to resume at absolute time `t` (clamped to now()).
  void schedule_at(Time t, std::coroutine_handle<> h);

  /// Schedules `h` to resume after `d` nanoseconds.
  void schedule_after(Duration d, std::coroutine_handle<> h) { schedule_at(now_ + d, h); }

  /// Schedules `h` to resume at the current time, after already-queued
  /// same-time events.
  void schedule_now(std::coroutine_handle<> h) { schedule_at(now_, h); }

  /// Runs until the event queue drains. Returns the final time.
  Time run();

  /// Runs until the queue drains or virtual time would exceed `deadline`.
  /// Events scheduled past the deadline remain queued.
  Time run_until(Time deadline);

  /// Executes a single event if one is pending. Returns false when idle.
  bool step();

  /// Number of pending events.
  [[nodiscard]] std::size_t pending() const { return queue_.size(); }

  /// Tracks a detached (spawned) coroutine so still-suspended actors can
  /// be reclaimed at teardown. Returns the registration id the task's
  /// final suspend passes back to deregister_detached().
  std::uint64_t register_detached(std::coroutine_handle<> h);
  void deregister_detached(std::uint64_t id);

  /// Destroys every detached coroutine that has not completed and drops
  /// all pending events. Call only when the engine will never run again,
  /// and while the objects those coroutines reference are still alive
  /// (e.g. first thing in a harness destructor); ~Engine calls it as a
  /// backstop. Frame destruction runs the destructors of suspended
  /// locals, so nothing the actors held (streams, buffers, connections)
  /// outlives the simulation.
  void drain_detached();

  /// The engine currently inside run()/step() on this thread. Awaitables
  /// use this to find their engine without threading it through every call.
  static Engine* current();

  /// Makes this engine current even outside run() — used by tests and by
  /// code that creates simulation objects before starting the loop.
  void make_current();

 private:
  struct Item {
    Time t;
    std::uint64_t seq;
    std::coroutine_handle<> h;
    bool operator>(const Item& o) const {
      if (t != o.t) return t > o.t;
      return seq > o.seq;
    }
  };

  std::priority_queue<Item, std::vector<Item>, std::greater<>> queue_;
  std::unordered_map<std::uint64_t, std::coroutine_handle<>> detached_;
  Time now_ = 0;
  std::uint64_t seq_ = 0;
  std::uint64_t next_detached_id_ = 1;
};

/// RAII helper: makes an engine current for the enclosing scope.
class CurrentEngineScope {
 public:
  explicit CurrentEngineScope(Engine& e);
  ~CurrentEngineScope();

 private:
  Engine* prev_;
};

}  // namespace rfs::sim

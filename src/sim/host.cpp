#include "sim/host.hpp"

namespace rfs::sim {

Host::Host(std::string name, unsigned cores, std::uint64_t memory_bytes)
    : name_(std::move(name)), cores_(cores), memory_(memory_bytes), core_sem_(cores) {}

Task<void> Host::compute(Duration d) {
  co_await core_sem_.acquire();
  co_await delay(d);
  busy_ns_ += d;
  core_sem_.release();
}

Task<void> Host::compute_on_held_core(Duration d) {
  co_await delay(d);
  busy_ns_ += d;
}

bool Host::try_acquire_core() { return core_sem_.try_acquire(); }

Status Host::reserve_memory(std::uint64_t bytes) {
  if (memory_used_ + bytes > memory_) {
    return Error::make(1, "host " + name_ + ": out of memory");
  }
  memory_used_ += bytes;
  return Status::success();
}

void Host::release_memory(std::uint64_t bytes) {
  memory_used_ = bytes > memory_used_ ? 0 : memory_used_ - bytes;
}

}  // namespace rfs::sim

// Coroutine task type for simulation processes.
//
// `Task<T>` is a lazy coroutine: nothing runs until it is either awaited
// by another task (structured, returns T) or detached onto the engine via
// `spawn` (fire-and-forget simulation actor). Completion uses symmetric
// transfer, so arbitrarily deep task chains do not grow the stack.
#pragma once

#include <cassert>
#include <coroutine>
#include <exception>
#include <optional>
#include <utility>

#include "sim/engine.hpp"

namespace rfs::sim {

template <typename T = void>
class [[nodiscard]] Task;

namespace detail {

struct PromiseBase {
  std::coroutine_handle<> continuation;
  bool detached = false;
  Engine* owner = nullptr;        // set by spawn(): engine tracking this actor
  std::uint64_t detached_id = 0;  // registration in the owner's live set
  std::exception_ptr exception;

  std::suspend_always initial_suspend() noexcept { return {}; }

  struct FinalAwaiter {
    bool await_ready() noexcept { return false; }
    template <typename Promise>
    std::coroutine_handle<> await_suspend(std::coroutine_handle<Promise> h) noexcept {
      auto& p = h.promise();
      if (p.continuation) return p.continuation;
      if (p.detached) {
        if (p.exception) std::terminate();  // detached task failed: simulation bug
        if (p.owner != nullptr) p.owner->deregister_detached(p.detached_id);
        h.destroy();
      }
      return std::noop_coroutine();
    }
    void await_resume() noexcept {}
  };
  FinalAwaiter final_suspend() noexcept { return {}; }

  void unhandled_exception() { exception = std::current_exception(); }
};

}  // namespace detail

template <typename T>
class [[nodiscard]] Task {
 public:
  struct promise_type : detail::PromiseBase {
    std::optional<T> value;
    Task get_return_object() {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    void return_value(T v) { value.emplace(std::move(v)); }
  };

  Task() = default;
  explicit Task(std::coroutine_handle<promise_type> h) : handle_(h) {}
  Task(Task&& o) noexcept : handle_(std::exchange(o.handle_, {})) {}
  Task& operator=(Task&& o) noexcept {
    if (this != &o) {
      destroy();
      handle_ = std::exchange(o.handle_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  [[nodiscard]] bool valid() const { return static_cast<bool>(handle_); }

  /// Awaiting a task starts it and resumes the awaiter upon completion.
  auto operator co_await() && {
    struct Awaiter {
      std::coroutine_handle<promise_type> h;
      bool await_ready() const noexcept { return false; }
      std::coroutine_handle<> await_suspend(std::coroutine_handle<> cont) noexcept {
        h.promise().continuation = cont;
        return h;  // symmetric transfer: start the child now
      }
      T await_resume() {
        if (h.promise().exception) std::rethrow_exception(h.promise().exception);
        return std::move(*h.promise().value);
      }
    };
    return Awaiter{handle_};
  }

  /// Releases ownership (used by spawn).
  std::coroutine_handle<promise_type> release() { return std::exchange(handle_, {}); }

 private:
  void destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = {};
    }
  }
  std::coroutine_handle<promise_type> handle_;
};

template <>
class [[nodiscard]] Task<void> {
 public:
  struct promise_type : detail::PromiseBase {
    Task get_return_object() {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    void return_void() {}
  };

  Task() = default;
  explicit Task(std::coroutine_handle<promise_type> h) : handle_(h) {}
  Task(Task&& o) noexcept : handle_(std::exchange(o.handle_, {})) {}
  Task& operator=(Task&& o) noexcept {
    if (this != &o) {
      destroy();
      handle_ = std::exchange(o.handle_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  [[nodiscard]] bool valid() const { return static_cast<bool>(handle_); }

  auto operator co_await() && {
    struct Awaiter {
      std::coroutine_handle<promise_type> h;
      bool await_ready() const noexcept { return false; }
      std::coroutine_handle<> await_suspend(std::coroutine_handle<> cont) noexcept {
        h.promise().continuation = cont;
        return h;
      }
      void await_resume() {
        if (h.promise().exception) std::rethrow_exception(h.promise().exception);
      }
    };
    return Awaiter{handle_};
  }

  std::coroutine_handle<promise_type> release() { return std::exchange(handle_, {}); }

 private:
  void destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = {};
    }
  }
  std::coroutine_handle<promise_type> handle_;
};

/// Detaches `t` onto the engine: it starts at the current virtual time and
/// self-destroys upon completion. The canonical way to start an actor.
inline void spawn(Engine& engine, Task<void> t) {
  auto h = t.release();
  assert(h);
  h.promise().detached = true;
  h.promise().owner = &engine;
  h.promise().detached_id = engine.register_detached(h);
  engine.schedule_now(h);
}

/// Suspends the awaiting task for `d` nanoseconds of virtual time.
struct Delay {
  Duration d;
  bool await_ready() const noexcept { return d == 0 && false; }
  void await_suspend(std::coroutine_handle<> h) const {
    Engine::current()->schedule_after(d, h);
  }
  void await_resume() const noexcept {}
};

inline Delay delay(Duration d) { return Delay{d}; }

/// Suspends until absolute virtual time `t` (no-op when already past it).
struct DelayUntil {
  Time t;
  bool await_ready() const noexcept { return Engine::current()->now() >= t; }
  void await_suspend(std::coroutine_handle<> h) const { Engine::current()->schedule_at(t, h); }
  void await_resume() const noexcept {}
};

inline DelayUntil delay_until(Time t) { return DelayUntil{t}; }

}  // namespace rfs::sim

// Synchronization primitives for simulation tasks: events, channels,
// mutexes, semaphores and future/promise pairs. All of them operate in
// virtual time through the current Engine and are strictly FIFO, which
// keeps the simulation deterministic.
#pragma once

#include <cassert>
#include <coroutine>
#include <deque>
#include <memory>
#include <optional>
#include <utility>

#include "sim/task.hpp"

namespace rfs::sim {

/// Manual-reset broadcast event. `wait()` suspends until `set()`;
/// if already set, waiting completes immediately.
class Event {
 public:
  /// Awaitable returned by wait().
  struct Waiter {
    Event* ev;
    bool await_ready() const noexcept { return ev->set_; }
    void await_suspend(std::coroutine_handle<> h) { ev->waiters_.push_back(h); }
    void await_resume() const noexcept {}
  };

  Waiter wait() { return Waiter{this}; }

  /// Signals the event and wakes every waiter (scheduled at current time).
  void set() {
    set_ = true;
    wake_all();
  }

  /// Clears the signal; subsequent wait() calls suspend again.
  void reset() { set_ = false; }

  [[nodiscard]] bool is_set() const { return set_; }
  [[nodiscard]] std::size_t waiter_count() const { return waiters_.size(); }

  /// Wakes all current waiters without latching the signal (condition
  /// variable style notify_all).
  void pulse() { wake_all(); }

 private:
  void wake_all() {
    auto* eng = Engine::current();
    while (!waiters_.empty()) {
      auto h = waiters_.front();
      waiters_.pop_front();
      eng->schedule_now(h);
    }
  }

  bool set_ = false;
  std::deque<std::coroutine_handle<>> waiters_;
};

/// Unbounded FIFO channel. Multiple producers/consumers; receivers are
/// woken in FIFO order. `close()` wakes all receivers with empty results.
template <typename T>
class Channel {
 public:
  struct RecvAwaiter {
    Channel* ch;
    std::optional<T> result;

    bool await_ready() {
      if (!ch->items_.empty()) {
        result.emplace(std::move(ch->items_.front()));
        ch->items_.pop_front();
        return true;
      }
      return ch->closed_;
    }
    void await_suspend(std::coroutine_handle<> h) {
      ch->recv_waiters_.push_back({h, this});
    }
    std::optional<T> await_resume() { return std::move(result); }
  };

  /// Sends a value; wakes the oldest waiting receiver if any.
  void send(T value) {
    assert(!closed_ && "send on closed channel");
    if (!recv_waiters_.empty()) {
      auto [h, awaiter] = recv_waiters_.front();
      recv_waiters_.pop_front();
      awaiter->result.emplace(std::move(value));
      Engine::current()->schedule_now(h);
      return;
    }
    items_.push_back(std::move(value));
  }

  /// Receives the next value, suspending while the channel is empty.
  /// Returns nullopt once the channel is closed and drained.
  RecvAwaiter recv() { return RecvAwaiter{this, std::nullopt}; }

  /// Non-blocking receive.
  std::optional<T> try_recv() {
    if (items_.empty()) return std::nullopt;
    T v = std::move(items_.front());
    items_.pop_front();
    return v;
  }

  /// Closes the channel; queued items can still be received.
  void close() {
    closed_ = true;
    auto* eng = Engine::current();
    while (!recv_waiters_.empty()) {
      auto [h, awaiter] = recv_waiters_.front();
      recv_waiters_.pop_front();
      (void)awaiter;  // result stays empty -> receiver sees nullopt
      eng->schedule_now(h);
    }
  }

  [[nodiscard]] bool closed() const { return closed_; }
  [[nodiscard]] std::size_t size() const { return items_.size(); }
  [[nodiscard]] bool empty() const { return items_.empty(); }

 private:
  std::deque<T> items_;
  std::deque<std::pair<std::coroutine_handle<>, RecvAwaiter*>> recv_waiters_;
  bool closed_ = false;
};

/// Counting semaphore with FIFO wakeup.
class Semaphore {
 public:
  explicit Semaphore(std::size_t initial) : count_(initial) {}

  struct Acquire {
    Semaphore* sem;
    bool await_ready() {
      if (sem->count_ > 0) {
        --sem->count_;
        return true;
      }
      return false;
    }
    void await_suspend(std::coroutine_handle<> h) { sem->waiters_.push_back(h); }
    void await_resume() const noexcept {}
  };

  /// Suspends until a unit is available, then takes it.
  Acquire acquire() { return Acquire{this}; }

  /// Takes a unit if available without suspending.
  bool try_acquire() {
    if (count_ == 0) return false;
    --count_;
    return true;
  }

  /// Returns a unit; hands it directly to the oldest waiter if any.
  void release() {
    if (!waiters_.empty()) {
      auto h = waiters_.front();
      waiters_.pop_front();
      Engine::current()->schedule_now(h);
      return;
    }
    ++count_;
  }

  [[nodiscard]] std::size_t available() const { return count_; }
  [[nodiscard]] std::size_t waiting() const { return waiters_.size(); }

 private:
  std::size_t count_;
  std::deque<std::coroutine_handle<>> waiters_;
};

/// FIFO mutex built on a binary semaphore.
class Mutex {
 public:
  Mutex() : sem_(1) {}
  Semaphore::Acquire lock() { return sem_.acquire(); }
  bool try_lock() { return sem_.try_acquire(); }
  void unlock() { sem_.release(); }

 private:
  Semaphore sem_;
};

namespace detail {
template <typename T>
struct FutureState {
  std::optional<T> value;
  std::exception_ptr exception;
  std::deque<std::coroutine_handle<>> waiters;
  bool ready = false;

  void fulfill() {
    ready = true;
    auto* eng = Engine::current();
    while (!waiters.empty()) {
      eng->schedule_now(waiters.front());
      waiters.pop_front();
    }
  }
};
}  // namespace detail

template <typename T>
class Promise;

/// Future for a value produced by another simulation task. Mirrors the
/// std::future used by the paper's invoker API (`f.get()`), adapted to
/// coroutines: `co_await fut.get()`.
template <typename T>
class Future {
 public:
  Future() = default;
  explicit Future(std::shared_ptr<detail::FutureState<T>> st) : state_(std::move(st)) {}

  [[nodiscard]] bool valid() const { return static_cast<bool>(state_); }
  [[nodiscard]] bool ready() const { return state_ && state_->ready; }

  struct GetAwaiter {
    std::shared_ptr<detail::FutureState<T>> st;
    bool await_ready() const { return st->ready; }
    void await_suspend(std::coroutine_handle<> h) { st->waiters.push_back(h); }
    T await_resume() {
      if (st->exception) std::rethrow_exception(st->exception);
      return std::move(*st->value);
    }
  };

  /// Awaitable that completes when the producer fulfills the promise.
  GetAwaiter get() const {
    assert(state_);
    return GetAwaiter{state_};
  }

  /// Value accessor once ready() is true (used outside coroutines).
  const T& peek() const {
    assert(ready());
    return *state_->value;
  }

 private:
  std::shared_ptr<detail::FutureState<T>> state_;
};

template <typename T>
class Promise {
 public:
  Promise() : state_(std::make_shared<detail::FutureState<T>>()) {}

  Future<T> get_future() { return Future<T>(state_); }

  void set_value(T v) {
    assert(!state_->ready);
    state_->value.emplace(std::move(v));
    state_->fulfill();
  }

  void set_exception(std::exception_ptr e) {
    assert(!state_->ready);
    state_->exception = e;
    state_->fulfill();
  }

  [[nodiscard]] bool fulfilled() const { return state_->ready; }

 private:
  std::shared_ptr<detail::FutureState<T>> state_;
};

/// Runs `n` homogeneous tasks and completes when all finish. The tasks
/// are spawned detached; completion is tracked through a shared counter.
class WaitGroup {
 public:
  explicit WaitGroup(std::size_t n = 0) : remaining_(n) {}

  void add(std::size_t n = 1) { remaining_ += n; }

  void done() {
    assert(remaining_ > 0);
    if (--remaining_ == 0) event_.set();
  }

  Event::Waiter wait() {
    if (remaining_ == 0) event_.set();
    return event_.wait();
  }

  [[nodiscard]] std::size_t remaining() const { return remaining_; }

 private:
  std::size_t remaining_;
  Event event_;
};

}  // namespace rfs::sim

// Host model: a named machine with a fixed number of CPU cores and a
// memory budget. Cores are semaphore units; computing acquires a core for
// the duration of the kernel. Busy time is accounted per host, which feeds
// both the utilization figures (Fig. 2) and the rFaaS billing model.
#pragma once

#include <cstdint>
#include <string>

#include "common/result.hpp"
#include "sim/sync.hpp"

namespace rfs::sim {

class Host {
 public:
  Host(std::string name, unsigned cores, std::uint64_t memory_bytes);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] unsigned cores() const { return cores_; }
  [[nodiscard]] std::uint64_t memory_bytes() const { return memory_; }

  /// Occupies one core for `d` nanoseconds of virtual time, waiting for a
  /// free core first. Accumulates busy time.
  Task<void> compute(Duration d);

  /// Occupies one core for `d` assuming the caller already holds a core
  /// token (hot worker executing a function on its pinned core).
  Task<void> compute_on_held_core(Duration d);

  /// Non-blocking core acquisition; used by warm invocations to test
  /// whether the target core is busy (Fig. 6 "check if the core is busy").
  bool try_acquire_core();

  /// Blocking core acquisition for long-lived pinned workers.
  Semaphore::Acquire acquire_core() { return core_sem_.acquire(); }

  void release_core() { core_sem_.release(); }

  [[nodiscard]] unsigned free_cores() const {
    return static_cast<unsigned>(core_sem_.available());
  }

  /// Reserves `bytes` of memory; fails when over budget.
  Status reserve_memory(std::uint64_t bytes);
  void release_memory(std::uint64_t bytes);
  [[nodiscard]] std::uint64_t free_memory() const { return memory_ - memory_used_; }
  [[nodiscard]] std::uint64_t used_memory() const { return memory_used_; }

  /// Total core-busy nanoseconds accumulated so far.
  [[nodiscard]] std::uint64_t busy_ns() const { return busy_ns_; }

  /// Adds externally-measured busy time (e.g. hot-polling occupancy that
  /// is tracked by the worker rather than through compute()).
  void note_busy(Duration d) { busy_ns_ += d; }

 private:
  std::string name_;
  unsigned cores_;
  std::uint64_t memory_;
  std::uint64_t memory_used_ = 0;
  std::uint64_t busy_ns_ = 0;
  Semaphore core_sem_;
};

}  // namespace rfs::sim

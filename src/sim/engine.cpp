#include "sim/engine.hpp"

namespace rfs::sim {

namespace {
thread_local Engine* t_current = nullptr;
}  // namespace

Engine::Engine() {
  if (t_current == nullptr) t_current = this;
}

Engine::~Engine() {
  // Destroy still-suspended coroutines? They are owned by their Task
  // objects or are detached self-destroying tasks; destroying handles that
  // may already be dangling is unsafe, so we simply drop the queue. Tests
  // drain their engines; leaked detached tasks at teardown are a test bug
  // surfaced by sanitizers rather than hidden here.
  if (t_current == this) t_current = nullptr;
}

void Engine::schedule_at(Time t, std::coroutine_handle<> h) {
  if (t < now_) t = now_;
  queue_.push(Item{t, seq_++, h});
}

Time Engine::run() {
  CurrentEngineScope scope(*this);
  while (step()) {
  }
  return now_;
}

Time Engine::run_until(Time deadline) {
  CurrentEngineScope scope(*this);
  while (!queue_.empty() && queue_.top().t <= deadline) {
    step();
  }
  if (now_ < deadline) now_ = deadline;
  return now_;
}

bool Engine::step() {
  if (queue_.empty()) return false;
  Item item = queue_.top();
  queue_.pop();
  now_ = item.t;
  CurrentEngineScope scope(*this);
  item.h.resume();
  return true;
}

Engine* Engine::current() { return t_current; }

void Engine::make_current() { t_current = this; }

CurrentEngineScope::CurrentEngineScope(Engine& e) : prev_(t_current) { t_current = &e; }

CurrentEngineScope::~CurrentEngineScope() { t_current = prev_; }

}  // namespace rfs::sim

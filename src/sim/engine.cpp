#include "sim/engine.hpp"

namespace rfs::sim {

namespace {
thread_local Engine* t_current = nullptr;
}  // namespace

Engine::Engine() {
  if (t_current == nullptr) t_current = this;
}

Engine::~Engine() {
  // Backstop for owners that did not drain explicitly. Harnesses drain
  // first thing in their own destructors, while the simulated objects the
  // actors reference are still alive — prefer that.
  drain_detached();
  if (t_current == this) t_current = nullptr;
}

std::uint64_t Engine::register_detached(std::coroutine_handle<> h) {
  const std::uint64_t id = next_detached_id_++;
  detached_.emplace(id, h);
  return id;
}

void Engine::deregister_detached(std::uint64_t id) { detached_.erase(id); }

void Engine::drain_detached() {
  // Swap out first: destroying a frame destroys the child tasks it owns,
  // but children are never registered (only spawn() registers), so the
  // map cannot be mutated mid-iteration — the swap just makes that
  // invariant unnecessary for safety.
  std::unordered_map<std::uint64_t, std::coroutine_handle<>> victims;
  victims.swap(detached_);
  for (auto& [id, h] : victims) h.destroy();
  // Queued resumptions may now dangle (their frames died above); nothing
  // may run after a drain, so drop them wholesale.
  queue_ = {};
}

void Engine::schedule_at(Time t, std::coroutine_handle<> h) {
  if (t < now_) t = now_;
  queue_.push(Item{t, seq_++, h});
}

Time Engine::run() {
  CurrentEngineScope scope(*this);
  while (step()) {
  }
  return now_;
}

Time Engine::run_until(Time deadline) {
  CurrentEngineScope scope(*this);
  while (!queue_.empty() && queue_.top().t <= deadline) {
    step();
  }
  if (now_ < deadline) now_ = deadline;
  return now_;
}

bool Engine::step() {
  if (queue_.empty()) return false;
  Item item = queue_.top();
  queue_.pop();
  now_ = item.t;
  CurrentEngineScope scope(*this);
  item.h.resume();
  return true;
}

Engine* Engine::current() { return t_current; }

void Engine::make_current() { t_current = this; }

CurrentEngineScope::CurrentEngineScope(Engine& e) : prev_(t_current) { t_current = &e; }

CurrentEngineScope::~CurrentEngineScope() { t_current = prev_; }

}  // namespace rfs::sim

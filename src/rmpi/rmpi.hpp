// Minimal message-passing runtime over the simulated cluster — the MPI
// stand-in hosting the Fig. 12/13 applications. Ranks are simulation
// tasks pinned to host cores; point-to-point messages cross the switch
// (paying RDMA wire costs) and collectives use a binomial-tree model.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "common/bytes.hpp"
#include "fabric/link.hpp"
#include "sim/host.hpp"

namespace rfs::rmpi {

class World;

/// Per-rank handle passed to the rank function.
class Rank {
 public:
  Rank(World& world, int rank) : world_(world), rank_(rank) {}

  [[nodiscard]] int rank() const { return rank_; }
  [[nodiscard]] int size() const;
  [[nodiscard]] sim::Host& host();
  [[nodiscard]] fabric::DeviceId device() const;

  /// Occupies a core of the rank's host for `d` of virtual time.
  sim::Task<void> compute(Duration d);

  /// Blocking point-to-point send/recv (rendezvous-free: the payload is
  /// buffered, the wire time is charged on delivery).
  void send(int dst, Bytes data);
  sim::Task<Bytes> recv(int src);

  /// Synchronizes all ranks (binomial-tree latency model).
  sim::Task<void> barrier();

  /// Max/sum reduction to every rank.
  sim::Task<double> allreduce_max(double value);
  sim::Task<double> allreduce_sum(double value);

 private:
  World& world_;
  int rank_;
};

using RankFn = std::function<sim::Task<void>(Rank&)>;

/// A set of ranks distributed round-robin over hosts. `devices[i]` is the
/// NIC of `hosts[i]`; messages between ranks on different hosts pay the
/// switch's wire costs, same-host messages pay a memcpy-speed copy.
class World {
 public:
  World(sim::Engine& engine, fabric::Switch& net, std::vector<sim::Host*> hosts,
        std::vector<fabric::DeviceId> devices, int nranks);

  /// Spawns every rank and completes when all of them return.
  sim::Task<void> run(RankFn fn);

  [[nodiscard]] int size() const { return nranks_; }
  [[nodiscard]] sim::Engine& engine() { return engine_; }

 private:
  friend class Rank;

  [[nodiscard]] sim::Host& host_of(int rank) { return *hosts_[rank % hosts_.size()]; }
  [[nodiscard]] fabric::DeviceId device_of(int rank) const {
    return devices_[rank % devices_.size()];
  }
  sim::Channel<Bytes>& channel(int src, int dst);

  sim::Engine& engine_;
  fabric::Switch& net_;
  std::vector<sim::Host*> hosts_;
  std::vector<fabric::DeviceId> devices_;
  int nranks_;

  std::map<std::pair<int, int>, std::unique_ptr<sim::Channel<Bytes>>> channels_;
  // Barrier/allreduce state (generation-counted, reused across calls).
  struct Collective {
    std::size_t arrived = 0;
    double accum_max = 0;
    double accum_sum = 0;
    double last_max = 0;   // snapshot read by waiters of the finished round
    double last_sum = 0;
    bool first = true;
    sim::Event release;
  };
  Collective coll_;
  std::uint64_t coll_generation_ = 0;
};

}  // namespace rfs::rmpi

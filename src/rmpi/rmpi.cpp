#include "rmpi/rmpi.hpp"

#include <algorithm>
#include <cmath>

namespace rfs::rmpi {

int Rank::size() const { return world_.size(); }
sim::Host& Rank::host() { return world_.host_of(rank_); }
fabric::DeviceId Rank::device() const { return world_.device_of(rank_); }

sim::Task<void> Rank::compute(Duration d) { return world_.host_of(rank_).compute(d); }

void Rank::send(int dst, Bytes data) {
  auto deliver = [](World* world, int src, int dst_rank, Bytes payload) -> sim::Task<void> {
    const auto from = world->device_of(src);
    const auto to = world->device_of(dst_rank);
    if (from == to) {
      // Same host: shared-memory copy at ~10 GB/s.
      co_await sim::delay(transfer_time(payload.size(), 1e10));
    } else {
      Time arrival = world->net_.reserve_rdma(from, to, payload.size());
      co_await sim::delay_until(arrival);
    }
    world->channel(src, dst_rank).send(std::move(payload));
  };
  sim::spawn(world_.engine_, deliver(&world_, rank_, dst, std::move(data)));
}

sim::Task<Bytes> Rank::recv(int src) {
  auto item = co_await world_.channel(src, rank_).recv();
  co_return item ? std::move(*item) : Bytes{};
}

sim::Task<void> Rank::barrier() {
  (void)co_await allreduce_max(0.0);
}

namespace {
Duration tree_latency(int nranks) {
  // Binomial tree: ceil(log2(p)) hops up + down at ~1.9 us per hop
  // (small-message RDMA one-way latency).
  if (nranks <= 1) return 0;
  const auto hops = static_cast<Duration>(std::ceil(std::log2(nranks)));
  return 2 * hops * 1900;
}
}  // namespace

sim::Task<double> Rank::allreduce_max(double value) {
  auto& coll = world_.coll_;
  if (coll.first) {
    coll.accum_max = value;
    coll.accum_sum = value;
    coll.first = false;
  } else {
    coll.accum_max = std::max(coll.accum_max, value);
    coll.accum_sum += value;
  }
  ++coll.arrived;
  const std::uint64_t my_generation = world_.coll_generation_;
  if (coll.arrived == static_cast<std::size_t>(world_.nranks_)) {
    co_await sim::delay(tree_latency(world_.nranks_));
    coll.last_max = coll.accum_max;
    coll.last_sum = coll.accum_sum;
    ++world_.coll_generation_;
    coll.arrived = 0;
    coll.first = true;
    coll.release.pulse();
    co_return coll.last_max;
  }
  while (world_.coll_generation_ == my_generation) {
    co_await coll.release.wait();
  }
  co_return coll.last_max;
}

sim::Task<double> Rank::allreduce_sum(double value) {
  auto& coll = world_.coll_;
  if (coll.first) {
    coll.accum_max = value;
    coll.accum_sum = value;
    coll.first = false;
  } else {
    coll.accum_max = std::max(coll.accum_max, value);
    coll.accum_sum += value;
  }
  ++coll.arrived;
  const std::uint64_t my_generation = world_.coll_generation_;
  if (coll.arrived == static_cast<std::size_t>(world_.nranks_)) {
    co_await sim::delay(tree_latency(world_.nranks_));
    coll.last_max = coll.accum_max;
    coll.last_sum = coll.accum_sum;
    ++world_.coll_generation_;
    coll.arrived = 0;
    coll.first = true;
    coll.release.pulse();
    co_return coll.last_sum;
  }
  while (world_.coll_generation_ == my_generation) {
    co_await coll.release.wait();
  }
  co_return coll.last_sum;
}

World::World(sim::Engine& engine, fabric::Switch& net, std::vector<sim::Host*> hosts,
             std::vector<fabric::DeviceId> devices, int nranks)
    : engine_(engine), net_(net), hosts_(std::move(hosts)), devices_(std::move(devices)),
      nranks_(nranks) {}

sim::Channel<Bytes>& World::channel(int src, int dst) {
  auto key = std::make_pair(src, dst);
  auto it = channels_.find(key);
  if (it == channels_.end()) {
    it = channels_.emplace(key, std::make_unique<sim::Channel<Bytes>>()).first;
  }
  return *it->second;
}

sim::Task<void> World::run(RankFn fn) {
  sim::WaitGroup wg(static_cast<std::size_t>(nranks_));
  std::vector<std::unique_ptr<Rank>> ranks;
  ranks.reserve(static_cast<std::size_t>(nranks_));
  for (int r = 0; r < nranks_; ++r) {
    ranks.push_back(std::make_unique<Rank>(*this, r));
    auto body = [](RankFn f, Rank* rank, sim::WaitGroup* group) -> sim::Task<void> {
      co_await f(*rank);
      group->done();
    };
    sim::spawn(engine_, body(fn, ranks.back().get(), &wg));
  }
  co_await wg.wait();
}

}  // namespace rfs::rmpi

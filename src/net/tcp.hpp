// TCP-style reliable messaging over the same simulated switch.
//
// The control plane of rFaaS (lease requests, allocator traffic) and the
// baseline FaaS platforms run over this transport. It shares the physical
// links with RDMA traffic but pays the kernel network stack cost on both
// sides and a lower effective single-stream bandwidth — the difference
// Fig. 8 plots between "RDMA" and "TCP/IP".
//
// The stream is message-oriented: one send() delivers one framed message,
// as if the application ran a length-prefixed protocol over a socket.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "common/bytes.hpp"
#include "common/result.hpp"
#include "fabric/link.hpp"
#include "sim/sync.hpp"

namespace rfs::net {

class FaultInjector;
class TcpNetwork;

/// One direction-agnostic endpoint pair. Obtain via connect()/accept().
class TcpStream : public std::enable_shared_from_this<TcpStream> {
 public:
  /// Sends one framed message to the peer (returns immediately; delivery
  /// is asynchronous, ordered, and reliable).
  void send(Bytes message);

  /// Receives the next message; nullopt when the peer closed.
  sim::Task<std::optional<Bytes>> recv();

  /// Closes both directions; the peer's pending recv() returns nullopt.
  void close();

  [[nodiscard]] bool closed() const { return closed_; }
  [[nodiscard]] fabric::DeviceId local_device() const { return local_; }
  [[nodiscard]] fabric::DeviceId remote_device() const { return remote_; }

 private:
  friend class TcpNetwork;
  TcpStream(TcpNetwork& net, fabric::DeviceId local, fabric::DeviceId remote)
      : net_(net), local_(local), remote_(remote) {}

  sim::Task<void> deliver(std::shared_ptr<TcpStream> peer, Bytes message);
  sim::Task<void> transmit(std::shared_ptr<TcpStream> peer, Bytes message, Duration extra_delay);

  TcpNetwork& net_;
  fabric::DeviceId local_;
  fabric::DeviceId remote_;
  std::shared_ptr<TcpStream> peer_;
  sim::Channel<Bytes> inbox_;
  bool closed_ = false;
};

/// Listening socket.
class TcpListener {
 public:
  /// Waits for the next inbound connection; nullptr after shutdown().
  sim::Task<std::shared_ptr<TcpStream>> accept();

  void shutdown() { pending_.close(); }

 private:
  friend class TcpNetwork;
  sim::Channel<std::shared_ptr<TcpStream>> pending_;
};

/// Factory for listeners and outbound connections.
class TcpNetwork {
 public:
  TcpNetwork(sim::Engine& engine, fabric::Switch& net) : engine_(engine), switch_(net) {}
  ~TcpNetwork();

  [[nodiscard]] sim::Engine& engine() { return engine_; }
  [[nodiscard]] fabric::Switch& link() { return switch_; }
  [[nodiscard]] const fabric::NetworkModel& model() const { return switch_.model(); }

  /// Binds a listener to (device, port).
  TcpListener& listen(fabric::DeviceId dev, std::uint16_t port);

  /// Connects to a listening endpoint; pays the handshake latency.
  sim::Task<Result<std::shared_ptr<TcpStream>>> connect(fabric::DeviceId from,
                                                        fabric::DeviceId to, std::uint16_t port);

  /// Installs (or clears, with nullptr) the chaos decision source every
  /// message consults before touching the wire. Not owned; the injector
  /// must outlive the network. nullptr (the default) is the seed
  /// behaviour: exactly-once, in-order delivery.
  void set_fault_injector(FaultInjector* injector) { faults_ = injector; }
  [[nodiscard]] FaultInjector* fault_injector() const { return faults_; }

 private:
  void track(const std::shared_ptr<TcpStream>& stream);

  sim::Engine& engine_;
  fabric::Switch& switch_;
  FaultInjector* faults_ = nullptr;
  std::map<std::pair<fabric::DeviceId, std::uint16_t>, std::unique_ptr<TcpListener>> listeners_;
  /// Every stream pair ever created (client side; the peer link reaches
  /// the server side). Only used to break peer cycles at teardown.
  std::vector<std::weak_ptr<TcpStream>> streams_;
};

}  // namespace rfs::net

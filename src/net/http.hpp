// Minimal HTTP/1.1 message model with real text serialization/parsing.
// The cloud baselines (AWS Lambda gateway, OpenWhisk API gateway) exchange
// genuine HTTP messages over the TCP transport, so header overheads and
// base64 body inflation are measured, not assumed.
#pragma once

#include <map>
#include <string>

#include "common/bytes.hpp"
#include "common/result.hpp"
#include "net/tcp.hpp"

namespace rfs::net {

struct HttpRequest {
  std::string method = "POST";
  std::string path = "/";
  std::map<std::string, std::string> headers;
  std::string body;

  [[nodiscard]] Bytes serialize() const;
  static Result<HttpRequest> parse(const Bytes& raw);
};

struct HttpResponse {
  int status = 200;
  std::map<std::string, std::string> headers;
  std::string body;

  [[nodiscard]] Bytes serialize() const;
  static Result<HttpResponse> parse(const Bytes& raw);

  [[nodiscard]] bool ok() const { return status >= 200 && status < 300; }
};

/// Sends the request on `stream` and awaits the response.
sim::Task<Result<HttpResponse>> http_roundtrip(TcpStream& stream, const HttpRequest& request);

/// Reads one request from `stream`; nullopt when the peer closed.
sim::Task<std::optional<HttpRequest>> http_read_request(TcpStream& stream);

/// Writes a response to `stream`.
void http_write_response(TcpStream& stream, const HttpResponse& response);

}  // namespace rfs::net

// Fault-injecting link model for the simulated network.
//
// Real datacenter links drop, duplicate, delay and reorder packets; the
// seed transport delivered every message exactly once and in order, so
// the lease protocol had never been exercised against the failures it
// must survive at scale (ROADMAP item 3). A FaultInjector sits between
// TcpStream::send and delivery: per directed link (or as a default for
// all links) it decides — from a single seeded deterministic RNG — to
// drop a message, deliver extra copies, or hold it long enough that
// later messages overtake it. Scheduled partitions black-hole a device
// pair for a time window.
//
// Every run is replayable from one uint64_t seed: the simulation is
// single-threaded and delivery decisions are drawn in event order, so a
// failing chaos schedule reproduces exactly (RFS_CHAOS_SEED in
// bench/fig19_chaos.cpp).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "fabric/verbs.hpp"

namespace rfs::net {

/// Fault probabilities of one directed link. Probabilities are evaluated
/// independently per message; `reorder_p`/`delay_p` both inject an extra
/// uniform delay in [delay_min, delay_max] before the message touches
/// the wire (reordering emerges when later messages overtake the held
/// one), tracked under separate counters so schedules can weight them.
struct FaultSpec {
  double drop_p = 0.0;     ///< message silently discarded
  double dup_p = 0.0;      ///< a second copy is delivered
  double reorder_p = 0.0;  ///< held back so later sends overtake it
  double delay_p = 0.0;    ///< extra latency without intent to reorder
  Duration delay_min = 200_us;
  Duration delay_max = 2_ms;

  /// Uniform loss/dup/reorder at probability `p` each (the chaos bench's
  /// single-knob schedules).
  static FaultSpec symmetric(double p) {
    FaultSpec s;
    s.drop_p = s.dup_p = s.reorder_p = p;
    return s;
  }
};

/// Seeded chaos decision source consulted by the transport on every
/// message. Direction-agnostic configuration: set_link(a, b, spec)
/// applies to both a->b and b->a.
class FaultInjector {
 public:
  explicit FaultInjector(std::uint64_t seed = 1) : rng_(seed), seed_(seed) {}

  /// What the transport must do with one message.
  struct Decision {
    bool drop = false;
    unsigned duplicates = 0;   ///< extra copies to deliver
    Duration extra_delay = 0;  ///< added before the wire reservation
  };

  /// Applies to every link without an explicit spec.
  void set_default(const FaultSpec& spec) { default_spec_ = spec; }

  /// Applies to messages between `a` and `b` (both directions).
  void set_link(fabric::DeviceId a, fabric::DeviceId b, const FaultSpec& spec) {
    links_[key(a, b)] = spec;
  }

  /// Black-holes every message between `a` and `b` (both directions)
  /// with a send time in [from, until).
  void add_partition(fabric::DeviceId a, fabric::DeviceId b, Time from, Time until) {
    partitions_.push_back({key(a, b), from, until});
  }

  /// Draws the fate of one message from src to dst sent at `now`.
  Decision decide(fabric::DeviceId src, fabric::DeviceId dst, Time now);

  [[nodiscard]] std::uint64_t seed() const { return seed_; }

  /// Chaos accounting, aggregated over all links.
  struct Counters {
    std::uint64_t messages = 0;
    std::uint64_t dropped = 0;
    std::uint64_t duplicated = 0;
    std::uint64_t reordered = 0;
    std::uint64_t delayed = 0;
    std::uint64_t partitioned = 0;  ///< drops caused by a partition window
  };
  [[nodiscard]] const Counters& counters() const { return counters_; }

 private:
  static std::uint64_t key(fabric::DeviceId a, fabric::DeviceId b) {
    const std::uint64_t lo = a < b ? a : b;
    const std::uint64_t hi = a < b ? b : a;
    return (hi << 32) | lo;
  }

  struct Partition {
    std::uint64_t link;
    Time from;
    Time until;
  };

  Rng rng_;
  std::uint64_t seed_;
  FaultSpec default_spec_{};
  std::unordered_map<std::uint64_t, FaultSpec> links_;
  std::vector<Partition> partitions_;
  Counters counters_;
};

/// Executor-side fault probabilities, evaluated independently per
/// invocation dispatch. Unlike link faults (which hit messages on the
/// wire), these model the failure modes of the worker itself: the
/// process crashing mid-invocation, the sandbox wedging and never
/// answering, the host going "gray" (alive but slow — the hardest mode
/// to detect), and the response payload getting corrupted in flight.
struct WorkerFaultSpec {
  double crash_p = 0.0;    ///< worker dies before executing; no reply ever
  double stuck_p = 0.0;    ///< sandbox wedges; invocation never completes
  double gray_p = 0.0;     ///< dispatch pauses for a gray window first
  double corrupt_p = 0.0;  ///< output bytes flipped after execution
  /// Gray window bounds: the injected pre-dispatch pause is uniform in
  /// [gray_pause_min, gray_pause_max] scaled by gray_multiplier.
  double gray_multiplier = 1.0;
  Duration gray_pause_min = 2_ms;
  Duration gray_pause_max = 20_ms;

  [[nodiscard]] bool enabled() const {
    return crash_p > 0 || stuck_p > 0 || gray_p > 0 || corrupt_p > 0;
  }
};

/// Seeded executor-fault decision source, consulted by each Worker
/// immediately before dispatching an invocation. Shares the replayable
/// chaos discipline of FaultInjector: one uint64_t seed, fixed-order
/// draws, event-order determinism (RFS_CHAOS_SEED). Also hosts the
/// global execution registry for the double-execution gate: every
/// executed invocation tag is noted once, and a second execution of the
/// same tag — the exact bug the dedup table and deadline propagation
/// exist to prevent — is counted, never silently absorbed.
class WorkerFaultInjector {
 public:
  explicit WorkerFaultInjector(std::uint64_t seed = 1) : rng_(seed), seed_(seed) {}

  /// The injected fate of one invocation dispatch.
  struct Decision {
    bool crash = false;
    bool stuck = false;
    bool corrupt = false;
    Duration gray_delay = 0;  ///< pre-dispatch pause (0 = healthy)
  };

  /// Applies to every executor device without an explicit spec.
  void set_default(const WorkerFaultSpec& spec) { default_spec_ = spec; }

  /// Applies to workers of the executor on fabric device `device`.
  void set_executor(fabric::DeviceId device, const WorkerFaultSpec& spec) {
    executors_[device] = spec;
  }

  /// Draws the fate of one invocation on `device`.
  Decision decide(fabric::DeviceId device);

  [[nodiscard]] std::uint64_t seed() const { return seed_; }

  /// Notes one execution of `tag`; returns false when the tag was
  /// already executed (a double execution). tag 0 (FT off) is ignored.
  bool note_execution(std::uint64_t tag);

  /// Chaos accounting, aggregated over all executors.
  struct Counters {
    std::uint64_t invocations = 0;
    std::uint64_t crashes = 0;
    std::uint64_t stucks = 0;
    std::uint64_t grays = 0;
    std::uint64_t corruptions = 0;
    std::uint64_t double_executions = 0;  ///< the fig21 zero-gate
  };
  [[nodiscard]] const Counters& counters() const { return counters_; }

 private:
  Rng rng_;
  std::uint64_t seed_;
  WorkerFaultSpec default_spec_{};
  std::unordered_map<std::uint64_t, WorkerFaultSpec> executors_;
  std::unordered_set<std::uint64_t> executed_tags_;
  Counters counters_;
};

}  // namespace rfs::net

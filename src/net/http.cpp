#include "net/http.hpp"

#include <charconv>

namespace rfs::net {

namespace {

void append(Bytes& out, const std::string& s) {
  out.insert(out.end(), s.begin(), s.end());
}

struct LineCursor {
  const Bytes& raw;
  std::size_t pos = 0;

  /// Returns the next CRLF-terminated line (without the terminator).
  Result<std::string> line() {
    for (std::size_t i = pos; i + 1 < raw.size(); ++i) {
      if (raw[i] == '\r' && raw[i + 1] == '\n') {
        std::string s(reinterpret_cast<const char*>(raw.data() + pos), i - pos);
        pos = i + 2;
        return s;
      }
    }
    return Error::make(1, "http: missing CRLF");
  }

  [[nodiscard]] std::string rest() const {
    return std::string(reinterpret_cast<const char*>(raw.data() + pos), raw.size() - pos);
  }
};

Result<std::map<std::string, std::string>> parse_headers(LineCursor& cur) {
  std::map<std::string, std::string> headers;
  while (true) {
    auto l = cur.line();
    if (!l) return l.error();
    if (l.value().empty()) break;
    auto colon = l.value().find(':');
    if (colon == std::string::npos) return Error::make(2, "http: malformed header");
    std::string key = l.value().substr(0, colon);
    std::size_t vstart = colon + 1;
    while (vstart < l.value().size() && l.value()[vstart] == ' ') ++vstart;
    headers[key] = l.value().substr(vstart);
  }
  return headers;
}

}  // namespace

Bytes HttpRequest::serialize() const {
  Bytes out;
  append(out, method + " " + path + " HTTP/1.1\r\n");
  auto hdrs = headers;
  hdrs["Content-Length"] = std::to_string(body.size());
  for (const auto& [k, v] : hdrs) append(out, k + ": " + v + "\r\n");
  append(out, "\r\n");
  append(out, body);
  return out;
}

Result<HttpRequest> HttpRequest::parse(const Bytes& raw) {
  LineCursor cur{raw};
  auto start = cur.line();
  if (!start) return start.error();
  HttpRequest req;
  auto sp1 = start.value().find(' ');
  auto sp2 = start.value().rfind(' ');
  if (sp1 == std::string::npos || sp2 == sp1) return Error::make(3, "http: bad request line");
  req.method = start.value().substr(0, sp1);
  req.path = start.value().substr(sp1 + 1, sp2 - sp1 - 1);
  auto hdrs = parse_headers(cur);
  if (!hdrs) return hdrs.error();
  req.headers = std::move(hdrs).take();
  req.body = cur.rest();
  if (auto it = req.headers.find("Content-Length"); it != req.headers.end()) {
    std::size_t expected = 0;
    std::from_chars(it->second.data(), it->second.data() + it->second.size(), expected);
    if (expected != req.body.size()) return Error::make(4, "http: Content-Length mismatch");
  }
  return req;
}

Bytes HttpResponse::serialize() const {
  Bytes out;
  const char* reason = status == 200   ? "OK"
                       : status == 202 ? "Accepted"
                       : status == 400 ? "Bad Request"
                       : status == 413 ? "Payload Too Large"
                       : status == 429 ? "Too Many Requests"
                       : status == 500 ? "Internal Server Error"
                                       : "Unknown";
  append(out, "HTTP/1.1 " + std::to_string(status) + " " + reason + "\r\n");
  auto hdrs = headers;
  hdrs["Content-Length"] = std::to_string(body.size());
  for (const auto& [k, v] : hdrs) append(out, k + ": " + v + "\r\n");
  append(out, "\r\n");
  append(out, body);
  return out;
}

Result<HttpResponse> HttpResponse::parse(const Bytes& raw) {
  LineCursor cur{raw};
  auto start = cur.line();
  if (!start) return start.error();
  HttpResponse resp;
  auto sp1 = start.value().find(' ');
  if (sp1 == std::string::npos) return Error::make(3, "http: bad status line");
  int status = 0;
  const char* begin = start.value().data() + sp1 + 1;
  std::from_chars(begin, start.value().data() + start.value().size(), status);
  if (status < 100 || status > 599) return Error::make(3, "http: bad status code");
  resp.status = status;
  auto hdrs = parse_headers(cur);
  if (!hdrs) return hdrs.error();
  resp.headers = std::move(hdrs).take();
  resp.body = cur.rest();
  return resp;
}

sim::Task<Result<HttpResponse>> http_roundtrip(TcpStream& stream, const HttpRequest& request) {
  stream.send(request.serialize());
  auto reply = co_await stream.recv();
  if (!reply) co_return Error::make(5, "http: connection closed");
  co_return HttpResponse::parse(*reply);
}

sim::Task<std::optional<HttpRequest>> http_read_request(TcpStream& stream) {
  auto raw = co_await stream.recv();
  if (!raw) co_return std::nullopt;
  auto req = HttpRequest::parse(*raw);
  if (!req) co_return std::nullopt;
  co_return std::move(req).take();
}

void http_write_response(TcpStream& stream, const HttpResponse& response) {
  stream.send(response.serialize());
}

}  // namespace rfs::net

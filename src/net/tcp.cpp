#include "net/tcp.hpp"

#include "net/faulty.hpp"

namespace rfs::net {

void TcpStream::send(Bytes message) {
  if (closed_ || !peer_) return;
  sim::spawn(net_.engine(), deliver(peer_, std::move(message)));
}

sim::Task<void> TcpStream::deliver(std::shared_ptr<TcpStream> peer, Bytes message) {
  Duration extra_delay = 0;
  if (auto* faults = net_.fault_injector()) {
    const auto fate = faults->decide(local_, remote_, net_.engine().now());
    if (fate.drop) co_return;
    // Copies re-enter the wire independently (each pays its own stack
    // and link costs) but never re-roll the dice: one decision governs
    // one logical send.
    for (unsigned copy = 0; copy < fate.duplicates; ++copy) {
      sim::spawn(net_.engine(), transmit(peer, message, fate.extra_delay));
    }
    extra_delay = fate.extra_delay;
  }
  co_await transmit(std::move(peer), std::move(message), extra_delay);
}

sim::Task<void> TcpStream::transmit(std::shared_ptr<TcpStream> peer, Bytes message,
                                    Duration extra_delay) {
  const auto& model = net_.model();
  // Chaos hold: messages sent later can overtake this one (reordering).
  if (extra_delay > 0) co_await sim::delay(extra_delay);
  // Sender-side stack traversal (syscall, segmentation, checksum).
  co_await sim::delay(model.tcp_stack_latency);
  Time arrival = net_.link().reserve_tcp(local_, remote_, message.size());
  co_await sim::delay_until(arrival);
  // Receiver-side stack traversal (interrupt, reassembly, socket wake-up).
  co_await sim::delay(model.tcp_stack_latency);
  if (!peer->closed_) peer->inbox_.send(std::move(message));
}

sim::Task<std::optional<Bytes>> TcpStream::recv() {
  auto item = co_await inbox_.recv();
  co_return item;
}

void TcpStream::close() {
  if (closed_) return;
  closed_ = true;
  inbox_.close();
  if (peer_) {
    if (!peer_->closed_) {
      peer_->inbox_.close();
      peer_->closed_ = true;
    }
    // Break the endpoint pair's shared_ptr cycle: each side was keeping
    // the other alive, so unreferenced closed pairs would never free.
    peer_->peer_.reset();
    peer_.reset();
  }
}

sim::Task<std::shared_ptr<TcpStream>> TcpListener::accept() {
  auto item = co_await pending_.recv();
  co_return item ? *item : nullptr;
}

TcpListener& TcpNetwork::listen(fabric::DeviceId dev, std::uint16_t port) {
  auto key = std::make_pair(dev, port);
  auto [it, inserted] = listeners_.try_emplace(key, std::make_unique<TcpListener>());
  if (!inserted && it->second->pending_.closed()) {
    it->second = std::make_unique<TcpListener>();
  }
  return *it->second;
}

sim::Task<Result<std::shared_ptr<TcpStream>>> TcpNetwork::connect(fabric::DeviceId from,
                                                                  fabric::DeviceId to,
                                                                  std::uint16_t port) {
  co_await sim::delay(model().tcp_connect_latency);
  auto it = listeners_.find(std::make_pair(to, port));
  if (it == listeners_.end() || it->second->pending_.closed()) {
    co_return Error::make(11, "tcp: connection refused");
  }
  auto client = std::shared_ptr<TcpStream>(new TcpStream(*this, from, to));
  auto server = std::shared_ptr<TcpStream>(new TcpStream(*this, to, from));
  client->peer_ = server;
  server->peer_ = client;
  track(client);
  it->second->pending_.send(server);
  co_return client;
}

void TcpNetwork::track(const std::shared_ptr<TcpStream>& stream) {
  // Amortized pruning keeps the registry proportional to live streams.
  if (streams_.size() >= 64 && streams_.size() == streams_.capacity()) {
    std::erase_if(streams_, [](const std::weak_ptr<TcpStream>& w) { return w.expired(); });
  }
  streams_.push_back(stream);
}

TcpNetwork::~TcpNetwork() {
  // Streams that were never close()d still hold their peer cycle; break
  // it so endpoint pairs referenced by nobody else are freed.
  for (auto& weak : streams_) {
    if (auto stream = weak.lock()) stream->peer_.reset();
  }
}

}  // namespace rfs::net

#include "net/faulty.hpp"

namespace rfs::net {

FaultInjector::Decision FaultInjector::decide(fabric::DeviceId src, fabric::DeviceId dst,
                                              Time now) {
  ++counters_.messages;
  const std::uint64_t link = key(src, dst);

  for (const auto& p : partitions_) {
    if (p.link == link && now >= p.from && now < p.until) {
      ++counters_.dropped;
      ++counters_.partitioned;
      return Decision{.drop = true};
    }
  }

  const auto it = links_.find(link);
  const FaultSpec& spec = it != links_.end() ? it->second : default_spec_;

  Decision d;
  // Draw every fault independently and in a fixed order, so the RNG
  // stream (and with it the whole run) only depends on the seed and the
  // message sequence — never on which probabilities are zero.
  const bool drop = rng_.bernoulli(spec.drop_p);
  const bool dup = rng_.bernoulli(spec.dup_p);
  const bool reorder = rng_.bernoulli(spec.reorder_p);
  const bool delay = rng_.bernoulli(spec.delay_p);
  const Duration held =
      static_cast<Duration>(rng_.uniform(static_cast<double>(spec.delay_min),
                                         static_cast<double>(spec.delay_max)));
  if (drop) {
    ++counters_.dropped;
    d.drop = true;
    return d;
  }
  if (dup) {
    ++counters_.duplicated;
    d.duplicates = 1;
  }
  if (reorder || delay) {
    reorder ? ++counters_.reordered : ++counters_.delayed;
    d.extra_delay = held;
  }
  return d;
}

WorkerFaultInjector::Decision WorkerFaultInjector::decide(fabric::DeviceId device) {
  ++counters_.invocations;
  const auto it = executors_.find(device);
  const WorkerFaultSpec& spec = it != executors_.end() ? it->second : default_spec_;

  Decision d;
  // Fixed-order draws, mirroring FaultInjector::decide: the RNG stream
  // depends only on the seed and the invocation sequence, never on
  // which probabilities are zero — one seed replays the whole schedule.
  const bool crash = rng_.bernoulli(spec.crash_p);
  const bool stuck = rng_.bernoulli(spec.stuck_p);
  const bool gray = rng_.bernoulli(spec.gray_p);
  const bool corrupt = rng_.bernoulli(spec.corrupt_p);
  const Duration pause = static_cast<Duration>(
      spec.gray_multiplier * rng_.uniform(static_cast<double>(spec.gray_pause_min),
                                          static_cast<double>(spec.gray_pause_max)));
  if (crash) {
    ++counters_.crashes;
    d.crash = true;
    return d;
  }
  if (stuck) {
    ++counters_.stucks;
    d.stuck = true;
    return d;
  }
  if (gray) {
    ++counters_.grays;
    d.gray_delay = pause;
  }
  if (corrupt) {
    ++counters_.corruptions;
    d.corrupt = true;
  }
  return d;
}

bool WorkerFaultInjector::note_execution(std::uint64_t tag) {
  if (tag == 0) return true;
  if (!executed_tags_.insert(tag).second) {
    ++counters_.double_executions;
    return false;
  }
  return true;
}

}  // namespace rfs::net

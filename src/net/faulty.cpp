#include "net/faulty.hpp"

namespace rfs::net {

FaultInjector::Decision FaultInjector::decide(fabric::DeviceId src, fabric::DeviceId dst,
                                              Time now) {
  ++counters_.messages;
  const std::uint64_t link = key(src, dst);

  for (const auto& p : partitions_) {
    if (p.link == link && now >= p.from && now < p.until) {
      ++counters_.dropped;
      ++counters_.partitioned;
      return Decision{.drop = true};
    }
  }

  const auto it = links_.find(link);
  const FaultSpec& spec = it != links_.end() ? it->second : default_spec_;

  Decision d;
  // Draw every fault independently and in a fixed order, so the RNG
  // stream (and with it the whole run) only depends on the seed and the
  // message sequence — never on which probabilities are zero.
  const bool drop = rng_.bernoulli(spec.drop_p);
  const bool dup = rng_.bernoulli(spec.dup_p);
  const bool reorder = rng_.bernoulli(spec.reorder_p);
  const bool delay = rng_.bernoulli(spec.delay_p);
  const Duration held =
      static_cast<Duration>(rng_.uniform(static_cast<double>(spec.delay_min),
                                         static_cast<double>(spec.delay_max)));
  if (drop) {
    ++counters_.dropped;
    d.drop = true;
    return d;
  }
  if (dup) {
    ++counters_.duplicated;
    d.duplicates = 1;
  }
  if (reorder || delay) {
    reorder ? ++counters_.reordered : ++counters_.delayed;
    d.extra_delay = held;
  }
  return d;
}

}  // namespace rfs::net

#include "rdmalib/connection.hpp"

namespace rfs::rdmalib {

Connection::Connection(fabric::Device& dev, fabric::ProtectionDomain* pd)
    : dev_(dev),
      pd_(pd),
      send_cq_(std::make_unique<fabric::CompletionQueue>(dev.fabric().model())),
      recv_cq_(std::make_unique<fabric::CompletionQueue>(dev.fabric().model())) {}

Connection::~Connection() { close(); }

sim::Task<Result<std::unique_ptr<Connection>>> Connection::connect(
    fabric::Fabric& fabric, fabric::Device& from, fabric::ProtectionDomain* pd,
    fabric::DeviceId to, std::uint16_t port, Bytes private_data) {
  auto conn = std::unique_ptr<Connection>(new Connection(from, pd));
  auto result = co_await fabric.connect(from, pd, conn->send_cq_.get(), conn->recv_cq_.get(), to,
                                        port, std::move(private_data));
  if (!result) co_return result.error();
  conn->qp_ = result.value().qp;
  conn->accept_data_ = result.value().accept_data;
  co_return std::move(conn);
}

std::unique_ptr<Connection> Connection::accept(fabric::ConnectRequest& request,
                                               fabric::Device& dev,
                                               fabric::ProtectionDomain* pd, Bytes reply_data) {
  auto conn = std::unique_ptr<Connection>(new Connection(dev, pd));
  conn->qp_ =
      request.accept(dev, pd, conn->send_cq_.get(), conn->recv_cq_.get(), std::move(reply_data));
  return conn;
}

Status Connection::post_write(const fabric::Sge& sge, const RemoteBuffer& dst,
                              std::uint64_t wr_id, bool inline_data) {
  fabric::SendWr wr;
  wr.wr_id = wr_id;
  wr.opcode = fabric::Opcode::Write;
  wr.sge.push_back(sge);
  wr.remote_addr = dst.addr;
  wr.rkey = dst.rkey;
  wr.inline_data = inline_data;
  return qp_->post_send(std::move(wr));
}

Status Connection::post_write_imm(const fabric::Sge& sge, const RemoteBuffer& dst,
                                  std::uint32_t imm, std::uint64_t wr_id, bool inline_data) {
  fabric::SendWr wr;
  wr.wr_id = wr_id;
  wr.opcode = fabric::Opcode::WriteImm;
  wr.sge.push_back(sge);
  wr.remote_addr = dst.addr;
  wr.rkey = dst.rkey;
  wr.imm = imm;
  wr.inline_data = inline_data;
  return qp_->post_send(std::move(wr));
}

Status Connection::post_send(const fabric::Sge& sge, std::uint64_t wr_id, bool inline_data) {
  fabric::SendWr wr;
  wr.wr_id = wr_id;
  wr.opcode = fabric::Opcode::Send;
  wr.sge.push_back(sge);
  wr.inline_data = inline_data;
  return qp_->post_send(std::move(wr));
}

Status Connection::post_fetch_add(std::uint64_t* local_result, std::uint32_t result_lkey,
                                  std::uint64_t remote_addr, std::uint32_t rkey,
                                  std::uint64_t add, std::uint64_t wr_id) {
  fabric::SendWr wr;
  wr.wr_id = wr_id;
  wr.opcode = fabric::Opcode::FetchAdd;
  wr.sge.push_back(
      fabric::Sge{reinterpret_cast<std::uint64_t>(local_result), 8, result_lkey});
  wr.remote_addr = remote_addr;
  wr.rkey = rkey;
  wr.swap_or_add = add;
  return qp_->post_send(std::move(wr));
}

void Connection::close() {
  if (qp_ != nullptr) {
    dev_.destroy_qp(qp_);
    qp_ = nullptr;
  }
}

}  // namespace rfs::rdmalib

// Connection: a connected RC queue pair bundled with its completion
// queues and post helpers — rFaaS's `rdmalib::Connection`. Hides the
// verbs boilerplate from the platform layer.
#pragma once

#include <memory>

#include "fabric/cq.hpp"
#include "fabric/fabric.hpp"
#include "fabric/qp.hpp"
#include "rdmalib/buffer.hpp"

namespace rfs::rdmalib {

class Connection {
 public:
  /// Client side: connect to (device `to`, `port`).
  static sim::Task<Result<std::unique_ptr<Connection>>> connect(
      fabric::Fabric& fabric, fabric::Device& from, fabric::ProtectionDomain* pd,
      fabric::DeviceId to, std::uint16_t port, Bytes private_data = {});

  /// Server side: accept a pending request on `dev`. `reply_data` travels
  /// back to the initiator (available there as accept_data()).
  static std::unique_ptr<Connection> accept(fabric::ConnectRequest& request, fabric::Device& dev,
                                            fabric::ProtectionDomain* pd, Bytes reply_data = {});

  /// Private data the acceptor attached when this connection was made via
  /// connect(); empty on acceptor-side connections.
  [[nodiscard]] const Bytes& accept_data() const { return accept_data_; }

  ~Connection();
  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  [[nodiscard]] fabric::QueuePair* qp() { return qp_; }
  [[nodiscard]] fabric::CompletionQueue& send_cq() { return *send_cq_; }
  [[nodiscard]] fabric::CompletionQueue& recv_cq() { return *recv_cq_; }
  [[nodiscard]] bool alive() const {
    return qp_ != nullptr && qp_->state() == fabric::QpState::Rts && qp_->peer() != nullptr &&
           qp_->peer()->state() == fabric::QpState::Rts;
  }

  /// RDMA write of `sge` into `dst`; optionally with immediate data and
  /// inlining (payload must fit the device inline ceiling).
  Status post_write(const fabric::Sge& sge, const RemoteBuffer& dst, std::uint64_t wr_id,
                    bool inline_data = false);
  Status post_write_imm(const fabric::Sge& sge, const RemoteBuffer& dst, std::uint32_t imm,
                        std::uint64_t wr_id, bool inline_data = false);

  /// Two-sided send (consumes a posted receive at the peer).
  Status post_send(const fabric::Sge& sge, std::uint64_t wr_id, bool inline_data = false);

  /// 8-byte atomic fetch-and-add on the remote address.
  Status post_fetch_add(std::uint64_t* local_result, std::uint32_t result_lkey,
                        std::uint64_t remote_addr, std::uint32_t rkey, std::uint64_t add,
                        std::uint64_t wr_id);

  /// Posts a pre-built WR chain with a single doorbell (ibv_post_send
  /// linked-list form); N WRs cost one post_overhead, not N.
  Status post_many(std::span<fabric::SendWr> wrs) { return qp_->post_send_many(wrs); }

  /// Posts a receive covering the raw region of `buf`.
  template <typename T>
  Status post_recv_buffer(Buffer<T>& buf, std::uint64_t wr_id) {
    fabric::RecvWr wr;
    wr.wr_id = wr_id;
    wr.sge.push_back(fabric::Sge{reinterpret_cast<std::uint64_t>(buf.raw()),
                                 static_cast<std::uint32_t>(buf.raw_bytes()),
                                 buf.mr() != nullptr ? buf.mr()->lkey() : 0});
    return qp_->post_recv(std::move(wr));
  }

  /// Posts an empty receive (used for WRITE_WITH_IMM notifications where
  /// data lands via rkey and the receive only carries the event).
  Status post_recv_empty(std::uint64_t wr_id) { return qp_->post_recv({wr_id, {}}); }

  /// Completion helpers.
  sim::Task<fabric::Wc> wait_recv_polling() { return recv_cq_->wait_polling(); }
  sim::Task<fabric::Wc> wait_recv_blocking() { return recv_cq_->wait_blocking(); }
  /// Deadline-bounded result waits: nullopt = nothing arrived in time.
  /// The fix for the forever-hang when an executor dies after submit —
  /// an invocation deadline surfaces as a timeout instead of a stall.
  sim::Task<std::optional<fabric::Wc>> wait_recv_polling_until(Time deadline) {
    return recv_cq_->wait_polling_until(deadline);
  }
  sim::Task<std::optional<fabric::Wc>> wait_recv_blocking_until(Time deadline) {
    return recv_cq_->wait_blocking_until(deadline);
  }
  sim::Task<fabric::Wc> wait_send_polling() { return send_cq_->wait_polling(); }
  sim::Task<fabric::Wc> wait_send_blocking() { return send_cq_->wait_blocking(); }
  /// Batched busy-poll: one sweep drains every ready send completion.
  sim::Task<std::size_t> wait_send_polling_many(std::span<fabric::Wc> out) {
    return send_cq_->wait_polling_many(out);
  }

  /// Tears the connection down; the peer sees errors on its next ops.
  void close();

 private:
  Connection(fabric::Device& dev, fabric::ProtectionDomain* pd);

  fabric::Device& dev_;
  fabric::ProtectionDomain* pd_;
  std::unique_ptr<fabric::CompletionQueue> send_cq_;
  std::unique_ptr<fabric::CompletionQueue> recv_cq_;
  fabric::QueuePair* qp_ = nullptr;
  Bytes accept_data_;
};

}  // namespace rfs::rdmalib

// Typed, page-aligned, registrable memory buffers — the `rfaas::buffer`
// of the paper's programming model (Listing 2). Buffers are page-aligned
// "to achieve the highest bandwidth on RDMA" and can reserve a header
// region in front of the payload: the rFaaS input buffer carries a
// twelve-byte header with the client's result-buffer address and rkey.
#pragma once

#include <cstdlib>
#include <cstring>
#include <memory>
#include <span>

#include "common/result.hpp"
#include "fabric/device.hpp"
#include "fabric/verbs.hpp"

namespace rfs::rdmalib {

/// Remote-buffer descriptor exchanged out of band or inside headers.
struct RemoteBuffer {
  std::uint64_t addr = 0;
  std::uint32_t rkey = 0;
  std::uint32_t length = 0;
};

template <typename T>
class Buffer {
 public:
  static constexpr std::size_t kPageSize = 4096;

  /// Allocates a page-aligned buffer for `count` elements of T preceded
  /// by `header_bytes` of header space.
  explicit Buffer(std::size_t count, std::size_t header_bytes = 0)
      : count_(count), header_bytes_(header_bytes) {
    std::size_t raw = header_bytes_ + count_ * sizeof(T);
    std::size_t rounded = (raw + kPageSize - 1) / kPageSize * kPageSize;
    if (rounded == 0) rounded = kPageSize;
    mem_.reset(static_cast<std::uint8_t*>(std::aligned_alloc(kPageSize, rounded)));
    raw_size_ = raw;
    std::memset(mem_.get(), 0, rounded);
  }

  Buffer(Buffer&&) noexcept = default;
  Buffer& operator=(Buffer&&) noexcept = default;
  Buffer(const Buffer&) = delete;
  Buffer& operator=(const Buffer&) = delete;

  /// Payload pointer (past the header).
  [[nodiscard]] T* data() { return reinterpret_cast<T*>(mem_.get() + header_bytes_); }
  [[nodiscard]] const T* data() const {
    return reinterpret_cast<const T*>(mem_.get() + header_bytes_);
  }
  [[nodiscard]] T& operator[](std::size_t i) { return data()[i]; }
  [[nodiscard]] const T& operator[](std::size_t i) const { return data()[i]; }

  /// Element count of the payload.
  [[nodiscard]] std::size_t size() const { return count_; }
  [[nodiscard]] std::size_t payload_bytes() const { return count_ * sizeof(T); }

  /// Header region (may be empty).
  [[nodiscard]] std::uint8_t* header() { return mem_.get(); }
  [[nodiscard]] std::size_t header_bytes() const { return header_bytes_; }

  /// Raw region: header followed by payload.
  [[nodiscard]] std::uint8_t* raw() { return mem_.get(); }
  [[nodiscard]] const std::uint8_t* raw() const { return mem_.get(); }
  [[nodiscard]] std::size_t raw_bytes() const { return raw_size_; }

  [[nodiscard]] std::span<T> span() { return {data(), count_}; }
  [[nodiscard]] std::span<const T> span() const { return {data(), count_}; }

  /// Registers the raw region (header + payload) with `pd`.
  Status register_memory(fabric::ProtectionDomain& pd, std::uint32_t access) {
    mr_ = pd.register_memory(mem_.get(), raw_size_, access);
    pd_ = &pd;
    return Status::success();
  }

  /// Registration with virtual-time pinning cost (cold paths).
  sim::Task<Status> register_memory_timed(fabric::ProtectionDomain& pd, std::uint32_t access) {
    mr_ = co_await pd.register_memory_timed(mem_.get(), raw_size_, access);
    pd_ = &pd;
    co_return Status::success();
  }

  void deregister() {
    if (pd_ != nullptr && mr_ != nullptr) pd_->deregister(mr_);
    mr_ = nullptr;
  }

  [[nodiscard]] fabric::MemoryRegion* mr() const { return mr_; }
  [[nodiscard]] bool registered() const { return mr_ != nullptr; }

  /// SGE covering header + the first `bytes` of payload (default all).
  [[nodiscard]] fabric::Sge sge_with_header(std::size_t payload_len_bytes) const {
    return fabric::Sge{reinterpret_cast<std::uint64_t>(mem_.get()),
                       static_cast<std::uint32_t>(header_bytes_ + payload_len_bytes),
                       mr_ != nullptr ? mr_->lkey() : 0};
  }

  /// SGE covering the first `bytes` of payload only.
  [[nodiscard]] fabric::Sge sge_data(std::size_t payload_len_bytes) const {
    return fabric::Sge{reinterpret_cast<std::uint64_t>(mem_.get() + header_bytes_),
                       static_cast<std::uint32_t>(payload_len_bytes),
                       mr_ != nullptr ? mr_->lkey() : 0};
  }

  [[nodiscard]] fabric::Sge sge() const { return sge_with_header(payload_bytes()); }

  /// Descriptor of the raw region for remote writes into this buffer.
  [[nodiscard]] RemoteBuffer remote() const {
    return RemoteBuffer{reinterpret_cast<std::uint64_t>(mem_.get()),
                        mr_ != nullptr ? mr_->rkey() : 0,
                        static_cast<std::uint32_t>(raw_size_)};
  }

  /// Descriptor of the payload region only.
  [[nodiscard]] RemoteBuffer remote_data() const {
    return RemoteBuffer{reinterpret_cast<std::uint64_t>(mem_.get() + header_bytes_),
                        mr_ != nullptr ? mr_->rkey() : 0,
                        static_cast<std::uint32_t>(payload_bytes())};
  }

 private:
  struct FreeDeleter {
    void operator()(std::uint8_t* p) const { std::free(p); }
  };
  std::unique_ptr<std::uint8_t, FreeDeleter> mem_;
  std::size_t count_;
  std::size_t header_bytes_;
  std::size_t raw_size_ = 0;
  fabric::MemoryRegion* mr_ = nullptr;
  fabric::ProtectionDomain* pd_ = nullptr;
};

}  // namespace rfs::rdmalib

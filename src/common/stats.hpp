// Statistics helpers used by the benchmark harness: median, percentiles,
// and the non-parametric confidence interval of the median that the paper
// reports ("non-parametric 95%/99% CIs").
#pragma once

#include <cstddef>
#include <vector>

namespace rfs {

/// Non-parametric confidence interval of the median: order-statistic
/// indices derived from the binomial distribution.
struct MedianCi {
  double median = 0.0;
  double low = 0.0;
  double high = 0.0;
};

/// Summary statistics of one sample set.
class Summary {
 public:
  /// Builds a summary; the input is copied and sorted internally.
  explicit Summary(std::vector<double> samples);

  [[nodiscard]] std::size_t count() const { return sorted_.size(); }
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double mean() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double median() const;

  /// Linear-interpolated percentile, `p` in [0, 100].
  [[nodiscard]] double percentile(double p) const;

  /// Non-parametric CI of the median at the given confidence (e.g. 0.95).
  /// Falls back to [min, max] for tiny samples.
  [[nodiscard]] MedianCi median_ci(double confidence) const;

 private:
  std::vector<double> sorted_;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

/// Streaming mean/variance accumulator (Welford).
class OnlineStats {
 public:
  void add(double x);
  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace rfs

// RFC 4648 base64. The AWS Lambda and OpenWhisk baselines really encode
// and decode payloads, exactly as the paper's evaluation had to ("we
// generate a base64-encoded string that approximately matches the input
// size"), so the 4/3 inflation and CPU cost are genuine.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/result.hpp"

namespace rfs::base64 {

/// Encodes raw bytes into a base64 string with padding.
std::string encode(std::span<const std::uint8_t> data);

/// Convenience overload for string payloads.
std::string encode(const std::string& data);

/// Decodes a padded base64 string. Rejects invalid characters and bad
/// padding with an error.
Result<std::vector<std::uint8_t>> decode(const std::string& text);

/// Size of the base64 encoding of `raw` bytes (with padding).
constexpr std::size_t encoded_size(std::size_t raw) { return (raw + 2) / 3 * 4; }

}  // namespace rfs::base64

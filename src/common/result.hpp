// A small expected/Result type used for error propagation without
// exceptions on hot simulation paths (C++ Core Guidelines E.x: prefer
// explicit error values where exceptions are not appropriate).
#pragma once

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace rfs {

/// Error payload carried by `Result`. Keeps a machine-readable code and a
/// human-readable message.
struct Error {
  int code = 0;
  std::string message;

  static Error make(int code, std::string msg) { return Error{code, std::move(msg)}; }
};

/// Minimal `expected`-style result: either a value of `T` or an `Error`.
///
/// Usage:
///   Result<int> r = parse(s);
///   if (!r) return r.error();
///   use(r.value());
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : data_(std::move(value)) {}          // NOLINT implicit
  Result(Error err) : data_(std::move(err)) {}          // NOLINT implicit

  [[nodiscard]] bool ok() const { return std::holds_alternative<T>(data_); }
  explicit operator bool() const { return ok(); }

  [[nodiscard]] const T& value() const& {
    assert(ok());
    return std::get<T>(data_);
  }
  [[nodiscard]] T& value() & {
    assert(ok());
    return std::get<T>(data_);
  }
  [[nodiscard]] T&& take() && {
    assert(ok());
    return std::get<T>(std::move(data_));
  }

  [[nodiscard]] const Error& error() const {
    assert(!ok());
    return std::get<Error>(data_);
  }

  /// Returns the contained value or `fallback` when this holds an error.
  [[nodiscard]] T value_or(T fallback) const& { return ok() ? value() : std::move(fallback); }

 private:
  std::variant<T, Error> data_;
};

/// Specialization-free void result.
class [[nodiscard]] Status {
 public:
  Status() = default;
  Status(Error err) : err_(std::move(err)), failed_(true) {}  // NOLINT implicit

  [[nodiscard]] bool ok() const { return !failed_; }
  explicit operator bool() const { return ok(); }
  [[nodiscard]] const Error& error() const {
    assert(failed_);
    return err_;
  }

  static Status success() { return Status{}; }

 private:
  Error err_;
  bool failed_ = false;
};

}  // namespace rfs

// Plain-text table printer used by the benchmark harness to emit the
// paper-style rows (and a machine-readable CSV next to them).
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace rfs {

/// Collects rows of string cells and renders an aligned text table.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends one row; missing trailing cells render empty.
  void row(std::vector<std::string> cells);

  /// Formats helpers for numeric cells.
  static std::string num(double v, int precision = 2);
  static std::string us(double nanoseconds, int precision = 2);   // ns -> "x.xx us"
  static std::string ms(double nanoseconds, int precision = 2);   // ns -> "x.xx ms"

  /// Renders the aligned table to `out` (defaults to stdout).
  void print(std::FILE* out = stdout) const;

  /// Renders comma-separated values (header + rows) to `out`.
  void print_csv(std::FILE* out = stdout) const;

  /// Renders {"columns": [...], "rows": [[...], ...]} to `out`; cells are
  /// emitted as JSON strings (they carry formatted units).
  void print_json(std::FILE* out = stdout) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace rfs

// Byte-order-safe serialization used by the wire protocols (rFaaS lease
// messages, HTTP bodies, code submission). Little-endian on the wire.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "common/result.hpp"

namespace rfs {

using Bytes = std::vector<std::uint8_t>;

/// Append-only byte writer.
class ByteWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v) { raw(&v, 2); }
  void u32(std::uint32_t v) { raw(&v, 4); }
  void u64(std::uint64_t v) { raw(&v, 8); }
  void f64(double v) { raw(&v, 8); }

  /// Length-prefixed string (u32 length + raw bytes).
  void str(const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    raw(s.data(), s.size());
  }

  /// Length-prefixed blob.
  void blob(std::span<const std::uint8_t> b) {
    u32(static_cast<std::uint32_t>(b.size()));
    raw(b.data(), b.size());
  }

  /// Raw bytes, no length prefix.
  void raw(const void* data, std::size_t n) {
    auto* p = static_cast<const std::uint8_t*>(data);
    buf_.insert(buf_.end(), p, p + n);
  }

  [[nodiscard]] const Bytes& bytes() const { return buf_; }
  [[nodiscard]] Bytes take() { return std::move(buf_); }

 private:
  Bytes buf_;
};

/// Sequential byte reader with bounds checking.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  Result<std::uint8_t> u8() { return get<std::uint8_t>(); }
  Result<std::uint16_t> u16() { return get<std::uint16_t>(); }
  Result<std::uint32_t> u32() { return get<std::uint32_t>(); }
  Result<std::uint64_t> u64() { return get<std::uint64_t>(); }
  Result<double> f64() { return get<double>(); }

  Result<std::string> str() {
    auto len = u32();
    if (!len) return len.error();
    if (pos_ + len.value() > data_.size()) return Error::make(1, "ByteReader: string overrun");
    std::string s(reinterpret_cast<const char*>(data_.data() + pos_), len.value());
    pos_ += len.value();
    return s;
  }

  Result<Bytes> blob() {
    auto len = u32();
    if (!len) return len.error();
    if (pos_ + len.value() > data_.size()) return Error::make(1, "ByteReader: blob overrun");
    Bytes b(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
            data_.begin() + static_cast<std::ptrdiff_t>(pos_ + len.value()));
    pos_ += len.value();
    return b;
  }

  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }
  [[nodiscard]] bool done() const { return remaining() == 0; }

 private:
  template <typename T>
  Result<T> get() {
    if (pos_ + sizeof(T) > data_.size()) return Error::make(1, "ByteReader: overrun");
    T v;
    std::memcpy(&v, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

/// CRC32 (IEEE 802.3 polynomial) for payload integrity checks in tests.
std::uint32_t crc32(std::span<const std::uint8_t> data);
inline std::uint32_t crc32(const Bytes& b) { return crc32(std::span<const std::uint8_t>(b)); }

/// Deterministic pattern fill used by tests and benches to validate
/// that bytes were actually moved end to end (zero-copy check).
void fill_pattern(std::span<std::uint8_t> out, std::uint64_t seed);

}  // namespace rfs

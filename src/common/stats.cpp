#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace rfs {

Summary::Summary(std::vector<double> samples) : sorted_(std::move(samples)) {
  if (sorted_.empty()) throw std::invalid_argument("Summary: empty sample set");
  std::sort(sorted_.begin(), sorted_.end());
  double mean = 0.0, m2 = 0.0;
  std::size_t n = 0;
  for (double x : sorted_) {
    ++n;
    double d = x - mean;
    mean += d / static_cast<double>(n);
    m2 += d * (x - mean);
  }
  mean_ = mean;
  m2_ = m2;
}

double Summary::min() const { return sorted_.front(); }
double Summary::max() const { return sorted_.back(); }
double Summary::mean() const { return mean_; }

double Summary::stddev() const {
  if (sorted_.size() < 2) return 0.0;
  return std::sqrt(m2_ / static_cast<double>(sorted_.size() - 1));
}

double Summary::median() const { return percentile(50.0); }

double Summary::percentile(double p) const {
  if (p <= 0.0) return sorted_.front();
  if (p >= 100.0) return sorted_.back();
  double rank = p / 100.0 * static_cast<double>(sorted_.size() - 1);
  auto lo = static_cast<std::size_t>(rank);
  double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= sorted_.size()) return sorted_.back();
  return sorted_[lo] * (1.0 - frac) + sorted_[lo + 1] * frac;
}

MedianCi Summary::median_ci(double confidence) const {
  MedianCi ci;
  ci.median = median();
  const auto n = sorted_.size();
  if (n < 6) {
    ci.low = sorted_.front();
    ci.high = sorted_.back();
    return ci;
  }
  // Normal approximation to the binomial order-statistic interval:
  // ranks n/2 +- z*sqrt(n)/2 bound the median at the requested confidence.
  double alpha = 1.0 - confidence;
  // Inverse normal CDF at 1 - alpha/2 via Acklam-style rational approximation
  // is overkill; the two confidences used in the paper are tabulated.
  double z;
  if (confidence >= 0.99) {
    z = 2.5758;
  } else if (confidence >= 0.95) {
    z = 1.9600;
  } else if (confidence >= 0.90) {
    z = 1.6449;
  } else {
    z = 1.0;  // ~68%
  }
  (void)alpha;
  double half = z * std::sqrt(static_cast<double>(n)) / 2.0;
  double mid = static_cast<double>(n) / 2.0;
  auto lo_rank = static_cast<std::ptrdiff_t>(std::floor(mid - half));
  auto hi_rank = static_cast<std::ptrdiff_t>(std::ceil(mid + half));
  lo_rank = std::max<std::ptrdiff_t>(lo_rank, 0);
  hi_rank = std::min<std::ptrdiff_t>(hi_rank, static_cast<std::ptrdiff_t>(n) - 1);
  ci.low = sorted_[static_cast<std::size_t>(lo_rank)];
  ci.high = sorted_[static_cast<std::size_t>(hi_rank)];
  return ci;
}

void OnlineStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  double d = x - mean_;
  mean_ += d / static_cast<double>(n_);
  m2_ += d * (x - mean_);
}

double OnlineStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

}  // namespace rfs

#include "common/table.hpp"

#include <algorithm>
#include <cstdarg>

namespace rfs {

namespace {
std::string format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  char buf[128];
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  return buf;
}
}  // namespace

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::row(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

std::string Table::num(double v, int precision) { return format("%.*f", precision, v); }

std::string Table::us(double nanoseconds, int precision) {
  return format("%.*f us", precision, nanoseconds / 1e3);
}

std::string Table::ms(double nanoseconds, int precision) {
  return format("%.*f ms", precision, nanoseconds / 1e6);
}

void Table::print(std::FILE* out) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], r[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string{};
      std::fprintf(out, "%s%-*s", c ? "  " : "", static_cast<int>(widths[c]), cell.c_str());
    }
    std::fprintf(out, "\n");
  };
  print_row(header_);
  std::size_t total = 0;
  for (auto w : widths) total += w + 2;
  for (std::size_t i = 0; i + 2 < total; ++i) std::fputc('-', out);
  std::fputc('\n', out);
  for (const auto& r : rows_) print_row(r);
}

void Table::print_csv(std::FILE* out) const {
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      std::fprintf(out, "%s%s", c ? "," : "", cells[c].c_str());
    }
    std::fprintf(out, "\n");
  };
  print_row(header_);
  for (const auto& r : rows_) print_row(r);
}

void Table::print_json(std::FILE* out) const {
  auto print_string = [&](const std::string& s) {
    std::fputc('"', out);
    for (char ch : s) {
      switch (ch) {
        case '"': std::fputs("\\\"", out); break;
        case '\\': std::fputs("\\\\", out); break;
        case '\n': std::fputs("\\n", out); break;
        case '\t': std::fputs("\\t", out); break;
        default:
          if (static_cast<unsigned char>(ch) < 0x20) {
            std::fprintf(out, "\\u%04x", ch);
          } else {
            std::fputc(ch, out);
          }
      }
    }
    std::fputc('"', out);
  };
  auto print_array = [&](const std::vector<std::string>& cells) {
    std::fputc('[', out);
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) std::fputs(", ", out);
      print_string(cells[c]);
    }
    std::fputc(']', out);
  };
  std::fputs("{\"columns\": ", out);
  print_array(header_);
  std::fputs(", \"rows\": [", out);
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    if (r) std::fputs(", ", out);
    print_array(rows_[r]);
  }
  std::fputs("]}\n", out);
}

}  // namespace rfs

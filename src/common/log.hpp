// Leveled logging with a process-global sink. Logging is off by default in
// tests and benches; examples turn on Info to narrate the simulation.
#pragma once

#include <cstdio>
#include <sstream>
#include <string>

namespace rfs::log {

enum class Level { Trace = 0, Debug, Info, Warn, Err, Off };

/// Sets the global minimum level; messages below it are discarded.
void set_level(Level level);
/// Current global level.
Level level();

/// Emits one formatted line (`[level] component: message`) to stderr.
void write(Level level, const char* component, const std::string& message);

namespace detail {
inline void append(std::ostringstream&) {}
template <typename Head, typename... Tail>
void append(std::ostringstream& os, Head&& head, Tail&&... tail) {
  os << std::forward<Head>(head);
  append(os, std::forward<Tail>(tail)...);
}
}  // namespace detail

template <typename... Args>
void logf(Level lvl, const char* component, Args&&... args) {
  if (lvl < level()) return;
  std::ostringstream os;
  detail::append(os, std::forward<Args>(args)...);
  write(lvl, component, os.str());
}

template <typename... Args>
void trace(const char* c, Args&&... a) { logf(Level::Trace, c, std::forward<Args>(a)...); }
template <typename... Args>
void debug(const char* c, Args&&... a) { logf(Level::Debug, c, std::forward<Args>(a)...); }
template <typename... Args>
void info(const char* c, Args&&... a) { logf(Level::Info, c, std::forward<Args>(a)...); }
template <typename... Args>
void warn(const char* c, Args&&... a) { logf(Level::Warn, c, std::forward<Args>(a)...); }
template <typename... Args>
void error(const char* c, Args&&... a) { logf(Level::Err, c, std::forward<Args>(a)...); }

}  // namespace rfs::log

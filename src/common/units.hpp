// Time, size and rate units used across the simulator.
//
// All simulated time is expressed in nanoseconds as unsigned 64-bit
// integers (wraps after ~584 years of virtual time, which is plenty).
// Helper literals keep call sites readable: `5_us`, `2_ms`, `1_MiB`.
#pragma once

#include <cstdint>

namespace rfs {

/// Virtual time in nanoseconds since simulation start.
using Time = std::uint64_t;
/// A span of virtual time, in nanoseconds.
using Duration = std::uint64_t;

namespace units {

constexpr Duration nanoseconds(std::uint64_t v) { return v; }
constexpr Duration microseconds(std::uint64_t v) { return v * 1'000ull; }
constexpr Duration milliseconds(std::uint64_t v) { return v * 1'000'000ull; }
constexpr Duration seconds(std::uint64_t v) { return v * 1'000'000'000ull; }

constexpr std::uint64_t KiB(std::uint64_t v) { return v * 1024ull; }
constexpr std::uint64_t MiB(std::uint64_t v) { return v * 1024ull * 1024ull; }
constexpr std::uint64_t GiB(std::uint64_t v) { return v * 1024ull * 1024ull * 1024ull; }

}  // namespace units

inline namespace literals {

constexpr Duration operator""_ns(unsigned long long v) { return v; }
constexpr Duration operator""_us(unsigned long long v) { return v * 1'000ull; }
constexpr Duration operator""_ms(unsigned long long v) { return v * 1'000'000ull; }
constexpr Duration operator""_s(unsigned long long v) { return v * 1'000'000'000ull; }

constexpr std::uint64_t operator""_KiB(unsigned long long v) { return v * 1024ull; }
constexpr std::uint64_t operator""_MiB(unsigned long long v) { return v * 1024ull * 1024ull; }
constexpr std::uint64_t operator""_GiB(unsigned long long v) { return v << 30; }

}  // namespace literals

/// Converts a duration in nanoseconds to floating-point microseconds.
constexpr double to_us(Duration d) { return static_cast<double>(d) / 1e3; }
/// Converts a duration in nanoseconds to floating-point milliseconds.
constexpr double to_ms(Duration d) { return static_cast<double>(d) / 1e6; }
/// Converts a duration in nanoseconds to floating-point seconds.
constexpr double to_s(Duration d) { return static_cast<double>(d) / 1e9; }

/// Transfer time of `bytes` at `bytes_per_second`, rounded up to 1 ns.
constexpr Duration transfer_time(std::uint64_t bytes, double bytes_per_second) {
  if (bytes == 0 || bytes_per_second <= 0.0) return 0;
  double ns = static_cast<double>(bytes) / bytes_per_second * 1e9;
  auto t = static_cast<Duration>(ns);
  return t == 0 ? 1 : t;
}

}  // namespace rfs

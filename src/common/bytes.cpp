#include "common/bytes.hpp"

#include <array>

namespace rfs {

namespace {
std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xedb88320u ^ (c >> 1) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}
const std::array<std::uint32_t, 256> kCrcTable = make_crc_table();
}  // namespace

std::uint32_t crc32(std::span<const std::uint8_t> data) {
  std::uint32_t c = 0xffffffffu;
  for (std::uint8_t b : data) {
    c = kCrcTable[(c ^ b) & 0xffu] ^ (c >> 8);
  }
  return c ^ 0xffffffffu;
}

void fill_pattern(std::span<std::uint8_t> out, std::uint64_t seed) {
  std::uint64_t x = seed * 0x9e3779b97f4a7c15ull + 0xb5297a4d3a2646c5ull;
  for (std::size_t i = 0; i < out.size(); ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    out[i] = static_cast<std::uint8_t>(x >> 56);
  }
}

}  // namespace rfs

// Deterministic PRNG (xoshiro256**) plus the distribution helpers used by
// workload generators. We do not use std::mt19937 because its stream is
// implementation-defined across standard library versions for some
// distributions; the generator below is fully reproducible everywhere.
#pragma once

#include <cstdint>
#include <cmath>

namespace rfs {

/// The splitmix64 increment ("golden gamma") and output mix (Steele,
/// Lea & Flood; public domain reference algorithm). splitmix64(state +=
/// kSplitmix64Gamma) is one step of the sequence — used for Rng seeding
/// and for lock-free deterministic streams driven by an atomic counter.
inline constexpr std::uint64_t kSplitmix64Gamma = 0x9e3779b97f4a7c15ull;

constexpr std::uint64_t splitmix64(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// xoshiro256** by Blackman & Vigna (public domain reference algorithm).
class Rng {
 public:
  explicit Rng(std::uint64_t seed = kSplitmix64Gamma) { reseed(seed); }

  /// Re-initializes the state from a single 64-bit seed via splitmix64.
  void reseed(std::uint64_t seed) {
    for (auto& word : state_) {
      seed += kSplitmix64Gamma;
      word = splitmix64(seed);
    }
  }

  /// Next raw 64-bit value.
  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [lo, hi] (inclusive).
  std::uint64_t uniform_int(std::uint64_t lo, std::uint64_t hi) {
    return lo + next() % (hi - lo + 1);
  }

  /// Standard normal via Box-Muller (deterministic, no cached spare).
  double normal() {
    double u1 = uniform();
    double u2 = uniform();
    if (u1 < 1e-300) u1 = 1e-300;
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
  }

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  /// Log-normal with the given parameters of the underlying normal.
  double lognormal(double mu, double sigma) { return std::exp(normal(mu, sigma)); }

  /// Exponential with the given rate (1/mean).
  double exponential(double rate) {
    double u = uniform();
    if (u < 1e-300) u = 1e-300;
    return -std::log(u) / rate;
  }

  /// True with probability `p`.
  bool bernoulli(double p) { return uniform() < p; }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  std::uint64_t state_[4] = {};
};

}  // namespace rfs

#include "common/log.hpp"

#include <atomic>

namespace rfs::log {

namespace {
std::atomic<Level> g_level{Level::Warn};

const char* name(Level l) {
  switch (l) {
    case Level::Trace: return "TRACE";
    case Level::Debug: return "DEBUG";
    case Level::Info: return "INFO ";
    case Level::Warn: return "WARN ";
    case Level::Err: return "ERROR";
    case Level::Off: return "OFF  ";
  }
  return "?";
}
}  // namespace

void set_level(Level level) { g_level.store(level, std::memory_order_relaxed); }

Level level() { return g_level.load(std::memory_order_relaxed); }

void write(Level level, const char* component, const std::string& message) {
  std::fprintf(stderr, "[%s] %s: %s\n", name(level), component, message.c_str());
}

}  // namespace rfs::log

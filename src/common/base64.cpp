#include "common/base64.hpp"

#include <array>

namespace rfs::base64 {

namespace {
constexpr char kAlphabet[] = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

std::array<std::int8_t, 256> make_reverse() {
  std::array<std::int8_t, 256> rev{};
  rev.fill(-1);
  for (int i = 0; i < 64; ++i) rev[static_cast<unsigned char>(kAlphabet[i])] = static_cast<std::int8_t>(i);
  return rev;
}
const std::array<std::int8_t, 256> kReverse = make_reverse();
}  // namespace

std::string encode(std::span<const std::uint8_t> data) {
  std::string out;
  out.reserve(encoded_size(data.size()));
  std::size_t i = 0;
  while (i + 3 <= data.size()) {
    std::uint32_t v = (static_cast<std::uint32_t>(data[i]) << 16) |
                      (static_cast<std::uint32_t>(data[i + 1]) << 8) |
                      static_cast<std::uint32_t>(data[i + 2]);
    out.push_back(kAlphabet[(v >> 18) & 0x3f]);
    out.push_back(kAlphabet[(v >> 12) & 0x3f]);
    out.push_back(kAlphabet[(v >> 6) & 0x3f]);
    out.push_back(kAlphabet[v & 0x3f]);
    i += 3;
  }
  std::size_t rest = data.size() - i;
  if (rest == 1) {
    std::uint32_t v = static_cast<std::uint32_t>(data[i]) << 16;
    out.push_back(kAlphabet[(v >> 18) & 0x3f]);
    out.push_back(kAlphabet[(v >> 12) & 0x3f]);
    out.push_back('=');
    out.push_back('=');
  } else if (rest == 2) {
    std::uint32_t v = (static_cast<std::uint32_t>(data[i]) << 16) |
                      (static_cast<std::uint32_t>(data[i + 1]) << 8);
    out.push_back(kAlphabet[(v >> 18) & 0x3f]);
    out.push_back(kAlphabet[(v >> 12) & 0x3f]);
    out.push_back(kAlphabet[(v >> 6) & 0x3f]);
    out.push_back('=');
  }
  return out;
}

std::string encode(const std::string& data) {
  return encode(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(data.data()), data.size()));
}

Result<std::vector<std::uint8_t>> decode(const std::string& text) {
  if (text.size() % 4 != 0) {
    return Error::make(1, "base64: length not a multiple of 4");
  }
  std::vector<std::uint8_t> out;
  out.reserve(text.size() / 4 * 3);
  for (std::size_t i = 0; i < text.size(); i += 4) {
    int vals[4];
    int pad = 0;
    for (int j = 0; j < 4; ++j) {
      char c = text[i + j];
      if (c == '=') {
        // Padding may only appear in the last two positions of the last group.
        if (i + 4 != text.size() || j < 2) {
          return Error::make(2, "base64: misplaced padding");
        }
        vals[j] = 0;
        ++pad;
      } else {
        if (pad > 0) return Error::make(2, "base64: data after padding");
        std::int8_t v = kReverse[static_cast<unsigned char>(c)];
        if (v < 0) return Error::make(3, "base64: invalid character");
        vals[j] = v;
      }
    }
    std::uint32_t v = (static_cast<std::uint32_t>(vals[0]) << 18) |
                      (static_cast<std::uint32_t>(vals[1]) << 12) |
                      (static_cast<std::uint32_t>(vals[2]) << 6) |
                      static_cast<std::uint32_t>(vals[3]);
    out.push_back(static_cast<std::uint8_t>((v >> 16) & 0xff));
    if (pad < 2) out.push_back(static_cast<std::uint8_t>((v >> 8) & 0xff));
    if (pad < 1) out.push_back(static_cast<std::uint8_t>(v & 0xff));
  }
  return out;
}

}  // namespace rfs::base64

// Latency/bandwidth model of the simulated RDMA fabric and its TCP
// overlay. Defaults are calibrated against the constants reported in the
// paper's evaluation platform (Mellanox MT27800, 100 Gb/s RoCEv2):
//   - small-message inlined WRITE ping-pong RTT:   3.69 us
//   - link bandwidth:                              11 686.4 MiB/s
//   - message inlining ceiling:                    128 B
// See DESIGN.md section 5 for the full calibration table.
#pragma once

#include <cstdint>

#include "common/units.hpp"

namespace rfs::fabric {

struct NetworkModel {
  /// One-way latency components of an RDMA operation. A small inlined
  /// write completes at post + post_overhead + wire_latency + cqe_overhead
  /// = 1845 ns one way, i.e. a 3.69 us ping-pong RTT.
  Duration post_overhead = 150;       // CPU doorbell + WQE fetch
  Duration wire_latency = 1400;       // propagation + one switch hop
  Duration cqe_overhead = 295;        // CQE generation at completion side
  Duration dma_read_latency = 350;    // PCIe DMA read for non-inlined sends

  /// Bandwidth of one link, bytes per second (11 686.4 MiB/s measured).
  double bandwidth_Bps = 11686.4 * 1024.0 * 1024.0;

  /// Maximum total payload that can be inlined into the WQE.
  std::uint32_t max_inline = 128;

  /// Latency added when a blocked thread is woken by a completion event
  /// (interrupt + futex wake + scheduler), vs. zero for busy polling.
  Duration blocking_wake_latency = 2100;

  /// Cost of an atomic operation executed at the responder NIC.
  Duration atomic_latency = 250;

  /// Memory registration: fixed syscall cost + per-page pinning cost.
  Duration mr_register_base = 5_us;
  Duration mr_register_per_page = 300;  // ns per 4 KiB page

  /// TCP/IP overlay (netperf-calibrated on the same link): the stack adds
  /// per-message CPU/kernel latency on both sides and a lower effective
  /// single-stream bandwidth.
  Duration tcp_stack_latency = 4250;        // per direction, per message
  double tcp_bandwidth_Bps = 4.3e9;         // ~34 Gb/s single stream
  Duration tcp_connect_latency = 180_us;    // 3-way handshake + socket setup

  /// Out-of-band RDMA connection management (rdma_cm style): exchange of
  /// QP numbers and transition to RTS, dominated by a TCP exchange.
  Duration cm_handshake = 450_us;

  /// Duration of transferring `bytes` over the RDMA link.
  [[nodiscard]] Duration wire_time(std::uint64_t bytes) const {
    return transfer_time(bytes, bandwidth_Bps);
  }

  /// Duration of transferring `bytes` through the TCP stack.
  [[nodiscard]] Duration tcp_wire_time(std::uint64_t bytes) const {
    return transfer_time(bytes, tcp_bandwidth_Bps);
  }

  /// Cost of registering a memory region of `bytes`.
  [[nodiscard]] Duration mr_register_time(std::uint64_t bytes) const {
    std::uint64_t pages = (bytes + 4095) / 4096;
    return mr_register_base + pages * mr_register_per_page;
  }
};

}  // namespace rfs::fabric

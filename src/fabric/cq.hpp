// Completion queue with the two consumption modes the paper contrasts:
//
//   - wait_polling(): busy-poll semantics. The waiter is resumed at the
//     exact virtual time the CQE is generated (the cost is that the
//     calling worker occupies a CPU core while "spinning" — accounted by
//     the caller). This is the hot-invocation path.
//   - wait_blocking(): completion-channel semantics. The waiter is resumed
//     `blocking_wake_latency` after CQE generation, modelling the
//     interrupt + futex wake of ibv_get_cq_event. This is the warm path.
#pragma once

#include <deque>
#include <span>

#include "fabric/model.hpp"
#include "fabric/verbs.hpp"
#include "sim/sync.hpp"

namespace rfs::fabric {

class CompletionQueue {
 public:
  explicit CompletionQueue(const NetworkModel& model) : model_(model) {}

  /// Non-blocking poll: copies up to out.size() completions, returns count.
  std::size_t poll(std::span<Wc> out);

  /// Busy-poll wait: resumes immediately when a CQE is (or becomes)
  /// available. Returns the completion.
  sim::Task<Wc> wait_polling();

  /// Batched busy-poll wait: resumes at the exact virtual time the FIRST
  /// completion becomes available and drains everything ready at that
  /// instant into `out` in one sweep, FIFO order — N completions that
  /// arrived together cost one poll, not N. Returns the count (>= 1,
  /// <= out.size()).
  sim::Task<std::size_t> wait_polling_many(std::span<Wc> out);

  /// Blocking wait: like wait_polling but adds the wake-up latency of the
  /// completion channel before returning.
  sim::Task<Wc> wait_blocking();

  /// Busy-poll wait with a deadline: returns nullopt when no completion
  /// arrives by `deadline`. Used for the hot->warm rollback of executor
  /// workers ("executors can roll back to warm executions after a
  /// configurable time without a new invocation").
  sim::Task<std::optional<Wc>> wait_polling_until(Time deadline);

  /// Blocking wait with a deadline: completion-channel semantics (the
  /// wake-up latency is charged on arrival) but returns nullopt when no
  /// completion arrives by `deadline`. This is what lets an invocation
  /// deadline surface as a timeout instead of blocking forever when the
  /// remote executor died after the request was submitted.
  sim::Task<std::optional<Wc>> wait_blocking_until(Time deadline);

  /// Pushes a completion (fabric internal).
  void push(const Wc& wc);

  [[nodiscard]] std::size_t depth() const { return ready_.size(); }
  [[nodiscard]] bool empty() const { return ready_.empty(); }

  /// Completions delivered over the CQ's lifetime.
  [[nodiscard]] std::uint64_t delivered() const { return delivered_; }

 private:
  const NetworkModel& model_;
  std::deque<Wc> ready_;
  sim::Event arrival_;
  std::uint64_t delivered_ = 0;
  // Liveness token: deadline timers of wait_polling_until() hold a weak
  // reference and become no-ops once the CQ is destroyed.
  std::shared_ptr<int> alive_ = std::make_shared<int>(0);
};

}  // namespace rfs::fabric

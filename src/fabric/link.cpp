#include "fabric/link.hpp"

#include <algorithm>

namespace rfs::fabric {

void Switch::add_endpoint(DeviceId id) { endpoints_.try_emplace(id); }

Time Switch::reserve_rdma(DeviceId src, DeviceId dst, std::uint64_t bytes) {
  return reserve(src, dst, bytes, model_.wire_latency, model_.bandwidth_Bps);
}

Time Switch::reserve_tcp(DeviceId src, DeviceId dst, std::uint64_t bytes) {
  // TCP messages traverse the same physical link; the stack latency on
  // both ends is charged by the caller, the wire model here only covers
  // serialization at TCP's effective single-stream bandwidth.
  return reserve(src, dst, bytes, model_.wire_latency, model_.tcp_bandwidth_Bps);
}

Time Switch::reserve(DeviceId src, DeviceId dst, std::uint64_t bytes, Duration wire_latency,
                     double bandwidth) {
  auto& s = endpoints_[src];
  auto& d = endpoints_[dst];
  const Time now = engine_.now();
  const Duration ser = transfer_time(bytes, bandwidth);

  // Loopback transfers (same device) skip the wire but still serialize on
  // the single DMA engine, modelled as the TX link.
  if (src == dst) {
    Time start = std::max(now, s.tx_free);
    s.tx_free = start + ser;
    total_bytes_ += bytes;
    return start + ser;
  }

  Time start = std::max({now, s.tx_free, d.rx_free > wire_latency ? d.rx_free - wire_latency : 0});
  s.tx_free = start + ser;
  d.rx_free = start + wire_latency + ser;
  total_bytes_ += bytes;
  return start + wire_latency + ser;
}

}  // namespace rfs::fabric

#include "fabric/device.hpp"

#include "fabric/fabric.hpp"
#include "fabric/qp.hpp"

namespace rfs::fabric {

const char* to_string(WcStatus s) {
  switch (s) {
    case WcStatus::Success: return "success";
    case WcStatus::LocalProtectionError: return "local-protection-error";
    case WcStatus::RemoteAccessError: return "remote-access-error";
    case WcStatus::RnrRetryExceeded: return "rnr-retry-exceeded";
    case WcStatus::RetryExceeded: return "retry-exceeded";
    case WcStatus::FlushError: return "flush-error";
  }
  return "?";
}

const char* to_string(Opcode op) {
  switch (op) {
    case Opcode::Send: return "send";
    case Opcode::SendImm: return "send-imm";
    case Opcode::Write: return "write";
    case Opcode::WriteImm: return "write-imm";
    case Opcode::Read: return "read";
    case Opcode::FetchAdd: return "fetch-add";
    case Opcode::CmpSwap: return "cmp-swap";
    case Opcode::Recv: return "recv";
    case Opcode::RecvImm: return "recv-imm";
  }
  return "?";
}

MemoryRegion* ProtectionDomain::register_memory(void* base, std::uint64_t length,
                                                std::uint32_t access) {
  std::uint32_t lkey = fabric_.next_key();
  std::uint32_t rkey = fabric_.next_key();
  auto mr = std::make_unique<MemoryRegion>(reinterpret_cast<std::uint64_t>(base), length, lkey,
                                           rkey, access);
  MemoryRegion* ptr = mr.get();
  by_lkey_[lkey] = ptr;
  by_rkey_[rkey] = std::move(mr);
  return ptr;
}

sim::Task<MemoryRegion*> ProtectionDomain::register_memory_timed(void* base, std::uint64_t length,
                                                                 std::uint32_t access) {
  co_await register_gate_.lock();
  co_await sim::delay(fabric_.model().mr_register_time(length));
  register_gate_.unlock();
  co_return register_memory(base, length, access);
}

void ProtectionDomain::deregister(MemoryRegion* mr) {
  if (mr == nullptr) return;
  by_lkey_.erase(mr->lkey());
  by_rkey_.erase(mr->rkey());
}

MemoryRegion* ProtectionDomain::find_rkey(std::uint32_t rkey) const {
  auto it = by_rkey_.find(rkey);
  return it == by_rkey_.end() ? nullptr : it->second.get();
}

MemoryRegion* ProtectionDomain::find_lkey(std::uint32_t lkey) const {
  auto it = by_lkey_.find(lkey);
  return it == by_lkey_.end() ? nullptr : it->second;
}

Device::Device(Fabric& fabric, DeviceId id, std::string name, sim::Host* host)
    : fabric_(fabric), id_(id), name_(std::move(name)), host_(host) {}

Device::~Device() = default;

ProtectionDomain* Device::alloc_pd() {
  pds_.push_back(std::make_unique<ProtectionDomain>(fabric_));
  return pds_.back().get();
}

QueuePair* Device::create_qp(ProtectionDomain* pd, CompletionQueue* send_cq,
                             CompletionQueue* recv_cq) {
  std::uint32_t qpn = fabric_.next_qp_num();
  auto qp = std::make_unique<QueuePair>(*this, qpn, pd, send_cq, recv_cq);
  QueuePair* ptr = qp.get();
  qps_[qpn] = std::move(qp);
  return ptr;
}

void Device::destroy_qp(QueuePair* qp) {
  if (qp == nullptr) return;
  // The QP object stays alive (parked in the map, state Error) so that
  // in-flight fabric tasks and the peer's pointer remain valid; the peer
  // observes RetryExceeded on its next operation, like a real RC QP whose
  // counterpart vanished.
  qp->set_error();
}

QueuePair* Device::find_qp(std::uint32_t qp_num) const {
  auto it = qps_.find(qp_num);
  return it == qps_.end() ? nullptr : it->second.get();
}

}  // namespace rfs::fabric

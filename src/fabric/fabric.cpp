#include "fabric/fabric.hpp"

namespace rfs::fabric {

QueuePair* ConnectRequest::accept(Device& dev, ProtectionDomain* pd, CompletionQueue* send_cq,
                                  CompletionQueue* recv_cq, Bytes reply_data) {
  QueuePair* qp = dev.create_qp(pd, send_cq, recv_cq);
  QueuePair::connect_pair(*client_qp_, *qp);
  decided_ = true;
  decision_.set_value(Result<Connected>(Connected{client_qp_, std::move(reply_data)}));
  return qp;
}

void ConnectRequest::reject(std::string reason) {
  decided_ = true;
  decision_.set_value(Result<Connected>(Error::make(10, "connection rejected: " + reason)));
}

sim::Task<std::shared_ptr<ConnectRequest>> Listener::accept() {
  auto item = co_await incoming_.recv();
  co_return item ? *item : nullptr;
}

void Listener::shutdown() { incoming_.close(); }

Fabric::Fabric(sim::Engine& engine, NetworkModel model)
    : engine_(engine), model_(model), switch_(engine, model) {}

Fabric::~Fabric() = default;

Device& Fabric::create_device(const std::string& name, sim::Host* host) {
  auto id = static_cast<DeviceId>(devices_.size());
  devices_.push_back(std::make_unique<Device>(*this, id, name, host));
  switch_.add_endpoint(id);
  return *devices_.back();
}

Device* Fabric::device(DeviceId id) const {
  return id < devices_.size() ? devices_[id].get() : nullptr;
}

std::uint32_t Fabric::locality(DeviceId id) const {
  auto* dev = device(id);
  return dev != nullptr ? dev->locality() : 0;
}

Listener& Fabric::listen(Device& dev, std::uint16_t port) {
  auto key = std::make_pair(dev.id(), port);
  auto [it, inserted] = listeners_.try_emplace(key, std::make_unique<Listener>());
  if (!inserted && it->second->incoming_.closed()) {
    it->second = std::make_unique<Listener>();
  }
  return *it->second;
}

void Fabric::stop_listening(Device& dev, std::uint16_t port) {
  auto it = listeners_.find(std::make_pair(dev.id(), port));
  if (it != listeners_.end()) {
    it->second->shutdown();
    listeners_.erase(it);
  }
}

sim::Task<Result<Connected>> Fabric::connect(Device& from, ProtectionDomain* pd,
                                             CompletionQueue* send_cq, CompletionQueue* recv_cq,
                                             DeviceId to, std::uint16_t port,
                                             Bytes private_data) {
  auto it = listeners_.find(std::make_pair(to, port));
  if (it == listeners_.end() || it->second->incoming_.closed()) {
    co_await sim::delay(model_.cm_handshake / 2);
    co_return Error::make(11, "connection refused: no listener");
  }
  // First half of the out-of-band exchange: route resolution + request.
  co_await sim::delay(model_.cm_handshake / 2);

  QueuePair* client_qp = from.create_qp(pd, send_cq, recv_cq);
  auto request = std::make_shared<ConnectRequest>(client_qp, std::move(private_data));
  auto decision = request->decision_.get_future();
  it->second->incoming_.send(request);

  Result<Connected> outcome = co_await decision.get();
  // Second half: reply + transition to RTS.
  co_await sim::delay(model_.cm_handshake / 2);
  if (!outcome) {
    from.destroy_qp(client_qp);
    co_return outcome.error();
  }
  co_return outcome;
}

}  // namespace rfs::fabric

// Core verbs-style types of the simulated RDMA fabric.
//
// The vocabulary deliberately mirrors libibverbs (ibv_wc, ibv_send_wr,
// IBV_WR_RDMA_WRITE_WITH_IMM, ...) so that the rFaaS layer above reads
// like the real implementation and could be retargeted to hardware verbs.
#pragma once

#include <array>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <initializer_list>

namespace rfs::fabric {

/// Work-request opcodes supported by the fabric (RC transport).
enum class Opcode : std::uint8_t {
  Send,          // two-sided send, consumes a posted receive
  SendImm,       // send with immediate data
  Write,         // one-sided RDMA write
  WriteImm,      // RDMA write with immediate: consumes a receive at target
  Read,          // one-sided RDMA read
  FetchAdd,      // 8-byte atomic fetch-and-add
  CmpSwap,       // 8-byte atomic compare-and-swap
  Recv,          // receive completion (target side)
  RecvImm,       // receive completion carrying immediate data
};

/// Completion status, subset of ibv_wc_status.
enum class WcStatus : std::uint8_t {
  Success,
  LocalProtectionError,   // bad lkey / local bounds
  RemoteAccessError,      // bad rkey / remote bounds / missing permission
  RnrRetryExceeded,       // receiver had no posted receive
  RetryExceeded,          // peer unreachable (destroyed / error state)
  FlushError,             // QP destroyed / transitioned to error
};

const char* to_string(WcStatus s);
const char* to_string(Opcode op);

/// Memory-region access permissions (bitmask, mirrors IBV_ACCESS_*).
enum Access : std::uint32_t {
  LocalWrite = 1u << 0,
  RemoteWrite = 1u << 1,
  RemoteRead = 1u << 2,
  RemoteAtomic = 1u << 3,
};

/// Scatter-gather element. `addr` is a real process pointer expressed as
/// an integer, exactly as in verbs.
struct Sge {
  std::uint64_t addr = 0;
  std::uint32_t length = 0;
  std::uint32_t lkey = 0;
};

/// Inline scatter-gather list. Real WRs carry at most max_send_sge
/// entries (single digits on every HCA), so a fixed-capacity array keeps
/// work-request construction off the heap — the invocation fast path
/// posts a WR per call and must not allocate.
class SgeList {
 public:
  static constexpr std::size_t kMaxSge = 4;

  SgeList() = default;
  SgeList(std::initializer_list<Sge> init) {
    for (const Sge& s : init) push_back(s);
  }

  void push_back(const Sge& s) {
    assert(count_ < kMaxSge && "SgeList: more SGEs than max_send_sge");
    elems_[count_++] = s;
  }
  void clear() { count_ = 0; }

  [[nodiscard]] std::size_t size() const { return count_; }
  [[nodiscard]] bool empty() const { return count_ == 0; }
  [[nodiscard]] Sge& operator[](std::size_t i) { return elems_[i]; }
  [[nodiscard]] const Sge& operator[](std::size_t i) const { return elems_[i]; }
  [[nodiscard]] Sge* begin() { return elems_.data(); }
  [[nodiscard]] Sge* end() { return elems_.data() + count_; }
  [[nodiscard]] const Sge* begin() const { return elems_.data(); }
  [[nodiscard]] const Sge* end() const { return elems_.data() + count_; }

  /// Sum of the element lengths (the WR's payload size).
  [[nodiscard]] std::uint64_t total_length() const {
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < count_; ++i) total += elems_[i].length;
    return total;
  }

 private:
  std::array<Sge, kMaxSge> elems_{};
  std::size_t count_ = 0;
};

/// Send-queue work request.
struct SendWr {
  std::uint64_t wr_id = 0;
  Opcode opcode = Opcode::Write;
  SgeList sge;
  std::uint64_t remote_addr = 0;   // WRITE/READ/atomics target
  std::uint32_t rkey = 0;
  std::uint32_t imm = 0;           // immediate data for *Imm opcodes
  bool signaled = true;            // generate a local completion
  bool inline_data = false;        // copy payload at post time, skip DMA read
  std::uint64_t compare = 0;       // CmpSwap operand
  std::uint64_t swap_or_add = 0;   // CmpSwap swap value / FetchAdd addend
};

/// Receive-queue work request.
struct RecvWr {
  std::uint64_t wr_id = 0;
  SgeList sge;
};

/// Work completion, mirrors ibv_wc.
struct Wc {
  std::uint64_t wr_id = 0;
  WcStatus status = WcStatus::Success;
  Opcode opcode = Opcode::Send;
  std::uint32_t byte_len = 0;
  std::uint32_t imm = 0;
  bool has_imm = false;
  std::uint32_t qp_num = 0;
};

/// Identifies a device (one NIC per simulated host).
using DeviceId = std::uint32_t;

}  // namespace rfs::fabric

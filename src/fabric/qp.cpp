#include "fabric/qp.hpp"

#include <cstring>

#include "fabric/fabric.hpp"

namespace rfs::fabric {

void QueuePair::connect_pair(QueuePair& a, QueuePair& b) {
  a.peer_ = &b;
  b.peer_ = &a;
  a.state_ = QpState::Rts;
  b.state_ = QpState::Rts;
}

Status QueuePair::post_recv(RecvWr wr) {
  if (state_ == QpState::Error) return Error::make(1, "post_recv on error QP");
  if (auto st = validate_sges(wr.sge); !st) return st;
  if (!parked_.empty()) {
    // A delivery has been waiting for this receive (RnrPolicy::Wait).
    Parked p = std::move(parked_.front());
    parked_.pop_front();
    recv_queue_.push_back(std::move(wr));
    deliver_with_recv(p.wr, p.payload, p.byte_len, p.arrival);
    return Status::success();
  }
  recv_queue_.push_back(std::move(wr));
  return Status::success();
}

Status QueuePair::validate_send(const SendWr& wr) const {
  if (state_ != QpState::Rts) return Error::make(1, "post_send: QP not in RTS");
  const auto& model = dev_.fabric().model();

  switch (wr.opcode) {
    case Opcode::Send:
    case Opcode::SendImm:
    case Opcode::Write:
    case Opcode::WriteImm: {
      if (auto st = validate_sges(wr.sge); !st) return st;
      if (wr.inline_data && wr.sge.total_length() > model.max_inline) {
        return Error::make(2, "post_send: inline payload exceeds max_inline");
      }
      break;
    }
    case Opcode::Read: {
      // SGEs are the local destination; they must be writable locally.
      if (auto st = validate_sges(wr.sge); !st) return st;
      if (wr.inline_data) return Error::make(2, "post_send: READ cannot be inlined");
      break;
    }
    case Opcode::FetchAdd:
    case Opcode::CmpSwap: {
      if (wr.sge.size() != 1 || wr.sge[0].length != 8) {
        return Error::make(2, "post_send: atomics need one 8-byte response SGE");
      }
      if (auto st = validate_sges(wr.sge); !st) return st;
      if (wr.remote_addr % 8 != 0) {
        return Error::make(2, "post_send: atomic target must be 8-byte aligned");
      }
      break;
    }
    default:
      return Error::make(2, "post_send: invalid opcode");
  }
  return Status::success();
}

Status QueuePair::post_send(SendWr wr) {
  if (auto st = validate_send(wr); !st) return st;

  Bytes inline_copy;
  if (wr.inline_data) {
    auto gathered = gather(wr.sge);
    if (!gathered) return gathered.error();
    inline_copy = std::move(gathered).take();
  }

  const Duration doorbell = dev_.fabric().model().post_overhead;
  sim::spawn(dev_.fabric().engine(), run_send(std::move(wr), std::move(inline_copy), doorbell));
  return Status::success();
}

Status QueuePair::post_send_many(std::span<SendWr> wrs) {
  // Validate the whole chain before posting anything: ibv_post_send stops
  // at the first bad WR, and a half-posted chain is useless to callers.
  for (const SendWr& wr : wrs) {
    if (auto st = validate_send(wr); !st) return st;
  }

  const Duration doorbell = dev_.fabric().model().post_overhead;
  bool first = true;
  for (SendWr& wr : wrs) {
    Bytes inline_copy;
    if (wr.inline_data) {
      auto gathered = gather(wr.sge);
      if (!gathered) return gathered.error();
      inline_copy = std::move(gathered).take();
    }
    // One doorbell for the chain: the first WR pays the MMIO write + WQE
    // fetch; later WRs are fetched with the same doorbell.
    sim::spawn(dev_.fabric().engine(),
               run_send(std::move(wr), std::move(inline_copy), first ? doorbell : 0));
    first = false;
  }
  return Status::success();
}

sim::Task<void> QueuePair::run_send(SendWr wr, Bytes inline_copy, Duration doorbell) {
  const auto& model = dev_.fabric().model();
  auto& net = dev_.fabric().net();

  // Doorbell + WQE fetch (zero for chained WRs riding a batched post);
  // non-inlined payloads add a PCIe DMA read.
  Duration launch = doorbell;
  const bool is_payload_op = wr.opcode == Opcode::Send || wr.opcode == Opcode::SendImm ||
                             wr.opcode == Opcode::Write || wr.opcode == Opcode::WriteImm;
  if (is_payload_op && !wr.inline_data) launch += model.dma_read_latency;
  co_await sim::delay(launch);

  if (peer_ == nullptr || peer_->state_ == QpState::Error) {
    complete_local(wr, WcStatus::RetryExceeded, 0);
    co_return;
  }
  QueuePair& peer = *peer_;
  const DeviceId src = dev_.id();
  const DeviceId dst = peer.dev_.id();

  if (wr.opcode == Opcode::FetchAdd || wr.opcode == Opcode::CmpSwap) {
    Time delivered = net.reserve_rdma(src, dst, 8);
    co_await sim::delay_until(delivered);
    if (peer.state_ == QpState::Error) {
      complete_local(wr, WcStatus::RetryExceeded, 0);
      co_return;
    }
    MemoryRegion* mr = peer.pd_->find_rkey(wr.rkey);
    if (mr == nullptr || !mr->contains(wr.remote_addr, 8) || !(mr->access() & RemoteAtomic)) {
      complete_local(wr, WcStatus::RemoteAccessError, 0);
      co_return;
    }
    co_await sim::delay(model.atomic_latency);
    auto* target = reinterpret_cast<std::uint64_t*>(wr.remote_addr);
    std::uint64_t original = *target;
    if (wr.opcode == Opcode::FetchAdd) {
      *target = original + wr.swap_or_add;
    } else if (original == wr.compare) {
      *target = wr.swap_or_add;
    }
    Time response = net.reserve_rdma(dst, src, 8);
    co_await sim::delay_until(response);
    std::memcpy(reinterpret_cast<void*>(wr.sge[0].addr), &original, 8);
    co_await sim::delay(model.cqe_overhead);
    complete_local(wr, WcStatus::Success, 8);
    co_return;
  }

  if (wr.opcode == Opcode::Read) {
    const std::uint64_t total = wr.sge.total_length();
    Time request_at = net.reserve_rdma(src, dst, 16);
    co_await sim::delay_until(request_at);
    if (peer.state_ == QpState::Error) {
      complete_local(wr, WcStatus::RetryExceeded, 0);
      co_return;
    }
    MemoryRegion* mr = peer.pd_->find_rkey(wr.rkey);
    if (mr == nullptr || !mr->contains(wr.remote_addr, total) || !(mr->access() & RemoteRead)) {
      complete_local(wr, WcStatus::RemoteAccessError, 0);
      co_return;
    }
    Time response = net.reserve_rdma(dst, src, total);
    co_await sim::delay_until(response);
    // Scatter the remote bytes into the local SGE list.
    const auto* cursor = reinterpret_cast<const std::uint8_t*>(wr.remote_addr);
    for (const auto& s : wr.sge) {
      std::memcpy(reinterpret_cast<void*>(s.addr), cursor, s.length);
      cursor += s.length;
    }
    co_await sim::delay(model.cqe_overhead);
    complete_local(wr, WcStatus::Success, static_cast<std::uint32_t>(total));
    co_return;
  }

  // Payload-carrying operations. Single-SGE non-inlined payloads — the
  // entire invocation data plane — move straight out of the registered
  // application buffer with no intermediate copy: the NIC reads the
  // buffer at transfer time, which is exactly the registered-memory
  // contract. Multi-SGE payloads gather into a staging copy (real HCAs
  // coalesce SGEs in the DMA engine; one copy models that fairly).
  Bytes staged;
  std::span<const std::uint8_t> payload;
  if (wr.inline_data) {
    staged = std::move(inline_copy);
    payload = {staged.data(), staged.size()};
  } else if (wr.sge.size() == 1) {
    payload = {reinterpret_cast<const std::uint8_t*>(wr.sge[0].addr), wr.sge[0].length};
  } else if (!wr.sge.empty()) {
    auto gathered = gather(wr.sge);
    if (!gathered) {
      complete_local(wr, WcStatus::LocalProtectionError, 0);
      co_return;
    }
    staged = std::move(gathered).take();
    payload = {staged.data(), staged.size()};
  }
  const auto byte_len = static_cast<std::uint32_t>(payload.size());

  Time delivered = net.reserve_rdma(src, dst, payload.size());
  co_await sim::delay_until(delivered);
  if (peer.state_ == QpState::Error) {
    complete_local(wr, WcStatus::RetryExceeded, 0);
    co_return;
  }

  if (wr.opcode == Opcode::Write || wr.opcode == Opcode::WriteImm) {
    MemoryRegion* mr = peer.pd_->find_rkey(wr.rkey);
    if (mr == nullptr || !mr->contains(wr.remote_addr, payload.size()) ||
        !(mr->access() & RemoteWrite)) {
      complete_local(wr, WcStatus::RemoteAccessError, 0);
      co_return;
    }
    // Zero-length RDMA writes are legal; memcpy from a null data() is not.
    if (!payload.empty()) {
      std::memcpy(reinterpret_cast<void*>(wr.remote_addr), payload.data(), payload.size());
    }
    if (wr.opcode == Opcode::Write) {
      co_await sim::delay(model.cqe_overhead);
      complete_local(wr, WcStatus::Success, byte_len);
      co_return;
    }
  }

  // Send/SendImm/WriteImm consume a receive at the target.
  if (peer.recv_queue_.empty()) {
    if (peer.rnr_policy_ == RnrPolicy::Wait) {
      // WriteImm data is already placed via the rkey above; only sends
      // must park a payload copy (the source buffer may be reused before
      // a receive shows up).
      Bytes copy;
      if (wr.opcode != Opcode::WriteImm) copy.assign(payload.begin(), payload.end());
      peer.parked_.push_back(Parked{wr, std::move(copy), byte_len, dev_.fabric().engine().now()});
      co_return;  // local completion generated on eventual delivery
    }
    complete_local(wr, WcStatus::RnrRetryExceeded, 0);
    co_return;
  }
  peer.deliver_with_recv(wr, payload, byte_len, dev_.fabric().engine().now());
}

void QueuePair::deliver_with_recv(const SendWr& wr, std::span<const std::uint8_t> payload,
                                  std::uint32_t byte_len, Time arrival) {
  // Runs on the *receiving* QP ("this" is the target). For parked
  // WriteImm deliveries `payload` is empty (the data was placed when the
  // write landed) and `byte_len` carries the completion byte count.
  RecvWr recv = std::move(recv_queue_.front());
  recv_queue_.pop_front();
  const auto& model = dev_.fabric().model();
  (void)arrival;

  Wc remote{};
  remote.wr_id = recv.wr_id;
  remote.qp_num = qp_num_;
  remote.byte_len = byte_len;

  Wc local{};
  local.wr_id = wr.wr_id;
  local.qp_num = peer_ != nullptr ? peer_->qp_num() : 0;
  local.opcode = wr.opcode;
  local.byte_len = byte_len;

  if (wr.opcode == Opcode::Send || wr.opcode == Opcode::SendImm) {
    const std::uint64_t capacity = recv.sge.total_length();
    if (payload.size() > capacity) {
      remote.status = WcStatus::LocalProtectionError;
      remote.opcode = Opcode::Recv;
      local.status = WcStatus::RemoteAccessError;
    } else {
      const std::uint8_t* cursor = payload.data();
      std::size_t remaining = payload.size();
      for (const auto& s : recv.sge) {
        std::size_t n = std::min<std::size_t>(remaining, s.length);
        if (n == 0) break;
        std::memcpy(reinterpret_cast<void*>(s.addr), cursor, n);
        cursor += n;
        remaining -= n;
      }
      remote.status = WcStatus::Success;
      remote.opcode = wr.opcode == Opcode::SendImm ? Opcode::RecvImm : Opcode::Recv;
      local.status = WcStatus::Success;
    }
  } else {  // WriteImm: payload already placed via rkey, receive only signals
    remote.status = WcStatus::Success;
    remote.opcode = Opcode::RecvImm;
    local.status = WcStatus::Success;
  }

  if (wr.opcode == Opcode::SendImm || wr.opcode == Opcode::WriteImm) {
    remote.imm = wr.imm;
    remote.has_imm = true;
  }

  // CQE generation cost, then both completions become visible.
  QueuePair* origin = peer_;
  auto finish = [](QueuePair* target, QueuePair* origin_qp, Wc remote_wc, Wc local_wc,
                   const SendWr wr_copy, Duration cqe) -> sim::Task<void> {
    co_await sim::delay(cqe);
    target->recv_cq_->push(remote_wc);
    if (origin_qp != nullptr) {
      if (wr_copy.signaled || local_wc.status != WcStatus::Success) {
        origin_qp->send_cq_->push(local_wc);
      }
    }
  };
  sim::spawn(dev_.fabric().engine(), finish(this, origin, remote, local, wr, model.cqe_overhead));
}

void QueuePair::complete_local(const SendWr& wr, WcStatus status, std::uint32_t byte_len) {
  if (!wr.signaled && status == WcStatus::Success) return;
  Wc wc{};
  wc.wr_id = wr.wr_id;
  wc.status = status;
  wc.opcode = wr.opcode;
  wc.byte_len = byte_len;
  wc.qp_num = qp_num_;
  send_cq_->push(wc);
}

Result<Bytes> QueuePair::gather(const SgeList& sge) const {
  Bytes out;
  out.reserve(sge.total_length());
  for (const auto& s : sge) {
    const auto* p = reinterpret_cast<const std::uint8_t*>(s.addr);
    out.insert(out.end(), p, p + s.length);
  }
  return out;
}

Status QueuePair::validate_sges(const SgeList& sge) const {
  for (const auto& s : sge) {
    MemoryRegion* mr = pd_->find_lkey(s.lkey);
    if (mr == nullptr) return Error::make(3, "invalid lkey");
    if (!mr->contains(s.addr, s.length)) return Error::make(3, "SGE outside memory region");
  }
  return Status::success();
}

void QueuePair::set_error() {
  if (state_ == QpState::Error) return;
  state_ = QpState::Error;
  while (!recv_queue_.empty()) {
    Wc wc{};
    wc.wr_id = recv_queue_.front().wr_id;
    wc.status = WcStatus::FlushError;
    wc.opcode = Opcode::Recv;
    wc.qp_num = qp_num_;
    recv_cq_->push(wc);
    recv_queue_.pop_front();
  }
  parked_.clear();
}

}  // namespace rfs::fabric

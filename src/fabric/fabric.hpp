// Fabric: the top-level RDMA substrate object. Owns the switch, devices,
// and the rdma_cm-style connection manager (listeners, connect/accept with
// out-of-band handshake latency and private data).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/result.hpp"
#include "fabric/device.hpp"
#include "fabric/link.hpp"
#include "fabric/qp.hpp"
#include "sim/sync.hpp"

namespace rfs::fabric {

/// Outcome of a successful connect(): the initiator's QP plus the private
/// data the acceptor attached to its reply (rdma_cm carries private data
/// in both directions of the handshake).
struct Connected {
  QueuePair* qp = nullptr;
  Bytes accept_data;
};

/// An in-flight connection request delivered to a listener. The acceptor
/// inspects the private data and either accepts (creating its own QP) or
/// rejects.
class ConnectRequest {
 public:
  ConnectRequest(QueuePair* client_qp, Bytes private_data)
      : client_qp_(client_qp), private_data_(std::move(private_data)) {}

  [[nodiscard]] const Bytes& private_data() const { return private_data_; }

  /// Accepts: creates the responder QP on `dev` and connects the pair.
  /// `reply_data` is delivered to the initiator as Connected::accept_data.
  QueuePair* accept(Device& dev, ProtectionDomain* pd, CompletionQueue* send_cq,
                    CompletionQueue* recv_cq, Bytes reply_data = {});

  /// Rejects the connection; the initiator's connect() returns an error.
  void reject(std::string reason);

  [[nodiscard]] bool decided() const { return decided_; }

 private:
  friend class Fabric;
  QueuePair* client_qp_;
  Bytes private_data_;
  sim::Promise<Result<Connected>> decision_;
  bool decided_ = false;
};

/// Listening endpoint identified by (device, port).
class Listener {
 public:
  /// Waits for the next connection request. Returns nullptr if the
  /// listener was shut down.
  sim::Task<std::shared_ptr<ConnectRequest>> accept();

  /// Closes the listener; pending and future accepts return nullptr.
  void shutdown();

  [[nodiscard]] std::size_t backlog() const { return incoming_.size(); }

 private:
  friend class Fabric;
  sim::Channel<std::shared_ptr<ConnectRequest>> incoming_;
};

class Fabric {
 public:
  Fabric(sim::Engine& engine, NetworkModel model = {});
  ~Fabric();

  [[nodiscard]] sim::Engine& engine() { return engine_; }
  [[nodiscard]] const NetworkModel& model() const { return model_; }
  [[nodiscard]] Switch& net() { return switch_; }

  /// Creates a NIC attached to `host` (host may be null in fabric tests).
  Device& create_device(const std::string& name, sim::Host* host = nullptr);

  [[nodiscard]] Device* device(DeviceId id) const;

  /// Topology group of a device's NIC; 0 when the device is unknown.
  [[nodiscard]] std::uint32_t locality(DeviceId id) const;

  /// Starts listening on (device, port). Port must be unused.
  Listener& listen(Device& dev, std::uint16_t port);

  /// Stops listening on (device, port).
  void stop_listening(Device& dev, std::uint16_t port);

  /// Connects to a remote listener: out-of-band handshake (cm_handshake),
  /// QP creation on both sides, transition to RTS. The returned QP is
  /// ready for use. Fails when nobody listens or the acceptor rejects.
  sim::Task<Result<Connected>> connect(Device& from, ProtectionDomain* pd,
                                       CompletionQueue* send_cq, CompletionQueue* recv_cq,
                                       DeviceId to, std::uint16_t port,
                                       Bytes private_data = {});

  // Internal id allocators.
  std::uint32_t next_qp_num() { return next_qpn_++; }
  std::uint32_t next_key() { return next_key_++; }

 private:
  sim::Engine& engine_;
  NetworkModel model_;
  Switch switch_;
  std::vector<std::unique_ptr<Device>> devices_;
  std::map<std::pair<DeviceId, std::uint16_t>, std::unique_ptr<Listener>> listeners_;
  std::uint32_t next_qpn_ = 1;
  std::uint32_t next_key_ = 1;
};

}  // namespace rfs::fabric

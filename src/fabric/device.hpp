// Device, protection domain and memory region objects.
//
// A Device models one RDMA NIC attached to a simulated host. Protection
// domains scope memory registrations; every remote operation validates the
// rkey, bounds and access flags of the target region exactly as a real
// HCA would, so protection bugs in layers above surface as error CQEs.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.hpp"
#include "fabric/model.hpp"
#include "fabric/verbs.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"

namespace rfs::sim {
class Host;
}

namespace rfs::fabric {

class Fabric;
class ProtectionDomain;
class QueuePair;

/// A registered memory region. Does not own the memory.
class MemoryRegion {
 public:
  MemoryRegion(std::uint64_t addr, std::uint64_t length, std::uint32_t lkey, std::uint32_t rkey,
               std::uint32_t access)
      : addr_(addr), length_(length), lkey_(lkey), rkey_(rkey), access_(access) {}

  [[nodiscard]] std::uint64_t addr() const { return addr_; }
  [[nodiscard]] std::uint64_t length() const { return length_; }
  [[nodiscard]] std::uint32_t lkey() const { return lkey_; }
  [[nodiscard]] std::uint32_t rkey() const { return rkey_; }
  [[nodiscard]] std::uint32_t access() const { return access_; }

  /// True when [a, a+len) lies inside the region.
  [[nodiscard]] bool contains(std::uint64_t a, std::uint64_t len) const {
    return a >= addr_ && len <= length_ && a - addr_ <= length_ - len;
  }

 private:
  std::uint64_t addr_;
  std::uint64_t length_;
  std::uint32_t lkey_;
  std::uint32_t rkey_;
  std::uint32_t access_;
};

/// Protection domain: a namespace of memory registrations.
class ProtectionDomain {
 public:
  explicit ProtectionDomain(Fabric& fabric) : fabric_(fabric) {}

  /// Registers `[base, base+length)` with the given access flags.
  /// Zero-cost variant used by unit tests and setup code.
  MemoryRegion* register_memory(void* base, std::uint64_t length, std::uint32_t access);

  /// Registration with the pinning cost applied in virtual time; used on
  /// the executor cold path where registration latency matters.
  /// Registrations within one PD serialize: ibv_reg_mr pins pages under
  /// the owning process's mmap write lock, so concurrent calls from one
  /// process queue up (one PD per actor models one process). This is why
  /// per-invocation registration collapses under fan-out while a
  /// pre-registered buffer pool does not (fig18).
  sim::Task<MemoryRegion*> register_memory_timed(void* base, std::uint64_t length,
                                                 std::uint32_t access);

  /// Invalidates a registration; later remote ops on its rkey fail.
  void deregister(MemoryRegion* mr);

  /// rkey lookup used by remote operations.
  [[nodiscard]] MemoryRegion* find_rkey(std::uint32_t rkey) const;
  /// lkey lookup used to validate local SGEs.
  [[nodiscard]] MemoryRegion* find_lkey(std::uint32_t lkey) const;

  [[nodiscard]] Fabric& fabric() { return fabric_; }

 private:
  Fabric& fabric_;
  std::unordered_map<std::uint32_t, std::unique_ptr<MemoryRegion>> by_rkey_;
  std::unordered_map<std::uint32_t, MemoryRegion*> by_lkey_;
  sim::Mutex register_gate_;  // mmap-lock serialization of timed registrations
};

/// One NIC. Owns its protection domains and queue pairs.
class Device {
 public:
  // Constructor and destructor are out of line: QueuePair is incomplete
  // here and both ODR-use the member containers' destructors.
  Device(Fabric& fabric, DeviceId id, std::string name, sim::Host* host);
  ~Device();

  [[nodiscard]] DeviceId id() const { return id_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] Fabric& fabric() { return fabric_; }
  /// Host the NIC is attached to (may be null in pure-fabric tests).
  [[nodiscard]] sim::Host* host() const { return host_; }

  /// Topology group (rack / leaf switch) of the NIC. Deployment helpers
  /// assign groups; locality-aware schedulers read them. Group 0 is the
  /// default "unplaced" group.
  [[nodiscard]] std::uint32_t locality() const { return locality_; }
  void set_locality(std::uint32_t group) { locality_ = group; }

  ProtectionDomain* alloc_pd();

  /// Creates an unconnected RC queue pair.
  QueuePair* create_qp(ProtectionDomain* pd, class CompletionQueue* send_cq,
                       class CompletionQueue* recv_cq);

  /// Destroys a QP: flushes its receive queue and fails future peers' ops.
  void destroy_qp(QueuePair* qp);

  [[nodiscard]] QueuePair* find_qp(std::uint32_t qp_num) const;

 private:
  Fabric& fabric_;
  DeviceId id_;
  std::string name_;
  sim::Host* host_;
  std::uint32_t locality_ = 0;
  std::vector<std::unique_ptr<ProtectionDomain>> pds_;
  std::unordered_map<std::uint32_t, std::unique_ptr<QueuePair>> qps_;
};

}  // namespace rfs::fabric

#include "fabric/cq.hpp"

namespace rfs::fabric {

std::size_t CompletionQueue::poll(std::span<Wc> out) {
  std::size_t n = 0;
  while (n < out.size() && !ready_.empty()) {
    out[n++] = ready_.front();
    ready_.pop_front();
  }
  return n;
}

sim::Task<Wc> CompletionQueue::wait_polling() {
  while (ready_.empty()) {
    co_await arrival_.wait();
  }
  Wc wc = ready_.front();
  ready_.pop_front();
  co_return wc;
}

sim::Task<std::size_t> CompletionQueue::wait_polling_many(std::span<Wc> out) {
  while (ready_.empty()) {
    co_await arrival_.wait();
  }
  co_return poll(out);
}

sim::Task<Wc> CompletionQueue::wait_blocking() {
  while (ready_.empty()) {
    co_await arrival_.wait();
  }
  // The completion channel raised an event; the sleeping thread pays the
  // interrupt + wake-up cost before it can drain the CQ.
  co_await sim::delay(model_.blocking_wake_latency);
  // More completions may have arrived during the wake-up; FIFO order is
  // preserved because we pop from the front.
  Wc wc = ready_.front();
  ready_.pop_front();
  co_return wc;
}

sim::Task<std::optional<Wc>> CompletionQueue::wait_polling_until(Time deadline) {
  // A helper timer pulses the arrival event at the deadline so the waiter
  // re-checks; the `expired` flag distinguishes timeout from arrival. The
  // timer checks the CQ liveness token before touching it.
  auto expired = std::make_shared<bool>(false);
  auto timer = [](sim::Event* ev, Time when, std::shared_ptr<bool> flag,
                  std::weak_ptr<int> alive) -> sim::Task<void> {
    co_await sim::delay_until(when);
    *flag = true;
    if (alive.lock()) ev->pulse();
  };
  sim::spawn(*sim::Engine::current(), timer(&arrival_, deadline, expired, alive_));
  while (ready_.empty()) {
    if (*expired) co_return std::nullopt;
    co_await arrival_.wait();
  }
  Wc wc = ready_.front();
  ready_.pop_front();
  co_return wc;
}

sim::Task<std::optional<Wc>> CompletionQueue::wait_blocking_until(Time deadline) {
  // Same deadline-timer shape as wait_polling_until; the only difference
  // is the completion-channel wake-up cost paid on a real arrival (a
  // timeout returns at the deadline itself — nothing woke the thread).
  auto expired = std::make_shared<bool>(false);
  auto timer = [](sim::Event* ev, Time when, std::shared_ptr<bool> flag,
                  std::weak_ptr<int> alive) -> sim::Task<void> {
    co_await sim::delay_until(when);
    *flag = true;
    if (alive.lock()) ev->pulse();
  };
  sim::spawn(*sim::Engine::current(), timer(&arrival_, deadline, expired, alive_));
  while (ready_.empty()) {
    if (*expired) co_return std::nullopt;
    co_await arrival_.wait();
  }
  co_await sim::delay(model_.blocking_wake_latency);
  if (ready_.empty()) co_return std::nullopt;  // raced away during wake-up
  Wc wc = ready_.front();
  ready_.pop_front();
  co_return wc;
}

void CompletionQueue::push(const Wc& wc) {
  ready_.push_back(wc);
  ++delivered_;
  arrival_.pulse();
}

}  // namespace rfs::fabric

// Switched network with per-endpoint full-duplex links.
//
// Every device owns one TX and one RX link to the central switch. A
// transfer occupies the source TX link and the destination RX link for
// `bytes / bandwidth` and is delivered after the one-way wire latency.
// Concurrent transfers to the same endpoint serialize on its RX link,
// which is what bounds parallel invocations in Fig. 10 ("rFaaS achieves
// the maximal bandwidth of the link").
#pragma once

#include <cstdint>
#include <unordered_map>

#include "common/units.hpp"
#include "fabric/model.hpp"
#include "fabric/verbs.hpp"
#include "sim/engine.hpp"

namespace rfs::fabric {

class Switch {
 public:
  Switch(sim::Engine& engine, NetworkModel model) : engine_(engine), model_(model) {}

  [[nodiscard]] const NetworkModel& model() const { return model_; }

  /// Reserves link time for a payload of `bytes` from `src` to `dst`
  /// starting no earlier than now. Returns the absolute delivery time at
  /// the destination (link serialization + wire latency included, but not
  /// protocol-level costs such as CQE generation).
  Time reserve_rdma(DeviceId src, DeviceId dst, std::uint64_t bytes);

  /// Same, with the TCP bandwidth model.
  Time reserve_tcp(DeviceId src, DeviceId dst, std::uint64_t bytes);

  /// Registers a device endpoint (idempotent).
  void add_endpoint(DeviceId id);

  /// Total bytes that crossed the switch (both models).
  [[nodiscard]] std::uint64_t total_bytes() const { return total_bytes_; }

 private:
  struct Endpoint {
    Time tx_free = 0;
    Time rx_free = 0;
  };

  Time reserve(DeviceId src, DeviceId dst, std::uint64_t bytes, Duration wire_latency,
               double bandwidth);

  sim::Engine& engine_;
  NetworkModel model_;
  std::unordered_map<DeviceId, Endpoint> endpoints_;
  std::uint64_t total_bytes_ = 0;
};

}  // namespace rfs::fabric

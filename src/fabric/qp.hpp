// Reliable-connected queue pair.
//
// post_send validates the request and schedules a detached fabric task
// that moves real bytes at the modelled time: payload serialization on the
// switch links, DMA-read cost for non-inlined data, CQE generation delay.
// Remote operations check rkey/bounds/access and fail with error CQEs on
// violation, so the protection model is enforced, not assumed.
#pragma once

#include <cstdint>
#include <deque>
#include <span>

#include "common/bytes.hpp"
#include "common/result.hpp"
#include "fabric/cq.hpp"
#include "fabric/device.hpp"
#include "fabric/verbs.hpp"

namespace rfs::fabric {

enum class QpState : std::uint8_t { Reset, Rts, Error };

/// Behaviour when a Send/WriteImm arrives and no receive is posted.
enum class RnrPolicy : std::uint8_t {
  Error,  // sender gets RnrRetryExceeded (rnr_retry exhausted)
  Wait,   // delivery parks until a receive is posted (infinite rnr_retry)
};

class QueuePair {
 public:
  QueuePair(Device& dev, std::uint32_t qp_num, ProtectionDomain* pd, CompletionQueue* send_cq,
            CompletionQueue* recv_cq)
      : dev_(dev), qp_num_(qp_num), pd_(pd), send_cq_(send_cq), recv_cq_(recv_cq) {}

  [[nodiscard]] std::uint32_t qp_num() const { return qp_num_; }
  [[nodiscard]] QpState state() const { return state_; }
  [[nodiscard]] Device& device() { return dev_; }
  [[nodiscard]] ProtectionDomain* pd() { return pd_; }
  [[nodiscard]] CompletionQueue* send_cq() { return send_cq_; }
  [[nodiscard]] CompletionQueue* recv_cq() { return recv_cq_; }
  [[nodiscard]] QueuePair* peer() { return peer_; }

  void set_rnr_policy(RnrPolicy p) { rnr_policy_ = p; }

  /// Connects this QP to `remote` (both transition to RTS). The
  /// ConnectionManager performs the out-of-band exchange; tests may call
  /// this directly.
  static void connect_pair(QueuePair& a, QueuePair& b);

  /// Posts a receive work request.
  Status post_recv(RecvWr wr);

  /// Posts a send-side work request. Validation errors (bad state, bad
  /// lkey, oversized inline) are returned synchronously; transport and
  /// remote-protection errors arrive as error CQEs.
  Status post_send(SendWr wr);

  /// Posts a chain of work requests with a single doorbell, mirroring the
  /// linked-list form of ibv_post_send: the first WR pays post_overhead,
  /// the rest ride the same MMIO write. All WRs are validated up front —
  /// a validation failure of any WR fails the whole chain before anything
  /// is posted (as a real post_send stops at the bad_wr).
  Status post_send_many(std::span<SendWr> wrs);

  /// Transitions to the error state, flushing posted receives.
  void set_error();

  [[nodiscard]] std::size_t recv_queue_depth() const { return recv_queue_.size(); }

 private:
  struct Parked {
    SendWr wr;
    // Send/SendImm park a copy of the payload (the sender's buffer may be
    // reused before a receive shows up); WriteImm data is already placed
    // via the rkey, so only the byte count is kept — no copy.
    Bytes payload;
    std::uint32_t byte_len = 0;
    Time arrival;
  };

  Status validate_send(const SendWr& wr) const;
  sim::Task<void> run_send(SendWr wr, Bytes inline_copy, Duration doorbell);
  void deliver_with_recv(const SendWr& wr, std::span<const std::uint8_t> payload,
                         std::uint32_t byte_len, Time arrival);
  void complete_local(const SendWr& wr, WcStatus status, std::uint32_t byte_len);
  [[nodiscard]] Result<Bytes> gather(const SgeList& sge) const;
  [[nodiscard]] Status validate_sges(const SgeList& sge) const;

  Device& dev_;
  std::uint32_t qp_num_;
  ProtectionDomain* pd_;
  CompletionQueue* send_cq_;
  CompletionQueue* recv_cq_;
  QueuePair* peer_ = nullptr;
  QpState state_ = QpState::Reset;
  RnrPolicy rnr_policy_ = RnrPolicy::Error;
  std::deque<RecvWr> recv_queue_;
  std::deque<Parked> parked_;  // deliveries waiting for a receive (RnrPolicy::Wait)

  friend class Device;
};

}  // namespace rfs::fabric

// Baseline FaaS platforms for the Fig. 1 / Fig. 11 comparisons.
//
// Each baseline reproduces the invocation pipeline of the system the
// paper measures against, calibrated to the constants reported in Fig. 1:
//   AWS Lambda:  19.64 ms base RTT, 17.21 MB/s effective bandwidth
//   OpenWhisk:  119.18 ms base RTT,  1.79 MB/s
//   Nightcore:  209.45 us base RTT, 453.72 MB/s
// Data transformations are real (base64 encode/decode, HTTP message
// serialization/parsing, genuine function execution on the payload);
// the pipeline stage latencies are modelled.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/result.hpp"
#include "rfaas/functions.hpp"
#include "sim/task.hpp"

namespace rfs::baselines {

/// Common interface of the comparison platforms.
class FaasBaseline {
 public:
  virtual ~FaasBaseline() = default;

  /// Invokes `fn` with `payload`; returns the output bytes. The virtual
  /// time consumed is the platform's end-to-end latency.
  virtual sim::Task<Result<Bytes>> invoke(const std::string& fn, const Bytes& payload) = 0;

  [[nodiscard]] virtual const char* name() const = 0;
};

// ---------------------------------------------------------------------------

struct AwsConfig {
  double bandwidth_Bps = 17.21e6;      // HTTPS goodput observed by the client
  Duration wan_one_way = 550_us;       // same-region EC2 -> endpoint
  Duration gateway_overhead = 2250_us; // per direction: TLS + API gateway
  Duration placement = 9500_us;        // "each invocation is processed by a
                                       //  dedicated management service" [30]
  Duration runtime_overhead = 2600_us; // Lambda runtime dispatch + marshalling
  Duration cold_start = 180_ms;        // Firecracker microVM + runtime init
  Duration keep_alive = 600_s;         // warm container retention
  std::size_t payload_limit = 6_MiB;   // request body limit (returns 413)
  std::uint32_t memory_mb = 1769;      // CPU share scales with memory size
};

/// AWS Lambda: HTTP POST with base64 body through a gateway and a
/// placement service into a warm (or cold) microVM.
class AwsLambdaSim final : public FaasBaseline {
 public:
  AwsLambdaSim(sim::Engine& engine, const rfaas::FunctionRegistry& registry, AwsConfig config)
      : engine_(engine), registry_(registry), config_(config) {}

  sim::Task<Result<Bytes>> invoke(const std::string& fn, const Bytes& payload) override;
  [[nodiscard]] const char* name() const override { return "aws-lambda"; }

  [[nodiscard]] std::uint64_t cold_starts() const { return cold_starts_; }
  [[nodiscard]] const AwsConfig& config() const { return config_; }

 private:
  struct Container {
    bool busy = false;
    Time warm_until = 0;
  };

  sim::Engine& engine_;
  const rfaas::FunctionRegistry& registry_;
  AwsConfig config_;
  std::map<std::string, std::vector<Container>> pool_;
  std::uint64_t cold_starts_ = 0;
};

// ---------------------------------------------------------------------------

struct OpenWhiskConfig {
  double bandwidth_Bps = 1.79e6;
  Duration gateway = 11_ms;       // nginx + API gateway
  Duration controller = 21_ms;    // load balancer decision
  Duration kafka = 34_ms;         // publish + consume on the message bus
  Duration invoker = 17_ms;       // invoker picks up the activation
  Duration action_init = 24_ms;   // container /run dispatch (argv exec)
  Duration response_path = 7_ms;  // activation record + response
  std::size_t argv_limit = 125 * 1024;  // inputs beyond this use file staging
  Duration file_staging = 18_ms;        // extra cost above the argv limit
};

/// OpenWhisk: "the critical path includes a controller, database, load
/// balancer, and a message bus" (Sec. II-B).
class OpenWhiskSim final : public FaasBaseline {
 public:
  OpenWhiskSim(sim::Engine& engine, const rfaas::FunctionRegistry& registry,
               OpenWhiskConfig config)
      : engine_(engine), registry_(registry), config_(config) {}

  sim::Task<Result<Bytes>> invoke(const std::string& fn, const Bytes& payload) override;
  [[nodiscard]] const char* name() const override { return "openwhisk"; }

 private:
  sim::Engine& engine_;
  const rfaas::FunctionRegistry& registry_;
  OpenWhiskConfig config_;
};

// ---------------------------------------------------------------------------

struct NightcoreConfig {
  double bandwidth_Bps = 453.72e6;
  Duration tcp_rtt = 19_us;        // cluster-internal socket round trip
  Duration gateway = 86_us;        // nightcore gateway dispatch
  Duration ipc = 40_us;            // per direction: shared-memory queue hop
  Duration runtime = 24_us;        // worker launch of the function
};

/// Nightcore: a low-latency FaaS runtime using binary RPC, no base64.
class NightcoreSim final : public FaasBaseline {
 public:
  NightcoreSim(sim::Engine& engine, const rfaas::FunctionRegistry& registry,
               NightcoreConfig config)
      : engine_(engine), registry_(registry), config_(config) {}

  sim::Task<Result<Bytes>> invoke(const std::string& fn, const Bytes& payload) override;
  [[nodiscard]] const char* name() const override { return "nightcore"; }

 private:
  sim::Engine& engine_;
  const rfaas::FunctionRegistry& registry_;
  NightcoreConfig config_;
};

}  // namespace rfs::baselines

#include "baselines/baselines.hpp"

#include <algorithm>

#include "common/base64.hpp"
#include "net/http.hpp"

namespace rfs::baselines {

namespace {

/// Executes a registry function on decoded bytes, charging its cost model
/// scaled by `cpu_share` (Lambda CPU allocation is proportional to the
/// memory size).
sim::Task<Result<Bytes>> run_function(const rfaas::FunctionRegistry& registry,
                                      const std::string& fn, const Bytes& input,
                                      double cpu_share) {
  auto pkg = registry.find(fn);
  if (!pkg) co_return pkg.error();
  Bytes output(std::max<std::size_t>(input.size() + 4096, 1 << 16));
  const std::uint32_t out_len = pkg.value()->entry(
      input.data(), static_cast<std::uint32_t>(input.size()), output.data());
  output.resize(out_len);
  const auto cost = pkg.value()->compute_time(static_cast<std::uint32_t>(input.size()));
  if (cost > 0) {
    co_await sim::delay(static_cast<Duration>(static_cast<double>(cost) / cpu_share));
  }
  co_return output;
}

}  // namespace

// ---------------------------------------------------------------------------
// AWS Lambda
// ---------------------------------------------------------------------------

sim::Task<Result<Bytes>> AwsLambdaSim::invoke(const std::string& fn, const Bytes& payload) {
  if (payload.size() > config_.payload_limit) {
    // The gateway rejects the request after receiving the headers.
    co_await sim::delay(2 * config_.wan_one_way + config_.gateway_overhead);
    co_return Error::make(413, "payload too large: use S3 staging");
  }

  // Client: build the real HTTP request with a base64 body.
  net::HttpRequest request;
  request.method = "POST";
  request.path = "/2015-03-31/functions/" + fn + "/invocations";
  request.headers["Host"] = "lambda.us-east-1.amazonaws.com";
  request.headers["X-Amz-Invocation-Type"] = "RequestResponse";
  request.body = base64::encode(payload);
  const Bytes wire_request = request.serialize();

  // Uplink: WAN latency + HTTPS goodput.
  co_await sim::delay(config_.wan_one_way +
                      transfer_time(wire_request.size(), config_.bandwidth_Bps));
  co_await sim::delay(config_.gateway_overhead);

  // The gateway parses the request for real.
  auto parsed = net::HttpRequest::parse(wire_request);
  if (!parsed) co_return parsed.error();

  // Placement service routes to a warm container or spins up a new one.
  co_await sim::delay(config_.placement);
  auto& containers = pool_[fn];
  Container* chosen = nullptr;
  for (auto& c : containers) {
    if (!c.busy && c.warm_until >= engine_.now()) {
      chosen = &c;
      break;
    }
  }
  if (chosen == nullptr) {
    containers.push_back(Container{});
    chosen = &containers.back();
    ++cold_starts_;
    co_await sim::delay(config_.cold_start);
  }
  chosen->busy = true;

  // Runtime: decode the body (real), run the user code (real).
  co_await sim::delay(config_.runtime_overhead);
  auto decoded = base64::decode(parsed.value().body);
  if (!decoded) {
    chosen->busy = false;
    co_return decoded.error();
  }
  const double cpu_share = std::min(1.0, config_.memory_mb / 1769.0);
  auto output = co_await run_function(registry_, fn, decoded.value(), cpu_share);
  chosen->busy = false;
  chosen->warm_until = engine_.now() + config_.keep_alive;
  if (!output) co_return output.error();

  // Response: base64 again, back through the gateway and the WAN.
  net::HttpResponse response;
  response.status = 200;
  response.body = base64::encode(std::span<const std::uint8_t>(output.value()));
  const Bytes wire_response = response.serialize();
  co_await sim::delay(config_.gateway_overhead + config_.wan_one_way +
                      transfer_time(wire_response.size(), config_.bandwidth_Bps));

  auto parsed_response = net::HttpResponse::parse(wire_response);
  if (!parsed_response) co_return parsed_response.error();
  auto final_output = base64::decode(parsed_response.value().body);
  if (!final_output) co_return final_output.error();
  co_return final_output.value();
}

// ---------------------------------------------------------------------------
// OpenWhisk
// ---------------------------------------------------------------------------

sim::Task<Result<Bytes>> OpenWhiskSim::invoke(const std::string& fn, const Bytes& payload) {
  // Client -> API gateway (HTTP, base64 parameters).
  net::HttpRequest request;
  request.method = "POST";
  request.path = "/api/v1/namespaces/_/actions/" + fn + "?blocking=true";
  request.body = base64::encode(payload);
  const Bytes wire_request = request.serialize();
  co_await sim::delay(config_.gateway +
                      transfer_time(wire_request.size(), config_.bandwidth_Bps));

  // Controller + load balancer decision, then the Kafka hop.
  co_await sim::delay(config_.controller);
  co_await sim::delay(config_.kafka);

  // Invoker starts the action. Inputs above the argv limit are staged
  // through a file instead of argv (extra copy).
  co_await sim::delay(config_.invoker);
  if (payload.size() > config_.argv_limit) {
    co_await sim::delay(config_.file_staging);
  }
  co_await sim::delay(config_.action_init);

  auto parsed = net::HttpRequest::parse(wire_request);
  if (!parsed) co_return parsed.error();
  auto decoded = base64::decode(parsed.value().body);
  if (!decoded) co_return decoded.error();
  auto output = co_await run_function(registry_, fn, decoded.value(), 1.0);
  if (!output) co_return output.error();

  // Activation record write + response through the gateway.
  const std::string encoded = base64::encode(std::span<const std::uint8_t>(output.value()));
  co_await sim::delay(config_.response_path +
                      transfer_time(encoded.size(), config_.bandwidth_Bps));
  auto final_output = base64::decode(encoded);
  if (!final_output) co_return final_output.error();
  co_return final_output.value();
}

// ---------------------------------------------------------------------------
// Nightcore
// ---------------------------------------------------------------------------

sim::Task<Result<Bytes>> NightcoreSim::invoke(const std::string& fn, const Bytes& payload) {
  // Binary RPC: no base64, one gateway and a shared-memory hop each way.
  co_await sim::delay(config_.tcp_rtt / 2 +
                      transfer_time(payload.size(), config_.bandwidth_Bps));
  co_await sim::delay(config_.gateway + config_.ipc);
  co_await sim::delay(config_.runtime);

  auto output = co_await run_function(registry_, fn, payload, 1.0);
  if (!output) co_return output.error();

  co_await sim::delay(config_.ipc + config_.tcp_rtt / 2 +
                      transfer_time(output.value().size(), config_.bandwidth_Bps));
  co_return std::move(output).take();
}

}  // namespace rfs::baselines

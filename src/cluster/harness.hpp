// Cluster scenario harness: one declarative description of a complete
// rFaaS deployment — engine, fabric, TCP overlay, topology, resource
// manager, N spot executors (possibly heterogeneous) and M client hosts —
// shared by every bench, example and end-to-end test. Mirrors how SeBS
// separates the FaaS `System` abstraction from its experiment drivers:
// scenarios say *what* to deploy, the harness owns *how*.
//
// Beyond construction, the harness drives lease-level workloads for
// cluster-utilization experiments (Fig. 2 style): M clients allocating,
// holding and releasing leases against the resource manager, sampled into
// a utilization trace. Multi-tenant runs (run_multi_tenant_workload)
// drive several tenants with independent arrival rates and lease shapes
// against the same fleet and record per-grant latencies, which is how the
// large-fleet single-vs-sharded manager comparison measures tail grant
// latency. Invocation-level experiments build invokers via make_invoker()
// exactly as before.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "net/faulty.hpp"
#include "rfaas/executor.hpp"
#include "rfaas/invoker.hpp"
#include "rfaas/resource_manager.hpp"
#include "rfaas/session.hpp"

namespace rfs::cluster {

/// One group of identical spot executors.
struct ExecutorGroup {
  unsigned count = 1;
  unsigned cores = 36;  // two 18-core Xeon Gold 6154
  std::uint64_t memory_bytes = 64ull << 30;
};

/// Declarative description of a deployment.
struct ScenarioSpec {
  std::vector<ExecutorGroup> executors{{2, 36, 64ull << 30}};
  unsigned client_hosts = 1;
  unsigned cores_per_client = 36;
  std::uint64_t memory_per_client = 64ull << 30;
  /// Topology groups (racks); hosts are assigned round-robin. 1 = flat.
  unsigned racks = 1;
  rfaas::Config config{};

  /// Chaos knobs (bench/fig19_chaos.cpp): when `inject_faults` is set the
  /// harness owns a net::FaultInjector seeded with `fault_seed` and runs
  /// every client<->manager control link under `faults`. Executor
  /// registration links keep the lossless default unless a test retunes
  /// them through fault_injector(), and the RDMA data plane is never
  /// faulted — RoCE RC retransmits below the protocol under test.
  net::FaultSpec faults{};
  bool inject_faults = false;
  std::uint64_t fault_seed = 1;
  /// Executor-side data-plane chaos (bench/fig21_grayfailure): when
  /// `inject_worker_faults` is set the harness owns a seeded
  /// net::WorkerFaultInjector (same `fault_seed`) wired into every
  /// ExecutorManager, with `worker_faults` as the fleet-wide default
  /// spec. Per-executor overrides (e.g. exactly one gray host) go
  /// through worker_fault_injector()->set_executor().
  net::WorkerFaultSpec worker_faults{};
  bool inject_worker_faults = false;
  /// Retransmission parameters of every workload client session. Soak
  /// schedules widen max_retransmits so partition windows longer than
  /// the adaptive-RTO backoff sum cannot kill a client.
  rfaas::SessionOptions session_options{};
  /// When set (the default), leaked_leases_after() aborts on a nonzero
  /// result, so chaos tests get the no-leaked-leases invariant for free;
  /// benches that report the gate themselves clear it.
  bool assert_drained = true;

  /// Client failover knobs: when a workload client's session dies it
  /// redials the manager up to this many times (backoff apart) with a
  /// bumped session epoch, re-binds its LeaseSet, re-subscribes the
  /// notification stream and revalidates held leases against the
  /// promoted primary. 0 keeps the pre-HA behaviour: a dead session is
  /// a dead client.
  unsigned client_reconnect_attempts = 0;
  Duration client_reconnect_backoff = 20_ms;

  /// Homogeneous fleet shorthand.
  static ScenarioSpec uniform(unsigned executors, unsigned cores = 36,
                              std::uint64_t memory_bytes = 64ull << 30, unsigned clients = 1) {
    ScenarioSpec spec;
    spec.executors = {{executors, cores, memory_bytes}};
    spec.client_hosts = clients;
    return spec;
  }

  /// Thousands-of-executors fleet with the skew idle HPC capacity really
  /// has: a few big nodes, a medium tier, and a long tail of small hosts
  /// whose 8-core/4-core split is drawn deterministically from `seed`.
  /// Always generates exactly `executors` executors.
  static ScenarioSpec large_fleet(unsigned executors, unsigned clients, unsigned racks = 8,
                                  std::uint64_t seed = 2023);

  [[nodiscard]] unsigned total_executors() const {
    unsigned n = 0;
    for (const auto& g : executors) n += g.count;
    return n;
  }
};

/// Parameters of the lease-level open-loop workload each client runs
/// during run_lease_workload(): allocate a lease of a random size, hold
/// it, release it, think, repeat.
struct LeaseWorkload {
  std::uint32_t workers_min = 1;
  std::uint32_t workers_max = 8;
  std::uint64_t memory_per_worker = 256ull << 20;
  Duration hold_min = 2_s;
  Duration hold_max = 20_s;
  Duration think_min = 100_ms;
  Duration think_max = 2_s;
  Duration lease_timeout = 300_s;
  std::uint64_t seed = 7;
  /// Keep held leases alive with ExtendLease through a client-side
  /// rfaas::LeaseSet while the hold outlives the lease timeout.
  bool auto_renew = false;
  /// Renew when remaining validity drops below this; 0 = timeout / 4.
  Duration renew_margin = 0;
  /// Open a notification stream (SubscribeEvents) so manager-initiated
  /// LeaseTerminated pushes are observed and counted — the control arm
  /// of the self-healing comparison subscribes without healing.
  bool subscribe_events = false;
  /// Self-healing: re-allocate terminated/expired leases transparently
  /// (implies subscribe_events).
  bool self_heal = false;
  unsigned realloc_budget = 6;
  Duration realloc_backoff = 10_ms;

  /// Churn preset: leases deliberately outlive their TTL (holds of 3-6x
  /// the timeout), kept alive purely by auto-renewal — the scenario that
  /// flushes out renewal races against the manager's expiry sweep.
  static LeaseWorkload churn(Duration lease_timeout = 5_s, std::uint64_t seed = 7) {
    LeaseWorkload w;
    w.lease_timeout = lease_timeout;
    w.hold_min = 3 * lease_timeout;
    w.hold_max = 6 * lease_timeout;
    w.think_min = lease_timeout / 10;
    w.think_max = lease_timeout / 2;
    w.auto_renew = true;
    w.renew_margin = lease_timeout / 4;
    w.seed = seed;
    return w;
  }
};

/// Result of a lease workload run: the sampled worker-utilization trace,
/// grant/denial counters, and the client-observed grant latencies
/// (request sent -> grant received, virtual nanoseconds).
struct UtilizationTrace {
  struct Sample {
    Time at = 0;
    double utilization_pct = 0;  // busy workers / total workers
  };
  std::vector<Sample> samples;
  std::uint64_t granted = 0;
  std::uint64_t denied = 0;
  std::uint64_t renewals = 0;           // successful ExtendLease round trips
  std::uint64_t renewal_failures = 0;   // refused / failed renewals
  std::uint64_t spurious_expiries = 0;  // held leases lost to expiry
  std::uint64_t terminations = 0;       // manager-initiated LeaseTerminated
  std::uint64_t reallocations = 0;      // lost leases replaced (self-healing)
  std::uint64_t realloc_failures = 0;   // heal budgets exhausted unreplaced
  // Overload accounting (admission control + client retry budgets).
  std::uint64_t offered = 0;            // arrivals generated (open-loop offered load)
  std::uint64_t overload_denials = 0;   // admission sheds observed (subset of denied)
  std::uint64_t retries = 0;            // shed requests re-attempted within budget
  std::uint64_t retry_exhausted = 0;    // arrivals whose retry budget ran dry
  std::uint64_t max_retries = 0;        // most retries any single arrival spent
  // Chaos accounting, summed over every client session of the run.
  std::uint64_t retransmits = 0;        // timed-out requests sent again
  std::uint64_t call_failures = 0;      // calls that exhausted the retransmit budget
  std::uint64_t duplicate_replies = 0;  // replies absorbed by session dedup
  std::uint64_t duplicate_pushes = 0;   // eviction pushes absorbed by seq dedup
  std::uint64_t double_grants = 0;      // duplicate grant with a DIFFERENT lease id
  std::uint64_t clients_started = 0;
  std::uint64_t client_deaths = 0;      // loops that died on a transport failure
  // Failover accounting (manager kill + standby promotion).
  std::uint64_t reconnects = 0;         // sessions re-established after a dead one
  std::uint64_t reconnect_failures = 0; // redial attempts that could not connect
  std::vector<double> grant_latency;  // ns per successful grant
  /// Client-observed reclamation latency per termination push: manager
  /// eviction decision -> push absorbed by the holder (virtual ns).
  std::vector<double> reclaim_latency;
  /// Grant-path blackout per outage a client observed: first failed
  /// call -> next successful grant (virtual ns). The fig20 failover
  /// bench gates its p99 against the unloaded grant tail.
  std::vector<double> blackout_ns;

  [[nodiscard]] double mean_utilization() const;
  [[nodiscard]] double peak_utilization() const;
  /// Linear-interpolated grant-latency percentile, 0 when no grants.
  [[nodiscard]] double grant_latency_percentile(double p) const;
  /// Grants per virtual second over `horizon`.
  [[nodiscard]] double grant_throughput(Duration horizon) const;
  /// Reclamation-latency percentile, 0 when nothing was terminated.
  [[nodiscard]] double reclaim_latency_percentile(double p) const;
  /// Blackout percentile over every client-observed outage, 0 when no
  /// client ever lost its session.
  [[nodiscard]] double blackout_percentile(double p) const;
  /// Held leases lost involuntarily: terminations + spurious expiries.
  [[nodiscard]] std::uint64_t losses() const { return terminations + spurious_expiries; }
  /// Share of lost leases the client replaced before the workload ended:
  /// the self-healing survival rate (100 when nothing was lost).
  [[nodiscard]] double survival_pct() const {
    return losses() == 0 ? 100.0
                         : 100.0 * static_cast<double>(reallocations) /
                               static_cast<double>(losses());
  }
  /// Share of client loops that reached the horizon instead of dying on
  /// a transport failure — the fig19 chaos gate requires 100.
  [[nodiscard]] double client_survival_pct() const {
    return clients_started == 0 ? 100.0
                                : 100.0 * static_cast<double>(clients_started - client_deaths) /
                                      static_cast<double>(clients_started);
  }
};

/// Arrival process of one tenant's request generator.
enum class ArrivalProcess : std::uint8_t {
  /// Legacy closed loop: one outstanding request per client, exponential
  /// think time — manager queueing throttles a saturated tenant.
  Closed,
  /// Open loop: Poisson arrivals fired as detached request coroutines,
  /// so offered load is independent of how the manager responds — the
  /// overload regime admission control exists for.
  Poisson,
  /// Open loop, sinusoidally modulated Poisson (thinning against the
  /// peak rate): a compressed diurnal demand curve whose peak is
  /// `arrival_hz` and trough is ~10% of it.
  Diurnal,
  /// Open loop, lognormal inter-arrivals with the same mean rate but
  /// heavy-tailed gaps — long quiets punctured by bursts that slam the
  /// admission window all at once.
  HeavyTail,
};

/// One tenant of a multi-tenant lease workload: a group of client hosts
/// issuing requests at a per-client arrival rate. The default Closed
/// process keeps the legacy behaviour; the open-loop processes decouple
/// offered load from service and can multiplex thousands of simulated
/// clients per connection (a million-client ingress on a handful of
/// hosts). Leases are released from detached hold coroutines, so hold
/// times occupy the fleet without limiting the tenant's request rate.
struct TenantWorkload {
  std::string name = "tenant";
  unsigned clients = 4;     // client hosts dedicated to this tenant
  double arrival_hz = 5.0;  // per simulated client lease-request rate
  LeaseWorkload lease{};    // sizes, hold times, lease timeout, seed

  /// WFQ weight at the manager's admission layer; applied by
  /// run_multi_tenant_workload before the run when admission is
  /// configured (Config::admission).
  std::uint32_t weight = 1;
  /// Tenant identity presented in LeaseRequest.client_id by ALL of this
  /// tenant's clients (0 = legacy per-client ids). Admission fairness is
  /// keyed on this id, so weighted sharing needs every client of a
  /// tenant to present the same one. Incompatible with per-client
  /// notification subscriptions (subscribe_events/self_heal): the
  /// manager keeps one push stream per id.
  std::uint32_t tenant_id = 0;
  ArrivalProcess arrivals = ArrivalProcess::Closed;
  /// Simulated clients multiplexed on each real connection (open-loop
  /// processes only): the host fires `multiplex * arrival_hz` aggregate
  /// arrivals per second over one shared session.
  std::uint64_t multiplex = 1;
  /// Retries per arrival after an admission shed (0 = shed requests are
  /// simply counted as denied). Each retry waits
  /// max(retry_backoff * 2^attempt, the manager's retry_after hint)
  /// plus up to 25% upward jitter — the client-side retry-budget
  /// discipline that keeps retries from amplifying a storm.
  unsigned retry_budget = 0;
  Duration retry_backoff = 5_ms;
  /// Period of the Diurnal modulation.
  Duration diurnal_period = 60_s;
  /// Lognormal sigma of HeavyTail inter-arrival gaps.
  double heavy_tail_sigma = 2.0;
};

/// Per-tenant slice of a multi-tenant run.
struct TenantTrace {
  std::string name;
  std::uint32_t weight = 1;
  std::uint64_t offered = 0;  ///< arrivals generated (open loop: offered load)
  std::uint64_t granted = 0;
  std::uint64_t denied = 0;
  std::uint64_t overload_denials = 0;  ///< admission sheds (subset of denied)
  std::uint64_t retries = 0;           ///< shed requests re-attempted
  std::uint64_t retry_exhausted = 0;   ///< arrivals whose retry budget ran dry
  std::uint64_t max_retries = 0;       ///< most retries any single arrival spent
  std::vector<double> grant_latency;  // ns
};

struct MultiTenantTrace {
  UtilizationTrace aggregate;  // fleet samples + summed counters/latencies
  std::vector<TenantTrace> tenants;
};

class Harness {
 public:
  explicit Harness(ScenarioSpec spec);
  ~Harness();

  /// Spawns the resource manager and executor managers, then runs the
  /// engine briefly so registration completes.
  void start();

  [[nodiscard]] sim::Engine& engine() { return engine_; }
  [[nodiscard]] fabric::Fabric& fabric() { return *fabric_; }
  [[nodiscard]] net::TcpNetwork& tcp() { return *tcp_; }
  [[nodiscard]] rfaas::FunctionRegistry& registry() { return registry_; }
  [[nodiscard]] const rfaas::Config& config() const { return spec_.config; }
  [[nodiscard]] const ScenarioSpec& spec() const { return spec_; }
  [[nodiscard]] rfaas::ResourceManager& rm() { return *rm_; }

  [[nodiscard]] std::size_t executor_count() const { return executors_.size(); }
  [[nodiscard]] rfaas::ExecutorManager& executor(std::size_t i) { return *executors_.at(i); }
  [[nodiscard]] sim::Host& executor_host(std::size_t i) { return *executor_hosts_.at(i); }

  [[nodiscard]] std::size_t client_count() const { return client_hosts_.size(); }
  [[nodiscard]] sim::Host& client_host(std::size_t i) { return *client_hosts_.at(i); }
  [[nodiscard]] fabric::Device& client_device(std::size_t i) { return *client_devices_.at(i); }

  /// Builds an invoker bound to client host `i`.
  std::unique_ptr<rfaas::Invoker> make_invoker(std::size_t client_host = 0,
                                               std::uint32_t client_id = 1);

  /// Spawns a scenario coroutine on the engine.
  void spawn(sim::Task<void> task) { sim::spawn(engine_, std::move(task)); }

  /// Runs the engine until no events remain (or `until` when nonzero).
  void run(Time until = 0);

  /// Runs the engine for `d` more virtual nanoseconds.
  void run_for(Duration d) { engine_.run_until(engine_.now() + d); }

  /// Drives every client host through `workload` for `horizon` virtual
  /// time while sampling cluster worker utilization every `sample_every`.
  /// The scenario must be start()ed first.
  UtilizationTrace run_lease_workload(const LeaseWorkload& workload, Duration horizon,
                                      Duration sample_every = 1_s);

  /// Drives the tenants concurrently for `horizon`: tenant i occupies the
  /// next `tenants[i].clients` client hosts (wrapping modulo the host
  /// count), each issuing lease requests at the tenant's arrival rate.
  /// The scenario must be start()ed first.
  MultiTenantTrace run_multi_tenant_workload(const std::vector<TenantWorkload>& tenants,
                                             Duration horizon, Duration sample_every = 1_s);

  /// Tally of one eviction storm (see start_eviction_storm()).
  struct StormStats {
    std::uint64_t requested = 0;  ///< eviction attempts issued
    std::uint64_t evicted = 0;    ///< leases actually live when evicted
  };

  /// Failure-injection knob: every `period`, evicts up to
  /// `leases_per_tick` random live leases (reason QuotaPressure) for
  /// `duration` virtual time. Deterministic for a fixed seed. Runs
  /// alongside a lease workload; read the tally after run()/run_for().
  std::shared_ptr<StormStats> start_eviction_storm(Duration period, unsigned leases_per_tick,
                                                   Duration duration, std::uint64_t seed = 99);

  /// Failure-injection knob: drains executor `index` — every lease it
  /// hosts is terminated (LeaseTerminated to both sides) and it receives
  /// no further placements. Returns the number of evicted leases, or
  /// nullopt when the executor is not (or no longer) registered.
  std::optional<std::size_t> drain_executor(std::size_t index);

  /// Attaches a warm standby to the current primary: snapshot install +
  /// live journal-record streaming (requires Config::journal_enabled).
  /// Returns nullptr when the primary has no journal or the snapshot
  /// offer is rejected.
  std::shared_ptr<rfaas::StandbyReplica> attach_standby();
  [[nodiscard]] std::size_t standby_count() const { return standbys_.size(); }

  /// Kills the current primary. Default: hard crash — listeners down,
  /// every established control stream severed, clients and executors
  /// see dead sessions. `zombie`: network isolation only — listeners
  /// down but established streams stay up, so the stale primary keeps
  /// answering in-flight calls until epoch fencing cuts it off.
  void kill_manager(bool zombie = false);

  /// Promotes standby `index` to primary: a fresh ResourceManager on the
  /// manager host/device (same address and port) adopts the replica's
  /// exported state under the old epoch + 1 and starts serving. Any
  /// remaining standbys are re-attached to the new primary. The retired
  /// manager object stays alive (parked coroutines reference it) but
  /// never serves again. Aborts if adoption fails — a digest-verified
  /// replica that cannot seed a manager is a replication bug.
  rfaas::ResourceManager& promote_standby(std::size_t index = 0);

  /// Schedules a failover inside a workload run: after `kill_after` the
  /// primary dies (crash or zombie), then `promote_after` later standby
  /// 0 is promoted. Attach a standby first; spawn before the run so the
  /// kill lands mid-horizon.
  void schedule_failover(Duration kill_after, Duration promote_after, bool zombie = false);

  /// The chaos decision source when ScenarioSpec::inject_faults is set
  /// (nullptr otherwise); tests add partitions or retune individual
  /// links through it.
  [[nodiscard]] net::FaultInjector* fault_injector() { return faults_.get(); }

  /// The executor-side fault source when ScenarioSpec::inject_worker_faults
  /// is set (nullptr otherwise); benches retune per-executor specs and
  /// read the crash/stuck/gray/double-execution counters through it.
  [[nodiscard]] net::WorkerFaultInjector* worker_fault_injector() { return worker_faults_.get(); }

  /// Black-holes the control link between client host `i` and the
  /// manager for virtual time [from, until). No-op without fault
  /// injection.
  void partition_client(std::size_t i, Time from, Time until);

  /// Post-drain leak gate: runs the engine for `grace` so in-flight
  /// releases and the expiry sweep land, then returns how many leases
  /// are still live in any shard's table. After every client drained, a
  /// nonzero result is a protocol bug (double-release miscount or a
  /// grant the client never learned it owns) — with
  /// ScenarioSpec::assert_drained set it aborts instead of returning.
  std::size_t leaked_leases_after(Duration grace);

  /// Re-sums the chaos counter block of `trace` from the client sessions
  /// of the most recent workload run. Call after a post-horizon drain:
  /// clients parked on a hold when the horizon hit keep their sessions
  /// (and late duplicate deliveries) live past run_lease_workload().
  void refresh_chaos_counters(UtilizationTrace& trace) const;

 private:
  // Heap-shared so client coroutines still parked on a hold/think delay
  // when the horizon ends can outlive run_lease_workload() safely.
  struct WorkloadCounters {
    std::uint64_t granted = 0;
    std::uint64_t denied = 0;
    std::uint64_t renewals = 0;
    std::uint64_t renewal_failures = 0;
    std::uint64_t spurious_expiries = 0;
    std::uint64_t terminations = 0;
    std::uint64_t reallocations = 0;
    std::uint64_t realloc_failures = 0;
    std::uint64_t offered = 0;
    std::uint64_t overload_denials = 0;
    std::uint64_t retries = 0;
    std::uint64_t retry_exhausted = 0;
    std::uint64_t max_retries = 0;
    std::uint64_t clients_started = 0;
    std::uint64_t client_deaths = 0;
    std::uint64_t reconnects = 0;
    std::uint64_t reconnect_failures = 0;
    std::vector<double> grant_latency;
    std::vector<double> reclaim_latency;
    std::vector<double> blackout_ns;
    /// Every session the run's clients opened (request + notification),
    /// harvested when traces are built — kept as shared_ptrs so chaos
    /// counters stay readable after the owning loop unwound.
    std::vector<std::shared_ptr<rfaas::Session>> sessions;
  };

  /// Builds the renewal-side LeaseSet of one workload client (nullptr
  /// when the workload does not auto-renew); its callbacks feed `out`.
  std::shared_ptr<rfaas::LeaseSet> make_lease_set(std::shared_ptr<rfaas::Session> session,
                                                  const LeaseWorkload& workload,
                                                  std::shared_ptr<WorkloadCounters> out);

  /// Outcome of one lease round trip.
  struct LeaseAttempt {
    bool open = false;       ///< session survived the exchange
    bool overload = false;   ///< shed by admission control (LeaseDenied)
    Duration retry_after = 0;  ///< shed-only backoff hint (0 = none)
    std::optional<rfaas::LeaseGrantMsg> grant;
  };

  /// One lease round trip: request `workers` through `session` (which
  /// retransmits and dedups under loss), account the outcome
  /// (granted/denied/shed + grant latency) into `out`. Shared by every
  /// client loop.
  sim::Task<LeaseAttempt> request_lease(std::shared_ptr<rfaas::Session> session,
                                        std::uint32_t client_id, std::uint32_t workers,
                                        const LeaseWorkload& workload, WorkloadCounters& out);

  /// request_lease wrapped in the client-side retry-budget discipline:
  /// an admission shed is retried up to `workload.retry_budget` times,
  /// each wait = max(exponential backoff, the manager's retry_after
  /// hint) with upward jitter from `rng`. Grant latency spans the whole
  /// retried attempt (first send -> grant).
  sim::Task<LeaseAttempt> request_lease_with_retries(std::shared_ptr<rfaas::Session> session,
                                                     std::uint32_t client_id,
                                                     std::uint32_t workers,
                                                     const TenantWorkload& workload, Rng& rng,
                                                     Time deadline,
                                                     std::shared_ptr<WorkloadCounters> out);

  /// Dials the manager from client host `client` and wraps the stream in
  /// a Session carrying `epoch` (nullptr when the connect fails). Every
  /// reconnect bumps the epoch so replies of the previous session
  /// incarnation are fenced.
  sim::Task<std::shared_ptr<rfaas::Session>> connect_client_session(std::size_t client,
                                                                    std::uint32_t epoch);

  /// Bounded redial of one workload client after its session died:
  /// connects under a bumped epoch, re-binds the LeaseSet, re-subscribes
  /// the notification stream and revalidates held leases against the
  /// (promoted) manager. Returns the fresh session, or nullptr when the
  /// budget ran dry. `epoch` lives in the calling coroutine's frame.
  sim::Task<std::shared_ptr<rfaas::Session>> reconnect_client(
      std::size_t client, const LeaseWorkload& workload, std::uint32_t& epoch, Time deadline,
      std::shared_ptr<rfaas::LeaseSet> leases, std::shared_ptr<WorkloadCounters> out);

  sim::Task<void> lease_client_loop(std::size_t client, LeaseWorkload workload,
                                    std::uint64_t seed, Time deadline,
                                    std::shared_ptr<WorkloadCounters> out);
  sim::Task<void> tenant_client_loop(std::size_t client, TenantWorkload workload,
                                     std::uint64_t seed, Time deadline,
                                     std::shared_ptr<WorkloadCounters> out);
  /// Open-loop generator of one tenant client host: fires arrivals at
  /// the aggregate rate of `workload.multiplex` simulated clients as
  /// detached request coroutines over one shared session — offered load
  /// never waits for service (ArrivalProcess::Poisson/Diurnal/HeavyTail).
  sim::Task<void> open_loop_tenant_loop(std::size_t client, TenantWorkload workload,
                                        std::uint64_t seed, Time deadline,
                                        std::shared_ptr<WorkloadCounters> out);
  /// One open-loop arrival: retried lease request, detached hold+release
  /// on grant.
  sim::Task<void> open_loop_request(std::shared_ptr<rfaas::Session> session,
                                    std::uint32_t client_id, std::uint32_t workers,
                                    TenantWorkload workload, std::uint64_t seed, Time deadline,
                                    std::shared_ptr<WorkloadCounters> out);
  sim::Task<void> eviction_storm_loop(Duration period, unsigned leases_per_tick,
                                      Time deadline, std::uint64_t seed,
                                      std::shared_ptr<StormStats> out);
  /// Opens the notification stream of one workload client and subscribes
  /// its LeaseSet to termination pushes; returns the notification
  /// session so its dedup counters can be harvested (nullptr when the
  /// workload neither subscribes nor self-heals).
  sim::Task<std::shared_ptr<rfaas::Session>> subscribe_lease_events(
      std::size_t client, std::uint32_t client_id, const LeaseWorkload& workload,
      std::shared_ptr<rfaas::LeaseSet> leases);
  sim::Task<void> sample_utilization(std::shared_ptr<std::vector<UtilizationTrace::Sample>> out,
                                     Time deadline, Duration every);

  ScenarioSpec spec_;
  sim::Engine engine_;
  std::unique_ptr<fabric::Fabric> fabric_;
  std::unique_ptr<net::TcpNetwork> tcp_;
  std::unique_ptr<net::FaultInjector> faults_;
  std::unique_ptr<net::WorkerFaultInjector> worker_faults_;
  rfaas::FunctionRegistry registry_;

  /// Counter sinks of the most recent workload run, kept so
  /// refresh_chaos_counters() can re-sum them after a drain.
  std::vector<std::shared_ptr<WorkloadCounters>> last_sinks_;

  std::unique_ptr<sim::Host> rm_host_;
  fabric::Device* rm_device_ = nullptr;
  std::unique_ptr<rfaas::ResourceManager> rm_;
  /// Warm standbys attached to the current primary (promotion consumes
  /// one and re-attaches the rest).
  std::vector<std::shared_ptr<rfaas::StandbyReplica>> standbys_;
  /// Managers retired by promote_standby(): dead to the network but kept
  /// alive because their parked coroutine frames still reference them.
  std::vector<std::unique_ptr<rfaas::ResourceManager>> retired_rms_;

  std::vector<std::unique_ptr<sim::Host>> executor_hosts_;
  std::vector<fabric::Device*> executor_devices_;
  std::vector<std::unique_ptr<rfaas::ExecutorManager>> executors_;

  std::vector<std::unique_ptr<sim::Host>> client_hosts_;
  std::vector<fabric::Device*> client_devices_;
};

}  // namespace rfs::cluster

#include "cluster/harness.hpp"

#include <cmath>
#include <cstdlib>

#include "common/log.hpp"
#include "common/stats.hpp"

namespace rfs::cluster {

double UtilizationTrace::mean_utilization() const {
  if (samples.empty()) return 0;
  double sum = 0;
  for (const auto& s : samples) sum += s.utilization_pct;
  return sum / static_cast<double>(samples.size());
}

double UtilizationTrace::peak_utilization() const {
  double peak = 0;
  for (const auto& s : samples) peak = std::max(peak, s.utilization_pct);
  return peak;
}

double UtilizationTrace::grant_latency_percentile(double p) const {
  if (grant_latency.empty()) return 0;
  return Summary(grant_latency).percentile(p);
}

double UtilizationTrace::grant_throughput(Duration horizon) const {
  if (horizon == 0) return 0;
  return static_cast<double>(granted) / (static_cast<double>(horizon) * 1e-9);
}

double UtilizationTrace::reclaim_latency_percentile(double p) const {
  if (reclaim_latency.empty()) return 0;
  return Summary(reclaim_latency).percentile(p);
}

double UtilizationTrace::blackout_percentile(double p) const {
  if (blackout_ns.empty()) return 0;
  return Summary(blackout_ns).percentile(p);
}

ScenarioSpec ScenarioSpec::large_fleet(unsigned executors, unsigned clients, unsigned racks,
                                       std::uint64_t seed) {
  ScenarioSpec spec;
  spec.executors.clear();
  spec.client_hosts = std::max(1u, clients);
  spec.racks = std::max(1u, racks);

  Rng rng(seed);
  const unsigned big = executors / 20;         // ~5%: two-socket 36-core nodes
  const unsigned medium = executors * 3 / 20;  // ~15%: 16-core
  const unsigned small = executors - big - medium;
  const unsigned small8 = static_cast<unsigned>(static_cast<double>(small) *
                                                rng.uniform(0.4, 0.6));
  const unsigned small4 = small - small8;
  if (big != 0) spec.executors.push_back({big, 36, 64ull << 30});
  if (medium != 0) spec.executors.push_back({medium, 16, 32ull << 30});
  if (small8 != 0) spec.executors.push_back({small8, 8, 16ull << 30});
  if (small4 != 0) spec.executors.push_back({small4, 4, 8ull << 30});
  if (spec.executors.empty()) spec.executors.push_back({executors, 8, 16ull << 30});
  return spec;
}

Harness::Harness(ScenarioSpec spec) : spec_(std::move(spec)) {
  engine_.make_current();
  fabric_ = std::make_unique<fabric::Fabric>(engine_, spec_.config.network);
  tcp_ = std::make_unique<net::TcpNetwork>(engine_, fabric_->net());
  if (spec_.inject_faults) {
    faults_ = std::make_unique<net::FaultInjector>(spec_.fault_seed);
    tcp_->set_fault_injector(faults_.get());
  }

  const unsigned racks = std::max(1u, spec_.racks);
  unsigned host_counter = 0;  // round-robin rack assignment across all hosts

  rm_host_ = std::make_unique<sim::Host>("rm", 4, 16ull << 30);
  rm_device_ = &fabric_->create_device("rm-nic", rm_host_.get());
  rm_device_->set_locality(host_counter++ % racks);
  rm_ = std::make_unique<rfaas::ResourceManager>(engine_, *fabric_, *tcp_, *rm_host_,
                                                 *rm_device_, spec_.config);

  unsigned executor_index = 0;
  for (const auto& group : spec_.executors) {
    for (unsigned i = 0; i < group.count; ++i, ++executor_index) {
      executor_hosts_.push_back(std::make_unique<sim::Host>(
          "spot" + std::to_string(executor_index), group.cores, group.memory_bytes));
      auto& dev = fabric_->create_device("spot-nic" + std::to_string(executor_index),
                                         executor_hosts_.back().get());
      dev.set_locality(host_counter++ % racks);
      executor_devices_.push_back(&dev);
      executors_.push_back(std::make_unique<rfaas::ExecutorManager>(
          engine_, *fabric_, *tcp_, *executor_hosts_.back(), dev, spec_.config, registry_));
    }
  }

  for (unsigned i = 0; i < spec_.client_hosts; ++i) {
    client_hosts_.push_back(std::make_unique<sim::Host>(
        "client" + std::to_string(i), spec_.cores_per_client, spec_.memory_per_client));
    auto& dev = fabric_->create_device("client-nic" + std::to_string(i),
                                       client_hosts_.back().get());
    dev.set_locality(host_counter++ % racks);
    client_devices_.push_back(&dev);
  }

  if (spec_.inject_worker_faults) {
    worker_faults_ = std::make_unique<net::WorkerFaultInjector>(spec_.fault_seed);
    worker_faults_->set_default(spec_.worker_faults);
    for (auto& executor : executors_) executor->set_worker_faults(worker_faults_.get());
  }

  if (faults_ != nullptr) {
    // Chaos applies to the client<->manager control links only: executor
    // registration links keep the lossless default spec, and the RDMA
    // data plane never passes through the TCP overlay at all.
    for (auto* dev : client_devices_) {
      faults_->set_link(dev->id(), rm_device_->id(), spec_.faults);
    }
  }
}

Harness::~Harness() {
  // Reclaim every still-suspended actor (server loops, heartbeats,
  // parked clients) while the fabric/TCP objects their frames reference
  // are alive; member destructors then tear the world down actor-free.
  engine_.drain_detached();
}

void Harness::start() {
  rm_->start();
  for (auto& e : executors_) {
    e->start(rm_device_->id(), rm_->port());
  }
  // Let registration and billing connections settle before clients move.
  engine_.run_until(engine_.now() + 5_ms);
}

std::unique_ptr<rfaas::Invoker> Harness::make_invoker(std::size_t client_host,
                                                      std::uint32_t client_id) {
  return std::make_unique<rfaas::Invoker>(engine_, *fabric_, *tcp_, spec_.config,
                                          *client_devices_.at(client_host), rm_device_->id(),
                                          rm_->port(), client_id);
}

void Harness::run(Time until) {
  if (until == 0) {
    engine_.run();
  } else {
    engine_.run_until(until);
  }
}

namespace {

rfaas::ReleaseResourcesMsg release_for(const rfaas::LeaseGrantMsg& grant,
                                       const LeaseWorkload& workload) {
  rfaas::ReleaseResourcesMsg rel;
  rel.lease_id = grant.lease_id;
  rel.workers = grant.workers;
  rel.memory_bytes = workload.memory_per_worker * grant.workers;
  return rel;
}

/// Holds a granted lease for `hold`, then releases it — detached from the
/// tenant loop so hold times occupy the fleet without throttling the
/// tenant's arrival process. A renewing client abandons the lease chain
/// first (self-healing may have replaced the original id), so the
/// release names the live lease and cannot race a renewal or heal. The
/// release goes through the session (retransmitted until ReleaseOk), so
/// one dropped message cannot strand capacity until lease expiry.
sim::Task<void> hold_and_release(std::shared_ptr<rfaas::Session> session,
                                 std::shared_ptr<rfaas::LeaseSet> leases,
                                 rfaas::ReleaseResourcesMsg release, Duration hold) {
  co_await sim::delay(hold);
  if (leases != nullptr) release.lease_id = leases->abandon(release.lease_id);
  if (session->closed()) co_return;
  release.request_id = session->next_request_id();
  (void)co_await session->call(rfaas::encode(release), release.request_id);
}

}  // namespace

std::shared_ptr<rfaas::LeaseSet> Harness::make_lease_set(
    std::shared_ptr<rfaas::Session> session, const LeaseWorkload& workload,
    std::shared_ptr<WorkloadCounters> out) {
  if (!workload.auto_renew && !workload.subscribe_events && !workload.self_heal) {
    return nullptr;
  }
  rfaas::LeaseSetOptions opts;
  opts.renew_margin =
      workload.renew_margin != 0 ? workload.renew_margin : workload.lease_timeout / 4;
  opts.extension = workload.lease_timeout;
  opts.self_heal = workload.self_heal;
  opts.realloc_budget = workload.realloc_budget;
  opts.realloc_backoff = workload.realloc_backoff;
  auto leases = std::make_shared<rfaas::LeaseSet>(engine_, opts);
  leases->bind(std::move(session));
  leases->on_renewed([out](std::uint64_t, Time) { ++out->renewals; });
  leases->on_renewal_failed(
      [out](std::uint64_t, const std::string&) { ++out->renewal_failures; });
  leases->on_expired([out](std::uint64_t) { ++out->spurious_expiries; });
  auto* engine = &engine_;
  leases->on_terminated([out, engine](std::uint64_t, rfaas::TerminationReason, Time at) {
    ++out->terminations;
    out->reclaim_latency.push_back(static_cast<double>(engine->now() - at));
  });
  leases->on_reallocated(
      [out](std::uint64_t, const rfaas::LeaseGrantMsg&) { ++out->reallocations; });
  if (workload.auto_renew || workload.self_heal) leases->start();
  return leases;
}

sim::Task<std::shared_ptr<rfaas::Session>> Harness::subscribe_lease_events(
    std::size_t client, std::uint32_t client_id, const LeaseWorkload& workload,
    std::shared_ptr<rfaas::LeaseSet> leases) {
  if (leases == nullptr || (!workload.subscribe_events && !workload.self_heal)) {
    co_return nullptr;
  }
  auto conn = co_await tcp_->connect(client_devices_.at(client)->id(), rm_device_->id(),
                                     rm_->port());
  if (!conn.ok()) co_return nullptr;
  auto session = std::make_shared<rfaas::Session>(engine_, conn.value(), spec_.session_options);
  leases->subscribe(session, client_id);
  co_return session;
}

sim::Task<Harness::LeaseAttempt> Harness::request_lease(
    std::shared_ptr<rfaas::Session> session, std::uint32_t client_id, std::uint32_t workers,
    const LeaseWorkload& workload, WorkloadCounters& out) {
  rfaas::LeaseRequestMsg req;
  req.client_id = client_id;
  req.workers = workers;
  req.memory_bytes = workload.memory_per_worker;
  req.timeout = workload.lease_timeout;
  req.request_id = session->next_request_id();
  const Time sent_at = engine_.now();
  auto raw = co_await session->call(rfaas::encode(req), req.request_id);
  // Stream closed or retransmit budget exhausted: the client dies.
  LeaseAttempt attempt;
  if (!raw.ok()) co_return attempt;
  attempt.open = true;

  auto grant = rfaas::decode_lease_grant(raw.value());
  if (!grant.ok()) {
    ++out.denied;
    if (auto shed = rfaas::decode_lease_denied(raw.value()); shed.ok()) {
      ++out.overload_denials;
      attempt.overload = true;
      attempt.retry_after = shed.value().retry_after;
    }
    co_return attempt;
  }
  ++out.granted;
  out.grant_latency.push_back(static_cast<double>(engine_.now() - sent_at));
  attempt.grant = grant.value();
  co_return attempt;
}

sim::Task<Harness::LeaseAttempt> Harness::request_lease_with_retries(
    std::shared_ptr<rfaas::Session> session, std::uint32_t client_id, std::uint32_t workers,
    const TenantWorkload& workload, Rng& rng, Time deadline,
    std::shared_ptr<WorkloadCounters> out) {
  // Admitted-latency accounting: a retried grant's latency spans from
  // the FIRST send, so retry waits show up in the admitted tail instead
  // of vanishing — the fig17 p99 gate measures what a client felt.
  const Time first_sent = engine_.now();
  const std::size_t latencies_before = out->grant_latency.size();
  std::uint64_t spent = 0;
  Duration backoff = std::max<Duration>(1_us, workload.retry_backoff);
  LeaseAttempt attempt = co_await request_lease(session, client_id, workers, workload.lease, *out);
  while (attempt.open && attempt.overload && !attempt.grant && spent < workload.retry_budget &&
         engine_.now() < deadline) {
    // The retry-budget discipline: never before the manager's hint,
    // exponentially spaced, jittered upward so a shed herd spreads out
    // instead of re-arriving in one wave.
    Duration wait = std::max(backoff, attempt.retry_after);
    wait += static_cast<Duration>(static_cast<double>(wait) * 0.25 * rng.uniform());
    co_await sim::delay(wait);
    backoff *= 2;
    ++spent;
    ++out->retries;
    attempt = co_await request_lease(session, client_id, workers, workload.lease, *out);
  }
  if (attempt.grant && spent > 0 && out->grant_latency.size() > latencies_before) {
    out->grant_latency.back() = static_cast<double>(engine_.now() - first_sent);
  }
  out->max_retries = std::max(out->max_retries, spent);
  if (attempt.overload && !attempt.grant && workload.retry_budget > 0) ++out->retry_exhausted;
  co_return attempt;
}

sim::Task<std::shared_ptr<rfaas::Session>> Harness::connect_client_session(
    std::size_t client, std::uint32_t epoch) {
  auto conn = co_await tcp_->connect(client_devices_.at(client)->id(), rm_device_->id(),
                                     rm_->port());
  if (!conn.ok()) co_return nullptr;
  auto options = spec_.session_options;
  options.epoch = epoch;
  co_return std::make_shared<rfaas::Session>(engine_, conn.value(), options);
}

sim::Task<std::shared_ptr<rfaas::Session>> Harness::reconnect_client(
    std::size_t client, const LeaseWorkload& workload, std::uint32_t& epoch, Time deadline,
    std::shared_ptr<rfaas::LeaseSet> leases, std::shared_ptr<WorkloadCounters> out) {
  for (unsigned attempt = 0;
       attempt < spec_.client_reconnect_attempts && engine_.now() < deadline; ++attempt) {
    co_await sim::delay(spec_.client_reconnect_backoff);
    // A bumped session epoch fences whatever replies the previous
    // incarnation (or a zombie primary) still has in flight.
    auto session = co_await connect_client_session(client, ++epoch);
    if (session == nullptr) {
      ++out->reconnect_failures;
      continue;
    }
    out->sessions.push_back(session);
    ++out->reconnects;
    if (leases != nullptr) {
      leases->bind(session);
      auto notify = co_await subscribe_lease_events(
          client, static_cast<std::uint32_t>(client + 1), workload, leases);
      if (notify != nullptr) out->sessions.push_back(notify);
      // Leases held across the outage: re-validate against the promoted
      // primary's adopted state (lost ones surface as losses and heal).
      // revalidate() spawns lazily — yield one tick so the revalidation
      // pass snapshots the tracked set before the caller releases.
      leases->revalidate();
      co_await sim::delay(1_us);
    }
    co_return session;
  }
  co_return nullptr;
}

sim::Task<void> Harness::lease_client_loop(std::size_t client, LeaseWorkload workload,
                                           std::uint64_t seed, Time deadline,
                                           std::shared_ptr<WorkloadCounters> out) {
  Rng rng(seed);
  auto uniform = [&rng](std::uint64_t lo, std::uint64_t hi) { return rng.uniform_int(lo, hi); };

  ++out->clients_started;
  std::uint32_t epoch = spec_.session_options.epoch;
  auto session = co_await connect_client_session(client, epoch);
  if (session == nullptr) {
    ++out->client_deaths;
    co_return;
  }
  out->sessions.push_back(session);
  auto leases = make_lease_set(session, workload, out);
  auto notify = co_await subscribe_lease_events(client, static_cast<std::uint32_t>(client + 1),
                                                workload, leases);
  if (notify != nullptr) out->sessions.push_back(notify);

  bool died = false;
  Time blackout_started = 0;  // first failed call of the current outage
  while (engine_.now() < deadline) {
    const auto workers =
        static_cast<std::uint32_t>(uniform(workload.workers_min, workload.workers_max));
    auto attempt = co_await request_lease(session, static_cast<std::uint32_t>(client + 1),
                                          workers, workload, *out);
    if (!attempt.open) {
      // Failover path: redial the manager address (a promoted standby
      // listens on the same device and port) and resume the loop.
      if (blackout_started == 0) blackout_started = engine_.now();
      auto fresh = co_await reconnect_client(client, workload, epoch, deadline, leases, out);
      if (fresh == nullptr) {
        died = true;
        break;
      }
      session = fresh;
      continue;
    }
    if (const auto& grant = attempt.grant) {
      if (blackout_started != 0) {
        out->blackout_ns.push_back(static_cast<double>(engine_.now() - blackout_started));
        blackout_started = 0;
      }
      // Closed loop: hold the lease (auto-renewing/self-healing if
      // configured), release, then think. The release names whatever
      // lease currently stands in for the original grant and is
      // retransmitted until the manager acks it with ReleaseOk.
      if (leases != nullptr) {
        leases->track(grant->lease_id, grant->expires_at, workload.lease_timeout,
                      grant->workers, workload.memory_per_worker);
      }
      co_await sim::delay(uniform(workload.hold_min, workload.hold_max));
      // The manager may have died during the hold. Reconnect BEFORE
      // abandoning the lease so it is still tracked when the fresh
      // session revalidates — that is exactly the "held lease survives
      // a failover" path — and the release then lands on the promoted
      // primary instead of being dropped on the floor.
      if (session->closed() && spec_.client_reconnect_attempts > 0) {
        if (blackout_started == 0) blackout_started = engine_.now();
        auto fresh = co_await reconnect_client(client, workload, epoch, deadline, leases, out);
        if (fresh == nullptr) {
          died = true;
          break;
        }
        session = fresh;
      }
      auto release = release_for(*grant, workload);
      if (leases != nullptr) release.lease_id = leases->abandon(grant->lease_id);
      if (!session->closed()) {
        release.request_id = session->next_request_id();
        (void)co_await session->call(rfaas::encode(release), release.request_id);
      }
    }
    // During an outage the client skips its think time and immediately
    // probes the grant path: the open blackout sample must measure when
    // the platform can grant again, not when this client felt like
    // asking again.
    if (blackout_started == 0) {
      co_await sim::delay(uniform(workload.think_min, workload.think_max));
    }
  }
  if (died) ++out->client_deaths;
  if (leases != nullptr) {
    out->realloc_failures += leases->realloc_failures();
    leases->stop();
  }
  session->stream()->close();
}

sim::Task<void> Harness::tenant_client_loop(std::size_t client, TenantWorkload workload,
                                            std::uint64_t seed, Time deadline,
                                            std::shared_ptr<WorkloadCounters> out) {
  Rng rng(seed);
  ++out->clients_started;
  auto conn = co_await tcp_->connect(client_devices_.at(client)->id(), rm_device_->id(),
                                     rm_->port());
  if (!conn.ok()) {
    ++out->client_deaths;
    co_return;
  }
  auto session = std::make_shared<rfaas::Session>(engine_, conn.value(), spec_.session_options);
  out->sessions.push_back(session);
  auto leases = make_lease_set(session, workload.lease, out);
  auto notify = co_await subscribe_lease_events(client, static_cast<std::uint32_t>(client + 1),
                                                workload.lease, leases);
  if (notify != nullptr) out->sessions.push_back(notify);

  const std::uint32_t tenant_id = workload.tenant_id != 0
                                      ? workload.tenant_id
                                      : static_cast<std::uint32_t>(client + 1);
  bool died = false;
  while (engine_.now() < deadline) {
    const auto workers = static_cast<std::uint32_t>(
        rng.uniform_int(workload.lease.workers_min, workload.lease.workers_max));
    ++out->offered;
    auto attempt = co_await request_lease_with_retries(session, tenant_id, workers, workload,
                                                       rng, deadline, out);
    if (!attempt.open) {
      died = true;
      break;
    }
    if (const auto& grant = attempt.grant) {
      // The hold happens off-loop so it occupies the fleet without
      // throttling this tenant's arrival process.
      if (leases != nullptr) {
        leases->track(grant->lease_id, grant->expires_at, workload.lease.lease_timeout,
                      grant->workers, workload.lease.memory_per_worker);
      }
      spawn(hold_and_release(
          session, leases, release_for(*grant, workload.lease),
          rng.uniform_int(workload.lease.hold_min, workload.lease.hold_max)));
    }
    const double think_s = rng.exponential(std::max(1e-9, workload.arrival_hz));
    co_await sim::delay(static_cast<Duration>(think_s * 1e9));
  }
  if (died) ++out->client_deaths;
  if (leases != nullptr) {
    out->realloc_failures += leases->realloc_failures();
    leases->stop();
  }
  session->stream()->close();
}

namespace {

/// Next inter-arrival gap of an open-loop generator running at aggregate
/// rate `rate_hz`, drawn at virtual instant `now`. Deterministic per Rng
/// stream; each process has the same mean rate (Diurnal: peak rate).
Duration next_arrival_gap(const TenantWorkload& workload, double rate_hz, Rng& rng, Time now) {
  switch (workload.arrivals) {
    case ArrivalProcess::Diurnal: {
      // Thinning against the peak: draw candidate Poisson arrivals at
      // `rate_hz` and keep each with probability lambda(t)/peak, where
      // lambda swings sinusoidally between ~10% and 100% of the peak
      // over `diurnal_period` — a compressed day/night demand curve.
      const double period_s =
          std::max(1e-9, static_cast<double>(workload.diurnal_period) * 1e-9);
      double total_s = 0;
      for (int guard = 0; guard < 1024; ++guard) {
        total_s += rng.exponential(rate_hz);
        const double t_s = static_cast<double>(now) * 1e-9 + total_s;
        const double phase = std::sin(2.0 * M_PI * t_s / period_s);
        const double accept = 0.1 + 0.9 * 0.5 * (1.0 + phase);
        if (rng.bernoulli(accept)) break;
      }
      return static_cast<Duration>(total_s * 1e9);
    }
    case ArrivalProcess::HeavyTail: {
      // Lognormal gaps with mean 1/rate: E[exp(N(mu, sigma))] = 1/rate
      // puts mu at -ln(rate) - sigma^2/2. Large sigma = long quiets and
      // bursts that arrive inside one admission window.
      const double sigma = std::max(0.0, workload.heavy_tail_sigma);
      const double mu = -std::log(rate_hz) - sigma * sigma / 2.0;
      return static_cast<Duration>(rng.lognormal(mu, sigma) * 1e9);
    }
    case ArrivalProcess::Poisson:
    case ArrivalProcess::Closed:
      return static_cast<Duration>(rng.exponential(rate_hz) * 1e9);
  }
  return static_cast<Duration>(rng.exponential(rate_hz) * 1e9);
}

}  // namespace

sim::Task<void> Harness::open_loop_request(std::shared_ptr<rfaas::Session> session,
                                           std::uint32_t client_id, std::uint32_t workers,
                                           TenantWorkload workload, std::uint64_t seed,
                                           Time deadline,
                                           std::shared_ptr<WorkloadCounters> out) {
  Rng rng(seed);
  auto attempt = co_await request_lease_with_retries(session, client_id, workers, workload,
                                                     rng, deadline, out);
  if (!attempt.grant) co_return;
  // Hold and release inline: this coroutine is already detached from
  // the arrival generator, so the hold occupies the fleet without
  // touching the offered-load process.
  co_await sim::delay(
      rng.uniform_int(workload.lease.hold_min, workload.lease.hold_max));
  if (session->closed()) co_return;
  auto release = release_for(*attempt.grant, workload.lease);
  release.request_id = session->next_request_id();
  (void)co_await session->call(rfaas::encode(release), release.request_id);
}

sim::Task<void> Harness::open_loop_tenant_loop(std::size_t client, TenantWorkload workload,
                                               std::uint64_t seed, Time deadline,
                                               std::shared_ptr<WorkloadCounters> out) {
  Rng rng(seed);
  ++out->clients_started;
  auto conn = co_await tcp_->connect(client_devices_.at(client)->id(), rm_device_->id(),
                                     rm_->port());
  if (!conn.ok()) {
    ++out->client_deaths;
    co_return;
  }
  auto session = std::make_shared<rfaas::Session>(engine_, conn.value(), spec_.session_options);
  out->sessions.push_back(session);

  const std::uint32_t tenant_id = workload.tenant_id != 0
                                      ? workload.tenant_id
                                      : static_cast<std::uint32_t>(client + 1);
  // One real connection multiplexes `multiplex` simulated clients: the
  // generator fires their superposed arrival process (rate multiplex *
  // arrival_hz) and each arrival runs as a detached request coroutine,
  // so offered load never waits for service — a million clients on a
  // handful of sessions, which is the regime admission control is for.
  const auto logical = std::max<std::uint64_t>(1, workload.multiplex);
  const double rate_hz =
      std::max(1e-9, workload.arrival_hz * static_cast<double>(logical));
  std::uint64_t arrival_seq = 0;
  bool died = false;
  while (engine_.now() < deadline) {
    co_await sim::delay(next_arrival_gap(workload, rate_hz, rng, engine_.now()));
    if (engine_.now() >= deadline) break;
    if (session->closed()) {
      died = true;
      break;
    }
    ++out->offered;
    const auto workers = static_cast<std::uint32_t>(
        rng.uniform_int(workload.lease.workers_min, workload.lease.workers_max));
    spawn(open_loop_request(session, tenant_id, workers, workload,
                            splitmix64(seed + (++arrival_seq) * kSplitmix64Gamma), deadline,
                            out));
  }
  if (died) ++out->client_deaths;
  // The session stays open past the horizon: detached arrivals may
  // still be holding leases — leaked_leases_after() is the drain gate.
}

sim::Task<void> Harness::sample_utilization(
    std::shared_ptr<std::vector<UtilizationTrace::Sample>> out, Time deadline,
    Duration every) {
  // Aggregate counters work for any shard count (the registry accessor
  // only sees shard 0 of a sharded manager).
  while (engine_.now() < deadline) {
    co_await sim::delay(every);
    const auto total = rm_->total_workers();
    const auto free = rm_->free_workers_total();
    UtilizationTrace::Sample s;
    s.at = engine_.now();
    s.utilization_pct = total == 0 ? 0 : 100.0 * static_cast<double>(total - free) / total;
    out->push_back(s);
  }
}

UtilizationTrace Harness::run_lease_workload(const LeaseWorkload& workload, Duration horizon,
                                             Duration sample_every) {
  const Time deadline = engine_.now() + horizon;
  auto counters = std::make_shared<WorkloadCounters>();
  auto samples = std::make_shared<std::vector<UtilizationTrace::Sample>>();

  for (std::size_t c = 0; c < client_hosts_.size(); ++c) {
    // Decorrelate client streams while keeping the run reproducible.
    const std::uint64_t seed = workload.seed * 0x9e3779b97f4a7c15ull + c;
    spawn(lease_client_loop(c, workload, seed, deadline, counters));
  }
  spawn(sample_utilization(samples, deadline, sample_every));

  engine_.run_until(deadline);
  last_sinks_ = {counters};

  UtilizationTrace trace;
  trace.samples = *samples;
  trace.granted = counters->granted;
  trace.denied = counters->denied;
  trace.renewals = counters->renewals;
  trace.renewal_failures = counters->renewal_failures;
  trace.spurious_expiries = counters->spurious_expiries;
  trace.terminations = counters->terminations;
  trace.reallocations = counters->reallocations;
  trace.realloc_failures = counters->realloc_failures;
  trace.offered = counters->offered;
  trace.overload_denials = counters->overload_denials;
  trace.retries = counters->retries;
  trace.retry_exhausted = counters->retry_exhausted;
  trace.max_retries = counters->max_retries;
  trace.reconnects = counters->reconnects;
  trace.reconnect_failures = counters->reconnect_failures;
  trace.grant_latency = counters->grant_latency;
  trace.reclaim_latency = counters->reclaim_latency;
  trace.blackout_ns = counters->blackout_ns;
  refresh_chaos_counters(trace);
  return trace;
}

void Harness::refresh_chaos_counters(UtilizationTrace& trace) const {
  trace.retransmits = 0;
  trace.call_failures = 0;
  trace.duplicate_replies = 0;
  trace.duplicate_pushes = 0;
  trace.double_grants = 0;
  trace.clients_started = 0;
  trace.client_deaths = 0;
  for (const auto& sink : last_sinks_) {
    trace.clients_started += sink->clients_started;
    trace.client_deaths += sink->client_deaths;
    for (const auto& session : sink->sessions) {
      trace.retransmits += session->retransmits();
      trace.call_failures += session->call_failures();
      trace.duplicate_replies += session->duplicate_replies();
      trace.duplicate_pushes += session->duplicate_pushes();
      trace.double_grants += session->double_grants();
    }
  }
}

void Harness::partition_client(std::size_t i, Time from, Time until) {
  if (faults_ == nullptr || i >= client_devices_.size()) return;
  faults_->add_partition(client_devices_[i]->id(), rm_device_->id(), from, until);
}

std::size_t Harness::leaked_leases_after(Duration grace) {
  run_for(grace);
  const std::size_t leaked = rm_->active_leases();
  if (leaked != 0 && spec_.assert_drained) {
    log::error("harness", "lease table not empty after drain: ", leaked,
               " leases leaked (chaos seed ",
               faults_ != nullptr ? faults_->seed() : 0, ")");
    std::abort();
  }
  return leaked;
}

sim::Task<void> Harness::eviction_storm_loop(Duration period, unsigned leases_per_tick,
                                             Time deadline, std::uint64_t seed,
                                             std::shared_ptr<StormStats> out) {
  Rng rng(seed);
  while (engine_.now() < deadline) {
    co_await sim::delay(period);
    if (engine_.now() >= deadline) break;
    auto ids = rm_->core().active_lease_ids();
    if (ids.empty()) continue;
    std::vector<std::uint64_t> victims;
    for (unsigned i = 0; i < leases_per_tick; ++i) {
      victims.push_back(ids[rng.uniform_int(0, ids.size() - 1)]);
    }
    out->requested += victims.size();
    out->evicted += rm_->evict_leases(victims, rfaas::TerminationReason::QuotaPressure);
  }
}

std::shared_ptr<Harness::StormStats> Harness::start_eviction_storm(Duration period,
                                                                   unsigned leases_per_tick,
                                                                   Duration duration,
                                                                   std::uint64_t seed) {
  auto stats = std::make_shared<StormStats>();
  spawn(eviction_storm_loop(period, leases_per_tick, engine_.now() + duration, seed, stats));
  return stats;
}

std::optional<std::size_t> Harness::drain_executor(std::size_t index) {
  if (index >= executor_devices_.size()) return std::nullopt;
  return rm_->drain_executor_on_device(executor_devices_[index]->id());
}

std::shared_ptr<rfaas::StandbyReplica> Harness::attach_standby() {
  auto standby = std::make_shared<rfaas::StandbyReplica>(spec_.config);
  if (auto attached = rm_->attach_standby(standby); !attached.ok()) {
    log::error("harness", "standby attach failed: ", attached.error().message);
    return nullptr;
  }
  standbys_.push_back(standby);
  return standby;
}

void Harness::kill_manager(bool zombie) {
  if (zombie) {
    rm_->isolate();
  } else {
    rm_->crash();
  }
}

rfaas::ResourceManager& Harness::promote_standby(std::size_t index) {
  auto replica = standbys_.at(index);
  standbys_.erase(standbys_.begin() + static_cast<std::ptrdiff_t>(index));
  const std::uint32_t epoch = rm_->manager_epoch() + 1;
  retired_rms_.push_back(std::move(rm_));
  rm_ = std::make_unique<rfaas::ResourceManager>(engine_, *fabric_, *tcp_, *rm_host_,
                                                 *rm_device_, spec_.config);
  if (auto adopted = rm_->adopt(replica->export_state(), epoch); !adopted.ok()) {
    log::error("harness", "standby promotion failed: ", adopted.error().message);
    std::abort();
  }
  rm_->start();
  // Surviving standbys chase the new primary's journal from a fresh
  // snapshot, so a second failover stays possible.
  for (auto& standby : standbys_) {
    if (auto attached = rm_->attach_standby(standby); !attached.ok()) {
      log::error("harness", "standby re-attach failed: ", attached.error().message);
    }
  }
  return *rm_;
}

namespace {

sim::Task<void> failover_script(Harness& h, Duration kill_after, Duration promote_after,
                                bool zombie) {
  co_await sim::delay(kill_after);
  h.kill_manager(zombie);
  co_await sim::delay(promote_after);
  h.promote_standby();
}

}  // namespace

void Harness::schedule_failover(Duration kill_after, Duration promote_after, bool zombie) {
  spawn(failover_script(*this, kill_after, promote_after, zombie));
}

MultiTenantTrace Harness::run_multi_tenant_workload(const std::vector<TenantWorkload>& tenants,
                                                    Duration horizon, Duration sample_every) {
  const Time deadline = engine_.now() + horizon;
  auto samples = std::make_shared<std::vector<UtilizationTrace::Sample>>();
  std::vector<std::shared_ptr<WorkloadCounters>> sinks;

  std::size_t next_client = 0;
  for (std::size_t t = 0; t < tenants.size(); ++t) {
    const auto& tenant = tenants[t];
    auto sink = std::make_shared<WorkloadCounters>();
    sinks.push_back(sink);
    for (unsigned c = 0; c < tenant.clients; ++c) {
      const std::size_t client = next_client++ % client_hosts_.size();
      // WFQ weights key on the identity the clients will present: the
      // shared tenant_id when set, else each per-client id.
      if (rm_->admission().enabled()) {
        rm_->admission().set_weight(tenant.tenant_id != 0
                                        ? tenant.tenant_id
                                        : static_cast<std::uint32_t>(client + 1),
                                    tenant.weight);
      }
      const std::uint64_t seed =
          tenant.lease.seed * 0x9e3779b97f4a7c15ull + (t << 20) + c;
      if (tenant.arrivals == ArrivalProcess::Closed) {
        spawn(tenant_client_loop(client, tenant, seed, deadline, sink));
      } else {
        spawn(open_loop_tenant_loop(client, tenant, seed, deadline, sink));
      }
    }
  }
  spawn(sample_utilization(samples, deadline, sample_every));

  engine_.run_until(deadline);
  last_sinks_ = sinks;

  MultiTenantTrace trace;
  trace.aggregate.samples = *samples;
  for (std::size_t t = 0; t < tenants.size(); ++t) {
    TenantTrace tenant;
    tenant.name = tenants[t].name;
    tenant.weight = tenants[t].weight;
    tenant.offered = sinks[t]->offered;
    tenant.granted = sinks[t]->granted;
    tenant.denied = sinks[t]->denied;
    tenant.overload_denials = sinks[t]->overload_denials;
    tenant.retries = sinks[t]->retries;
    tenant.retry_exhausted = sinks[t]->retry_exhausted;
    tenant.max_retries = sinks[t]->max_retries;
    tenant.grant_latency = sinks[t]->grant_latency;
    trace.aggregate.offered += tenant.offered;
    trace.aggregate.overload_denials += tenant.overload_denials;
    trace.aggregate.retries += tenant.retries;
    trace.aggregate.retry_exhausted += tenant.retry_exhausted;
    trace.aggregate.max_retries = std::max(trace.aggregate.max_retries, tenant.max_retries);
    trace.aggregate.granted += tenant.granted;
    trace.aggregate.denied += tenant.denied;
    trace.aggregate.renewals += sinks[t]->renewals;
    trace.aggregate.renewal_failures += sinks[t]->renewal_failures;
    trace.aggregate.spurious_expiries += sinks[t]->spurious_expiries;
    trace.aggregate.terminations += sinks[t]->terminations;
    trace.aggregate.reallocations += sinks[t]->reallocations;
    trace.aggregate.realloc_failures += sinks[t]->realloc_failures;
    trace.aggregate.reconnects += sinks[t]->reconnects;
    trace.aggregate.reconnect_failures += sinks[t]->reconnect_failures;
    trace.aggregate.reclaim_latency.insert(trace.aggregate.reclaim_latency.end(),
                                           sinks[t]->reclaim_latency.begin(),
                                           sinks[t]->reclaim_latency.end());
    trace.aggregate.grant_latency.insert(trace.aggregate.grant_latency.end(),
                                         tenant.grant_latency.begin(),
                                         tenant.grant_latency.end());
    trace.tenants.push_back(std::move(tenant));
  }
  refresh_chaos_counters(trace.aggregate);
  return trace;
}

}  // namespace rfs::cluster

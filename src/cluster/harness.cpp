#include "cluster/harness.hpp"

#include "common/log.hpp"

namespace rfs::cluster {

double UtilizationTrace::mean_utilization() const {
  if (samples.empty()) return 0;
  double sum = 0;
  for (const auto& s : samples) sum += s.utilization_pct;
  return sum / static_cast<double>(samples.size());
}

double UtilizationTrace::peak_utilization() const {
  double peak = 0;
  for (const auto& s : samples) peak = std::max(peak, s.utilization_pct);
  return peak;
}

Harness::Harness(ScenarioSpec spec) : spec_(std::move(spec)) {
  engine_.make_current();
  fabric_ = std::make_unique<fabric::Fabric>(engine_, spec_.config.network);
  tcp_ = std::make_unique<net::TcpNetwork>(engine_, fabric_->net());

  const unsigned racks = std::max(1u, spec_.racks);
  unsigned host_counter = 0;  // round-robin rack assignment across all hosts

  rm_host_ = std::make_unique<sim::Host>("rm", 4, 16ull << 30);
  rm_device_ = &fabric_->create_device("rm-nic", rm_host_.get());
  rm_device_->set_locality(host_counter++ % racks);
  rm_ = std::make_unique<rfaas::ResourceManager>(engine_, *fabric_, *tcp_, *rm_host_,
                                                 *rm_device_, spec_.config);

  unsigned executor_index = 0;
  for (const auto& group : spec_.executors) {
    for (unsigned i = 0; i < group.count; ++i, ++executor_index) {
      executor_hosts_.push_back(std::make_unique<sim::Host>(
          "spot" + std::to_string(executor_index), group.cores, group.memory_bytes));
      auto& dev = fabric_->create_device("spot-nic" + std::to_string(executor_index),
                                         executor_hosts_.back().get());
      dev.set_locality(host_counter++ % racks);
      executor_devices_.push_back(&dev);
      executors_.push_back(std::make_unique<rfaas::ExecutorManager>(
          engine_, *fabric_, *tcp_, *executor_hosts_.back(), dev, spec_.config, registry_));
    }
  }

  for (unsigned i = 0; i < spec_.client_hosts; ++i) {
    client_hosts_.push_back(std::make_unique<sim::Host>(
        "client" + std::to_string(i), spec_.cores_per_client, spec_.memory_per_client));
    auto& dev = fabric_->create_device("client-nic" + std::to_string(i),
                                       client_hosts_.back().get());
    dev.set_locality(host_counter++ % racks);
    client_devices_.push_back(&dev);
  }
}

Harness::~Harness() = default;

void Harness::start() {
  rm_->start();
  for (auto& e : executors_) {
    e->start(rm_device_->id(), rm_->port());
  }
  // Let registration and billing connections settle before clients move.
  engine_.run_until(engine_.now() + 5_ms);
}

std::unique_ptr<rfaas::Invoker> Harness::make_invoker(std::size_t client_host,
                                                      std::uint32_t client_id) {
  return std::make_unique<rfaas::Invoker>(engine_, *fabric_, *tcp_, spec_.config,
                                          *client_devices_.at(client_host), rm_device_->id(),
                                          rm_->port(), client_id);
}

void Harness::run(Time until) {
  if (until == 0) {
    engine_.run();
  } else {
    engine_.run_until(until);
  }
}

sim::Task<void> Harness::lease_client_loop(std::size_t client, LeaseWorkload workload,
                                           std::uint64_t seed, Time deadline,
                                           std::shared_ptr<WorkloadCounters> out) {
  Rng rng(seed);
  auto uniform = [&rng](std::uint64_t lo, std::uint64_t hi) { return rng.uniform_int(lo, hi); };

  auto conn = co_await tcp_->connect(client_devices_.at(client)->id(), rm_device_->id(),
                                     rm_->port());
  if (!conn.ok()) co_return;
  auto stream = conn.value();

  while (engine_.now() < deadline) {
    rfaas::LeaseRequestMsg req;
    req.client_id = static_cast<std::uint32_t>(client + 1);
    req.workers =
        static_cast<std::uint32_t>(uniform(workload.workers_min, workload.workers_max));
    req.memory_bytes = workload.memory_per_worker;
    req.timeout = workload.lease_timeout;
    stream->send(rfaas::encode(req));
    auto raw = co_await stream->recv();
    if (!raw.has_value()) break;

    auto grant = rfaas::decode_lease_grant(*raw);
    if (grant.ok()) {
      ++out->granted;
      co_await sim::delay(uniform(workload.hold_min, workload.hold_max));
      rfaas::ReleaseResourcesMsg rel;
      rel.lease_id = grant.value().lease_id;
      rel.workers = grant.value().workers;
      rel.memory_bytes = req.memory_bytes * grant.value().workers;
      stream->send(rfaas::encode(rel));
    } else {
      ++out->denied;
    }
    co_await sim::delay(uniform(workload.think_min, workload.think_max));
  }
  stream->close();
}

UtilizationTrace Harness::run_lease_workload(const LeaseWorkload& workload, Duration horizon,
                                             Duration sample_every) {
  const Time deadline = engine_.now() + horizon;
  auto counters = std::make_shared<WorkloadCounters>();
  auto samples = std::make_shared<std::vector<UtilizationTrace::Sample>>();

  for (std::size_t c = 0; c < client_hosts_.size(); ++c) {
    // Decorrelate client streams while keeping the run reproducible.
    const std::uint64_t seed = workload.seed * 0x9e3779b97f4a7c15ull + c;
    spawn(lease_client_loop(c, workload, seed, deadline, counters));
  }

  auto sampler = [](Harness* self, std::shared_ptr<std::vector<UtilizationTrace::Sample>> out,
                    Time end, Duration every) -> sim::Task<void> {
    while (self->engine_.now() < end) {
      co_await sim::delay(every);
      const auto total = self->rm_->registry().total_workers();
      const auto free = self->rm_->registry().free_workers_total();
      UtilizationTrace::Sample s;
      s.at = self->engine_.now();
      s.utilization_pct =
          total == 0 ? 0 : 100.0 * static_cast<double>(total - free) / total;
      out->push_back(s);
    }
  };
  spawn(sampler(this, samples, deadline, sample_every));

  engine_.run_until(deadline);

  UtilizationTrace trace;
  trace.samples = *samples;
  trace.granted = counters->granted;
  trace.denied = counters->denied;
  return trace;
}

}  // namespace rfs::cluster

#include "rfaas/resource_manager.hpp"

#include "common/log.hpp"
#include "rdmalib/connection.hpp"

namespace rfs::rfaas {

ResourceManager::ResourceManager(sim::Engine& engine, fabric::Fabric& fabric,
                                 net::TcpNetwork& tcp, sim::Host& host, fabric::Device& device,
                                 Config config)
    : engine_(engine),
      fabric_(fabric),
      tcp_(tcp),
      host_(host),
      device_(device),
      config_(std::move(config)),
      pd_(device.alloc_pd()),
      billing_(*pd_) {}

void ResourceManager::start() {
  alive_ = true;
  sim::spawn(engine_, run_server());
  sim::spawn(engine_, run_billing_accept());
  sim::spawn(engine_, heartbeat_loop());
}

void ResourceManager::stop() {
  alive_ = false;
  tcp_.listen(device_.id(), port_).shutdown();
  fabric_.stop_listening(device_, rdma_port_);
}

std::size_t ResourceManager::alive_executors() const {
  std::size_t n = 0;
  for (const auto& e : executors_) {
    if (e.alive) ++n;
  }
  return n;
}

std::uint32_t ResourceManager::free_workers_total() const {
  std::uint32_t n = 0;
  for (const auto& e : executors_) {
    if (e.alive) n += e.free_workers;
  }
  return n;
}

sim::Task<void> ResourceManager::run_server() {
  auto& listener = tcp_.listen(device_.id(), port_);
  while (alive_) {
    auto stream = co_await listener.accept();
    if (stream == nullptr) break;
    sim::spawn(engine_, handle_stream(std::move(stream)));
  }
}

sim::Task<void> ResourceManager::run_billing_accept() {
  auto& listener = fabric_.listen(device_, rdma_port_);
  while (alive_) {
    auto req = co_await listener.accept();
    if (req == nullptr) break;
    // Billing updates are one-sided atomics: the manager only needs to
    // keep the connection open; no polling is required.
    billing_conns_.push_back(rdmalib::Connection::accept(*req, device_, pd_));
  }
}

sim::Task<void> ResourceManager::handle_stream(std::shared_ptr<net::TcpStream> stream) {
  std::size_t executor_index = SIZE_MAX;  // set once this stream registers
  while (alive_) {
    auto raw = co_await stream->recv();
    if (!raw.has_value()) {
      // Stream closed. A registered executor disconnecting means it died
      // (or was stopped); reclaim immediately — faster than waiting for
      // missed heartbeats.
      if (executor_index != SIZE_MAX && executors_[executor_index].alive) {
        mark_executor_dead(executor_index);
      }
      break;
    }
    auto type = peek_type(*raw);
    if (!type) continue;
    switch (type.value()) {
      case MsgType::RegisterExecutor: {
        auto msg = decode_register(*raw);
        if (!msg) break;
        ExecutorEntry entry;
        entry.info = msg.value();
        entry.free_workers = static_cast<std::uint32_t>(
            msg.value().cores * std::max(1.0, config_.lease_oversubscription));
        entry.free_memory = msg.value().memory_bytes;
        entry.alive = true;
        entry.last_ack = engine_.now();
        entry.stream = stream;
        executor_index = executors_.size();
        executors_.push_back(std::move(entry));
        RegisterOkMsg ok;
        ok.rm_rdma_port = rdma_port_;
        auto slot0 = billing_.tenant_slot(0);
        ok.billing_addr = slot0.addr;
        ok.billing_rkey = slot0.rkey;
        stream->send(encode(ok));
        log::info("rm", "registered executor on device ", msg.value().device, " with ",
                  msg.value().cores, " cores");
        break;
      }
      case MsgType::LeaseRequest: {
        auto msg = decode_lease_request(*raw);
        if (!msg) {
          stream->send(encode_lease_error(msg.error().message));
          break;
        }
        co_await sim::delay(config_.lease_processing);
        stream->send(grant_lease(msg.value()));
        break;
      }
      case MsgType::ReleaseResources: {
        auto msg = decode_release(*raw);
        if (msg) reclaim_lease(msg.value().lease_id);
        break;
      }
      case MsgType::HeartbeatAck: {
        if (executor_index != SIZE_MAX) executors_[executor_index].last_ack = engine_.now();
        break;
      }
      default:
        break;
    }
  }
}

Bytes ResourceManager::grant_lease(const LeaseRequestMsg& req) {
  if (executors_.empty()) return encode_lease_error("no executors registered");
  // Round-robin scan for an executor with spare capacity; partial grants
  // are allowed — the client library aggregates leases until it reaches
  // the requested parallelism (Sec. III-D).
  const std::size_t n = executors_.size();
  for (std::size_t probe = 0; probe < n; ++probe) {
    std::size_t idx = (rr_next_ + probe) % n;
    auto& e = executors_[idx];
    if (!e.alive || e.free_workers == 0) continue;
    const std::uint32_t workers = std::min(e.free_workers, req.workers);
    const std::uint64_t memory = req.memory_bytes * workers;
    if (memory > e.free_memory) continue;

    e.free_workers -= workers;
    e.free_memory -= memory;
    rr_next_ = (idx + 1) % n;

    Lease lease;
    lease.id = next_lease_id_++;
    lease.client_id = req.client_id;
    lease.executor_index = idx;
    lease.workers = workers;
    lease.memory_bytes = memory;
    lease.expires_at = engine_.now() + req.timeout;
    leases_[lease.id] = lease;
    sim::spawn(engine_, lease_expiry(lease.id, lease.expires_at));

    LeaseGrantMsg grant;
    grant.lease_id = lease.id;
    grant.device = e.info.device;
    grant.alloc_port = e.info.alloc_port;
    grant.rdma_port = e.info.rdma_port;
    grant.workers = workers;
    grant.expires_at = lease.expires_at;
    return encode(grant);
  }
  return encode_lease_error("no executor with free capacity");
}

void ResourceManager::reclaim_lease(std::uint64_t lease_id) {
  auto it = leases_.find(lease_id);
  if (it == leases_.end()) return;
  const Lease& lease = it->second;
  if (lease.executor_index < executors_.size()) {
    auto& e = executors_[lease.executor_index];
    e.free_workers += lease.workers;
    e.free_memory += lease.memory_bytes;
  }
  leases_.erase(it);
}

sim::Task<void> ResourceManager::lease_expiry(std::uint64_t lease_id, Time expires_at) {
  co_await sim::delay_until(expires_at);
  // "Leases are time-limited"; if still present, reclaim the capacity.
  // The executor manager enforces the expiry on its side as well.
  reclaim_lease(lease_id);
}

void ResourceManager::mark_executor_dead(std::size_t index) {
  auto& e = executors_[index];
  if (!e.alive) return;
  e.alive = false;
  log::warn("rm", "executor on device ", e.info.device, " is dead, reclaiming leases");
  // Fast resource reclamation: drop all its leases.
  std::vector<std::uint64_t> to_drop;
  for (const auto& [id, lease] : leases_) {
    if (lease.executor_index == index) to_drop.push_back(id);
  }
  for (auto id : to_drop) leases_.erase(id);
  e.free_workers = 0;
  e.free_memory = 0;
}

sim::Task<void> ResourceManager::heartbeat_loop() {
  // "Managers use heartbeats to verify the status of spot executors"
  // (Sec. III-A).
  while (alive_) {
    co_await sim::delay(config_.heartbeat_period);
    if (!alive_) break;
    const Time now = engine_.now();
    for (std::size_t i = 0; i < executors_.size(); ++i) {
      auto& e = executors_[i];
      if (!e.alive) continue;
      if (now - e.last_ack > 5 * config_.heartbeat_period / 2) {
        mark_executor_dead(i);
        continue;
      }
      if (e.stream != nullptr && !e.stream->closed()) {
        e.stream->send(encode(MsgType::Heartbeat));
      }
    }
  }
}

}  // namespace rfs::rfaas

#include "rfaas/resource_manager.hpp"

#include <deque>
#include <unordered_map>

#include "common/log.hpp"
#include "rdmalib/connection.hpp"

namespace rfs::rfaas {

ResourceManager::ResourceManager(sim::Engine& engine, fabric::Fabric& fabric,
                                 net::TcpNetwork& tcp, sim::Host& host, fabric::Device& device,
                                 Config config)
    : engine_(engine),
      fabric_(fabric),
      tcp_(tcp),
      host_(host),
      device_(device),
      config_(std::move(config)),
      pd_(device.alloc_pd()),
      billing_(*pd_),
      core_(config_),
      admission_(config_.admission) {
  grant_gates_.reserve(core_.shard_count());
  for (std::uint32_t s = 0; s < core_.shard_count(); ++s) {
    grant_gates_.push_back(std::make_unique<sim::Mutex>());
  }
}

void ResourceManager::start() {
  alive_ = true;
  sim::spawn(engine_, run_server());
  sim::spawn(engine_, run_billing_accept());
  sim::spawn(engine_, heartbeat_loop());
  if (config_.rebalance_period > 0) sim::spawn(engine_, rebalance_loop());
}

void ResourceManager::stop() {
  alive_ = false;
  tcp_.listen(device_.id(), port_).shutdown();
  fabric_.stop_listening(device_, rdma_port_);
}

void ResourceManager::crash() {
  stop();
  // A dead process drops every socket at once: sever the established
  // control and notification streams so clients and executors observe
  // the failure now instead of at the next heartbeat.
  for (auto& weak : server_streams_) {
    if (auto stream = weak.lock(); stream != nullptr && !stream->closed()) stream->close();
  }
  server_streams_.clear();
  log::warn("rm", "manager crashed (epoch ", manager_epoch_, ")");
}

void ResourceManager::isolate() {
  // Zombie primary: unreachable for new connections, still convinced it
  // owns the fleet on its established streams. Its late grants and
  // replies must be fenced by session/registration epochs downstream.
  tcp_.listen(device_.id(), port_).shutdown();
  fabric_.stop_listening(device_, rdma_port_);
  log::warn("rm", "manager isolated (zombie, epoch ", manager_epoch_, ")");
}

Status ResourceManager::adopt(const ShardedResourceManager::ManagerState& state,
                              std::uint32_t epoch) {
  if (alive_) return Error::make(61, "rm: adopt() must run before start()");
  if (auto restored = core_.restore_state(state, engine_.now()); !restored.ok()) return restored;
  manager_epoch_ = epoch;
  restored_ = true;
  promoted_at_ = engine_.now();
  // Rebuild the per-device registration fence from the restored executor
  // table: the old primary's sessions carry older epochs and stay fenced;
  // surviving executors re-register with a bumped epoch and re-attach.
  for (std::uint32_t s = 0; s < state.shards.size(); ++s) {
    const auto& shard = state.shards[s];
    for (std::size_t i = 0; i < shard.executors.size(); ++i) {
      const auto& ex = shard.executors[i];
      if (!ex.alive || ex.info.epoch == 0) continue;
      executor_epochs_[ex.info.device] =
          RegistrationEpoch{ex.info.epoch, ShardedResourceManager::make_id(s, i)};
    }
  }
  log::info("rm", "promoted standby state: epoch ", epoch, ", ", core_.active_leases(),
            " leases, ", core_.alive_count(), " executors");
  return Status::success();
}

Status ResourceManager::attach_standby(std::shared_ptr<StandbyReplica> standby) {
  auto* journal = core_.journal();
  if (journal == nullptr) {
    return Error::make(60, "rm: standby needs Config::journal_enabled");
  }
  const std::uint64_t upto = journal->last_seq();
  const auto state = core_.export_state();
  SnapshotOfferMsg offer;
  offer.manager_epoch = manager_epoch_;
  offer.upto_seq = upto;
  offer.digest = state.digest();
  for (const auto& shard : state.shards) offer.lease_count += shard.leases.size();
  if (auto installed = standby->install_snapshot(state, offer, engine_.now());
      !installed.ok()) {
    return installed;
  }
  // Live replication: every appended record crosses the wire encoding on
  // its way into the replica, so the stream the tests exercise is the
  // byte-exact stream a remote standby would consume.
  journal->add_sink([this, standby](const JournalRecordMsg& record) {
    if (auto applied = standby->apply_wire(encode(record)); !applied.ok()) {
      ++replication_errors_;
      log::warn("rm", "standby diverged at seq ", record.seq, ": ", applied.error().message);
    }
  });
  standbys_.push_back(std::move(standby));
  return Status::success();
}

void ResourceManager::maybe_snapshot() {
  auto* journal = core_.journal();
  if (journal == nullptr || config_.journal_snapshot_every == 0) return;
  if (journal->size() <= config_.journal_snapshot_every) return;
  const std::uint64_t upto = journal->last_seq();
  const auto state = core_.export_state();
  SnapshotOfferMsg offer;
  offer.manager_epoch = manager_epoch_;
  offer.upto_seq = upto;
  offer.digest = state.digest();
  for (const auto& shard : state.shards) offer.lease_count += shard.leases.size();
  for (const auto& standby : standbys_) {
    if (auto installed = standby->install_snapshot(state, offer, engine_.now());
        !installed.ok()) {
      ++replication_errors_;
      log::warn("rm", "standby refused snapshot at seq ", upto, ": ",
                installed.error().message);
    }
  }
  journal->truncate_before(upto + 1);
  ++snapshots_taken_;
}

sim::Task<void> ResourceManager::run_server() {
  auto& listener = tcp_.listen(device_.id(), port_);
  while (alive_) {
    auto stream = co_await listener.accept();
    if (stream == nullptr) break;
    sim::spawn(engine_, handle_stream(std::move(stream)));
  }
}

sim::Task<void> ResourceManager::run_billing_accept() {
  auto& listener = fabric_.listen(device_, rdma_port_);
  while (alive_) {
    auto req = co_await listener.accept();
    if (req == nullptr) break;
    // Billing updates are one-sided atomics: the manager only needs to
    // keep the connection open; no polling is required.
    billing_conns_.push_back(rdmalib::Connection::accept(*req, device_, pd_));
  }
}

sim::Task<void> ResourceManager::handle_stream(std::shared_ptr<net::TcpStream> stream) {
  server_streams_.push_back(stream);  // crash() severs these
  // Per-stream duplicate-request table: request id -> the exact reply
  // bytes already sent. A retransmission (same nonzero id) replays the
  // cached reply instead of re-running the decision — the idempotence
  // that keeps a duplicated LeaseRequest from granting twice. Bounded
  // FIFO; safe because each session keeps at most one call outstanding,
  // so a wandering duplicate can never lag the window by 128 exchanges.
  // Lives on the coroutine frame: messages of one stream are processed
  // strictly in order, and the table dies with the connection.
  constexpr std::size_t kDedupWindow = 128;
  std::unordered_map<std::uint64_t, Bytes> dedup;
  std::deque<std::uint64_t> dedup_fifo;
  auto replay_duplicate = [&](std::uint64_t id) -> bool {
    if (id == 0) return false;  // legacy senders never dedup
    auto it = dedup.find(id);
    if (it == dedup.end()) return false;
    ++dedup_hits_;
    stream->send(Bytes(it->second));
    return true;
  };
  auto reply_cached = [&](std::uint64_t id, Bytes reply) {
    if (id != 0) {
      dedup[id] = reply;
      dedup_fifo.push_back(id);
      if (dedup_fifo.size() > kDedupWindow) {
        dedup.erase(dedup_fifo.front());
        dedup_fifo.pop_front();
      }
    }
    stream->send(std::move(reply));
  };
  while (alive_) {
    auto raw = co_await stream->recv();
    if (!raw.has_value()) {
      // A crashed manager executes nothing: its own death severed these
      // streams, and reading that as "every executor died" would journal
      // a fleet-wide MarkDead to the standby it is about to fail over
      // to. Only a live (or zombie) manager reclaims on disconnect.
      if (!alive_) break;
      // Stream closed. A registered executor disconnecting means it died
      // (or was stopped); reclaim immediately — faster than waiting for
      // missed heartbeats. The id is resolved through executor_ids_, not
      // a value captured at registration: rebalance migrations re-tag it.
      if (auto it = executor_ids_.find(stream.get()); it != executor_ids_.end()) {
        mark_executor_dead(it->second);
        executor_ids_.erase(it);
      }
      // A vanished subscriber stops receiving termination pushes.
      for (auto it = subscribers_.begin(); it != subscribers_.end();) {
        it = it->second == stream ? subscribers_.erase(it) : std::next(it);
      }
      push_seqs_.erase(stream.get());
      std::erase_if(server_streams_, [](const auto& weak) { return weak.expired(); });
      break;
    }
    auto type = peek_type(*raw);
    if (!type) continue;
    switch (type.value()) {
      case MsgType::RegisterExecutor: {
        auto msg = decode_register(*raw);
        if (!msg) break;
        if (replay_duplicate(msg.value().request_id)) break;
        if (msg.value().epoch != 0) {
          // Epoch fencing: only the newest registration session may own a
          // device. An older epoch is a retransmission from a session the
          // executor already abandoned; admitting it would double-count
          // the device's capacity. A newer epoch supersedes — the stale
          // registration is marked dead first, reclaiming its leases.
          auto it = executor_epochs_.find(msg.value().device);
          if (it != executor_epochs_.end()) {
            if (msg.value().epoch <= it->second.epoch) {
              ++fenced_registrations_;
              reply_cached(msg.value().request_id,
                           encode_lease_error("stale registration epoch",
                                              msg.value().request_id));
              break;
            }
            // Failover re-attachment: on a promoted manager the device's
            // registration (and its leases) survived in the restored
            // state — the executor process itself never died, only its
            // session to the old primary. Re-point the registration at
            // the new stream in place instead of reclaiming its leases.
            if (restored_ && core_.reattach_executor(it->second.executor_id, stream,
                                                     msg.value().epoch, engine_.now())) {
              executor_ids_[stream.get()] = it->second.executor_id;
              it->second.epoch = msg.value().epoch;
              ++reattached_executors_;
              reply_cached(msg.value().request_id, make_register_ok(msg.value().request_id));
              log::info("rm", "re-attached executor on device ", msg.value().device,
                        " after failover (epoch ", msg.value().epoch, ")");
              break;
            }
            mark_executor_dead(it->second.executor_id);
          }
        }
        ExecutorEntry entry;
        entry.info = msg.value();
        entry.total_workers = static_cast<std::uint32_t>(
            msg.value().cores * std::max(1.0, config_.lease_oversubscription));
        entry.free_workers = entry.total_workers;
        entry.free_memory = msg.value().memory_bytes;
        entry.alive = true;
        entry.last_ack = engine_.now();
        entry.locality = fabric_.locality(msg.value().device);
        entry.stream = stream;
        const std::uint64_t executor_id = core_.add_executor(std::move(entry));
        executor_ids_[stream.get()] = executor_id;
        // A fresh registration is a fresh process: its gray-failure
        // history (breaker-trip count) does not carry over.
        health_trip_counts_.erase(msg.value().device);
        if (msg.value().epoch != 0) {
          executor_epochs_[msg.value().device] =
              RegistrationEpoch{msg.value().epoch, executor_id};
        }
        reply_cached(msg.value().request_id, make_register_ok(msg.value().request_id));
        log::info("rm", "registered executor on device ", msg.value().device, " with ",
                  msg.value().cores, " cores on shard ",
                  ShardedResourceManager::id_shard(executor_id));
        break;
      }
      case MsgType::LeaseRequest: {
        auto msg = decode_lease_request(*raw);
        if (!msg) {
          stream->send(encode_lease_error(msg.error().message));
          break;
        }
        if (replay_duplicate(msg.value().request_id)) break;
        // Early shed: the admission verdict costs one mutex and a few
        // arithmetic updates — no shard gate, no placement scan, no
        // quota-eviction pass. Under overload this is the only work a
        // shed request ever causes the manager, which is what keeps
        // goodput at capacity instead of collapsing with offered load.
        if (admission_.enabled()) {
          auto verdict = admission_.admit(msg.value().client_id, engine_.now());
          if (!verdict.admitted) {
            LeaseDeniedMsg denied;
            denied.reason = static_cast<std::uint8_t>(DenialReason::Overload);
            denied.retry_after = verdict.retry_after;
            denied.request_id = msg.value().request_id;
            reply_cached(msg.value().request_id, encode(denied));
            break;
          }
        }
        // Route first (lock-free, locality-aware under LocalityFirst),
        // then serialize on the routed shard's gate: a single-shard
        // manager decides strictly one lease at a time, an N-shard
        // manager N at a time. The decision delay is paid inside the
        // critical section — that is the whole point. A stolen placement
        // ran a second scan over other shards, so it bills a second
        // decision delay (conservative: the victim shard's own gate
        // queue is not consumed).
        const std::uint32_t locality = fabric_.locality(stream->remote_device());
        const std::uint32_t shard = core_.preferred_shard_for(locality);
        auto& gate = *grant_gates_[shard];
        co_await gate.lock();
        co_await sim::delay(config_.lease_processing);
        bool stolen = false;
        Bytes reply = grant_lease(msg.value(), locality, shard, stolen);
        if (config_.tenant_quota_workers > 0 && core_.size() > 0 &&
            msg.value().workers > 0) {
          // Quota pressure: a fleet-wide denial evicts leases of tenants
          // holding more than their worker quota (fast reclamation, the
          // capacity comes back instantly) and retries the placement once
          // — billing a second decision scan.
          auto type = peek_type(reply);
          if (type.ok() && type.value() == MsgType::LeaseError) {
            auto evicted = core_.reclaim_quota(
                msg.value().client_id, config_.tenant_quota_workers, msg.value().workers);
            if (!evicted.empty()) {
              notify_evictions(evicted, TerminationReason::QuotaPressure);
              co_await sim::delay(config_.lease_processing);
              reply = grant_lease(msg.value(), locality, shard, stolen);
            }
          }
        }
        if (stolen) co_await sim::delay(config_.lease_processing);
        gate.unlock();
        reply_cached(msg.value().request_id, std::move(reply));
        break;
      }
      case MsgType::ExtendLease: {
        auto msg = decode_extend_lease(*raw);
        if (!msg) break;
        if (replay_duplicate(msg.value().request_id)) break;
        const std::uint32_t shard = ShardedResourceManager::id_shard(msg.value().lease_id);
        if (shard >= core_.shard_count()) {
          reply_cached(msg.value().request_id,
                       encode_lease_error("unknown lease", msg.value().request_id));
          break;
        }
        auto& gate = *grant_gates_[shard];
        co_await gate.lock();
        co_await sim::delay(config_.lease_processing);
        const Time expires_at = engine_.now() + msg.value().extension;
        const auto renewed = core_.renew(msg.value().lease_id, expires_at);
        gate.unlock();
        if (renewed) {
          ExtendOkMsg ok;
          ok.lease_id = msg.value().lease_id;
          ok.expires_at = expires_at;
          ok.request_id = msg.value().request_id;
          reply_cached(msg.value().request_id, encode(ok));
          // Push the new deadline to the hosting executor so the sandbox
          // does not self-destruct at the original expiry. Renewal thus
          // stays a single client<->manager round trip.
          if (renewed->executor_stream != nullptr && !renewed->executor_stream->closed()) {
            LeaseRenewedMsg push;
            push.lease_id = msg.value().lease_id;
            push.expires_at = expires_at;
            renewed->executor_stream->send(encode(push));
          }
        } else {
          reply_cached(msg.value().request_id,
                       encode_lease_error("unknown lease", msg.value().request_id));
        }
        break;
      }
      case MsgType::BatchAllocate: {
        auto msg = decode_batch_allocate(*raw);
        if (!msg) {
          stream->send(encode_lease_error(msg.error().message));
          break;
        }
        if (replay_duplicate(msg.value().request_id)) break;
        // Batched allocations pass the same early-shed admission as
        // single requests: one admission token per round trip (the shard
        // scan is paid once per batch, so that is the unit of work the
        // capacity bucket paces).
        if (admission_.enabled()) {
          auto verdict = admission_.admit(msg.value().client_id, engine_.now());
          if (!verdict.admitted) {
            LeaseDeniedMsg denied;
            denied.reason = static_cast<std::uint8_t>(DenialReason::Overload);
            denied.retry_after = verdict.retry_after;
            denied.request_id = msg.value().request_id;
            reply_cached(msg.value().request_id, encode(denied));
            break;
          }
        }
        // One round trip, one gate session: the routed shard's scan is
        // paid once for the whole batch (a scan is O(registry) however
        // many leases it yields) plus one extra decision delay per
        // additional shard the batch spilled onto — that amortization is
        // exactly what the batched API buys over N serial LeaseRequests.
        const std::uint32_t locality = fabric_.locality(stream->remote_device());
        const std::uint32_t shard = core_.preferred_shard_for(locality);
        auto& gate = *grant_gates_[shard];
        co_await gate.lock();
        co_await sim::delay(config_.lease_processing);
        std::uint32_t extra_shards = 0;
        Bytes reply = grant_batch(msg.value(), locality, shard, extra_shards);
        if (extra_shards > 0) co_await sim::delay(extra_shards * config_.lease_processing);
        gate.unlock();
        reply_cached(msg.value().request_id, std::move(reply));
        break;
      }
      case MsgType::ReleaseResources: {
        auto msg = decode_release(*raw);
        if (!msg) break;
        if (replay_duplicate(msg.value().request_id)) break;
        core_.release(msg.value().lease_id);
        // Acked (and thus retransmittable) only for hardened senders;
        // legacy releases stay fire-and-forget so their streams never see
        // an unexpected push, and a lost one is reclaimed by the expiry
        // sweep.
        if (msg.value().request_id != 0) {
          ReleaseOkMsg ok;
          ok.lease_id = msg.value().lease_id;
          ok.request_id = msg.value().request_id;
          reply_cached(msg.value().request_id, encode(ok));
        }
        break;
      }
      case MsgType::HeartbeatAck: {
        if (auto it = executor_ids_.find(stream.get()); it != executor_ids_.end()) {
          core_.touch(it->second, engine_.now());
        }
        break;
      }
      case MsgType::SubscribeEvents: {
        auto msg = decode_subscribe_events(*raw);
        if (!msg) break;
        // Latest subscription wins; the stream carries only pushes from
        // here on, so the client's request stream stays request-response.
        subscribers_[msg.value().client_id] = stream;
        // A promoted manager announces the failover on every new
        // notification stream: the reconnecting client learns the new
        // manager epoch and re-validates its held leases against the
        // restored table before trusting them further.
        if (restored_) {
          FailoverAnnounceMsg announce;
          announce.manager_epoch = manager_epoch_;
          announce.applied_seq = core_.journal() != nullptr ? core_.journal()->last_seq() : 0;
          announce.promoted_at = promoted_at_;
          stream->send(encode(announce));
        }
        break;
      }
      case MsgType::LeaseRevalidate: {
        // Failover lease re-validation: does the (possibly promoted)
        // manager still carry this lease for this client? Read-only —
        // ExtendOk echoes the current deadline, LeaseError tells the
        // client to drop the lease and heal through re-allocation.
        auto msg = decode_lease_revalidate(*raw);
        if (!msg) break;
        if (replay_duplicate(msg.value().request_id)) break;
        ++revalidations_;
        const auto info = core_.lease_info(msg.value().lease_id);
        if (info.has_value() && info->client_id == msg.value().client_id) {
          ExtendOkMsg ok;
          ok.lease_id = msg.value().lease_id;
          ok.expires_at = info->expires_at;
          ok.request_id = msg.value().request_id;
          reply_cached(msg.value().request_id, encode(ok));
        } else {
          reply_cached(msg.value().request_id,
                       encode_lease_error("unknown lease", msg.value().request_id));
        }
        break;
      }
      case MsgType::HealthReport: {
        // A client's circuit breaker tripped against an executor: the
        // data plane saw a gray failure (timeouts, corruption, EWMA
        // failure rate over threshold) that the control plane's
        // heartbeats cannot — the host still acks. First trips merely
        // degrade the executor so every scheduling policy deprioritizes
        // it; `quarantine_trips` distinct trips drain it outright
        // (evicting its leases, whose owners self-heal elsewhere).
        auto msg = decode_health_report(*raw);
        if (!msg) break;
        if (replay_duplicate(msg.value().request_id)) break;
        ++health_reports_;
        const std::uint32_t trips = ++health_trip_counts_[msg.value().device];
        if (auto executor = core_.find_executor_by_device(msg.value().device)) {
          if (trips >= config_.fault_tolerance.quarantine_trips) {
            if (drain_executor_on_device(msg.value().device).has_value()) {
              ++quarantined_executors_;
              log::info("rm", "quarantined executor on device ", msg.value().device,
                        " after ", trips, " breaker trips (client ", msg.value().client_id,
                        ", ewma latency ", msg.value().latency_us, " us, ",
                        msg.value().fail_count, "/",
                        msg.value().ok_count + msg.value().fail_count, " failed)");
            }
          } else {
            core_.set_degraded(*executor, true);
            log::info("rm", "degraded executor on device ", msg.value().device,
                      " (trip ", trips, "/", config_.fault_tolerance.quarantine_trips,
                      " from client ", msg.value().client_id, ")");
          }
        }
        HealthReportOkMsg ok;
        ok.request_id = msg.value().request_id;
        reply_cached(msg.value().request_id, encode(ok));
        break;
      }
      default:
        break;
    }
  }
}

Bytes ResourceManager::grant_lease(const LeaseRequestMsg& req, std::uint32_t client_locality,
                                   std::uint32_t shard, bool& stolen) {
  if (core_.size() == 0) return encode_lease_error("no executors registered", req.request_id);
  if (req.workers == 0) return encode_lease_error("zero workers requested", req.request_id);

  ScheduleRequest request;
  request.workers = req.workers;
  request.memory_per_worker = req.memory_bytes;
  request.client_locality = client_locality;

  auto grant = core_.grant(request, req.client_id, req.timeout, engine_.now(), shard);
  if (!grant) return encode_lease_error("no executor with free capacity", req.request_id);
  stolen = grant->stolen;

  LeaseGrantMsg msg;
  msg.lease_id = grant->lease_id;
  msg.device = grant->executor_info.device;
  msg.alloc_port = grant->executor_info.alloc_port;
  msg.rdma_port = grant->executor_info.rdma_port;
  msg.workers = grant->workers;
  msg.expires_at = grant->expires_at;
  msg.request_id = req.request_id;
  return encode(msg);
}

Bytes ResourceManager::grant_batch(const BatchAllocateMsg& req, std::uint32_t client_locality,
                                   std::uint32_t shard, std::uint32_t& extra_shards) {
  extra_shards = 0;
  BatchGrantedMsg reply;
  reply.request_id = req.request_id;
  if (core_.size() == 0) {
    reply.error = "no executors registered";
    return encode(reply);
  }
  if (req.workers == 0) {
    reply.error = "zero workers requested";
    return encode(reply);
  }

  ScheduleRequest request;
  request.workers = req.workers;
  request.memory_per_worker = req.memory_bytes;
  request.client_locality = client_locality;

  const bool all_or_nothing = req.mode == static_cast<std::uint8_t>(BatchMode::AllOrNothing);
  auto outcome =
      core_.grant_batch(request, req.client_id, req.timeout, engine_.now(), all_or_nothing, shard);
  extra_shards = outcome.shards_touched > 0 ? outcome.shards_touched - 1 : 0;

  reply.complete = outcome.complete;
  for (const auto& g : outcome.grants) {
    LeaseGrantMsg grant;
    grant.lease_id = g.lease_id;
    grant.device = g.executor_info.device;
    grant.alloc_port = g.executor_info.alloc_port;
    grant.rdma_port = g.executor_info.rdma_port;
    grant.workers = g.workers;
    grant.expires_at = g.expires_at;
    reply.grants.push_back(grant);
  }
  if (reply.grants.empty()) {
    reply.error = all_or_nothing && !outcome.complete
                      ? "all-or-nothing batch unsatisfiable"
                      : "no executor with free capacity";
  }
  return encode(reply);
}

Bytes ResourceManager::make_register_ok(std::uint64_t request_id) {
  RegisterOkMsg ok;
  ok.rm_rdma_port = rdma_port_;
  auto slot0 = billing_.tenant_slot(0);
  ok.billing_addr = slot0.addr;
  ok.billing_rkey = slot0.rkey;
  ok.request_id = request_id;
  return encode(ok);
}

void ResourceManager::mark_executor_dead(std::uint64_t executor_id) {
  if (auto info = core_.mark_dead(executor_id)) {
    log::warn("rm", "executor on device ", info->device, " is dead, reclaiming leases");
  }
}

void ResourceManager::notify_evictions(
    const std::vector<ShardedResourceManager::Eviction>& evictions,
    TerminationReason reason) {
  if (evictions.empty()) return;
  const Time now = engine_.now();
  evictions_notified_ += evictions.size();

  // Coalesce per destination stream: an eviction storm that clears N
  // leases off one executor (or one tenant) sends one batched message,
  // not N. First-appearance order keeps the send sequence deterministic.
  struct Dest {
    std::shared_ptr<net::TcpStream> stream;
    std::vector<std::uint64_t> lease_ids;
  };
  std::vector<Dest> dests;
  auto add = [&dests](const std::shared_ptr<net::TcpStream>& stream, std::uint64_t lease_id) {
    if (stream == nullptr || stream->closed()) return;
    for (auto& d : dests) {
      if (d.stream == stream) {
        d.lease_ids.push_back(lease_id);
        return;
      }
    }
    dests.push_back(Dest{stream, {lease_id}});
  };
  for (const auto& ev : evictions) {
    // Executor side: tear the sandbox down and release its workers.
    add(ev.executor_stream, ev.lease_id);
    // Client side: the push lands on the tenant's notification stream
    // (if subscribed); an unsubscribed client only learns through its
    // next refused renewal or a dead worker connection.
    auto it = subscribers_.find(ev.client_id);
    if (it != subscribers_.end()) add(it->second, ev.lease_id);
  }

  for (auto& dest : dests) {
    ++notification_messages_;
    // Per-stream push sequence: a duplicated delivery carries the same
    // seq and is filtered by the receiving session before it can tear a
    // sandbox down (or run a client's recovery) twice.
    const std::uint64_t seq = ++push_seqs_[dest.stream.get()];
    if (dest.lease_ids.size() == 1) {
      LeaseTerminatedMsg msg;
      msg.lease_id = dest.lease_ids.front();
      msg.reason = static_cast<std::uint8_t>(reason);
      msg.evicted_at = now;
      msg.seq = seq;
      dest.stream->send(encode(msg));
    } else {
      LeasesTerminatedMsg msg;
      msg.reason = static_cast<std::uint8_t>(reason);
      msg.evicted_at = now;
      msg.lease_ids = std::move(dest.lease_ids);
      msg.seq = seq;
      dest.stream->send(encode(msg));
    }
  }
}

std::size_t ResourceManager::evict_leases(const std::vector<std::uint64_t>& lease_ids,
                                          TerminationReason reason) {
  std::vector<ShardedResourceManager::Eviction> evicted;
  evicted.reserve(lease_ids.size());
  for (const auto id : lease_ids) {
    if (auto ev = core_.evict(id)) evicted.push_back(std::move(*ev));
  }
  notify_evictions(evicted, reason);
  return evicted.size();
}

std::optional<std::size_t> ResourceManager::drain_executor_on_device(std::uint32_t device) {
  auto executor = core_.find_executor_by_device(device);
  if (!executor) return std::nullopt;
  auto evicted = core_.drain_executor(*executor);
  notify_evictions(evicted, TerminationReason::Drain);
  log::info("rm", "draining executor on device ", device, ", evicted ", evicted.size(),
            " leases");
  return evicted.size();
}

ShardedResourceManager::RebalanceReport ResourceManager::rebalance_now() {
  auto report = core_.rebalance(config_.rebalance_max_skew, config_.rebalance_max_moves,
                                engine_.now());
  // Migrated executors keep their streams but change ids: re-point the
  // per-stream id table so heartbeat acks and disconnects keep landing
  // on the live registration.
  for (const auto& mig : report.migrations) {
    if (mig.stream != nullptr) executor_ids_[mig.stream.get()] = mig.new_id;
  }
  notify_evictions(report.evictions, TerminationReason::Rebalance);
  if (!report.migrations.empty()) {
    log::info("rm", "rebalance moved ", report.migrations.size(), " executors, skew ",
              report.skew_before, " -> ", report.skew_after);
  }
  // Re-baseline the storm detector here, not just in the periodic loop:
  // a manual rebalance's own evictions must not read as a storm and
  // suppress the next periodic sweep.
  rebalance_last_evictions_ = core_.evictions();
  return report;
}

sim::Task<void> ResourceManager::rebalance_loop() {
  rebalance_last_evictions_ = core_.evictions();
  while (alive_) {
    co_await sim::delay(config_.rebalance_period);
    if (!alive_) break;
    if (config_.rebalance_storm_backoff) {
      // Storm-aware backoff: leases were evicted since the last round
      // (quota pressure, drains — an eviction storm reshaping load), so
      // the skew the sweep would chase is still moving. Sit this round
      // out; once the counter stops rising the sweep resumes.
      const std::uint64_t evictions = core_.evictions();
      if (evictions > rebalance_last_evictions_) {
        rebalance_last_evictions_ = evictions;
        ++rebalance_skips_;
        continue;
      }
    }
    (void)rebalance_now();  // re-baselines the eviction counter itself
  }
}

sim::Task<void> ResourceManager::heartbeat_loop() {
  // "Managers use heartbeats to verify the status of spot executors"
  // (Sec. III-A). The same loop sweeps expired leases back into the free
  // pool — one periodic per-shard pass instead of one timer coroutine per
  // lease. Candidates are collected under the shard locks, then acted on
  // outside them (mark_dead re-takes its shard's lock).
  while (alive_) {
    co_await sim::delay(config_.heartbeat_period);
    if (!alive_) break;
    const Time now = engine_.now();
    core_.sweep_expired(now);
    maybe_snapshot();

    struct Action {
      std::uint64_t id;
      std::shared_ptr<net::TcpStream> stream;  // null => missed heartbeats
    };
    std::vector<Action> actions;
    core_.visit_executors([&](std::uint64_t id, const ExecutorEntry& e) {
      if (!e.alive) return;
      if (now - e.last_ack > 5 * config_.heartbeat_period / 2) {
        actions.push_back({id, nullptr});
      } else if (e.stream != nullptr && !e.stream->closed()) {
        actions.push_back({id, e.stream});
      }
    });
    for (auto& action : actions) {
      if (action.stream == nullptr) {
        mark_executor_dead(action.id);
      } else {
        action.stream->send(encode(MsgType::Heartbeat));
      }
    }
  }
}

}  // namespace rfs::rfaas

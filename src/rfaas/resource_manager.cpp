#include "rfaas/resource_manager.hpp"

#include "common/log.hpp"
#include "rdmalib/connection.hpp"

namespace rfs::rfaas {

ResourceManager::ResourceManager(sim::Engine& engine, fabric::Fabric& fabric,
                                 net::TcpNetwork& tcp, sim::Host& host, fabric::Device& device,
                                 Config config)
    : engine_(engine),
      fabric_(fabric),
      tcp_(tcp),
      host_(host),
      device_(device),
      config_(std::move(config)),
      pd_(device.alloc_pd()),
      billing_(*pd_),
      scheduler_(make_scheduler(config_)) {}

void ResourceManager::start() {
  alive_ = true;
  sim::spawn(engine_, run_server());
  sim::spawn(engine_, run_billing_accept());
  sim::spawn(engine_, heartbeat_loop());
}

void ResourceManager::stop() {
  alive_ = false;
  tcp_.listen(device_.id(), port_).shutdown();
  fabric_.stop_listening(device_, rdma_port_);
}

sim::Task<void> ResourceManager::run_server() {
  auto& listener = tcp_.listen(device_.id(), port_);
  while (alive_) {
    auto stream = co_await listener.accept();
    if (stream == nullptr) break;
    sim::spawn(engine_, handle_stream(std::move(stream)));
  }
}

sim::Task<void> ResourceManager::run_billing_accept() {
  auto& listener = fabric_.listen(device_, rdma_port_);
  while (alive_) {
    auto req = co_await listener.accept();
    if (req == nullptr) break;
    // Billing updates are one-sided atomics: the manager only needs to
    // keep the connection open; no polling is required.
    billing_conns_.push_back(rdmalib::Connection::accept(*req, device_, pd_));
  }
}

sim::Task<void> ResourceManager::handle_stream(std::shared_ptr<net::TcpStream> stream) {
  std::size_t executor_index = SIZE_MAX;  // set once this stream registers
  while (alive_) {
    auto raw = co_await stream->recv();
    if (!raw.has_value()) {
      // Stream closed. A registered executor disconnecting means it died
      // (or was stopped); reclaim immediately — faster than waiting for
      // missed heartbeats.
      if (executor_index != SIZE_MAX && registry_.at(executor_index).alive) {
        mark_executor_dead(executor_index);
      }
      break;
    }
    auto type = peek_type(*raw);
    if (!type) continue;
    switch (type.value()) {
      case MsgType::RegisterExecutor: {
        auto msg = decode_register(*raw);
        if (!msg) break;
        ExecutorEntry entry;
        entry.info = msg.value();
        entry.total_workers = static_cast<std::uint32_t>(
            msg.value().cores * std::max(1.0, config_.lease_oversubscription));
        entry.free_workers = entry.total_workers;
        entry.free_memory = msg.value().memory_bytes;
        entry.alive = true;
        entry.last_ack = engine_.now();
        entry.locality = fabric_.locality(msg.value().device);
        entry.stream = stream;
        executor_index = registry_.add(std::move(entry));
        RegisterOkMsg ok;
        ok.rm_rdma_port = rdma_port_;
        auto slot0 = billing_.tenant_slot(0);
        ok.billing_addr = slot0.addr;
        ok.billing_rkey = slot0.rkey;
        stream->send(encode(ok));
        log::info("rm", "registered executor on device ", msg.value().device, " with ",
                  msg.value().cores, " cores");
        break;
      }
      case MsgType::LeaseRequest: {
        auto msg = decode_lease_request(*raw);
        if (!msg) {
          stream->send(encode_lease_error(msg.error().message));
          break;
        }
        co_await sim::delay(config_.lease_processing);
        stream->send(grant_lease(msg.value(), fabric_.locality(stream->remote_device())));
        break;
      }
      case MsgType::ReleaseResources: {
        auto msg = decode_release(*raw);
        if (msg) reclaim_lease(msg.value().lease_id);
        break;
      }
      case MsgType::HeartbeatAck: {
        if (executor_index != SIZE_MAX) registry_.at(executor_index).last_ack = engine_.now();
        break;
      }
      default:
        break;
    }
  }
}

Bytes ResourceManager::grant_lease(const LeaseRequestMsg& req, std::uint32_t client_locality) {
  if (registry_.empty()) return encode_lease_error("no executors registered");
  if (req.workers == 0) return encode_lease_error("zero workers requested");

  ScheduleRequest request;
  request.workers = req.workers;
  request.memory_per_worker = req.memory_bytes;
  request.client_locality = client_locality;

  // Every placement decision flows through the scheduling policy; the
  // registry commit revalidates, so an executor that died between the
  // policy's scan and the grant is excluded and the decision retried
  // instead of handing out a dangling lease.
  std::vector<bool> excluded(registry_.size(), false);
  while (auto placement = scheduler_->place(registry_, request, excluded)) {
    if (!registry_.try_claim(placement->executor, placement->workers, placement->memory)) {
      excluded[placement->executor] = true;
      continue;
    }
    const auto& e = registry_.at(placement->executor);

    Lease lease;
    lease.id = next_lease_id_++;
    lease.client_id = req.client_id;
    lease.executor_index = placement->executor;
    lease.workers = placement->workers;
    lease.memory_bytes = placement->memory;
    lease.expires_at = engine_.now() + req.timeout;
    leases_[lease.id] = lease;
    // Introspection only; bounded so long-horizon simulations don't grow
    // the manager's footprint linearly with grant count.
    if (placement_log_.size() < kPlacementLogCap) placement_log_.push_back(*placement);

    LeaseGrantMsg grant;
    grant.lease_id = lease.id;
    grant.device = e.info.device;
    grant.alloc_port = e.info.alloc_port;
    grant.rdma_port = e.info.rdma_port;
    grant.workers = placement->workers;
    grant.expires_at = lease.expires_at;
    return encode(grant);
  }
  return encode_lease_error("no executor with free capacity");
}

void ResourceManager::reclaim_lease(std::uint64_t lease_id) {
  auto it = leases_.find(lease_id);
  if (it == leases_.end()) return;
  const Lease& lease = it->second;
  registry_.release(lease.executor_index, lease.workers, lease.memory_bytes);
  leases_.erase(it);
}

void ResourceManager::reclaim_expired(Time now) {
  // "Leases are time-limited": return capacity of every lease past its
  // deadline. The executor manager enforces the expiry on its side as
  // well, so this sweep is the manager-side backstop.
  std::vector<std::uint64_t> expired;
  for (const auto& [id, lease] : leases_) {
    if (lease.expires_at <= now) expired.push_back(id);
  }
  for (auto id : expired) reclaim_lease(id);
}

void ResourceManager::mark_executor_dead(std::size_t index) {
  auto& e = registry_.at(index);
  if (!e.alive) return;
  log::warn("rm", "executor on device ", e.info.device, " is dead, reclaiming leases");
  // Fast resource reclamation: drop all its leases, zero its capacity.
  std::vector<std::uint64_t> to_drop;
  for (const auto& [id, lease] : leases_) {
    if (lease.executor_index == index) to_drop.push_back(id);
  }
  for (auto id : to_drop) leases_.erase(id);
  registry_.mark_dead(index);
}

sim::Task<void> ResourceManager::heartbeat_loop() {
  // "Managers use heartbeats to verify the status of spot executors"
  // (Sec. III-A). The same loop sweeps expired leases back into the free
  // pool — one periodic pass instead of one timer coroutine per lease.
  while (alive_) {
    co_await sim::delay(config_.heartbeat_period);
    if (!alive_) break;
    const Time now = engine_.now();
    reclaim_expired(now);
    for (std::size_t i = 0; i < registry_.size(); ++i) {
      auto& e = registry_.at(i);
      if (!e.alive) continue;
      if (now - e.last_ack > 5 * config_.heartbeat_period / 2) {
        mark_executor_dead(i);
        continue;
      }
      if (e.stream != nullptr && !e.stream->closed()) {
        e.stream->send(encode(MsgType::Heartbeat));
      }
    }
  }
}

}  // namespace rfs::rfaas

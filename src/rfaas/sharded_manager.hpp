// Sharded lease-allocation core of the resource manager (Sec. III-A at
// 1000-executor scale).
//
// A single lock-protected registry serializes every grant, renew and
// expiry sweep — fine for a rack, fatal for a fleet. This core splits the
// executor population over N shards, each owning its own ExecutorRegistry
// and Scheduler (the same pluggable policy interface of scheduler.hpp),
// so the grant path only ever takes one shard's lock:
//
//  * Routing (level 1): power-of-two-choices over shards on their
//    aggregate free-worker counters — two relaxed atomic loads and a
//    compare, no locks. Deterministic for a fixed seed (the routing RNG
//    is a lock-free splitmix64 counter).
//  * Placement (level 2): inside the routed shard, the shard's Scheduler
//    picks the executor exactly as the single-manager path always did;
//    the registry commit revalidates under the shard lock.
//  * Work stealing: when the routed shard cannot place the request, the
//    remaining shards are tried in descending free-capacity order. A
//    fleet-wide denial therefore still means "no executor anywhere has
//    capacity", not "my shard happened to be full".
//
// Lease ids and executor ids carry the owning shard in their high bits,
// so release/renew/expiry route straight to one shard with no global
// lookup structure. With shards == 1 the core degenerates to the exact
// single-manager behavior (same scheduler stream, same lease-id
// sequence), which is what the single-vs-sharded benchmarks compare.
//
// Hot-path indexes (fig16): the lease table itself is a hash map, and
// three side indexes keep every periodic or reactive path off the
// full-table scan the seed paid —
//
//  * Expiry min-heap per shard, keyed by deadline with lazy deletion:
//    the heartbeat sweep pops only entries whose deadline has passed, so
//    sweeping costs O(expired + stale) instead of O(live leases).
//    ExtendLease re-arms by pushing the new deadline; the superseded
//    entry is discarded when it surfaces.
//  * Per-tenant index (held-worker counter + age-ordered lease ids),
//    maintained incrementally on grant/release/evict: reclaim_quota
//    reads O(tenants) counters and walks only over-quota tenants'
//    leases instead of snapshotting the whole table per denied request.
//  * Per-executor hosted-lease sets: drain/death/migration evict only
//    the host's own leases, O(hosted) instead of O(shard leases).
//
// The `*_scan` variants of sweep and quota reclaim preserve the seed's
// full-table algorithms as reference implementations — bench/fig16
// measures the indexed paths against them, and the equivalence tests in
// tests/sharded_manager_test.cpp pin both to the same outcomes.
//
// The core is deliberately independent of the simulation engine: it is a
// plain thread-safe state machine (per-shard std::shared_mutex — grants
// and sweeps write-lock one shard, snapshots and routing reads share it
// or use the lock-free atomic aggregates), usable from real threads in
// stress tests and from sim coroutines in the control plane alike.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <shared_mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "rfaas/config.hpp"
#include "rfaas/journal.hpp"
#include "rfaas/protocol.hpp"
#include "rfaas/scheduler.hpp"

namespace rfs::rfaas {

class ShardedResourceManager {
 public:
  /// Shard index lives in the high bits of lease and executor ids; the
  /// low bits are the per-shard counter / registry index. With one shard
  /// every id equals its low part, matching the unsharded manager.
  static constexpr unsigned kShardShift = 48;

  /// One committed grant: everything the control plane needs to answer a
  /// LeaseRequest, plus the shard bookkeeping for introspection.
  struct Grant {
    std::uint64_t lease_id = 0;
    std::uint64_t executor = 0;  ///< global executor id (shard-tagged)
    std::uint32_t shard = 0;
    std::uint32_t workers = 0;
    std::uint64_t memory = 0;  ///< total bytes claimed
    Time expires_at = 0;
    bool stolen = false;  ///< placed outside the routed shard
    std::uint32_t executor_locality = 0;  ///< rack of the granted executor
    RegisterExecutorMsg executor_info;  ///< device + ports for the grant msg
  };

  /// Result of a batched multi-lease grant (see grant_batch()).
  struct BatchGrant {
    std::vector<Grant> grants;          ///< the committed leases, grant order
    std::uint32_t granted_workers = 0;  ///< sum over `grants`
    std::uint32_t shards_touched = 0;   ///< distinct shards scanned/placed on
    bool complete = false;              ///< every requested worker granted
  };

  /// Result of a successful renew(): the registration stream of the
  /// executor hosting the lease (may be null for core-only deployments),
  /// so the control plane can push the new deadline to the sandbox.
  struct Renewal {
    std::shared_ptr<net::TcpStream> executor_stream;
  };

  /// One manager-initiated lease termination (fast reclamation): the
  /// capacity is already back in the pool; the control plane still owes
  /// a LeaseTerminated push to the hosting executor (sandbox teardown)
  /// and to the owning client's notification stream.
  struct Eviction {
    std::uint64_t lease_id = 0;
    std::uint32_t client_id = 0;
    std::uint32_t workers = 0;
    std::uint64_t memory = 0;
    std::shared_ptr<net::TcpStream> executor_stream;  ///< may be null (core-only)
  };

  /// One executor moved between shards by rebalance(); the control plane
  /// uses `stream` to remap its per-stream executor-id table so later
  /// heartbeat acks land on the new registration.
  struct Migration {
    std::uint64_t old_id = 0;
    std::uint64_t new_id = 0;
    std::shared_ptr<net::TcpStream> stream;  ///< may be null (core-only)
  };

  /// Outcome of one rebalance sweep. Skew is max/min schedulable worker
  /// capacity across shards (1.0 = perfectly balanced).
  struct RebalanceReport {
    double skew_before = 1.0;
    double skew_after = 1.0;
    std::vector<Migration> migrations;
    std::vector<Eviction> evictions;  ///< leases evicted off migrated executors
  };

  explicit ShardedResourceManager(const Config& config);
  ~ShardedResourceManager();

  ShardedResourceManager(const ShardedResourceManager&) = delete;
  ShardedResourceManager& operator=(const ShardedResourceManager&) = delete;

  [[nodiscard]] std::uint32_t shard_count() const {
    return static_cast<std::uint32_t>(shards_.size());
  }

  /// Registers an executor on the next shard (round-robin assignment
  /// keeps skewed fleets balanced across shards; with the LocalityFirst
  /// policy the shard is the executor's rack modulo the shard count, so
  /// each rack has a home shard). Returns its global id.
  std::uint64_t add_executor(ExecutorEntry entry);

  /// Level-1 routing decision: power-of-two-choices over the shards'
  /// aggregate free-worker counters. Lock-free; consumes one value of the
  /// routing RNG (none with a single shard).
  [[nodiscard]] std::uint32_t preferred_shard();

  /// Locality-aware routing: with the LocalityFirst policy the client
  /// rack's home shard is preferred while it has free capacity; all
  /// other configurations (and an exhausted home shard) fall back to
  /// preferred_shard().
  [[nodiscard]] std::uint32_t preferred_shard_for(std::uint32_t client_locality);

  /// Grants a lease: places inside `routed` (defaults to a fresh
  /// preferred_shard() decision), stealing from the other shards in
  /// descending free-capacity order when the routed shard is full.
  std::optional<Grant> grant(const ScheduleRequest& request, std::uint32_t client_id,
                             Duration timeout, Time now,
                             std::optional<std::uint32_t> routed = std::nullopt);

  /// Grants a batch of leases totalling `request.workers` workers in one
  /// call, aggregating partial placements across executors and shards
  /// (per-shard partial fulfillment). `routed` seeds the first
  /// sub-placement; later ones route freshly. When `all_or_nothing` is
  /// set and the fleet cannot satisfy the whole request, every
  /// provisional lease is released and the returned grant list is empty.
  BatchGrant grant_batch(const ScheduleRequest& request, std::uint32_t client_id,
                         Duration timeout, Time now, bool all_or_nothing,
                         std::optional<std::uint32_t> routed = std::nullopt);

  /// Extends a live lease to the given expiry; nullopt when unknown. On
  /// success carries the hosting executor's registration stream so the
  /// caller can push the renewal to the sandbox.
  std::optional<Renewal> renew(std::uint64_t lease_id, Time new_expires_at);

  /// Returns the lease's capacity to its executor; false when unknown
  /// (already released, expired, or dropped at executor death).
  bool release(std::uint64_t lease_id);

  /// Reclaims every lease past its deadline by draining the per-shard
  /// expiry heaps — O(expired + stale renewal entries), independent of
  /// the live-lease count. Returns the number of leases reclaimed. Safe
  /// against clock regression: a `now` earlier than a previous sweep's
  /// reclaims nothing early and leaves the index intact.
  std::size_t sweep_expired(Time now);

  /// Reference implementation of the pre-index sweep: walks the full
  /// lease table of every shard, O(live leases). Same outcome as
  /// sweep_expired (the equivalence tests pin this); kept so
  /// bench/fig16_hotpath can measure the indexed sweep against the scan
  /// it replaced on identical state.
  std::size_t sweep_expired_scan(Time now);

  // ---- Manager-initiated reclamation (evict / drain / rebalance) ----

  /// Terminates a live lease ahead of its deadline and returns its
  /// capacity to the pool. nullopt when the lease is unknown (already
  /// released, expired, or evicted — eviction races resolve to exactly
  /// one winner).
  std::optional<Eviction> evict(std::uint64_t lease_id);

  /// Snapshot of up to `max` live lease ids, shard-major. For eviction
  /// policies and scenario drivers; ids may be gone again by the time
  /// they are evicted (evict() then returns nullopt).
  [[nodiscard]] std::vector<std::uint64_t> active_lease_ids(
      std::size_t max = static_cast<std::size_t>(-1)) const;

  /// Tenant quota pressure: evicts leases of clients holding more than
  /// `quota_workers` (never the requester's own) until `workers_needed`
  /// workers are reclaimed or no over-quota lease remains. Oldest leases
  /// of each over-quota tenant go first (shard-major id order). Reads
  /// the incremental per-tenant held-worker counters — O(tenants) plus
  /// the over-quota candidates, not O(total leases) per denied request.
  std::vector<Eviction> reclaim_quota(std::uint32_t requesting_client,
                                      std::uint32_t quota_workers,
                                      std::uint32_t workers_needed);

  /// Reference implementation of the pre-index quota reclaim: snapshots
  /// every lease of every shard and rebuilds the per-tenant held counts
  /// from scratch, O(total leases). Same evictions as reclaim_quota;
  /// kept for the fig16 before/after measurement and equivalence tests.
  std::vector<Eviction> reclaim_quota_scan(std::uint32_t requesting_client,
                                           std::uint32_t quota_workers,
                                           std::uint32_t workers_needed);

  /// Workers currently held by `client_id` across all shards — a sum of
  /// the per-shard tenant counters, O(shards).
  [[nodiscard]] std::uint64_t tenant_held_workers(std::uint32_t client_id) const;

  /// Drains an executor: evicts every lease it hosts and parks its
  /// capacity out of the schedulable pool. The host stays alive
  /// (heartbeats continue) but receives no further placements.
  std::vector<Eviction> drain_executor(std::uint64_t executor_id);

  /// One rebalance sweep: while the max/min schedulable-capacity skew
  /// across shards exceeds `max_skew` (and at most `max_moves` times),
  /// migrates an executor registration from the fullest shard to the
  /// emptiest. Active leases of a migrated executor are evicted — their
  /// owners re-allocate (self-healing) and land on the new registration.
  /// `now` seeds the migrated entries' heartbeat clocks.
  RebalanceReport rebalance(double max_skew, unsigned max_moves, Time now);

  /// Global id of the alive executor registered for fabric device
  /// `device` (nullopt when unknown). For scenario drivers that address
  /// executors by host rather than by registration id.
  [[nodiscard]] std::optional<std::uint64_t> find_executor_by_device(
      std::uint32_t device) const;

  /// Marks an executor dead, drops its leases and zeroes its capacity.
  /// Returns the executor's registration info when this call was the one
  /// that killed it (for logging), nullopt when it was already dead.
  std::optional<RegisterExecutorMsg> mark_dead(std::uint64_t executor_id);

  /// Flags (or clears) gray-failure degradation on an executor — its
  /// capacity stays schedulable, but placement policies deprioritize it.
  /// Soft state, deliberately unjournaled: after a failover the clients
  /// whose breakers tripped will re-report. False when the id is unknown.
  bool set_degraded(std::uint64_t executor_id, bool degraded);

  /// Records a heartbeat ack. False when the id is unknown.
  bool touch(std::uint64_t executor_id, Time now);

  /// Owner and deadline of a live lease (shared lock on its shard);
  /// nullopt when unknown. The failover revalidation path answers
  /// LeaseRevalidate from this without mutating anything.
  struct LeaseInfo {
    std::uint32_t client_id = 0;
    std::uint32_t workers = 0;
    Time expires_at = 0;
  };
  [[nodiscard]] std::optional<LeaseInfo> lease_info(std::uint64_t lease_id) const;

  /// Calls fn(global_executor_id, const ExecutorEntry&) for every
  /// registered executor, shard by shard under a shared (read) lock, so
  /// concurrent grants on other threads are not serialized against the
  /// visit. The callback must not reenter the manager (collect, then
  /// act).
  template <typename Fn>
  void visit_executors(Fn&& fn) const {
    for (std::uint32_t s = 0; s < shards_.size(); ++s) {
      auto& shard = *shards_[s];
      std::shared_lock<std::shared_mutex> lock(shard.mu);
      for (std::size_t i = 0; i < shard.registry.size(); ++i) {
        fn(make_id(s, i), shard.registry.at(i));
      }
    }
  }

  // ---- Aggregates (lock-free where counters exist, else per-shard) ----
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t alive_count() const;
  [[nodiscard]] std::uint32_t free_workers_total() const;
  [[nodiscard]] std::uint32_t total_workers() const;
  [[nodiscard]] std::size_t active_leases() const;

  [[nodiscard]] std::uint64_t grants() const { return grants_.load(std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t denials() const { return denials_.load(std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t steals() const { return steals_.load(std::memory_order_relaxed); }
  /// Grants whose executor sits in the requesting client's rack — the
  /// numerator of the locality hit rate benches report.
  [[nodiscard]] std::uint64_t local_grants() const {
    return local_grants_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t batches() const { return batches_.load(std::memory_order_relaxed); }
  /// Manager-initiated lease terminations (evict/drain/rebalance paths).
  [[nodiscard]] std::uint64_t evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }
  /// Executor registrations moved between shards by rebalance().
  [[nodiscard]] std::uint64_t migrations() const {
    return migrations_.load(std::memory_order_relaxed);
  }

  /// Per-shard introspection for tests and the single-shard compatibility
  /// accessors of ResourceManager. Not synchronized: call only while no
  /// other thread mutates the manager.
  [[nodiscard]] const ExecutorRegistry& registry(std::uint32_t shard = 0) const {
    return shards_.at(shard)->registry;
  }
  [[nodiscard]] const Scheduler& scheduler(std::uint32_t shard = 0) const {
    return *shards_.at(shard)->scheduler;
  }
  [[nodiscard]] std::size_t shard_lease_count(std::uint32_t shard) const;
  [[nodiscard]] std::uint32_t shard_free_workers(std::uint32_t shard) const {
    return clamp_free(shards_.at(shard)->free_workers.load(std::memory_order_relaxed));
  }
  /// Schedulable worker capacity of one shard — the load metric of the
  /// rebalance sweep.
  [[nodiscard]] std::uint32_t shard_total_workers(std::uint32_t shard) const {
    return clamp_free(shards_.at(shard)->total_workers.load(std::memory_order_relaxed));
  }

  /// Committed placements, shard-major, executor indices rewritten to
  /// global ids; capped at kPlacementLogCap entries per shard.
  static constexpr std::size_t kPlacementLogCap = 1 << 16;
  [[nodiscard]] std::vector<Placement> placement_log() const;

  // ---- Replication / failover (journal.hpp, replica.hpp) ----

  /// Deep, canonical snapshot of the manager's replicated state: every
  /// shard's executor table, lease table, tenant index, canonical expiry
  /// index and counters, plus the manager-level counters a failover must
  /// preserve. Canonical means deterministic ordering (leases and
  /// tenants sorted by id, expiry deduplicated to the live deadlines),
  /// so two managers that went through equivalent histories compare and
  /// digest identically even though their hash tables and lazy heaps
  /// differ internally. Heartbeat clocks (`last_ack`) and streams are
  /// carried for restore but excluded from equality and the digest —
  /// heartbeats are not journaled.
  struct ManagerState {
    /// One executor registration (registry order, tombstones included).
    struct ExecutorState {
      RegisterExecutorMsg info;
      std::uint32_t total_workers = 0;
      std::uint32_t free_workers = 0;
      std::uint64_t free_memory = 0;
      bool alive = true;
      bool draining = false;
      std::uint32_t locality = 0;
      Time last_ack = 0;  ///< restored but not compared (not journaled)
    };
    /// One live lease (sorted by id).
    struct LeaseState {
      std::uint64_t lease_id = 0;
      std::uint32_t client_id = 0;
      std::uint64_t executor = 0;  ///< shard-local registry index
      std::uint32_t workers = 0;
      std::uint64_t memory = 0;
      Time expires_at = 0;
    };
    /// One tenant's slice (sorted by client id; leases in age order).
    struct TenantState {
      std::uint32_t client_id = 0;
      std::uint64_t held_workers = 0;
      std::vector<std::uint64_t> leases;
    };
    struct ShardState {
      std::vector<ExecutorState> executors;
      std::vector<LeaseState> leases;
      std::vector<TenantState> tenants;
      /// Canonical deadline index: sorted (expires_at, lease_id) over the
      /// live leases — the lazy heaps' stale entries are not state.
      std::vector<std::pair<Time, std::uint64_t>> expiry;
      std::uint64_t next_lease = 1;
      std::int64_t free_workers = 0;
      std::int64_t total_workers = 0;
    };
    std::vector<ShardState> shards;
    std::uint64_t grants = 0;
    std::uint64_t local_grants = 0;
    std::uint64_t evictions = 0;
    std::uint64_t migrations = 0;
    std::uint64_t next_shard = 0;
    std::uint64_t executor_count = 0;

    /// Replicated-state equality: everything except heartbeat clocks and
    /// streams. This is what the replay-equivalence tests assert.
    [[nodiscard]] bool operator==(const ManagerState& other) const;
    [[nodiscard]] bool operator!=(const ManagerState& other) const { return !(*this == other); }

    /// Order-sensitive checksum over every compared field (the chained
    /// journal mix). Snapshot offers carry it so a standby rejects a torn
    /// or stale snapshot before replaying records on top of it.
    [[nodiscard]] std::uint64_t digest() const;
  };

  /// The replication journal (null unless Config::journal_enabled).
  [[nodiscard]] Journal* journal() const { return journal_.get(); }

  /// Exports the canonical state snapshot. Takes each shard's shared
  /// lock in turn — never call while holding a shard lock.
  [[nodiscard]] ManagerState export_state() const;

  /// Rebuilds this manager from a snapshot. Must be called on a freshly
  /// constructed manager with the same shard count; replays the executor
  /// lifecycle (add, claim, drain, death) so the registry's incremental
  /// aggregates match a live manager's by construction. Heartbeat clocks
  /// are reset to `now` so a just-promoted standby does not instantly
  /// reap every executor. Nothing is journaled.
  Status restore_state(const ManagerState& state, Time now);

  /// Replays one journal record into this manager's state (the standby
  /// path; see replica.hpp for sequencing and checksum verification).
  /// Records are deltas — no placement policy or routing re-runs — so a
  /// record that does not apply cleanly means the replica diverged and
  /// an Error is returned. Nothing is re-journaled.
  Status apply(const JournalRecordMsg& record);

  /// Re-attaches a live executor after a failover: same registration,
  /// new control stream and session epoch, leases and capacity
  /// preserved. False when the id is unknown or the executor is dead
  /// (the caller falls back to a fresh add_executor path). Journaled.
  bool reattach_executor(std::uint64_t executor_id, std::shared_ptr<net::TcpStream> stream,
                         std::uint64_t epoch, Time now);

  static constexpr std::uint64_t make_id(std::uint32_t shard, std::uint64_t low) {
    return (static_cast<std::uint64_t>(shard) << kShardShift) | low;
  }
  static constexpr std::uint32_t id_shard(std::uint64_t id) {
    return static_cast<std::uint32_t>(id >> kShardShift);
  }
  static constexpr std::uint64_t id_low(std::uint64_t id) {
    return id & ((1ull << kShardShift) - 1);
  }

 private:
  struct LeaseRecord {
    std::uint32_t client_id = 0;
    std::size_t executor = 0;  // shard-local registry index
    std::uint32_t workers = 0;
    std::uint64_t memory = 0;
    Time expires_at = 0;
  };

  /// One armed deadline in a shard's expiry heap. Entries are never
  /// removed in place: release/evict/renew leave them behind, and the
  /// sweep discards any entry whose lease is gone or whose deadline no
  /// longer matches the lease's (lazy deletion).
  struct ExpiryEntry {
    Time at = 0;
    std::uint64_t lease_id = 0;
  };
  /// Min-heap order for std::push_heap/pop_heap (which build max-heaps):
  /// earliest deadline at the front, ties broken by lease id so sweep
  /// order is deterministic.
  struct ExpiryLater {
    bool operator()(const ExpiryEntry& a, const ExpiryEntry& b) const {
      return a.at != b.at ? a.at > b.at : a.lease_id > b.lease_id;
    }
  };

  /// Incremental per-tenant slice of one shard's lease table. Lease ids
  /// grow monotonically per shard, so the ordered id set doubles as the
  /// tenant's leases in age order (oldest first) for quota eviction.
  struct TenantIndex {
    std::uint64_t held_workers = 0;
    std::set<std::uint64_t> leases;
  };

  struct Shard {
    mutable std::shared_mutex mu;
    ExecutorRegistry registry;
    std::unique_ptr<Scheduler> scheduler;
    std::unordered_map<std::uint64_t, LeaseRecord> leases;  // keyed by full lease id
    /// Deadline index over `leases` (lazy deletion, see ExpiryEntry).
    std::vector<ExpiryEntry> expiry;
    /// Lease ids hosted by each registry index (parallel to registry).
    std::vector<std::unordered_set<std::uint64_t>> hosted;
    /// client id -> held workers + age-ordered lease ids.
    std::unordered_map<std::uint32_t, TenantIndex> tenants;
    std::uint64_t next_lease = 1;
    std::vector<Placement> log;
    /// Relaxed aggregate mirrors of the registry, readable without the
    /// shard lock for routing and stealing decisions. Only mutated under
    /// the shard lock, so they never drift from the registry.
    std::atomic<std::int64_t> free_workers{0};
    std::atomic<std::int64_t> total_workers{0};
    std::atomic<std::size_t> lease_count{0};
  };

  static std::uint32_t clamp_free(std::int64_t v) {
    return v > 0 ? static_cast<std::uint32_t>(v) : 0;
  }

  /// Lock-free deterministic routing randomness: a splitmix64 stream
  /// driven by an atomic counter. Single-threaded callers (the sim) see
  /// the exact same sequence every run.
  std::uint64_t next_random();

  std::optional<Grant> grant_on(std::uint32_t shard_index, const ScheduleRequest& request,
                                std::uint32_t client_id, Duration timeout, Time now);

  /// Under the shard write lock: inserts the lease into the table and
  /// every side index (expiry heap, per-executor set, tenant counters).
  static void index_lease(Shard& shard, std::uint64_t lease_id, const LeaseRecord& record);

  /// Under the shard write lock: removes the lease from the table, the
  /// per-executor set and the tenant index; returns the next table
  /// iterator. The expiry-heap entry stays behind and is discarded
  /// lazily by a later sweep.
  static std::unordered_map<std::uint64_t, LeaseRecord>::iterator unindex_lease(
      Shard& shard, std::unordered_map<std::uint64_t, LeaseRecord>::iterator it);

  /// Under the shard write lock: arms (or re-arms, on renewal) the
  /// expiry heap for `lease_id` at `at`.
  static void arm_expiry(Shard& shard, Time at, std::uint64_t lease_id);

  /// Shared tail of reclaim_quota / reclaim_quota_scan: evicts the
  /// candidate (lease id, client) pairs in id order while their holder
  /// stays over quota, until `workers_needed` workers came back.
  std::vector<Eviction> evict_quota_candidates(
      const std::vector<std::pair<std::uint64_t, std::uint32_t>>& candidates,
      std::map<std::uint32_t, std::uint64_t>& held, std::uint32_t requesting_client,
      std::uint32_t quota_workers, std::uint32_t workers_needed);

  /// Under the shard write lock: erases every lease hosted by registry
  /// index `local` (via its hosted-lease set, O(hosted)), appending
  /// Eviction records and bumping the eviction counter. Capacity is NOT
  /// released back to the entry — drain parks it, migration moves it
  /// wholesale. Returns the evicted leases' total memory (migration
  /// folds it back into the moved entry).
  std::uint64_t evict_hosted_leases(std::uint32_t shard_index, Shard& shard, std::size_t local,
                                    const std::shared_ptr<net::TcpStream>& stream,
                                    std::vector<Eviction>& out);

  /// Appends to the replication journal when enabled. Called under the
  /// mutating shard's lock, so a shard's records stream in commit order;
  /// the journal's own mutex orders records across shards.
  void journal_append(JournalRecordMsg r) {
    if (journal_) journal_->append(std::move(r));
  }

  /// Journal hook shared by release/expire/evict: one lease left the
  /// table, with the capacity-return decision the primary already made.
  void journal_lease_drop(journal::Op op, std::uint32_t shard_index, std::uint64_t lease_id,
                          const LeaseRecord& record, bool returned_capacity);

  std::unique_ptr<Journal> journal_;
  std::vector<std::unique_ptr<Shard>> shards_;
  bool locality_sharding_ = false;  // LocalityFirst: shard executors by rack
  std::atomic<std::uint64_t> next_shard_{0};  // round-robin executor assignment
  std::atomic<std::size_t> executor_count_{0};  // lock-free size() for the grant path
  std::atomic<std::uint64_t> rng_counter_;
  std::atomic<std::uint64_t> grants_{0};
  std::atomic<std::uint64_t> denials_{0};
  std::atomic<std::uint64_t> steals_{0};
  std::atomic<std::uint64_t> local_grants_{0};
  std::atomic<std::uint64_t> batches_{0};
  std::atomic<std::uint64_t> evictions_{0};
  std::atomic<std::uint64_t> migrations_{0};
};

}  // namespace rfs::rfaas

// rFaaS platform configuration: calibration constants for invocation
// overheads, sandbox models and billing rates. Defaults reproduce the
// paper's measured values (Sec. V-A, Fig. 9, Sec. IV-C); see DESIGN.md §5.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "common/units.hpp"
#include "fabric/model.hpp"

namespace rfs::rfaas {

/// Sandbox/isolation technology of a user-code executor.
enum class SandboxType : std::uint8_t {
  BareMetal,  // plain Linux process
  Docker,     // container with SR-IOV virtual function passthrough
};

const char* to_string(SandboxType t);

/// Lease-placement policy of the resource manager's scheduling layer
/// (src/rfaas/scheduler.hpp). The paper keeps the manager off the hot
/// path, so the policy only affects allocation, never invocation.
enum class SchedulingPolicy : std::uint8_t {
  RoundRobin,         // seed-equivalent scan over executors with capacity
  LeastLoaded,        // most free workers first; balances heterogeneous fleets
  PowerOfTwoChoices,  // two random candidates, locality-preferring tie-break
  LocalityFirst,      // client's rack (and its shard) first, else power-of-two
};

const char* to_string(SchedulingPolicy p);

/// Cost model of one sandbox technology.
struct SandboxModel {
  /// Creating the sandbox + starting the executor process. The paper
  /// measures ~25 ms bare-metal and ~2.7 s for Docker with SR-IOV.
  Duration spawn_latency = 25_ms;

  /// Extra per-invocation latency on the critical path caused by the
  /// virtualized NIC (measured: +50 ns hot, +650 ns warm for Docker).
  Duration hot_invocation_overhead = 0;
  Duration warm_invocation_overhead = 0;

  /// Relative slowdown of user code inside the sandbox (cgroups, seccomp,
  /// virtual memory overheads); Fig. 11 shows ~1.7x for the Docker
  /// thumbnailer and ~1.05x for inference.
  double compute_multiplier = 1.0;
};

/// Billing rates of the three cost components (Sec. IV-C):
/// C = Ca * ta + Cc * tc + Ch * th.
struct BillingRates {
  double allocation_per_gb_s = 0.15e-4;  // Ca: memory reservation, per GB-second
  double compute_per_s = 0.45e-4;        // Cc: busy execution, per core-second
  double hot_poll_per_s = 0.30e-4;       // Ch: hot polling occupancy, per core-second
};

/// Ingress admission control of the resource manager (0 rates = the
/// feature is off, the pre-admission behaviour). Two mechanisms compose
/// (src/rfaas/admission.hpp): a per-tenant token bucket *polices*
/// absolute request rates, and a start-time-fair-queueing credit check
/// *shares* the manager's aggregate admission capacity by tenant weight
/// when demand exceeds it. Both shed with `LeaseDenied{Overload,
/// retry_after}` before any shard lock, placement scan or quota-eviction
/// work — rejecting must stay near-free under overload, or overload
/// turns into collapse.
struct AdmissionConfig {
  /// Aggregate admission capacity (requests/s) shared by all tenants
  /// under WFQ (0 disables the capacity/WFQ layer).
  double capacity_hz = 0;
  /// Burst depth of the capacity bucket (requests; 0 = capacity_hz/100,
  /// min 1 — about 10 ms of line-rate burst).
  double capacity_burst = 0;
  /// Default per-tenant policing rate (requests/s; 0 disables policing
  /// for tenants without an explicit override).
  double tenant_rate_hz = 0;
  /// Default per-tenant policing burst (requests; 0 = tenant_rate_hz/100,
  /// min 1).
  double tenant_burst = 0;
  /// WFQ lag credit: how many admissions a tenant of weight w may run
  /// ahead of the global virtual time (credit * w requests of burst
  /// before weight-proportional shedding kicks in).
  double wfq_credit = 8;
  /// Default WFQ weight of a tenant with no explicit weight.
  std::uint32_t default_weight = 1;
  /// Explicit per-tenant weights, applied at manager construction
  /// (tenant id, weight). Weights can also be set later through
  /// Admission::set_weight.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> tenant_weights;
  /// Bounds of the retry_after hint carried by LeaseDenied.
  Duration retry_after_min = 1_ms;
  Duration retry_after_max = 2_s;

  [[nodiscard]] bool enabled() const { return capacity_hz > 0 || tenant_rate_hz > 0; }
};

/// Data-plane fault tolerance of the client's Invoker (all off by
/// default — the seed behaviour: an invocation waits forever and trusts
/// every response byte). When `invocation_deadline` is nonzero the
/// invoker stamps idempotent invocation tags and absolute deadlines into
/// the 32-byte header, surfaces a timeout instead of hanging when an
/// executor dies after submit, and retries on another held worker up to
/// `retry_budget` times (the executor dedup table guarantees a retried
/// invocation never double-executes). Hedging launches a backup on a
/// second warm worker after `hedge_delay`; first response wins, the
/// loser is cancelled. The per-worker EWMA/circuit-breaker knobs feed
/// gray-failure detection: a tripped breaker steers traffic off the
/// worker and reports the executor to the resource manager, which
/// quarantines (drains) it after `quarantine_trips` trips.
struct FaultToleranceConfig {
  /// Per-invocation deadline (0 = unbounded, the seed behaviour).
  Duration invocation_deadline = 0;
  /// Retries after a timeout/corruption, rotating across held workers.
  std::uint32_t retry_budget = 2;
  /// Launch a backup invocation on a second warm worker when the first
  /// has not answered after `hedge_delay`.
  bool hedging = false;
  /// Hedge trigger (0 = auto: a multiple of the observed EWMA latency).
  Duration hedge_delay = 0;
  /// Smoothing factor of the per-worker latency/failure EWMAs.
  double ewma_alpha = 0.2;
  /// Breaker trips when the failure EWMA crosses this fraction...
  double breaker_failure_threshold = 0.5;
  /// ...after at least this many observations (cold workers don't trip).
  std::uint32_t breaker_min_samples = 4;
  /// Open -> HalfOpen probe delay of the circuit breaker.
  Duration breaker_open_timeout = 50_ms;
  /// Breaker trips of one executor before the manager drains it.
  std::uint32_t quarantine_trips = 2;
  /// Stamp and verify payload checksums (request header field + the
  /// 12-bit response imm checksum); a mismatch counts as a failure and
  /// triggers a retry.
  bool checksum = false;

  [[nodiscard]] bool enabled() const { return invocation_deadline != 0; }
};

struct Config {
  fabric::NetworkModel network{};

  /// Executor-side dispatch: parse the 32 B header, look up the function
  /// index, call through the trampoline. Calibrated so that a hot no-op
  /// invocation costs ~326 ns over the raw RDMA round trip.
  Duration executor_dispatch = 170;

  /// Client-side completion handling: match the immediate value to the
  /// pending invocation and flip the future.
  Duration client_completion = 150;

  /// Warm path only: re-arming the completion channel and transitioning
  /// the worker thread in/out of the blocked state.
  Duration warm_rearm = 1200;

  /// Warm path only: the single local RDMA communication between the user
  /// code executor and its allocator that verifies resource status.
  Duration warm_resource_check = 900;

  /// Time a hot worker keeps busy-polling before rolling back to warm.
  Duration hot_polling_timeout = 500_ms;

  /// Worker thread creation + core pinning during cold start.
  Duration worker_spawn = 180_us;

  /// Code package instantiation after transfer (dlopen + relocations).
  Duration code_install_base = 800_us;
  Duration code_install_per_kb = 4_us;

  /// Executor manager processing of an allocation request.
  Duration allocation_processing = 350_us;

  /// Resource manager lease decision processing.
  Duration lease_processing = 120_us;

  /// Receive buffer size of each worker (bounds the max payload).
  std::uint64_t worker_buffer_bytes = 8_MiB;

  /// Output buffer size of each worker; 0 means "same as the receive
  /// buffer". Benches with asymmetric payloads (large in, small out) use
  /// this to keep the simulation's real memory footprint bounded.
  std::uint64_t worker_out_buffer_bytes = 0;

  /// Heartbeat period of the resource manager. Also the granularity of
  /// manager-side lease-expiry reclamation: the heartbeat loop sweeps
  /// expired leases, so an expired lease can hold its capacity for up to
  /// one extra period. (Executors enforce expiry on their side exactly.)
  Duration heartbeat_period = 1_s;

  /// Lease oversubscription: the resource manager hands out up to
  /// cores * factor worker leases per executor. "Large amounts of free
  /// memory can be used to retain more warm sandboxes than available CPU
  /// cores" (Sec. III-D); warm invocations are rejected when the cores
  /// are actually busy.
  double lease_oversubscription = 1.0;

  /// Idle executor reaping threshold of the lightweight allocator.
  Duration executor_idle_timeout = 60_s;

  /// Warm sandbox pool of the executor manager (0 = disabled, the
  /// seed behaviour). When enabled, retired sandboxes — lease expired,
  /// terminated, deallocated or reaped — park in a bounded keep-alive
  /// pool instead of tearing down: the executor process, its workers and
  /// their registered RDMA buffers stay alive, so a repeat allocation of
  /// the same shape by the same tenant revives in `warm_pool_revive`
  /// instead of paying sandbox spawn + buffer registration + worker
  /// spawn. Pooled sandboxes hold their host memory reservation (the
  /// provider-funded cost of keep-alive; clients are not billed for it).
  std::uint32_t warm_pool_capacity = 0;

  /// Predictive eviction (the SeBS keep-alive model): the pool keeps a
  /// per-function histogram of observed idle times between retire and
  /// revive; a pooled sandbox's keep-alive horizon is this quantile of
  /// its function's idle distribution, clamped to the bounds below.
  /// Functions with no history yet get the max (optimistic start).
  double warm_pool_quantile = 0.99;
  /// Safety factor on the predicted horizon: idle gaps jitter, and a gap
  /// marginally above every previous observation would otherwise always
  /// evict. The padded horizon trades a little held memory for not
  /// cold-starting a tenant whose cadence drifted a few percent.
  double warm_pool_horizon_margin = 1.5;
  Duration warm_pool_min_keepalive = 1_s;
  Duration warm_pool_max_keepalive = 120_s;
  Duration warm_pool_sweep_period = 1_s;

  /// Reviving a pooled sandbox on a warm hit: rebind the allocation and
  /// signal the worker threads (process and registrations are live).
  Duration warm_pool_revive = 50_us;

  /// How often executor managers flush accounting to the billing DB.
  Duration billing_flush_period = 2_s;

  /// Shards of the resource manager's allocation core. 1 reproduces the
  /// single lock-protected manager exactly; N > 1 splits the executor
  /// population over N registries with power-of-two-choices routing and
  /// cross-shard work stealing (src/rfaas/sharded_manager.hpp), so lease
  /// grant/renew/expiry only ever contends on one shard.
  unsigned manager_shards = 1;

  /// Ingress admission control (token bucket + WFQ early shed); disabled
  /// by default — see AdmissionConfig above.
  AdmissionConfig admission{};

  /// Data-plane fault tolerance (deadlines/retries/hedging/breakers);
  /// disabled by default — see FaultToleranceConfig above.
  FaultToleranceConfig fault_tolerance{};

  /// Tenant worker quota (0 = no quota policy). When a lease request is
  /// denied for lack of capacity, the manager evicts leases of tenants
  /// holding more than this many workers (LeaseTerminated pushed to the
  /// executor and the owning client) and retries the placement once —
  /// quota-pressure fast reclamation (docs/FAULT_TOLERANCE.md).
  std::uint32_t tenant_quota_workers = 0;

  /// Period of the shard rebalance sweep (0 = disabled). Each sweep
  /// migrates executor registrations from the fullest shard to the
  /// emptiest while the max/min schedulable-capacity skew exceeds
  /// `rebalance_max_skew`, at most `rebalance_max_moves` moves per sweep.
  Duration rebalance_period = 0;
  double rebalance_max_skew = 1.5;
  unsigned rebalance_max_moves = 4;
  /// Storm-aware backoff of the periodic rebalance sweep: a sweep is
  /// skipped while the manager's eviction counter rose since the last
  /// one (an eviction storm is reshaping load — migrating executors
  /// mid-storm would evict yet more leases into the chaos and chase a
  /// moving skew). Manual rebalance_now() calls are never skipped.
  bool rebalance_storm_backoff = true;

  /// Journal every manager state transition (grant/renew/release/expiry/
  /// eviction/registration/drain/death/migration) to an append-only
  /// replicated log (src/rfaas/journal.hpp) that warm standby replicas
  /// replay into an identical in-memory state (src/rfaas/replica.hpp).
  /// Off by default: standalone managers with no standby attached would
  /// only pay the append for nothing. Harness scenarios with a standby
  /// and the failover suites turn it on.
  bool journal_enabled = false;

  /// Snapshot cadence of the journaling primary: once the retained log
  /// grows past this many records, the manager folds the prefix into a
  /// fresh snapshot (ShardedResourceManager::export_state), re-offers it
  /// to attached standbys and truncates the log behind it, bounding log
  /// memory and replay time. 0 = never snapshot (the log only grows).
  std::uint64_t journal_snapshot_every = 4096;

  /// Executor re-registration attempts after its manager session dies
  /// (manager crash/failover). 0 keeps the pre-HA behaviour: the session
  /// loss is permanent and the executor waits to be reaped. Each attempt
  /// bumps the registration epoch, so a zombie primary's stale session
  /// is fenced by the epoch machinery.
  unsigned executor_reconnect_attempts = 0;

  /// Backoff between executor re-registration attempts.
  Duration executor_reconnect_backoff = 50_ms;

  /// Lease scheduling policy and its knobs.
  SchedulingPolicy scheduling = SchedulingPolicy::RoundRobin;
  /// Seed of the randomized policies (power-of-two-choices); placements
  /// are fully deterministic for a fixed seed.
  std::uint64_t scheduler_seed = 42;
  /// Power-of-two-choices: prefer an executor in the client's topology
  /// group (rack) when exactly one of the two sampled candidates is local.
  bool scheduler_locality = true;

  SandboxModel bare_metal{};
  SandboxModel docker{2700_ms, 50, 650, 1.7};

  BillingRates billing{};

  [[nodiscard]] const SandboxModel& sandbox(SandboxType t) const {
    return t == SandboxType::Docker ? docker : bare_metal;
  }
};

}  // namespace rfs::rfaas

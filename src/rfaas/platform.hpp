// Back-compat deployment facade over rfs::cluster::Harness: assembles a
// complete rFaaS installation — engine, fabric, TCP overlay, resource
// manager, N spot executors with their lightweight allocators, and client
// hosts — mirroring the paper's 4-node, 2x 18-core Xeon, 100 Gb/s RoCEv2
// evaluation platform. New scenario code should use the harness and its
// declarative ScenarioSpec directly (src/cluster/harness.hpp).
#pragma once

#include <memory>

#include "cluster/harness.hpp"

namespace rfs::rfaas {

struct PlatformOptions {
  unsigned spot_executors = 2;
  unsigned cores_per_executor = 36;   // two 18-core Xeon Gold 6154
  std::uint64_t memory_per_executor = 64ull << 30;
  unsigned client_hosts = 1;
  unsigned cores_per_client = 36;
  Config config{};

  [[nodiscard]] cluster::ScenarioSpec to_scenario() const {
    cluster::ScenarioSpec spec;
    spec.executors = {{spot_executors, cores_per_executor, memory_per_executor}};
    spec.client_hosts = client_hosts;
    spec.cores_per_client = cores_per_client;
    spec.config = config;
    return spec;
  }
};

class Platform {
 public:
  explicit Platform(PlatformOptions options = {}) : harness_(options.to_scenario()) {}

  /// Spawns the resource manager and executor managers, then runs the
  /// engine briefly so registration completes.
  void start() { harness_.start(); }

  [[nodiscard]] cluster::Harness& harness() { return harness_; }
  [[nodiscard]] sim::Engine& engine() { return harness_.engine(); }
  [[nodiscard]] fabric::Fabric& fabric() { return harness_.fabric(); }
  [[nodiscard]] net::TcpNetwork& tcp() { return harness_.tcp(); }
  [[nodiscard]] FunctionRegistry& registry() { return harness_.registry(); }
  [[nodiscard]] const Config& config() const { return harness_.config(); }
  [[nodiscard]] ResourceManager& rm() { return harness_.rm(); }

  [[nodiscard]] std::size_t executor_count() const { return harness_.executor_count(); }
  [[nodiscard]] ExecutorManager& executor(std::size_t i) { return harness_.executor(i); }
  [[nodiscard]] sim::Host& executor_host(std::size_t i) { return harness_.executor_host(i); }

  [[nodiscard]] sim::Host& client_host(std::size_t i) { return harness_.client_host(i); }
  [[nodiscard]] fabric::Device& client_device(std::size_t i) {
    return harness_.client_device(i);
  }

  /// Builds an invoker bound to client host `i`.
  std::unique_ptr<Invoker> make_invoker(std::size_t client_host = 0,
                                        std::uint32_t client_id = 1) {
    return harness_.make_invoker(client_host, client_id);
  }

  /// Runs the engine until no events remain (or `until` when nonzero).
  void run(Time until = 0) { harness_.run(until); }

 private:
  cluster::Harness harness_;
};

}  // namespace rfs::rfaas

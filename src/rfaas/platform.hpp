// Deployment helper: assembles a complete rFaaS installation — engine,
// fabric, TCP overlay, resource manager, N spot executors with their
// lightweight allocators, and client hosts — mirroring the paper's
// 4-node, 2x 18-core Xeon, 100 Gb/s RoCEv2 evaluation platform.
#pragma once

#include <memory>
#include <vector>

#include "rfaas/executor.hpp"
#include "rfaas/invoker.hpp"
#include "rfaas/resource_manager.hpp"

namespace rfs::rfaas {

struct PlatformOptions {
  unsigned spot_executors = 2;
  unsigned cores_per_executor = 36;   // two 18-core Xeon Gold 6154
  std::uint64_t memory_per_executor = 64ull << 30;
  unsigned client_hosts = 1;
  unsigned cores_per_client = 36;
  Config config{};
};

class Platform {
 public:
  explicit Platform(PlatformOptions options = {});
  ~Platform();

  /// Spawns the resource manager and executor managers, then runs the
  /// engine briefly so registration completes.
  void start();

  [[nodiscard]] sim::Engine& engine() { return engine_; }
  [[nodiscard]] fabric::Fabric& fabric() { return *fabric_; }
  [[nodiscard]] net::TcpNetwork& tcp() { return *tcp_; }
  [[nodiscard]] FunctionRegistry& registry() { return registry_; }
  [[nodiscard]] const Config& config() const { return options_.config; }
  [[nodiscard]] ResourceManager& rm() { return *rm_; }

  [[nodiscard]] std::size_t executor_count() const { return executors_.size(); }
  [[nodiscard]] ExecutorManager& executor(std::size_t i) { return *executors_.at(i); }
  [[nodiscard]] sim::Host& executor_host(std::size_t i) { return *executor_hosts_.at(i); }

  [[nodiscard]] sim::Host& client_host(std::size_t i) { return *client_hosts_.at(i); }
  [[nodiscard]] fabric::Device& client_device(std::size_t i) { return *client_devices_.at(i); }

  /// Builds an invoker bound to client host `i`.
  std::unique_ptr<Invoker> make_invoker(std::size_t client_host = 0, std::uint32_t client_id = 1);

  /// Runs the engine until no events remain (or `until` when nonzero).
  void run(Time until = 0);

 private:
  PlatformOptions options_;
  sim::Engine engine_;
  std::unique_ptr<fabric::Fabric> fabric_;
  std::unique_ptr<net::TcpNetwork> tcp_;
  FunctionRegistry registry_;

  std::unique_ptr<sim::Host> rm_host_;
  fabric::Device* rm_device_ = nullptr;
  std::unique_ptr<ResourceManager> rm_;

  std::vector<std::unique_ptr<sim::Host>> executor_hosts_;
  std::vector<fabric::Device*> executor_devices_;
  std::vector<std::unique_ptr<ExecutorManager>> executors_;

  std::vector<std::unique_ptr<sim::Host>> client_hosts_;
  std::vector<fabric::Device*> client_devices_;
};

}  // namespace rfs::rfaas

// Warm standby replica of the resource manager (HA, ROADMAP #2).
//
// A StandbyReplica owns a journal-less ShardedResourceManager core and
// keeps it in lockstep with a journaling primary: it installs a digest-
// verified snapshot (ShardedResourceManager::export_state) and then
// replays the primary's journal records in seq order, verifying the
// chained checksum record by record. Replay is pure delta application —
// no placement policy, routing RNG or quota logic re-runs — so a record
// that does not apply cleanly means divergence and is surfaced as an
// Error instead of being papered over.
//
// On primary death the replica's exported state seeds a promoted
// ResourceManager under a bumped manager epoch (resource_manager.hpp);
// the replica object itself stays passive — it is state, not a server.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>

#include "rfaas/journal.hpp"
#include "rfaas/sharded_manager.hpp"

namespace rfs::rfaas {

/// Replays a primary's snapshot + journal stream into an identical
/// in-memory manager state. Thread-safe: apply() may be called straight
/// from a Journal sink while other threads read accessors.
class StandbyReplica {
 public:
  /// The core is built from `config` with journaling disabled (a standby
  /// re-journaling replayed records would double the log; the promoted
  /// manager starts a fresh journal for its own standbys).
  explicit StandbyReplica(const Config& config);

  /// Installs a snapshot: verifies the offer's digest and lease count
  /// against `state`, rebuilds the core from scratch and fast-forwards
  /// the replay cursor to offer.upto_seq. A torn or stale snapshot
  /// (digest mismatch) is rejected without touching the current state.
  Status install_snapshot(const ShardedResourceManager::ManagerState& state,
                          const SnapshotOfferMsg& offer, Time now);

  /// Replays one record: checks seq continuity (records already covered
  /// by the snapshot or an earlier apply are benign duplicates; a gap is
  /// an error), verifies the checksum chain, applies the delta. After a
  /// snapshot install the chain re-seeds from the first record streamed
  /// on top of it.
  Status apply(const JournalRecordMsg& record);

  /// Decodes one wire-encoded JournalRecord frame and applies it (the
  /// replication-stream entry point; keeps the wire roundtrip honest).
  Status apply_wire(std::span<const std::uint8_t> raw);

  /// Replays a Journal::serialize()d log (full verification inside
  /// deserialize, then per-record apply). Records at or below the
  /// current cursor are skipped.
  Status replay(std::span<const std::uint8_t> serialized_log);

  /// Seq of the last record folded into the core (snapshot or apply).
  [[nodiscard]] std::uint64_t applied_seq() const;
  /// Manager epoch of the last installed snapshot (0 = none yet).
  [[nodiscard]] std::uint32_t snapshot_epoch() const;

  /// The replica's manager core (read-mostly; promotion exports it).
  [[nodiscard]] const ShardedResourceManager& core() const { return *core_; }

  /// Canonical state of the core — what a promoted manager restores,
  /// and what the replay-equivalence tests compare against the primary.
  [[nodiscard]] ShardedResourceManager::ManagerState export_state() const {
    return core_->export_state();
  }

 private:
  static Config standby_config(Config config) {
    config.journal_enabled = false;
    return config;
  }

  Config config_;
  std::unique_ptr<ShardedResourceManager> core_;
  mutable std::mutex mu_;
  std::uint64_t applied_seq_ = 0;
  std::uint64_t last_checksum_ = 0;
  /// True while last_checksum_ is the verified chain value. From-genesis
  /// replicas start true (seed 0); a snapshot install clears it (the
  /// chain value at upto_seq is unknown) and the first streamed record
  /// re-seeds it.
  bool chain_known_ = true;
  std::uint32_t snapshot_epoch_ = 0;
};

}  // namespace rfs::rfaas

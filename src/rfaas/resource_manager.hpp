// Resource manager (Sec. III-A/III-B).
//
// The manager optimizes the FaaS control plane by splitting allocation
// from invocation: clients involve it exactly once per allocation to
// acquire a *lease* on a spot executor; all warm and hot invocations
// bypass it entirely. Executor state (capacity, heartbeats, reclamation)
// lives in ExecutorRegistry; every placement decision flows through the
// pluggable Scheduler (src/rfaas/scheduler.hpp) selected by Config. The
// manager also hosts the billing database updated by executor managers
// with RDMA atomics.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "net/tcp.hpp"
#include "rdmalib/connection.hpp"
#include "rfaas/billing.hpp"
#include "rfaas/config.hpp"
#include "rfaas/protocol.hpp"
#include "rfaas/scheduler.hpp"
#include "sim/host.hpp"

namespace rfs::rfaas {

class ResourceManager {
 public:
  ResourceManager(sim::Engine& engine, fabric::Fabric& fabric, net::TcpNetwork& tcp,
                  sim::Host& host, fabric::Device& device, Config config);

  /// Starts the TCP control server, the RDMA billing listener and the
  /// heartbeat loop.
  void start();
  void stop();

  [[nodiscard]] std::uint16_t port() const { return port_; }
  [[nodiscard]] std::uint16_t rdma_port() const { return rdma_port_; }
  [[nodiscard]] fabric::Device& device() { return device_; }
  [[nodiscard]] const Config& config() const { return config_; }
  [[nodiscard]] BillingDatabase& billing() { return billing_; }

  /// Introspection for tests and benches.
  [[nodiscard]] const ExecutorRegistry& registry() const { return registry_; }
  [[nodiscard]] std::size_t registered_executors() const { return registry_.size(); }
  [[nodiscard]] std::size_t alive_executors() const { return registry_.alive_count(); }
  [[nodiscard]] std::size_t active_leases() const { return leases_.size(); }
  [[nodiscard]] std::uint32_t free_workers_total() const {
    return registry_.free_workers_total();
  }
  [[nodiscard]] const Scheduler& scheduler() const { return *scheduler_; }

  /// Committed placements in grant order (first kPlacementLogCap only);
  /// lets tests assert policy behavior (e.g. round-robin reproducing the
  /// seed order) and benches compute placement balance.
  static constexpr std::size_t kPlacementLogCap = 1 << 16;
  [[nodiscard]] const std::vector<Placement>& placement_log() const { return placement_log_; }

 private:
  struct Lease {
    std::uint64_t id = 0;
    std::uint32_t client_id = 0;
    std::size_t executor_index = 0;
    std::uint32_t workers = 0;
    std::uint64_t memory_bytes = 0;  // total
    Time expires_at = 0;
  };

  sim::Task<void> run_server();
  sim::Task<void> handle_stream(std::shared_ptr<net::TcpStream> stream);
  sim::Task<void> run_billing_accept();
  sim::Task<void> heartbeat_loop();

  Bytes grant_lease(const LeaseRequestMsg& req, std::uint32_t client_locality);
  void reclaim_lease(std::uint64_t lease_id);
  void reclaim_expired(Time now);
  void mark_executor_dead(std::size_t index);

  sim::Engine& engine_;
  fabric::Fabric& fabric_;
  net::TcpNetwork& tcp_;
  sim::Host& host_;
  fabric::Device& device_;
  Config config_;

  std::uint16_t port_ = 6000;
  std::uint16_t rdma_port_ = 6001;
  bool alive_ = false;

  fabric::ProtectionDomain* pd_ = nullptr;
  BillingDatabase billing_;
  std::vector<std::unique_ptr<rdmalib::Connection>> billing_conns_;

  ExecutorRegistry registry_;
  std::unique_ptr<Scheduler> scheduler_;
  std::map<std::uint64_t, Lease> leases_;
  std::uint64_t next_lease_id_ = 1;
  std::vector<Placement> placement_log_;
};

}  // namespace rfs::rfaas

// Resource manager (Sec. III-A/III-B).
//
// The manager optimizes the FaaS control plane by splitting allocation
// from invocation: clients involve it exactly once per allocation to
// acquire a *lease* on a spot executor; all warm and hot invocations
// bypass it entirely. All allocation state lives in the sharded core
// (src/rfaas/sharded_manager.hpp): per-shard ExecutorRegistry + pluggable
// Scheduler, power-of-two shard routing and cross-shard work stealing.
// With Config::manager_shards == 1 (the default) the core degenerates to
// the classic single lock-protected manager.
//
// The serialization a real manager pays — one critical section per lease
// decision — is modeled by per-shard grant gates: every LeaseRequest
// holds its routed shard's gate for `lease_processing`, so a single-shard
// manager processes grants strictly one at a time while an N-shard
// manager sustains N concurrent decisions. That contention difference is
// exactly what fig02's large-fleet comparison measures.
//
// The manager also hosts the billing database updated by executor
// managers with RDMA atomics.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "net/tcp.hpp"
#include "rdmalib/connection.hpp"
#include "rfaas/admission.hpp"
#include "rfaas/billing.hpp"
#include "rfaas/config.hpp"
#include "rfaas/protocol.hpp"
#include "rfaas/replica.hpp"
#include "rfaas/scheduler.hpp"
#include "rfaas/sharded_manager.hpp"
#include "sim/host.hpp"
#include "sim/sync.hpp"

namespace rfs::rfaas {

class ResourceManager {
 public:
  ResourceManager(sim::Engine& engine, fabric::Fabric& fabric, net::TcpNetwork& tcp,
                  sim::Host& host, fabric::Device& device, Config config);

  /// Starts the TCP control server, the RDMA billing listener and the
  /// heartbeat loop.
  void start();
  void stop();

  // ---- Replication / failover (docs/FAULT_TOLERANCE.md) ----

  /// Crash fault injection: kills the manager abruptly — listeners shut
  /// down AND every established control/notification stream closes, the
  /// way a dead process's sockets do. Clients and executors observe the
  /// closure and run their reconnect paths against the promoted standby.
  void crash();

  /// Zombie fault injection: the manager stops accepting new connections
  /// (a partition from everything that would redial) but keeps serving
  /// its established streams — the stale-primary scenario the epoch
  /// fencing must defeat.
  void isolate();

  /// Seeds a fresh (not yet start()ed) manager from a standby's exported
  /// state under a bumped manager epoch: the promotion path. Rebuilds
  /// the per-device registration-epoch fence from the restored executor
  /// table, so the old primary's sessions stay fenced.
  Status adopt(const ShardedResourceManager::ManagerState& state, std::uint32_t epoch);

  /// Attaches a warm standby: installs a digest-verified snapshot of the
  /// current state, then streams every subsequent journal record to it
  /// through the wire encoding (encode -> apply_wire), keeping the
  /// replica in lockstep. Requires Config::journal_enabled.
  Status attach_standby(std::shared_ptr<StandbyReplica> standby);

  /// Current manager epoch (1 at first boot; promotion installs old + 1).
  [[nodiscard]] std::uint32_t manager_epoch() const { return manager_epoch_; }
  /// True when this manager was seeded from a standby via adopt().
  [[nodiscard]] bool restored() const { return restored_; }
  /// LeaseRevalidate requests answered (failover lease re-validation).
  [[nodiscard]] std::uint64_t revalidations() const { return revalidations_; }
  /// Periodic journal snapshots folded + re-offered to the standbys.
  [[nodiscard]] std::uint64_t snapshots_taken() const { return snapshots_taken_; }
  /// Journal records a standby failed to apply (replication divergence).
  [[nodiscard]] std::uint64_t replication_errors() const { return replication_errors_; }
  /// Executors re-attached in place (leases preserved) after a failover.
  [[nodiscard]] std::uint64_t reattached_executors() const { return reattached_executors_; }

  [[nodiscard]] std::uint16_t port() const { return port_; }
  [[nodiscard]] std::uint16_t rdma_port() const { return rdma_port_; }
  [[nodiscard]] fabric::Device& device() { return device_; }
  [[nodiscard]] const Config& config() const { return config_; }
  [[nodiscard]] BillingDatabase& billing() { return billing_; }

  /// Introspection for tests and benches. `registry()`/`scheduler()`
  /// view shard 0 — the whole manager when manager_shards == 1; use
  /// `core()` for per-shard state of a sharded manager.
  [[nodiscard]] const ShardedResourceManager& core() const { return core_; }
  [[nodiscard]] const ExecutorRegistry& registry() const { return core_.registry(0); }
  [[nodiscard]] const Scheduler& scheduler() const { return core_.scheduler(0); }
  [[nodiscard]] std::size_t registered_executors() const { return core_.size(); }
  [[nodiscard]] std::size_t alive_executors() const { return core_.alive_count(); }
  [[nodiscard]] std::size_t active_leases() const { return core_.active_leases(); }
  [[nodiscard]] std::uint32_t free_workers_total() const { return core_.free_workers_total(); }
  [[nodiscard]] std::uint32_t total_workers() const { return core_.total_workers(); }

  /// Committed placements in per-shard grant order (first kPlacementLogCap
  /// per shard only); lets tests assert policy behavior (e.g. round-robin
  /// reproducing the seed order) and benches compute placement balance.
  static constexpr std::size_t kPlacementLogCap = ShardedResourceManager::kPlacementLogCap;
  [[nodiscard]] std::vector<Placement> placement_log() const { return core_.placement_log(); }

  // ---- Manager-initiated reclamation (docs/FAULT_TOLERANCE.md) ----

  /// Terminates the given leases ahead of their deadlines: capacity
  /// returns to the pool immediately and LeaseTerminated is pushed to
  /// each hosting executor (sandbox teardown) and each owning client's
  /// notification stream. Returns how many leases were actually live.
  std::size_t evict_leases(const std::vector<std::uint64_t>& lease_ids,
                           TerminationReason reason);

  /// Drains the executor registered for fabric device `device`: all its
  /// leases are evicted (reason Drain) and it receives no further
  /// placements. Returns the number of evicted leases, or nullopt when
  /// no alive executor is registered for that device.
  std::optional<std::size_t> drain_executor_on_device(std::uint32_t device);

  /// Runs one rebalance sweep now (also runs periodically when
  /// Config::rebalance_period > 0): migrates executor registrations from
  /// the fullest shard to the emptiest and evicts (reason Rebalance) the
  /// active leases of every migrated executor.
  ShardedResourceManager::RebalanceReport rebalance_now();

  /// Periodic rebalance sweeps skipped by the storm-aware backoff
  /// (Config::rebalance_storm_backoff): rounds in which the eviction
  /// counter was still rising when the sweep came due.
  [[nodiscard]] std::uint64_t rebalance_sweeps_skipped() const { return rebalance_skips_; }

  /// Eviction-notification coalescing: total evicted leases announced,
  /// and how many push messages carried them. A sweep that evicts N
  /// leases hosted on one executor and owned by one client costs two
  /// messages (one batched LeasesTerminated per stream), not 2N.
  [[nodiscard]] std::uint64_t evictions_notified() const { return evictions_notified_; }
  [[nodiscard]] std::uint64_t notification_messages() const { return notification_messages_; }

  /// Ingress admission control (Config::admission): the token-bucket +
  /// WFQ early-shed layer every LeaseRequest/BatchAllocate passes before
  /// any shard lock or eviction work. Mutable access lets tests and
  /// benches adjust tenant weights/rates mid-run.
  [[nodiscard]] Admission& admission() { return admission_; }
  [[nodiscard]] const Admission& admission() const { return admission_; }
  /// Requests shed at admission (LeaseDenied{Overload} replies).
  [[nodiscard]] std::uint64_t admission_sheds() const { return admission_.sheds(); }

  /// Retransmitted requests answered from the per-stream dedup table
  /// instead of re-running the decision (each hit is a double-grant or
  /// double-release that did not happen).
  [[nodiscard]] std::uint64_t dedup_hits() const { return dedup_hits_; }
  /// Re-registrations refused because a newer epoch already owns the
  /// device (stale-session fencing).
  [[nodiscard]] std::uint64_t fenced_registrations() const { return fenced_registrations_; }

  /// Client HealthReport messages processed (each one = a circuit-breaker
  /// trip some client observed against an executor).
  [[nodiscard]] std::uint64_t health_reports() const { return health_reports_; }
  /// Executors drained because their trip count reached
  /// FaultToleranceConfig::quarantine_trips.
  [[nodiscard]] std::uint64_t quarantined_executors() const { return quarantined_executors_; }

 private:
  sim::Task<void> run_server();
  sim::Task<void> handle_stream(std::shared_ptr<net::TcpStream> stream);
  sim::Task<void> run_billing_accept();
  sim::Task<void> heartbeat_loop();
  sim::Task<void> rebalance_loop();

  /// Pushes termination notices to each hosting executor's registration
  /// stream and each owning client's notification stream. Notices to the
  /// same stream coalesce into one LeasesTerminated message per sweep (a
  /// single eviction keeps the legacy LeaseTerminated form).
  void notify_evictions(const std::vector<ShardedResourceManager::Eviction>& evictions,
                        TerminationReason reason);

  /// Builds the reply for one lease request; sets `stolen` when the
  /// placement was stolen from another shard (the caller bills the
  /// second decision scan).
  Bytes grant_lease(const LeaseRequestMsg& req, std::uint32_t client_locality,
                    std::uint32_t shard, bool& stolen);

  /// Builds the BatchGranted reply for one batched allocation; sets
  /// `extra_shards` to the number of shards beyond the routed one the
  /// batch touched (the caller bills one extra decision scan each).
  Bytes grant_batch(const BatchAllocateMsg& req, std::uint32_t client_locality,
                    std::uint32_t shard, std::uint32_t& extra_shards);
  void mark_executor_dead(std::uint64_t executor_id);

  /// The RegisterOk reply (billing window + rdma port) shared by fresh
  /// registrations and failover re-attachments.
  Bytes make_register_ok(std::uint64_t request_id);

  /// Folds the journal prefix into a snapshot and re-offers it to every
  /// standby once the retained log outgrows Config::journal_snapshot_every
  /// (heartbeat cadence; no-op without a journal).
  void maybe_snapshot();

  sim::Engine& engine_;
  fabric::Fabric& fabric_;
  net::TcpNetwork& tcp_;
  sim::Host& host_;
  fabric::Device& device_;
  Config config_;

  std::uint16_t port_ = 6000;
  std::uint16_t rdma_port_ = 6001;
  bool alive_ = false;

  fabric::ProtectionDomain* pd_ = nullptr;
  BillingDatabase billing_;
  std::vector<std::unique_ptr<rdmalib::Connection>> billing_conns_;

  ShardedResourceManager core_;
  /// Ingress admission: evaluated before routing, shard gates, or any
  /// eviction work — the cheap early-shed path.
  Admission admission_;
  /// One FIFO gate per shard: the simulated critical section of a lease
  /// decision (grant and renew both pass through it).
  std::vector<std::unique_ptr<sim::Mutex>> grant_gates_;

  /// Notification streams by client id (SubscribeEvents): where
  /// LeaseTerminated pushes for that tenant's leases go.
  std::map<std::uint32_t, std::shared_ptr<net::TcpStream>> subscribers_;
  /// Current executor id per registration stream. Rebalance migrations
  /// re-tag an executor's id, so heartbeat acks and disconnects resolve
  /// the id through this table instead of a value captured at
  /// registration time.
  std::map<const net::TcpStream*, std::uint64_t> executor_ids_;
  /// Highest registration epoch seen per device, with the executor id it
  /// granted. A RegisterExecutor carrying an older (nonzero) epoch is a
  /// retransmission from a session the executor already abandoned:
  /// refuse it, or the device's capacity would be counted twice.
  struct RegistrationEpoch {
    std::uint64_t epoch = 0;
    std::uint64_t executor_id = 0;
  };
  std::map<std::uint32_t, RegistrationEpoch> executor_epochs_;
  /// Monotonic sequence number per push stream (executor registration and
  /// client notification streams): lets the receiving session discard
  /// duplicated deliveries of eviction pushes.
  std::map<const net::TcpStream*, std::uint64_t> push_seqs_;
  /// Storm-aware backoff state of rebalance_loop(): the eviction count
  /// observed at the end of the previous round, and how many rounds the
  /// backoff skipped because the counter was still rising.
  std::uint64_t rebalance_last_evictions_ = 0;
  std::uint64_t rebalance_skips_ = 0;
  /// Notification-coalescing counters (evicted leases vs push messages).
  std::uint64_t evictions_notified_ = 0;
  std::uint64_t notification_messages_ = 0;
  std::uint64_t dedup_hits_ = 0;
  std::uint64_t fenced_registrations_ = 0;

  /// Gray-failure quarantine state: breaker-trip reports per device (the
  /// trigger counts trips, not raw failures) and the report/drain tallies.
  std::map<std::uint32_t, std::uint32_t> health_trip_counts_;
  std::uint64_t health_reports_ = 0;
  std::uint64_t quarantined_executors_ = 0;

  /// Failover state: the manager epoch every promotion bumps, the warm
  /// standbys fed by the journal sink, and every established server-side
  /// stream (weak — the coroutine frames own them) so crash() can sever
  /// them the way a dying process would.
  std::uint32_t manager_epoch_ = 1;
  bool restored_ = false;
  Time promoted_at_ = 0;
  std::vector<std::shared_ptr<StandbyReplica>> standbys_;
  std::vector<std::weak_ptr<net::TcpStream>> server_streams_;
  std::uint64_t revalidations_ = 0;
  std::uint64_t snapshots_taken_ = 0;
  std::uint64_t replication_errors_ = 0;
  std::uint64_t reattached_executors_ = 0;
};

}  // namespace rfs::rfaas

// Resource manager (Sec. III-A/III-B).
//
// The manager optimizes the FaaS control plane by splitting allocation
// from invocation: clients involve it exactly once per allocation to
// acquire a *lease* on a spot executor; all warm and hot invocations
// bypass it entirely. It tracks spot executors (registration, heartbeats,
// fast reclamation), grants leases round-robin over executors with free
// capacity, and hosts the billing database updated by executor managers
// with RDMA atomics.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "net/tcp.hpp"
#include "rdmalib/connection.hpp"
#include "rfaas/billing.hpp"
#include "rfaas/config.hpp"
#include "rfaas/protocol.hpp"
#include "sim/host.hpp"

namespace rfs::rfaas {

class ResourceManager {
 public:
  ResourceManager(sim::Engine& engine, fabric::Fabric& fabric, net::TcpNetwork& tcp,
                  sim::Host& host, fabric::Device& device, Config config);

  /// Starts the TCP control server, the RDMA billing listener and the
  /// heartbeat loop.
  void start();
  void stop();

  [[nodiscard]] std::uint16_t port() const { return port_; }
  [[nodiscard]] std::uint16_t rdma_port() const { return rdma_port_; }
  [[nodiscard]] fabric::Device& device() { return device_; }
  [[nodiscard]] const Config& config() const { return config_; }
  [[nodiscard]] BillingDatabase& billing() { return billing_; }

  /// Introspection for tests and benches.
  [[nodiscard]] std::size_t registered_executors() const { return executors_.size(); }
  [[nodiscard]] std::size_t alive_executors() const;
  [[nodiscard]] std::size_t active_leases() const { return leases_.size(); }
  [[nodiscard]] std::uint32_t free_workers_total() const;

 private:
  struct ExecutorEntry {
    RegisterExecutorMsg info;
    std::uint32_t free_workers = 0;
    std::uint64_t free_memory = 0;
    bool alive = true;
    Time last_ack = 0;
    std::shared_ptr<net::TcpStream> stream;
  };

  struct Lease {
    std::uint64_t id = 0;
    std::uint32_t client_id = 0;
    std::size_t executor_index = 0;
    std::uint32_t workers = 0;
    std::uint64_t memory_bytes = 0;  // total
    Time expires_at = 0;
  };

  sim::Task<void> run_server();
  sim::Task<void> handle_stream(std::shared_ptr<net::TcpStream> stream);
  sim::Task<void> run_billing_accept();
  sim::Task<void> heartbeat_loop();
  sim::Task<void> lease_expiry(std::uint64_t lease_id, Time expires_at);

  Bytes grant_lease(const LeaseRequestMsg& req);
  void reclaim_lease(std::uint64_t lease_id);
  void mark_executor_dead(std::size_t index);

  sim::Engine& engine_;
  fabric::Fabric& fabric_;
  net::TcpNetwork& tcp_;
  sim::Host& host_;
  fabric::Device& device_;
  Config config_;

  std::uint16_t port_ = 6000;
  std::uint16_t rdma_port_ = 6001;
  bool alive_ = false;

  fabric::ProtectionDomain* pd_ = nullptr;
  BillingDatabase billing_;
  std::vector<std::unique_ptr<rdmalib::Connection>> billing_conns_;

  std::vector<ExecutorEntry> executors_;
  std::size_t rr_next_ = 0;  // round-robin scan start
  std::map<std::uint64_t, Lease> leases_;
  std::uint64_t next_lease_id_ = 1;
};

}  // namespace rfs::rfaas

// Billing database (Sec. IV-C).
//
// "The billing procedure is implemented in a global database associated
// with the resource manager using RDMA atomic fetch-and-add operations,
// providing lightweight allocators with an RDMA-native way of
// accumulating cost results."
//
// The database is an RDMA-registered array of per-tenant counters; each
// executor manager receives the remote address + rkey of the tenant slots
// and flushes accumulated deltas with FetchAdd work requests. The total
// cost is C = Ca*ta + Cc*tc + Ch*th.
#pragma once

#include <cstdint>

#include "rdmalib/buffer.hpp"
#include "rfaas/config.hpp"

namespace rfs::rfaas {

/// Per-tenant accumulators. Units chosen to fit u64 comfortably:
///   allocation: MiB * milliseconds, compute/hot-poll: nanoseconds.
struct TenantUsage {
  std::uint64_t allocation_mib_ms = 0;
  std::uint64_t compute_ns = 0;
  std::uint64_t hot_poll_ns = 0;
};

/// Allocation-component units (Ca's ta) of holding `memory_bytes` for
/// `span` nanoseconds: MiB x milliseconds. Executor managers accrue this
/// incrementally (every billing flush plus the remainder at teardown), so
/// renewed leases are billed for their full lifetime — not just the span
/// the original grant promised.
std::uint64_t allocation_mib_ms(std::uint64_t memory_bytes, Duration span);

class BillingDatabase {
 public:
  static constexpr std::uint32_t kMaxTenants = 256;
  static constexpr std::uint32_t kCountersPerTenant = 3;

  explicit BillingDatabase(fabric::ProtectionDomain& pd);

  /// Remote descriptor of tenant `client_id`'s three counters; handed to
  /// executor managers so they can FetchAdd into them.
  [[nodiscard]] rdmalib::RemoteBuffer tenant_slot(std::uint32_t client_id) const;

  /// Local read of a tenant's accumulated usage.
  [[nodiscard]] TenantUsage usage(std::uint32_t client_id) const;

  /// Total cost in currency units under the given rates:
  /// C = Ca*ta + Cc*tc + Ch*th.
  [[nodiscard]] double cost(std::uint32_t client_id, const BillingRates& rates) const;

 private:
  rdmalib::Buffer<std::uint64_t> counters_;
};

}  // namespace rfs::rfaas

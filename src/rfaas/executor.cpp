#include "rfaas/executor.hpp"

#include <algorithm>
#include <cstring>

#include "common/log.hpp"

namespace rfs::rfaas {

// ---------------------------------------------------------------------------
// Worker
// ---------------------------------------------------------------------------

Worker::Worker(ExecutorManager& mgr, Sandbox& sandbox, std::uint32_t index)
    : mgr_(mgr), sandbox_(sandbox), index_(index) {}

sim::Task<void> Worker::init() {
  // The executor process "accesses the selected RDMA device, registers
  // memory buffers, and creates worker threads pinned to assigned cores"
  // (Sec. III-C, cold invocations).
  pd_ = mgr_.device_.alloc_pd();
  const std::uint64_t out_bytes = mgr_.config_.worker_out_buffer_bytes > 0
                                      ? mgr_.config_.worker_out_buffer_bytes
                                      : mgr_.config_.worker_buffer_bytes;
  // Draw from the manager's buffer freelist when a retired worker left a
  // matching region behind; a new process still pays the (timed) pinning
  // cost, but not the host-side allocation + page-fault churn.
  recv_buf_ = mgr_.take_pooled_buffer(mgr_.config_.worker_buffer_bytes);
  out_buf_ = mgr_.take_pooled_buffer(out_bytes);
  co_await recv_buf_->register_memory_timed(*pd_, fabric::RemoteWrite | fabric::LocalWrite);
  co_await out_buf_->register_memory_timed(*pd_, fabric::LocalWrite);
  co_await sim::delay(mgr_.config_.worker_spawn);
  sim::spawn(mgr_.engine_, run());
}

void Worker::attach_connection(std::unique_ptr<rdmalib::Connection> conn) {
  conn_ = std::move(conn);
  // Client writes may arrive marginally before the first receive is
  // posted; infinite RNR retry parks them instead of erroring.
  conn_->qp()->set_rnr_policy(fabric::RnrPolicy::Wait);
  connected_.set();
}

void Worker::stop() {
  running_ = false;
  connected_.set();
  if (conn_) conn_->close();
}

sim::Task<void> Worker::drain() {
  running_ = false;
  connected_.set();
  // A wedged worker's invocation never completes (injected stuck fault):
  // waiting on done_ would hang the teardown forever, so it is the one
  // in-flight case drain() abandons.
  if (in_flight_ && !wedged_) {
    // An invocation is executing: let it run to completion and write its
    // result back over the still-open connection before closing. run()
    // exits its loop right after (running_ is false) and sets done_.
    ++mgr_.drained_in_flight_;
    co_await done_.wait();
  }
  // Idle (or now-finished) worker: closing flushes pending receives with
  // FlushError, which wakes a hot poller or blocked warm waiter promptly.
  if (conn_) conn_->close();
}

void Worker::rearm() {
  conn_.reset();
  connected_.reset();
  done_.reset();
  running_ = true;
  hot_ = false;
  holds_core_ = false;
  in_flight_ = false;
  wedged_ = false;
  sim::spawn(mgr_.engine_, run());
}

void Worker::surrender_buffers() {
  if (recv_buf_) {
    recv_buf_->deregister();
    mgr_.recycle_buffer(std::move(recv_buf_));
  }
  if (out_buf_) {
    out_buf_->deregister();
    mgr_.recycle_buffer(std::move(out_buf_));
  }
}

void Worker::post_receive() {
  // WRITE_WITH_IMM places the data via the rkey; the receive work request
  // only carries the completion event, so it needs no scatter list.
  (void)conn_->post_recv_empty(served_ + 1);
}

void Worker::release_core_if_held() {
  if (holds_core_) {
    mgr_.host_.release_core();
    holds_core_ = false;
  }
}

sim::Task<void> Worker::run() {
  co_await connected_.wait();
  if (running_ && conn_ != nullptr) {
    post_receive();
    if (sandbox_.policy == InvocationPolicy::HotAlways) {
      co_await mgr_.host_.acquire_core();
      holds_core_ = true;
      hot_ = true;
    }
    const Duration hot_timeout =
        sandbox_.hot_timeout > 0 ? sandbox_.hot_timeout : mgr_.config_.hot_polling_timeout;

    while (running_) {
      if (hot_) {
        // Hot: busy-poll the CQ; the core stays occupied and the polling
        // time is billed as Ch.
        const Time poll_start = mgr_.engine_.now();
        auto wc = co_await conn_->recv_cq().wait_polling_until(poll_start + hot_timeout);
        const Duration polled = mgr_.engine_.now() - poll_start;
        mgr_.account_hot_poll(sandbox_.client_id, polled);
        mgr_.host_.note_busy(polled);
        if (!running_) break;
        if (!wc.has_value()) {
          // Roll back to warm after the configured silence (Sec. III-C).
          if (sandbox_.policy == InvocationPolicy::Adaptive) {
            release_core_if_held();
            hot_ = false;
          }
          continue;
        }
        if (wc->status != fabric::WcStatus::Success) break;
        in_flight_ = true;
        co_await execute_and_reply(*wc, true);
        in_flight_ = false;
      } else {
        // Warm: block on the completion channel; pay wake-up + re-arm and
        // the local resource check with the allocator, then acquire the
        // core (rejecting under oversubscription, Fig. 6).
        auto wc = co_await conn_->wait_recv_blocking();
        if (!running_) break;
        if (wc.status != fabric::WcStatus::Success) break;
        // The invocation's bytes already landed in recv_buf_; from here it
        // must run to completion even if a teardown starts concurrently.
        in_flight_ = true;
        co_await sim::delay(mgr_.config_.warm_rearm + mgr_.config_.warm_resource_check);
        holds_core_ = mgr_.host_.try_acquire_core();
        co_await execute_and_reply(wc, false);
        in_flight_ = false;
        if (holds_core_) {
          if (sandbox_.policy == InvocationPolicy::Adaptive) {
            hot_ = true;  // enter hot polling on the held core
          } else {
            release_core_if_held();
          }
        }
      }
    }
  }
  release_core_if_held();
  done_.set();
}

namespace {

/// Slack the deadline guard reserves for the reply's wire + wake-up
/// latency: an execution admitted by the guard deterministically lands
/// its response at the client before the client's deadline fires, so a
/// deadline timeout implies the invocation did not (and will not)
/// execute — the invariant the retry path's zero-double-execution gate
/// rests on.
constexpr Duration kDeadlineMargin = 100_us;

}  // namespace

sim::Task<void> Worker::execute_and_reply(const fabric::Wc& wc, bool hot) {
  sandbox_.last_invocation = mgr_.engine_.now();
  const auto& sb_model = mgr_.config_.sandbox(sandbox_.type);
  const std::uint32_t invocation_id = Imm::invocation_id(wc.imm);
  const std::uint16_t fn_index = Imm::fn_index(wc.imm);
  const CodePackage* code =
      fn_index < sandbox_.codes.size() ? sandbox_.codes[fn_index] : nullptr;
  bool rejected = !hot && !holds_core_;

  // Injected executor fault, drawn before any timed work so the RNG
  // stream depends only on the seed and the dispatch order (replayable
  // from RFS_CHAOS_SEED like link faults).
  net::WorkerFaultInjector::Decision fault;
  if (mgr_.worker_faults_ != nullptr) fault = mgr_.worker_faults_->decide(mgr_.device_.id());

  // Worker crash: the process dies before user code runs — no reply, no
  // execution, the connection drops. Only the client's deadline (or a
  // flushed CQ) surfaces this.
  if (fault.crash) {
    running_ = false;
    if (conn_) conn_->close();
    co_return;
  }

  // Stuck sandbox: the invocation wedges forever. Teardown must not
  // wait for it (drain() checks wedged_) and the warm pool never adopts
  // its sandbox (poolable()).
  if (fault.stuck) {
    wedged_ = true;
    co_await wedge_.wait();  // never set: parked until simulation end
    co_return;
  }

  // Gray slowness: a pre-dispatch stall (host alive but degraded).
  // Injected before the deadline guard so a pause that overruns the
  // client's deadline becomes a deadline drop — never a late execution
  // racing the client's retry.
  if (fault.gray_delay > 0) co_await sim::delay(fault.gray_delay);

  // Dispatch: header parse + function lookup (+ virtualized NIC cost).
  const Duration dispatch =
      mgr_.config_.executor_dispatch +
      (hot ? sb_model.hot_invocation_overhead : sb_model.warm_invocation_overhead);
  co_await sim::delay(dispatch);

  const auto header = InvocationHeader::unpack(recv_buf_->raw());
  const std::uint32_t input_size =
      wc.byte_len >= InvocationHeader::kSize
          ? wc.byte_len - static_cast<std::uint32_t>(InvocationHeader::kSize)
          : 0;
  const std::uint64_t tag = header.invocation_tag;

  // Modelled execution time is known up front (the simulation charges it
  // in virtual time), which lets the deadline guard below prove whether
  // this invocation can still answer in time.
  Duration compute = 0;
  if (code != nullptr) {
    double multiplier = 1.0;
    if (sandbox_.type == SandboxType::Docker) {
      multiplier = code->docker_compute_multiplier > 0.0 ? code->docker_compute_multiplier
                                                         : sb_model.compute_multiplier;
    }
    compute = static_cast<Duration>(
        static_cast<double>(code->compute_time(input_size)) * multiplier);
  }

  bool dropped = false;

  // Hedge-loser cancellation parked on the manager beat us to dispatch.
  if (tag != 0 && mgr_.consume_cancel(tag)) {
    ++mgr_.cancelled_drops_;
    rejected = true;
    dropped = true;
  }

  // Deadline guard: if the modelled execution cannot complete — with a
  // margin covering the reply's flight — before the client's deadline,
  // the client has (or will have) timed out and retried elsewhere.
  // Executing now would be the classic retry double-execution; drop.
  if (!dropped && header.deadline != 0 &&
      mgr_.engine_.now() + compute + kDeadlineMargin > header.deadline) {
    ++mgr_.deadline_drops_;
    rejected = true;
    dropped = true;
  }

  // Request integrity: a checksum mismatch means the payload was mangled
  // in flight; reject rather than execute garbage bytes.
  if (!dropped && header.checksum != 0 &&
      payload_checksum(recv_buf_->raw() + InvocationHeader::kSize, input_size) !=
          header.checksum) {
    rejected = true;
    dropped = true;
  }

  std::uint32_t out_len = 0;
  std::uint32_t reply_csum = 0;
  const ExecutorManager::DedupEntry* dup =
      (!dropped && tag != 0) ? mgr_.dedup_find(tag) : nullptr;
  if (dup != nullptr) {
    // Idempotent replay: this tag already executed on this manager (a
    // retry or hedge twin). Return the stored clean result without
    // running user code again.
    out_len = static_cast<std::uint32_t>(dup->output.size());
    std::memcpy(out_buf_->raw(), dup->output.data(), out_len);
    reply_csum = dup->checksum12;
    rejected = false;
    ++mgr_.dedup_replays_;
    ++served_;
  } else if (!rejected && code != nullptr) {
    if (mgr_.worker_faults_ != nullptr) (void)mgr_.worker_faults_->note_execution(tag);
    const CodePackage& pkg = *code;
    // Run the real user code on the real bytes...
    out_len = pkg.entry(recv_buf_->raw() + InvocationHeader::kSize, input_size, out_buf_->raw());
    // ...and charge its modelled duration in virtual time.
    if (compute > 0) co_await mgr_.host_.compute_on_held_core(compute);
    mgr_.account_compute(sandbox_.client_id, compute + dispatch);
    ++served_;
    // Stamp the reply checksum and store the clean result for replay
    // BEFORE any injected corruption: the client detects the flipped
    // bytes by the mismatch, and its same-worker retry replays the
    // stored clean copy instead of re-executing.
    if (header.checksum != 0) reply_csum = fold12(payload_checksum(out_buf_->raw(), out_len));
    if (tag != 0) mgr_.dedup_record(tag, reply_csum, out_buf_->raw(), out_len);
    if (fault.corrupt && out_len > 0) {
      out_buf_->raw()[0] ^= 0xFF;
      out_buf_->raw()[out_len - 1] ^= 0xFF;
    }
  } else {
    ++rejected_;
  }

  // Re-post the receive before replying so the next request finds it.
  post_receive();

  // Write the result (or the rejection notice) directly into the client's
  // memory using the header's address and access key.
  rdmalib::RemoteBuffer dst{header.result_addr, header.result_rkey, out_len};
  const std::uint32_t imm =
      Imm::result(invocation_id, rejected || code == nullptr, reply_csum);
  const bool inline_ok = out_len <= mgr_.fabric_.model().max_inline;
  auto st = conn_->post_write_imm(out_buf_->sge_data(out_len), dst, imm, invocation_id,
                                  inline_ok);
  if (!st.ok()) {
    log::warn("worker", "result write failed: ", st.error().message);
    co_return;
  }
  auto send_wc = co_await conn_->wait_send_polling();
  if (send_wc.status != fabric::WcStatus::Success) {
    log::debug("worker", "result delivery failed: ", to_string(send_wc.status));
  }
}

// ---------------------------------------------------------------------------
// IdleHistory
// ---------------------------------------------------------------------------

Duration IdleHistory::quantile(double q) const {
  std::array<Duration, kWindow> sorted{};
  std::copy_n(samples_.begin(), count_, sorted.begin());
  std::sort(sorted.begin(), sorted.begin() + count_);
  q = std::clamp(q, 0.0, 1.0);
  const auto idx = static_cast<std::size_t>(q * static_cast<double>(count_ - 1) + 0.5);
  return sorted[idx];
}

namespace {

/// Histogram key of a sandbox: its tenant plus its primary
/// (first-installed) function. Idle behaviour is a property of how ONE
/// tenant drives a function image — mixing tenants would let a bursty
/// client's short gaps shrink the keep-alive horizon of a slow-cadence
/// one (and vice versa), exactly the cross-tenant interference the
/// per-function SeBS eviction model avoids.
std::string function_key(const Sandbox& sb) {
  return std::to_string(sb.client_id) + '/' +
         (sb.codes.empty() ? std::string{} : sb.codes.front()->name);
}

}  // namespace

// ---------------------------------------------------------------------------
// ExecutorManager
// ---------------------------------------------------------------------------

ExecutorManager::ExecutorManager(sim::Engine& engine, fabric::Fabric& fabric,
                                 net::TcpNetwork& tcp, sim::Host& host, fabric::Device& device,
                                 Config config, const FunctionRegistry& registry)
    : engine_(engine),
      fabric_(fabric),
      tcp_(tcp),
      host_(host),
      device_(device),
      config_(std::move(config)),
      registry_(registry) {
  pd_ = device_.alloc_pd();
  billing_scratch_ = std::make_unique<rdmalib::Buffer<std::uint64_t>>(8);
  (void)billing_scratch_->register_memory(*pd_, fabric::LocalWrite);
}

void ExecutorManager::start(fabric::DeviceId rm_device, std::uint16_t rm_port) {
  alive_ = true;
  sim::spawn(engine_, run_alloc_server());
  sim::spawn(engine_, run_rdma_accept());
  sim::spawn(engine_, register_with_rm(rm_device, rm_port));
  sim::spawn(engine_, billing_flush_loop());
  sim::spawn(engine_, reaper_loop());
  // Only schedule the sweep when the pool exists: with the pool disabled
  // (the default) the manager's event pattern is exactly the seed's.
  if (config_.warm_pool_capacity > 0) sim::spawn(engine_, warm_pool_sweeper());
}

void ExecutorManager::stop(bool crash) {
  alive_ = false;
  std::vector<std::uint64_t> ids;
  for (auto& [id, sb] : sandboxes_) ids.push_back(id);
  for (auto id : ids) {
    auto it = sandboxes_.find(id);
    if (it == sandboxes_.end()) continue;
    Sandbox& sb = *it->second;
    sb.dead = true;
    for (auto& w : sb.workers) w->stop();
    graveyard_.push_back(std::move(it->second));
    sandboxes_.erase(it);
  }
  while (!warm_pool_.empty()) {
    auto sb = std::move(warm_pool_.front());
    warm_pool_.pop_front();
    host_.release_memory(sb->memory_bytes);
    graveyard_.push_back(std::move(sb));
  }
  if (rm_stream_) rm_stream_->close();
  (void)crash;  // a graceful stop and a crash differ only in notifications,
                // which stop sending either way once alive_ is false
}

std::size_t ExecutorManager::live_sandboxes() const {
  std::size_t n = 0;
  for (const auto& [id, sb] : sandboxes_) {
    if (!sb->dead) ++n;
  }
  return n;
}

Sandbox* ExecutorManager::find_sandbox(std::uint64_t id) {
  auto it = sandboxes_.find(id);
  return it == sandboxes_.end() ? nullptr : it->second.get();
}

void ExecutorManager::account_compute(std::uint32_t client_id, Duration d) {
  pending_usage_[client_id].compute_ns += d;
}

void ExecutorManager::account_hot_poll(std::uint32_t client_id, Duration d) {
  pending_usage_[client_id].hot_poll_ns += d;
}

void ExecutorManager::account_allocation(std::uint32_t client_id, std::uint64_t mib_ms) {
  pending_usage_[client_id].allocation_mib_ms += mib_ms;
}

sim::Task<void> ExecutorManager::run_alloc_server() {
  auto& listener = tcp_.listen(device_.id(), alloc_port_);
  while (alive_) {
    auto stream = co_await listener.accept();
    if (stream == nullptr) break;
    sim::spawn(engine_, handle_stream(std::move(stream)));
  }
}

sim::Task<void> ExecutorManager::handle_stream(std::shared_ptr<net::TcpStream> stream) {
  while (alive_) {
    auto raw = co_await stream->recv();
    if (!raw.has_value()) break;
    auto type = peek_type(*raw);
    if (!type) {
      stream->send(encode_lease_error("malformed message"));
      continue;
    }
    switch (type.value()) {
      case MsgType::AllocationRequest: {
        auto req = decode_allocation_request(*raw);
        if (!req) {
          stream->send(encode_lease_error(req.error().message));
          break;
        }
        auto reply = co_await allocate_sandbox(req.value());
        stream->send(encode(reply));
        break;
      }
      case MsgType::SubmitCode: {
        auto req = decode_submit_code(*raw);
        if (!req) {
          stream->send(encode_lease_error(req.error().message));
          break;
        }
        Sandbox* sb = find_sandbox(req.value().sandbox_id);
        if (sb == nullptr || sb->dead) {
          stream->send(encode_lease_error("unknown sandbox"));
          break;
        }
        auto pkg = registry_.find(req.value().function_name);
        if (!pkg) {
          stream->send(encode_lease_error(pkg.error().message));
          break;
        }
        // Warm-pool payoff: a revived sandbox still has the library
        // installed from its previous life — return the existing index
        // and skip the dlopen + relocation cost entirely.
        auto installed = std::find(sb->codes.begin(), sb->codes.end(), pkg.value());
        if (installed != sb->codes.end()) {
          SubmitCodeOkMsg ok;
          ok.fn_index = static_cast<std::uint16_t>(installed - sb->codes.begin());
          stream->send(encode(ok));
          break;
        }
        // Install the shipped library: dlopen + relocation cost scales
        // with the code size (which already paid its wire cost).
        co_await sim::delay(config_.code_install_base +
                            config_.code_install_per_kb * (req.value().code_size / 1024));
        sb->codes.push_back(pkg.value());
        SubmitCodeOkMsg ok;
        ok.fn_index = static_cast<std::uint16_t>(sb->codes.size() - 1);
        stream->send(encode(ok));
        break;
      }
      case MsgType::Deallocate: {
        auto req = decode_deallocate(*raw);
        if (!req) {
          stream->send(encode_lease_error(req.error().message));
          break;
        }
        Sandbox* sb = find_sandbox(req.value().sandbox_id);
        if (sb != nullptr && !sb->dead) {
          co_await teardown_sandbox(*sb, /*notify_rm=*/true);
        }
        stream->send(encode(MsgType::DeallocateOk));
        break;
      }
      case MsgType::InvocationCancel: {
        // Hedge-loser suppression: fire-and-forget (no reply — the
        // canceller is racing the invocation and never waits on us).
        // Parking the tag is enough: a dispatch that has not started yet
        // consumes it and drops; one already past dispatch is absorbed
        // by the dedup table on the client's side instead.
        auto req = decode_invocation_cancel(*raw);
        if (req) note_cancel(req.value().invocation_tag);
        break;
      }
      default:
        stream->send(encode_lease_error("unexpected message type"));
        break;
    }
  }
}

sim::Task<AllocationReplyMsg> ExecutorManager::allocate_sandbox(const AllocationRequestMsg& req) {
  co_await sim::delay(config_.allocation_processing);
  AllocationReplyMsg reply;
  if (!alive_) {
    reply.error = "allocator shutting down";
    co_return reply;
  }
  const std::uint64_t total_memory = req.memory_bytes * req.workers;

  // Warm hit: a pooled sandbox of the same tenant and shape revives in
  // microseconds — the executor process, its installed code and its
  // registered buffers are all still live, so the entire cold path
  // (sandbox spawn, buffer pinning, worker spawn, code install) vanishes.
  if (auto pooled = take_from_pool(req, total_memory)) {
    const Time revive_start = engine_.now();
    Sandbox& sb = *pooled;
    idle_history_[function_key(sb)].record(engine_.now() - sb.pooled_at);
    ++pool_stats_.hits;
    sb.lease_id = req.lease_id;
    sb.policy = static_cast<InvocationPolicy>(req.policy);
    sb.hot_timeout = req.hot_timeout;
    sb.created_at = engine_.now();
    sb.last_invocation = engine_.now();
    sb.billed_until = engine_.now();
    sb.expires_at = req.expires_at;
    sb.pooled_at = 0;
    sb.dead = false;
    co_await sim::delay(config_.warm_pool_revive);
    for (auto& w : sb.workers) {
      // The previous serving loop signalled done_ on exit; awaiting it
      // makes the rearm race-free before resetting the worker state.
      co_await w->done().wait();
      w->rearm();
    }
    const std::uint64_t sid = sb.id;
    const Time expires_at = sb.expires_at;
    sandboxes_[sid] = std::move(pooled);
    allocated_workers_ += req.workers;
    if (expires_at > 0) sim::spawn(engine_, sandbox_expiry(sid, expires_at));
    reply.ok = true;
    reply.sandbox_id = sid;
    reply.rdma_port = rdma_port_;
    reply.spawn_ns = engine_.now() - revive_start;
    co_return reply;
  }
  if (config_.warm_pool_capacity > 0) ++pool_stats_.misses;

  // Cold allocation. Under memory pressure the pool yields first:
  // keep-alive sandboxes are reclaimed oldest-first until the reservation
  // fits (pooled capacity is a cache, never a denial-of-service).
  auto st = host_.reserve_memory(total_memory);
  while (!st.ok() && !warm_pool_.empty()) {
    auto victim = std::move(warm_pool_.front());
    warm_pool_.pop_front();
    ++pool_stats_.pressure_evictions;
    destroy_sandbox_final(std::move(victim));
    st = host_.reserve_memory(total_memory);
  }
  if (!st.ok()) {
    reply.error = st.error().message;
    co_return reply;
  }

  auto sandbox = std::make_unique<Sandbox>();
  Sandbox& sb = *sandbox;
  sb.id = next_sandbox_id_++;
  sb.lease_id = req.lease_id;
  sb.client_id = req.client_id;
  sb.type = static_cast<SandboxType>(req.sandbox);
  sb.policy = static_cast<InvocationPolicy>(req.policy);
  sb.hot_timeout = req.hot_timeout;
  sb.memory_bytes = total_memory;
  sb.created_at = engine_.now();
  sb.last_invocation = engine_.now();
  sb.billed_until = sb.created_at;
  sb.expires_at = req.expires_at;
  sandboxes_[sb.id] = std::move(sandbox);
  const Time spawn_start = engine_.now();

  // Sandbox creation (process start or container boot with SR-IOV).
  co_await sim::delay(config_.sandbox(sb.type).spawn_latency);

  // Workers initialize concurrently: buffer registration + thread spawn.
  sim::WaitGroup wg(req.workers);
  for (std::uint32_t i = 0; i < req.workers; ++i) {
    sb.workers.push_back(std::make_unique<Worker>(*this, sb, i));
    auto init_one = [](Worker* w, sim::WaitGroup* group) -> sim::Task<void> {
      co_await w->init();
      group->done();
    };
    sim::spawn(engine_, init_one(sb.workers.back().get(), &wg));
  }
  co_await wg.wait();

  allocated_workers_ += req.workers;
  if (sb.expires_at > 0) sim::spawn(engine_, sandbox_expiry(sb.id, sb.expires_at));

  reply.ok = true;
  reply.sandbox_id = sb.id;
  reply.rdma_port = rdma_port_;
  reply.spawn_ns = engine_.now() - spawn_start;
  co_return reply;
}

sim::Task<void> ExecutorManager::teardown_sandbox(Sandbox& sb, bool notify_rm) {
  if (sb.dead) co_return;
  sb.dead = true;
  // Graceful drain: a worker that already accepted an invocation finishes
  // it and delivers the result before its connection closes; idle workers
  // close immediately (identical to the pre-drain behaviour).
  for (auto& w : sb.workers) co_await w->drain();

  const bool park = poolable(sb);
  // A parked sandbox keeps its host memory reservation (the keep-alive
  // cost); a destroyed one releases it right away.
  if (!park) host_.release_memory(sb.memory_bytes);
  allocated_workers_ -= static_cast<std::uint32_t>(sb.workers.size());

  // Bill the allocation component Ca: memory reservation x wall time.
  // The flush loop already accrued up to billed_until; charge the tail.
  // Pooled time is NOT billed to the client — keep-alive is funded by the
  // provider in exchange for faster repeat allocations (the SeBS model).
  account_allocation(sb.client_id,
                     allocation_mib_ms(sb.memory_bytes, engine_.now() - sb.billed_until));
  sb.billed_until = engine_.now();
  co_await flush_billing();

  if (notify_rm && rm_stream_ != nullptr && !rm_stream_->closed()) {
    // "When users terminate the allocation before the lease expires,
    // executors notify the manager to include their resources in future
    // allocations" (Sec. III-B). Through the session the release
    // retransmits until the manager acks it (detached: teardown latency
    // must not absorb retransmission timeouts); without a session a lost
    // release is reclaimed by the manager's expiry sweep.
    ReleaseResourcesMsg msg;
    msg.lease_id = sb.lease_id;
    msg.workers = static_cast<std::uint32_t>(sb.workers.size());
    msg.memory_bytes = sb.memory_bytes;
    if (rm_session_ != nullptr && !rm_session_->closed()) {
      auto release = [](std::shared_ptr<Session> session,
                        ReleaseResourcesMsg rel) -> sim::Task<void> {
        rel.request_id = session->next_request_id();
        (void)co_await session->call(encode(rel), rel.request_id);
      };
      sim::spawn(engine_, release(rm_session_, msg));
    } else {
      rm_stream_->send(encode(msg));
    }
  }

  auto it = sandboxes_.find(sb.id);
  std::unique_ptr<Sandbox> owned;
  if (it != sandboxes_.end()) {
    owned = std::move(it->second);
    sandboxes_.erase(it);
  }
  if (owned == nullptr) co_return;

  if (park) {
    sb.pooled_at = engine_.now();
    ++pool_stats_.parked;
    warm_pool_.push_back(std::move(owned));
    if (warm_pool_.size() > config_.warm_pool_capacity) {
      auto victim = std::move(warm_pool_.front());
      warm_pool_.pop_front();
      ++pool_stats_.capacity_evictions;
      destroy_sandbox_final(std::move(victim));
    }
  } else {
    for (auto& w : sb.workers) w->surrender_buffers();
    graveyard_.push_back(std::move(owned));
  }
}

bool ExecutorManager::poolable(const Sandbox& sb) const {
  // A wedged (stuck-fault) worker never completes its invocation, so its
  // sandbox can never be revived — rearm() would wait on done() forever.
  for (const auto& w : sb.workers) {
    if (w->wedged()) return false;
  }
  return alive_ && config_.warm_pool_capacity > 0 && !sb.workers.empty();
}

const ExecutorManager::DedupEntry* ExecutorManager::dedup_find(std::uint64_t tag) const {
  auto it = dedup_.find(tag);
  return it == dedup_.end() ? nullptr : &it->second;
}

void ExecutorManager::dedup_record(std::uint64_t tag, std::uint32_t checksum12,
                                   const std::uint8_t* out, std::uint32_t len) {
  if (dedup_.contains(tag)) return;
  dedup_fifo_.push_back(tag);
  if (dedup_fifo_.size() > kDedupWindow) {
    dedup_.erase(dedup_fifo_.front());
    dedup_fifo_.pop_front();
  }
  DedupEntry& e = dedup_[tag];
  e.checksum12 = checksum12;
  e.output.assign(out, out + len);
}

void ExecutorManager::note_cancel(std::uint64_t tag) {
  if (tag == 0 || !cancelled_tags_.insert(tag).second) return;
  cancel_fifo_.push_back(tag);
  if (cancel_fifo_.size() > kCancelWindow) {
    cancelled_tags_.erase(cancel_fifo_.front());
    cancel_fifo_.pop_front();
  }
}

bool ExecutorManager::consume_cancel(std::uint64_t tag) {
  return cancelled_tags_.erase(tag) != 0;
}

std::unique_ptr<Sandbox> ExecutorManager::take_from_pool(const AllocationRequestMsg& req,
                                                         std::uint64_t total_memory) {
  // Most-recently-parked first: the newest entry has the warmest caches
  // and the longest remaining keep-alive horizon. A sandbox never crosses
  // tenants — the pool match requires the same client, isolation type,
  // worker count and reservation size.
  for (auto it = warm_pool_.rbegin(); it != warm_pool_.rend(); ++it) {
    Sandbox& sb = **it;
    if (sb.client_id != req.client_id) continue;
    if (sb.type != static_cast<SandboxType>(req.sandbox)) continue;
    if (sb.workers.size() != req.workers) continue;
    if (sb.memory_bytes != total_memory) continue;
    auto fwd = std::next(it).base();
    auto owned = std::move(*fwd);
    warm_pool_.erase(fwd);
    return owned;
  }
  return nullptr;
}

void ExecutorManager::destroy_sandbox_final(std::unique_ptr<Sandbox> sb) {
  host_.release_memory(sb->memory_bytes);
  for (auto& w : sb->workers) w->surrender_buffers();
  graveyard_.push_back(std::move(sb));
}

Duration ExecutorManager::keepalive_horizon(const Sandbox& sb) const {
  auto it = idle_history_.find(function_key(sb));
  if (it == idle_history_.end() || it->second.count() == 0) {
    // No history yet: optimistic start, the first idle samples decide.
    return config_.warm_pool_max_keepalive;
  }
  const Duration q = it->second.quantile(config_.warm_pool_quantile);
  const auto padded =
      static_cast<Duration>(static_cast<double>(q) * config_.warm_pool_horizon_margin);
  return std::clamp(padded, config_.warm_pool_min_keepalive, config_.warm_pool_max_keepalive);
}

std::uint64_t ExecutorManager::warm_pool_memory_bytes() const {
  std::uint64_t total = 0;
  for (const auto& sb : warm_pool_) total += sb->memory_bytes;
  return total;
}

sim::Task<void> ExecutorManager::warm_pool_sweeper() {
  // Predictive eviction: a pooled sandbox whose idle time exceeds its
  // function's keep-alive horizon (idle-histogram quantile) is unlikely
  // to be asked for again — reclaim its memory.
  while (alive_) {
    co_await sim::delay(config_.warm_pool_sweep_period);
    if (!alive_) break;
    for (auto it = warm_pool_.begin(); it != warm_pool_.end();) {
      Sandbox& sb = **it;
      if (engine_.now() - sb.pooled_at > keepalive_horizon(sb)) {
        auto victim = std::move(*it);
        it = warm_pool_.erase(it);
        ++pool_stats_.predictive_evictions;
        destroy_sandbox_final(std::move(victim));
      } else {
        ++it;
      }
    }
  }
}

std::unique_ptr<rdmalib::Buffer<std::uint8_t>> ExecutorManager::take_pooled_buffer(
    std::uint64_t bytes) {
  auto it = buffer_pool_.find(bytes);
  if (it != buffer_pool_.end() && !it->second.empty()) {
    auto buf = std::move(it->second.back());
    it->second.pop_back();
    --buffer_pool_count_;
    // Scrub: the region last served another allocation, possibly of a
    // different tenant; a recycled buffer must look freshly zeroed.
    std::memset(buf->raw(), 0, buf->raw_bytes());
    return buf;
  }
  return std::make_unique<rdmalib::Buffer<std::uint8_t>>(bytes);
}

void ExecutorManager::recycle_buffer(std::unique_ptr<rdmalib::Buffer<std::uint8_t>> buf) {
  if (buf == nullptr || buffer_pool_count_ >= kBufferPoolCap) return;
  ++buffer_pool_count_;
  buffer_pool_[buf->payload_bytes()].push_back(std::move(buf));
}

sim::Task<void> ExecutorManager::sandbox_expiry(std::uint64_t sandbox_id, Time expires_at) {
  // The deadline can move: lease renewals (LeaseRenewed pushed by the
  // resource manager) bump Sandbox::expires_at, so on every wake the
  // timer re-reads it and sleeps again instead of reaping.
  Time deadline = expires_at;
  while (true) {
    co_await sim::delay_until(deadline);
    Sandbox* sb = find_sandbox(sandbox_id);
    if (sb == nullptr || sb->dead) co_return;
    if (sb->expires_at > engine_.now()) {
      deadline = sb->expires_at;  // renewed while we slept
      continue;
    }
    log::debug("executor", "lease expired, reclaiming sandbox ", sandbox_id);
    co_await teardown_sandbox(*sb, /*notify_rm=*/false);
    co_return;
  }
}

sim::Task<void> ExecutorManager::run_rdma_accept() {
  auto& listener = fabric_.listen(device_, rdma_port_);
  while (alive_) {
    auto req = co_await listener.accept();
    if (req == nullptr) break;
    ByteReader rd(req->private_data());
    auto sandbox_id = rd.u64();
    auto worker_idx = rd.u32();
    if (!sandbox_id || !worker_idx) {
      req->reject("malformed private data");
      continue;
    }
    Sandbox* sb = find_sandbox(sandbox_id.value());
    if (sb == nullptr || sb->dead || worker_idx.value() >= sb->workers.size()) {
      req->reject("no such worker");
      continue;
    }
    Worker& worker = *sb->workers[worker_idx.value()];
    // Reply with the worker's receive-buffer descriptor so the client can
    // write invocations into it.
    auto remote = worker.recv_buf_->remote();
    ByteWriter w;
    w.u64(remote.addr);
    w.u32(remote.rkey);
    w.u32(remote.length);
    worker.attach_connection(
        rdmalib::Connection::accept(*req, device_, worker.pd_, w.take()));
  }
}

sim::Task<void> ExecutorManager::register_with_rm(fabric::DeviceId rm_device,
                                                  std::uint16_t rm_port) {
  // The session pump below runs until the manager-side stream dies. With
  // Config::executor_reconnect_attempts == 0 that loss is permanent (the
  // pre-HA behaviour); otherwise the executor redials with backoff —
  // after a manager failover the promoted standby re-attaches the
  // registration (leases and sandboxes preserved). Every attempt bumps
  // the registration epoch, so a zombie primary's stale session can
  // never speak for this device again. The attempt budget resets after
  // any successful registration: each distinct manager death gets the
  // full budget, while an unreachable fleet still bounds the loop (the
  // sim engine runs until no events remain).
  unsigned failures = 0;
  while (alive_) {
    const bool registered = co_await register_session(rm_device, rm_port);
    if (registered) failures = 0;
    if (!alive_ || failures >= config_.executor_reconnect_attempts) co_return;
    ++failures;
    co_await sim::delay(config_.executor_reconnect_backoff);
  }
}

sim::Task<bool> ExecutorManager::register_session(fabric::DeviceId rm_device,
                                                  std::uint16_t rm_port) {
  auto stream = co_await tcp_.connect(device_.id(), rm_device, rm_port);
  if (!stream.ok()) {
    log::warn("executor", "cannot reach resource manager: ", stream.error().message);
    co_return false;
  }
  rm_stream_ = stream.value();
  // Registration runs through a retransmitting session: a dropped
  // RegisterExecutor or RegisterOk no longer strands the executor
  // outside the fleet. The epoch stamps this registration attempt so the
  // manager can fence retransmissions from a superseded session.
  SessionOptions session_options;
  session_options.epoch = static_cast<std::uint32_t>(++registration_epoch_);
  rm_session_ = std::make_shared<Session>(engine_, rm_stream_, session_options);

  RegisterExecutorMsg reg;
  reg.device = device_.id();
  reg.alloc_port = alloc_port_;
  reg.rdma_port = rdma_port_;
  reg.cores = host_.cores();
  reg.memory_bytes = host_.memory_bytes();
  reg.epoch = registration_epoch_;
  reg.request_id = rm_session_->next_request_id();

  auto reply = co_await rm_session_->call(encode(reg), reg.request_id);
  if (!reply.ok()) {
    log::warn("executor", "registration failed: ", reply.error().message);
    co_return false;
  }
  auto ok = decode_register_ok(reply.value());
  if (!ok) {
    // Typically a LeaseError push-back: this epoch was fenced by a newer
    // registration session for the same device.
    log::warn("executor", "registration refused: ", ok.error().message);
    co_return false;
  }
  billing_addr_ = ok.value().billing_addr;
  billing_rkey_ = ok.value().billing_rkey;

  // RDMA connection to the resource manager for billing atomics.
  auto conn = co_await rdmalib::Connection::connect(fabric_, device_, pd_, rm_device,
                                                    ok.value().rm_rdma_port);
  if (conn.ok()) {
    rm_conn_ = std::move(conn).take();
  } else {
    log::warn("executor", "billing connection failed: ", conn.error().message);
  }

  // Answer heartbeats and apply lease-renewal pushes for as long as we
  // are alive. Pushes arrive through the session pump, which has already
  // dropped duplicated deliveries of sequenced eviction pushes — a
  // duplicated LeasesTerminated cannot reclaim a fresh sandbox that
  // reused the lease id.
  while (true) {
    auto msg = co_await rm_session_->next_push();
    if (!msg.has_value()) break;
    auto type = peek_type(*msg);
    if (!type.ok() || !alive_) continue;
    if (type.value() == MsgType::Heartbeat) {
      // Acks are periodic and loss-tolerant by design (the liveness
      // window spans multiple heartbeats), so they stay fire-and-forget.
      rm_session_->send_raw(encode(MsgType::HeartbeatAck));
    } else if (type.value() == MsgType::LeaseRenewed) {
      auto renewed = decode_lease_renewed(*msg);
      if (!renewed) continue;
      for (auto& [id, sb] : sandboxes_) {
        if (sb->dead || sb->lease_id != renewed.value().lease_id) continue;
        sb->expires_at = std::max(sb->expires_at, renewed.value().expires_at);
      }
    } else if (type.value() == MsgType::LeaseTerminated) {
      // Manager-initiated reclamation: the lease is already gone on the
      // manager side; tear its sandboxes down now instead of waiting for
      // the (possibly renewed) expiry timer. No ReleaseResources back —
      // the manager returned the capacity when it evicted.
      auto term = decode_lease_terminated(*msg);
      if (!term) continue;
      reclaim_lease(term.value().lease_id);
    } else if (type.value() == MsgType::LeasesTerminated) {
      // Batched form: one message carries every lease the manager evicted
      // from this executor in one sweep.
      auto term = decode_leases_terminated(*msg);
      if (!term) continue;
      for (auto lease_id : term.value().lease_ids) reclaim_lease(lease_id);
    }
  }
  co_return true;  // registered; the pump ended with the session
}

void ExecutorManager::reclaim_lease(std::uint64_t lease_id) {
  std::vector<std::uint64_t> doomed;
  for (auto& [id, sb] : sandboxes_) {
    if (!sb->dead && sb->lease_id == lease_id) doomed.push_back(id);
  }
  for (auto id : doomed) {
    auto kill = [](ExecutorManager* self, std::uint64_t sandbox_id) -> sim::Task<void> {
      Sandbox* sb = self->find_sandbox(sandbox_id);
      if (sb != nullptr && !sb->dead) {
        co_await self->teardown_sandbox(*sb, /*notify_rm=*/false);
      }
    };
    log::debug("executor", "lease ", lease_id,
               " terminated by the manager, reclaiming sandbox ", id);
    sim::spawn(engine_, kill(this, id));
  }
}

sim::Task<void> ExecutorManager::billing_flush_loop() {
  while (alive_) {
    co_await sim::delay(config_.billing_flush_period);
    if (!alive_) break;
    accrue_allocation();
    co_await flush_billing();
  }
}

void ExecutorManager::accrue_allocation() {
  const Time now = engine_.now();
  for (auto& [id, sb] : sandboxes_) {
    if (sb->dead) continue;
    // Bill whole milliseconds only and carry the remainder, so periodic
    // accrual sums to exactly what a single teardown-time charge would.
    const Duration span = now - sb->billed_until;
    const Duration billed = (span / 1'000'000ull) * 1'000'000ull;
    if (billed == 0) continue;
    account_allocation(sb->client_id, allocation_mib_ms(sb->memory_bytes, billed));
    sb->billed_until += billed;
  }
}

sim::Task<void> ExecutorManager::flush_billing() {
  if (rm_conn_ == nullptr || billing_addr_ == 0 || !rm_conn_->alive()) co_return;
  // The gate keeps concurrent flushes (periodic loop vs teardown) from
  // draining each other's completions in the batched poll below.
  co_await billing_flush_gate_.lock();
  for (auto& [client, usage] : pending_usage_) {
    const std::uint64_t deltas[3] = {usage.allocation_mib_ms, usage.compute_ns,
                                     usage.hot_poll_ns};
    const std::uint64_t tenant = client % BillingDatabase::kMaxTenants;
    const std::uint64_t base =
        billing_addr_ + tenant * BillingDatabase::kCountersPerTenant * 8;
    // Chain the non-zero counter updates into a single doorbell and drain
    // their completions in one poll sweep instead of one post + one poll
    // per counter (the fig18 doorbell-batching model).
    std::array<fabric::SendWr, 3> wrs;
    std::size_t n = 0;
    for (int i = 0; i < 3; ++i) {
      if (deltas[i] == 0) continue;
      fabric::SendWr& wr = wrs[n++];
      wr.wr_id = static_cast<std::uint64_t>(i);
      wr.opcode = fabric::Opcode::FetchAdd;
      wr.sge = {{reinterpret_cast<std::uint64_t>(billing_scratch_->data() + i), 8,
                 billing_scratch_->mr()->lkey()}};
      wr.remote_addr = base + static_cast<std::uint64_t>(i) * 8;
      wr.rkey = billing_rkey_;
      wr.swap_or_add = deltas[i];
    }
    if (n == 0) {
      usage = PendingUsage{};
      continue;
    }
    auto st = rm_conn_->post_many({wrs.data(), n});
    if (!st.ok()) {
      billing_flush_gate_.unlock();
      co_return;
    }
    bool failed = false;
    std::size_t drained = 0;
    std::array<fabric::Wc, 3> wcs;
    while (drained < n) {
      const std::size_t got =
          co_await rm_conn_->wait_send_polling_many({wcs.data(), n - drained});
      for (std::size_t k = 0; k < got; ++k) {
        if (wcs[k].status != fabric::WcStatus::Success) failed = true;
      }
      drained += got;
    }
    if (failed) {
      billing_flush_gate_.unlock();
      co_return;
    }
    usage = PendingUsage{};
  }
  billing_flush_gate_.unlock();
}

sim::Task<void> ExecutorManager::reaper_loop() {
  // "removing processes that are idle for a long time or exceed specified
  // time limits" (Sec. III-A).
  while (alive_) {
    co_await sim::delay(std::max<Duration>(config_.executor_idle_timeout / 4, 1_ms));
    if (!alive_) break;
    std::vector<std::uint64_t> idle;
    for (auto& [id, sb] : sandboxes_) {
      if (sb->dead) continue;
      const Time last = std::max(sb->last_invocation, sb->created_at);
      if (engine_.now() - last > config_.executor_idle_timeout) idle.push_back(id);
    }
    for (auto id : idle) {
      Sandbox* sb = find_sandbox(id);
      if (sb != nullptr && !sb->dead) {
        log::debug("executor", "reaping idle sandbox ", id);
        co_await teardown_sandbox(*sb, /*notify_rm=*/true);
      }
    }
  }
}

}  // namespace rfs::rfaas

// Client library: the paper's `rfaas::invoker` programming model
// (Sec. IV-B, Listing 2). The invoker acquires leases from the resource
// manager — serially or batched (BatchAllocate, one round trip for a
// whole multi-lease allocation) — allocates sandboxes on spot executors,
// connects directly to every worker over RDMA, and submits invocations
// that return futures. Rejected warm invocations are transparently
// redirected to another worker (Sec. III-D).
//
// Held leases are tracked in a LeaseSet: an auto-renewal component that
// sends ExtendLease ahead of every expiry (driven by the sim engine's
// clock) so long-lived clients keep their placement instead of paying a
// fresh cold start, and that surfaces renewal-failure/expiry callbacks.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <span>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "net/tcp.hpp"
#include "rdmalib/buffer.hpp"
#include "rdmalib/connection.hpp"
#include "rfaas/config.hpp"
#include "rfaas/health.hpp"
#include "rfaas/protocol.hpp"
#include "rfaas/session.hpp"
#include "sim/host.hpp"
#include "sim/sync.hpp"
#include "sim/timer_wheel.hpp"

namespace rfs::rfaas {

/// Tuning knobs of a LeaseSet.
struct LeaseSetOptions {
  /// A lease is renewed once its remaining validity drops below this.
  Duration renew_margin = 30_s;
  /// Extension requested per renewal; 0 = the lease's original timeout.
  Duration extension = 0;
  /// Self-healing: when a tracked lease is terminated by the manager
  /// (LeaseTerminated push) or lost to expiry/refused renewal, request a
  /// replacement lease of the same shape instead of surfacing a dead
  /// allocation. A replacement grant smaller than the lost lease does
  /// not end the heal: the remainder is re-requested until the lost
  /// worker count is fully replaced (or the budget runs out), and every
  /// partial grant joins the lease chain. Requires subscribe() and
  /// tracked lease shapes.
  bool self_heal = false;
  /// Denied re-allocation requests per lost lease before giving up.
  /// Successful (even partial) grants consume none of the budget — a
  /// partial replacement re-requests its remainder for free.
  unsigned realloc_budget = 4;
  /// Backoff after the first denial; doubles per further denial.
  Duration realloc_backoff = 20_ms;
  /// Honor the retry_after hint of LeaseDenied{Overload}: a heal's
  /// backoff never waits less than the manager asked for, so a mass
  /// eviction cannot turn the heal loops into a retry storm that
  /// amplifies the very overload that caused it.
  bool honor_retry_after = true;
  /// Upward jitter on every heal backoff (fraction of the wait, drawn
  /// uniformly in [0, backoff_jitter]); desynchronizes the heal herd a
  /// fleet-wide eviction creates. 0 disables jitter.
  double backoff_jitter = 0.25;
  /// Seed of the jitter stream; give each client its own so their
  /// jittered waits decorrelate deterministically.
  std::uint64_t jitter_seed = 0x5eed;
};

/// Client-side lease lifecycle tracker: holds the set of live leases,
/// renews each via ExtendLease ahead of its expiry, and reports renewals,
/// renewal failures and expiries through callbacks and counters.
///
/// The renewal actor shares the resource-manager stream with whoever
/// acquired the leases; all request/response pairs on that stream must be
/// serialized through the `request_mutex` passed to bind() (replies carry
/// no correlation id — the stream is strictly request-response).
///
/// Lifetime: the renewal actor only references the internal shared state,
/// so destroying the LeaseSet (or the engine draining detached actors)
/// is always safe.
class LeaseSet {
 public:
  using RenewedFn = std::function<void(std::uint64_t lease_id, Time new_expires_at)>;
  using RenewalFailedFn = std::function<void(std::uint64_t lease_id, const std::string& reason)>;
  using ExpiredFn = std::function<void(std::uint64_t lease_id)>;
  /// Manager-initiated termination received on the notification stream.
  /// `evicted_at` is the manager's decision timestamp — now() minus it is
  /// the client-observed reclamation latency.
  using TerminatedFn =
      std::function<void(std::uint64_t lease_id, TerminationReason reason, Time evicted_at)>;
  /// A lost lease was transparently replaced: `grant` is the new lease
  /// (already tracked). Owners deploy sandboxes/workers onto it here.
  /// Fires once per lost lease; when the replacement was partial, each
  /// further remainder grant fires the chain-extended callback instead
  /// (same signature, `old_lease_id` = the grant it chains off).
  using ReallocatedFn =
      std::function<void(std::uint64_t old_lease_id, const LeaseGrantMsg& grant)>;

  explicit LeaseSet(sim::Engine& engine, LeaseSetOptions options = {});
  ~LeaseSet();

  LeaseSet(const LeaseSet&) = delete;
  LeaseSet& operator=(const LeaseSet&) = delete;

  /// Attaches the resource-manager stream the renewals go over and the
  /// mutex serializing request/response pairs on it (shared so the
  /// renewal actor can outlive the acquiring scope).
  void bind(std::shared_ptr<net::TcpStream> rm_stream, std::shared_ptr<sim::Mutex> request_mutex);

  /// Hardened alternative: renewals, heals and releases go through the
  /// retransmitting session (idempotent request ids, adaptive timeouts)
  /// instead of bare send/recv — the path that survives lossy links.
  void bind(std::shared_ptr<Session> rm_session);

  /// Opens the termination-push channel: sends SubscribeEvents for
  /// `client_id` on `notify_stream` (a dedicated connection to the
  /// resource manager — pushes never share the request stream) and
  /// spawns a listener reacting to LeaseTerminated. Enables self-healing
  /// re-allocation when the options ask for it.
  void subscribe(std::shared_ptr<net::TcpStream> notify_stream, std::uint32_t client_id);

  /// Hardened push channel: the session's pump filters duplicated
  /// eviction pushes (by seq) before they reach the termination handler.
  void subscribe(std::shared_ptr<Session> notify_session, std::uint32_t client_id);

  /// Failover lease re-validation: asks the manager whether each tracked
  /// lease still stands (LeaseRevalidate, read-only on the manager). A
  /// confirmed lease adopts the manager's authoritative deadline; a
  /// refused one was lost in the failover window — it is untracked,
  /// counted as a loss and, when healing is enabled, transparently
  /// re-acquired. Triggered automatically by a FailoverAnnounce push on
  /// the notification stream; callable directly after a reconnect.
  void revalidate();

  /// Replaces the renewal options (margin, extension). Takes effect from
  /// the next renewal decision.
  void configure(LeaseSetOptions options);

  /// Starts tracking a granted lease. `original_timeout` is the grant's
  /// validity (the default renewal extension when options.extension == 0).
  /// `workers`/`memory_per_worker` record the lease's shape — required
  /// for self-healing re-allocation (0 = shape unknown, never healed).
  void track(std::uint64_t lease_id, Time expires_at, Duration original_timeout,
             std::uint32_t workers = 0, std::uint64_t memory_per_worker = 0);

  /// Stops tracking (released/deallocated lease). False when unknown.
  bool untrack(std::uint64_t lease_id);

  /// Current lease id standing in for `origin` (the originally granted
  /// id): self-healing replaces lost leases, so the holder's handle and
  /// the live lease id can diverge. Returns `origin` when never replaced.
  [[nodiscard]] std::uint64_t resolve(std::uint64_t origin) const;

  /// Gives up the lease chain started by `origin`: cancels any
  /// re-allocation in flight (a late replacement grant is released, not
  /// tracked), untracks the current lease and returns its id so the
  /// holder can release it with the manager. Secondary chain leases —
  /// partial heals fan a chain out over several grants — are untracked
  /// and released to the manager directly (ReleaseResources is
  /// fire-and-forget, so no request/response slot is consumed).
  std::uint64_t abandon(std::uint64_t origin);

  /// Spawns the renewal actor (idempotent). bind() must have been called.
  void start();

  /// Stops the renewal actor at its next wake; tracked leases remain.
  void stop();

  /// Lifecycle callbacks. Settable any time; invoked from the renewal,
  /// notification and re-allocation actors.
  void on_renewed(RenewedFn fn);
  void on_renewal_failed(RenewalFailedFn fn);
  void on_expired(ExpiredFn fn);
  void on_terminated(TerminatedFn fn);
  void on_reallocated(ReallocatedFn fn);
  /// Remainder grant of a partial heal joined a chain (deploy a sandbox
  /// onto it, but do not count a second healed lease).
  void on_chain_extended(ReallocatedFn fn);

  [[nodiscard]] std::size_t size() const;
  /// Deadline of the earliest-expiring tracked lease (0 when empty).
  [[nodiscard]] Time earliest_expiry() const;
  /// Successful ExtendLease round trips.
  [[nodiscard]] std::uint64_t renewals() const;
  /// ExtendLease round trips answered with an error (lease unknown, ...).
  [[nodiscard]] std::uint64_t renewal_failures() const;
  /// Tracked leases that reached their deadline without a successful
  /// renewal — each one is a spurious expiry from the holder's view.
  [[nodiscard]] std::uint64_t expiries() const;
  /// Manager-initiated LeaseTerminated pushes received for tracked leases.
  [[nodiscard]] std::uint64_t terminations() const;
  /// Tracked leases lost involuntarily (terminated, expired, or renewal
  /// refused) — the denominator of the self-healing survival rate.
  [[nodiscard]] std::uint64_t losses() const;
  /// Lost leases successfully replaced by a fresh grant.
  [[nodiscard]] std::uint64_t reallocations() const;
  /// Lost leases whose re-allocation budget ran out unreplaced.
  [[nodiscard]] std::uint64_t realloc_failures() const;
  /// Heal requests shed by admission control (LeaseDenied{Overload});
  /// each consumed one unit of its heal's realloc budget and backed off
  /// at least the manager's retry_after hint.
  [[nodiscard]] std::uint64_t overload_denials() const;
  /// Leases confirmed alive by LeaseRevalidate after a failover.
  [[nodiscard]] std::uint64_t revalidations() const;
  /// Tracked leases the (promoted) manager no longer carried at
  /// re-validation — lost in the failover window (counted in losses()
  /// and healed like any other loss).
  [[nodiscard]] std::uint64_t revalidation_losses() const;
  /// FailoverAnnounce pushes observed on the notification stream.
  [[nodiscard]] std::uint64_t failover_announces() const;

 private:
  struct Tracked {
    Time expires_at = 0;
    Duration original_timeout = 0;
    /// Lease shape, for self-healing re-allocation (0 = unknown).
    std::uint32_t workers = 0;
    std::uint64_t memory_per_worker = 0;
    /// First lease id of this chain: replacements keep the origin, so
    /// holders can resolve their original handle to the live lease.
    std::uint64_t origin = 0;
  };
  /// Heap-shared with the renewal actor so the actor can outlive the
  /// LeaseSet object (same pattern as the harness workload counters).
  struct State {
    sim::Engine* engine = nullptr;
    LeaseSetOptions options;
    std::shared_ptr<net::TcpStream> stream;
    std::shared_ptr<sim::Mutex> request_mutex;
    /// Set by the Session bind(); takes precedence over the bare stream.
    std::shared_ptr<Session> session;
    std::map<std::uint64_t, Tracked> leases;
    /// Wakes the sleeping renewal actor early: set by track() (a new
    /// lease may be due sooner than the current sleep target), stop(),
    /// and the actor's own wake-at-deadline helper.
    sim::Event wake;
    bool running = false;
    /// Actor generation: start() bumps it and spawns a loop bound to the
    /// new value, so an actor from before a stop()/start() cycle retires
    /// itself instead of running alongside its replacement.
    std::uint64_t epoch = 0;
    std::uint64_t renewals = 0;
    std::uint64_t renewal_failures = 0;
    std::uint64_t expiries = 0;
    std::uint64_t terminations = 0;
    std::uint64_t losses = 0;
    std::uint64_t reallocations = 0;
    std::uint64_t realloc_failures = 0;
    std::uint64_t overload_denials = 0;
    std::uint64_t revalidated = 0;
    std::uint64_t revalidation_losses = 0;
    std::uint64_t failover_announces = 0;
    /// Jitter stream of the heal backoffs (seeded from the options).
    Rng jitter{0x5eed};
    /// Tenant id the notification subscription (and healing LeaseRequests)
    /// run under; set by subscribe().
    std::uint32_t client_id = 0;
    /// Healing gate, independent of the renewal actor: set by subscribe(),
    /// cleared by stop() and the destructor so in-flight re-allocations
    /// retire instead of touching a torn-down owner.
    bool healing_enabled = false;
    /// Renewal due-times live on a deadline-bucketed timer wheel (shared
    /// data structure with the invocation deadline path); the two maps
    /// translate between wheel timer ids and lease ids. Synced lazily at
    /// the top of every renewal-loop pass.
    sim::TimerWheel renew_wheel;
    std::map<sim::TimerWheel::Id, std::uint64_t> timer_leases;
    std::map<std::uint64_t, sim::TimerWheel::Id> lease_timers;
    /// origin -> current *primary* lease id of every tracked chain (a
    /// partially healed chain may track further secondary leases that
    /// share the origin).
    std::map<std::uint64_t, std::uint64_t> current_of_origin;
    /// In-flight heal actors per origin (secondary losses of the same
    /// chain heal concurrently) / origins canceled mid-heal.
    std::map<std::uint64_t, unsigned> healing;
    std::set<std::uint64_t> canceled;
    RenewedFn renewed_fn;
    RenewalFailedFn renewal_failed_fn;
    ExpiredFn expired_fn;
    TerminatedFn terminated_fn;
    ReallocatedFn reallocated_fn;
    ReallocatedFn chain_extended_fn;
  };

  static sim::Task<void> renew_loop(std::shared_ptr<State> state, std::uint64_t epoch);
  static sim::Task<void> wake_at(std::shared_ptr<State> state, Duration after);
  static sim::Task<void> notify_loop(std::shared_ptr<State> state,
                                     std::shared_ptr<net::TcpStream> stream);
  static sim::Task<void> notify_loop_session(std::shared_ptr<State> state,
                                             std::shared_ptr<Session> session);
  /// Reacts to one termination push (single or batched form).
  static void handle_notification(const std::shared_ptr<State>& state, const Bytes& raw);
  /// One serialized request/reply exchange with the manager: through the
  /// retransmitting session when bound, else bare send/recv under the
  /// legacy mutex. `make` encodes the request with the id it is given
  /// (0 in legacy mode).
  static sim::Task<Result<Bytes>> exchange(std::shared_ptr<State> state,
                                           std::function<Bytes(std::uint64_t)> make);
  /// Hands a lease back to the manager: a retransmitted, acked call in
  /// session mode; fire-and-forget in legacy mode.
  static void send_release(const std::shared_ptr<State>& state, ReleaseResourcesMsg rel);
  static sim::Task<void> release_via_session(std::shared_ptr<Session> session,
                                             ReleaseResourcesMsg rel);
  static sim::Task<void> heal(std::shared_ptr<State> state, std::uint64_t old_id, Tracked lost);
  /// Revalidates every tracked lease against the manager in turn (the
  /// failover path; see revalidate()).
  static sim::Task<void> revalidate_all(std::shared_ptr<State> state);
  /// Spawns heal() for a lost lease when healing is enabled and the
  /// lease's shape is known.
  static void maybe_heal(const std::shared_ptr<State>& state, std::uint64_t old_id,
                         const Tracked& lost);

  std::shared_ptr<State> state_;
};

/// Parameters of an allocation ("clients acquire leases by requesting the
/// desired core count, memory, and timeout", Sec. III-C).
struct AllocationSpec {
  std::string function_name;
  std::uint32_t workers = 1;
  std::uint64_t memory_per_worker = 64 * 1024 * 1024;
  Duration lease_timeout = 300_s;
  SandboxType sandbox = SandboxType::BareMetal;
  InvocationPolicy policy = InvocationPolicy::Adaptive;
  Duration hot_timeout = 0;       ///< 0 = platform default
  std::uint64_t code_size = 0;    ///< 0 = the package's declared size
  bool polling_client = true;     ///< busy-poll for results vs blocking wait
  /// Acquire all leases of this allocation in one BatchAllocate round
  /// trip (best-effort; the invoker still aggregates until `workers` is
  /// reached) instead of one LeaseRequest per partial grant.
  bool batched_leases = false;
  /// Keep the allocation's leases alive past `lease_timeout` by renewing
  /// them through the invoker's LeaseSet.
  bool auto_renew = false;
  /// Renew when a lease's remaining validity drops below this; 0 picks
  /// a quarter of `lease_timeout`.
  Duration renew_margin = 0;
  /// Self-healing allocation: subscribe to manager termination pushes
  /// and, when a lease is reclaimed (eviction, drain, rebalance) or lost
  /// to expiry, transparently re-acquire a lease of the same shape and
  /// redeploy its sandbox + workers, so in-flight workloads migrate
  /// instead of failing. Implies auto-renewal: a self-healing allocation
  /// stays alive until deallocate().
  bool self_heal = false;
  /// Denied re-allocation requests per lost lease before giving up
  /// (successful partial grants consume none of the budget).
  unsigned realloc_budget = 4;
  /// Initial re-allocation backoff (doubles per denial).
  Duration realloc_backoff = 20_ms;
  /// Honor LeaseDenied{Overload} retry_after hints in heal backoffs
  /// (LeaseSetOptions::honor_retry_after).
  bool honor_retry_after = true;
  /// Upward jitter fraction on heal backoffs (0 = none).
  double backoff_jitter = 0.25;
};

/// Client-observed stages of a cold start (Fig. 9).
struct ColdStartBreakdown {
  Duration connect_manager = 0;    // TCP connect to the resource manager
  Duration lease = 0;              // lease request -> grant
  Duration submit_allocation = 0;  // allocator round trip minus spawn
  Duration spawn_workers = 0;      // sandbox + worker creation (executor-measured)
  Duration connect_workers = 0;    // RDMA connections to every worker
  Duration submit_code = 0;        // code shipping + installation
  [[nodiscard]] Duration total() const {
    return connect_manager + lease + submit_allocation + spawn_workers + connect_workers +
           submit_code;
  }
};

/// Outcome of one invocation.
struct InvocationResult {
  bool ok = false;
  bool rejected = false;        // all redirect attempts were rejected
  bool timed_out = false;       // the invocation deadline fired (FT mode)
  bool corrupt = false;         // response failed its checksum (FT mode)
  bool hedge_won = false;       // the hedged backup answered first
  std::uint32_t attempts = 1;   // 1 = no retry was needed
  std::uint32_t output_bytes = 0;
  Time submitted_at = 0;
  Time completed_at = 0;
  [[nodiscard]] Duration latency() const { return completed_at - submitted_at; }
};

class Invoker {
 public:
  /// `device` is the NIC of the client host; the resource manager address
  /// comes from the platform deployment.
  Invoker(sim::Engine& engine, fabric::Fabric& fabric, net::TcpNetwork& tcp, const Config& config,
          fabric::Device& device, fabric::DeviceId rm_device, std::uint16_t rm_port,
          std::uint32_t client_id);
  ~Invoker();

  /// Acquires leases and allocates sandboxes until `spec.workers` function
  /// instances are connected. Records the cold-start breakdown.
  sim::Task<Status> allocate(const AllocationSpec& spec);

  /// Manager failover recovery: redials the resource manager, mints a
  /// fresh session epoch (replies addressed to the dead session's id
  /// space are fenced), rebinds the LeaseSet, re-subscribes the
  /// notification stream when one was active, and re-validates every
  /// held lease against the (possibly promoted) manager.
  sim::Task<Status> reconnect();

  /// Registers an additional function with every allocated sandbox;
  /// returns its function-table index.
  sim::Task<Result<std::uint16_t>> add_function(const std::string& name);

  /// Creates a page-aligned input buffer with the 32-byte rFaaS header.
  template <typename T>
  rdmalib::Buffer<T> input_buffer(std::size_t count) {
    rdmalib::Buffer<T> buf(count, InvocationHeader::kSize);
    (void)buf.register_memory(*pd_, fabric::LocalWrite);
    return buf;
  }

  /// Creates an output buffer the executor writes results into.
  template <typename T>
  rdmalib::Buffer<T> output_buffer(std::size_t count) {
    rdmalib::Buffer<T> buf(count, 0);
    (void)buf.register_memory(*pd_, fabric::RemoteWrite | fabric::LocalWrite);
    return buf;
  }

  /// Submits an invocation of function `fn_index` with `payload_bytes`
  /// from `in` (past the header); the output lands in `out`. Returns a
  /// future fulfilled when the result write arrives.
  template <typename TIn, typename TOut>
  sim::Future<InvocationResult> submit(std::uint16_t fn_index, rdmalib::Buffer<TIn>& in,
                                       std::size_t payload_bytes, rdmalib::Buffer<TOut>& out) {
    return submit_raw(fn_index, in.raw(), in.sge_with_header(payload_bytes),
                      in.mr() != nullptr ? in.mr()->lkey() : 0, out.remote_data());
  }

  /// Convenience: submit and await completion.
  template <typename TIn, typename TOut>
  sim::Task<InvocationResult> invoke(std::uint16_t fn_index, rdmalib::Buffer<TIn>& in,
                                     std::size_t payload_bytes, rdmalib::Buffer<TOut>& out) {
    auto fut = submit(fn_index, in, payload_bytes, out);
    co_return co_await fut.get();
  }

  /// Zero-copy data plane: pre-registers `count` invocation slots (input
  /// with the 32 B header + output), each registered once with the client
  /// PD and recycled per call. With slots reserved, invoke_pooled() never
  /// allocates or registers on the invocation path — the contrast to
  /// per-call buffers, whose registrations serialize on the process's
  /// mmap lock and collapse under fan-out (fig18).
  void reserve_slots(std::size_t count, std::size_t max_input, std::size_t max_output);
  [[nodiscard]] std::size_t slot_count() const { return slot_pool_.size(); }

  /// Fast-path invocation on a pooled slot: copies `payload` into the
  /// slot's registered input region (clipped to the slot size), writes
  /// header + payload to a worker as a single span, and decodes the
  /// result notification without staging. Waits for a free slot when all
  /// are in flight; redirects rejections like submit().
  sim::Task<InvocationResult> invoke_pooled(std::uint16_t fn_index,
                                            std::span<const std::uint8_t> payload);

  /// Releases all sandboxes and leases ("Remote resources are allocated
  /// and deallocated as needed").
  sim::Task<void> deallocate();

  [[nodiscard]] std::uint32_t connected_workers() const {
    return static_cast<std::uint32_t>(workers_.size());
  }
  [[nodiscard]] const ColdStartBreakdown& cold_start() const { return cold_start_; }
  [[nodiscard]] std::uint32_t client_id() const { return client_id_; }
  [[nodiscard]] std::uint64_t total_rejections() const { return rejections_; }
  [[nodiscard]] fabric::ProtectionDomain* pd() { return pd_; }
  /// Leases this invoker currently holds. Mutable access so callers can
  /// install renewal/expiry callbacks.
  [[nodiscard]] LeaseSet& leases() { return *lease_set_; }
  [[nodiscard]] const LeaseSet& leases() const { return *lease_set_; }
  /// Leases acquired by the current allocation (one per sandbox).
  [[nodiscard]] std::size_t lease_count() const { return allocations_.size(); }
  /// Sandboxes redeployed onto self-healed (re-allocated) leases.
  [[nodiscard]] std::uint64_t redeployments() const { return redeployments_; }

 private:
  struct WorkerRef {
    std::unique_ptr<rdmalib::Connection> conn;
    rdmalib::RemoteBuffer remote_buf;
    std::uint64_t max_payload = 0;
    /// Executor identity + control channel, for health scoring and
    /// hedge-loser cancellation (fault-tolerant data plane).
    fabric::DeviceId device = 0;
    std::shared_ptr<net::TcpStream> mgr_stream;
  };

  /// One pre-registered invocation slot of the zero-copy data plane.
  struct InvocationSlot {
    rdmalib::Buffer<std::uint8_t> in;   // 32 B header + input payload
    rdmalib::Buffer<std::uint8_t> out;  // result landing zone
    InvocationSlot(std::size_t max_input, std::size_t max_output)
        : in(max_input, InvocationHeader::kSize), out(max_output) {}
  };

  struct Allocation {
    std::uint64_t lease_id = 0;
    std::uint64_t sandbox_id = 0;
    std::shared_ptr<net::TcpStream> mgr_stream;
  };

  /// Shared fate of one (possibly hedged) fault-tolerant invocation:
  /// every attempt reports in; the first success resolves, and losers
  /// are cancelled on their executor managers.
  struct Hedge {
    sim::Event done;
    bool resolved = false;
    unsigned pending = 0;
    InvocationResult result;
    std::vector<std::size_t> in_flight;  ///< workers of unresolved attempts
  };

  sim::Future<InvocationResult> submit_raw(std::uint16_t fn_index, std::uint8_t* header_ptr,
                                           fabric::Sge sge, std::uint32_t in_lkey,
                                           rdmalib::RemoteBuffer out);
  sim::Task<void> run_submission(std::uint16_t fn_index, std::uint8_t* header_ptr,
                                 fabric::Sge sge, rdmalib::RemoteBuffer out,
                                 sim::Promise<InvocationResult> promise);
  sim::Task<InvocationResult> invoke_on(std::size_t worker, std::uint16_t fn_index,
                                        std::uint8_t* header_ptr, fabric::Sge sge,
                                        rdmalib::RemoteBuffer out, std::uint64_t tag = 0,
                                        Time deadline = 0);
  sim::Task<InvocationResult> invoke_pooled_on(std::size_t worker, std::uint16_t fn_index,
                                               InvocationSlot& slot, std::size_t payload_bytes,
                                               std::uint64_t tag = 0, Time deadline = 0);
  /// Fault-tolerant pooled invocation: per-attempt deadlines, budgeted
  /// retries rotating across healthy workers, same-worker dedup-replay
  /// retry on corruption, optional hedging on the first attempt.
  sim::Task<InvocationResult> invoke_pooled_reliable(std::uint16_t fn_index,
                                                     std::size_t slot_idx,
                                                     std::size_t payload_bytes);
  sim::Task<InvocationResult> run_hedged(std::size_t widx, std::uint16_t fn_index,
                                         std::size_t slot_idx, std::size_t payload_bytes,
                                         std::uint64_t tag, Time deadline);
  sim::Task<void> hedge_attempt(std::shared_ptr<Hedge> hs, std::size_t widx,
                                std::uint16_t fn_index, std::size_t slot_idx,
                                std::size_t payload_bytes, std::uint64_t tag, Time deadline,
                                bool is_backup);
  sim::Task<void> hedge_backup(std::shared_ptr<Hedge> hs, std::uint16_t fn_index,
                               std::size_t primary_slot_idx, std::size_t payload_bytes,
                               std::uint64_t tag, Time deadline,
                               fabric::DeviceId primary_device);
  /// Globally unique idempotent invocation id: (client epoch << 32) | seq.
  std::uint64_t mint_tag();
  /// Pops the next free worker: HalfOpen probes first (an expired Open
  /// breaker admits exactly one), then executors whose breaker admits
  /// traffic; must run after slots_->acquire().
  std::size_t pick_worker();
  /// pick_worker for hedge backups: prefers any device other than the
  /// straggling primary's; falls back to pick_worker().
  std::size_t pick_worker_avoiding(fabric::DeviceId device);
  void release_worker(std::size_t widx);
  /// Post-timeout worker recycling: drains the late/stale completion the
  /// abandoned attempt left behind (bounded wait) before the worker may
  /// rejoin the rotation; dead and wedged workers never rejoin.
  sim::Task<void> reap_worker(std::size_t widx);
  /// Feeds the per-executor health tracker and, on a breaker trip,
  /// reports the executor to the resource manager (quarantine signal).
  void record_outcome(fabric::DeviceId device, bool ok, Duration latency);
  static sim::Task<void> send_health_report(std::shared_ptr<Session> session,
                                            HealthReportMsg msg);
  sim::Task<Status> connect_worker(const LeaseGrantMsg& grant, std::uint64_t sandbox_id,
                                   std::uint32_t index);
  /// Acquires leases totalling up to `remaining` workers: one serial
  /// LeaseRequest (single grant) or one BatchAllocate (many grants).
  sim::Task<Result<std::vector<LeaseGrantMsg>>> acquire_leases(const AllocationSpec& spec,
                                                               std::uint32_t remaining);
  /// Stages 3-5 of a cold start for one granted lease: sandbox
  /// allocation, worker connections, code submission.
  sim::Task<Status> deploy_grant(const AllocationSpec& spec, const LeaseGrantMsg& grant);
  /// Deploys a replacement grant produced by self-healing re-allocation.
  sim::Task<void> redeploy(AllocationSpec spec, LeaseGrantMsg grant);

  sim::Engine& engine_;
  fabric::Fabric& fabric_;
  net::TcpNetwork& tcp_;
  const Config& config_;
  fabric::Device& device_;
  fabric::DeviceId rm_device_;
  std::uint16_t rm_port_;
  std::uint32_t client_id_;

  fabric::ProtectionDomain* pd_ = nullptr;
  std::shared_ptr<net::TcpStream> rm_stream_;
  /// Serializes request/response pairs on rm_stream_ between allocate()
  /// and the LeaseSet's renewal/re-allocation actors.
  std::shared_ptr<sim::Mutex> rm_mutex_;
  /// Hardened request/reply session over rm_stream_ (owns all recv on
  /// it); every lease-critical exchange of this invoker goes through it.
  std::shared_ptr<Session> rm_session_;
  /// Dedicated push channel for LeaseTerminated notifications.
  std::shared_ptr<net::TcpStream> notify_stream_;
  std::shared_ptr<Session> notify_session_;
  /// Session epochs fence stale exchanges across manager reconnects.
  std::uint32_t rm_epoch_ = 0;
  std::unique_ptr<LeaseSet> lease_set_;
  /// Spec that created each self-healing lease, keyed by lease id (the
  /// mapping follows replacements), so a redeploy uses the allocation's
  /// own function/sandbox/policy even across multiple allocate() calls.
  std::map<std::uint64_t, std::shared_ptr<const AllocationSpec>> lease_specs_;
  std::uint64_t redeployments_ = 0;
  std::vector<Allocation> allocations_;
  std::vector<WorkerRef> workers_;
  std::deque<std::size_t> free_workers_;
  std::unique_ptr<sim::Semaphore> slots_;
  std::vector<std::unique_ptr<InvocationSlot>> slot_pool_;
  std::deque<std::size_t> free_slots_;
  std::unique_ptr<sim::Semaphore> slot_sem_;
  bool polling_client_ = true;
  std::uint32_t next_invocation_ = 1;
  std::uint64_t rejections_ = 0;
  ColdStartBreakdown cold_start_;

  /// Fault-tolerant data plane state (all client-side).
  std::map<fabric::DeviceId, HealthTracker> health_;
  std::uint64_t next_tag_seq_ = 0;
  double latency_ewma_ = 0.0;  ///< healthy completions, feeds auto hedge delay
  std::uint64_t retries_ = 0;
  std::uint64_t timeouts_ = 0;
  std::uint64_t corruptions_detected_ = 0;
  std::uint64_t hedges_launched_ = 0;
  std::uint64_t hedge_wins_ = 0;
  std::uint64_t breaker_trips_ = 0;

 public:
  /// FT observability (fig21 + tests).
  [[nodiscard]] std::uint64_t ft_retries() const { return retries_; }
  [[nodiscard]] std::uint64_t ft_timeouts() const { return timeouts_; }
  [[nodiscard]] std::uint64_t ft_corruptions() const { return corruptions_detected_; }
  [[nodiscard]] std::uint64_t hedges_launched() const { return hedges_launched_; }
  [[nodiscard]] std::uint64_t hedge_wins() const { return hedge_wins_; }
  [[nodiscard]] std::uint64_t breaker_trips() const { return breaker_trips_; }
  /// Health tracker of one executor device (nullptr = never observed).
  [[nodiscard]] const HealthTracker* health_of(fabric::DeviceId device) const {
    auto it = health_.find(device);
    return it == health_.end() ? nullptr : &it->second;
  }
};

}  // namespace rfs::rfaas

// Client library: the paper's `rfaas::invoker` programming model
// (Sec. IV-B, Listing 2). The invoker acquires leases from the resource
// manager, allocates sandboxes on spot executors, connects directly to
// every worker over RDMA, and submits invocations that return futures.
// Rejected warm invocations are transparently redirected to another
// worker (Sec. III-D).
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "net/tcp.hpp"
#include "rdmalib/buffer.hpp"
#include "rdmalib/connection.hpp"
#include "rfaas/config.hpp"
#include "rfaas/protocol.hpp"
#include "sim/host.hpp"

namespace rfs::rfaas {

/// Parameters of an allocation ("clients acquire leases by requesting the
/// desired core count, memory, and timeout", Sec. III-C).
struct AllocationSpec {
  std::string function_name;
  std::uint32_t workers = 1;
  std::uint64_t memory_per_worker = 64 * 1024 * 1024;
  Duration lease_timeout = 300_s;
  SandboxType sandbox = SandboxType::BareMetal;
  InvocationPolicy policy = InvocationPolicy::Adaptive;
  Duration hot_timeout = 0;       // 0 = platform default
  std::uint64_t code_size = 0;    // 0 = the package's declared size
  bool polling_client = true;     // busy-poll for results vs blocking wait
};

/// Client-observed stages of a cold start (Fig. 9).
struct ColdStartBreakdown {
  Duration connect_manager = 0;    // TCP connect to the resource manager
  Duration lease = 0;              // lease request -> grant
  Duration submit_allocation = 0;  // allocator round trip minus spawn
  Duration spawn_workers = 0;      // sandbox + worker creation (executor-measured)
  Duration connect_workers = 0;    // RDMA connections to every worker
  Duration submit_code = 0;        // code shipping + installation
  [[nodiscard]] Duration total() const {
    return connect_manager + lease + submit_allocation + spawn_workers + connect_workers +
           submit_code;
  }
};

/// Outcome of one invocation.
struct InvocationResult {
  bool ok = false;
  bool rejected = false;        // all redirect attempts were rejected
  std::uint32_t output_bytes = 0;
  Time submitted_at = 0;
  Time completed_at = 0;
  [[nodiscard]] Duration latency() const { return completed_at - submitted_at; }
};

class Invoker {
 public:
  /// `device` is the NIC of the client host; the resource manager address
  /// comes from the platform deployment.
  Invoker(sim::Engine& engine, fabric::Fabric& fabric, net::TcpNetwork& tcp, const Config& config,
          fabric::Device& device, fabric::DeviceId rm_device, std::uint16_t rm_port,
          std::uint32_t client_id);
  ~Invoker();

  /// Acquires leases and allocates sandboxes until `spec.workers` function
  /// instances are connected. Records the cold-start breakdown.
  sim::Task<Status> allocate(const AllocationSpec& spec);

  /// Registers an additional function with every allocated sandbox;
  /// returns its function-table index.
  sim::Task<Result<std::uint16_t>> add_function(const std::string& name);

  /// Creates a page-aligned input buffer with the 12-byte rFaaS header.
  template <typename T>
  rdmalib::Buffer<T> input_buffer(std::size_t count) {
    rdmalib::Buffer<T> buf(count, InvocationHeader::kSize);
    (void)buf.register_memory(*pd_, fabric::LocalWrite);
    return buf;
  }

  /// Creates an output buffer the executor writes results into.
  template <typename T>
  rdmalib::Buffer<T> output_buffer(std::size_t count) {
    rdmalib::Buffer<T> buf(count, 0);
    (void)buf.register_memory(*pd_, fabric::RemoteWrite | fabric::LocalWrite);
    return buf;
  }

  /// Submits an invocation of function `fn_index` with `payload_bytes`
  /// from `in` (past the header); the output lands in `out`. Returns a
  /// future fulfilled when the result write arrives.
  template <typename TIn, typename TOut>
  sim::Future<InvocationResult> submit(std::uint16_t fn_index, rdmalib::Buffer<TIn>& in,
                                       std::size_t payload_bytes, rdmalib::Buffer<TOut>& out) {
    return submit_raw(fn_index, in.raw(), in.sge_with_header(payload_bytes),
                      in.mr() != nullptr ? in.mr()->lkey() : 0, out.remote_data());
  }

  /// Convenience: submit and await completion.
  template <typename TIn, typename TOut>
  sim::Task<InvocationResult> invoke(std::uint16_t fn_index, rdmalib::Buffer<TIn>& in,
                                     std::size_t payload_bytes, rdmalib::Buffer<TOut>& out) {
    auto fut = submit(fn_index, in, payload_bytes, out);
    co_return co_await fut.get();
  }

  /// Releases all sandboxes and leases ("Remote resources are allocated
  /// and deallocated as needed").
  sim::Task<void> deallocate();

  [[nodiscard]] std::uint32_t connected_workers() const {
    return static_cast<std::uint32_t>(workers_.size());
  }
  [[nodiscard]] const ColdStartBreakdown& cold_start() const { return cold_start_; }
  [[nodiscard]] std::uint32_t client_id() const { return client_id_; }
  [[nodiscard]] std::uint64_t total_rejections() const { return rejections_; }
  [[nodiscard]] fabric::ProtectionDomain* pd() { return pd_; }

 private:
  struct WorkerRef {
    std::unique_ptr<rdmalib::Connection> conn;
    rdmalib::RemoteBuffer remote_buf;
    std::uint64_t max_payload = 0;
  };

  struct Allocation {
    std::uint64_t lease_id = 0;
    std::uint64_t sandbox_id = 0;
    std::shared_ptr<net::TcpStream> mgr_stream;
  };

  sim::Future<InvocationResult> submit_raw(std::uint16_t fn_index, std::uint8_t* header_ptr,
                                           fabric::Sge sge, std::uint32_t in_lkey,
                                           rdmalib::RemoteBuffer out);
  sim::Task<void> run_submission(std::uint16_t fn_index, std::uint8_t* header_ptr,
                                 fabric::Sge sge, rdmalib::RemoteBuffer out,
                                 sim::Promise<InvocationResult> promise);
  sim::Task<InvocationResult> invoke_on(std::size_t worker, std::uint16_t fn_index,
                                        std::uint8_t* header_ptr, fabric::Sge sge,
                                        rdmalib::RemoteBuffer out);
  sim::Task<Status> connect_worker(const LeaseGrantMsg& grant, std::uint64_t sandbox_id,
                                   std::uint32_t index);

  sim::Engine& engine_;
  fabric::Fabric& fabric_;
  net::TcpNetwork& tcp_;
  const Config& config_;
  fabric::Device& device_;
  fabric::DeviceId rm_device_;
  std::uint16_t rm_port_;
  std::uint32_t client_id_;

  fabric::ProtectionDomain* pd_ = nullptr;
  std::shared_ptr<net::TcpStream> rm_stream_;
  std::vector<Allocation> allocations_;
  std::vector<WorkerRef> workers_;
  std::deque<std::size_t> free_workers_;
  std::unique_ptr<sim::Semaphore> slots_;
  bool polling_client_ = true;
  std::uint32_t next_invocation_ = 1;
  std::uint64_t rejections_ = 0;
  ColdStartBreakdown cold_start_;
};

}  // namespace rfs::rfaas

#include "rfaas/platform.hpp"

namespace rfs::rfaas {

Platform::Platform(PlatformOptions options) : options_(std::move(options)) {
  engine_.make_current();
  fabric_ = std::make_unique<fabric::Fabric>(engine_, options_.config.network);
  tcp_ = std::make_unique<net::TcpNetwork>(engine_, fabric_->net());

  rm_host_ = std::make_unique<sim::Host>("rm", 4, 16ull << 30);
  rm_device_ = &fabric_->create_device("rm-nic", rm_host_.get());
  rm_ = std::make_unique<ResourceManager>(engine_, *fabric_, *tcp_, *rm_host_, *rm_device_,
                                          options_.config);

  for (unsigned i = 0; i < options_.spot_executors; ++i) {
    executor_hosts_.push_back(std::make_unique<sim::Host>(
        "spot" + std::to_string(i), options_.cores_per_executor, options_.memory_per_executor));
    executor_devices_.push_back(
        &fabric_->create_device("spot-nic" + std::to_string(i), executor_hosts_.back().get()));
    executors_.push_back(std::make_unique<ExecutorManager>(
        engine_, *fabric_, *tcp_, *executor_hosts_.back(), *executor_devices_.back(),
        options_.config, registry_));
  }

  for (unsigned i = 0; i < options_.client_hosts; ++i) {
    client_hosts_.push_back(std::make_unique<sim::Host>(
        "client" + std::to_string(i), options_.cores_per_client, 64ull << 30));
    client_devices_.push_back(
        &fabric_->create_device("client-nic" + std::to_string(i), client_hosts_.back().get()));
  }
}

Platform::~Platform() = default;

void Platform::start() {
  rm_->start();
  for (auto& e : executors_) {
    e->start(rm_device_->id(), rm_->port());
  }
  // Let registration and billing connections settle before clients move.
  engine_.run_until(engine_.now() + 5_ms);
}

std::unique_ptr<Invoker> Platform::make_invoker(std::size_t client_host,
                                                std::uint32_t client_id) {
  return std::make_unique<Invoker>(engine_, *fabric_, *tcp_, options_.config,
                                   *client_devices_.at(client_host), rm_device_->id(),
                                   rm_->port(), client_id);
}

void Platform::run(Time until) {
  if (until == 0) {
    engine_.run();
  } else {
    engine_.run_until(until);
  }
}

}  // namespace rfs::rfaas

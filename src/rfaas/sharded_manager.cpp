#include "rfaas/sharded_manager.hpp"

#include <algorithm>

namespace rfs::rfaas {

ShardedResourceManager::ShardedResourceManager(const Config& config)
    : locality_sharding_(config.scheduling == SchedulingPolicy::LocalityFirst),
      rng_counter_(config.scheduler_seed) {
  const std::uint32_t n = std::max(1u, config.manager_shards);
  shards_.reserve(n);
  for (std::uint32_t s = 0; s < n; ++s) {
    auto shard = std::make_unique<Shard>();
    // Decorrelate the randomized policies across shards while keeping the
    // whole manager reproducible; shard 0 keeps the configured seed so a
    // single-shard manager is stream-identical to the unsharded one.
    Config shard_config = config;
    shard_config.scheduler_seed = config.scheduler_seed + s;
    shard->scheduler = make_scheduler(shard_config);
    shards_.push_back(std::move(shard));
  }
}

ShardedResourceManager::~ShardedResourceManager() = default;

std::uint64_t ShardedResourceManager::add_executor(ExecutorEntry entry) {
  // LocalityFirst gives every rack a home shard so rack-local routing is
  // a modulo, not a search; all other policies balance round-robin.
  const std::uint32_t s = locality_sharding_
      ? entry.locality % static_cast<std::uint32_t>(shards_.size())
      : static_cast<std::uint32_t>(next_shard_.fetch_add(1, std::memory_order_relaxed) %
                                   shards_.size());
  auto& shard = *shards_[s];
  std::lock_guard<std::shared_mutex> lock(shard.mu);
  const std::uint32_t workers = entry.total_workers;
  const std::size_t local = shard.registry.add(std::move(entry));
  shard.hosted.resize(shard.registry.size());
  shard.free_workers.fetch_add(workers, std::memory_order_relaxed);
  shard.total_workers.fetch_add(workers, std::memory_order_relaxed);
  executor_count_.fetch_add(1, std::memory_order_relaxed);
  return make_id(s, local);
}

std::uint64_t ShardedResourceManager::next_random() {
  // splitmix64: the atomic counter is the state, the mix is pure, so the
  // stream is deterministic single-threaded and race-free multi-threaded.
  return splitmix64(rng_counter_.fetch_add(kSplitmix64Gamma, std::memory_order_relaxed) +
                    kSplitmix64Gamma);
}

std::uint32_t ShardedResourceManager::preferred_shard() {
  const std::uint32_t n = shard_count();
  if (n == 1) return 0;
  const std::uint64_t r = next_random();
  const std::uint32_t a = static_cast<std::uint32_t>(r % n);
  const std::uint32_t b =
      static_cast<std::uint32_t>((a + 1 + (r >> 32) % (n - 1)) % n);
  const auto free_a = shards_[a]->free_workers.load(std::memory_order_relaxed);
  const auto free_b = shards_[b]->free_workers.load(std::memory_order_relaxed);
  return free_a >= free_b ? a : b;
}

std::uint32_t ShardedResourceManager::preferred_shard_for(std::uint32_t client_locality) {
  if (!locality_sharding_ || shard_count() == 1) return preferred_shard();
  const std::uint32_t home = client_locality % shard_count();
  if (shards_[home]->free_workers.load(std::memory_order_relaxed) > 0) return home;
  return preferred_shard();
}

// --------------------------------------------------------------------------
// Lease-table indexes
// --------------------------------------------------------------------------

void ShardedResourceManager::arm_expiry(Shard& shard, Time at, std::uint64_t lease_id) {
  shard.expiry.push_back({at, lease_id});
  std::push_heap(shard.expiry.begin(), shard.expiry.end(), ExpiryLater{});
}

void ShardedResourceManager::index_lease(Shard& shard, std::uint64_t lease_id,
                                         const LeaseRecord& record) {
  shard.leases.emplace(lease_id, record);
  if (shard.hosted.size() <= record.executor) shard.hosted.resize(shard.registry.size());
  shard.hosted[record.executor].insert(lease_id);
  auto& tenant = shard.tenants[record.client_id];
  tenant.held_workers += record.workers;
  tenant.leases.insert(lease_id);
  arm_expiry(shard, record.expires_at, lease_id);
}

std::unordered_map<std::uint64_t, ShardedResourceManager::LeaseRecord>::iterator
ShardedResourceManager::unindex_lease(
    Shard& shard, std::unordered_map<std::uint64_t, LeaseRecord>::iterator it) {
  const LeaseRecord& record = it->second;
  if (record.executor < shard.hosted.size()) shard.hosted[record.executor].erase(it->first);
  auto tenant = shard.tenants.find(record.client_id);
  if (tenant != shard.tenants.end()) {
    tenant->second.held_workers -=
        std::min<std::uint64_t>(tenant->second.held_workers, record.workers);
    tenant->second.leases.erase(it->first);
    if (tenant->second.leases.empty()) shard.tenants.erase(tenant);
  }
  return shard.leases.erase(it);
}

// --------------------------------------------------------------------------
// Grants
// --------------------------------------------------------------------------

std::optional<ShardedResourceManager::Grant> ShardedResourceManager::grant_on(
    std::uint32_t shard_index, const ScheduleRequest& request, std::uint32_t client_id,
    Duration timeout, Time now) {
  auto& shard = *shards_[shard_index];
  std::lock_guard<std::shared_mutex> lock(shard.mu);

  // Same place-and-commit cycle as the single manager: the policy
  // proposes, try_claim revalidates (the executor may have died between
  // scan and grant), refused executors are excluded and the policy asked
  // again until it gives up.
  std::vector<bool> excluded(shard.registry.size(), false);
  while (auto placement = shard.scheduler->place(shard.registry, request, excluded)) {
    if (!shard.registry.try_claim(placement->executor, placement->workers,
                                  placement->memory)) {
      excluded[placement->executor] = true;
      continue;
    }
    shard.free_workers.fetch_sub(placement->workers, std::memory_order_relaxed);

    LeaseRecord record;
    record.client_id = client_id;
    record.executor = placement->executor;
    record.workers = placement->workers;
    record.memory = placement->memory;
    record.expires_at = now + timeout;
    const std::uint64_t lease_id = make_id(shard_index, shard.next_lease++);
    index_lease(shard, lease_id, record);
    shard.lease_count.store(shard.leases.size(), std::memory_order_relaxed);
    if (shard.log.size() < kPlacementLogCap) shard.log.push_back(*placement);

    Grant grant;
    grant.lease_id = lease_id;
    grant.executor = make_id(shard_index, placement->executor);
    grant.shard = shard_index;
    grant.workers = placement->workers;
    grant.memory = placement->memory;
    grant.expires_at = record.expires_at;
    grant.executor_locality = shard.registry.at(placement->executor).locality;
    grant.executor_info = shard.registry.at(placement->executor).info;
    if (grant.executor_locality == request.client_locality) {
      local_grants_.fetch_add(1, std::memory_order_relaxed);
    }
    return grant;
  }
  return std::nullopt;
}

std::optional<ShardedResourceManager::Grant> ShardedResourceManager::grant(
    const ScheduleRequest& request, std::uint32_t client_id, Duration timeout, Time now,
    std::optional<std::uint32_t> routed) {
  // Not value_or(): that would evaluate preferred_shard() — and consume a
  // routing-RNG draw — even when the caller already routed.
  const std::uint32_t first = routed ? *routed : preferred_shard();
  if (auto g = grant_on(first, request, client_id, timeout, now)) {
    grants_.fetch_add(1, std::memory_order_relaxed);
    return g;
  }

  // Work stealing: the routed shard is full (or its survivors cannot fit
  // the request); try every other shard, fullest-free-pool first so the
  // stolen placement lands where capacity actually is.
  std::vector<std::pair<std::int64_t, std::uint32_t>> others;
  others.reserve(shards_.size());
  for (std::uint32_t s = 0; s < shards_.size(); ++s) {
    if (s == first) continue;
    others.emplace_back(shards_[s]->free_workers.load(std::memory_order_relaxed), s);
  }
  std::sort(others.begin(), others.end(), [](const auto& a, const auto& b) {
    return a.first != b.first ? a.first > b.first : a.second < b.second;
  });
  for (const auto& [free, s] : others) {
    if (free <= 0) continue;
    if (auto g = grant_on(s, request, client_id, timeout, now)) {
      g->stolen = true;
      grants_.fetch_add(1, std::memory_order_relaxed);
      steals_.fetch_add(1, std::memory_order_relaxed);
      return g;
    }
  }
  denials_.fetch_add(1, std::memory_order_relaxed);
  return std::nullopt;
}

ShardedResourceManager::BatchGrant ShardedResourceManager::grant_batch(
    const ScheduleRequest& request, std::uint32_t client_id, Duration timeout, Time now,
    bool all_or_nothing, std::optional<std::uint32_t> routed) {
  BatchGrant out;
  batches_.fetch_add(1, std::memory_order_relaxed);

  // Per-shard partial fulfillment: each sub-placement takes whatever the
  // placed executor can give (the schedulers' min(free, requested) rule)
  // and the remainder re-routes — the first one to the caller's routed
  // shard, later ones freshly, so wide batches spread across shards.
  std::uint32_t remaining = request.workers;
  std::vector<bool> touched(shards_.size(), false);
  while (remaining > 0) {
    ScheduleRequest sub = request;
    sub.workers = remaining;
    auto g = grant(sub, client_id, timeout, now, out.grants.empty() ? routed : std::nullopt);
    if (!g) break;  // fleet-wide exhaustion (grant() already counted the denial)
    remaining -= g->workers;
    out.granted_workers += g->workers;
    touched[g->shard] = true;
    out.grants.push_back(std::move(*g));
  }
  for (std::size_t s = 0; s < touched.size(); ++s) {
    if (touched[s]) ++out.shards_touched;
  }
  out.complete = remaining == 0;

  if (!out.complete && all_or_nothing) {
    // Roll the provisional leases back; the scans still happened, so
    // shards_touched keeps billing the decision cost.
    for (const auto& g : out.grants) release(g.lease_id);
    out.grants.clear();
    out.granted_workers = 0;
  }
  return out;
}

// --------------------------------------------------------------------------
// Renew / release / expiry
// --------------------------------------------------------------------------

std::optional<ShardedResourceManager::Renewal> ShardedResourceManager::renew(
    std::uint64_t lease_id, Time new_expires_at) {
  const std::uint32_t s = id_shard(lease_id);
  if (s >= shards_.size()) return std::nullopt;
  auto& shard = *shards_[s];
  std::lock_guard<std::shared_mutex> lock(shard.mu);
  auto it = shard.leases.find(lease_id);
  if (it == shard.leases.end()) return std::nullopt;
  it->second.expires_at = new_expires_at;
  // Re-arm the expiry index in place: the new deadline joins the heap,
  // the superseded entry is discarded when the sweep surfaces it.
  arm_expiry(shard, new_expires_at, lease_id);
  return Renewal{shard.registry.at(it->second.executor).stream};
}

bool ShardedResourceManager::release(std::uint64_t lease_id) {
  const std::uint32_t s = id_shard(lease_id);
  if (s >= shards_.size()) return false;
  auto& shard = *shards_[s];
  std::lock_guard<std::shared_mutex> lock(shard.mu);
  auto it = shard.leases.find(lease_id);
  if (it == shard.leases.end()) return false;
  const LeaseRecord& record = it->second;
  if (shard.registry.at(record.executor).schedulable()) {
    shard.registry.release(record.executor, record.workers, record.memory);
    shard.free_workers.fetch_add(record.workers, std::memory_order_relaxed);
  }
  unindex_lease(shard, it);
  shard.lease_count.store(shard.leases.size(), std::memory_order_relaxed);
  return true;
}

std::size_t ShardedResourceManager::sweep_expired(Time now) {
  std::size_t reclaimed = 0;
  for (auto& shard_ptr : shards_) {
    auto& shard = *shard_ptr;
    std::lock_guard<std::shared_mutex> lock(shard.mu);
    auto& heap = shard.expiry;
    while (!heap.empty() && heap.front().at <= now) {
      std::pop_heap(heap.begin(), heap.end(), ExpiryLater{});
      const ExpiryEntry entry = heap.back();
      heap.pop_back();
      auto it = shard.leases.find(entry.lease_id);
      if (it == shard.leases.end()) continue;    // released/evicted: stale entry
      if (it->second.expires_at > now) continue; // renewed: its re-arm entry is queued
      const LeaseRecord& record = it->second;
      if (shard.registry.at(record.executor).schedulable()) {
        shard.registry.release(record.executor, record.workers, record.memory);
        shard.free_workers.fetch_add(record.workers, std::memory_order_relaxed);
      }
      unindex_lease(shard, it);
      ++reclaimed;
    }
    // Compact once stale entries (renewal churn on long-lived leases)
    // dominate the heap; amortized O(1) per armed deadline.
    if (heap.size() >= 64 && heap.size() > 2 * shard.leases.size()) {
      heap.clear();
      heap.reserve(shard.leases.size());
      for (const auto& [id, record] : shard.leases) heap.push_back({record.expires_at, id});
      std::make_heap(heap.begin(), heap.end(), ExpiryLater{});
    }
    shard.lease_count.store(shard.leases.size(), std::memory_order_relaxed);
  }
  return reclaimed;
}

std::size_t ShardedResourceManager::sweep_expired_scan(Time now) {
  // Pre-index reference: walk every lease of every shard (the seed's
  // sweep). Kept for fig16's before/after and the equivalence tests.
  std::size_t reclaimed = 0;
  for (auto& shard_ptr : shards_) {
    auto& shard = *shard_ptr;
    std::lock_guard<std::shared_mutex> lock(shard.mu);
    for (auto it = shard.leases.begin(); it != shard.leases.end();) {
      if (it->second.expires_at > now) {
        ++it;
        continue;
      }
      const LeaseRecord& record = it->second;
      if (shard.registry.at(record.executor).schedulable()) {
        shard.registry.release(record.executor, record.workers, record.memory);
        shard.free_workers.fetch_add(record.workers, std::memory_order_relaxed);
      }
      it = unindex_lease(shard, it);
      ++reclaimed;
    }
    shard.lease_count.store(shard.leases.size(), std::memory_order_relaxed);
  }
  return reclaimed;
}

// --------------------------------------------------------------------------
// Manager-initiated reclamation
// --------------------------------------------------------------------------

std::optional<ShardedResourceManager::Eviction> ShardedResourceManager::evict(
    std::uint64_t lease_id) {
  const std::uint32_t s = id_shard(lease_id);
  if (s >= shards_.size()) return std::nullopt;
  auto& shard = *shards_[s];
  std::lock_guard<std::shared_mutex> lock(shard.mu);
  auto it = shard.leases.find(lease_id);
  if (it == shard.leases.end()) return std::nullopt;
  const LeaseRecord record = it->second;

  Eviction ev;
  ev.lease_id = lease_id;
  ev.client_id = record.client_id;
  ev.workers = record.workers;
  ev.memory = record.memory;
  auto& entry = shard.registry.at(record.executor);
  ev.executor_stream = entry.stream;
  if (entry.schedulable()) {
    shard.registry.release(record.executor, record.workers, record.memory);
    shard.free_workers.fetch_add(record.workers, std::memory_order_relaxed);
  }
  unindex_lease(shard, it);
  shard.lease_count.store(shard.leases.size(), std::memory_order_relaxed);
  evictions_.fetch_add(1, std::memory_order_relaxed);
  return ev;
}

std::vector<std::uint64_t> ShardedResourceManager::active_lease_ids(std::size_t max) const {
  // Shard-major, ascending per shard (= grant/age order, since per-shard
  // lease counters only grow) — the exact order of the pre-index table.
  std::vector<std::uint64_t> ids;
  for (const auto& shard_ptr : shards_) {
    auto& shard = *shard_ptr;
    std::vector<std::uint64_t> local;
    {
      std::shared_lock<std::shared_mutex> lock(shard.mu);
      local.reserve(shard.leases.size());
      for (const auto& kv : shard.leases) local.push_back(kv.first);
    }
    std::sort(local.begin(), local.end());
    for (std::uint64_t id : local) {
      if (ids.size() >= max) return ids;
      ids.push_back(id);
    }
  }
  return ids;
}

std::vector<ShardedResourceManager::Eviction> ShardedResourceManager::evict_quota_candidates(
    const std::vector<std::pair<std::uint64_t, std::uint32_t>>& candidates,
    std::map<std::uint32_t, std::uint64_t>& held, std::uint32_t requesting_client,
    std::uint32_t quota_workers, std::uint32_t workers_needed) {
  // evict() re-takes its shard's lock and resolves any lease that
  // vanished since the snapshot to a no-op, so the candidates need not
  // be consistent with the live table.
  std::vector<Eviction> out;
  std::uint32_t reclaimed = 0;
  for (const auto& [lease_id, client] : candidates) {
    if (reclaimed >= workers_needed) break;
    if (client == requesting_client) continue;
    auto h = held.find(client);
    if (h == held.end() || h->second <= quota_workers) continue;
    if (auto ev = evict(lease_id)) {
      h->second -= std::min<std::uint64_t>(h->second, ev->workers);
      reclaimed += ev->workers;
      out.push_back(std::move(*ev));
    }
  }
  return out;
}

std::vector<ShardedResourceManager::Eviction> ShardedResourceManager::reclaim_quota(
    std::uint32_t requesting_client, std::uint32_t quota_workers,
    std::uint32_t workers_needed) {
  // O(tenants): the held-worker totals come straight from the per-shard
  // tenant counters (maintained on every grant/release/evict), and only
  // the over-quota tenants' lease lists are materialized as candidates.
  std::map<std::uint32_t, std::uint64_t> held;
  for (const auto& shard_ptr : shards_) {
    auto& shard = *shard_ptr;
    std::shared_lock<std::shared_mutex> lock(shard.mu);
    for (const auto& [client, tenant] : shard.tenants) {
      if (tenant.held_workers > 0) held[client] += tenant.held_workers;
    }
  }

  std::vector<std::uint32_t> offenders;
  for (const auto& [client, total] : held) {
    if (client != requesting_client && total > quota_workers) offenders.push_back(client);
  }
  if (offenders.empty()) return {};

  // One pass (one shared lock) per shard for all offenders — not one
  // per (offender, shard) pair; the sort below restores global order.
  std::vector<std::pair<std::uint64_t, std::uint32_t>> candidates;
  for (const auto& shard_ptr : shards_) {
    auto& shard = *shard_ptr;
    std::shared_lock<std::shared_mutex> lock(shard.mu);
    for (std::uint32_t client : offenders) {
      auto it = shard.tenants.find(client);
      if (it == shard.tenants.end()) continue;
      for (std::uint64_t id : it->second.leases) candidates.emplace_back(id, client);
    }
  }
  // Full lease ids embed the shard in their high bits, so a plain sort
  // restores the shard-major age order the scan variant produced.
  std::sort(candidates.begin(), candidates.end());
  return evict_quota_candidates(candidates, held, requesting_client, quota_workers,
                                workers_needed);
}

std::vector<ShardedResourceManager::Eviction> ShardedResourceManager::reclaim_quota_scan(
    std::uint32_t requesting_client, std::uint32_t quota_workers,
    std::uint32_t workers_needed) {
  // Pre-index reference: snapshot who holds what by walking every lease
  // (O(total leases) per call — the seed's behavior on every denied
  // request). Kept for fig16's before/after and the equivalence tests.
  std::vector<std::pair<std::uint64_t, std::uint32_t>> snapshot;
  std::map<std::uint32_t, std::uint64_t> held;
  for (const auto& shard_ptr : shards_) {
    auto& shard = *shard_ptr;
    std::shared_lock<std::shared_mutex> lock(shard.mu);
    for (const auto& [id, record] : shard.leases) {
      snapshot.emplace_back(id, record.client_id);
      held[record.client_id] += record.workers;
    }
  }
  std::sort(snapshot.begin(), snapshot.end());
  return evict_quota_candidates(snapshot, held, requesting_client, quota_workers,
                                workers_needed);
}

std::uint64_t ShardedResourceManager::tenant_held_workers(std::uint32_t client_id) const {
  std::uint64_t held = 0;
  for (const auto& shard_ptr : shards_) {
    auto& shard = *shard_ptr;
    std::shared_lock<std::shared_mutex> lock(shard.mu);
    auto it = shard.tenants.find(client_id);
    if (it != shard.tenants.end()) held += it->second.held_workers;
  }
  return held;
}

std::uint64_t ShardedResourceManager::evict_hosted_leases(
    Shard& shard, std::size_t local, const std::shared_ptr<net::TcpStream>& stream,
    std::vector<Eviction>& out) {
  std::uint64_t reclaimed_memory = 0;
  std::size_t evicted = 0;
  if (local >= shard.hosted.size()) return 0;
  // O(hosted) via the per-executor index; sorted so eviction records
  // (and the control plane's notification pushes) stay in age order.
  std::vector<std::uint64_t> ids(shard.hosted[local].begin(), shard.hosted[local].end());
  std::sort(ids.begin(), ids.end());
  for (std::uint64_t id : ids) {
    auto it = shard.leases.find(id);
    if (it == shard.leases.end()) continue;
    Eviction ev;
    ev.lease_id = id;
    ev.client_id = it->second.client_id;
    ev.workers = it->second.workers;
    ev.memory = it->second.memory;
    ev.executor_stream = stream;
    reclaimed_memory += it->second.memory;
    out.push_back(std::move(ev));
    unindex_lease(shard, it);
    ++evicted;
  }
  shard.lease_count.store(shard.leases.size(), std::memory_order_relaxed);
  evictions_.fetch_add(evicted, std::memory_order_relaxed);
  return reclaimed_memory;
}

std::vector<ShardedResourceManager::Eviction> ShardedResourceManager::drain_executor(
    std::uint64_t executor_id) {
  const std::uint32_t s = id_shard(executor_id);
  const std::size_t local = static_cast<std::size_t>(id_low(executor_id));
  if (s >= shards_.size()) return {};
  auto& shard = *shards_[s];
  std::lock_guard<std::shared_mutex> lock(shard.mu);
  if (local >= shard.registry.size()) return {};
  auto& entry = shard.registry.at(local);
  if (!entry.schedulable()) return {};

  std::vector<Eviction> out;
  evict_hosted_leases(shard, local, entry.stream, out);

  // The host's whole capacity leaves the schedulable pool: the still-free
  // workers come off the free aggregate (leased ones already did at
  // grant), the full complement off the capacity aggregate.
  shard.free_workers.fetch_sub(entry.free_workers, std::memory_order_relaxed);
  shard.total_workers.fetch_sub(entry.total_workers, std::memory_order_relaxed);
  shard.registry.set_draining(local);
  return out;
}

std::optional<std::uint64_t> ShardedResourceManager::find_executor_by_device(
    std::uint32_t device) const {
  for (std::uint32_t s = 0; s < shards_.size(); ++s) {
    auto& shard = *shards_[s];
    std::shared_lock<std::shared_mutex> lock(shard.mu);
    for (std::size_t i = 0; i < shard.registry.size(); ++i) {
      const auto& e = shard.registry.at(i);
      if (e.alive && e.info.device == device) return make_id(s, i);
    }
  }
  return std::nullopt;
}

ShardedResourceManager::RebalanceReport ShardedResourceManager::rebalance(
    double max_skew, unsigned max_moves, Time now) {
  RebalanceReport report;
  if (shards_.size() < 2) return report;

  auto capacities = [this] {
    std::vector<std::int64_t> caps;
    caps.reserve(shards_.size());
    for (const auto& shard : shards_) {
      caps.push_back(shard->total_workers.load(std::memory_order_relaxed));
    }
    return caps;
  };
  auto skew_of = [](const std::vector<std::int64_t>& caps) {
    const auto [lo, hi] = std::minmax_element(caps.begin(), caps.end());
    return static_cast<double>(std::max<std::int64_t>(0, *hi)) /
           static_cast<double>(std::max<std::int64_t>(1, *lo));
  };
  report.skew_before = skew_of(capacities());

  for (unsigned move = 0; move < max_moves; ++move) {
    const auto caps = capacities();
    if (skew_of(caps) <= max_skew) break;
    const std::uint32_t donor = static_cast<std::uint32_t>(
        std::max_element(caps.begin(), caps.end()) - caps.begin());
    const std::uint32_t receiver = static_cast<std::uint32_t>(
        std::min_element(caps.begin(), caps.end()) - caps.begin());
    if (donor == receiver) break;
    const std::int64_t gap = caps[donor] - caps[receiver];

    // Pull the migrating executor out of the donor shard under its lock:
    // prefer the largest executor that does not overshoot the balance
    // point (2w <= gap); fall back to the smallest one that still
    // narrows the gap at all.
    ExecutorEntry moved;
    bool found = false;
    {
      auto& shard = *shards_[donor];
      std::lock_guard<std::shared_mutex> lock(shard.mu);
      std::size_t best = 0;
      std::uint32_t best_fit = 0;    // largest with 2w <= gap
      std::size_t small = 0;
      std::uint32_t small_w = 0;     // smallest overall (w < gap)
      bool have_fit = false, have_small = false;
      for (std::size_t i = 0; i < shard.registry.size(); ++i) {
        const auto& e = shard.registry.at(i);
        if (!e.schedulable() || e.total_workers == 0) continue;
        const std::uint32_t w = e.total_workers;
        if (2 * static_cast<std::int64_t>(w) <= gap && (!have_fit || w > best_fit)) {
          best = i;
          best_fit = w;
          have_fit = true;
        }
        if (static_cast<std::int64_t>(w) < gap && (!have_small || w < small_w)) {
          small = i;
          small_w = w;
          have_small = true;
        }
      }
      if (!have_fit && !have_small) break;
      const std::size_t local = have_fit ? best : small;
      auto& entry = shard.registry.at(local);

      // Evict the executor's active leases; their memory rejoins the
      // entry's pool so the migrated registration starts clean.
      const std::uint64_t reclaimed_memory =
          evict_hosted_leases(shard, local, entry.stream, report.evictions);

      moved = entry;
      moved.free_workers = moved.total_workers;
      moved.free_memory = entry.free_memory + reclaimed_memory;
      moved.last_ack = now;
      found = true;

      shard.free_workers.fetch_sub(entry.free_workers, std::memory_order_relaxed);
      shard.total_workers.fetch_sub(entry.total_workers, std::memory_order_relaxed);
      shard.registry.mark_dead(local);  // tombstone; the live entry moves

      Migration mig;
      mig.old_id = make_id(donor, local);
      mig.stream = moved.stream;
      report.migrations.push_back(std::move(mig));
    }
    if (!found) break;

    // Re-register on the receiver shard (its own lock; never both at
    // once). The global executor count is unchanged: the donor entry is
    // a tombstone, not a deregistration.
    {
      auto& shard = *shards_[receiver];
      std::lock_guard<std::shared_mutex> lock(shard.mu);
      const std::uint32_t workers = moved.total_workers;
      const std::size_t local = shard.registry.add(std::move(moved));
      shard.hosted.resize(shard.registry.size());
      shard.free_workers.fetch_add(workers, std::memory_order_relaxed);
      shard.total_workers.fetch_add(workers, std::memory_order_relaxed);
      report.migrations.back().new_id = make_id(receiver, local);
    }
    migrations_.fetch_add(1, std::memory_order_relaxed);
  }

  report.skew_after = skew_of(capacities());
  return report;
}

std::optional<RegisterExecutorMsg> ShardedResourceManager::mark_dead(
    std::uint64_t executor_id) {
  const std::uint32_t s = id_shard(executor_id);
  const std::size_t local = static_cast<std::size_t>(id_low(executor_id));
  if (s >= shards_.size()) return std::nullopt;
  auto& shard = *shards_[s];
  std::lock_guard<std::shared_mutex> lock(shard.mu);
  if (local >= shard.registry.size()) return std::nullopt;
  auto& entry = shard.registry.at(local);
  if (!entry.alive) return std::nullopt;
  const RegisterExecutorMsg info = entry.info;

  // Fast reclamation: drop the dead executor's leases without returning
  // capacity (mark_dead zeroes the counters), mirror the aggregates. A
  // draining executor's capacity already left the pool at drain time.
  // The hosted-lease index makes the drop O(hosted), not O(shard leases).
  if (local < shard.hosted.size()) {
    const std::vector<std::uint64_t> ids(shard.hosted[local].begin(),
                                         shard.hosted[local].end());
    for (std::uint64_t id : ids) {
      auto it = shard.leases.find(id);
      if (it != shard.leases.end()) unindex_lease(shard, it);
    }
  }
  shard.lease_count.store(shard.leases.size(), std::memory_order_relaxed);
  if (!entry.draining) {
    shard.free_workers.fetch_sub(entry.free_workers, std::memory_order_relaxed);
    shard.total_workers.fetch_sub(entry.total_workers, std::memory_order_relaxed);
  }
  shard.registry.mark_dead(local);
  return info;
}

bool ShardedResourceManager::touch(std::uint64_t executor_id, Time now) {
  const std::uint32_t s = id_shard(executor_id);
  const std::size_t local = static_cast<std::size_t>(id_low(executor_id));
  if (s >= shards_.size()) return false;
  auto& shard = *shards_[s];
  std::lock_guard<std::shared_mutex> lock(shard.mu);
  if (local >= shard.registry.size()) return false;
  shard.registry.at(local).last_ack = now;
  return true;
}

std::size_t ShardedResourceManager::size() const {
  // Lock-free: the empty-registry check sits on the grant hot path.
  return executor_count_.load(std::memory_order_relaxed);
}

std::size_t ShardedResourceManager::alive_count() const {
  std::size_t n = 0;
  for (const auto& shard : shards_) {
    std::shared_lock<std::shared_mutex> lock(shard->mu);
    n += shard->registry.alive_count();
  }
  return n;
}

std::uint32_t ShardedResourceManager::free_workers_total() const {
  std::int64_t n = 0;
  for (const auto& shard : shards_) {
    n += shard->free_workers.load(std::memory_order_relaxed);
  }
  return clamp_free(n);
}

std::uint32_t ShardedResourceManager::total_workers() const {
  std::int64_t n = 0;
  for (const auto& shard : shards_) {
    n += shard->total_workers.load(std::memory_order_relaxed);
  }
  return clamp_free(n);
}

std::size_t ShardedResourceManager::active_leases() const {
  std::size_t n = 0;
  for (const auto& shard : shards_) {
    n += shard->lease_count.load(std::memory_order_relaxed);
  }
  return n;
}

std::size_t ShardedResourceManager::shard_lease_count(std::uint32_t shard) const {
  return shards_.at(shard)->lease_count.load(std::memory_order_relaxed);
}

std::vector<Placement> ShardedResourceManager::placement_log() const {
  std::vector<Placement> merged;
  for (std::uint32_t s = 0; s < shards_.size(); ++s) {
    auto& shard = *shards_[s];
    std::shared_lock<std::shared_mutex> lock(shard.mu);
    for (const auto& p : shard.log) {
      Placement global = p;
      global.executor = static_cast<std::size_t>(make_id(s, p.executor));
      merged.push_back(global);
    }
  }
  return merged;
}

}  // namespace rfs::rfaas

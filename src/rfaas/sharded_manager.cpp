#include "rfaas/sharded_manager.hpp"

#include <algorithm>

namespace rfs::rfaas {

ShardedResourceManager::ShardedResourceManager(const Config& config)
    : locality_sharding_(config.scheduling == SchedulingPolicy::LocalityFirst),
      rng_counter_(config.scheduler_seed) {
  if (config.journal_enabled) journal_ = std::make_unique<Journal>();
  const std::uint32_t n = std::max(1u, config.manager_shards);
  shards_.reserve(n);
  for (std::uint32_t s = 0; s < n; ++s) {
    auto shard = std::make_unique<Shard>();
    // Decorrelate the randomized policies across shards while keeping the
    // whole manager reproducible; shard 0 keeps the configured seed so a
    // single-shard manager is stream-identical to the unsharded one.
    Config shard_config = config;
    shard_config.scheduler_seed = config.scheduler_seed + s;
    shard->scheduler = make_scheduler(shard_config);
    shards_.push_back(std::move(shard));
  }
}

ShardedResourceManager::~ShardedResourceManager() = default;

std::uint64_t ShardedResourceManager::add_executor(ExecutorEntry entry) {
  // LocalityFirst gives every rack a home shard so rack-local routing is
  // a modulo, not a search; all other policies balance round-robin.
  const std::uint32_t s = locality_sharding_
      ? entry.locality % static_cast<std::uint32_t>(shards_.size())
      : static_cast<std::uint32_t>(next_shard_.fetch_add(1, std::memory_order_relaxed) %
                                   shards_.size());
  auto& shard = *shards_[s];
  std::lock_guard<std::shared_mutex> lock(shard.mu);
  const std::uint32_t workers = entry.total_workers;
  JournalRecordMsg rec;
  if (journal_) {
    rec.op = static_cast<std::uint8_t>(journal::Op::AddExecutor);
    rec.lease_id = entry.info.memory_bytes;
    rec.client_id = entry.locality;
    rec.workers = entry.total_workers;
    rec.memory = entry.free_memory;
    rec.time = entry.last_ack;
    rec.aux = journal::pack_endpoint(entry.info.device, entry.info.alloc_port,
                                     entry.info.rdma_port);
    rec.aux2 = (entry.info.epoch << 32) | entry.info.cores;
  }
  const std::size_t local = shard.registry.add(std::move(entry));
  shard.hosted.resize(shard.registry.size());
  shard.free_workers.fetch_add(workers, std::memory_order_relaxed);
  shard.total_workers.fetch_add(workers, std::memory_order_relaxed);
  executor_count_.fetch_add(1, std::memory_order_relaxed);
  if (journal_) {
    rec.executor = make_id(s, local);
    journal_->append(rec);
  }
  return make_id(s, local);
}

std::uint64_t ShardedResourceManager::next_random() {
  // splitmix64: the atomic counter is the state, the mix is pure, so the
  // stream is deterministic single-threaded and race-free multi-threaded.
  return splitmix64(rng_counter_.fetch_add(kSplitmix64Gamma, std::memory_order_relaxed) +
                    kSplitmix64Gamma);
}

std::uint32_t ShardedResourceManager::preferred_shard() {
  const std::uint32_t n = shard_count();
  if (n == 1) return 0;
  const std::uint64_t r = next_random();
  const std::uint32_t a = static_cast<std::uint32_t>(r % n);
  const std::uint32_t b =
      static_cast<std::uint32_t>((a + 1 + (r >> 32) % (n - 1)) % n);
  const auto free_a = shards_[a]->free_workers.load(std::memory_order_relaxed);
  const auto free_b = shards_[b]->free_workers.load(std::memory_order_relaxed);
  return free_a >= free_b ? a : b;
}

std::uint32_t ShardedResourceManager::preferred_shard_for(std::uint32_t client_locality) {
  if (!locality_sharding_ || shard_count() == 1) return preferred_shard();
  const std::uint32_t home = client_locality % shard_count();
  if (shards_[home]->free_workers.load(std::memory_order_relaxed) > 0) return home;
  return preferred_shard();
}

// --------------------------------------------------------------------------
// Lease-table indexes
// --------------------------------------------------------------------------

void ShardedResourceManager::arm_expiry(Shard& shard, Time at, std::uint64_t lease_id) {
  shard.expiry.push_back({at, lease_id});
  std::push_heap(shard.expiry.begin(), shard.expiry.end(), ExpiryLater{});
}

void ShardedResourceManager::index_lease(Shard& shard, std::uint64_t lease_id,
                                         const LeaseRecord& record) {
  shard.leases.emplace(lease_id, record);
  if (shard.hosted.size() <= record.executor) shard.hosted.resize(shard.registry.size());
  shard.hosted[record.executor].insert(lease_id);
  auto& tenant = shard.tenants[record.client_id];
  tenant.held_workers += record.workers;
  tenant.leases.insert(lease_id);
  arm_expiry(shard, record.expires_at, lease_id);
}

std::unordered_map<std::uint64_t, ShardedResourceManager::LeaseRecord>::iterator
ShardedResourceManager::unindex_lease(
    Shard& shard, std::unordered_map<std::uint64_t, LeaseRecord>::iterator it) {
  const LeaseRecord& record = it->second;
  if (record.executor < shard.hosted.size()) shard.hosted[record.executor].erase(it->first);
  auto tenant = shard.tenants.find(record.client_id);
  if (tenant != shard.tenants.end()) {
    tenant->second.held_workers -=
        std::min<std::uint64_t>(tenant->second.held_workers, record.workers);
    tenant->second.leases.erase(it->first);
    if (tenant->second.leases.empty()) shard.tenants.erase(tenant);
  }
  return shard.leases.erase(it);
}

// --------------------------------------------------------------------------
// Grants
// --------------------------------------------------------------------------

std::optional<ShardedResourceManager::Grant> ShardedResourceManager::grant_on(
    std::uint32_t shard_index, const ScheduleRequest& request, std::uint32_t client_id,
    Duration timeout, Time now) {
  auto& shard = *shards_[shard_index];
  std::lock_guard<std::shared_mutex> lock(shard.mu);

  // Same place-and-commit cycle as the single manager: the policy
  // proposes, try_claim revalidates (the executor may have died between
  // scan and grant), refused executors are excluded and the policy asked
  // again until it gives up.
  std::vector<bool> excluded(shard.registry.size(), false);
  while (auto placement = shard.scheduler->place(shard.registry, request, excluded)) {
    if (!shard.registry.try_claim(placement->executor, placement->workers,
                                  placement->memory)) {
      excluded[placement->executor] = true;
      continue;
    }
    shard.free_workers.fetch_sub(placement->workers, std::memory_order_relaxed);

    LeaseRecord record;
    record.client_id = client_id;
    record.executor = placement->executor;
    record.workers = placement->workers;
    record.memory = placement->memory;
    record.expires_at = now + timeout;
    const std::uint64_t lease_id = make_id(shard_index, shard.next_lease++);
    index_lease(shard, lease_id, record);
    shard.lease_count.store(shard.leases.size(), std::memory_order_relaxed);
    if (shard.log.size() < kPlacementLogCap) shard.log.push_back(*placement);

    Grant grant;
    grant.lease_id = lease_id;
    grant.executor = make_id(shard_index, placement->executor);
    grant.shard = shard_index;
    grant.workers = placement->workers;
    grant.memory = placement->memory;
    grant.expires_at = record.expires_at;
    grant.executor_locality = shard.registry.at(placement->executor).locality;
    grant.executor_info = shard.registry.at(placement->executor).info;
    if (grant.executor_locality == request.client_locality) {
      local_grants_.fetch_add(1, std::memory_order_relaxed);
    }
    if (journal_) {
      JournalRecordMsg rec;
      rec.op = static_cast<std::uint8_t>(journal::Op::Grant);
      rec.lease_id = lease_id;
      rec.client_id = client_id;
      rec.executor = grant.executor;
      rec.workers = placement->workers;
      rec.memory = placement->memory;
      rec.time = record.expires_at;
      if (grant.executor_locality == request.client_locality) {
        rec.aux |= journal::kAuxLocalGrant;
      }
      journal_->append(rec);
    }
    return grant;
  }
  return std::nullopt;
}

std::optional<ShardedResourceManager::Grant> ShardedResourceManager::grant(
    const ScheduleRequest& request, std::uint32_t client_id, Duration timeout, Time now,
    std::optional<std::uint32_t> routed) {
  // Not value_or(): that would evaluate preferred_shard() — and consume a
  // routing-RNG draw — even when the caller already routed.
  const std::uint32_t first = routed ? *routed : preferred_shard();
  if (auto g = grant_on(first, request, client_id, timeout, now)) {
    grants_.fetch_add(1, std::memory_order_relaxed);
    return g;
  }

  // Work stealing: the routed shard is full (or its survivors cannot fit
  // the request); try every other shard, fullest-free-pool first so the
  // stolen placement lands where capacity actually is.
  std::vector<std::pair<std::int64_t, std::uint32_t>> others;
  others.reserve(shards_.size());
  for (std::uint32_t s = 0; s < shards_.size(); ++s) {
    if (s == first) continue;
    others.emplace_back(shards_[s]->free_workers.load(std::memory_order_relaxed), s);
  }
  std::sort(others.begin(), others.end(), [](const auto& a, const auto& b) {
    return a.first != b.first ? a.first > b.first : a.second < b.second;
  });
  for (const auto& [free, s] : others) {
    if (free <= 0) continue;
    if (auto g = grant_on(s, request, client_id, timeout, now)) {
      g->stolen = true;
      grants_.fetch_add(1, std::memory_order_relaxed);
      steals_.fetch_add(1, std::memory_order_relaxed);
      return g;
    }
  }
  denials_.fetch_add(1, std::memory_order_relaxed);
  return std::nullopt;
}

ShardedResourceManager::BatchGrant ShardedResourceManager::grant_batch(
    const ScheduleRequest& request, std::uint32_t client_id, Duration timeout, Time now,
    bool all_or_nothing, std::optional<std::uint32_t> routed) {
  BatchGrant out;
  batches_.fetch_add(1, std::memory_order_relaxed);

  // Per-shard partial fulfillment: each sub-placement takes whatever the
  // placed executor can give (the schedulers' min(free, requested) rule)
  // and the remainder re-routes — the first one to the caller's routed
  // shard, later ones freshly, so wide batches spread across shards.
  std::uint32_t remaining = request.workers;
  std::vector<bool> touched(shards_.size(), false);
  while (remaining > 0) {
    ScheduleRequest sub = request;
    sub.workers = remaining;
    auto g = grant(sub, client_id, timeout, now, out.grants.empty() ? routed : std::nullopt);
    if (!g) break;  // fleet-wide exhaustion (grant() already counted the denial)
    remaining -= g->workers;
    out.granted_workers += g->workers;
    touched[g->shard] = true;
    out.grants.push_back(std::move(*g));
  }
  for (std::size_t s = 0; s < touched.size(); ++s) {
    if (touched[s]) ++out.shards_touched;
  }
  out.complete = remaining == 0;

  if (!out.complete && all_or_nothing) {
    // Roll the provisional leases back; the scans still happened, so
    // shards_touched keeps billing the decision cost.
    for (const auto& g : out.grants) release(g.lease_id);
    out.grants.clear();
    out.granted_workers = 0;
  }
  return out;
}

// --------------------------------------------------------------------------
// Renew / release / expiry
// --------------------------------------------------------------------------

std::optional<ShardedResourceManager::Renewal> ShardedResourceManager::renew(
    std::uint64_t lease_id, Time new_expires_at) {
  const std::uint32_t s = id_shard(lease_id);
  if (s >= shards_.size()) return std::nullopt;
  auto& shard = *shards_[s];
  std::lock_guard<std::shared_mutex> lock(shard.mu);
  auto it = shard.leases.find(lease_id);
  if (it == shard.leases.end()) return std::nullopt;
  it->second.expires_at = new_expires_at;
  // Re-arm the expiry index in place: the new deadline joins the heap,
  // the superseded entry is discarded when the sweep surfaces it.
  arm_expiry(shard, new_expires_at, lease_id);
  if (journal_) {
    JournalRecordMsg rec;
    rec.op = static_cast<std::uint8_t>(journal::Op::Renew);
    rec.lease_id = lease_id;
    rec.client_id = it->second.client_id;
    rec.executor = make_id(s, it->second.executor);
    rec.workers = it->second.workers;
    rec.time = new_expires_at;
    journal_->append(rec);
  }
  return Renewal{shard.registry.at(it->second.executor).stream};
}

bool ShardedResourceManager::release(std::uint64_t lease_id) {
  const std::uint32_t s = id_shard(lease_id);
  if (s >= shards_.size()) return false;
  auto& shard = *shards_[s];
  std::lock_guard<std::shared_mutex> lock(shard.mu);
  auto it = shard.leases.find(lease_id);
  if (it == shard.leases.end()) return false;
  const LeaseRecord record = it->second;
  const bool returned = shard.registry.at(record.executor).schedulable();
  if (returned) {
    shard.registry.release(record.executor, record.workers, record.memory);
    shard.free_workers.fetch_add(record.workers, std::memory_order_relaxed);
  }
  unindex_lease(shard, it);
  shard.lease_count.store(shard.leases.size(), std::memory_order_relaxed);
  journal_lease_drop(journal::Op::Release, s, lease_id, record, returned);
  return true;
}

std::size_t ShardedResourceManager::sweep_expired(Time now) {
  std::size_t reclaimed = 0;
  for (auto& shard_ptr : shards_) {
    auto& shard = *shard_ptr;
    std::lock_guard<std::shared_mutex> lock(shard.mu);
    auto& heap = shard.expiry;
    while (!heap.empty() && heap.front().at <= now) {
      std::pop_heap(heap.begin(), heap.end(), ExpiryLater{});
      const ExpiryEntry entry = heap.back();
      heap.pop_back();
      auto it = shard.leases.find(entry.lease_id);
      if (it == shard.leases.end()) continue;    // released/evicted: stale entry
      if (it->second.expires_at > now) continue; // renewed: its re-arm entry is queued
      const LeaseRecord record = it->second;
      const bool returned = shard.registry.at(record.executor).schedulable();
      if (returned) {
        shard.registry.release(record.executor, record.workers, record.memory);
        shard.free_workers.fetch_add(record.workers, std::memory_order_relaxed);
      }
      unindex_lease(shard, it);
      journal_lease_drop(journal::Op::Expire, id_shard(entry.lease_id), entry.lease_id, record,
                         returned);
      ++reclaimed;
    }
    // Compact once stale entries (renewal churn on long-lived leases)
    // dominate the heap; amortized O(1) per armed deadline.
    if (heap.size() >= 64 && heap.size() > 2 * shard.leases.size()) {
      heap.clear();
      heap.reserve(shard.leases.size());
      for (const auto& [id, record] : shard.leases) heap.push_back({record.expires_at, id});
      std::make_heap(heap.begin(), heap.end(), ExpiryLater{});
    }
    shard.lease_count.store(shard.leases.size(), std::memory_order_relaxed);
  }
  return reclaimed;
}

std::size_t ShardedResourceManager::sweep_expired_scan(Time now) {
  // Pre-index reference: walk every lease of every shard (the seed's
  // sweep). Kept for fig16's before/after and the equivalence tests.
  std::size_t reclaimed = 0;
  for (auto& shard_ptr : shards_) {
    auto& shard = *shard_ptr;
    std::lock_guard<std::shared_mutex> lock(shard.mu);
    for (auto it = shard.leases.begin(); it != shard.leases.end();) {
      if (it->second.expires_at > now) {
        ++it;
        continue;
      }
      const std::uint64_t lease_id = it->first;
      const LeaseRecord record = it->second;
      const bool returned = shard.registry.at(record.executor).schedulable();
      if (returned) {
        shard.registry.release(record.executor, record.workers, record.memory);
        shard.free_workers.fetch_add(record.workers, std::memory_order_relaxed);
      }
      it = unindex_lease(shard, it);
      journal_lease_drop(journal::Op::Expire, id_shard(lease_id), lease_id, record, returned);
      ++reclaimed;
    }
    shard.lease_count.store(shard.leases.size(), std::memory_order_relaxed);
  }
  return reclaimed;
}

// --------------------------------------------------------------------------
// Manager-initiated reclamation
// --------------------------------------------------------------------------

std::optional<ShardedResourceManager::Eviction> ShardedResourceManager::evict(
    std::uint64_t lease_id) {
  const std::uint32_t s = id_shard(lease_id);
  if (s >= shards_.size()) return std::nullopt;
  auto& shard = *shards_[s];
  std::lock_guard<std::shared_mutex> lock(shard.mu);
  auto it = shard.leases.find(lease_id);
  if (it == shard.leases.end()) return std::nullopt;
  const LeaseRecord record = it->second;

  Eviction ev;
  ev.lease_id = lease_id;
  ev.client_id = record.client_id;
  ev.workers = record.workers;
  ev.memory = record.memory;
  auto& entry = shard.registry.at(record.executor);
  ev.executor_stream = entry.stream;
  const bool returned = entry.schedulable();
  if (returned) {
    shard.registry.release(record.executor, record.workers, record.memory);
    shard.free_workers.fetch_add(record.workers, std::memory_order_relaxed);
  }
  unindex_lease(shard, it);
  shard.lease_count.store(shard.leases.size(), std::memory_order_relaxed);
  evictions_.fetch_add(1, std::memory_order_relaxed);
  journal_lease_drop(journal::Op::Evict, s, lease_id, record, returned);
  return ev;
}

std::vector<std::uint64_t> ShardedResourceManager::active_lease_ids(std::size_t max) const {
  // Shard-major, ascending per shard (= grant/age order, since per-shard
  // lease counters only grow) — the exact order of the pre-index table.
  std::vector<std::uint64_t> ids;
  for (const auto& shard_ptr : shards_) {
    auto& shard = *shard_ptr;
    std::vector<std::uint64_t> local;
    {
      std::shared_lock<std::shared_mutex> lock(shard.mu);
      local.reserve(shard.leases.size());
      for (const auto& kv : shard.leases) local.push_back(kv.first);
    }
    std::sort(local.begin(), local.end());
    for (std::uint64_t id : local) {
      if (ids.size() >= max) return ids;
      ids.push_back(id);
    }
  }
  return ids;
}

std::vector<ShardedResourceManager::Eviction> ShardedResourceManager::evict_quota_candidates(
    const std::vector<std::pair<std::uint64_t, std::uint32_t>>& candidates,
    std::map<std::uint32_t, std::uint64_t>& held, std::uint32_t requesting_client,
    std::uint32_t quota_workers, std::uint32_t workers_needed) {
  // evict() re-takes its shard's lock and resolves any lease that
  // vanished since the snapshot to a no-op, so the candidates need not
  // be consistent with the live table.
  std::vector<Eviction> out;
  std::uint32_t reclaimed = 0;
  for (const auto& [lease_id, client] : candidates) {
    if (reclaimed >= workers_needed) break;
    if (client == requesting_client) continue;
    auto h = held.find(client);
    if (h == held.end() || h->second <= quota_workers) continue;
    if (auto ev = evict(lease_id)) {
      h->second -= std::min<std::uint64_t>(h->second, ev->workers);
      reclaimed += ev->workers;
      out.push_back(std::move(*ev));
    }
  }
  return out;
}

std::vector<ShardedResourceManager::Eviction> ShardedResourceManager::reclaim_quota(
    std::uint32_t requesting_client, std::uint32_t quota_workers,
    std::uint32_t workers_needed) {
  // O(tenants): the held-worker totals come straight from the per-shard
  // tenant counters (maintained on every grant/release/evict), and only
  // the over-quota tenants' lease lists are materialized as candidates.
  std::map<std::uint32_t, std::uint64_t> held;
  for (const auto& shard_ptr : shards_) {
    auto& shard = *shard_ptr;
    std::shared_lock<std::shared_mutex> lock(shard.mu);
    for (const auto& [client, tenant] : shard.tenants) {
      if (tenant.held_workers > 0) held[client] += tenant.held_workers;
    }
  }

  std::vector<std::uint32_t> offenders;
  for (const auto& [client, total] : held) {
    if (client != requesting_client && total > quota_workers) offenders.push_back(client);
  }
  if (offenders.empty()) return {};

  // One pass (one shared lock) per shard for all offenders — not one
  // per (offender, shard) pair; the sort below restores global order.
  std::vector<std::pair<std::uint64_t, std::uint32_t>> candidates;
  for (const auto& shard_ptr : shards_) {
    auto& shard = *shard_ptr;
    std::shared_lock<std::shared_mutex> lock(shard.mu);
    for (std::uint32_t client : offenders) {
      auto it = shard.tenants.find(client);
      if (it == shard.tenants.end()) continue;
      for (std::uint64_t id : it->second.leases) candidates.emplace_back(id, client);
    }
  }
  // Full lease ids embed the shard in their high bits, so a plain sort
  // restores the shard-major age order the scan variant produced.
  std::sort(candidates.begin(), candidates.end());
  return evict_quota_candidates(candidates, held, requesting_client, quota_workers,
                                workers_needed);
}

std::vector<ShardedResourceManager::Eviction> ShardedResourceManager::reclaim_quota_scan(
    std::uint32_t requesting_client, std::uint32_t quota_workers,
    std::uint32_t workers_needed) {
  // Pre-index reference: snapshot who holds what by walking every lease
  // (O(total leases) per call — the seed's behavior on every denied
  // request). Kept for fig16's before/after and the equivalence tests.
  std::vector<std::pair<std::uint64_t, std::uint32_t>> snapshot;
  std::map<std::uint32_t, std::uint64_t> held;
  for (const auto& shard_ptr : shards_) {
    auto& shard = *shard_ptr;
    std::shared_lock<std::shared_mutex> lock(shard.mu);
    for (const auto& [id, record] : shard.leases) {
      snapshot.emplace_back(id, record.client_id);
      held[record.client_id] += record.workers;
    }
  }
  std::sort(snapshot.begin(), snapshot.end());
  return evict_quota_candidates(snapshot, held, requesting_client, quota_workers,
                                workers_needed);
}

std::uint64_t ShardedResourceManager::tenant_held_workers(std::uint32_t client_id) const {
  std::uint64_t held = 0;
  for (const auto& shard_ptr : shards_) {
    auto& shard = *shard_ptr;
    std::shared_lock<std::shared_mutex> lock(shard.mu);
    auto it = shard.tenants.find(client_id);
    if (it != shard.tenants.end()) held += it->second.held_workers;
  }
  return held;
}

std::uint64_t ShardedResourceManager::evict_hosted_leases(
    std::uint32_t shard_index, Shard& shard, std::size_t local,
    const std::shared_ptr<net::TcpStream>& stream, std::vector<Eviction>& out) {
  std::uint64_t reclaimed_memory = 0;
  std::size_t evicted = 0;
  if (local >= shard.hosted.size()) return 0;
  // O(hosted) via the per-executor index; sorted so eviction records
  // (and the control plane's notification pushes) stay in age order.
  std::vector<std::uint64_t> ids(shard.hosted[local].begin(), shard.hosted[local].end());
  std::sort(ids.begin(), ids.end());
  for (std::uint64_t id : ids) {
    auto it = shard.leases.find(id);
    if (it == shard.leases.end()) continue;
    Eviction ev;
    ev.lease_id = id;
    ev.client_id = it->second.client_id;
    ev.workers = it->second.workers;
    ev.memory = it->second.memory;
    ev.executor_stream = stream;
    reclaimed_memory += it->second.memory;
    const LeaseRecord record = it->second;
    out.push_back(std::move(ev));
    unindex_lease(shard, it);
    // Capacity stays with the entry (drain parks it, migration moves it
    // wholesale), so the record carries return-capacity = false.
    journal_lease_drop(journal::Op::Evict, shard_index, id, record, false);
    ++evicted;
  }
  shard.lease_count.store(shard.leases.size(), std::memory_order_relaxed);
  evictions_.fetch_add(evicted, std::memory_order_relaxed);
  return reclaimed_memory;
}

std::vector<ShardedResourceManager::Eviction> ShardedResourceManager::drain_executor(
    std::uint64_t executor_id) {
  const std::uint32_t s = id_shard(executor_id);
  const std::size_t local = static_cast<std::size_t>(id_low(executor_id));
  if (s >= shards_.size()) return {};
  auto& shard = *shards_[s];
  std::lock_guard<std::shared_mutex> lock(shard.mu);
  if (local >= shard.registry.size()) return {};
  auto& entry = shard.registry.at(local);
  if (!entry.schedulable()) return {};

  std::vector<Eviction> out;
  evict_hosted_leases(s, shard, local, entry.stream, out);

  // The host's whole capacity leaves the schedulable pool: the still-free
  // workers come off the free aggregate (leased ones already did at
  // grant), the full complement off the capacity aggregate.
  shard.free_workers.fetch_sub(entry.free_workers, std::memory_order_relaxed);
  shard.total_workers.fetch_sub(entry.total_workers, std::memory_order_relaxed);
  shard.registry.set_draining(local);
  if (journal_) {
    JournalRecordMsg rec;
    rec.op = static_cast<std::uint8_t>(journal::Op::SetDraining);
    rec.executor = executor_id;
    journal_->append(rec);
  }
  return out;
}

std::optional<std::uint64_t> ShardedResourceManager::find_executor_by_device(
    std::uint32_t device) const {
  for (std::uint32_t s = 0; s < shards_.size(); ++s) {
    auto& shard = *shards_[s];
    std::shared_lock<std::shared_mutex> lock(shard.mu);
    for (std::size_t i = 0; i < shard.registry.size(); ++i) {
      const auto& e = shard.registry.at(i);
      if (e.alive && e.info.device == device) return make_id(s, i);
    }
  }
  return std::nullopt;
}

ShardedResourceManager::RebalanceReport ShardedResourceManager::rebalance(
    double max_skew, unsigned max_moves, Time now) {
  RebalanceReport report;
  if (shards_.size() < 2) return report;

  auto capacities = [this] {
    std::vector<std::int64_t> caps;
    caps.reserve(shards_.size());
    for (const auto& shard : shards_) {
      caps.push_back(shard->total_workers.load(std::memory_order_relaxed));
    }
    return caps;
  };
  auto skew_of = [](const std::vector<std::int64_t>& caps) {
    const auto [lo, hi] = std::minmax_element(caps.begin(), caps.end());
    return static_cast<double>(std::max<std::int64_t>(0, *hi)) /
           static_cast<double>(std::max<std::int64_t>(1, *lo));
  };
  report.skew_before = skew_of(capacities());

  for (unsigned move = 0; move < max_moves; ++move) {
    const auto caps = capacities();
    if (skew_of(caps) <= max_skew) break;
    const std::uint32_t donor = static_cast<std::uint32_t>(
        std::max_element(caps.begin(), caps.end()) - caps.begin());
    const std::uint32_t receiver = static_cast<std::uint32_t>(
        std::min_element(caps.begin(), caps.end()) - caps.begin());
    if (donor == receiver) break;
    const std::int64_t gap = caps[donor] - caps[receiver];

    // Pull the migrating executor out of the donor shard under its lock:
    // prefer the largest executor that does not overshoot the balance
    // point (2w <= gap); fall back to the smallest one that still
    // narrows the gap at all.
    ExecutorEntry moved;
    bool found = false;
    {
      auto& shard = *shards_[donor];
      std::lock_guard<std::shared_mutex> lock(shard.mu);
      std::size_t best = 0;
      std::uint32_t best_fit = 0;    // largest with 2w <= gap
      std::size_t small = 0;
      std::uint32_t small_w = 0;     // smallest overall (w < gap)
      bool have_fit = false, have_small = false;
      for (std::size_t i = 0; i < shard.registry.size(); ++i) {
        const auto& e = shard.registry.at(i);
        if (!e.schedulable() || e.total_workers == 0) continue;
        const std::uint32_t w = e.total_workers;
        if (2 * static_cast<std::int64_t>(w) <= gap && (!have_fit || w > best_fit)) {
          best = i;
          best_fit = w;
          have_fit = true;
        }
        if (static_cast<std::int64_t>(w) < gap && (!have_small || w < small_w)) {
          small = i;
          small_w = w;
          have_small = true;
        }
      }
      if (!have_fit && !have_small) break;
      const std::size_t local = have_fit ? best : small;
      auto& entry = shard.registry.at(local);

      // Evict the executor's active leases; their memory rejoins the
      // entry's pool so the migrated registration starts clean.
      const std::uint64_t reclaimed_memory =
          evict_hosted_leases(donor, shard, local, entry.stream, report.evictions);

      moved = entry;
      moved.free_workers = moved.total_workers;
      moved.free_memory = entry.free_memory + reclaimed_memory;
      moved.last_ack = now;
      found = true;

      shard.free_workers.fetch_sub(entry.free_workers, std::memory_order_relaxed);
      shard.total_workers.fetch_sub(entry.total_workers, std::memory_order_relaxed);
      shard.registry.mark_dead(local);  // tombstone; the live entry moves

      Migration mig;
      mig.old_id = make_id(donor, local);
      mig.stream = moved.stream;
      report.migrations.push_back(std::move(mig));
    }
    if (!found) break;

    // Re-register on the receiver shard (its own lock; never both at
    // once). The global executor count is unchanged: the donor entry is
    // a tombstone, not a deregistration.
    {
      auto& shard = *shards_[receiver];
      std::lock_guard<std::shared_mutex> lock(shard.mu);
      const std::uint32_t workers = moved.total_workers;
      const std::uint64_t moved_memory = moved.free_memory;
      const Time moved_ack = moved.last_ack;
      const std::size_t local = shard.registry.add(std::move(moved));
      shard.hosted.resize(shard.registry.size());
      shard.free_workers.fetch_add(workers, std::memory_order_relaxed);
      shard.total_workers.fetch_add(workers, std::memory_order_relaxed);
      report.migrations.back().new_id = make_id(receiver, local);
      if (journal_) {
        JournalRecordMsg rec;
        rec.op = static_cast<std::uint8_t>(journal::Op::Migrate);
        rec.executor = report.migrations.back().old_id;
        rec.aux = report.migrations.back().new_id;
        rec.workers = workers;
        rec.memory = moved_memory;
        rec.time = moved_ack;
        journal_->append(rec);
      }
    }
    migrations_.fetch_add(1, std::memory_order_relaxed);
  }

  report.skew_after = skew_of(capacities());
  return report;
}

bool ShardedResourceManager::set_degraded(std::uint64_t executor_id, bool degraded) {
  const std::uint32_t s = id_shard(executor_id);
  const std::size_t local = static_cast<std::size_t>(id_low(executor_id));
  if (s >= shards_.size()) return false;
  auto& shard = *shards_[s];
  std::lock_guard<std::shared_mutex> lock(shard.mu);
  if (local >= shard.registry.size()) return false;
  if (!shard.registry.at(local).alive) return false;
  shard.registry.set_degraded(local, degraded);
  return true;
}

std::optional<RegisterExecutorMsg> ShardedResourceManager::mark_dead(
    std::uint64_t executor_id) {
  const std::uint32_t s = id_shard(executor_id);
  const std::size_t local = static_cast<std::size_t>(id_low(executor_id));
  if (s >= shards_.size()) return std::nullopt;
  auto& shard = *shards_[s];
  std::lock_guard<std::shared_mutex> lock(shard.mu);
  if (local >= shard.registry.size()) return std::nullopt;
  auto& entry = shard.registry.at(local);
  if (!entry.alive) return std::nullopt;
  const RegisterExecutorMsg info = entry.info;

  // Fast reclamation: drop the dead executor's leases without returning
  // capacity (mark_dead zeroes the counters), mirror the aggregates. A
  // draining executor's capacity already left the pool at drain time.
  // The hosted-lease index makes the drop O(hosted), not O(shard leases).
  if (local < shard.hosted.size()) {
    const std::vector<std::uint64_t> ids(shard.hosted[local].begin(),
                                         shard.hosted[local].end());
    for (std::uint64_t id : ids) {
      auto it = shard.leases.find(id);
      if (it != shard.leases.end()) unindex_lease(shard, it);
    }
  }
  shard.lease_count.store(shard.leases.size(), std::memory_order_relaxed);
  if (!entry.draining) {
    shard.free_workers.fetch_sub(entry.free_workers, std::memory_order_relaxed);
    shard.total_workers.fetch_sub(entry.total_workers, std::memory_order_relaxed);
  }
  shard.registry.mark_dead(local);
  if (journal_) {
    JournalRecordMsg rec;
    rec.op = static_cast<std::uint8_t>(journal::Op::MarkDead);
    rec.executor = executor_id;
    journal_->append(rec);
  }
  return info;
}

bool ShardedResourceManager::touch(std::uint64_t executor_id, Time now) {
  const std::uint32_t s = id_shard(executor_id);
  const std::size_t local = static_cast<std::size_t>(id_low(executor_id));
  if (s >= shards_.size()) return false;
  auto& shard = *shards_[s];
  std::lock_guard<std::shared_mutex> lock(shard.mu);
  if (local >= shard.registry.size()) return false;
  shard.registry.at(local).last_ack = now;
  return true;
}

std::optional<ShardedResourceManager::LeaseInfo> ShardedResourceManager::lease_info(
    std::uint64_t lease_id) const {
  const std::uint32_t s = id_shard(lease_id);
  if (s >= shards_.size()) return std::nullopt;
  auto& shard = *shards_[s];
  std::shared_lock<std::shared_mutex> lock(shard.mu);
  auto it = shard.leases.find(lease_id);
  if (it == shard.leases.end()) return std::nullopt;
  return LeaseInfo{it->second.client_id, it->second.workers, it->second.expires_at};
}

std::size_t ShardedResourceManager::size() const {
  // Lock-free: the empty-registry check sits on the grant hot path.
  return executor_count_.load(std::memory_order_relaxed);
}

std::size_t ShardedResourceManager::alive_count() const {
  std::size_t n = 0;
  for (const auto& shard : shards_) {
    std::shared_lock<std::shared_mutex> lock(shard->mu);
    n += shard->registry.alive_count();
  }
  return n;
}

std::uint32_t ShardedResourceManager::free_workers_total() const {
  std::int64_t n = 0;
  for (const auto& shard : shards_) {
    n += shard->free_workers.load(std::memory_order_relaxed);
  }
  return clamp_free(n);
}

std::uint32_t ShardedResourceManager::total_workers() const {
  std::int64_t n = 0;
  for (const auto& shard : shards_) {
    n += shard->total_workers.load(std::memory_order_relaxed);
  }
  return clamp_free(n);
}

std::size_t ShardedResourceManager::active_leases() const {
  std::size_t n = 0;
  for (const auto& shard : shards_) {
    n += shard->lease_count.load(std::memory_order_relaxed);
  }
  return n;
}

std::size_t ShardedResourceManager::shard_lease_count(std::uint32_t shard) const {
  return shards_.at(shard)->lease_count.load(std::memory_order_relaxed);
}

// --------------------------------------------------------------------------
// Replication / failover: journal hooks, snapshot export/restore, replay
// --------------------------------------------------------------------------

void ShardedResourceManager::journal_lease_drop(journal::Op op, std::uint32_t shard_index,
                                                std::uint64_t lease_id,
                                                const LeaseRecord& record,
                                                bool returned_capacity) {
  if (!journal_) return;
  JournalRecordMsg rec;
  rec.op = static_cast<std::uint8_t>(op);
  rec.lease_id = lease_id;
  rec.client_id = record.client_id;
  rec.executor = make_id(shard_index, record.executor);
  rec.workers = record.workers;
  rec.memory = record.memory;
  rec.time = record.expires_at;
  if (returned_capacity) rec.aux |= journal::kAuxReturnCapacity;
  journal_->append(rec);
}

bool ShardedResourceManager::reattach_executor(std::uint64_t executor_id,
                                               std::shared_ptr<net::TcpStream> stream,
                                               std::uint64_t epoch, Time now) {
  const std::uint32_t s = id_shard(executor_id);
  const std::size_t local = static_cast<std::size_t>(id_low(executor_id));
  if (s >= shards_.size()) return false;
  auto& shard = *shards_[s];
  std::lock_guard<std::shared_mutex> lock(shard.mu);
  if (local >= shard.registry.size()) return false;
  auto& entry = shard.registry.at(local);
  if (!entry.alive) return false;
  entry.stream = std::move(stream);
  entry.last_ack = now;
  entry.info.epoch = epoch;
  if (journal_) {
    JournalRecordMsg rec;
    rec.op = static_cast<std::uint8_t>(journal::Op::Reattach);
    rec.executor = executor_id;
    rec.aux2 = epoch;
    rec.time = now;
    journal_->append(rec);
  }
  return true;
}

ShardedResourceManager::ManagerState ShardedResourceManager::export_state() const {
  ManagerState state;
  state.shards.resize(shards_.size());
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    auto& shard = *shards_[s];
    auto& out = state.shards[s];
    std::shared_lock<std::shared_mutex> lock(shard.mu);

    out.executors.reserve(shard.registry.size());
    for (std::size_t i = 0; i < shard.registry.size(); ++i) {
      const auto& e = shard.registry.at(i);
      ManagerState::ExecutorState ex;
      ex.info = e.info;
      ex.total_workers = e.total_workers;
      ex.free_workers = e.free_workers;
      ex.free_memory = e.free_memory;
      ex.alive = e.alive;
      ex.draining = e.draining;
      ex.locality = e.locality;
      ex.last_ack = e.last_ack;
      out.executors.push_back(ex);
    }

    out.leases.reserve(shard.leases.size());
    for (const auto& [id, record] : shard.leases) {
      ManagerState::LeaseState ls;
      ls.lease_id = id;
      ls.client_id = record.client_id;
      ls.executor = record.executor;
      ls.workers = record.workers;
      ls.memory = record.memory;
      ls.expires_at = record.expires_at;
      out.leases.push_back(ls);
    }
    std::sort(out.leases.begin(), out.leases.end(),
              [](const auto& a, const auto& b) { return a.lease_id < b.lease_id; });

    out.tenants.reserve(shard.tenants.size());
    for (const auto& [client, tenant] : shard.tenants) {
      ManagerState::TenantState ts;
      ts.client_id = client;
      ts.held_workers = tenant.held_workers;
      ts.leases.assign(tenant.leases.begin(), tenant.leases.end());
      out.tenants.push_back(std::move(ts));
    }
    std::sort(out.tenants.begin(), out.tenants.end(),
              [](const auto& a, const auto& b) { return a.client_id < b.client_id; });

    // Canonical deadline index from the live leases — two managers with
    // equivalent histories have heaps that differ in stale entries, so
    // the raw heap is not state.
    out.expiry.reserve(out.leases.size());
    for (const auto& ls : out.leases) out.expiry.emplace_back(ls.expires_at, ls.lease_id);
    std::sort(out.expiry.begin(), out.expiry.end());

    out.next_lease = shard.next_lease;
    out.free_workers = shard.free_workers.load(std::memory_order_relaxed);
    out.total_workers = shard.total_workers.load(std::memory_order_relaxed);
  }
  state.grants = grants_.load(std::memory_order_relaxed);
  state.local_grants = local_grants_.load(std::memory_order_relaxed);
  state.evictions = evictions_.load(std::memory_order_relaxed);
  state.migrations = migrations_.load(std::memory_order_relaxed);
  state.next_shard = next_shard_.load(std::memory_order_relaxed);
  state.executor_count = executor_count_.load(std::memory_order_relaxed);
  return state;
}

Status ShardedResourceManager::restore_state(const ManagerState& state, Time now) {
  if (state.shards.size() != shards_.size()) {
    return Error::make(40, "restore: shard count mismatch");
  }
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    auto& shard = *shards_[s];
    const auto& in = state.shards[s];
    std::lock_guard<std::shared_mutex> lock(shard.mu);
    if (!shard.registry.empty() || !shard.leases.empty()) {
      return Error::make(41, "restore: manager is not freshly constructed");
    }

    // Replay each executor's lifecycle (register full, claim down, drain
    // or die) instead of poking fields, so the registry's incremental
    // aggregates match a live manager's by construction.
    for (const auto& ex : in.executors) {
      ExecutorEntry e;
      e.info = ex.info;
      e.total_workers = ex.total_workers;
      e.free_workers = ex.total_workers;
      e.free_memory = ex.info.memory_bytes;
      e.locality = ex.locality;
      e.last_ack = now;  // fresh heartbeat clock: don't reap on promotion
      const std::size_t local = shard.registry.add(std::move(e));
      if (ex.alive && !ex.draining) {
        const std::uint32_t claimed = ex.total_workers - ex.free_workers;
        if (claimed > 0 && !shard.registry.try_claim(local, claimed, 0)) {
          return Error::make(42, "restore: snapshot executor capacity is inconsistent");
        }
        shard.registry.at(local).free_memory = ex.free_memory;
      } else {
        // Drained and/or dead: run the same transitions the live entry
        // went through so both flags and the aggregates line up.
        if (ex.draining) shard.registry.set_draining(local);
        if (!ex.alive) shard.registry.mark_dead(local);
      }
    }
    shard.hosted.resize(shard.registry.size());

    for (const auto& ls : in.leases) {
      LeaseRecord record;
      record.client_id = ls.client_id;
      record.executor = static_cast<std::size_t>(ls.executor);
      record.workers = ls.workers;
      record.memory = ls.memory;
      record.expires_at = ls.expires_at;
      index_lease(shard, ls.lease_id, record);
    }
    shard.next_lease = in.next_lease;
    shard.lease_count.store(shard.leases.size(), std::memory_order_relaxed);
    shard.free_workers.store(in.free_workers, std::memory_order_relaxed);
    shard.total_workers.store(in.total_workers, std::memory_order_relaxed);
  }
  grants_.store(state.grants, std::memory_order_relaxed);
  local_grants_.store(state.local_grants, std::memory_order_relaxed);
  evictions_.store(state.evictions, std::memory_order_relaxed);
  migrations_.store(state.migrations, std::memory_order_relaxed);
  next_shard_.store(state.next_shard, std::memory_order_relaxed);
  executor_count_.store(state.executor_count, std::memory_order_relaxed);
  return Status::success();
}

Status ShardedResourceManager::apply(const JournalRecordMsg& record) {
  switch (static_cast<journal::Op>(record.op)) {
    case journal::Op::AddExecutor: {
      const std::uint32_t s = id_shard(record.executor);
      const std::size_t local = static_cast<std::size_t>(id_low(record.executor));
      if (s >= shards_.size()) return Error::make(43, "apply: shard out of range");
      auto& shard = *shards_[s];
      std::lock_guard<std::shared_mutex> lock(shard.mu);
      if (shard.registry.size() != local) {
        return Error::make(44, "apply: registry index diverged");
      }
      ExecutorEntry e;
      e.info.device = static_cast<std::uint32_t>(record.aux >> 32);
      e.info.alloc_port = static_cast<std::uint16_t>((record.aux >> 16) & 0xffff);
      e.info.rdma_port = static_cast<std::uint16_t>(record.aux & 0xffff);
      e.info.cores = static_cast<std::uint32_t>(record.aux2 & 0xffffffffull);
      e.info.epoch = record.aux2 >> 32;
      e.info.memory_bytes = record.lease_id;
      e.total_workers = record.workers;
      e.free_workers = record.workers;
      e.free_memory = record.memory;
      e.locality = record.client_id;
      e.last_ack = record.time;
      shard.registry.add(std::move(e));
      shard.hosted.resize(shard.registry.size());
      shard.free_workers.fetch_add(record.workers, std::memory_order_relaxed);
      shard.total_workers.fetch_add(record.workers, std::memory_order_relaxed);
      executor_count_.fetch_add(1, std::memory_order_relaxed);
      // Mirror the primary's round-robin assignment counter so shard
      // routing of post-promotion registrations stays aligned.
      if (!locality_sharding_) next_shard_.fetch_add(1, std::memory_order_relaxed);
      return Status::success();
    }
    case journal::Op::Grant: {
      const std::uint32_t s = id_shard(record.lease_id);
      if (s >= shards_.size() || id_shard(record.executor) != s) {
        return Error::make(43, "apply: shard out of range");
      }
      const std::size_t local = static_cast<std::size_t>(id_low(record.executor));
      auto& shard = *shards_[s];
      std::lock_guard<std::shared_mutex> lock(shard.mu);
      if (!shard.registry.try_claim(local, record.workers, record.memory)) {
        return Error::make(45, "apply: granted capacity does not fit (diverged)");
      }
      shard.free_workers.fetch_sub(record.workers, std::memory_order_relaxed);
      LeaseRecord lease;
      lease.client_id = record.client_id;
      lease.executor = local;
      lease.workers = record.workers;
      lease.memory = record.memory;
      lease.expires_at = record.time;
      index_lease(shard, record.lease_id, lease);
      shard.next_lease = std::max(shard.next_lease, id_low(record.lease_id) + 1);
      shard.lease_count.store(shard.leases.size(), std::memory_order_relaxed);
      grants_.fetch_add(1, std::memory_order_relaxed);
      if (record.aux & journal::kAuxLocalGrant) {
        local_grants_.fetch_add(1, std::memory_order_relaxed);
      }
      return Status::success();
    }
    case journal::Op::Renew: {
      const std::uint32_t s = id_shard(record.lease_id);
      if (s >= shards_.size()) return Error::make(43, "apply: shard out of range");
      auto& shard = *shards_[s];
      std::lock_guard<std::shared_mutex> lock(shard.mu);
      auto it = shard.leases.find(record.lease_id);
      if (it == shard.leases.end()) return Error::make(46, "apply: renew of unknown lease");
      it->second.expires_at = record.time;
      arm_expiry(shard, record.time, record.lease_id);
      return Status::success();
    }
    case journal::Op::Release:
    case journal::Op::Expire:
    case journal::Op::Evict: {
      const std::uint32_t s = id_shard(record.lease_id);
      if (s >= shards_.size()) return Error::make(43, "apply: shard out of range");
      auto& shard = *shards_[s];
      std::lock_guard<std::shared_mutex> lock(shard.mu);
      auto it = shard.leases.find(record.lease_id);
      if (it == shard.leases.end()) return Error::make(46, "apply: drop of unknown lease");
      const LeaseRecord lease = it->second;
      // The capacity-return decision was made by the primary under its
      // own registry state and travels with the record — replay must not
      // re-derive it.
      if (record.aux & journal::kAuxReturnCapacity) {
        shard.registry.release(lease.executor, lease.workers, lease.memory);
        shard.free_workers.fetch_add(lease.workers, std::memory_order_relaxed);
      }
      unindex_lease(shard, it);
      shard.lease_count.store(shard.leases.size(), std::memory_order_relaxed);
      if (static_cast<journal::Op>(record.op) == journal::Op::Evict) {
        evictions_.fetch_add(1, std::memory_order_relaxed);
      }
      return Status::success();
    }
    case journal::Op::SetDraining: {
      const std::uint32_t s = id_shard(record.executor);
      const std::size_t local = static_cast<std::size_t>(id_low(record.executor));
      if (s >= shards_.size()) return Error::make(43, "apply: shard out of range");
      auto& shard = *shards_[s];
      std::lock_guard<std::shared_mutex> lock(shard.mu);
      if (local >= shard.registry.size()) {
        return Error::make(44, "apply: registry index diverged");
      }
      auto& entry = shard.registry.at(local);
      shard.free_workers.fetch_sub(entry.free_workers, std::memory_order_relaxed);
      shard.total_workers.fetch_sub(entry.total_workers, std::memory_order_relaxed);
      shard.registry.set_draining(local);
      return Status::success();
    }
    case journal::Op::MarkDead: {
      const std::uint32_t s = id_shard(record.executor);
      const std::size_t local = static_cast<std::size_t>(id_low(record.executor));
      if (s >= shards_.size()) return Error::make(43, "apply: shard out of range");
      auto& shard = *shards_[s];
      std::lock_guard<std::shared_mutex> lock(shard.mu);
      if (local >= shard.registry.size()) {
        return Error::make(44, "apply: registry index diverged");
      }
      auto& entry = shard.registry.at(local);
      if (!entry.alive) return Error::make(47, "apply: executor already dead");
      if (local < shard.hosted.size()) {
        const std::vector<std::uint64_t> ids(shard.hosted[local].begin(),
                                             shard.hosted[local].end());
        for (std::uint64_t id : ids) {
          auto it = shard.leases.find(id);
          if (it != shard.leases.end()) unindex_lease(shard, it);
        }
      }
      shard.lease_count.store(shard.leases.size(), std::memory_order_relaxed);
      if (!entry.draining) {
        shard.free_workers.fetch_sub(entry.free_workers, std::memory_order_relaxed);
        shard.total_workers.fetch_sub(entry.total_workers, std::memory_order_relaxed);
      }
      shard.registry.mark_dead(local);
      return Status::success();
    }
    case journal::Op::Migrate: {
      const std::uint32_t donor = id_shard(record.executor);
      const std::size_t donor_local = static_cast<std::size_t>(id_low(record.executor));
      const std::uint32_t receiver = id_shard(record.aux);
      const std::size_t receiver_local = static_cast<std::size_t>(id_low(record.aux));
      if (donor >= shards_.size() || receiver >= shards_.size()) {
        return Error::make(43, "apply: shard out of range");
      }
      ExecutorEntry moved;
      {
        auto& shard = *shards_[donor];
        std::lock_guard<std::shared_mutex> lock(shard.mu);
        if (donor_local >= shard.registry.size()) {
          return Error::make(44, "apply: registry index diverged");
        }
        auto& entry = shard.registry.at(donor_local);
        moved = entry;
        moved.free_workers = moved.total_workers;
        moved.free_memory = record.memory;
        moved.last_ack = record.time;
        shard.free_workers.fetch_sub(entry.free_workers, std::memory_order_relaxed);
        shard.total_workers.fetch_sub(entry.total_workers, std::memory_order_relaxed);
        shard.registry.mark_dead(donor_local);
      }
      {
        auto& shard = *shards_[receiver];
        std::lock_guard<std::shared_mutex> lock(shard.mu);
        if (shard.registry.size() != receiver_local) {
          return Error::make(44, "apply: registry index diverged");
        }
        const std::uint32_t workers = moved.total_workers;
        shard.registry.add(std::move(moved));
        shard.hosted.resize(shard.registry.size());
        shard.free_workers.fetch_add(workers, std::memory_order_relaxed);
        shard.total_workers.fetch_add(workers, std::memory_order_relaxed);
      }
      migrations_.fetch_add(1, std::memory_order_relaxed);
      return Status::success();
    }
    case journal::Op::Reattach: {
      const std::uint32_t s = id_shard(record.executor);
      const std::size_t local = static_cast<std::size_t>(id_low(record.executor));
      if (s >= shards_.size()) return Error::make(43, "apply: shard out of range");
      auto& shard = *shards_[s];
      std::lock_guard<std::shared_mutex> lock(shard.mu);
      if (local >= shard.registry.size()) {
        return Error::make(44, "apply: registry index diverged");
      }
      auto& entry = shard.registry.at(local);
      if (!entry.alive) return Error::make(47, "apply: reattach of dead executor");
      entry.last_ack = record.time;
      entry.info.epoch = record.aux2;
      return Status::success();
    }
  }
  return Error::make(48, "apply: unknown journal op");
}

// --------------------------------------------------------------------------
// ManagerState equality and digest (replicated fields only: heartbeat
// clocks, streams and the retransmission-scoped request_id of the cached
// registration message are not journaled and therefore not state).
// --------------------------------------------------------------------------

namespace {

bool info_equal(const RegisterExecutorMsg& a, const RegisterExecutorMsg& b) {
  return a.device == b.device && a.alloc_port == b.alloc_port && a.rdma_port == b.rdma_port &&
         a.cores == b.cores && a.memory_bytes == b.memory_bytes && a.epoch == b.epoch;
}

}  // namespace

bool ShardedResourceManager::ManagerState::operator==(const ManagerState& other) const {
  if (shards.size() != other.shards.size()) return false;
  if (grants != other.grants || local_grants != other.local_grants ||
      evictions != other.evictions || migrations != other.migrations ||
      next_shard != other.next_shard || executor_count != other.executor_count) {
    return false;
  }
  for (std::size_t s = 0; s < shards.size(); ++s) {
    const auto& a = shards[s];
    const auto& b = other.shards[s];
    if (a.next_lease != b.next_lease || a.free_workers != b.free_workers ||
        a.total_workers != b.total_workers) {
      return false;
    }
    if (a.executors.size() != b.executors.size() || a.leases.size() != b.leases.size() ||
        a.tenants.size() != b.tenants.size() || a.expiry != b.expiry) {
      return false;
    }
    for (std::size_t i = 0; i < a.executors.size(); ++i) {
      const auto& x = a.executors[i];
      const auto& y = b.executors[i];
      if (!info_equal(x.info, y.info) || x.total_workers != y.total_workers ||
          x.free_workers != y.free_workers || x.free_memory != y.free_memory ||
          x.alive != y.alive || x.draining != y.draining || x.locality != y.locality) {
        return false;
      }
    }
    for (std::size_t i = 0; i < a.leases.size(); ++i) {
      const auto& x = a.leases[i];
      const auto& y = b.leases[i];
      if (x.lease_id != y.lease_id || x.client_id != y.client_id || x.executor != y.executor ||
          x.workers != y.workers || x.memory != y.memory || x.expires_at != y.expires_at) {
        return false;
      }
    }
    for (std::size_t i = 0; i < a.tenants.size(); ++i) {
      const auto& x = a.tenants[i];
      const auto& y = b.tenants[i];
      if (x.client_id != y.client_id || x.held_workers != y.held_workers ||
          x.leases != y.leases) {
        return false;
      }
    }
  }
  return true;
}

std::uint64_t ShardedResourceManager::ManagerState::digest() const {
  using journal::mix;
  std::uint64_t h = 0;
  h = mix(h, shards.size());
  h = mix(h, grants);
  h = mix(h, local_grants);
  h = mix(h, evictions);
  h = mix(h, migrations);
  h = mix(h, next_shard);
  h = mix(h, executor_count);
  for (const auto& shard : shards) {
    h = mix(h, shard.next_lease);
    h = mix(h, static_cast<std::uint64_t>(shard.free_workers));
    h = mix(h, static_cast<std::uint64_t>(shard.total_workers));
    h = mix(h, shard.executors.size());
    for (const auto& ex : shard.executors) {
      h = mix(h, ex.info.device);
      h = mix(h, ex.info.alloc_port);
      h = mix(h, ex.info.rdma_port);
      h = mix(h, ex.info.cores);
      h = mix(h, ex.info.memory_bytes);
      h = mix(h, ex.info.epoch);
      h = mix(h, ex.total_workers);
      h = mix(h, ex.free_workers);
      h = mix(h, ex.free_memory);
      h = mix(h, static_cast<std::uint64_t>(ex.alive));
      h = mix(h, static_cast<std::uint64_t>(ex.draining));
      h = mix(h, ex.locality);
    }
    h = mix(h, shard.leases.size());
    for (const auto& ls : shard.leases) {
      h = mix(h, ls.lease_id);
      h = mix(h, ls.client_id);
      h = mix(h, ls.executor);
      h = mix(h, ls.workers);
      h = mix(h, ls.memory);
      h = mix(h, static_cast<std::uint64_t>(ls.expires_at));
    }
    h = mix(h, shard.tenants.size());
    for (const auto& ts : shard.tenants) {
      h = mix(h, ts.client_id);
      h = mix(h, ts.held_workers);
      h = mix(h, ts.leases.size());
      for (std::uint64_t id : ts.leases) h = mix(h, id);
    }
    h = mix(h, shard.expiry.size());
    for (const auto& [at, id] : shard.expiry) {
      h = mix(h, static_cast<std::uint64_t>(at));
      h = mix(h, id);
    }
  }
  return h;
}

std::vector<Placement> ShardedResourceManager::placement_log() const {
  std::vector<Placement> merged;
  for (std::uint32_t s = 0; s < shards_.size(); ++s) {
    auto& shard = *shards_[s];
    std::shared_lock<std::shared_mutex> lock(shard.mu);
    for (const auto& p : shard.log) {
      Placement global = p;
      global.executor = static_cast<std::size_t>(make_id(s, p.executor));
      merged.push_back(global);
    }
  }
  return merged;
}

}  // namespace rfs::rfaas

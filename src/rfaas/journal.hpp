// Replicated lease-state journal of the resource manager (HA, ROADMAP #2).
//
// Every state transition the ShardedResourceManager applies — executor
// registration, grant, renew, release, expiry, eviction, drain, death,
// migration — is appended here as one fixed-layout JournalRecordMsg and
// fanned out to attached sinks (warm standby replicas, wire streams).
// Records are *delta* records: each one fully describes the mutation it
// stands for (including decisions the primary already made, like whether
// a release returns capacity to its executor), so replay is mechanical
// and never re-runs placement policy, routing RNG or quota logic.
//
// Integrity: every record carries a checksum chained over all of its
// fields plus the previous record's checksum, so a corrupted, reordered
// or truncated stream is detected at the first bad record. The
// serialized form additionally carries the chain seed and a trailer, so
// a chopped tail fails structurally even when whole records are missing.
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <span>
#include <vector>

#include "common/bytes.hpp"
#include "common/result.hpp"
#include "common/rng.hpp"
#include "rfaas/protocol.hpp"

namespace rfs::rfaas {

namespace journal {

/// Discriminator of a journal record (JournalRecordMsg::op). The field
/// meaning of a record depends on its op; unused fields are zero.
enum class Op : std::uint8_t {
  AddExecutor = 1,  ///< executor registered on a shard (executor=id, workers=total,
                    ///<   memory=free, lease_id=offerable bytes, client_id=locality,
                    ///<   aux=packed endpoint, aux2=epoch<<32|cores, time=last_ack)
  Grant,            ///< lease granted (lease_id, client_id, executor, workers,
                    ///<   memory, time=expires_at, aux bit1=rack-local)
  Renew,            ///< lease deadline moved (lease_id, time=new expires_at)
  Release,          ///< client released (lease fields; aux bit0=capacity returned)
  Expire,           ///< expiry sweep reclaimed (lease fields; aux bit0 as above)
  Evict,            ///< manager evicted (lease fields; aux bit0 as above)
  SetDraining,      ///< executor capacity left the pool (executor=id)
  MarkDead,         ///< executor died; hosted leases dropped (executor=id)
  Migrate,          ///< registration moved between shards (executor=old id,
                    ///<   aux=new id, memory=moved free bytes, time=move time)
  Reattach,         ///< live executor re-registered in place after a failover
                    ///<   (executor=id, aux2=new session epoch, time=now)
};

/// Human-readable op name (logging, test diagnostics).
const char* to_string(Op op);

/// JournalRecordMsg::aux flag: Release/Expire/Evict returned the lease's
/// capacity to its executor (the executor was schedulable at the time).
inline constexpr std::uint64_t kAuxReturnCapacity = 1ull << 0;
/// JournalRecordMsg::aux flag: the grant landed in the client's rack.
inline constexpr std::uint64_t kAuxLocalGrant = 1ull << 1;

/// Packs an executor's control-plane endpoint into JournalRecordMsg::aux.
inline constexpr std::uint64_t pack_endpoint(std::uint32_t device, std::uint16_t alloc_port,
                                             std::uint16_t rdma_port) {
  return (static_cast<std::uint64_t>(device) << 32) |
         (static_cast<std::uint64_t>(alloc_port) << 16) | rdma_port;
}

/// One step of the chained checksum / digest mix (splitmix64-based).
inline constexpr std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  return splitmix64(h ^ (v + kSplitmix64Gamma + (h << 6) + (h >> 2)));
}

/// Checksum of `r` given the previous record's checksum. Covers every
/// field except `checksum` itself.
std::uint64_t chain_checksum(const JournalRecordMsg& r, std::uint64_t prev);

}  // namespace journal

/// Append-only, in-order log of manager state transitions with chained
/// checksums and sink fan-out. Appends are thread-safe behind a leaf
/// mutex (they happen under the owning shard's lock); sinks run inline
/// on the appending thread, in append order.
class Journal {
 public:
  /// A replication target: called once per appended record, after the
  /// record's seq and checksum are assigned.
  using Sink = std::function<void(const JournalRecordMsg&)>;

  /// Appends one record: assigns the next seq and the chained checksum,
  /// stores the record and fans it out to every sink. Returns the
  /// completed record (as streamed).
  JournalRecordMsg append(JournalRecordMsg r);

  /// Registers a replication sink. Existing records are NOT replayed to
  /// it — pair with a snapshot (ShardedResourceManager::export_state)
  /// covering everything up to last_seq().
  void add_sink(Sink sink);

  /// Seq of the most recent record (0 = empty log).
  [[nodiscard]] std::uint64_t last_seq() const;
  /// Chain checksum after the most recent record (0 = empty log).
  [[nodiscard]] std::uint64_t last_checksum() const;
  /// Records currently retained (after truncation).
  [[nodiscard]] std::size_t size() const;
  /// First retained seq (records before it were folded into a snapshot).
  [[nodiscard]] std::uint64_t base_seq() const;

  /// Copies the retained records with seq >= from_seq, in order.
  [[nodiscard]] std::vector<JournalRecordMsg> records(std::uint64_t from_seq = 1) const;

  /// Drops retained records with seq < upto_seq — a snapshot covering
  /// them was taken. The chain is unaffected (each record stores its own
  /// checksum); replay restarts from snapshot + suffix.
  void truncate_before(std::uint64_t upto_seq);

  /// Serializes the retained suffix starting at from_seq:
  /// [from_seq u64][chain seed u64][count u64][wire records...][trailer u64].
  /// The chain seed is the checksum preceding the first serialized record
  /// and the trailer repeats the last record's checksum, so deserialize()
  /// is self-contained and rejects both corruption and truncation.
  [[nodiscard]] Bytes serialize(std::uint64_t from_seq = 1) const;

  /// Parses and fully verifies a serialize()d log: structural bounds,
  /// contiguous seqs, the checksum chain from the embedded seed, and the
  /// trailer. Any tampering or chopped tail yields an Error.
  static Result<std::vector<JournalRecordMsg>> deserialize(std::span<const std::uint8_t> raw);

 private:
  mutable std::mutex mu_;
  std::vector<JournalRecordMsg> records_;
  std::vector<Sink> sinks_;
  std::uint64_t next_seq_ = 1;
  std::uint64_t last_checksum_ = 0;
  std::uint64_t base_seq_ = 1;          // seq of records_.front() when non-empty
  std::uint64_t base_checksum_ = 0;     // chain checksum preceding base_seq_
};

}  // namespace rfs::rfaas

#include "rfaas/replica.hpp"

namespace rfs::rfaas {

StandbyReplica::StandbyReplica(const Config& config)
    : config_(standby_config(config)),
      core_(std::make_unique<ShardedResourceManager>(config_)) {}

Status StandbyReplica::install_snapshot(const ShardedResourceManager::ManagerState& state,
                                        const SnapshotOfferMsg& offer, Time now) {
  std::lock_guard<std::mutex> lock(mu_);
  if (offer.digest != state.digest()) {
    return Error::make(50, "replica: snapshot digest mismatch (torn or stale snapshot)");
  }
  std::uint64_t leases = 0;
  for (const auto& shard : state.shards) leases += shard.leases.size();
  if (offer.lease_count != leases) {
    return Error::make(51, "replica: snapshot lease count mismatch");
  }
  // A newer manager epoch resets the seq space: a promoted primary
  // starts a fresh journal, so its snapshot legitimately carries a
  // lower upto_seq than what we replayed from the previous epoch.
  // Within one epoch, a snapshot behind our cursor is stale.
  if (offer.manager_epoch <= snapshot_epoch_ && offer.upto_seq < applied_seq_) {
    return Error::make(52, "replica: snapshot older than replayed state");
  }
  // Rebuild from scratch: restore_state requires a fresh core, and a
  // re-offered snapshot (periodic truncation) replaces ours wholesale.
  auto fresh = std::make_unique<ShardedResourceManager>(config_);
  if (auto restored = fresh->restore_state(state, now); !restored) return restored;
  core_ = std::move(fresh);
  applied_seq_ = offer.upto_seq;
  chain_known_ = offer.upto_seq == 0;  // genesis chain seeds at 0
  last_checksum_ = 0;
  snapshot_epoch_ = offer.manager_epoch;
  return Status::success();
}

Status StandbyReplica::apply(const JournalRecordMsg& record) {
  std::lock_guard<std::mutex> lock(mu_);
  if (record.seq <= applied_seq_) return Status::success();  // covered: duplicate stream
  if (record.seq != applied_seq_ + 1) {
    return Error::make(53, "replica: journal seq gap (lost records)");
  }
  if (chain_known_) {
    if (record.checksum != journal::chain_checksum(record, last_checksum_)) {
      return Error::make(54, "replica: journal checksum chain mismatch (corruption)");
    }
  } else {
    // First record on top of a snapshot: the chain value at the snapshot
    // boundary is unknown, so this record seeds it (trust-on-first-use;
    // everything after is fully verified).
    chain_known_ = true;
  }
  if (auto applied = core_->apply(record); !applied) return applied;
  applied_seq_ = record.seq;
  last_checksum_ = record.checksum;
  return Status::success();
}

Status StandbyReplica::apply_wire(std::span<const std::uint8_t> raw) {
  auto record = decode_journal_record(raw);
  if (!record) return record.error();
  return apply(record.value());
}

Status StandbyReplica::replay(std::span<const std::uint8_t> serialized_log) {
  auto records = Journal::deserialize(serialized_log);
  if (!records) return records.error();
  for (const auto& record : records.value()) {
    if (auto applied = apply(record); !applied) return applied;
  }
  return Status::success();
}

std::uint64_t StandbyReplica::applied_seq() const {
  std::lock_guard<std::mutex> lock(mu_);
  return applied_seq_;
}

std::uint32_t StandbyReplica::snapshot_epoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  return snapshot_epoch_;
}

}  // namespace rfs::rfaas

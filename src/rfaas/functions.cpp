#include "rfaas/functions.hpp"

#include <cstring>

namespace rfs::rfaas {

void FunctionRegistry::add(CodePackage package) {
  packages_[package.name] = std::move(package);
}

Result<const CodePackage*> FunctionRegistry::find(const std::string& name) const {
  auto it = packages_.find(name);
  if (it == packages_.end()) {
    return Error::make(30, "function not found in registry: " + name);
  }
  return &it->second;
}

bool FunctionRegistry::contains(const std::string& name) const {
  return packages_.count(name) != 0;
}

void FunctionRegistry::add_echo(const std::string& name) {
  CodePackage pkg;
  pkg.name = name;
  pkg.code_size = 7880;
  pkg.entry = [](const void* in, std::uint32_t size, void* out) -> std::uint32_t {
    std::memcpy(out, in, size);
    return size;
  };
  pkg.cost = [](std::uint32_t) -> Duration { return 0; };
  add(std::move(pkg));
}

}  // namespace rfs::rfaas

// Gray-failure detection: per-executor health scoring + circuit breaker.
//
// A crashed executor announces itself (dead connection, flushed CQs); a
// gray one does not — it stays reachable but slow, poisoning tail
// latency while every liveness check passes. The tracker keeps two
// EWMAs per executor: completion latency (successes only) and failure
// rate (timeouts, corruptions, dead connections), and feeds a standard
// Closed -> Open -> HalfOpen circuit breaker:
//
//   Closed:   traffic flows; a failure EWMA above the threshold (after a
//             minimum sample count) trips the breaker.
//   Open:     the executor is skipped by selection for open_timeout.
//   HalfOpen: one probe invocation is let through; success closes the
//             breaker, failure re-opens it.
//
// Both the client (worker selection, hedging delay) and the resource
// manager (scheduler deprioritization, quarantine drain after repeated
// trips) consume this — the same signal at both ends of the data plane.
#pragma once

#include <cstdint>

#include "common/units.hpp"
#include "rfaas/config.hpp"

namespace rfs::rfaas {

class HealthTracker {
 public:
  enum class Breaker : std::uint8_t { Closed, Open, HalfOpen };

  HealthTracker() = default;
  explicit HealthTracker(const FaultToleranceConfig& cfg) : cfg_(cfg) {}

  /// Records one invocation outcome. `latency` only feeds the latency
  /// EWMA on success (a timeout's latency is the deadline, not a signal).
  void record(bool ok, Duration latency, Time now) {
    ++samples_;
    ok ? ++ok_count_ : ++fail_count_;
    const double a = cfg_.ewma_alpha;
    failure_ewma_ = (1.0 - a) * failure_ewma_ + a * (ok ? 0.0 : 1.0);
    if (ok) {
      latency_ewma_ = latency_ewma_ == 0
                          ? static_cast<double>(latency)
                          : (1.0 - a) * latency_ewma_ + a * static_cast<double>(latency);
    }
    switch (breaker_) {
      case Breaker::Closed:
        if (samples_ >= cfg_.breaker_min_samples &&
            failure_ewma_ > cfg_.breaker_failure_threshold) {
          trip(now);
        }
        break;
      case Breaker::HalfOpen:
        if (ok) {
          // The probe came back healthy: close and forgive the history,
          // or the stale failure EWMA would re-trip on the next miss.
          breaker_ = Breaker::Closed;
          failure_ewma_ = 0.0;
          samples_ = 0;
        } else {
          trip(now);
        }
        break;
      case Breaker::Open:
        // A straggler completion from before the trip; no state change.
        break;
    }
  }

  /// True when selection may route an invocation here. An Open breaker
  /// past its timeout transitions to HalfOpen and admits one probe.
  bool allow(Time now) {
    if (breaker_ == Breaker::Open) {
      if (now < open_until_) return false;
      breaker_ = Breaker::HalfOpen;
      probe_outstanding_ = false;
    }
    if (breaker_ == Breaker::HalfOpen) {
      if (probe_outstanding_) return false;
      probe_outstanding_ = true;  // exactly one probe at a time
    }
    return true;
  }

  [[nodiscard]] Breaker state() const { return breaker_; }
  [[nodiscard]] double failure_rate() const { return failure_ewma_; }
  [[nodiscard]] Duration ewma_latency() const { return static_cast<Duration>(latency_ewma_); }
  /// Closed->Open transitions so far — the quarantine trigger counts
  /// these, not raw failures, so one burst cannot drain an executor.
  [[nodiscard]] unsigned trips() const { return trips_; }
  /// Lifetime outcome tallies (reported to the resource manager on trip).
  [[nodiscard]] std::uint32_t ok_count() const { return ok_count_; }
  [[nodiscard]] std::uint32_t fail_count() const { return fail_count_; }

 private:
  void trip(Time now) {
    breaker_ = Breaker::Open;
    open_until_ = now + cfg_.breaker_open_timeout;
    ++trips_;
  }

  FaultToleranceConfig cfg_{};
  double failure_ewma_ = 0.0;
  double latency_ewma_ = 0.0;
  std::uint64_t samples_ = 0;
  std::uint32_t ok_count_ = 0;
  std::uint32_t fail_count_ = 0;
  Breaker breaker_ = Breaker::Closed;
  Time open_until_ = 0;
  bool probe_outstanding_ = false;
  unsigned trips_ = 0;
};

}  // namespace rfs::rfaas

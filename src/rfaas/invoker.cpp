#include "rfaas/invoker.hpp"

#include "common/log.hpp"

namespace rfs::rfaas {

Invoker::Invoker(sim::Engine& engine, fabric::Fabric& fabric, net::TcpNetwork& tcp,
                 const Config& config, fabric::Device& device, fabric::DeviceId rm_device,
                 std::uint16_t rm_port, std::uint32_t client_id)
    : engine_(engine),
      fabric_(fabric),
      tcp_(tcp),
      config_(config),
      device_(device),
      rm_device_(rm_device),
      rm_port_(rm_port),
      client_id_(client_id),
      pd_(device.alloc_pd()),
      slots_(std::make_unique<sim::Semaphore>(0)) {}

Invoker::~Invoker() = default;

sim::Task<Status> Invoker::allocate(const AllocationSpec& spec) {
  polling_client_ = spec.polling_client;

  // Stage 1: connect to the resource manager (once; cached afterwards).
  Time t0 = engine_.now();
  if (rm_stream_ == nullptr || rm_stream_->closed()) {
    auto stream = co_await tcp_.connect(device_.id(), rm_device_, rm_port_);
    if (!stream.ok()) co_return stream.error();
    rm_stream_ = stream.value();
  }
  cold_start_.connect_manager = engine_.now() - t0;

  std::uint32_t remaining = spec.workers;
  while (remaining > 0) {
    // Stage 2: lease acquisition (A1). Grants may be partial; the client
    // aggregates leases until the desired parallelism is reached.
    t0 = engine_.now();
    LeaseRequestMsg req;
    req.client_id = client_id_;
    req.workers = remaining;
    req.memory_bytes = spec.memory_per_worker;
    req.timeout = spec.lease_timeout;
    rm_stream_->send(encode(req));
    auto reply = co_await rm_stream_->recv();
    if (!reply.has_value()) co_return Error::make(40, "resource manager disconnected");
    auto type = peek_type(*reply);
    if (!type.ok() || type.value() != MsgType::LeaseGrant) {
      auto err = decode_lease_error(*reply);
      co_return Error::make(41, "lease denied: " + (err.ok() ? err.value() : "unknown"));
    }
    auto grant_msg = decode_lease_grant(*reply);
    if (!grant_msg) co_return grant_msg.error();
    const LeaseGrantMsg grant = grant_msg.value();
    cold_start_.lease += engine_.now() - t0;

    // Stage 3: allocation on the spot executor (A2).
    t0 = engine_.now();
    auto mgr = co_await tcp_.connect(device_.id(), grant.device, grant.alloc_port);
    if (!mgr.ok()) co_return mgr.error();
    auto mgr_stream = mgr.value();

    AllocationRequestMsg alloc;
    alloc.lease_id = grant.lease_id;
    alloc.client_id = client_id_;
    alloc.workers = grant.workers;
    alloc.memory_bytes = spec.memory_per_worker;
    alloc.sandbox = static_cast<std::uint8_t>(spec.sandbox);
    alloc.policy = static_cast<std::uint8_t>(spec.policy);
    alloc.hot_timeout = spec.hot_timeout;
    alloc.expires_at = grant.expires_at;
    mgr_stream->send(encode(alloc));
    auto alloc_raw = co_await mgr_stream->recv();
    if (!alloc_raw.has_value()) co_return Error::make(42, "allocator disconnected");
    auto alloc_reply = decode_allocation_reply(*alloc_raw);
    if (!alloc_reply) co_return alloc_reply.error();
    if (!alloc_reply.value().ok) {
      co_return Error::make(43, "allocation failed: " + alloc_reply.value().error);
    }
    const Duration round = engine_.now() - t0;
    cold_start_.spawn_workers += alloc_reply.value().spawn_ns;
    cold_start_.submit_allocation +=
        round > alloc_reply.value().spawn_ns ? round - alloc_reply.value().spawn_ns : 0;

    // Stage 4: direct RDMA connections to every worker (D2).
    t0 = engine_.now();
    sim::WaitGroup wg(grant.workers);
    bool connect_failed = false;
    for (std::uint32_t i = 0; i < grant.workers; ++i) {
      auto one = [](Invoker* self, LeaseGrantMsg g, std::uint64_t sandbox, std::uint32_t idx,
                    sim::WaitGroup* group, bool* failed) -> sim::Task<void> {
        auto st = co_await self->connect_worker(g, sandbox, idx);
        if (!st.ok()) *failed = true;
        group->done();
      };
      sim::spawn(engine_, one(this, grant, alloc_reply.value().sandbox_id, i, &wg,
                              &connect_failed));
    }
    co_await wg.wait();
    if (connect_failed) co_return Error::make(44, "worker connection failed");
    cold_start_.connect_workers += engine_.now() - t0;

    // Stage 5: submit the function code. The message is padded to the
    // library size so the transfer cost is real.
    t0 = engine_.now();
    SubmitCodeMsg code;
    code.sandbox_id = alloc_reply.value().sandbox_id;
    code.function_name = spec.function_name;
    auto payload = encode(code);
    std::uint64_t code_size = spec.code_size;
    code.code_size = code_size;
    payload = encode(code);  // re-encode with the final size
    if (code_size > payload.size()) payload.resize(code_size);
    mgr_stream->send(std::move(payload));
    auto code_raw = co_await mgr_stream->recv();
    if (!code_raw.has_value()) co_return Error::make(45, "allocator disconnected");
    auto code_type = peek_type(*code_raw);
    if (!code_type.ok() || code_type.value() != MsgType::SubmitCodeOk) {
      auto err = decode_lease_error(*code_raw);
      co_return Error::make(46, "code submission failed: " +
                                    (err.ok() ? err.value() : "unknown"));
    }
    cold_start_.submit_code += engine_.now() - t0;

    allocations_.push_back(
        Allocation{grant.lease_id, alloc_reply.value().sandbox_id, mgr_stream});
    remaining -= grant.workers;
  }
  co_return Status::success();
}

sim::Task<Status> Invoker::connect_worker(const LeaseGrantMsg& grant, std::uint64_t sandbox_id,
                                          std::uint32_t index) {
  ByteWriter pdata;
  pdata.u64(sandbox_id);
  pdata.u32(index);
  Bytes pdata_bytes = pdata.take();
  auto conn = co_await rdmalib::Connection::connect(fabric_, device_, pd_, grant.device,
                                                    grant.rdma_port, std::move(pdata_bytes));
  if (!conn.ok()) co_return conn.error();

  ByteReader rd(conn.value()->accept_data());
  auto addr = rd.u64();
  auto rkey = rd.u32();
  auto len = rd.u32();
  if (!addr || !rkey || !len) co_return Error::make(47, "bad worker descriptor");

  WorkerRef ref;
  ref.conn = std::move(conn).take();
  ref.remote_buf = rdmalib::RemoteBuffer{addr.value(), rkey.value(), len.value()};
  ref.max_payload = len.value() - InvocationHeader::kSize;
  workers_.push_back(std::move(ref));
  free_workers_.push_back(workers_.size() - 1);
  slots_->release();
  co_return Status::success();
}

sim::Task<Result<std::uint16_t>> Invoker::add_function(const std::string& name) {
  std::uint16_t index = 0;
  for (auto& alloc : allocations_) {
    SubmitCodeMsg code;
    code.sandbox_id = alloc.sandbox_id;
    code.function_name = name;
    code.code_size = 0;
    alloc.mgr_stream->send(encode(code));
    auto raw = co_await alloc.mgr_stream->recv();
    if (!raw.has_value()) co_return Error::make(45, "allocator disconnected");
    auto ok = decode_submit_code_ok(*raw);
    if (!ok) co_return Error::make(46, "code submission failed for " + name);
    index = ok.value().fn_index;
  }
  co_return index;
}

sim::Future<InvocationResult> Invoker::submit_raw(std::uint16_t fn_index,
                                                  std::uint8_t* header_ptr, fabric::Sge sge,
                                                  std::uint32_t in_lkey,
                                                  rdmalib::RemoteBuffer out) {
  (void)in_lkey;
  sim::Promise<InvocationResult> promise;
  auto future = promise.get_future();
  sim::spawn(engine_, run_submission(fn_index, header_ptr, sge, out, std::move(promise)));
  return future;
}

sim::Task<void> Invoker::run_submission(std::uint16_t fn_index, std::uint8_t* header_ptr,
                                        fabric::Sge sge, rdmalib::RemoteBuffer out,
                                        sim::Promise<InvocationResult> promise) {
  const Time submitted = engine_.now();
  InvocationResult result;

  // Redirect loop: a rejected warm invocation is re-sent to another
  // executor; RDMA-speed rejections make this cheap (Sec. III-D).
  const std::size_t max_attempts = workers_.empty() ? 1 : 2 * workers_.size();
  for (std::size_t attempt = 0; attempt < max_attempts; ++attempt) {
    co_await slots_->acquire();
    std::size_t idx = free_workers_.front();
    free_workers_.pop_front();

    result = co_await invoke_on(idx, fn_index, header_ptr, sge, out);

    free_workers_.push_back(idx);
    slots_->release();

    if (!result.rejected) break;
    ++rejections_;
    // Brief backoff before retrying on the (FIFO) next worker.
    co_await sim::delay(2_us);
  }
  // Client-observed latency includes queueing for a free worker and any
  // redirects, so the submission timestamp is the original one.
  result.submitted_at = submitted;
  promise.set_value(result);
}

sim::Task<InvocationResult> Invoker::invoke_on(std::size_t worker, std::uint16_t fn_index,
                                               std::uint8_t* header_ptr, fabric::Sge sge,
                                               rdmalib::RemoteBuffer out) {
  InvocationResult result;
  result.submitted_at = engine_.now();
  WorkerRef& w = workers_[worker];
  if (w.conn == nullptr || !w.conn->alive()) {
    result.completed_at = engine_.now();
    co_return result;  // ok=false: executor is gone (lease terminated?)
  }

  const std::uint32_t invocation_id = next_invocation_++ & 0x7FFFFu;

  // Fill the 12-byte header: where the executor writes the result.
  InvocationHeader header;
  header.result_addr = out.addr;
  header.result_rkey = out.rkey;
  header.pack(header_ptr);

  // Post the receive for the result notification first.
  (void)w.conn->post_recv_empty(invocation_id);

  // Write header + payload into the worker's buffer. Inlining is possible
  // only when header+payload fit the ceiling — the 12 extra bytes are why
  // rFaaS loses inlining earlier than raw RDMA (Fig. 8).
  rdmalib::RemoteBuffer dst = w.remote_buf;
  const bool inline_ok = sge.length <= fabric_.model().max_inline;
  auto st = w.conn->post_write_imm(sge, dst, Imm::invocation(fn_index, invocation_id),
                                   invocation_id, inline_ok);
  if (!st.ok()) {
    result.completed_at = engine_.now();
    co_return result;
  }

  // Drain our own send completion (error => connection died).
  auto send_wc = polling_client_ ? co_await w.conn->wait_send_polling()
                                 : co_await w.conn->wait_send_blocking();
  if (send_wc.status != fabric::WcStatus::Success) {
    result.completed_at = engine_.now();
    co_return result;
  }

  // Await the result write into our memory.
  auto wc = polling_client_ ? co_await w.conn->wait_recv_polling()
                            : co_await w.conn->wait_recv_blocking();
  co_await sim::delay(config_.client_completion);
  result.completed_at = engine_.now();
  if (wc.status != fabric::WcStatus::Success || !wc.has_imm) co_return result;
  if (Imm::result_id(wc.imm) != invocation_id) {
    log::warn("invoker", "immediate mismatch: got ", wc.imm, " expected ", invocation_id);
    co_return result;
  }
  result.rejected = Imm::rejected(wc.imm);
  result.ok = !result.rejected;
  result.output_bytes = wc.byte_len;
  co_return result;
}

sim::Task<void> Invoker::deallocate() {
  for (auto& alloc : allocations_) {
    if (alloc.mgr_stream == nullptr || alloc.mgr_stream->closed()) continue;
    DeallocateMsg msg;
    msg.sandbox_id = alloc.sandbox_id;
    msg.lease_id = alloc.lease_id;
    alloc.mgr_stream->send(encode(msg));
    (void)co_await alloc.mgr_stream->recv();  // DeallocateOk
    alloc.mgr_stream->close();
  }
  allocations_.clear();
  for (auto& w : workers_) {
    if (w.conn != nullptr) w.conn->close();
  }
  workers_.clear();
  free_workers_.clear();
  slots_ = std::make_unique<sim::Semaphore>(0);
}

}  // namespace rfs::rfaas

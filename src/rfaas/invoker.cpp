#include "rfaas/invoker.hpp"

#include <algorithm>
#include <cstring>

#include "common/log.hpp"

namespace rfs::rfaas {

// --------------------------------------------------------------------------
// LeaseSet
// --------------------------------------------------------------------------

LeaseSet::LeaseSet(sim::Engine& engine, LeaseSetOptions options)
    : state_(std::make_shared<State>()) {
  state_->engine = &engine;
  state_->options = options;
  state_->jitter = Rng(options.jitter_seed);
}

LeaseSet::~LeaseSet() {
  // The renewal/notification/healing actors only hold the shared state;
  // flag them down and let them exit at their next wake (or be drained
  // with the engine). Callbacks are cleared so a late actor never calls
  // into a torn-down owner.
  state_->running = false;
  state_->healing_enabled = false;
  state_->renewed_fn = nullptr;
  state_->renewal_failed_fn = nullptr;
  state_->expired_fn = nullptr;
  state_->terminated_fn = nullptr;
  state_->reallocated_fn = nullptr;
  state_->chain_extended_fn = nullptr;
}

void LeaseSet::bind(std::shared_ptr<net::TcpStream> rm_stream,
                    std::shared_ptr<sim::Mutex> request_mutex) {
  state_->stream = std::move(rm_stream);
  state_->request_mutex = std::move(request_mutex);
}

void LeaseSet::bind(std::shared_ptr<Session> rm_session) {
  state_->session = std::move(rm_session);
  // The session owns its stream's recv side; keep the bare-stream fields
  // in sync so availability checks see the same transport.
  state_->stream = state_->session->stream();
  state_->request_mutex = nullptr;
}

void LeaseSet::subscribe(std::shared_ptr<net::TcpStream> notify_stream,
                         std::uint32_t client_id) {
  state_->client_id = client_id;
  state_->healing_enabled = true;
  SubscribeEventsMsg msg;
  msg.client_id = client_id;
  notify_stream->send(encode(msg));
  sim::spawn(*state_->engine, notify_loop(state_, std::move(notify_stream)));
}

void LeaseSet::subscribe(std::shared_ptr<Session> notify_session, std::uint32_t client_id) {
  state_->client_id = client_id;
  state_->healing_enabled = true;
  SubscribeEventsMsg msg;
  msg.client_id = client_id;
  // Subscriptions are idempotent at the manager (latest wins), so a
  // duplicated or lost subscribe needs no request/reply discipline; a
  // lost one is resent by the next allocate() on a fresh stream.
  notify_session->send_raw(encode(msg));
  sim::spawn(*state_->engine, notify_loop_session(state_, std::move(notify_session)));
}

void LeaseSet::configure(LeaseSetOptions options) {
  if (options.jitter_seed != state_->options.jitter_seed) {
    state_->jitter = Rng(options.jitter_seed);
  }
  state_->options = options;
}

void LeaseSet::track(std::uint64_t lease_id, Time expires_at, Duration original_timeout,
                     std::uint32_t workers, std::uint64_t memory_per_worker) {
  Tracked t;
  t.expires_at = expires_at;
  t.original_timeout = original_timeout;
  t.workers = workers;
  t.memory_per_worker = memory_per_worker;
  t.origin = lease_id;
  state_->leases[lease_id] = t;
  state_->current_of_origin[lease_id] = lease_id;
  state_->wake.set();  // un-park the renewal actor
}

bool LeaseSet::untrack(std::uint64_t lease_id) {
  auto it = state_->leases.find(lease_id);
  if (it == state_->leases.end()) return false;
  // Only the chain's primary tears the origin mapping down: untracking a
  // secondary (partial-heal) lease must not orphan the chain.
  auto cur = state_->current_of_origin.find(it->second.origin);
  if (cur != state_->current_of_origin.end() && cur->second == lease_id) {
    state_->current_of_origin.erase(cur);
  }
  state_->leases.erase(it);
  return true;
}

std::uint64_t LeaseSet::resolve(std::uint64_t origin) const {
  auto it = state_->current_of_origin.find(origin);
  return it == state_->current_of_origin.end() ? origin : it->second;
}

std::uint64_t LeaseSet::abandon(std::uint64_t origin) {
  const std::uint64_t current = resolve(origin);
  if (state_->healing.count(origin) > 0) state_->canceled.insert(origin);
  // Secondary chain leases (partial heals) are released here directly:
  // the caller only learns the primary id, and ReleaseResources is
  // fire-and-forget so this needs no request/response slot.
  for (auto it = state_->leases.begin(); it != state_->leases.end();) {
    if (it->second.origin != origin || it->first == current) {
      ++it;
      continue;
    }
    ReleaseResourcesMsg rel;
    rel.lease_id = it->first;
    rel.workers = it->second.workers;
    rel.memory_bytes = it->second.memory_per_worker * it->second.workers;
    send_release(state_, rel);
    it = state_->leases.erase(it);
  }
  state_->leases.erase(current);
  state_->current_of_origin.erase(origin);
  return current;
}

void LeaseSet::start() {
  if (state_->session == nullptr &&
      (state_->stream == nullptr || state_->request_mutex == nullptr)) {
    return;
  }
  // Re-arm healing after a stop()/start() cycle (subscribe() set it the
  // first time; the notification listener itself survives stop()).
  if (state_->options.self_heal) state_->healing_enabled = true;
  if (state_->running) return;
  state_->running = true;
  // Bump the epoch so an actor surviving from before a stop() retires
  // itself on its next wake instead of running alongside this one.
  sim::spawn(*state_->engine, renew_loop(state_, ++state_->epoch));
}

void LeaseSet::stop() {
  state_->running = false;
  state_->healing_enabled = false;
  state_->wake.set();
}

void LeaseSet::on_renewed(RenewedFn fn) { state_->renewed_fn = std::move(fn); }
void LeaseSet::on_renewal_failed(RenewalFailedFn fn) {
  state_->renewal_failed_fn = std::move(fn);
}
void LeaseSet::on_expired(ExpiredFn fn) { state_->expired_fn = std::move(fn); }
void LeaseSet::on_terminated(TerminatedFn fn) { state_->terminated_fn = std::move(fn); }
void LeaseSet::on_reallocated(ReallocatedFn fn) { state_->reallocated_fn = std::move(fn); }
void LeaseSet::on_chain_extended(ReallocatedFn fn) {
  state_->chain_extended_fn = std::move(fn);
}

std::size_t LeaseSet::size() const { return state_->leases.size(); }

Time LeaseSet::earliest_expiry() const {
  Time earliest = 0;
  for (const auto& [id, t] : state_->leases) {
    if (earliest == 0 || t.expires_at < earliest) earliest = t.expires_at;
  }
  return earliest;
}

std::uint64_t LeaseSet::renewals() const { return state_->renewals; }
std::uint64_t LeaseSet::renewal_failures() const { return state_->renewal_failures; }
std::uint64_t LeaseSet::expiries() const { return state_->expiries; }
std::uint64_t LeaseSet::terminations() const { return state_->terminations; }
std::uint64_t LeaseSet::losses() const { return state_->losses; }
std::uint64_t LeaseSet::reallocations() const { return state_->reallocations; }
std::uint64_t LeaseSet::realloc_failures() const { return state_->realloc_failures; }

std::uint64_t LeaseSet::overload_denials() const { return state_->overload_denials; }
std::uint64_t LeaseSet::revalidations() const { return state_->revalidated; }
std::uint64_t LeaseSet::revalidation_losses() const { return state_->revalidation_losses; }
std::uint64_t LeaseSet::failover_announces() const { return state_->failover_announces; }

void LeaseSet::revalidate() { sim::spawn(*state_->engine, revalidate_all(state_)); }

namespace {

/// Renewal margin of one tracked lease, clamped so a successful renewal
/// always buys strictly more validity than the margin consumes (no
/// zero-time renewal spin when margin >= extension).
Duration effective_margin(const LeaseSetOptions& options, Duration original_timeout) {
  Duration extension = options.extension != 0 ? options.extension : original_timeout;
  if (extension == 0) extension = 1_s;
  return std::min(options.renew_margin, extension / 2);
}

}  // namespace

sim::Task<void> LeaseSet::wake_at(std::shared_ptr<State> state, Duration after) {
  co_await sim::delay(after);
  // A stale waker (the actor was woken early and re-slept) at worst
  // causes one spurious recompute; setting the event is always safe.
  state->wake.set();
}

void LeaseSet::maybe_heal(const std::shared_ptr<State>& state, std::uint64_t old_id,
                          const Tracked& lost) {
  if (!state->options.self_heal || !state->healing_enabled) return;
  if (lost.workers == 0) return;  // shape unknown: nothing to re-request
  const bool session_ok = state->session != nullptr && !state->session->closed();
  const bool stream_ok = state->stream != nullptr && !state->stream->closed() &&
                         state->request_mutex != nullptr;
  if (!session_ok && !stream_ok) return;
  // A lost lease is erased from the table before this runs, so the same
  // loss never heals twice; losses of different chain members (partial
  // heals) may overlap, hence a per-origin count rather than a set.
  ++state->healing[lost.origin];
  sim::spawn(*state->engine, heal(state, old_id, lost));
}

namespace {

/// Reacts to one terminated-lease push: loss accounting, the holder's
/// callback, and (when enabled) the self-healing re-allocation. Shared by
/// the single-lease and the batched (LeasesTerminated) push forms.
template <typename StatePtr, typename HealFn>
void apply_termination(const StatePtr& state, std::uint64_t lease_id, std::uint8_t reason,
                       Time evicted_at, HealFn&& heal) {
  // A push for an untracked lease is stale: the holder released it, or
  // a refused renewal already lost it (and started its heal).
  auto it = state->leases.find(lease_id);
  if (it == state->leases.end()) return;
  const auto lost = it->second;
  state->leases.erase(it);
  ++state->terminations;
  ++state->losses;
  if (state->terminated_fn) {
    state->terminated_fn(lease_id, static_cast<TerminationReason>(reason), evicted_at);
  }
  heal(lease_id, lost);
}

}  // namespace

void LeaseSet::handle_notification(const std::shared_ptr<State>& state, const Bytes& raw) {
  auto heal = [&state](std::uint64_t id, const Tracked& lost) {
    maybe_heal(state, id, lost);
  };
  auto type = peek_type(raw);
  if (type.ok() && type.value() == MsgType::FailoverAnnounce) {
    // A promoted standby took over the manager role: nothing this client
    // holds can be trusted until it is re-validated against the restored
    // lease table (leases granted in the blackout window by the dead
    // primary may not have reached the journal).
    auto announce = decode_failover_announce(raw);
    if (!announce) return;
    ++state->failover_announces;
    sim::spawn(*state->engine, revalidate_all(state));
    return;
  }
  if (type.ok() && type.value() == MsgType::LeasesTerminated) {
    // Batched push: one message per sweep carries every lease of this
    // client the manager evicted together.
    auto batch = decode_leases_terminated(raw);
    if (!batch) return;
    for (auto lease_id : batch.value().lease_ids) {
      apply_termination(state, lease_id, batch.value().reason, batch.value().evicted_at,
                        heal);
    }
    return;
  }
  auto term = decode_lease_terminated(raw);
  if (!term) return;
  apply_termination(state, term.value().lease_id, term.value().reason,
                    term.value().evicted_at, heal);
}

sim::Task<void> LeaseSet::notify_loop(std::shared_ptr<State> state,
                                      std::shared_ptr<net::TcpStream> stream) {
  while (true) {
    auto raw = co_await stream->recv();
    if (!raw.has_value()) co_return;  // unsubscribed / manager gone
    handle_notification(state, *raw);
  }
}

sim::Task<void> LeaseSet::notify_loop_session(std::shared_ptr<State> state,
                                              std::shared_ptr<Session> session) {
  // The session pump already filtered duplicated deliveries (by push
  // seq), so every message seen here is a first delivery.
  while (true) {
    auto raw = co_await session->next_push();
    if (!raw.has_value()) co_return;
    handle_notification(state, *raw);
  }
}

sim::Task<Result<Bytes>> LeaseSet::exchange(std::shared_ptr<State> state,
                                            std::function<Bytes(std::uint64_t)> make) {
  if (state->session != nullptr) {
    if (state->session->closed()) co_return Error::make(40, "manager session closed");
    const std::uint64_t id = state->session->next_request_id();
    co_return co_await state->session->call(make(id), id);
  }
  if (state->stream == nullptr || state->stream->closed() ||
      state->request_mutex == nullptr) {
    co_return Error::make(40, "manager stream closed");
  }
  co_await state->request_mutex->lock();
  state->stream->send(make(0));
  auto raw = co_await state->stream->recv();
  state->request_mutex->unlock();
  if (!raw.has_value()) co_return Error::make(40, "manager disconnected");
  co_return *raw;
}

sim::Task<void> LeaseSet::revalidate_all(std::shared_ptr<State> state) {
  // Snapshot the ids first: each exchange yields, and a refused lease
  // mutates the tracked map mid-iteration.
  std::vector<std::uint64_t> ids;
  ids.reserve(state->leases.size());
  for (const auto& [id, tracked] : state->leases) ids.push_back(id);
  const std::uint32_t client = state->client_id;
  for (const auto id : ids) {
    if (state->leases.find(id) == state->leases.end()) continue;  // lost meanwhile
    auto reply = co_await exchange(state, [id, client](std::uint64_t request_id) {
      LeaseRevalidateMsg msg;
      msg.client_id = client;
      msg.lease_id = id;
      msg.request_id = request_id;
      return encode(msg);
    });
    // Manager unreachable: leave the remaining leases tracked; the next
    // reconnect (or the announce on its notification stream) re-runs the
    // whole pass.
    if (!reply.ok()) co_return;
    auto type = peek_type(reply.value());
    if (type.ok() && type.value() == MsgType::ExtendOk) {
      auto ok = decode_extend_ok(reply.value());
      if (!ok.ok()) continue;
      if (auto it = state->leases.find(id); it != state->leases.end()) {
        // Adopt the manager's authoritative deadline: the promoted
        // standby replayed the renewals it saw, which may trail the dead
        // primary's last answer.
        it->second.expires_at = ok.value().expires_at;
        ++state->revalidated;
      }
      continue;
    }
    // Refused: the manager does not carry this lease (never journaled
    // before the crash, or reclaimed in the blackout). Same loss path as
    // a refused renewal: untrack, report, heal.
    auto it = state->leases.find(id);
    if (it == state->leases.end()) continue;
    const Tracked lost = it->second;
    state->leases.erase(it);
    ++state->revalidation_losses;
    ++state->losses;
    if (state->renewal_failed_fn) state->renewal_failed_fn(id, "lost in failover");
    maybe_heal(state, id, lost);
  }
  // Deadlines may have moved (usually earlier): re-aim the renewal actor.
  state->wake.set();
}

sim::Task<void> LeaseSet::release_via_session(std::shared_ptr<Session> session,
                                              ReleaseResourcesMsg rel) {
  rel.request_id = session->next_request_id();
  // The call retransmits until the ReleaseOk ack lands (or the budget
  // runs out, in which case the manager's expiry sweep reclaims it).
  (void)co_await session->call(encode(rel), rel.request_id);
}

void LeaseSet::send_release(const std::shared_ptr<State>& state, ReleaseResourcesMsg rel) {
  if (state->session != nullptr) {
    if (!state->session->closed()) {
      sim::spawn(*state->engine, release_via_session(state->session, rel));
    }
    return;
  }
  if (state->stream != nullptr && !state->stream->closed()) {
    state->stream->send(encode(rel));
  }
}

sim::Task<void> LeaseSet::heal(std::shared_ptr<State> state, std::uint64_t old_id,
                               Tracked lost) {
  Duration backoff = std::max<Duration>(1_us, state->options.realloc_backoff);
  std::uint32_t remaining = lost.workers;
  bool healed = false;    // at least one replacement grant landed
  bool canceled = false;
  // Denials consume the budget; successful (possibly partial) grants do
  // not — a partial replacement immediately re-requests the remainder,
  // so a lost 8-worker lease replaced 3+3+2 costs zero budget.
  unsigned denials = 0;
  while (remaining > 0 && denials < std::max(1u, state->options.realloc_budget)) {
    if (!state->healing_enabled || state->canceled.count(lost.origin) > 0) {
      canceled = true;
      break;
    }
    if (state->session != nullptr ? state->session->closed()
                                  : (state->stream == nullptr || state->stream->closed())) {
      break;
    }

    LeaseRequestMsg req;
    req.client_id = state->client_id;
    req.workers = remaining;
    req.memory_bytes = lost.memory_per_worker;
    req.timeout = lost.original_timeout;
    auto raw = co_await exchange(state, [&req](std::uint64_t id) {
      req.request_id = id;
      return encode(req);
    });
    if (!raw.ok()) break;  // manager unreachable (disconnect / budget out)

    auto grant = decode_lease_grant(raw.value());
    if (grant.ok()) {
      const LeaseGrantMsg& g = grant.value();
      if (!state->healing_enabled || state->canceled.count(lost.origin) > 0) {
        // The holder abandoned the chain while we were in flight: hand
        // the fresh grant straight back instead of leaking it.
        ReleaseResourcesMsg rel;
        rel.lease_id = g.lease_id;
        rel.workers = g.workers;
        rel.memory_bytes = lost.memory_per_worker * g.workers;
        send_release(state, rel);
        canceled = true;
        break;
      }
      Tracked replacement = lost;
      replacement.expires_at = g.expires_at;
      replacement.workers = g.workers;
      state->leases[g.lease_id] = replacement;
      // The first grant takes the lost lease's chain slot (primary when
      // the lost lease was the primary); further partial grants join the
      // chain as secondaries and are released with it at abandon().
      if (!healed) {
        auto cur = state->current_of_origin.find(lost.origin);
        if (cur != state->current_of_origin.end() && cur->second == old_id) {
          cur->second = g.lease_id;
        }
      }
      state->wake.set();  // the replacement may be the next renewal due
      if (!healed) {
        // One reallocation per lost lease, however many grants replace it.
        ++state->reallocations;
        healed = true;
        if (state->reallocated_fn) state->reallocated_fn(old_id, g);
      } else if (state->chain_extended_fn) {
        // Remainder grant: a deployment event (the owner still has to
        // put a sandbox on it), not a second healed lease.
        state->chain_extended_fn(old_id, g);
      }
      old_id = g.lease_id;  // a further remainder grant chains off this one
      remaining -= std::min(remaining, g.workers);
      continue;
    }
    // Denied (transient exhaustion while the evicted capacity settles):
    // back off exponentially within the budget. An admission shed
    // (LeaseDenied) carries a retry_after hint — the wait never
    // undercuts it, or a fleet-wide eviction would turn the heal loops
    // into a synchronized retry storm amplifying the very overload
    // that evicted the leases. The jitter is upward-only for the same
    // reason: waits may stretch past the hint, never compress below it.
    ++denials;
    Duration wait = backoff;
    if (auto shed = decode_lease_denied(raw.value()); shed.ok()) {
      ++state->overload_denials;
      if (state->options.honor_retry_after) {
        wait = std::max(wait, shed.value().retry_after);
      }
    }
    if (state->options.backoff_jitter > 0) {
      wait += static_cast<Duration>(static_cast<double>(wait) *
                                    state->options.backoff_jitter * state->jitter.uniform());
    }
    co_await sim::delay(wait);
    backoff *= 2;
  }
  auto in_flight = state->healing.find(lost.origin);
  if (in_flight != state->healing.end() && --in_flight->second == 0) {
    state->healing.erase(in_flight);
    state->canceled.erase(lost.origin);
  }
  if (!healed && !canceled) ++state->realloc_failures;
}

sim::Task<void> LeaseSet::renew_loop(std::shared_ptr<State> state, std::uint64_t epoch) {
  sim::Engine& engine = *state->engine;
  auto active = [&state, epoch] { return state->running && state->epoch == epoch; };
  auto expire = [&state](std::uint64_t id) {
    auto it = state->leases.find(id);
    if (it == state->leases.end()) return;
    const Tracked lost = it->second;
    state->leases.erase(it);
    ++state->expiries;
    ++state->losses;
    if (state->expired_fn) state->expired_fn(id);
    // An expired or refused lease is as gone as an evicted one: the
    // self-healing path re-allocates it the same way.
    maybe_heal(state, id, lost);
  };
  while (active()) {
    if (state->leases.empty()) {
      state->wake.reset();
      co_await state->wake.wait();
      continue;
    }

    // Sync the renewal timer wheel with the tracked set: every lease
    // gets one timer at (expires_at - margin); track()/renewal moved a
    // deadline -> rearm; untracked leases lose their timer. The wheel
    // replaces the per-iteration O(leases) min-scan with O(changes).
    for (const auto& [id, t] : state->leases) {
      const Duration margin = effective_margin(state->options, t.original_timeout);
      // Clamp to 1: the wheel reserves deadline 0 for "nothing armed",
      // and a past-due deadline still fires on the next advance().
      const Time at = std::max<Time>(t.expires_at > margin ? t.expires_at - margin : 0, 1);
      auto timer_it = state->lease_timers.find(id);
      if (timer_it == state->lease_timers.end()) {
        const auto tid = state->renew_wheel.arm(at);
        state->lease_timers.emplace(id, tid);
        state->timer_leases.emplace(tid, id);
      } else if (state->renew_wheel.deadline_of(timer_it->second) != at) {
        (void)state->renew_wheel.rearm(timer_it->second, at);
      }
    }
    for (auto it = state->lease_timers.begin(); it != state->lease_timers.end();) {
      if (!state->leases.contains(it->first)) {
        state->renew_wheel.cancel(it->second);
        state->timer_leases.erase(it->second);
        it = state->lease_timers.erase(it);
      } else {
        ++it;
      }
    }

    const Time due = state->renew_wheel.next_deadline();
    if (due > engine.now()) {
      // Sleep until the earliest renewal is due, interruptibly: track()
      // may add a lease due sooner than this target and stop() must not
      // leave the actor dozing — both set the wake event, and the waker
      // sets it at the deadline. Either way the loop recomputes (and the
      // top-of-loop sync re-arms the wheel for whatever changed).
      state->wake.reset();
      sim::spawn(engine, wake_at(state, due - engine.now()));
      co_await state->wake.wait();
      continue;
    }

    // Fire everything due. Ids are snapshotted because renew_one
    // suspends (and may untrack on expiry); a renewal that fails
    // transiently re-arms at its (now past) deadline on the next sync,
    // so the retry is immediate but bounded by the backoff below.
    std::vector<sim::TimerWheel::Id> fired;
    state->renew_wheel.advance(engine.now(), fired);
    std::vector<std::uint64_t> due_ids;
    for (const auto tid : fired) {
      auto lease_it = state->timer_leases.find(tid);
      if (lease_it == state->timer_leases.end()) continue;  // untracked meanwhile
      due_ids.push_back(lease_it->second);
      state->lease_timers.erase(lease_it->second);
      state->timer_leases.erase(lease_it);
    }
    bool failed = false;
    for (std::uint64_t id : due_ids) {
      if (!active()) break;
      auto it = state->leases.find(id);
      if (it == state->leases.end()) continue;
      if (engine.now() >= it->second.expires_at) {
        // Too late: the manager-side lease is gone (spurious expiry).
        expire(id);
        continue;
      }
      const Duration extension = state->options.extension != 0 ? state->options.extension
                                                               : it->second.original_timeout;
      const bool transport_up =
          state->session != nullptr
              ? !state->session->closed()
              : (state->stream != nullptr && !state->stream->closed() &&
                 state->request_mutex != nullptr);
      if (!transport_up) {
        ++state->renewal_failures;
        if (state->renewal_failed_fn) state->renewal_failed_fn(id, "manager stream closed");
        failed = true;
        continue;
      }

      ExtendLeaseMsg msg;
      msg.lease_id = id;
      msg.extension = extension;
      auto raw = co_await exchange(state, [&msg](std::uint64_t request_id) {
        msg.request_id = request_id;
        return encode(msg);
      });
      if (!active()) co_return;  // stopped mid-flight: shutdown, not a failure

      it = state->leases.find(id);  // may have been untracked while waiting
      if (it == state->leases.end()) continue;
      if (!raw.ok()) {
        ++state->renewal_failures;
        if (state->renewal_failed_fn) state->renewal_failed_fn(id, raw.error().message);
        failed = true;
        continue;
      }
      auto ok = decode_extend_ok(raw.value());
      if (ok.ok()) {
        it->second.expires_at = ok.value().expires_at;
        ++state->renewals;
        if (state->renewed_fn) state->renewed_fn(id, ok.value().expires_at);
      } else {
        // The manager refused (typically "unknown lease"): the lease is
        // dead on the authoritative side — surface both signals.
        auto reason = decode_lease_error(raw.value());
        ++state->renewal_failures;
        if (state->renewal_failed_fn) {
          state->renewal_failed_fn(id, reason.ok() ? reason.value() : "renewal refused");
        }
        expire(id);
      }
    }
    if (failed && active()) {
      // Transient failure: back off before retrying so a dead manager
      // cannot spin the loop at a single virtual timestamp.
      co_await sim::delay(std::max<Duration>(1_ms, state->options.renew_margin / 4));
    }
  }
}

// --------------------------------------------------------------------------
// Invoker
// --------------------------------------------------------------------------

Invoker::Invoker(sim::Engine& engine, fabric::Fabric& fabric, net::TcpNetwork& tcp,
                 const Config& config, fabric::Device& device, fabric::DeviceId rm_device,
                 std::uint16_t rm_port, std::uint32_t client_id)
    : engine_(engine),
      fabric_(fabric),
      tcp_(tcp),
      config_(config),
      device_(device),
      rm_device_(rm_device),
      rm_port_(rm_port),
      client_id_(client_id),
      pd_(device.alloc_pd()),
      rm_mutex_(std::make_shared<sim::Mutex>()),
      lease_set_(std::make_unique<LeaseSet>(engine)),
      slots_(std::make_unique<sim::Semaphore>(0)),
      slot_sem_(std::make_unique<sim::Semaphore>(0)) {}

Invoker::~Invoker() = default;

sim::Task<Status> Invoker::reconnect() {
  auto stream = co_await tcp_.connect(device_.id(), rm_device_, rm_port_);
  if (!stream.ok()) co_return stream.error();
  rm_stream_ = stream.value();
  SessionOptions session_options;
  session_options.epoch = ++rm_epoch_;
  rm_session_ = std::make_shared<Session>(engine_, rm_stream_, session_options);
  lease_set_->bind(rm_session_);
  if (notify_session_ != nullptr) {
    // The old push channel died with the manager: re-subscribe on a
    // fresh one. A promoted manager answers the subscription with a
    // FailoverAnnounce, which re-triggers revalidation on its own.
    auto notify = co_await tcp_.connect(device_.id(), rm_device_, rm_port_);
    if (!notify.ok()) co_return notify.error();
    notify_stream_ = notify.value();
    notify_session_ = std::make_shared<Session>(engine_, notify_stream_);
    lease_set_->subscribe(notify_session_, client_id_);
  }
  lease_set_->revalidate();
  co_return Status::success();
}

sim::Task<Status> Invoker::allocate(const AllocationSpec& spec) {
  polling_client_ = spec.polling_client;

  // Stage 1: connect to the resource manager (once; cached afterwards).
  // The stream is wrapped in a retransmitting Session — the invoker's
  // only reader of it — so every lease-critical exchange is idempotent
  // under loss. A reconnect mints a fresh session epoch, fencing replies
  // addressed to the dead session's id space.
  Time t0 = engine_.now();
  if (rm_stream_ == nullptr || rm_stream_->closed()) {
    auto stream = co_await tcp_.connect(device_.id(), rm_device_, rm_port_);
    if (!stream.ok()) co_return stream.error();
    rm_stream_ = stream.value();
    SessionOptions session_options;
    session_options.epoch = ++rm_epoch_;
    rm_session_ = std::make_shared<Session>(engine_, rm_stream_, session_options);
  }
  cold_start_.connect_manager = engine_.now() - t0;

  if (spec.auto_renew || spec.self_heal) {
    LeaseSetOptions opts;
    opts.renew_margin =
        spec.renew_margin != 0 ? spec.renew_margin : spec.lease_timeout / 4;
    opts.extension = spec.lease_timeout;
    opts.self_heal = spec.self_heal;
    opts.realloc_budget = spec.realloc_budget;
    opts.realloc_backoff = spec.realloc_backoff;
    opts.honor_retry_after = spec.honor_retry_after;
    opts.backoff_jitter = spec.backoff_jitter;
    // Per-client jitter streams: a herd of healing invokers must not
    // share one backoff schedule.
    opts.jitter_seed = 0x5eed ^ (static_cast<std::uint64_t>(client_id_) << 17);
    lease_set_->configure(opts);
  }
  lease_set_->bind(rm_session_);

  if (spec.self_heal) {
    // Self-healing: a dedicated notification stream carries the
    // manager's LeaseTerminated pushes, and a re-allocated lease gets
    // its sandbox redeployed with the spec of the allocate() call that
    // created it (looked up by the lost lease's id).
    // Both callbacks look the spec up under the grant they chain off:
    // on_reallocated's old_id is the LOST lease (its entry is dead —
    // erase it, keeping the map bounded under sustained healing), while
    // on_chain_extended's old_id is the previous partial grant, which
    // is alive and may be lost and healed itself later — keep its entry.
    auto redeploy_grant = [this](std::uint64_t old_id, const LeaseGrantMsg& grant,
                                 bool erase_old) {
      auto it = lease_specs_.find(old_id);
      if (it == lease_specs_.end()) return;
      auto lease_spec = it->second;
      if (erase_old) lease_specs_.erase(it);
      lease_specs_[grant.lease_id] = lease_spec;
      sim::spawn(engine_, redeploy(*lease_spec, grant));
    };
    lease_set_->on_reallocated([redeploy_grant](std::uint64_t old_id,
                                                const LeaseGrantMsg& grant) {
      redeploy_grant(old_id, grant, /*erase_old=*/true);
    });
    lease_set_->on_chain_extended([redeploy_grant](std::uint64_t old_id,
                                                   const LeaseGrantMsg& grant) {
      redeploy_grant(old_id, grant, /*erase_old=*/false);
    });
    if (notify_stream_ == nullptr || notify_stream_->closed()) {
      // One listener per connection: subscribe() spawns the notify
      // actor, so only a fresh stream gets subscribed.
      auto notify = co_await tcp_.connect(device_.id(), rm_device_, rm_port_);
      if (!notify.ok()) co_return notify.error();
      notify_stream_ = notify.value();
      notify_session_ = std::make_shared<Session>(engine_, notify_stream_);
      lease_set_->subscribe(notify_session_, client_id_);
    }
  }

  const auto spec_ref =
      spec.self_heal ? std::make_shared<const AllocationSpec>(spec) : nullptr;
  std::uint32_t remaining = spec.workers;
  while (remaining > 0) {
    // Stage 2: lease acquisition (A1). Grants may be partial; the client
    // aggregates leases until the desired parallelism is reached — one
    // LeaseRequest per partial grant, or one BatchAllocate round trip
    // for the whole remainder when spec.batched_leases is set.
    t0 = engine_.now();
    auto grants = co_await acquire_leases(spec, remaining);
    if (!grants.ok()) co_return grants.error();
    cold_start_.lease += engine_.now() - t0;

    for (const auto& grant : grants.value()) {
      auto deployed = co_await deploy_grant(spec, grant);
      if (!deployed.ok()) co_return deployed;
      if (spec.auto_renew || spec.self_heal) {
        lease_set_->track(grant.lease_id, grant.expires_at, spec.lease_timeout,
                          grant.workers, spec.memory_per_worker);
      }
      if (spec_ref != nullptr) lease_specs_[grant.lease_id] = spec_ref;
      remaining -= std::min(remaining, grant.workers);
    }
  }
  if (spec.auto_renew || spec.self_heal) lease_set_->start();
  co_return Status::success();
}

sim::Task<Result<std::vector<LeaseGrantMsg>>> Invoker::acquire_leases(
    const AllocationSpec& spec, std::uint32_t remaining) {
  std::vector<LeaseGrantMsg> grants;
  if (spec.batched_leases) {
    BatchAllocateMsg req;
    req.client_id = client_id_;
    req.workers = remaining;
    req.memory_bytes = spec.memory_per_worker;
    req.timeout = spec.lease_timeout;
    req.mode = static_cast<std::uint8_t>(BatchMode::BestEffort);
    req.request_id = rm_session_->next_request_id();
    auto reply = co_await rm_session_->call(encode(req), req.request_id);
    if (!reply.ok()) {
      co_return Error::make(40, "resource manager unreachable: " + reply.error().message);
    }
    if (auto shed = decode_lease_denied(reply.value()); shed.ok()) {
      co_return Error::make(42, "lease shed by admission control (retry after " +
                                    std::to_string(shed.value().retry_after / 1'000'000) +
                                    " ms)");
    }
    auto batch = decode_batch_granted(reply.value());
    if (!batch) co_return batch.error();
    if (batch.value().grants.empty()) {
      co_return Error::make(41, "lease denied: " + (batch.value().error.empty()
                                                        ? std::string("unknown")
                                                        : batch.value().error));
    }
    grants = std::move(batch.value().grants);
  } else {
    LeaseRequestMsg req;
    req.client_id = client_id_;
    req.workers = remaining;
    req.memory_bytes = spec.memory_per_worker;
    req.timeout = spec.lease_timeout;
    req.request_id = rm_session_->next_request_id();
    auto reply = co_await rm_session_->call(encode(req), req.request_id);
    if (!reply.ok()) {
      co_return Error::make(40, "resource manager unreachable: " + reply.error().message);
    }
    auto type = peek_type(reply.value());
    if (type.ok() && type.value() == MsgType::LeaseDenied) {
      // Admission shed: a transient, retryable condition — distinct
      // error code so callers can back off (at least retry_after)
      // instead of treating it as a capacity refusal.
      auto shed = decode_lease_denied(reply.value());
      const Duration after = shed.ok() ? shed.value().retry_after : 0;
      co_return Error::make(42, "lease shed by admission control (retry after " +
                                    std::to_string(after / 1'000'000) + " ms)");
    }
    if (!type.ok() || type.value() != MsgType::LeaseGrant) {
      auto err = decode_lease_error(reply.value());
      co_return Error::make(41, "lease denied: " + (err.ok() ? err.value() : "unknown"));
    }
    auto grant_msg = decode_lease_grant(reply.value());
    if (!grant_msg) co_return grant_msg.error();
    grants.push_back(grant_msg.value());
  }
  co_return grants;
}

sim::Task<Status> Invoker::deploy_grant(const AllocationSpec& spec, const LeaseGrantMsg& grant) {
  // Stage 3: allocation on the spot executor (A2).
  Time t0 = engine_.now();
  auto mgr = co_await tcp_.connect(device_.id(), grant.device, grant.alloc_port);
  if (!mgr.ok()) co_return mgr.error();
  auto mgr_stream = mgr.value();

  AllocationRequestMsg alloc;
  alloc.lease_id = grant.lease_id;
  alloc.client_id = client_id_;
  alloc.workers = grant.workers;
  alloc.memory_bytes = spec.memory_per_worker;
  alloc.sandbox = static_cast<std::uint8_t>(spec.sandbox);
  alloc.policy = static_cast<std::uint8_t>(spec.policy);
  alloc.hot_timeout = spec.hot_timeout;
  alloc.expires_at = grant.expires_at;
  mgr_stream->send(encode(alloc));
  auto alloc_raw = co_await mgr_stream->recv();
  if (!alloc_raw.has_value()) co_return Error::make(42, "allocator disconnected");
  auto alloc_reply = decode_allocation_reply(*alloc_raw);
  if (!alloc_reply) co_return alloc_reply.error();
  if (!alloc_reply.value().ok) {
    co_return Error::make(43, "allocation failed: " + alloc_reply.value().error);
  }
  const Duration round = engine_.now() - t0;
  cold_start_.spawn_workers += alloc_reply.value().spawn_ns;
  cold_start_.submit_allocation +=
      round > alloc_reply.value().spawn_ns ? round - alloc_reply.value().spawn_ns : 0;

  // Stage 4: direct RDMA connections to every worker (D2).
  t0 = engine_.now();
  const std::size_t first_worker = workers_.size();
  sim::WaitGroup wg(grant.workers);
  bool connect_failed = false;
  for (std::uint32_t i = 0; i < grant.workers; ++i) {
    auto one = [](Invoker* self, LeaseGrantMsg g, std::uint64_t sandbox, std::uint32_t idx,
                  sim::WaitGroup* group, bool* failed) -> sim::Task<void> {
      auto st = co_await self->connect_worker(g, sandbox, idx);
      if (!st.ok()) *failed = true;
      group->done();
    };
    sim::spawn(engine_, one(this, grant, alloc_reply.value().sandbox_id, i, &wg,
                            &connect_failed));
  }
  co_await wg.wait();
  if (connect_failed) co_return Error::make(44, "worker connection failed");
  // Stamp the grant's workers with their executor identity and control
  // channel: health scoring keys on the device, and a hedged attempt's
  // loser is cancelled over the manager stream.
  for (std::size_t w = first_worker; w < workers_.size(); ++w) {
    workers_[w].device = grant.device;
    workers_[w].mgr_stream = mgr_stream;
  }
  cold_start_.connect_workers += engine_.now() - t0;

  // Stage 5: submit the function code. The message is padded to the
  // library size so the transfer cost is real.
  t0 = engine_.now();
  SubmitCodeMsg code;
  code.sandbox_id = alloc_reply.value().sandbox_id;
  code.function_name = spec.function_name;
  auto payload = encode(code);
  std::uint64_t code_size = spec.code_size;
  code.code_size = code_size;
  payload = encode(code);  // re-encode with the final size
  if (code_size > payload.size()) payload.resize(code_size);
  mgr_stream->send(std::move(payload));
  auto code_raw = co_await mgr_stream->recv();
  if (!code_raw.has_value()) co_return Error::make(45, "allocator disconnected");
  auto code_type = peek_type(*code_raw);
  if (!code_type.ok() || code_type.value() != MsgType::SubmitCodeOk) {
    auto err = decode_lease_error(*code_raw);
    co_return Error::make(46, "code submission failed: " +
                                  (err.ok() ? err.value() : "unknown"));
  }
  cold_start_.submit_code += engine_.now() - t0;

  allocations_.push_back(
      Allocation{grant.lease_id, alloc_reply.value().sandbox_id, mgr_stream});
  co_return Status::success();
}

sim::Task<void> Invoker::redeploy(AllocationSpec spec, LeaseGrantMsg grant) {
  // The replacement lease is already tracked by the LeaseSet; this
  // rebuilds the serving side: sandbox, worker connections, code.
  auto st = co_await deploy_grant(spec, grant);
  if (!st.ok()) {
    log::warn("invoker", "self-heal redeploy failed: ", st.error().message);
    co_return;
  }
  ++redeployments_;
}

sim::Task<Status> Invoker::connect_worker(const LeaseGrantMsg& grant, std::uint64_t sandbox_id,
                                          std::uint32_t index) {
  ByteWriter pdata;
  pdata.u64(sandbox_id);
  pdata.u32(index);
  Bytes pdata_bytes = pdata.take();
  auto conn = co_await rdmalib::Connection::connect(fabric_, device_, pd_, grant.device,
                                                    grant.rdma_port, std::move(pdata_bytes));
  if (!conn.ok()) co_return conn.error();

  ByteReader rd(conn.value()->accept_data());
  auto addr = rd.u64();
  auto rkey = rd.u32();
  auto len = rd.u32();
  if (!addr || !rkey || !len) co_return Error::make(47, "bad worker descriptor");

  WorkerRef ref;
  ref.conn = std::move(conn).take();
  ref.remote_buf = rdmalib::RemoteBuffer{addr.value(), rkey.value(), len.value()};
  ref.max_payload = len.value() - InvocationHeader::kSize;
  workers_.push_back(std::move(ref));
  free_workers_.push_back(workers_.size() - 1);
  slots_->release();
  co_return Status::success();
}

sim::Task<Result<std::uint16_t>> Invoker::add_function(const std::string& name) {
  std::uint16_t index = 0;
  for (auto& alloc : allocations_) {
    SubmitCodeMsg code;
    code.sandbox_id = alloc.sandbox_id;
    code.function_name = name;
    code.code_size = 0;
    alloc.mgr_stream->send(encode(code));
    auto raw = co_await alloc.mgr_stream->recv();
    if (!raw.has_value()) co_return Error::make(45, "allocator disconnected");
    auto ok = decode_submit_code_ok(*raw);
    if (!ok) co_return Error::make(46, "code submission failed for " + name);
    index = ok.value().fn_index;
  }
  co_return index;
}

void Invoker::reserve_slots(std::size_t count, std::size_t max_input, std::size_t max_output) {
  for (std::size_t i = 0; i < count; ++i) {
    auto slot = std::make_unique<InvocationSlot>(max_input, max_output);
    // Registered once, up front; every invocation on this slot reuses the
    // pinned regions instead of paying registration on the hot path.
    (void)slot->in.register_memory(*pd_, fabric::LocalWrite);
    (void)slot->out.register_memory(*pd_, fabric::RemoteWrite | fabric::LocalWrite);
    free_slots_.push_back(slot_pool_.size());
    slot_pool_.push_back(std::move(slot));
    slot_sem_->release();
  }
}

sim::Task<InvocationResult> Invoker::invoke_pooled(std::uint16_t fn_index,
                                                   std::span<const std::uint8_t> payload) {
  const Time submitted = engine_.now();
  InvocationResult result;
  if (slot_pool_.empty()) {
    result.submitted_at = submitted;
    result.completed_at = engine_.now();
    co_return result;  // reserve_slots() was never called
  }
  co_await slot_sem_->acquire();
  const std::size_t slot_idx = free_slots_.front();
  free_slots_.pop_front();
  InvocationSlot& slot = *slot_pool_[slot_idx];

  const std::size_t n = std::min<std::size_t>(payload.size(), slot.in.payload_bytes());
  if (n > 0) std::memcpy(slot.in.data(), payload.data(), n);

  if (config_.fault_tolerance.enabled()) {
    // Fault-tolerant path: per-attempt deadlines, budgeted retries,
    // optional hedging. Same pooled slot, same zero-allocation frame.
    result = co_await invoke_pooled_reliable(fn_index, slot_idx, n);
  } else {
    // Redirect loop, like submit(): rejected warm invocations move to
    // the next free worker.
    const std::size_t max_attempts = workers_.empty() ? 1 : 2 * workers_.size();
    for (std::size_t attempt = 0; attempt < max_attempts; ++attempt) {
      co_await slots_->acquire();
      const std::size_t widx = free_workers_.front();
      free_workers_.pop_front();

      result = co_await invoke_pooled_on(widx, fn_index, slot, n);

      free_workers_.push_back(widx);
      slots_->release();

      if (result.ok) break;
      if (result.rejected) ++rejections_;
      co_await sim::delay(2_us);
    }
  }
  free_slots_.push_back(slot_idx);
  slot_sem_->release();
  result.submitted_at = submitted;
  co_return result;
}

sim::Task<InvocationResult> Invoker::invoke_pooled_on(std::size_t worker,
                                                      std::uint16_t fn_index,
                                                      InvocationSlot& slot,
                                                      std::size_t payload_bytes,
                                                      std::uint64_t tag, Time deadline) {
  InvocationResult result;
  result.submitted_at = engine_.now();
  WorkerRef& w = workers_[worker];
  if (w.conn == nullptr || !w.conn->alive()) {
    result.completed_at = engine_.now();
    co_return result;
  }

  const std::uint32_t invocation_id = next_invocation_++ & 0x7FFFFu;

  // Frame fast path: pack the header straight into the slot's registered
  // region — no staging buffer, no allocation. The fault-tolerant path
  // adds the idempotent tag, the per-attempt deadline and (optionally)
  // a request checksum; all land in the same 32 B header.
  InvocationHeader header;
  header.result_addr = reinterpret_cast<std::uint64_t>(slot.out.raw());
  header.result_rkey = slot.out.mr() != nullptr ? slot.out.mr()->rkey() : 0;
  header.invocation_tag = tag;
  header.deadline = deadline;
  header.checksum = tag != 0 && config_.fault_tolerance.checksum
                        ? payload_checksum(slot.in.data(), payload_bytes)
                        : 0;
  (void)encode_into(header, slot.in.raw(), InvocationHeader::kSize);

  (void)w.conn->post_recv_empty(invocation_id);

  // Header + payload leave as one contiguous span of the slot; the fabric
  // forwards single-SGE non-inline payloads by reference (zero-copy).
  const fabric::Sge sge = slot.in.sge_with_header(payload_bytes);
  const bool inline_ok = sge.length <= fabric_.model().max_inline;
  auto st = w.conn->post_write_imm(sge, w.remote_buf, Imm::invocation(fn_index, invocation_id),
                                   invocation_id, inline_ok);
  if (!st.ok()) {
    result.completed_at = engine_.now();
    co_return result;
  }

  auto send_wc = polling_client_ ? co_await w.conn->wait_send_polling()
                                 : co_await w.conn->wait_send_blocking();
  if (send_wc.status != fabric::WcStatus::Success) {
    result.completed_at = engine_.now();
    co_return result;
  }

  fabric::Wc wc;
  if (deadline != 0) {
    // Deadline-bounded wait: an executor that crashed or wedged after
    // the submit surfaces as a timeout instead of blocking forever.
    std::optional<fabric::Wc> maybe;
    if (polling_client_) {
      maybe = co_await w.conn->wait_recv_polling_until(deadline);
    } else {
      maybe = co_await w.conn->wait_recv_blocking_until(deadline);
    }
    if (!maybe.has_value()) {
      result.timed_out = true;
      result.completed_at = engine_.now();
      co_return result;
    }
    wc = *maybe;
  } else if (polling_client_) {
    wc = co_await w.conn->wait_recv_polling();
  } else {
    wc = co_await w.conn->wait_recv_blocking();
  }
  co_await sim::delay(config_.client_completion);
  result.completed_at = engine_.now();
  if (wc.status != fabric::WcStatus::Success || !wc.has_imm) co_return result;
  const InvocationResponse resp = decode_invocation_response(wc);
  if (resp.invocation_id != invocation_id) {
    // With FT on, a reaped worker's stale completion can legitimately
    // surface here (the abandoned attempt's reply raced the reap).
    if (tag == 0) {
      log::warn("invoker", "immediate mismatch: got ", wc.imm, " expected ", invocation_id);
    } else {
      log::debug("invoker", "stale immediate: got ", wc.imm, " expected ", invocation_id);
    }
    co_return result;
  }
  result.rejected = resp.rejected;
  result.ok = !resp.rejected;
  result.output_bytes = resp.output_bytes;
  if (result.ok && resp.checksum12 != 0 &&
      fold12(payload_checksum(slot.out.raw(), resp.output_bytes)) != resp.checksum12) {
    // The responder checksummed its output and the landed bytes do not
    // match: response corrupted in flight. Surfaced for a same-worker
    // retry — the executor's dedup table replays a clean copy.
    result.ok = false;
    result.corrupt = true;
  }
  co_return result;
}

// --------------------------------------------------------------------------
// Fault-tolerant data plane (client side)
// --------------------------------------------------------------------------

std::uint64_t Invoker::mint_tag() {
  // (client epoch << 32) | seq: globally unique across clients (+1 keeps
  // client 0 out of the tag==0 "FT off" sentinel), monotone per client —
  // the executor dedup table keys replay detection on it.
  return (static_cast<std::uint64_t>(client_id_ + 1) << 32) | (++next_tag_seq_ & 0xFFFFFFFFu);
}

std::size_t Invoker::pick_worker() {
  const Time now = engine_.now();
  // HalfOpen probe admission first: a breaker whose Open window expired
  // wants exactly one probe through, but healthy workers sit at the
  // front of the rotation, so the plain scan below would never revisit
  // the deprioritized device — it could stay Open forever (and the
  // manager would never see the repeat trips that trigger quarantine).
  for (auto it = free_workers_.begin(); it != free_workers_.end(); ++it) {
    auto h = health_.find(workers_[*it].device);
    if (h != health_.end() && h->second.state() != HealthTracker::Breaker::Closed &&
        h->second.allow(now)) {
      const std::size_t widx = *it;
      free_workers_.erase(it);
      return widx;
    }
  }
  // Prefer a worker whose executor's breaker admits traffic; fall back
  // to plain FIFO when every executor is quarantined — a gray attempt
  // bounded by the deadline beats refusing to try at all.
  for (auto it = free_workers_.begin(); it != free_workers_.end(); ++it) {
    auto h = health_.find(workers_[*it].device);
    if (h == health_.end() || h->second.allow(now)) {
      const std::size_t widx = *it;
      free_workers_.erase(it);
      return widx;
    }
  }
  const std::size_t widx = free_workers_.front();
  free_workers_.pop_front();
  return widx;
}

std::size_t Invoker::pick_worker_avoiding(fabric::DeviceId device) {
  // Hedge-backup selection: the backup exists to cover a straggling
  // primary, so it must not land on the primary's (possibly gray)
  // executor when any other device has a free healthy worker.
  const Time now = engine_.now();
  for (auto it = free_workers_.begin(); it != free_workers_.end(); ++it) {
    if (workers_[*it].device == device) continue;
    auto h = health_.find(workers_[*it].device);
    if (h == health_.end() || h->second.allow(now)) {
      const std::size_t widx = *it;
      free_workers_.erase(it);
      return widx;
    }
  }
  return pick_worker();
}

void Invoker::release_worker(std::size_t widx) {
  free_workers_.push_back(widx);
  slots_->release();
}

sim::Task<void> Invoker::reap_worker(std::size_t widx) {
  // A timed-out attempt may still get its (late) completion; drain it
  // off-path before the worker rejoins the rotation, or the next
  // invocation on this worker would consume a stale immediate. The grace
  // must outlast the longest gray pause the chaos layer injects, so a
  // slow-but-alive worker comes back; a wedged or dead one never does.
  constexpr Duration kReapGrace = 50_ms;
  WorkerRef& w = workers_[widx];
  if (w.conn == nullptr || !w.conn->alive()) co_return;  // dead: stays out
  auto late = co_await w.conn->wait_recv_polling_until(engine_.now() + kReapGrace);
  if (!late.has_value()) co_return;  // nothing came: wedged/stuck, keep out
  if (late->status != fabric::WcStatus::Success) co_return;  // flushed: dead
  if (w.conn == nullptr || !w.conn->alive()) co_return;
  release_worker(widx);
}

void Invoker::record_outcome(fabric::DeviceId device, bool ok, Duration latency) {
  auto [it, inserted] = health_.try_emplace(device, config_.fault_tolerance);
  HealthTracker& h = it->second;
  const unsigned trips_before = h.trips();
  h.record(ok, latency, engine_.now());
  if (ok) {
    const double a = config_.fault_tolerance.ewma_alpha;
    latency_ewma_ = latency_ewma_ == 0
                        ? static_cast<double>(latency)
                        : (1.0 - a) * latency_ewma_ + a * static_cast<double>(latency);
  }
  if (h.trips() > trips_before) {
    ++breaker_trips_;
    // Tell the resource manager: the registry deprioritizes the gray
    // executor for everyone, and repeated trips quarantine it outright.
    if (rm_session_ != nullptr && !rm_session_->closed()) {
      HealthReportMsg msg;
      msg.client_id = client_id_;
      msg.device = static_cast<std::uint32_t>(device);
      msg.latency_us = static_cast<std::uint32_t>(h.ewma_latency() / 1'000);
      msg.ok_count = h.ok_count();
      msg.fail_count = h.fail_count();
      sim::spawn(engine_, send_health_report(rm_session_, msg));
    }
  }
}

sim::Task<void> Invoker::send_health_report(std::shared_ptr<Session> session,
                                            HealthReportMsg msg) {
  msg.request_id = session->next_request_id();
  (void)co_await session->call(encode(msg), msg.request_id);
}

sim::Task<InvocationResult> Invoker::invoke_pooled_reliable(std::uint16_t fn_index,
                                                            std::size_t slot_idx,
                                                            std::size_t payload_bytes) {
  const FaultToleranceConfig& ft = config_.fault_tolerance;
  constexpr std::size_t kNoWorker = static_cast<std::size_t>(-1);
  InvocationResult result;
  const std::uint64_t tag = mint_tag();
  std::size_t widx = kNoWorker;  // owned worker carried across attempts

  for (std::uint32_t attempt = 0; attempt <= ft.retry_budget; ++attempt) {
    if (widx == kNoWorker) {
      co_await slots_->acquire();
      widx = pick_worker();
    }
    // Per-attempt deadline: the header carries it, so the executor-side
    // margin guard can prove a late execution would race this client's
    // retry and drop it — the deterministic no-double-execution pact.
    const Time deadline = engine_.now() + ft.invocation_deadline;

    if (attempt == 0 && ft.hedging) {
      result = co_await run_hedged(widx, fn_index, slot_idx, payload_bytes, tag, deadline);
      widx = kNoWorker;  // run_hedged's attempts released/reaped their workers
    } else {
      result = co_await invoke_pooled_on(widx, fn_index, *slot_pool_[slot_idx], payload_bytes,
                                         tag, deadline);
      record_outcome(workers_[widx].device, result.ok,
                     result.completed_at - result.submitted_at);
      if (result.ok) {
        release_worker(widx);
        widx = kNoWorker;
      } else if (result.corrupt && workers_[widx].conn != nullptr &&
                 workers_[widx].conn->alive()) {
        // Response mangled in flight: retry on the SAME worker, where
        // the executor's dedup table replays the stored clean output
        // instead of re-executing. Keep the worker owned.
        ++corruptions_detected_;
      } else {
        if (result.timed_out) {
          ++timeouts_;
          sim::spawn(engine_, reap_worker(widx));
        } else if (workers_[widx].conn == nullptr || !workers_[widx].conn->alive()) {
          // Dead connection: permanently out of the rotation.
        } else {
          release_worker(widx);
        }
        widx = kNoWorker;
      }
    }

    if (result.ok) {
      result.attempts = attempt + 1;
      break;
    }
    if (attempt < ft.retry_budget) ++retries_;
    if (result.rejected) {
      ++rejections_;
      co_await sim::delay(2_us);
    }
  }
  if (widx != kNoWorker) release_worker(widx);
  co_return result;
}

sim::Task<InvocationResult> Invoker::run_hedged(std::size_t widx, std::uint16_t fn_index,
                                                std::size_t slot_idx, std::size_t payload_bytes,
                                                std::uint64_t tag, Time deadline) {
  auto hs = std::make_shared<Hedge>();
  hs->pending = 1;
  hs->in_flight.push_back(widx);
  sim::spawn(engine_,
             hedge_attempt(hs, widx, fn_index, slot_idx, payload_bytes, tag, deadline, false));
  sim::spawn(engine_, hedge_backup(hs, fn_index, slot_idx, payload_bytes, tag, deadline,
                                   workers_[widx].device));
  co_await hs->done.wait();
  // First response won; cancel every attempt still in flight on its
  // executor manager (fire-and-forget — a cancel that loses the race
  // costs one wasted execution absorbed by the dedup table, never a
  // wrong result).
  for (const std::size_t loser : hs->in_flight) {
    auto& stream = workers_[loser].mgr_stream;
    if (stream != nullptr && !stream->closed()) {
      InvocationCancelMsg msg;
      msg.client_id = client_id_;
      msg.invocation_tag = tag;
      stream->send(encode(msg));
    }
  }
  if (hs->result.hedge_won) ++hedge_wins_;
  co_return hs->result;
}

sim::Task<void> Invoker::hedge_attempt(std::shared_ptr<Hedge> hs, std::size_t widx,
                                       std::uint16_t fn_index, std::size_t slot_idx,
                                       std::size_t payload_bytes, std::uint64_t tag,
                                       Time deadline, bool is_backup) {
  InvocationResult r = co_await invoke_pooled_on(widx, fn_index, *slot_pool_[slot_idx],
                                                 payload_bytes, tag, deadline);
  record_outcome(workers_[widx].device, r.ok, r.completed_at - r.submitted_at);
  if (r.timed_out) {
    ++timeouts_;
    sim::spawn(engine_, reap_worker(widx));
  } else if (workers_[widx].conn == nullptr || !workers_[widx].conn->alive()) {
    // Dead connection: permanently out of the rotation.
  } else {
    release_worker(widx);
  }
  if (is_backup) {
    // Return the staging slot the backup borrowed from the pool.
    free_slots_.push_back(slot_idx);
    slot_sem_->release();
  }
  std::erase(hs->in_flight, widx);
  --hs->pending;
  if (!hs->resolved && (r.ok || hs->pending == 0)) {
    hs->resolved = true;
    hs->result = r;
    hs->result.hedge_won = is_backup && r.ok;
    hs->done.pulse();
  }
}

sim::Task<void> Invoker::hedge_backup(std::shared_ptr<Hedge> hs, std::uint16_t fn_index,
                                      std::size_t primary_slot_idx, std::size_t payload_bytes,
                                      std::uint64_t tag, Time deadline,
                                      fabric::DeviceId primary_device) {
  // Launch the backup only once the primary has outlived the expected
  // completion time (p99-ish: 4x the healthy latency EWMA) — hedges are
  // for stragglers, not a 2x tax on every invocation.
  const FaultToleranceConfig& ft = config_.fault_tolerance;
  const Duration hedge_delay =
      ft.hedge_delay != 0
          ? ft.hedge_delay
          : (latency_ewma_ > 0 ? static_cast<Duration>(4 * latency_ewma_) : 200_us);
  co_await sim::delay(hedge_delay);
  if (hs->resolved) co_return;               // primary answered in time
  if (free_workers_.empty()) co_return;      // no spare worker: skip the hedge
  if (!slot_sem_->try_acquire()) co_return;  // no spare slot: skip the hedge
  const std::size_t slot2 = free_slots_.front();
  free_slots_.pop_front();
  // Stage the request into the backup's own slot — the primary's slot
  // memory belongs to the write already in flight.
  std::memcpy(slot_pool_[slot2]->in.data(), slot_pool_[primary_slot_idx]->in.data(),
              payload_bytes);
  if (!slots_->try_acquire()) {  // workers vanished since the check
    free_slots_.push_back(slot2);
    slot_sem_->release();
    co_return;
  }
  const std::size_t widx2 = pick_worker_avoiding(primary_device);
  ++hedges_launched_;
  ++hs->pending;
  hs->in_flight.push_back(widx2);
  sim::spawn(engine_,
             hedge_attempt(hs, widx2, fn_index, slot2, payload_bytes, tag, deadline, true));
}

sim::Future<InvocationResult> Invoker::submit_raw(std::uint16_t fn_index,
                                                  std::uint8_t* header_ptr, fabric::Sge sge,
                                                  std::uint32_t in_lkey,
                                                  rdmalib::RemoteBuffer out) {
  (void)in_lkey;
  sim::Promise<InvocationResult> promise;
  auto future = promise.get_future();
  sim::spawn(engine_, run_submission(fn_index, header_ptr, sge, out, std::move(promise)));
  return future;
}

sim::Task<void> Invoker::run_submission(std::uint16_t fn_index, std::uint8_t* header_ptr,
                                        fabric::Sge sge, rdmalib::RemoteBuffer out,
                                        sim::Promise<InvocationResult> promise) {
  const Time submitted = engine_.now();
  InvocationResult result;

  // With fault tolerance on, every attempt carries an idempotent tag
  // (executor-side dedup) and a per-attempt deadline — the submit path
  // gets deadlines and retries but no hedging (it has no pooled backup
  // slot to stage a second copy in).
  const FaultToleranceConfig& ft = config_.fault_tolerance;
  const std::uint64_t tag = ft.enabled() ? mint_tag() : 0;

  // Redirect loop: a rejected warm invocation is re-sent to another
  // executor; RDMA-speed rejections make this cheap (Sec. III-D).
  const std::size_t redirect_attempts = workers_.empty() ? 1 : 2 * workers_.size();
  const std::size_t max_attempts =
      ft.enabled() ? std::max<std::size_t>(redirect_attempts, 1 + ft.retry_budget)
                   : redirect_attempts;
  for (std::size_t attempt = 0; attempt < max_attempts; ++attempt) {
    co_await slots_->acquire();
    std::size_t idx = ft.enabled() ? pick_worker() : free_workers_.front();
    if (!ft.enabled()) free_workers_.pop_front();
    const Time deadline = ft.enabled() ? engine_.now() + ft.invocation_deadline : 0;

    result = co_await invoke_on(idx, fn_index, header_ptr, sge, out, tag, deadline);

    if (ft.enabled()) {
      record_outcome(workers_[idx].device, result.ok,
                     result.completed_at - result.submitted_at);
      if (result.timed_out) {
        // The worker may still get a late completion; reap it off-path
        // instead of returning a poisoned connection to the rotation.
        ++timeouts_;
        sim::spawn(engine_, reap_worker(idx));
      } else if (workers_[idx].conn == nullptr || !workers_[idx].conn->alive()) {
        // Dead connection: drop the worker from the rotation for good.
      } else {
        release_worker(idx);
      }
    } else {
      free_workers_.push_back(idx);
      slots_->release();
    }

    if (result.ok) {
      result.attempts = static_cast<std::uint32_t>(attempt + 1);
      break;
    }
    if (ft.enabled()) ++retries_;
    if (result.rejected) ++rejections_;
    // Rejected — or the worker's connection is dead (its lease was
    // terminated and the sandbox reclaimed): brief backoff, then retry
    // on the (FIFO) next worker. Self-healed allocations appended fresh
    // workers, so the rotation reaches a live one.
    co_await sim::delay(2_us);
  }
  // Client-observed latency includes queueing for a free worker and any
  // redirects, so the submission timestamp is the original one.
  result.submitted_at = submitted;
  promise.set_value(result);
}

sim::Task<InvocationResult> Invoker::invoke_on(std::size_t worker, std::uint16_t fn_index,
                                               std::uint8_t* header_ptr, fabric::Sge sge,
                                               rdmalib::RemoteBuffer out, std::uint64_t tag,
                                               Time deadline) {
  InvocationResult result;
  result.submitted_at = engine_.now();
  WorkerRef& w = workers_[worker];
  if (w.conn == nullptr || !w.conn->alive()) {
    result.completed_at = engine_.now();
    co_return result;  // ok=false: executor is gone (lease terminated?)
  }

  const std::uint32_t invocation_id = next_invocation_++ & 0x7FFFFu;

  // Fill the 32-byte header: where the executor writes the result, plus
  // the idempotent tag and per-attempt deadline when FT is on.
  InvocationHeader header;
  header.result_addr = out.addr;
  header.result_rkey = out.rkey;
  header.invocation_tag = tag;
  header.deadline = deadline;
  header.pack(header_ptr);

  // Post the receive for the result notification first.
  (void)w.conn->post_recv_empty(invocation_id);

  // Write header + payload into the worker's buffer. Inlining is possible
  // only when header+payload fit the ceiling — the 12 extra bytes are why
  // rFaaS loses inlining earlier than raw RDMA (Fig. 8).
  rdmalib::RemoteBuffer dst = w.remote_buf;
  const bool inline_ok = sge.length <= fabric_.model().max_inline;
  auto st = w.conn->post_write_imm(sge, dst, Imm::invocation(fn_index, invocation_id),
                                   invocation_id, inline_ok);
  if (!st.ok()) {
    result.completed_at = engine_.now();
    co_return result;
  }

  // Drain our own send completion (error => connection died).
  auto send_wc = polling_client_ ? co_await w.conn->wait_send_polling()
                                 : co_await w.conn->wait_send_blocking();
  if (send_wc.status != fabric::WcStatus::Success) {
    result.completed_at = engine_.now();
    co_return result;
  }

  // Await the result write into our memory (deadline-bounded when the
  // fault-tolerant path supplied one).
  fabric::Wc wc;
  if (deadline != 0) {
    std::optional<fabric::Wc> maybe;
    if (polling_client_) {
      maybe = co_await w.conn->wait_recv_polling_until(deadline);
    } else {
      maybe = co_await w.conn->wait_recv_blocking_until(deadline);
    }
    if (!maybe.has_value()) {
      result.timed_out = true;
      result.completed_at = engine_.now();
      co_return result;
    }
    wc = *maybe;
  } else if (polling_client_) {
    wc = co_await w.conn->wait_recv_polling();
  } else {
    wc = co_await w.conn->wait_recv_blocking();
  }
  co_await sim::delay(config_.client_completion);
  result.completed_at = engine_.now();
  if (wc.status != fabric::WcStatus::Success || !wc.has_imm) co_return result;
  if (Imm::result_id(wc.imm) != invocation_id) {
    log::warn("invoker", "immediate mismatch: got ", wc.imm, " expected ", invocation_id);
    co_return result;
  }
  result.rejected = Imm::rejected(wc.imm);
  result.ok = !result.rejected;
  result.output_bytes = wc.byte_len;
  co_return result;
}

sim::Task<void> Invoker::deallocate() {
  for (auto& alloc : allocations_) {
    lease_set_->untrack(alloc.lease_id);
    if (alloc.mgr_stream == nullptr || alloc.mgr_stream->closed()) continue;
    DeallocateMsg msg;
    msg.sandbox_id = alloc.sandbox_id;
    msg.lease_id = alloc.lease_id;
    alloc.mgr_stream->send(encode(msg));
    (void)co_await alloc.mgr_stream->recv();  // DeallocateOk
    alloc.mgr_stream->close();
  }
  allocations_.clear();
  lease_specs_.clear();
  for (auto& w : workers_) {
    if (w.conn != nullptr) w.conn->close();
  }
  workers_.clear();
  free_workers_.clear();
  slots_ = std::make_unique<sim::Semaphore>(0);
  // Park the renewal actor; a later allocate(auto_renew) restarts it.
  lease_set_->stop();
}

}  // namespace rfs::rfaas

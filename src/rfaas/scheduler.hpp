// Lease-scheduling layer of the resource manager (Sec. III-A/III-C).
//
// The paper's key control-plane split — allocation through the resource
// manager, invocation bypassing it — means the placement policy only runs
// once per lease and never on the hot path. This file separates the two
// concerns the seed kept fused inside ResourceManager::grant_lease:
//
//  * ExecutorRegistry — the ground truth about spot executors: capacity,
//    liveness, heartbeat bookkeeping and reclamation. A future sharded
//    resource manager reuses it per shard.
//  * Scheduler — a pluggable placement policy consulted for every lease
//    decision. Policies see the registry read-only and return a Placement;
//    the resource manager commits it through ExecutorRegistry::try_claim,
//    which revalidates liveness and capacity (the executor may have died
//    between scan and grant).
//
// Policies (selectable via Config::scheduling):
//  * RoundRobin — the seed's behavior, bit-for-bit: scan from the cursor,
//    grant min(free, requested) workers on the first fitting executor.
//  * LeastLoaded — pick the executor with the most free workers; balances
//    heterogeneous fleets and raises cluster utilization (Fig. 2).
//  * PowerOfTwoChoices — sample two random candidates, prefer the one in
//    the client's topology group, else the less loaded; O(1) per decision
//    with near-optimal balance, the classic two-choices result.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "net/tcp.hpp"
#include "rfaas/config.hpp"
#include "rfaas/protocol.hpp"

namespace rfs::rfaas {

/// State of one registered spot executor.
struct ExecutorEntry {
  RegisterExecutorMsg info;
  std::uint32_t total_workers = 0;  // cores * oversubscription
  std::uint32_t free_workers = 0;
  std::uint64_t free_memory = 0;
  bool alive = true;
  /// Draining: the host stays alive (heartbeats continue) but its
  /// capacity left the schedulable pool — no new placements, and
  /// released leases do not return workers to it.
  bool draining = false;
  /// Degraded: a client HealthReport tripped this executor's circuit
  /// breaker (gray failure — reachable but slow/failing). Capacity stays
  /// in the pool, but every policy deprioritizes the executor: placements
  /// land here only when no healthy executor fits.
  bool degraded = false;
  Time last_ack = 0;
  std::uint32_t locality = 0;  // topology group of the executor NIC
  std::shared_ptr<net::TcpStream> stream;

  /// Eligible to host new leases.
  [[nodiscard]] bool schedulable() const { return alive && !draining; }
};

/// Registry of spot executors: capacity accounting, heartbeat bookkeeping
/// and reclamation. Owned by the resource manager; read by schedulers.
///
/// The liveness and capacity aggregates are maintained incrementally on
/// every add/claim/release/death/drain, so alive_count(),
/// free_workers_total() and total_workers() are O(1) reads instead of
/// O(executors) scans — they sit on utilization sampling and snapshot
/// paths that used to serialize against grants.
class ExecutorRegistry {
 public:
  /// Registers an executor; returns its stable index.
  std::size_t add(ExecutorEntry entry);

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] bool empty() const { return entries_.empty(); }
  [[nodiscard]] ExecutorEntry& at(std::size_t i) { return entries_.at(i); }
  [[nodiscard]] const ExecutorEntry& at(std::size_t i) const { return entries_.at(i); }

  /// Alive executors (incremental counter, O(1)).
  [[nodiscard]] std::size_t alive_count() const { return alive_count_; }
  /// Free workers over schedulable executors (incremental, O(1)).
  [[nodiscard]] std::uint32_t free_workers_total() const { return free_workers_total_; }
  /// Total workers over schedulable executors (incremental, O(1)).
  [[nodiscard]] std::uint32_t total_workers() const { return total_workers_; }

  /// Commits a placement: claims `workers` workers and `memory` bytes on
  /// executor `i`. Fails (false) when the executor died between the
  /// scheduling decision and the commit, or no longer has the capacity.
  bool try_claim(std::size_t i, std::uint32_t workers, std::uint64_t memory);

  /// Returns capacity reclaimed from a released or expired lease. No-op
  /// on a dead executor: its counters were zeroed at death.
  void release(std::size_t i, std::uint32_t workers, std::uint64_t memory);

  /// Marks an executor dead and zeroes its capacity (fast reclamation).
  void mark_dead(std::size_t i);

  /// Marks an executor draining: it stays alive but its capacity leaves
  /// the schedulable pool (free workers zeroed, no future claims).
  void set_draining(std::size_t i);

  /// Flags (or clears) gray-failure degradation. Unlike draining this
  /// keeps the capacity schedulable — policies merely deprioritize it.
  void set_degraded(std::size_t i, bool degraded);
  /// Currently degraded executors (incremental counter, O(1)).
  [[nodiscard]] std::size_t degraded_count() const { return degraded_count_; }

 private:
  std::vector<ExecutorEntry> entries_;
  std::size_t alive_count_ = 0;
  std::size_t degraded_count_ = 0;
  std::uint32_t free_workers_total_ = 0;  // over schedulable entries
  std::uint32_t total_workers_ = 0;       // over schedulable entries
};

/// One placement decision: grant `workers` on executor `executor`,
/// claiming `memory` bytes. Partial grants are allowed — the client
/// library aggregates leases until it reaches the requested parallelism
/// (Sec. III-D).
struct Placement {
  std::size_t executor = 0;
  std::uint32_t workers = 0;
  std::uint64_t memory = 0;  // total bytes claimed on that executor
};

/// The slice of a lease request a policy needs, plus the client's
/// topology group (derived from its TCP stream, not the wire protocol).
struct ScheduleRequest {
  std::uint32_t workers = 1;
  std::uint64_t memory_per_worker = 0;
  std::uint32_t client_locality = 0;
};

/// Placement-policy interface. Implementations may keep internal state
/// (cursor, RNG) but must be deterministic for a fixed seed.
class Scheduler {
 public:
  virtual ~Scheduler() = default;

  [[nodiscard]] virtual const char* name() const = 0;

  /// Picks an executor for (part of) the request. `excluded[i]` marks
  /// executors already tried and refused during this grant (e.g. found
  /// dead at commit); policies must skip them. Returns nullopt when no
  /// eligible executor has capacity.
  ///
  /// Degradation-aware: runs the policy once over healthy executors only,
  /// and falls back to a second pass admitting degraded (gray) executors
  /// when nothing healthy fits — capacity beats latency, but only as a
  /// last resort.
  [[nodiscard]] std::optional<Placement> place(const ExecutorRegistry& registry,
                                               const ScheduleRequest& request,
                                               const std::vector<bool>& excluded) {
    if (auto p = place_pass(registry, request, excluded, /*allow_degraded=*/false)) return p;
    if (registry.degraded_count() == 0) return std::nullopt;
    return place_pass(registry, request, excluded, /*allow_degraded=*/true);
  }

  /// One policy pass. When `allow_degraded` is false, degraded executors
  /// are invisible to the policy.
  [[nodiscard]] virtual std::optional<Placement> place_pass(const ExecutorRegistry& registry,
                                                            const ScheduleRequest& request,
                                                            const std::vector<bool>& excluded,
                                                            bool allow_degraded) = 0;
};

/// Seed-equivalent round-robin scan.
class RoundRobinScheduler final : public Scheduler {
 public:
  [[nodiscard]] const char* name() const override { return "round-robin"; }
  [[nodiscard]] std::optional<Placement> place_pass(const ExecutorRegistry& registry,
                                                    const ScheduleRequest& request,
                                                    const std::vector<bool>& excluded,
                                                    bool allow_degraded) override;

 private:
  std::size_t next_ = 0;  // scan start cursor
};

/// Most-free-workers-first; ties broken by lowest index.
class LeastLoadedScheduler final : public Scheduler {
 public:
  [[nodiscard]] const char* name() const override { return "least-loaded"; }
  [[nodiscard]] std::optional<Placement> place_pass(const ExecutorRegistry& registry,
                                                    const ScheduleRequest& request,
                                                    const std::vector<bool>& excluded,
                                                    bool allow_degraded) override;
};

/// Two random candidates; prefer the client's topology group, else the
/// less loaded one. Falls back to a full scan when sampling finds no
/// eligible executor (small or nearly-full fleets).
class PowerOfTwoScheduler final : public Scheduler {
 public:
  explicit PowerOfTwoScheduler(std::uint64_t seed, bool prefer_locality)
      : rng_(seed), prefer_locality_(prefer_locality) {}

  [[nodiscard]] const char* name() const override { return "power-of-two"; }
  [[nodiscard]] std::optional<Placement> place_pass(const ExecutorRegistry& registry,
                                                    const ScheduleRequest& request,
                                                    const std::vector<bool>& excluded,
                                                    bool allow_degraded) override;

 private:
  Rng rng_;
  bool prefer_locality_;
};

/// Locality-first placement: among the executors in the client's rack
/// (matching topology group) pick the least loaded; when no local
/// executor fits, fall back to power-of-two-choices over the whole
/// registry. Under a sharded manager this policy also switches the
/// shard layout to rack-affine (executors shard by rack, requests route
/// to the client rack's shard first) — see ShardedResourceManager.
class LocalityFirstScheduler final : public Scheduler {
 public:
  explicit LocalityFirstScheduler(std::uint64_t seed) : fallback_(seed, true) {}

  [[nodiscard]] const char* name() const override { return "locality-first"; }
  [[nodiscard]] std::optional<Placement> place_pass(const ExecutorRegistry& registry,
                                                    const ScheduleRequest& request,
                                                    const std::vector<bool>& excluded,
                                                    bool allow_degraded) override;

 private:
  PowerOfTwoScheduler fallback_;
};

/// Builds the policy selected by `config.scheduling`.
std::unique_ptr<Scheduler> make_scheduler(const Config& config);

}  // namespace rfs::rfaas

#include "rfaas/scheduler.hpp"

namespace rfs::rfaas {

const char* to_string(SchedulingPolicy p) {
  switch (p) {
    case SchedulingPolicy::RoundRobin: return "round-robin";
    case SchedulingPolicy::LeastLoaded: return "least-loaded";
    case SchedulingPolicy::PowerOfTwoChoices: return "power-of-two";
    case SchedulingPolicy::LocalityFirst: return "locality-first";
  }
  return "unknown";
}

// --------------------------------------------------------------------------
// ExecutorRegistry
// --------------------------------------------------------------------------

std::size_t ExecutorRegistry::add(ExecutorEntry entry) {
  if (entry.alive) ++alive_count_;
  if (entry.schedulable()) {
    free_workers_total_ += entry.free_workers;
    total_workers_ += entry.total_workers;
  }
  entries_.push_back(std::move(entry));
  return entries_.size() - 1;
}

bool ExecutorRegistry::try_claim(std::size_t i, std::uint32_t workers, std::uint64_t memory) {
  if (i >= entries_.size()) return false;
  auto& e = entries_[i];
  if (!e.schedulable() || workers == 0 || workers > e.free_workers || memory > e.free_memory) {
    return false;
  }
  e.free_workers -= workers;
  e.free_memory -= memory;
  free_workers_total_ -= workers;
  return true;
}

void ExecutorRegistry::release(std::size_t i, std::uint32_t workers, std::uint64_t memory) {
  if (i >= entries_.size()) return;
  auto& e = entries_[i];
  if (!e.schedulable()) return;  // capacity was zeroed at death or drain
  e.free_workers += workers;
  e.free_memory += memory;
  free_workers_total_ += workers;
}

void ExecutorRegistry::mark_dead(std::size_t i) {
  if (i >= entries_.size()) return;
  auto& e = entries_[i];
  if (e.alive) --alive_count_;
  if (e.schedulable()) {
    free_workers_total_ -= e.free_workers;
    total_workers_ -= e.total_workers;
  }
  e.alive = false;
  e.free_workers = 0;
  e.free_memory = 0;
}

void ExecutorRegistry::set_degraded(std::size_t i, bool degraded) {
  if (i >= entries_.size()) return;
  auto& e = entries_[i];
  if (e.degraded == degraded) return;
  e.degraded = degraded;
  degraded ? ++degraded_count_ : --degraded_count_;
}

void ExecutorRegistry::set_draining(std::size_t i) {
  if (i >= entries_.size()) return;
  auto& e = entries_[i];
  if (e.schedulable()) {
    free_workers_total_ -= e.free_workers;
    total_workers_ -= e.total_workers;
  }
  e.draining = true;
  e.free_workers = 0;
  e.free_memory = 0;
}

// --------------------------------------------------------------------------
// Policies
// --------------------------------------------------------------------------

namespace {

/// Seed-equivalent fit rule shared by all policies: grant min(free,
/// requested) workers; skip the executor if that many don't fit in its
/// free memory (no shrinking to fit).
std::optional<Placement> fit(const ExecutorRegistry& registry, std::size_t idx,
                             const ScheduleRequest& request, const std::vector<bool>& excluded,
                             bool allow_degraded) {
  if (idx < excluded.size() && excluded[idx]) return std::nullopt;
  const auto& e = registry.at(idx);
  if (!e.schedulable() || e.free_workers == 0) return std::nullopt;
  if (e.degraded && !allow_degraded) return std::nullopt;
  const std::uint32_t workers = std::min(e.free_workers, request.workers);
  const std::uint64_t memory = request.memory_per_worker * workers;
  if (memory > e.free_memory) return std::nullopt;
  return Placement{idx, workers, memory};
}

}  // namespace

std::optional<Placement> RoundRobinScheduler::place_pass(const ExecutorRegistry& registry,
                                                         const ScheduleRequest& request,
                                                         const std::vector<bool>& excluded,
                                                         bool allow_degraded) {
  const std::size_t n = registry.size();
  if (n == 0) return std::nullopt;
  for (std::size_t probe = 0; probe < n; ++probe) {
    const std::size_t idx = (next_ + probe) % n;
    if (auto p = fit(registry, idx, request, excluded, allow_degraded)) {
      next_ = (idx + 1) % n;
      return p;
    }
  }
  return std::nullopt;
}

std::optional<Placement> LeastLoadedScheduler::place_pass(const ExecutorRegistry& registry,
                                                          const ScheduleRequest& request,
                                                          const std::vector<bool>& excluded,
                                                          bool allow_degraded) {
  std::optional<Placement> best;
  std::uint32_t best_free = 0;
  for (std::size_t idx = 0; idx < registry.size(); ++idx) {
    auto p = fit(registry, idx, request, excluded, allow_degraded);
    if (!p) continue;
    const std::uint32_t free = registry.at(idx).free_workers;
    if (!best || free > best_free) {
      best = p;
      best_free = free;
    }
  }
  return best;
}

std::optional<Placement> PowerOfTwoScheduler::place_pass(const ExecutorRegistry& registry,
                                                         const ScheduleRequest& request,
                                                         const std::vector<bool>& excluded,
                                                         bool allow_degraded) {
  const std::size_t n = registry.size();
  if (n == 0) return std::nullopt;

  const std::size_t first = static_cast<std::size_t>(rng_.next() % n);
  const std::size_t second =
      n > 1 ? (first + 1 + static_cast<std::size_t>(rng_.next() % (n - 1))) % n : first;

  auto a = fit(registry, first, request, excluded, allow_degraded);
  auto b = second != first ? fit(registry, second, request, excluded, allow_degraded) : std::nullopt;

  if (a && b) {
    if (prefer_locality_) {
      const bool a_local = registry.at(first).locality == request.client_locality;
      const bool b_local = registry.at(second).locality == request.client_locality;
      if (a_local != b_local) return a_local ? a : b;
    }
    if (registry.at(first).free_workers != registry.at(second).free_workers) {
      return registry.at(first).free_workers > registry.at(second).free_workers ? a : b;
    }
    return first < second ? a : b;
  }
  if (a) return a;
  if (b) return b;

  // Both samples ineligible: deterministic fallback scan so small or
  // nearly-full fleets still get placed.
  for (std::size_t idx = 0; idx < n; ++idx) {
    if (auto p = fit(registry, idx, request, excluded, allow_degraded)) return p;
  }
  return std::nullopt;
}

std::optional<Placement> LocalityFirstScheduler::place_pass(const ExecutorRegistry& registry,
                                                            const ScheduleRequest& request,
                                                            const std::vector<bool>& excluded,
                                                            bool allow_degraded) {
  // Local pass: least-loaded among the executors in the client's rack.
  std::optional<Placement> best;
  std::uint32_t best_free = 0;
  for (std::size_t idx = 0; idx < registry.size(); ++idx) {
    if (registry.at(idx).locality != request.client_locality) continue;
    auto p = fit(registry, idx, request, excluded, allow_degraded);
    if (!p) continue;
    const std::uint32_t free = registry.at(idx).free_workers;
    if (!best || free > best_free) {
      best = p;
      best_free = free;
    }
  }
  if (best) return best;
  // No local capacity: pay the cross-rack cost through the usual
  // power-of-two sampling (which itself still tie-breaks on locality).
  return fallback_.place_pass(registry, request, excluded, allow_degraded);
}

std::unique_ptr<Scheduler> make_scheduler(const Config& config) {
  switch (config.scheduling) {
    case SchedulingPolicy::LeastLoaded:
      return std::make_unique<LeastLoadedScheduler>();
    case SchedulingPolicy::PowerOfTwoChoices:
      return std::make_unique<PowerOfTwoScheduler>(config.scheduler_seed,
                                                   config.scheduler_locality);
    case SchedulingPolicy::LocalityFirst:
      return std::make_unique<LocalityFirstScheduler>(config.scheduler_seed);
    case SchedulingPolicy::RoundRobin:
    default:
      return std::make_unique<RoundRobinScheduler>();
  }
}

}  // namespace rfs::rfaas

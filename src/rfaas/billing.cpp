#include "rfaas/billing.hpp"

namespace rfs::rfaas {

std::uint64_t allocation_mib_ms(std::uint64_t memory_bytes, Duration span) {
  const std::uint64_t mib = memory_bytes >> 20;
  const std::uint64_t ms = span / 1'000'000ull;
  return mib * ms;
}

BillingDatabase::BillingDatabase(fabric::ProtectionDomain& pd)
    : counters_(kMaxTenants * kCountersPerTenant) {
  (void)counters_.register_memory(pd, fabric::RemoteAtomic | fabric::LocalWrite);
}

rdmalib::RemoteBuffer BillingDatabase::tenant_slot(std::uint32_t client_id) const {
  std::uint32_t tenant = client_id % kMaxTenants;
  const auto* base = counters_.data() + tenant * kCountersPerTenant;
  return rdmalib::RemoteBuffer{reinterpret_cast<std::uint64_t>(base),
                               counters_.mr() != nullptr ? counters_.mr()->rkey() : 0,
                               kCountersPerTenant * 8};
}

TenantUsage BillingDatabase::usage(std::uint32_t client_id) const {
  std::uint32_t tenant = client_id % kMaxTenants;
  const auto* base = counters_.data() + tenant * kCountersPerTenant;
  return TenantUsage{base[0], base[1], base[2]};
}

double BillingDatabase::cost(std::uint32_t client_id, const BillingRates& rates) const {
  TenantUsage u = usage(client_id);
  double gb_s = static_cast<double>(u.allocation_mib_ms) / 1024.0 / 1e3;
  double compute_s = static_cast<double>(u.compute_ns) / 1e9;
  double hot_s = static_cast<double>(u.hot_poll_ns) / 1e9;
  return rates.allocation_per_gb_s * gb_s + rates.compute_per_s * compute_s +
         rates.hot_poll_per_s * hot_s;
}

}  // namespace rfs::rfaas

// Function registry and code packages.
//
// rFaaS functions follow the paper's interface (Listing 1):
//
//   uint32_t f(void* in, uint32_t size, void* out);
//
// The return value is the number of output bytes written back to the
// client. A CodePackage bundles the callable with the size of its shared
// library (which is what travels over the wire during code submission)
// and a compute-cost model that charges virtual time for the execution,
// so 32-way-parallel experiments are reproducible on a single host core.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>

#include "common/result.hpp"
#include "common/units.hpp"

namespace rfs::rfaas {

/// Signature of an rFaaS function (paper Listing 1).
using FunctionEntry = std::function<std::uint32_t(const void* in, std::uint32_t size, void* out)>;

/// Virtual compute time of one execution given the input size.
using CostModel = std::function<Duration(std::uint32_t input_size)>;

struct CodePackage {
  std::string name;
  std::uint64_t code_size = 7880;  // the paper's no-op library is 7.88 kB
  std::uint32_t max_output = 0;    // declared output bound (bytes)
  FunctionEntry entry;
  CostModel cost;                  // defaults to zero cost when empty

  /// Containerization slowdown of this function's compute (0 = use the
  /// sandbox default). The penalty is workload-dependent: the paper's
  /// thumbnailer runs ~1.7x slower under Docker while inference is
  /// nearly unaffected (Fig. 11).
  double docker_compute_multiplier = 0.0;

  [[nodiscard]] Duration compute_time(std::uint32_t input_size) const {
    return cost ? cost(input_size) : 0;
  }
};

/// The registry stands in for the Docker registry + cloud storage that
/// hold function images: executors "download" a package by name after the
/// client submits code (the transfer cost is paid on the wire by the
/// submitting protocol; the registry provides the content).
class FunctionRegistry {
 public:
  void add(CodePackage package);

  [[nodiscard]] Result<const CodePackage*> find(const std::string& name) const;
  [[nodiscard]] bool contains(const std::string& name) const;
  [[nodiscard]] std::size_t size() const { return packages_.size(); }

  /// Convenience: registers the no-op echo function used throughout the
  /// paper's microbenchmarks (returns its input).
  void add_echo(const std::string& name = "echo");

 private:
  std::map<std::string, CodePackage> packages_;
};

}  // namespace rfs::rfaas

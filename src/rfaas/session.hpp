// Idempotent request/reply session over a lossy control-plane stream.
//
// The seed protocol was pure send-then-recv: one dropped LeaseRequest and
// the client hung forever, one duplicated reply and the next round trip
// decoded the wrong message. A Session owns exactly one TcpStream and
// turns it into a lease-protocol FSM (the shape of 802.15.4 submac
// retransmission and PPP control protocols over lossy serial links):
//
//  - every call() carries a monotonically increasing request id
//    ((epoch << 32) | sequence) echoed by the reply, so replies match
//    attempts positionally even when duplicated, delayed or reordered;
//  - lost exchanges retransmit on an adaptive timeout (SRTT + 4*RTTVAR,
//    RFC 6298 shape) with capped exponential backoff and a bounded
//    retransmit budget — Karn's rule: retransmitted exchanges never
//    feed the RTT estimator;
//  - a pump coroutine is the stream's only reader, classifying inbound
//    messages into the pending reply, duplicate/stale replies (counted,
//    dropped — a LeaseGrant re-answering a completed request with a
//    DIFFERENT lease id increments double_grants, the invariant the
//    chaos gate enforces to zero), and push notifications drained via
//    next_push();
//  - when the stream dies or the budget is exhausted the call fails
//    cleanly and the owner runs its recovery action (the PR 4
//    self-healing path re-allocates; executors re-register under a
//    fresh epoch, fencing the stale session at the manager).
//
// One session per stream: two id spaces on one stream would corrupt the
// manager's per-stream dedup table. Exactly one call() is outstanding at
// a time (an internal FIFO mutex serializes callers), which also bounds
// the manager-side dedup window a stream can ever need.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <unordered_map>

#include "common/bytes.hpp"
#include "common/result.hpp"
#include "common/units.hpp"
#include "net/tcp.hpp"
#include "rfaas/protocol.hpp"
#include "sim/sync.hpp"

namespace rfs::rfaas {

/// Retransmission parameters of a Session.
struct SessionOptions {
  Duration rto_initial = 5_ms;  ///< first-attempt timeout before any RTT sample
  Duration rto_min = 1_ms;      ///< floor of the adaptive timeout
  Duration rto_max = 200_ms;    ///< backoff cap (and ceiling of the adaptive timeout)
  unsigned max_retransmits = 6; ///< extra attempts after the first send
  std::uint32_t epoch = 1;      ///< high half of every request id; bump per reconnect
};

/// One hardened request/reply session. Create one per control stream;
/// share it between every component that talks on that stream.
class Session {
 public:
  Session(sim::Engine& engine, std::shared_ptr<net::TcpStream> stream,
          SessionOptions options = {});

  /// Next request id to stamp into an outgoing message, monotonically
  /// increasing within the session's epoch.
  [[nodiscard]] std::uint64_t next_request_id();

  /// Sends `request` (which must carry `request_id`) and waits for the
  /// reply echoing that id, retransmitting on timeout. Fails when the
  /// stream closes or the retransmit budget is exhausted.
  sim::Task<Result<Bytes>> call(Bytes request, std::uint64_t request_id);

  /// Next push notification (non-reply message) received on the stream;
  /// nullopt once the stream closed and the queue drained. Duplicated
  /// deliveries of sequenced pushes (LeaseTerminated/LeasesTerminated
  /// with seq != 0) are counted and filtered here.
  sim::Task<std::optional<Bytes>> next_push();

  /// Fire-and-forget passthrough for messages outside the request/reply
  /// discipline (HeartbeatAck, legacy releases).
  void send_raw(Bytes message);

  [[nodiscard]] const std::shared_ptr<net::TcpStream>& stream() const { return state_->stream; }
  [[nodiscard]] bool closed() const { return state_->closed || state_->stream->closed(); }
  [[nodiscard]] std::uint32_t epoch() const { return state_->options.epoch; }

  /// Chaos accounting.
  [[nodiscard]] std::uint64_t calls() const { return state_->calls; }
  [[nodiscard]] std::uint64_t retransmits() const { return state_->retransmits; }
  [[nodiscard]] std::uint64_t call_failures() const { return state_->call_failures; }
  [[nodiscard]] std::uint64_t duplicate_replies() const { return state_->duplicate_replies; }
  [[nodiscard]] std::uint64_t duplicate_pushes() const { return state_->duplicate_pushes; }
  [[nodiscard]] std::uint64_t double_grants() const { return state_->double_grants; }

  /// Current adaptive retransmission timeout (exposed for tests).
  [[nodiscard]] Duration current_rto() const;

 private:
  /// Shared by the pump coroutine and in-flight calls, so either may
  /// outlive the Session handle itself.
  struct State {
    State(sim::Engine& eng, std::shared_ptr<net::TcpStream> s, SessionOptions opts)
        : engine(eng), stream(std::move(s)), options(opts) {}

    sim::Engine& engine;
    std::shared_ptr<net::TcpStream> stream;
    SessionOptions options;

    sim::Mutex call_mutex;        ///< one outstanding call at a time
    std::uint32_t sequence = 0;

    bool waiting = false;         ///< a call is blocked on pending_id
    std::uint64_t pending_id = 0;
    std::optional<Bytes> pending_reply;
    sim::Event reply_event;

    std::deque<Bytes> pushes;
    sim::Event push_event;
    std::deque<std::uint64_t> push_seqs_fifo;   ///< bounded seen-seq window
    std::unordered_map<std::uint64_t, bool> push_seqs;

    bool closed = false;

    /// Completed request ids -> granted lease id (0 when the reply was
    /// not a grant). Bounded FIFO: old entries age out, which is safe
    /// because one-call-at-a-time bounds how stale a wandering duplicate
    /// can be when it finally lands.
    std::deque<std::uint64_t> completed_fifo;
    std::unordered_map<std::uint64_t, std::uint64_t> completed;

    // RFC 6298 estimator state (nanoseconds, like every sim Duration).
    bool has_rtt = false;
    double srtt = 0;
    double rttvar = 0;

    std::uint64_t calls = 0;
    std::uint64_t retransmits = 0;
    std::uint64_t call_failures = 0;
    std::uint64_t duplicate_replies = 0;
    std::uint64_t duplicate_pushes = 0;
    std::uint64_t double_grants = 0;
    std::uint64_t stale_replies = 0;
  };

  static sim::Task<void> pump(std::shared_ptr<State> st);
  static sim::Task<void> wake_at(std::shared_ptr<State> st, Time deadline);
  static void classify(State& st, Bytes msg);
  static void record_completed(State& st, std::uint64_t id, const Bytes& reply);
  static void note_rtt(State& st, Duration sample);
  static Duration rto_of(const State& st);

  std::shared_ptr<State> state_;
};

}  // namespace rfs::rfaas

// Wire protocol of rFaaS.
//
// Control plane (TCP): executor registration, lease requests/grants,
// allocation requests, code submission. Data plane (RDMA): the invocation
// format of Sec. IV-A — a 12-byte header carrying the client's
// result-buffer address and rkey, followed by the payload, written via
// RDMA WRITE_WITH_IMM whose immediate value packs the function index and
// the invocation identifier.
#pragma once

#include <cstdint>
#include <string>

#include "common/bytes.hpp"
#include "common/result.hpp"
#include "common/units.hpp"
#include "fabric/verbs.hpp"
#include "rfaas/config.hpp"

namespace rfs::rfaas {

/// The 12-byte invocation header preceding every input payload: the
/// executor writes the output directly into this client buffer.
struct InvocationHeader {
  std::uint64_t result_addr = 0;
  std::uint32_t result_rkey = 0;

  static constexpr std::size_t kSize = 12;

  void pack(std::uint8_t* out) const;
  static InvocationHeader unpack(const std::uint8_t* in);
};

/// Immediate-value encoding: high 12 bits function index, low 20 bits
/// invocation id. Result immediates set the reject bit on rejection.
struct Imm {
  static constexpr std::uint32_t kRejectBit = 1u << 19;

  static std::uint32_t invocation(std::uint16_t fn_index, std::uint32_t invocation_id) {
    return (static_cast<std::uint32_t>(fn_index) << 20) | (invocation_id & 0xFFFFFu);
  }
  static std::uint32_t result(std::uint32_t invocation_id, bool rejected) {
    return (invocation_id & 0x7FFFFu) | (rejected ? kRejectBit : 0u);
  }
  static std::uint16_t fn_index(std::uint32_t imm) { return static_cast<std::uint16_t>(imm >> 20); }
  static std::uint32_t invocation_id(std::uint32_t imm) { return imm & 0xFFFFFu; }
  static std::uint32_t result_id(std::uint32_t imm) { return imm & 0x7FFFFu; }
  static bool rejected(std::uint32_t imm) { return (imm & kRejectBit) != 0; }
};

/// Message kinds on the TCP control plane.
enum class MsgType : std::uint8_t {
  RegisterExecutor,     // executor manager -> resource manager
  RegisterOk,
  LeaseRequest,         // client -> resource manager
  LeaseGrant,
  LeaseError,
  AllocationRequest,    // client -> executor manager
  AllocationReply,
  SubmitCode,           // client -> executor manager
  SubmitCodeOk,
  Deallocate,           // client -> executor manager
  DeallocateOk,
  Heartbeat,            // resource manager -> executor manager
  HeartbeatAck,
  LeaseTerminated,      // resource manager -> client (fast reclamation)
  ReleaseResources,     // executor manager -> resource manager (early return)
  ExtendLease,          // client -> resource manager (renew before expiry)
  ExtendOk,
  Count,                // sentinel, keep last
};

/// Worker polling policy of an allocation.
enum class InvocationPolicy : std::uint8_t {
  WarmAlways,  // workers always block on the completion channel
  HotAlways,   // workers busy-poll for the lease lifetime
  Adaptive,    // hot after each execution, roll back to warm on timeout
};

struct RegisterExecutorMsg {
  std::uint32_t device = 0;       // fabric device id of the spot host
  std::uint16_t alloc_port = 0;   // TCP port of the lightweight allocator
  std::uint16_t rdma_port = 0;    // fabric CM port for worker connections
  std::uint32_t cores = 0;
  std::uint64_t memory_bytes = 0;
};

struct RegisterOkMsg {
  std::uint16_t rm_rdma_port = 0;     // where executors connect for billing atomics
  std::uint64_t billing_addr = 0;     // base of the billing counter array
  std::uint32_t billing_rkey = 0;
};

struct LeaseRequestMsg {
  std::uint32_t client_id = 0;
  std::uint32_t workers = 0;       // requested function instances
  std::uint64_t memory_bytes = 0;  // per-worker memory
  Duration timeout = 0;            // lease validity
};

struct LeaseGrantMsg {
  std::uint64_t lease_id = 0;
  std::uint32_t device = 0;
  std::uint16_t alloc_port = 0;
  std::uint16_t rdma_port = 0;
  std::uint32_t workers = 0;  // workers granted on this executor
  Time expires_at = 0;
};

struct AllocationRequestMsg {
  std::uint64_t lease_id = 0;
  std::uint32_t client_id = 0;
  std::uint32_t workers = 0;
  std::uint64_t memory_bytes = 0;
  std::uint8_t sandbox = 0;  // SandboxType
  std::uint8_t policy = 0;   // InvocationPolicy
  Duration hot_timeout = 0;  // Adaptive rollback timeout (0 = default)
  Time expires_at = 0;       // lease expiry (sandbox self-destructs)
};

struct ReleaseResourcesMsg {
  std::uint64_t lease_id = 0;
  std::uint32_t workers = 0;
  std::uint64_t memory_bytes = 0;
};

/// Lease renewal: extends a live lease by `extension` from now. Granted
/// leases are time-limited; long-running clients renew instead of paying
/// a fresh placement.
struct ExtendLeaseMsg {
  std::uint64_t lease_id = 0;
  Duration extension = 0;
};

struct ExtendOkMsg {
  std::uint64_t lease_id = 0;
  Time expires_at = 0;  // the new deadline
};

struct AllocationReplyMsg {
  bool ok = false;
  std::uint64_t sandbox_id = 0;
  std::uint16_t rdma_port = 0;   // port workers accept on
  std::uint64_t spawn_ns = 0;    // measured sandbox+worker spawn time
  std::string error;
};

struct SubmitCodeOkMsg {
  std::uint16_t fn_index = 0;  // index in the sandbox's function table
};

struct SubmitCodeMsg {
  std::uint64_t sandbox_id = 0;
  std::string function_name;
  std::uint64_t code_size = 0;  // shipped library size (bytes on the wire)
};

struct DeallocateMsg {
  std::uint64_t sandbox_id = 0;
  std::uint64_t lease_id = 0;
};

/// Envelope: [u8 type][payload...]. Each payload codec is explicit; this
/// is a real wire format, not in-memory object passing.
Bytes encode(MsgType type);
Bytes encode(const RegisterExecutorMsg& m);
Bytes encode(const RegisterOkMsg& m);
Bytes encode(const LeaseRequestMsg& m);
Bytes encode(const LeaseGrantMsg& m);
Bytes encode_lease_error(const std::string& reason);
Bytes encode(const AllocationRequestMsg& m);
Bytes encode(const AllocationReplyMsg& m);
Bytes encode(const SubmitCodeMsg& m);
Bytes encode(const SubmitCodeOkMsg& m);
Bytes encode(const DeallocateMsg& m);
Bytes encode(const ReleaseResourcesMsg& m);
Bytes encode(const ExtendLeaseMsg& m);
Bytes encode(const ExtendOkMsg& m);

Result<MsgType> peek_type(const Bytes& raw);
Result<RegisterExecutorMsg> decode_register(const Bytes& raw);
Result<RegisterOkMsg> decode_register_ok(const Bytes& raw);
Result<LeaseRequestMsg> decode_lease_request(const Bytes& raw);
Result<LeaseGrantMsg> decode_lease_grant(const Bytes& raw);
Result<std::string> decode_lease_error(const Bytes& raw);
Result<AllocationRequestMsg> decode_allocation_request(const Bytes& raw);
Result<AllocationReplyMsg> decode_allocation_reply(const Bytes& raw);
Result<SubmitCodeMsg> decode_submit_code(const Bytes& raw);
Result<SubmitCodeOkMsg> decode_submit_code_ok(const Bytes& raw);
Result<DeallocateMsg> decode_deallocate(const Bytes& raw);
Result<ReleaseResourcesMsg> decode_release(const Bytes& raw);
Result<ExtendLeaseMsg> decode_extend_lease(const Bytes& raw);
Result<ExtendOkMsg> decode_extend_ok(const Bytes& raw);

}  // namespace rfs::rfaas

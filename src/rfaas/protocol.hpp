// Wire protocol of rFaaS.
//
// Control plane (TCP): executor registration, lease requests/grants,
// allocation requests, code submission. Data plane (RDMA): the invocation
// format of Sec. IV-A — a 32-byte header carrying the client's
// result-buffer address and rkey plus the fault-tolerance fields
// (idempotent invocation tag, absolute deadline, payload checksum),
// followed by the payload, written via RDMA WRITE_WITH_IMM whose
// immediate value packs the function index and the invocation identifier.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/result.hpp"
#include "common/units.hpp"
#include "fabric/verbs.hpp"
#include "rfaas/config.hpp"

namespace rfs::rfaas {

/// The 32-byte invocation header preceding every input payload: the
/// executor writes the output directly into this client buffer. The
/// trailing fault-tolerance fields are all-zero when FT is disabled:
/// `invocation_tag` ((client epoch << 32) | sequence, 0 = no dedup) lets
/// the executor recognise a retried or hedged invocation and replay the
/// stored result instead of executing twice; `deadline` (absolute time,
/// 0 = none) lets it drop an invocation that has already timed out on
/// the client — a late duplicate is never executed; `checksum` (0 = not
/// checked) is the client's checksum over the input payload, verified
/// executor-side so a corrupted submit frame is rejected, not executed.
struct InvocationHeader {
  std::uint64_t result_addr = 0;
  std::uint32_t result_rkey = 0;
  std::uint64_t invocation_tag = 0;
  Time deadline = 0;
  std::uint32_t checksum = 0;

  static constexpr std::size_t kSize = 32;

  void pack(std::uint8_t* out) const;
  static InvocationHeader unpack(const std::uint8_t* in);
};

/// Immediate-value encoding: high 12 bits function index, low 20 bits
/// invocation id. Result immediates set the reject bit on rejection and
/// carry a 12-bit output checksum in the otherwise-unused high bits, so
/// a corrupted response is detected from the completion alone.
struct Imm {
  static constexpr std::uint32_t kRejectBit = 1u << 19;

  static std::uint32_t invocation(std::uint16_t fn_index, std::uint32_t invocation_id) {
    return (static_cast<std::uint32_t>(fn_index) << 20) | (invocation_id & 0xFFFFFu);
  }
  static std::uint32_t result(std::uint32_t invocation_id, bool rejected,
                              std::uint32_t checksum12 = 0) {
    return (invocation_id & 0x7FFFFu) | (rejected ? kRejectBit : 0u) |
           ((checksum12 & 0xFFFu) << 20);
  }
  static std::uint16_t fn_index(std::uint32_t imm) { return static_cast<std::uint16_t>(imm >> 20); }
  static std::uint32_t invocation_id(std::uint32_t imm) { return imm & 0xFFFFFu; }
  static std::uint32_t result_id(std::uint32_t imm) { return imm & 0x7FFFFu; }
  static bool rejected(std::uint32_t imm) { return (imm & kRejectBit) != 0; }
  static std::uint32_t result_checksum(std::uint32_t imm) { return imm >> 20; }
};

/// 32-bit FNV-1a over a payload — the data-plane integrity check. Cheap
/// enough for the fast path (one multiply per byte), strong enough to
/// catch the injected bit flips. fold12() compresses it into the 12
/// imm bits available for the response direction.
inline std::uint32_t payload_checksum(const std::uint8_t* data, std::size_t len) {
  std::uint32_t h = 2166136261u;
  for (std::size_t i = 0; i < len; ++i) {
    h ^= data[i];
    h *= 16777619u;
  }
  return h;
}

inline std::uint32_t fold12(std::uint32_t checksum) {
  const std::uint32_t folded = (checksum ^ (checksum >> 12) ^ (checksum >> 24)) & 0xFFFu;
  // 0 means "not checked" on the wire, so a genuinely zero fold maps to
  // a fixed nonzero sentinel — verification stays deterministic.
  return folded != 0 ? folded : 0xFFFu;
}

/// Message kinds on the TCP control plane.
enum class MsgType : std::uint8_t {
  RegisterExecutor,     // executor manager -> resource manager
  RegisterOk,
  LeaseRequest,         // client -> resource manager
  LeaseGrant,
  LeaseError,
  AllocationRequest,    // client -> executor manager
  AllocationReply,
  SubmitCode,           // client -> executor manager
  SubmitCodeOk,
  Deallocate,           // client -> executor manager
  DeallocateOk,
  Heartbeat,            // resource manager -> executor manager
  HeartbeatAck,
  LeaseTerminated,      // resource manager -> client (fast reclamation)
  ReleaseResources,     // executor manager -> resource manager (early return)
  ExtendLease,          // client -> resource manager (renew before expiry)
  ExtendOk,
  BatchAllocate,        // client -> resource manager (multi-lease, one trip)
  BatchGranted,
  LeaseRenewed,         // resource manager -> executor manager (push)
  SubscribeEvents,      // client -> resource manager (open a notification stream)
  LeasesTerminated,     // resource manager -> client/executor (coalesced sweep)
  ReleaseOk,            // resource manager -> releaser (ack, retransmit stop)
  LeaseDenied,          // resource manager -> client (admission shed, retry hint)
  JournalRecord,        // primary manager -> standby replica (state stream)
  SnapshotOffer,        // primary manager -> standby replica (snapshot header)
  FailoverAnnounce,     // promoted manager -> subscriber (push, new epoch)
  LeaseRevalidate,      // client -> promoted manager (held-lease audit)
  InvocationCancel,     // client -> executor manager (hedge loser suppression)
  HealthReport,         // client -> resource manager (executor health observations)
  HealthReportOk,       // resource manager -> client (ack, retransmit stop)
  Count,                // sentinel, keep last
};

// ---------------------------------------------------------------------------
// Lossy-network hardening. Lease-critical messages carry a trailing
// monotonically increasing request id ((epoch << 32) | sequence, see
// rfaas/session.hpp); replies echo it so a retransmitting sender can
// match a reply to the attempt it answers, and the manager's bounded
// per-stream dedup table can replay the cached reply for a retransmitted
// request instead of executing it twice (no double-grants). id 0 means
// "legacy sender": never deduplicated, never retransmitted — the field
// is always on the wire, only its value is optional. Push notifications
// (LeaseTerminated/LeasesTerminated) carry a per-stream sequence number
// instead, so duplicated deliveries are counted and ignored client-side.
// ---------------------------------------------------------------------------

/// Worker polling policy of an allocation.
enum class InvocationPolicy : std::uint8_t {
  WarmAlways,  // workers always block on the completion channel
  HotAlways,   // workers busy-poll for the lease lifetime
  Adaptive,    // hot after each execution, roll back to warm on timeout
};

/// Spot-executor registration with the resource manager (Sec. III-A).
struct RegisterExecutorMsg {
  std::uint32_t device = 0;       ///< fabric device id of the spot host
  std::uint16_t alloc_port = 0;   ///< TCP port of the lightweight allocator
  std::uint16_t rdma_port = 0;    ///< fabric CM port for worker connections
  std::uint32_t cores = 0;        ///< schedulable cores of the host
  std::uint64_t memory_bytes = 0; ///< offerable memory of the host
  std::uint64_t epoch = 0;        ///< registration session epoch (fences stale sessions)
  std::uint64_t request_id = 0;   ///< retransmission dedup id (0 = legacy)
};

/// Registration reply: where the executor's billing atomics land.
struct RegisterOkMsg {
  std::uint16_t rm_rdma_port = 0;     ///< where executors connect for billing atomics
  std::uint64_t billing_addr = 0;     ///< base of the billing counter array
  std::uint32_t billing_rkey = 0;     ///< rkey of the billing counter array
  std::uint64_t request_id = 0;       ///< echoes RegisterExecutorMsg::request_id
};

/// One lease acquisition (Sec. III-C): "clients acquire leases by
/// requesting the desired core count, memory, and timeout". Grants may be
/// partial; clients aggregate (or use BatchAllocateMsg).
struct LeaseRequestMsg {
  std::uint32_t client_id = 0;     ///< billing tenant of the requester
  std::uint32_t workers = 0;       ///< requested function instances
  std::uint64_t memory_bytes = 0;  ///< per-worker memory
  Duration timeout = 0;            ///< lease validity
  std::uint64_t request_id = 0;    ///< retransmission dedup id (0 = legacy)
};

/// A granted lease: where to allocate the sandbox and until when the
/// capacity is held. Lease ids are shard-tagged (high 16 bits) under a
/// sharded manager.
struct LeaseGrantMsg {
  std::uint64_t lease_id = 0;   ///< shard-tagged lease identifier
  std::uint32_t device = 0;     ///< fabric device of the granted executor
  std::uint16_t alloc_port = 0; ///< its lightweight allocator's TCP port
  std::uint16_t rdma_port = 0;  ///< its fabric CM port for worker connections
  std::uint32_t workers = 0;    ///< workers granted on this executor
  Time expires_at = 0;          ///< lease deadline (renewable via ExtendLease)
  std::uint64_t request_id = 0; ///< echoes LeaseRequestMsg::request_id
};

/// Sandbox allocation on the leased executor (A2 in the cold-start path).
struct AllocationRequestMsg {
  std::uint64_t lease_id = 0;    ///< the backing lease
  std::uint32_t client_id = 0;   ///< billing tenant
  std::uint32_t workers = 0;     ///< worker threads to spawn
  std::uint64_t memory_bytes = 0;///< per-worker memory reservation
  std::uint8_t sandbox = 0;      ///< SandboxType
  std::uint8_t policy = 0;       ///< InvocationPolicy
  Duration hot_timeout = 0;      ///< Adaptive rollback timeout (0 = default)
  Time expires_at = 0;           ///< lease expiry (sandbox self-destructs)
};

/// Early return of leased capacity to the resource manager.
struct ReleaseResourcesMsg {
  std::uint64_t lease_id = 0;     ///< lease being released
  std::uint32_t workers = 0;      ///< workers coming back
  std::uint64_t memory_bytes = 0; ///< memory coming back
  std::uint64_t request_id = 0;   ///< retransmission dedup id (0 = legacy)
};

/// Acknowledges a ReleaseResourcesMsg carrying a nonzero request id, so
/// the releaser can stop retransmitting. Legacy releases (id 0) stay
/// fire-and-forget and receive no ack; a release lost on the wire is
/// then reclaimed by the manager's lease-expiry sweep instead.
struct ReleaseOkMsg {
  std::uint64_t lease_id = 0;
  std::uint64_t request_id = 0;  ///< echoes ReleaseResourcesMsg::request_id
};

/// Lease renewal: extends a live lease by `extension` from now. Granted
/// leases are time-limited; long-running clients renew instead of paying
/// a fresh placement.
struct ExtendLeaseMsg {
  std::uint64_t lease_id = 0;
  Duration extension = 0;
  std::uint64_t request_id = 0;  ///< retransmission dedup id (0 = legacy)
};

struct ExtendOkMsg {
  std::uint64_t lease_id = 0;
  Time expires_at = 0;           ///< the new deadline
  std::uint64_t request_id = 0;  ///< echoes ExtendLeaseMsg::request_id
};

/// Fulfillment contract of a batched allocation (BatchAllocateMsg::mode).
enum class BatchMode : std::uint8_t {
  BestEffort,   ///< return whatever subset of the request fits
  AllOrNothing, ///< grant everything or nothing (partials are rolled back)
};

/// Batched lease acquisition: one round trip acquires leases totalling
/// `workers` function instances, aggregated across executors — and, on a
/// sharded manager, across shards. Replaces the serial client loop of
/// one LeaseRequest per partial grant (Sec. III-D) for wide allocations.
struct BatchAllocateMsg {
  std::uint32_t client_id = 0;
  std::uint32_t workers = 0;       ///< total function instances wanted
  std::uint64_t memory_bytes = 0;  ///< per-worker memory
  Duration timeout = 0;            ///< validity of every granted lease
  std::uint8_t mode = 0;           ///< BatchMode
  std::uint64_t request_id = 0;    ///< retransmission dedup id (0 = legacy)
};

/// Reply to BatchAllocateMsg: the granted leases (possibly spanning
/// several executors and shards). `complete` is false when the request
/// was only partially satisfiable — under AllOrNothing the grant list is
/// then empty and every provisional lease has been released.
struct BatchGrantedMsg {
  bool complete = false;
  std::vector<LeaseGrantMsg> grants;
  std::string error;             ///< set when `grants` is empty
  std::uint64_t request_id = 0;  ///< echoes BatchAllocateMsg::request_id
};

/// Push notification from the resource manager to the executor manager
/// that hosts a renewed lease: the sandbox deadline moves to the new
/// expiry, so renewal stays a single client<->manager round trip.
struct LeaseRenewedMsg {
  std::uint64_t lease_id = 0;
  Time expires_at = 0;  ///< the renewed deadline
};

/// Why the resource manager refused to even process a request.
enum class DenialReason : std::uint8_t {
  Overload,      ///< ingress admission shed the request (token bucket / WFQ)
  QuotaExceeded, ///< reserved: per-tenant policy refusal at admission time
};

const char* to_string(DenialReason r);

/// Admission-control shed (ingress protection): the manager refused the
/// request *before* any shard lock, placement scan, or quota-eviction
/// work — the whole point is that saying no is nearly free under
/// overload. `retry_after` is the manager's backoff hint (how long until
/// the tenant's token bucket refills enough to admit one request);
/// well-behaved clients wait at least that long before retrying, and
/// LeaseSet heal loops treat it as a floor under their jittered
/// exponential backoff. Fixed layout, hot under overload by definition —
/// rides the zero-allocation fast path like LeaseGrant.
struct LeaseDeniedMsg {
  std::uint8_t reason = 0;       ///< DenialReason
  Duration retry_after = 0;      ///< backoff hint (0 = none)
  std::uint64_t request_id = 0;  ///< echoes the denied request's id
};

/// Why the resource manager reclaimed a lease ahead of its deadline.
enum class TerminationReason : std::uint8_t {
  QuotaPressure,  ///< evicted to make room under a tenant worker quota
  Drain,          ///< hosting executor is being drained
  Rebalance,      ///< hosting executor migrated to another shard
};

const char* to_string(TerminationReason r);

/// Fast reclamation (Sec. III-B): the manager terminates a live lease and
/// pushes this to both sides — the hosting executor tears the sandbox
/// down, the owning client (on its notification stream, see
/// SubscribeEventsMsg) untracks the lease and, with self-healing enabled,
/// transparently re-allocates. `evicted_at` is the manager's decision
/// timestamp, so receivers can report end-to-end reclamation latency.
struct LeaseTerminatedMsg {
  std::uint64_t lease_id = 0;
  std::uint8_t reason = 0;  ///< TerminationReason
  Time evicted_at = 0;      ///< when the manager made the eviction decision
  std::uint64_t seq = 0;    ///< per-stream push sequence (0 = legacy)
};

/// Coalesced fast reclamation: one eviction sweep may terminate many
/// leases owned by the same client (or hosted on the same executor).
/// Pushing them in a single message keeps reclamation storms at one
/// notification per stream per sweep instead of one per lease. Reason
/// and decision timestamp are shared — a sweep has one cause and one
/// decision point.
struct LeasesTerminatedMsg {
  std::uint8_t reason = 0;  ///< TerminationReason
  Time evicted_at = 0;      ///< when the manager made the eviction decision
  std::vector<std::uint64_t> lease_ids;
  std::uint64_t seq = 0;    ///< per-stream push sequence (0 = legacy)
};

/// Opens a notification stream: the client sends this once on a dedicated
/// connection and then only receives pushes (LeaseTerminated) for leases
/// owned by `client_id`. Keeping pushes off the request stream preserves
/// its strict request-response discipline.
struct SubscribeEventsMsg {
  std::uint32_t client_id = 0;
};

/// One entry of the manager's replicated lease-state log (rfaas/journal.hpp):
/// every lease state transition the primary applies is appended as one of
/// these fixed-layout records and streamed to warm standby replicas, which
/// replay them into an identical in-memory state. Field meaning depends on
/// the op (journal::op semantics); `checksum` chains over every field plus
/// the previous record's checksum, so a corrupted or reordered stream is
/// detected at the first bad record. Hot on every grant — rides the
/// zero-allocation fast path.
struct JournalRecordMsg {
  std::uint64_t seq = 0;       ///< monotonically increasing log position (1-based)
  std::uint8_t op = 0;         ///< journal::Op discriminator
  std::uint64_t lease_id = 0;  ///< shard-tagged lease id (lease ops)
  std::uint32_t client_id = 0; ///< owning tenant (Grant) / locality (AddExecutor)
  std::uint64_t executor = 0;  ///< shard-tagged global executor id
  std::uint32_t workers = 0;   ///< workers of the lease / executor capacity
  std::uint64_t memory = 0;    ///< lease memory / executor free memory
  Time time = 0;               ///< expires_at (lease ops) or last_ack (executor ops)
  std::uint64_t aux = 0;       ///< op-specific (flags, packed endpoint, peer id)
  std::uint64_t aux2 = 0;      ///< op-specific (packed epoch|cores)
  std::uint64_t checksum = 0;  ///< chained integrity checksum
};

/// Header of a snapshot transfer to a (re)attaching standby: the state it
/// is about to install covers the journal up to `upto_seq`, and `digest`
/// must match the installed state's digest — a torn or stale snapshot is
/// rejected before any record is replayed on top of it.
struct SnapshotOfferMsg {
  std::uint32_t manager_epoch = 0; ///< epoch of the snapshotting primary
  std::uint64_t upto_seq = 0;      ///< journal position the snapshot covers
  std::uint64_t digest = 0;        ///< ManagerState::digest() of the snapshot
  std::uint64_t lease_count = 0;   ///< live leases in the snapshot (sanity)
};

/// Pushed by a freshly promoted manager on every (re)subscribed
/// notification stream: the manager epoch moved, so clients must
/// re-validate every lease they hold (LeaseRevalidate) — grants issued by
/// the dead primary after its last journaled record, or by a fenced
/// zombie, fail re-validation and flow into the self-healing path.
struct FailoverAnnounceMsg {
  std::uint32_t manager_epoch = 0; ///< epoch of the announcing manager
  std::uint64_t applied_seq = 0;   ///< last journal record the standby replayed
  Time promoted_at = 0;            ///< when the standby took over
};

/// Client-side lease audit after a failover: "do you still honour this
/// lease?" The manager answers ExtendOk with the lease's current deadline
/// when it survived replay, or LeaseError when it is unknown — the client
/// then treats it as lost and heals. Hot during reconnect storms — rides
/// the zero-allocation fast path.
struct LeaseRevalidateMsg {
  std::uint32_t client_id = 0;   ///< owning tenant presented for the audit
  std::uint64_t lease_id = 0;    ///< lease being re-validated
  std::uint64_t request_id = 0;  ///< retransmission dedup id (0 = legacy)
};

/// Best-effort cancellation of an in-flight invocation, sent on the
/// executor manager's control stream when a hedged duplicate lost the
/// race. Fire-and-forget: the manager parks the tag in a bounded set and
/// workers drop a matching invocation before dispatch — a cancel that
/// arrives too late costs one wasted execution, never a wrong result
/// (the client already consumed the winner; the executor dedup table
/// absorbs the loser's reply). Fixed layout — rides the zero-allocation
/// fast path since it fires on the invocation hot path.
struct InvocationCancelMsg {
  std::uint32_t client_id = 0;       ///< cancelling tenant
  std::uint64_t invocation_tag = 0;  ///< (epoch << 32) | seq of the doomed invocation
  std::uint64_t request_id = 0;      ///< unused for matching (fire-and-forget); 0 ok
};

/// Client-observed executor health, pushed to the resource manager when a
/// client's per-worker circuit breaker trips (and periodically while
/// degraded). The manager folds the observation into the executor's
/// registry entry so every scheduler policy deprioritizes the gray host,
/// and drains it outright after `quarantine_trips` distinct trips.
/// Fixed layout — health reports spike exactly when the fleet is sick.
struct HealthReportMsg {
  std::uint32_t client_id = 0;    ///< reporting tenant
  std::uint32_t device = 0;       ///< fabric device of the suspect executor
  std::uint32_t latency_us = 0;   ///< EWMA invocation latency observed (µs)
  std::uint32_t ok_count = 0;     ///< successful invocations in this window
  std::uint32_t fail_count = 0;   ///< timeouts/corruptions in this window
  std::uint64_t request_id = 0;   ///< retransmission dedup id (0 = legacy)
};

/// Acknowledges a HealthReportMsg so the reporter can stop retransmitting.
struct HealthReportOkMsg {
  std::uint64_t request_id = 0;  ///< echoes HealthReportMsg::request_id
};

/// Allocation outcome from the lightweight allocator.
struct AllocationReplyMsg {
  bool ok = false;               ///< sandbox up and workers spawned
  std::uint64_t sandbox_id = 0;  ///< handle for code submission/deallocation
  std::uint16_t rdma_port = 0;   ///< port workers accept on
  std::uint64_t spawn_ns = 0;    ///< measured sandbox+worker spawn time
  std::string error;             ///< failure reason when !ok
};

/// Code-submission acknowledgement.
struct SubmitCodeOkMsg {
  std::uint16_t fn_index = 0;  ///< index in the sandbox's function table
};

/// Function-code shipping into a live sandbox (padded to the library
/// size on the wire, so the transfer cost is real).
struct SubmitCodeMsg {
  std::uint64_t sandbox_id = 0; ///< target sandbox
  std::string function_name;    ///< registry name of the function package
  std::uint64_t code_size = 0;  ///< shipped library size (bytes on the wire)
};

/// Sandbox teardown; the executor returns the lease to the manager.
struct DeallocateMsg {
  std::uint64_t sandbox_id = 0; ///< sandbox to tear down
  std::uint64_t lease_id = 0;   ///< its backing lease
};

// ---------------------------------------------------------------------------
// Zero-allocation fast path (fig16). The hot control-plane messages —
// LeaseRequest, LeaseGrant, ExtendLease, ExtendOk — have fixed-layout
// bodies, so they encode into a caller-provided buffer and decode from a
// span with a single bounds check and no heap traffic. (The data-plane
// Invoke message was always allocation-free: InvocationHeader::pack into
// the registered buffer plus the packed immediate of Imm.) The Bytes
// encode()/decode_*() entry points below remain the general API; for
// these four messages they are thin wrappers over the fast path, so the
// wire format is byte-identical and the protocol-fuzz suite covers both.
// ---------------------------------------------------------------------------

/// Fixed wire sizes (envelope type byte included) of the hot messages.
/// The trailing 8 bytes of each are the request id.
inline constexpr std::size_t kLeaseRequestWireSize = 1 + 4 + 4 + 8 + 8 + 8;
inline constexpr std::size_t kLeaseGrantWireSize = 1 + 8 + 4 + 2 + 2 + 4 + 8 + 8;
inline constexpr std::size_t kExtendLeaseWireSize = 1 + 8 + 8 + 8;
inline constexpr std::size_t kExtendOkWireSize = 1 + 8 + 8 + 8;
inline constexpr std::size_t kLeaseDeniedWireSize = 1 + 1 + 8 + 8;
inline constexpr std::size_t kJournalRecordWireSize = 1 + 8 + 1 + 8 + 4 + 8 + 4 + 8 + 8 + 8 + 8 + 8;
inline constexpr std::size_t kSnapshotOfferWireSize = 1 + 4 + 8 + 8 + 8;
inline constexpr std::size_t kFailoverAnnounceWireSize = 1 + 4 + 8 + 8;
inline constexpr std::size_t kLeaseRevalidateWireSize = 1 + 4 + 8 + 8;
inline constexpr std::size_t kInvocationCancelWireSize = 1 + 4 + 8 + 8;
inline constexpr std::size_t kHealthReportWireSize = 1 + 4 + 4 + 4 + 4 + 4 + 8;
inline constexpr std::size_t kHealthReportOkWireSize = 1 + 8;

// ---------------------------------------------------------------------------
// Invocation data-plane frames (fig18). The submit frame is the 32-byte
// InvocationHeader followed by the input payload, written directly into
// the worker's registered buffer; the response carries no body at all —
// the executor writes the output into the client's result buffer and the
// completion's immediate value plus byte count are the entire response.
// Both directions encode into registered memory and decode from spans:
// zero heap traffic, zero intermediate copies.
// ---------------------------------------------------------------------------

/// Decoded view of a received submit frame. `payload` aliases the
/// registered receive buffer — nothing is copied or allocated.
struct InvocationFrame {
  InvocationHeader header;
  std::span<const std::uint8_t> payload;
};

/// Decoded result completion: the responder's entire reply is the packed
/// immediate of the result WRITE_WITH_IMM plus the completion byte count.
/// `checksum12` is the 12-bit folded output checksum carried in the high
/// imm bits (0 = responder did not checksum).
struct InvocationResponse {
  std::uint32_t invocation_id = 0;
  bool rejected = false;
  std::uint32_t output_bytes = 0;
  std::uint32_t checksum12 = 0;
};

/// Writes the submit-frame header into a registered buffer. Returns
/// InvocationHeader::kSize, or 0 when `capacity` is too small (the
/// unchecked InvocationHeader::pack stays available for fixed buffers).
std::size_t encode_into(const InvocationHeader& h, std::uint8_t* out, std::size_t capacity);

/// Bounds-checked decode of a received submit frame; `byte_len` is the
/// byte count of the WRITE_WITH_IMM completion. Fails when the write is
/// shorter than the header or overruns the buffer.
Result<InvocationFrame> decode_invocation_frame(std::span<const std::uint8_t> buf,
                                                std::uint32_t byte_len);

/// Decodes a result completion (immediate + byte count).
InvocationResponse decode_invocation_response(const fabric::Wc& wc);

/// Encodes into `out` (caller-provided, no allocation). Returns the
/// bytes written — the message's wire size — or 0 when `capacity` is too
/// small.
std::size_t encode_into(const LeaseRequestMsg& m, std::uint8_t* out, std::size_t capacity);
std::size_t encode_into(const LeaseGrantMsg& m, std::uint8_t* out, std::size_t capacity);
std::size_t encode_into(const ExtendLeaseMsg& m, std::uint8_t* out, std::size_t capacity);
std::size_t encode_into(const ExtendOkMsg& m, std::uint8_t* out, std::size_t capacity);
std::size_t encode_into(const LeaseDeniedMsg& m, std::uint8_t* out, std::size_t capacity);
std::size_t encode_into(const JournalRecordMsg& m, std::uint8_t* out, std::size_t capacity);
std::size_t encode_into(const SnapshotOfferMsg& m, std::uint8_t* out, std::size_t capacity);
std::size_t encode_into(const FailoverAnnounceMsg& m, std::uint8_t* out, std::size_t capacity);
std::size_t encode_into(const LeaseRevalidateMsg& m, std::uint8_t* out, std::size_t capacity);
std::size_t encode_into(const InvocationCancelMsg& m, std::uint8_t* out, std::size_t capacity);
std::size_t encode_into(const HealthReportMsg& m, std::uint8_t* out, std::size_t capacity);
std::size_t encode_into(const HealthReportOkMsg& m, std::uint8_t* out, std::size_t capacity);

/// Envelope: [u8 type][payload...]. Each payload codec is explicit; this
/// is a real wire format, not in-memory object passing.
Bytes encode(MsgType type);
Bytes encode(const RegisterExecutorMsg& m);
Bytes encode(const RegisterOkMsg& m);
Bytes encode(const LeaseRequestMsg& m);
Bytes encode(const LeaseGrantMsg& m);
Bytes encode_lease_error(const std::string& reason, std::uint64_t request_id = 0);
Bytes encode(const AllocationRequestMsg& m);
Bytes encode(const AllocationReplyMsg& m);
Bytes encode(const SubmitCodeMsg& m);
Bytes encode(const SubmitCodeOkMsg& m);
Bytes encode(const DeallocateMsg& m);
Bytes encode(const ReleaseResourcesMsg& m);
Bytes encode(const ReleaseOkMsg& m);
Bytes encode(const ExtendLeaseMsg& m);
Bytes encode(const ExtendOkMsg& m);
Bytes encode(const BatchAllocateMsg& m);
Bytes encode(const BatchGrantedMsg& m);
Bytes encode(const LeaseRenewedMsg& m);
Bytes encode(const LeaseTerminatedMsg& m);
Bytes encode(const LeasesTerminatedMsg& m);
Bytes encode(const SubscribeEventsMsg& m);
Bytes encode(const LeaseDeniedMsg& m);
Bytes encode(const JournalRecordMsg& m);
Bytes encode(const SnapshotOfferMsg& m);
Bytes encode(const FailoverAnnounceMsg& m);
Bytes encode(const LeaseRevalidateMsg& m);
Bytes encode(const InvocationCancelMsg& m);
Bytes encode(const HealthReportMsg& m);
Bytes encode(const HealthReportOkMsg& m);

Result<MsgType> peek_type(const Bytes& raw);
Result<RegisterExecutorMsg> decode_register(const Bytes& raw);
Result<RegisterOkMsg> decode_register_ok(const Bytes& raw);
// Hot-path decoders take a span (no Bytes required — a stack buffer or a
// network scatter entry decodes without copying); Bytes converts
// implicitly, so existing call sites are unchanged.
Result<LeaseRequestMsg> decode_lease_request(std::span<const std::uint8_t> raw);
Result<LeaseGrantMsg> decode_lease_grant(std::span<const std::uint8_t> raw);
Result<std::string> decode_lease_error(const Bytes& raw);
Result<AllocationRequestMsg> decode_allocation_request(const Bytes& raw);
Result<AllocationReplyMsg> decode_allocation_reply(const Bytes& raw);
Result<SubmitCodeMsg> decode_submit_code(const Bytes& raw);
Result<SubmitCodeOkMsg> decode_submit_code_ok(const Bytes& raw);
Result<DeallocateMsg> decode_deallocate(const Bytes& raw);
Result<ReleaseResourcesMsg> decode_release(const Bytes& raw);
Result<ReleaseOkMsg> decode_release_ok(const Bytes& raw);
Result<ExtendLeaseMsg> decode_extend_lease(std::span<const std::uint8_t> raw);
Result<ExtendOkMsg> decode_extend_ok(std::span<const std::uint8_t> raw);
Result<BatchAllocateMsg> decode_batch_allocate(const Bytes& raw);
Result<BatchGrantedMsg> decode_batch_granted(const Bytes& raw);
Result<LeaseRenewedMsg> decode_lease_renewed(const Bytes& raw);
Result<LeaseTerminatedMsg> decode_lease_terminated(const Bytes& raw);
Result<LeasesTerminatedMsg> decode_leases_terminated(const Bytes& raw);
Result<SubscribeEventsMsg> decode_subscribe_events(const Bytes& raw);
Result<LeaseDeniedMsg> decode_lease_denied(std::span<const std::uint8_t> raw);
Result<JournalRecordMsg> decode_journal_record(std::span<const std::uint8_t> raw);
Result<SnapshotOfferMsg> decode_snapshot_offer(std::span<const std::uint8_t> raw);
Result<FailoverAnnounceMsg> decode_failover_announce(std::span<const std::uint8_t> raw);
Result<LeaseRevalidateMsg> decode_lease_revalidate(std::span<const std::uint8_t> raw);
Result<InvocationCancelMsg> decode_invocation_cancel(std::span<const std::uint8_t> raw);
Result<HealthReportMsg> decode_health_report(std::span<const std::uint8_t> raw);
Result<HealthReportOkMsg> decode_health_report_ok(std::span<const std::uint8_t> raw);

/// True for message types that answer a request (and so echo its id):
/// LeaseGrant, LeaseError, LeaseDenied, ExtendOk, BatchGranted,
/// ReleaseOk, RegisterOk, HealthReportOk.
bool is_reply_type(MsgType t);

/// Extracts the echoed request id from a reply message — the trailing 8
/// bytes of every reply body. Fails on non-reply types and truncated
/// messages; returns 0 for replies sent to legacy (id 0) requests.
Result<std::uint64_t> reply_request_id(const Bytes& raw);

}  // namespace rfs::rfaas

#include "rfaas/admission.hpp"

#include <algorithm>
#include <cmath>

namespace rfs::rfaas {

namespace {
double default_burst(double rate_hz, double configured) {
  if (configured > 0) return configured;
  // ~10 ms of line-rate burst, but never less than one whole token —
  // a burst below 1 would shed every request including the first.
  return std::max(1.0, rate_hz / 100.0);
}
}  // namespace

Admission::Admission(AdmissionConfig config) : config_(config) {
  enabled_ = config_.enabled();
  capacity_.rate_hz = config_.capacity_hz;
  capacity_.burst = default_burst(config_.capacity_hz, config_.capacity_burst);
  capacity_.tokens = capacity_.burst;
  capacity_.limited = config_.capacity_hz > 0;
  if (config_.default_weight == 0) config_.default_weight = 1;
  for (auto [tenant, weight] : config_.tenant_weights) set_weight(tenant, weight);
}

void Admission::refill(Bucket& b, Time now) {
  if (now <= b.last_refill) return;  // duplicate-timestamp calls refill once
  const double elapsed_s = static_cast<double>(now - b.last_refill) * 1e-9;
  b.tokens = std::min(b.burst, b.tokens + elapsed_s * b.rate_hz);
  b.last_refill = now;
}

Duration Admission::hint(double deficit_tokens, double rate_hz) const {
  // Time until the bucket refills `deficit_tokens`; rate 0 never does.
  if (rate_hz <= 0) return config_.retry_after_max;
  const double wait_s = deficit_tokens / rate_hz;
  const auto wait = static_cast<Duration>(wait_s * 1e9);
  return std::clamp(wait, config_.retry_after_min, config_.retry_after_max);
}

Admission::Tenant& Admission::tenant_slot(std::uint32_t tenant) {
  auto [it, inserted] = tenants_.try_emplace(tenant);
  Tenant& t = it->second;
  if (inserted) {
    t.weight = config_.default_weight;
    t.finish = vtime_;  // a newcomer starts at global time, owing nothing
    t.bucket.rate_hz = config_.tenant_rate_hz;
    t.bucket.burst = default_burst(config_.tenant_rate_hz, config_.tenant_burst);
    t.bucket.tokens = t.bucket.burst;
    t.bucket.limited = config_.tenant_rate_hz > 0;
    weight_sum_ += t.weight;
  }
  return t;
}

void Admission::set_weight(std::uint32_t tenant, std::uint32_t weight) {
  std::lock_guard lock(mu_);
  Tenant& t = tenant_slot(tenant);
  weight_sum_ -= t.weight;
  t.weight = std::max(1u, weight);
  weight_sum_ += t.weight;
}

void Admission::set_rate(std::uint32_t tenant, double rate_hz, double burst) {
  std::lock_guard lock(mu_);
  Tenant& t = tenant_slot(tenant);
  t.bucket.rate_hz = rate_hz;
  t.bucket.burst = burst;
  t.bucket.tokens = std::min(t.bucket.tokens, burst);
  t.bucket.limited = true;  // rate 0 + burst 0 = administratively blocked
}

AdmissionDecision Admission::admit(std::uint32_t tenant, Time now) {
  if (!enabled_) return {};
  std::lock_guard lock(mu_);
  Tenant& t = tenant_slot(tenant);

  // 1. Policing: the tenant's own rate cap, independent of everyone else.
  if (t.bucket.limited) {
    refill(t.bucket, now);
    if (t.bucket.tokens < 1.0) {
      ++shed_rate_;
      return {false, hint(1.0 - t.bucket.tokens, t.bucket.rate_hz)};
    }
  }

  if (capacity_.limited) {
    // 2. Aggregate capacity: no token, nothing can be admitted — shed
    //    regardless of fairness standing.
    refill(capacity_, now);
    if (capacity_.tokens < 1.0) {
      ++shed_capacity_;
      return {false, hint(1.0 - capacity_.tokens, capacity_.rate_hz)};
    }

    // Advance the fluid GPS clock: virtual time moves with real time at
    // capacity/weight_sum, the rate at which a fully backlogged system
    // serves virtual work. Driving it from the clock (not from
    // admissions) means a shed tenant's lag always drains — fairness
    // can never deadlock the admitter.
    if (now > vtime_at_) {
      vtime_ += static_cast<double>(now - vtime_at_) * 1e-9 * capacity_.rate_hz /
                std::max(1.0, weight_sum_);
      vtime_at_ = now;
    }

    // 3. Fairness — but only while the capacity is contended (bucket
    //    below full: demand has been outrunning the refill). An
    //    uncontended admitter is work-conserving: nobody competes for
    //    the token, so shedding by weight share would deny capacity
    //    that is sitting free. A tenant whose virtual finish tag has
    //    run more than wfq_credit ahead of global virtual time is
    //    consuming beyond its weight share of the contended capacity —
    //    shed it and leave the token for a tenant that is behind. In
    //    sustained overload each backlogged tenant's tag is pinned at
    //    the credit boundary, so its admission rate is exactly
    //    capacity * weight / weight_sum.
    const double start = std::max(t.finish, vtime_);
    const bool contended = capacity_.tokens < capacity_.burst;
    if (contended && start - vtime_ > config_.wfq_credit) {
      ++shed_wfq_;
      // The lag drains at dV/dt = capacity/weight_sum: excess virtual
      // units take excess * weight_sum / capacity seconds.
      const double excess = start - vtime_ - config_.wfq_credit;
      return {false, hint(excess * std::max(1.0, weight_sum_), capacity_.rate_hz)};
    }

    // Admit: consume the token and advance the tenant's tag by its
    // weighted cost (1/weight virtual units per admission). The tag is
    // clamped to the credit boundary, so capacity used while
    // uncontended never becomes debt once contention starts — the
    // tenant resumes from the boundary, paced at its weight share from
    // that instant on. (Under contention the clamp is a no-op: the
    // credit check already bounded `start`.)
    capacity_.tokens -= 1.0;
    t.finish = std::min(start + 1.0 / static_cast<double>(t.weight),
                        vtime_ + config_.wfq_credit + 1.0 / static_cast<double>(t.weight));
  }

  if (t.bucket.limited) t.bucket.tokens -= 1.0;
  ++admitted_;
  return {};
}

std::uint64_t Admission::admitted() const {
  std::lock_guard lock(mu_);
  return admitted_;
}

std::uint64_t Admission::shed_rate() const {
  std::lock_guard lock(mu_);
  return shed_rate_;
}

std::uint64_t Admission::shed_capacity() const {
  std::lock_guard lock(mu_);
  return shed_capacity_;
}

std::uint64_t Admission::shed_wfq() const {
  std::lock_guard lock(mu_);
  return shed_wfq_;
}

std::uint64_t Admission::sheds() const {
  std::lock_guard lock(mu_);
  return shed_rate_ + shed_capacity_ + shed_wfq_;
}

}  // namespace rfs::rfaas

// Spot executor: the lightweight allocator and the user-code executors.
//
// Each spot host runs one ExecutorManager ("lightweight allocator",
// Sec. III-A): it accepts allocation requests from leased clients, spawns
// isolated sandboxes with RDMA-capable executor processes, accounts for
// resource consumption, reaps idle executors, and flushes billing data to
// the resource manager with RDMA fetch-and-add.
//
// Each Worker is one function instance: a thread pinned to a core that
// serves invocations either hot (busy-polling the CQ) or warm (blocking
// on the completion channel, with a resource check and possible rejection
// under oversubscription, Fig. 6).
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "net/faulty.hpp"
#include "net/tcp.hpp"
#include "rdmalib/buffer.hpp"
#include "rdmalib/connection.hpp"
#include "rfaas/billing.hpp"
#include "rfaas/config.hpp"
#include "rfaas/functions.hpp"
#include "rfaas/protocol.hpp"
#include "rfaas/session.hpp"
#include "sim/host.hpp"
#include "sim/sync.hpp"

namespace rfs::rfaas {

class ExecutorManager;
struct Sandbox;

/// One function instance inside a sandbox.
class Worker {
 public:
  Worker(ExecutorManager& mgr, Sandbox& sandbox, std::uint32_t index);

  /// Cold-start initialization: allocate + register RDMA buffers (timed),
  /// spawn and pin the worker thread, then start the serving loop.
  sim::Task<void> init();

  /// Accepts the client's RDMA connection for this worker.
  void attach_connection(std::unique_ptr<rdmalib::Connection> conn);

  /// Requests shutdown and wakes the loop.
  void stop();

  /// Graceful shutdown: if an invocation is executing, lets it finish and
  /// deliver its result before closing the connection; otherwise behaves
  /// like stop(). Teardown paths (evict, drain, expiry, deallocate) use
  /// this so in-flight work is never cut off mid-reply.
  sim::Task<void> drain();

  /// Warm-pool revival: restarts the serving loop of a worker whose
  /// process survived in the keep-alive pool. Buffers, protection domain
  /// and registrations are reused as-is; the caller must have awaited
  /// done() so the previous loop has fully exited.
  void rearm();

  /// Final teardown: deregisters the RDMA buffers and hands them to the
  /// manager's buffer freelist for the next cold start to recycle.
  void surrender_buffers();

  /// Completion event of the serving loop (awaited during teardown).
  sim::Event& done() { return done_; }

  [[nodiscard]] bool connected() const { return conn_ != nullptr; }
  [[nodiscard]] std::uint32_t index() const { return index_; }
  [[nodiscard]] std::uint64_t served() const { return served_; }
  [[nodiscard]] std::uint64_t rejections() const { return rejected_; }
  [[nodiscard]] bool hot() const { return hot_; }
  /// True once an injected stuck-sandbox fault wedged this worker: its
  /// invocation will never complete, so teardown must not wait for it
  /// and the warm pool must never adopt its sandbox.
  [[nodiscard]] bool wedged() const { return wedged_; }

 private:
  friend class ExecutorManager;

  sim::Task<void> run();
  sim::Task<void> execute_and_reply(const fabric::Wc& wc, bool hot);
  void post_receive();
  void release_core_if_held();

  ExecutorManager& mgr_;
  Sandbox& sandbox_;
  std::uint32_t index_;
  std::unique_ptr<rdmalib::Connection> conn_;
  sim::Event connected_;
  sim::Event done_;
  sim::Event wedge_;  // never set: a stuck worker parks on it forever
  fabric::ProtectionDomain* pd_ = nullptr;
  std::unique_ptr<rdmalib::Buffer<std::uint8_t>> recv_buf_;
  std::unique_ptr<rdmalib::Buffer<std::uint8_t>> out_buf_;
  bool running_ = true;
  bool hot_ = false;
  bool holds_core_ = false;
  bool in_flight_ = false;  // an accepted invocation is executing
  bool wedged_ = false;     // injected stuck fault: never completes
  std::uint64_t served_ = 0;
  std::uint64_t rejected_ = 0;
};

/// An isolated execution context hosting one executor process with N
/// worker threads serving functions of one client allocation.
struct Sandbox {
  std::uint64_t id = 0;
  std::uint64_t lease_id = 0;
  std::uint32_t client_id = 0;
  SandboxType type = SandboxType::BareMetal;
  InvocationPolicy policy = InvocationPolicy::Adaptive;
  Duration hot_timeout = 0;
  std::uint64_t memory_bytes = 0;  // total reservation across workers
  /// Function table: the immediate value's function index selects the
  /// entry ("we enable the execution of different functions in the same
  /// worker process", Sec. IV-A).
  std::vector<const CodePackage*> codes;
  std::vector<std::unique_ptr<Worker>> workers;
  Time created_at = 0;
  Time last_invocation = 0;
  Time expires_at = 0;
  /// Allocation billing (Ca) high-water mark: the reservation is billed
  /// up to here. Advanced by every billing flush and finished at
  /// teardown, so long-lived (renewed) sandboxes are billed for their
  /// full span as it accrues.
  Time billed_until = 0;
  /// When the sandbox entered the warm keep-alive pool (0 = live).
  Time pooled_at = 0;
  bool dead = false;
};

/// Per-function histogram of observed idle times (retire → next request
/// for the same shape). The warm pool's predictive keep-alive horizon is
/// a quantile of this distribution, following the SeBS eviction model:
/// keep a sandbox exactly long enough to cover the typical idle gap.
class IdleHistory {
 public:
  static constexpr std::size_t kWindow = 64;

  void record(Duration idle) {
    samples_[next_] = idle;
    next_ = (next_ + 1) % kWindow;
    if (count_ < kWindow) ++count_;
  }

  [[nodiscard]] std::size_t count() const { return count_; }

  /// Quantile over the retained window; call only with count() > 0.
  [[nodiscard]] Duration quantile(double q) const;

 private:
  std::array<Duration, kWindow> samples_{};
  std::size_t count_ = 0;
  std::size_t next_ = 0;
};

/// Observability counters of the warm sandbox pool.
struct WarmPoolStats {
  std::uint64_t hits = 0;    // allocations served by reviving a pooled sandbox
  std::uint64_t misses = 0;  // allocations that went cold with the pool enabled
  std::uint64_t parked = 0;  // retirements that entered the pool
  std::uint64_t predictive_evictions = 0;  // idle past the keep-alive horizon
  std::uint64_t capacity_evictions = 0;    // pushed out by a newer retirement
  std::uint64_t pressure_evictions = 0;    // reclaimed to satisfy a cold allocation
};

class ExecutorManager {
 public:
  ExecutorManager(sim::Engine& engine, fabric::Fabric& fabric, net::TcpNetwork& tcp,
                  sim::Host& host, fabric::Device& device, Config config,
                  const FunctionRegistry& registry);

  /// Starts the allocator actors and registers with the resource manager.
  void start(fabric::DeviceId rm_device, std::uint16_t rm_port);

  /// Stops serving. `crash = true` simulates failure: sandboxes die and
  /// heartbeats stop without notifying anyone.
  void stop(bool crash = false);

  [[nodiscard]] sim::Host& host() { return host_; }
  [[nodiscard]] fabric::Device& device() { return device_; }
  [[nodiscard]] const Config& config() const { return config_; }
  [[nodiscard]] std::uint16_t alloc_port() const { return alloc_port_; }
  [[nodiscard]] std::uint16_t rdma_port() const { return rdma_port_; }
  [[nodiscard]] bool alive() const { return alive_; }
  [[nodiscard]] sim::Engine& engine() { return engine_; }
  [[nodiscard]] fabric::Fabric& fabric() { return fabric_; }

  /// Resource accounting hooks used by workers and sandboxes.
  void account_compute(std::uint32_t client_id, Duration d);
  void account_hot_poll(std::uint32_t client_id, Duration d);
  void account_allocation(std::uint32_t client_id, std::uint64_t mib_ms);

  [[nodiscard]] std::size_t live_sandboxes() const;
  [[nodiscard]] Sandbox* find_sandbox(std::uint64_t id);

  /// Warm-pool observability (tests, benches, fig18).
  [[nodiscard]] const WarmPoolStats& warm_pool_stats() const { return pool_stats_; }
  [[nodiscard]] std::size_t warm_pool_size() const { return warm_pool_.size(); }
  /// Host memory held by pooled (keep-alive) sandboxes — the provider-side
  /// cost of the pool, reported as "memory held" in fig18.
  [[nodiscard]] std::uint64_t warm_pool_memory_bytes() const;
  /// Keep-alive horizon the predictive policy currently assigns to this
  /// sandbox's function (quantile of the idle histogram, clamped).
  [[nodiscard]] Duration keepalive_horizon(const Sandbox& sb) const;
  /// Invocations that were executing when their sandbox was torn down and
  /// were allowed to finish (graceful drain), instead of being cut off.
  [[nodiscard]] std::uint64_t drained_in_flight() const { return drained_in_flight_; }

  /// Wires the seeded executor-fault injector (chaos harness). nullptr
  /// (the default) means no injected worker faults.
  void set_worker_faults(net::WorkerFaultInjector* faults) { worker_faults_ = faults; }
  /// Invocations replayed from the dedup table instead of re-executing
  /// (retries/hedges of an already-executed tag).
  [[nodiscard]] std::uint64_t dedup_replays() const { return dedup_replays_; }
  /// Invocations dropped because their client-side deadline had already
  /// passed (or could not be met) at dispatch.
  [[nodiscard]] std::uint64_t deadline_drops() const { return deadline_drops_; }
  /// Invocations suppressed by a hedge-loser cancel that arrived first.
  [[nodiscard]] std::uint64_t cancelled_drops() const { return cancelled_drops_; }

 private:
  friend class Worker;

  sim::Task<void> run_alloc_server();
  sim::Task<void> handle_stream(std::shared_ptr<net::TcpStream> stream);
  sim::Task<void> run_rdma_accept();
  sim::Task<void> register_with_rm(fabric::DeviceId rm_device, std::uint16_t rm_port);
  /// One registration session: connect, register under a fresh epoch,
  /// then pump manager pushes until the session dies. True when the
  /// registration itself completed (the push pump may still end later —
  /// e.g. the manager crashed — which is what the reconnect loop in
  /// register_with_rm retries on).
  sim::Task<bool> register_session(fabric::DeviceId rm_device, std::uint16_t rm_port);
  sim::Task<void> billing_flush_loop();
  sim::Task<void> flush_billing();
  /// Accrues the allocation component (Ca) of every live sandbox up to
  /// now, in whole milliseconds (the sub-ms remainder carries over).
  void accrue_allocation();
  sim::Task<void> reaper_loop();
  sim::Task<void> sandbox_expiry(std::uint64_t sandbox_id, Time expires_at);

  sim::Task<AllocationReplyMsg> allocate_sandbox(const AllocationRequestMsg& req);
  sim::Task<void> teardown_sandbox(Sandbox& sb, bool notify_rm);

  /// Warm sandbox pool (keep-alive; see Config::warm_pool_capacity).
  [[nodiscard]] bool poolable(const Sandbox& sb) const;
  std::unique_ptr<Sandbox> take_from_pool(const AllocationRequestMsg& req,
                                          std::uint64_t total_memory);
  /// Irreversible teardown of a retired/pooled sandbox: releases the host
  /// memory, recycles the worker buffers and parks the object.
  void destroy_sandbox_final(std::unique_ptr<Sandbox> sb);
  sim::Task<void> warm_pool_sweeper();
  /// Tears down every live sandbox of a lease the manager reclaimed.
  void reclaim_lease(std::uint64_t lease_id);

  /// Registered-buffer freelist: retired worker buffers (deregistered) are
  /// kept for the next cold start to reuse, so steady-state churn does not
  /// re-allocate + re-fault 8 MiB regions per worker.
  std::unique_ptr<rdmalib::Buffer<std::uint8_t>> take_pooled_buffer(std::uint64_t bytes);
  void recycle_buffer(std::unique_ptr<rdmalib::Buffer<std::uint8_t>> buf);

  /// Idempotency dedup table (bounded window): a tag that already
  /// executed on this manager replays its stored reply instead of
  /// running user code again. Entry absent = never executed here.
  struct DedupEntry {
    std::uint32_t checksum12 = 0;           ///< reply imm checksum (0 = unchecked)
    std::vector<std::uint8_t> output;       ///< completed result bytes
  };
  [[nodiscard]] const DedupEntry* dedup_find(std::uint64_t tag) const;
  void dedup_record(std::uint64_t tag, std::uint32_t checksum12,
                    const std::uint8_t* out, std::uint32_t len);
  /// Hedge-loser cancellation: parks `tag` so a not-yet-dispatched
  /// invocation carrying it is dropped instead of executed.
  void note_cancel(std::uint64_t tag);
  /// True (and consumes the parked cancel) when `tag` was cancelled.
  bool consume_cancel(std::uint64_t tag);

  sim::Engine& engine_;
  fabric::Fabric& fabric_;
  net::TcpNetwork& tcp_;
  sim::Host& host_;
  fabric::Device& device_;
  Config config_;
  const FunctionRegistry& registry_;
  fabric::ProtectionDomain* pd_ = nullptr;

  std::uint16_t alloc_port_ = 7000;
  std::uint16_t rdma_port_ = 7001;
  bool alive_ = false;
  std::uint32_t allocated_workers_ = 0;

  std::map<std::uint64_t, std::unique_ptr<Sandbox>> sandboxes_;
  // Torn-down sandboxes are parked here (not freed) until the simulation
  // ends: their worker coroutines may still be draining error completions
  // and must find the objects alive.
  std::vector<std::unique_ptr<Sandbox>> graveyard_;
  std::uint64_t next_sandbox_id_ = 1;

  /// Keep-alive pool, oldest first (front is the first capacity victim).
  std::deque<std::unique_ptr<Sandbox>> warm_pool_;
  std::map<std::string, IdleHistory> idle_history_;
  WarmPoolStats pool_stats_;
  std::uint64_t drained_in_flight_ = 0;

  static constexpr std::size_t kBufferPoolCap = 64;
  std::map<std::uint64_t, std::vector<std::unique_ptr<rdmalib::Buffer<std::uint8_t>>>>
      buffer_pool_;
  std::size_t buffer_pool_count_ = 0;

  struct PendingUsage {
    std::uint64_t allocation_mib_ms = 0;
    std::uint64_t compute_ns = 0;
    std::uint64_t hot_poll_ns = 0;
  };
  std::map<std::uint32_t, PendingUsage> pending_usage_;
  std::unique_ptr<rdmalib::Connection> rm_conn_;
  std::uint64_t billing_addr_ = 0;
  std::uint32_t billing_rkey_ = 0;
  std::unique_ptr<rdmalib::Buffer<std::uint64_t>> billing_scratch_;
  // Serializes flush_billing bodies: the batched completion sweep
  // (wait_send_polling_many) must not drain CQEs a concurrent flush
  // posted, so concurrent flushes take turns on the shared billing QP.
  sim::Mutex billing_flush_gate_;
  std::shared_ptr<net::TcpStream> rm_stream_;
  /// Hardened session over rm_stream_: registration and teardown releases
  /// retransmit under loss, and duplicated eviction pushes are filtered
  /// before they can reclaim a sandbox twice.
  std::shared_ptr<Session> rm_session_;
  /// Bumped per registration attempt; the manager fences RegisterExecutor
  /// retransmissions from superseded sessions by this epoch.
  std::uint64_t registration_epoch_ = 0;

  /// Data-plane fault tolerance (PR 10). The injector is harness-owned;
  /// dedup/cancel windows are bounded FIFOs so a long-lived manager's
  /// memory stays flat.
  net::WorkerFaultInjector* worker_faults_ = nullptr;
  static constexpr std::size_t kDedupWindow = 128;
  std::unordered_map<std::uint64_t, DedupEntry> dedup_;
  std::deque<std::uint64_t> dedup_fifo_;
  static constexpr std::size_t kCancelWindow = 256;
  std::unordered_set<std::uint64_t> cancelled_tags_;
  std::deque<std::uint64_t> cancel_fifo_;
  std::uint64_t dedup_replays_ = 0;
  std::uint64_t deadline_drops_ = 0;
  std::uint64_t cancelled_drops_ = 0;
};

}  // namespace rfs::rfaas

// Spot executor: the lightweight allocator and the user-code executors.
//
// Each spot host runs one ExecutorManager ("lightweight allocator",
// Sec. III-A): it accepts allocation requests from leased clients, spawns
// isolated sandboxes with RDMA-capable executor processes, accounts for
// resource consumption, reaps idle executors, and flushes billing data to
// the resource manager with RDMA fetch-and-add.
//
// Each Worker is one function instance: a thread pinned to a core that
// serves invocations either hot (busy-polling the CQ) or warm (blocking
// on the completion channel, with a resource check and possible rejection
// under oversubscription, Fig. 6).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "net/tcp.hpp"
#include "rdmalib/buffer.hpp"
#include "rdmalib/connection.hpp"
#include "rfaas/billing.hpp"
#include "rfaas/config.hpp"
#include "rfaas/functions.hpp"
#include "rfaas/protocol.hpp"
#include "sim/host.hpp"

namespace rfs::rfaas {

class ExecutorManager;
struct Sandbox;

/// One function instance inside a sandbox.
class Worker {
 public:
  Worker(ExecutorManager& mgr, Sandbox& sandbox, std::uint32_t index);

  /// Cold-start initialization: allocate + register RDMA buffers (timed),
  /// spawn and pin the worker thread, then start the serving loop.
  sim::Task<void> init();

  /// Accepts the client's RDMA connection for this worker.
  void attach_connection(std::unique_ptr<rdmalib::Connection> conn);

  /// Requests shutdown and wakes the loop.
  void stop();

  /// Completion event of the serving loop (awaited during teardown).
  sim::Event& done() { return done_; }

  [[nodiscard]] bool connected() const { return conn_ != nullptr; }
  [[nodiscard]] std::uint32_t index() const { return index_; }
  [[nodiscard]] std::uint64_t served() const { return served_; }
  [[nodiscard]] std::uint64_t rejections() const { return rejected_; }
  [[nodiscard]] bool hot() const { return hot_; }

 private:
  friend class ExecutorManager;

  sim::Task<void> run();
  sim::Task<void> execute_and_reply(const fabric::Wc& wc, bool hot);
  void post_receive();
  void release_core_if_held();

  ExecutorManager& mgr_;
  Sandbox& sandbox_;
  std::uint32_t index_;
  std::unique_ptr<rdmalib::Connection> conn_;
  sim::Event connected_;
  sim::Event done_;
  fabric::ProtectionDomain* pd_ = nullptr;
  std::unique_ptr<rdmalib::Buffer<std::uint8_t>> recv_buf_;
  std::unique_ptr<rdmalib::Buffer<std::uint8_t>> out_buf_;
  bool running_ = true;
  bool hot_ = false;
  bool holds_core_ = false;
  std::uint64_t served_ = 0;
  std::uint64_t rejected_ = 0;
};

/// An isolated execution context hosting one executor process with N
/// worker threads serving functions of one client allocation.
struct Sandbox {
  std::uint64_t id = 0;
  std::uint64_t lease_id = 0;
  std::uint32_t client_id = 0;
  SandboxType type = SandboxType::BareMetal;
  InvocationPolicy policy = InvocationPolicy::Adaptive;
  Duration hot_timeout = 0;
  std::uint64_t memory_bytes = 0;  // total reservation across workers
  /// Function table: the immediate value's function index selects the
  /// entry ("we enable the execution of different functions in the same
  /// worker process", Sec. IV-A).
  std::vector<const CodePackage*> codes;
  std::vector<std::unique_ptr<Worker>> workers;
  Time created_at = 0;
  Time last_invocation = 0;
  Time expires_at = 0;
  /// Allocation billing (Ca) high-water mark: the reservation is billed
  /// up to here. Advanced by every billing flush and finished at
  /// teardown, so long-lived (renewed) sandboxes are billed for their
  /// full span as it accrues.
  Time billed_until = 0;
  bool dead = false;
};

class ExecutorManager {
 public:
  ExecutorManager(sim::Engine& engine, fabric::Fabric& fabric, net::TcpNetwork& tcp,
                  sim::Host& host, fabric::Device& device, Config config,
                  const FunctionRegistry& registry);

  /// Starts the allocator actors and registers with the resource manager.
  void start(fabric::DeviceId rm_device, std::uint16_t rm_port);

  /// Stops serving. `crash = true` simulates failure: sandboxes die and
  /// heartbeats stop without notifying anyone.
  void stop(bool crash = false);

  [[nodiscard]] sim::Host& host() { return host_; }
  [[nodiscard]] fabric::Device& device() { return device_; }
  [[nodiscard]] const Config& config() const { return config_; }
  [[nodiscard]] std::uint16_t alloc_port() const { return alloc_port_; }
  [[nodiscard]] std::uint16_t rdma_port() const { return rdma_port_; }
  [[nodiscard]] bool alive() const { return alive_; }
  [[nodiscard]] sim::Engine& engine() { return engine_; }
  [[nodiscard]] fabric::Fabric& fabric() { return fabric_; }

  /// Resource accounting hooks used by workers and sandboxes.
  void account_compute(std::uint32_t client_id, Duration d);
  void account_hot_poll(std::uint32_t client_id, Duration d);
  void account_allocation(std::uint32_t client_id, std::uint64_t mib_ms);

  [[nodiscard]] std::size_t live_sandboxes() const;
  [[nodiscard]] Sandbox* find_sandbox(std::uint64_t id);

 private:
  friend class Worker;

  sim::Task<void> run_alloc_server();
  sim::Task<void> handle_stream(std::shared_ptr<net::TcpStream> stream);
  sim::Task<void> run_rdma_accept();
  sim::Task<void> register_with_rm(fabric::DeviceId rm_device, std::uint16_t rm_port);
  sim::Task<void> billing_flush_loop();
  sim::Task<void> flush_billing();
  /// Accrues the allocation component (Ca) of every live sandbox up to
  /// now, in whole milliseconds (the sub-ms remainder carries over).
  void accrue_allocation();
  sim::Task<void> reaper_loop();
  sim::Task<void> sandbox_expiry(std::uint64_t sandbox_id, Time expires_at);

  sim::Task<AllocationReplyMsg> allocate_sandbox(const AllocationRequestMsg& req);
  sim::Task<void> teardown_sandbox(Sandbox& sb, bool notify_rm);

  sim::Engine& engine_;
  fabric::Fabric& fabric_;
  net::TcpNetwork& tcp_;
  sim::Host& host_;
  fabric::Device& device_;
  Config config_;
  const FunctionRegistry& registry_;
  fabric::ProtectionDomain* pd_ = nullptr;

  std::uint16_t alloc_port_ = 7000;
  std::uint16_t rdma_port_ = 7001;
  bool alive_ = false;
  std::uint32_t allocated_workers_ = 0;

  std::map<std::uint64_t, std::unique_ptr<Sandbox>> sandboxes_;
  // Torn-down sandboxes are parked here (not freed) until the simulation
  // ends: their worker coroutines may still be draining error completions
  // and must find the objects alive.
  std::vector<std::unique_ptr<Sandbox>> graveyard_;
  std::uint64_t next_sandbox_id_ = 1;

  struct PendingUsage {
    std::uint64_t allocation_mib_ms = 0;
    std::uint64_t compute_ns = 0;
    std::uint64_t hot_poll_ns = 0;
  };
  std::map<std::uint32_t, PendingUsage> pending_usage_;
  std::unique_ptr<rdmalib::Connection> rm_conn_;
  std::uint64_t billing_addr_ = 0;
  std::uint32_t billing_rkey_ = 0;
  std::unique_ptr<rdmalib::Buffer<std::uint64_t>> billing_scratch_;
  std::shared_ptr<net::TcpStream> rm_stream_;
};

}  // namespace rfs::rfaas

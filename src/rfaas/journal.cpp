#include "rfaas/journal.hpp"

namespace rfs::rfaas {

namespace journal {

const char* to_string(Op op) {
  switch (op) {
    case Op::AddExecutor: return "add-executor";
    case Op::Grant: return "grant";
    case Op::Renew: return "renew";
    case Op::Release: return "release";
    case Op::Expire: return "expire";
    case Op::Evict: return "evict";
    case Op::SetDraining: return "set-draining";
    case Op::MarkDead: return "mark-dead";
    case Op::Migrate: return "migrate";
    case Op::Reattach: return "reattach";
  }
  return "unknown";
}

std::uint64_t chain_checksum(const JournalRecordMsg& r, std::uint64_t prev) {
  std::uint64_t h = prev;
  h = mix(h, r.seq);
  h = mix(h, r.op);
  h = mix(h, r.lease_id);
  h = mix(h, r.client_id);
  h = mix(h, r.executor);
  h = mix(h, r.workers);
  h = mix(h, r.memory);
  h = mix(h, static_cast<std::uint64_t>(r.time));
  h = mix(h, r.aux);
  h = mix(h, r.aux2);
  return h;
}

}  // namespace journal

JournalRecordMsg Journal::append(JournalRecordMsg r) {
  std::lock_guard<std::mutex> lock(mu_);
  r.seq = next_seq_++;
  r.checksum = journal::chain_checksum(r, last_checksum_);
  last_checksum_ = r.checksum;
  records_.push_back(r);
  for (const auto& sink : sinks_) sink(r);
  return r;
}

void Journal::add_sink(Sink sink) {
  std::lock_guard<std::mutex> lock(mu_);
  sinks_.push_back(std::move(sink));
}

std::uint64_t Journal::last_seq() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_seq_ - 1;
}

std::uint64_t Journal::last_checksum() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_checksum_;
}

std::size_t Journal::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_.size();
}

std::uint64_t Journal::base_seq() const {
  std::lock_guard<std::mutex> lock(mu_);
  return base_seq_;
}

std::vector<JournalRecordMsg> Journal::records(std::uint64_t from_seq) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<JournalRecordMsg> out;
  for (const auto& r : records_) {
    if (r.seq >= from_seq) out.push_back(r);
  }
  return out;
}

void Journal::truncate_before(std::uint64_t upto_seq) {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t drop = 0;
  while (drop < records_.size() && records_[drop].seq < upto_seq) {
    base_checksum_ = records_[drop].checksum;
    ++drop;
  }
  if (drop == 0) return;
  records_.erase(records_.begin(), records_.begin() + static_cast<std::ptrdiff_t>(drop));
  base_seq_ = records_.empty() ? next_seq_ : records_.front().seq;
}

Bytes Journal::serialize(std::uint64_t from_seq) const {
  std::lock_guard<std::mutex> lock(mu_);
  ByteWriter w;
  std::uint64_t seed = base_checksum_;
  std::uint64_t count = 0;
  std::uint64_t first = 0;
  std::uint64_t trailer = base_checksum_;
  for (const auto& r : records_) {
    if (r.seq < from_seq) {
      seed = r.checksum;
      continue;
    }
    if (count == 0) first = r.seq;
    ++count;
    trailer = r.checksum;
  }
  w.u64(first);
  w.u64(seed);
  w.u64(count);
  for (const auto& r : records_) {
    if (r.seq < from_seq) continue;
    std::uint8_t buf[kJournalRecordWireSize];
    encode_into(r, buf, sizeof buf);
    w.raw(buf, sizeof buf);
  }
  w.u64(trailer);
  return w.take();
}

Result<std::vector<JournalRecordMsg>> Journal::deserialize(std::span<const std::uint8_t> raw) {
  ByteReader header(raw);
  auto first = header.u64();
  auto seed = header.u64();
  auto count = header.u64();
  if (!first || !seed || !count) return Error::make(30, "journal: truncated header");
  // Bound by the actual payload, never by the wire count: a corrupted
  // count must not drive allocation or reads past the buffer.
  const std::size_t body = raw.size() - 24;
  if (body < 8 || (body - 8) / kJournalRecordWireSize < count.value()) {
    return Error::make(31, "journal: truncated log tail");
  }
  std::vector<JournalRecordMsg> out;
  out.reserve(static_cast<std::size_t>(count.value()));
  std::size_t off = 24;
  std::uint64_t prev = seed.value();
  for (std::uint64_t i = 0; i < count.value(); ++i) {
    auto record = decode_journal_record(raw.subspan(off, kJournalRecordWireSize));
    if (!record) return record.error();
    off += kJournalRecordWireSize;
    const JournalRecordMsg& r = record.value();
    if (r.seq != first.value() + i) return Error::make(32, "journal: seq gap in log");
    if (r.checksum != journal::chain_checksum(r, prev)) {
      return Error::make(33, "journal: checksum chain mismatch");
    }
    prev = r.checksum;
    out.push_back(r);
  }
  std::uint64_t trailer = 0;
  std::memcpy(&trailer, raw.data() + off, 8);
  off += 8;
  if (trailer != prev) return Error::make(34, "journal: trailer checksum mismatch");
  if (off != raw.size()) return Error::make(35, "journal: trailing bytes after log");
  return out;
}

}  // namespace rfs::rfaas

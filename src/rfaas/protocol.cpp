#include "rfaas/protocol.hpp"

#include <cstring>

namespace rfs::rfaas {

void InvocationHeader::pack(std::uint8_t* out) const {
  std::memcpy(out, &result_addr, 8);
  std::memcpy(out + 8, &result_rkey, 4);
  std::memcpy(out + 12, &invocation_tag, 8);
  std::memcpy(out + 20, &deadline, 8);
  std::memcpy(out + 28, &checksum, 4);
}

InvocationHeader InvocationHeader::unpack(const std::uint8_t* in) {
  InvocationHeader h;
  std::memcpy(&h.result_addr, in, 8);
  std::memcpy(&h.result_rkey, in + 8, 4);
  std::memcpy(&h.invocation_tag, in + 12, 8);
  std::memcpy(&h.deadline, in + 20, 8);
  std::memcpy(&h.checksum, in + 28, 4);
  return h;
}

std::size_t encode_into(const InvocationHeader& h, std::uint8_t* out, std::size_t capacity) {
  if (capacity < InvocationHeader::kSize) return 0;
  h.pack(out);
  return InvocationHeader::kSize;
}

Result<InvocationFrame> decode_invocation_frame(std::span<const std::uint8_t> buf,
                                                std::uint32_t byte_len) {
  if (byte_len < InvocationHeader::kSize || byte_len > buf.size()) {
    return Error::make(23, "protocol: malformed invocation frame");
  }
  InvocationFrame f;
  f.header = InvocationHeader::unpack(buf.data());
  f.payload = buf.subspan(InvocationHeader::kSize, byte_len - InvocationHeader::kSize);
  return f;
}

InvocationResponse decode_invocation_response(const fabric::Wc& wc) {
  InvocationResponse r;
  r.invocation_id = Imm::result_id(wc.imm);
  r.rejected = Imm::rejected(wc.imm);
  r.output_bytes = wc.byte_len;
  r.checksum12 = Imm::result_checksum(wc.imm);
  return r;
}

namespace {
ByteWriter header(MsgType type) {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(type));
  return w;
}

Result<ByteReader> open(const Bytes& raw, MsgType expected) {
  ByteReader r(raw);
  auto t = r.u8();
  if (!t) return t.error();
  if (t.value() != static_cast<std::uint8_t>(expected)) {
    return Error::make(20, "protocol: unexpected message type");
  }
  return r;
}

// Fixed-layout fast path: sequential memcpy at compile-time offsets, one
// bounds check per message, no intermediate writer/reader state. The
// byte stream is identical to what ByteWriter produced for these
// messages, so old and new encodings interoperate.
inline std::uint8_t* put(std::uint8_t* p, const void* v, std::size_t n) {
  std::memcpy(p, v, n);
  return p + n;
}

template <typename T>
inline const std::uint8_t* take(const std::uint8_t* p, T& v) {
  std::memcpy(&v, p, sizeof(T));
  return p + sizeof(T);
}

/// One shared bounds-and-type check for the fixed-size decoders.
inline bool open_fixed(std::span<const std::uint8_t> raw, MsgType expected,
                       std::size_t wire_size) {
  return raw.size() >= wire_size && raw[0] == static_cast<std::uint8_t>(expected);
}
}  // namespace

Bytes encode(MsgType type) { return header(type).take(); }

Bytes encode(const RegisterExecutorMsg& m) {
  auto w = header(MsgType::RegisterExecutor);
  w.u32(m.device);
  w.u16(m.alloc_port);
  w.u16(m.rdma_port);
  w.u32(m.cores);
  w.u64(m.memory_bytes);
  w.u64(m.epoch);
  w.u64(m.request_id);
  return w.take();
}

Bytes encode(const RegisterOkMsg& m) {
  auto w = header(MsgType::RegisterOk);
  w.u16(m.rm_rdma_port);
  w.u64(m.billing_addr);
  w.u32(m.billing_rkey);
  w.u64(m.request_id);
  return w.take();
}

std::size_t encode_into(const LeaseRequestMsg& m, std::uint8_t* out, std::size_t capacity) {
  if (capacity < kLeaseRequestWireSize) return 0;
  *out = static_cast<std::uint8_t>(MsgType::LeaseRequest);
  std::uint8_t* p = out + 1;
  p = put(p, &m.client_id, 4);
  p = put(p, &m.workers, 4);
  p = put(p, &m.memory_bytes, 8);
  p = put(p, &m.timeout, 8);
  p = put(p, &m.request_id, 8);
  return static_cast<std::size_t>(p - out);
}

std::size_t encode_into(const LeaseGrantMsg& m, std::uint8_t* out, std::size_t capacity) {
  if (capacity < kLeaseGrantWireSize) return 0;
  *out = static_cast<std::uint8_t>(MsgType::LeaseGrant);
  std::uint8_t* p = out + 1;
  p = put(p, &m.lease_id, 8);
  p = put(p, &m.device, 4);
  p = put(p, &m.alloc_port, 2);
  p = put(p, &m.rdma_port, 2);
  p = put(p, &m.workers, 4);
  p = put(p, &m.expires_at, 8);
  p = put(p, &m.request_id, 8);
  return static_cast<std::size_t>(p - out);
}

std::size_t encode_into(const ExtendLeaseMsg& m, std::uint8_t* out, std::size_t capacity) {
  if (capacity < kExtendLeaseWireSize) return 0;
  *out = static_cast<std::uint8_t>(MsgType::ExtendLease);
  std::uint8_t* p = out + 1;
  p = put(p, &m.lease_id, 8);
  p = put(p, &m.extension, 8);
  p = put(p, &m.request_id, 8);
  return static_cast<std::size_t>(p - out);
}

std::size_t encode_into(const ExtendOkMsg& m, std::uint8_t* out, std::size_t capacity) {
  if (capacity < kExtendOkWireSize) return 0;
  *out = static_cast<std::uint8_t>(MsgType::ExtendOk);
  std::uint8_t* p = out + 1;
  p = put(p, &m.lease_id, 8);
  p = put(p, &m.expires_at, 8);
  p = put(p, &m.request_id, 8);
  return static_cast<std::size_t>(p - out);
}

std::size_t encode_into(const LeaseDeniedMsg& m, std::uint8_t* out, std::size_t capacity) {
  if (capacity < kLeaseDeniedWireSize) return 0;
  *out = static_cast<std::uint8_t>(MsgType::LeaseDenied);
  std::uint8_t* p = out + 1;
  p = put(p, &m.reason, 1);
  p = put(p, &m.retry_after, 8);
  p = put(p, &m.request_id, 8);
  return static_cast<std::size_t>(p - out);
}

Bytes encode(const LeaseRequestMsg& m) {
  Bytes b(kLeaseRequestWireSize);
  encode_into(m, b.data(), b.size());
  return b;
}

namespace {
void write_grant_body(ByteWriter& w, const LeaseGrantMsg& m) {
  w.u64(m.lease_id);
  w.u32(m.device);
  w.u16(m.alloc_port);
  w.u16(m.rdma_port);
  w.u32(m.workers);
  w.u64(m.expires_at);
}

Result<LeaseGrantMsg> read_grant_body(ByteReader& rd) {
  LeaseGrantMsg m;
  auto lease = rd.u64();
  auto device = rd.u32();
  auto alloc_port = rd.u16();
  auto rdma_port = rd.u16();
  auto workers = rd.u32();
  auto expires = rd.u64();
  if (!lease || !device || !alloc_port || !rdma_port || !workers || !expires) {
    return Error::make(22, "protocol: truncated lease grant body");
  }
  m.lease_id = lease.value();
  m.device = device.value();
  m.alloc_port = alloc_port.value();
  m.rdma_port = rdma_port.value();
  m.workers = workers.value();
  m.expires_at = expires.value();
  return m;
}
}  // namespace

Bytes encode(const LeaseGrantMsg& m) {
  Bytes b(kLeaseGrantWireSize);
  encode_into(m, b.data(), b.size());
  return b;
}

Bytes encode_lease_error(const std::string& reason, std::uint64_t request_id) {
  auto w = header(MsgType::LeaseError);
  w.str(reason);
  w.u64(request_id);
  return w.take();
}

Bytes encode(const AllocationRequestMsg& m) {
  auto w = header(MsgType::AllocationRequest);
  w.u64(m.lease_id);
  w.u32(m.client_id);
  w.u32(m.workers);
  w.u64(m.memory_bytes);
  w.u8(m.sandbox);
  w.u8(m.policy);
  w.u64(m.hot_timeout);
  w.u64(m.expires_at);
  return w.take();
}

Bytes encode(const ReleaseResourcesMsg& m) {
  auto w = header(MsgType::ReleaseResources);
  w.u64(m.lease_id);
  w.u32(m.workers);
  w.u64(m.memory_bytes);
  w.u64(m.request_id);
  return w.take();
}

Bytes encode(const ReleaseOkMsg& m) {
  auto w = header(MsgType::ReleaseOk);
  w.u64(m.lease_id);
  w.u64(m.request_id);
  return w.take();
}

Bytes encode(const AllocationReplyMsg& m) {
  auto w = header(MsgType::AllocationReply);
  w.u8(m.ok ? 1 : 0);
  w.u64(m.sandbox_id);
  w.u16(m.rdma_port);
  w.u64(m.spawn_ns);
  w.str(m.error);
  return w.take();
}

Bytes encode(const SubmitCodeOkMsg& m) {
  auto w = header(MsgType::SubmitCodeOk);
  w.u16(m.fn_index);
  return w.take();
}

Bytes encode(const SubmitCodeMsg& m) {
  auto w = header(MsgType::SubmitCode);
  w.u64(m.sandbox_id);
  w.str(m.function_name);
  w.u64(m.code_size);
  // The code bytes themselves are represented by size on the wire; the
  // transfer cost is paid by the transport, the content by the registry.
  return w.take();
}

Bytes encode(const DeallocateMsg& m) {
  auto w = header(MsgType::Deallocate);
  w.u64(m.sandbox_id);
  w.u64(m.lease_id);
  return w.take();
}

Bytes encode(const ExtendLeaseMsg& m) {
  Bytes b(kExtendLeaseWireSize);
  encode_into(m, b.data(), b.size());
  return b;
}

Bytes encode(const ExtendOkMsg& m) {
  Bytes b(kExtendOkWireSize);
  encode_into(m, b.data(), b.size());
  return b;
}

Bytes encode(const BatchAllocateMsg& m) {
  auto w = header(MsgType::BatchAllocate);
  w.u32(m.client_id);
  w.u32(m.workers);
  w.u64(m.memory_bytes);
  w.u64(m.timeout);
  w.u8(m.mode);
  w.u64(m.request_id);
  return w.take();
}

Bytes encode(const BatchGrantedMsg& m) {
  auto w = header(MsgType::BatchGranted);
  w.u8(m.complete ? 1 : 0);
  w.u32(static_cast<std::uint32_t>(m.grants.size()));
  for (const auto& g : m.grants) write_grant_body(w, g);
  w.str(m.error);
  w.u64(m.request_id);
  return w.take();
}

Bytes encode(const LeaseRenewedMsg& m) {
  auto w = header(MsgType::LeaseRenewed);
  w.u64(m.lease_id);
  w.u64(m.expires_at);
  return w.take();
}

Bytes encode(const LeaseTerminatedMsg& m) {
  auto w = header(MsgType::LeaseTerminated);
  w.u64(m.lease_id);
  w.u8(m.reason);
  w.u64(m.evicted_at);
  w.u64(m.seq);
  return w.take();
}

Bytes encode(const LeasesTerminatedMsg& m) {
  auto w = header(MsgType::LeasesTerminated);
  w.u8(m.reason);
  w.u64(m.evicted_at);
  w.u32(static_cast<std::uint32_t>(m.lease_ids.size()));
  for (std::uint64_t id : m.lease_ids) w.u64(id);
  w.u64(m.seq);
  return w.take();
}

Bytes encode(const SubscribeEventsMsg& m) {
  auto w = header(MsgType::SubscribeEvents);
  w.u32(m.client_id);
  return w.take();
}

Bytes encode(const LeaseDeniedMsg& m) {
  Bytes b(kLeaseDeniedWireSize);
  encode_into(m, b.data(), b.size());
  return b;
}

std::size_t encode_into(const JournalRecordMsg& m, std::uint8_t* out, std::size_t capacity) {
  if (capacity < kJournalRecordWireSize) return 0;
  *out = static_cast<std::uint8_t>(MsgType::JournalRecord);
  std::uint8_t* p = out + 1;
  p = put(p, &m.seq, 8);
  p = put(p, &m.op, 1);
  p = put(p, &m.lease_id, 8);
  p = put(p, &m.client_id, 4);
  p = put(p, &m.executor, 8);
  p = put(p, &m.workers, 4);
  p = put(p, &m.memory, 8);
  p = put(p, &m.time, 8);
  p = put(p, &m.aux, 8);
  p = put(p, &m.aux2, 8);
  p = put(p, &m.checksum, 8);
  return static_cast<std::size_t>(p - out);
}

std::size_t encode_into(const SnapshotOfferMsg& m, std::uint8_t* out, std::size_t capacity) {
  if (capacity < kSnapshotOfferWireSize) return 0;
  *out = static_cast<std::uint8_t>(MsgType::SnapshotOffer);
  std::uint8_t* p = out + 1;
  p = put(p, &m.manager_epoch, 4);
  p = put(p, &m.upto_seq, 8);
  p = put(p, &m.digest, 8);
  p = put(p, &m.lease_count, 8);
  return static_cast<std::size_t>(p - out);
}

std::size_t encode_into(const FailoverAnnounceMsg& m, std::uint8_t* out, std::size_t capacity) {
  if (capacity < kFailoverAnnounceWireSize) return 0;
  *out = static_cast<std::uint8_t>(MsgType::FailoverAnnounce);
  std::uint8_t* p = out + 1;
  p = put(p, &m.manager_epoch, 4);
  p = put(p, &m.applied_seq, 8);
  p = put(p, &m.promoted_at, 8);
  return static_cast<std::size_t>(p - out);
}

std::size_t encode_into(const LeaseRevalidateMsg& m, std::uint8_t* out, std::size_t capacity) {
  if (capacity < kLeaseRevalidateWireSize) return 0;
  *out = static_cast<std::uint8_t>(MsgType::LeaseRevalidate);
  std::uint8_t* p = out + 1;
  p = put(p, &m.client_id, 4);
  p = put(p, &m.lease_id, 8);
  p = put(p, &m.request_id, 8);
  return static_cast<std::size_t>(p - out);
}

std::size_t encode_into(const InvocationCancelMsg& m, std::uint8_t* out, std::size_t capacity) {
  if (capacity < kInvocationCancelWireSize) return 0;
  *out = static_cast<std::uint8_t>(MsgType::InvocationCancel);
  std::uint8_t* p = out + 1;
  p = put(p, &m.client_id, 4);
  p = put(p, &m.invocation_tag, 8);
  p = put(p, &m.request_id, 8);
  return static_cast<std::size_t>(p - out);
}

std::size_t encode_into(const HealthReportMsg& m, std::uint8_t* out, std::size_t capacity) {
  if (capacity < kHealthReportWireSize) return 0;
  *out = static_cast<std::uint8_t>(MsgType::HealthReport);
  std::uint8_t* p = out + 1;
  p = put(p, &m.client_id, 4);
  p = put(p, &m.device, 4);
  p = put(p, &m.latency_us, 4);
  p = put(p, &m.ok_count, 4);
  p = put(p, &m.fail_count, 4);
  p = put(p, &m.request_id, 8);
  return static_cast<std::size_t>(p - out);
}

std::size_t encode_into(const HealthReportOkMsg& m, std::uint8_t* out, std::size_t capacity) {
  if (capacity < kHealthReportOkWireSize) return 0;
  *out = static_cast<std::uint8_t>(MsgType::HealthReportOk);
  std::uint8_t* p = out + 1;
  p = put(p, &m.request_id, 8);
  return static_cast<std::size_t>(p - out);
}

Bytes encode(const JournalRecordMsg& m) {
  Bytes b(kJournalRecordWireSize);
  encode_into(m, b.data(), b.size());
  return b;
}

Bytes encode(const SnapshotOfferMsg& m) {
  Bytes b(kSnapshotOfferWireSize);
  encode_into(m, b.data(), b.size());
  return b;
}

Bytes encode(const FailoverAnnounceMsg& m) {
  Bytes b(kFailoverAnnounceWireSize);
  encode_into(m, b.data(), b.size());
  return b;
}

Bytes encode(const LeaseRevalidateMsg& m) {
  Bytes b(kLeaseRevalidateWireSize);
  encode_into(m, b.data(), b.size());
  return b;
}

Bytes encode(const InvocationCancelMsg& m) {
  Bytes b(kInvocationCancelWireSize);
  encode_into(m, b.data(), b.size());
  return b;
}

Bytes encode(const HealthReportMsg& m) {
  Bytes b(kHealthReportWireSize);
  encode_into(m, b.data(), b.size());
  return b;
}

Bytes encode(const HealthReportOkMsg& m) {
  Bytes b(kHealthReportOkWireSize);
  encode_into(m, b.data(), b.size());
  return b;
}

Result<MsgType> peek_type(const Bytes& raw) {
  if (raw.empty()) return Error::make(21, "protocol: empty message");
  auto v = raw[0];
  if (v >= static_cast<std::uint8_t>(MsgType::Count)) {
    return Error::make(21, "protocol: unknown message type");
  }
  return static_cast<MsgType>(v);
}

Result<RegisterExecutorMsg> decode_register(const Bytes& raw) {
  auto r = open(raw, MsgType::RegisterExecutor);
  if (!r) return r.error();
  auto& rd = r.value();
  RegisterExecutorMsg m;
  auto device = rd.u32();
  auto alloc_port = rd.u16();
  auto rdma_port = rd.u16();
  auto cores = rd.u32();
  auto memory = rd.u64();
  auto epoch = rd.u64();
  auto request_id = rd.u64();
  if (!device || !alloc_port || !rdma_port || !cores || !memory || !epoch || !request_id) {
    return Error::make(22, "protocol: truncated RegisterExecutor");
  }
  m.device = device.value();
  m.alloc_port = alloc_port.value();
  m.rdma_port = rdma_port.value();
  m.cores = cores.value();
  m.memory_bytes = memory.value();
  m.epoch = epoch.value();
  m.request_id = request_id.value();
  return m;
}

Result<LeaseRequestMsg> decode_lease_request(std::span<const std::uint8_t> raw) {
  if (!open_fixed(raw, MsgType::LeaseRequest, kLeaseRequestWireSize)) {
    return Error::make(22, "protocol: bad LeaseRequest");
  }
  LeaseRequestMsg m;
  const std::uint8_t* p = raw.data() + 1;
  p = take(p, m.client_id);
  p = take(p, m.workers);
  p = take(p, m.memory_bytes);
  p = take(p, m.timeout);
  take(p, m.request_id);
  return m;
}

Result<LeaseGrantMsg> decode_lease_grant(std::span<const std::uint8_t> raw) {
  if (!open_fixed(raw, MsgType::LeaseGrant, kLeaseGrantWireSize)) {
    return Error::make(22, "protocol: bad LeaseGrant");
  }
  LeaseGrantMsg m;
  const std::uint8_t* p = raw.data() + 1;
  p = take(p, m.lease_id);
  p = take(p, m.device);
  p = take(p, m.alloc_port);
  p = take(p, m.rdma_port);
  p = take(p, m.workers);
  p = take(p, m.expires_at);
  take(p, m.request_id);
  return m;
}

Result<std::string> decode_lease_error(const Bytes& raw) {
  auto r = open(raw, MsgType::LeaseError);
  if (!r) return r.error();
  auto reason = r.value().str();
  if (!reason) return reason.error();
  if (!r.value().u64().ok()) return Error::make(22, "protocol: truncated LeaseError");
  return reason;
}

Result<AllocationRequestMsg> decode_allocation_request(const Bytes& raw) {
  auto r = open(raw, MsgType::AllocationRequest);
  if (!r) return r.error();
  auto& rd = r.value();
  AllocationRequestMsg m;
  auto lease = rd.u64();
  auto client = rd.u32();
  auto workers = rd.u32();
  auto memory = rd.u64();
  auto sandbox = rd.u8();
  auto policy = rd.u8();
  auto hot_timeout = rd.u64();
  auto expires = rd.u64();
  if (!lease || !client || !workers || !memory || !sandbox.ok() || !policy.ok() ||
      !hot_timeout.ok() || !expires.ok()) {
    return Error::make(22, "protocol: truncated AllocationRequest");
  }
  m.lease_id = lease.value();
  m.client_id = client.value();
  m.workers = workers.value();
  m.memory_bytes = memory.value();
  m.sandbox = sandbox.value();
  m.policy = policy.value();
  m.hot_timeout = hot_timeout.value();
  m.expires_at = expires.value();
  return m;
}

Result<RegisterOkMsg> decode_register_ok(const Bytes& raw) {
  auto r = open(raw, MsgType::RegisterOk);
  if (!r) return r.error();
  auto& rd = r.value();
  RegisterOkMsg m;
  auto port = rd.u16();
  auto addr = rd.u64();
  auto rkey = rd.u32();
  auto request_id = rd.u64();
  if (!port || !addr || !rkey || !request_id) {
    return Error::make(22, "protocol: truncated RegisterOk");
  }
  m.rm_rdma_port = port.value();
  m.billing_addr = addr.value();
  m.billing_rkey = rkey.value();
  m.request_id = request_id.value();
  return m;
}

Result<ReleaseResourcesMsg> decode_release(const Bytes& raw) {
  auto r = open(raw, MsgType::ReleaseResources);
  if (!r) return r.error();
  auto& rd = r.value();
  ReleaseResourcesMsg m;
  auto lease = rd.u64();
  auto workers = rd.u32();
  auto memory = rd.u64();
  auto request_id = rd.u64();
  if (!lease || !workers || !memory || !request_id) {
    return Error::make(22, "protocol: truncated Release");
  }
  m.lease_id = lease.value();
  m.workers = workers.value();
  m.memory_bytes = memory.value();
  m.request_id = request_id.value();
  return m;
}

Result<ReleaseOkMsg> decode_release_ok(const Bytes& raw) {
  auto r = open(raw, MsgType::ReleaseOk);
  if (!r) return r.error();
  auto& rd = r.value();
  auto lease = rd.u64();
  auto request_id = rd.u64();
  if (!lease || !request_id) return Error::make(22, "protocol: truncated ReleaseOk");
  return ReleaseOkMsg{lease.value(), request_id.value()};
}

Result<AllocationReplyMsg> decode_allocation_reply(const Bytes& raw) {
  auto r = open(raw, MsgType::AllocationReply);
  if (!r) return r.error();
  auto& rd = r.value();
  AllocationReplyMsg m;
  auto ok = rd.u8();
  auto sandbox = rd.u64();
  auto port = rd.u16();
  auto spawn = rd.u64();
  auto err = rd.str();
  if (!ok || !sandbox || !port || !spawn || !err) {
    return Error::make(22, "protocol: truncated AllocationReply");
  }
  m.ok = ok.value() != 0;
  m.sandbox_id = sandbox.value();
  m.rdma_port = port.value();
  m.spawn_ns = spawn.value();
  m.error = err.value();
  return m;
}

Result<SubmitCodeOkMsg> decode_submit_code_ok(const Bytes& raw) {
  auto r = open(raw, MsgType::SubmitCodeOk);
  if (!r) return r.error();
  auto idx = r.value().u16();
  if (!idx) return Error::make(22, "protocol: truncated SubmitCodeOk");
  return SubmitCodeOkMsg{idx.value()};
}

Result<SubmitCodeMsg> decode_submit_code(const Bytes& raw) {
  auto r = open(raw, MsgType::SubmitCode);
  if (!r) return r.error();
  auto& rd = r.value();
  SubmitCodeMsg m;
  auto sandbox = rd.u64();
  auto name = rd.str();
  auto size = rd.u64();
  if (!sandbox || !name || !size) return Error::make(22, "protocol: truncated SubmitCode");
  m.sandbox_id = sandbox.value();
  m.function_name = name.value();
  m.code_size = size.value();
  return m;
}

Result<DeallocateMsg> decode_deallocate(const Bytes& raw) {
  auto r = open(raw, MsgType::Deallocate);
  if (!r) return r.error();
  auto& rd = r.value();
  DeallocateMsg m;
  auto sandbox = rd.u64();
  auto lease = rd.u64();
  if (!sandbox || !lease) return Error::make(22, "protocol: truncated Deallocate");
  m.sandbox_id = sandbox.value();
  m.lease_id = lease.value();
  return m;
}

Result<ExtendLeaseMsg> decode_extend_lease(std::span<const std::uint8_t> raw) {
  if (!open_fixed(raw, MsgType::ExtendLease, kExtendLeaseWireSize)) {
    return Error::make(22, "protocol: bad ExtendLease");
  }
  ExtendLeaseMsg m;
  const std::uint8_t* p = raw.data() + 1;
  p = take(p, m.lease_id);
  p = take(p, m.extension);
  take(p, m.request_id);
  return m;
}

Result<ExtendOkMsg> decode_extend_ok(std::span<const std::uint8_t> raw) {
  if (!open_fixed(raw, MsgType::ExtendOk, kExtendOkWireSize)) {
    return Error::make(22, "protocol: bad ExtendOk");
  }
  ExtendOkMsg m;
  const std::uint8_t* p = raw.data() + 1;
  p = take(p, m.lease_id);
  p = take(p, m.expires_at);
  take(p, m.request_id);
  return m;
}

Result<BatchAllocateMsg> decode_batch_allocate(const Bytes& raw) {
  auto r = open(raw, MsgType::BatchAllocate);
  if (!r) return r.error();
  auto& rd = r.value();
  BatchAllocateMsg m;
  auto client = rd.u32();
  auto workers = rd.u32();
  auto memory = rd.u64();
  auto timeout = rd.u64();
  auto mode = rd.u8();
  auto request_id = rd.u64();
  if (!client || !workers || !memory || !timeout || !mode.ok() || !request_id) {
    return Error::make(22, "protocol: truncated BatchAllocate");
  }
  m.client_id = client.value();
  m.workers = workers.value();
  m.memory_bytes = memory.value();
  m.timeout = timeout.value();
  m.mode = mode.value();
  m.request_id = request_id.value();
  return m;
}

Result<BatchGrantedMsg> decode_batch_granted(const Bytes& raw) {
  auto r = open(raw, MsgType::BatchGranted);
  if (!r) return r.error();
  auto& rd = r.value();
  BatchGrantedMsg m;
  auto complete = rd.u8();
  auto count = rd.u32();
  if (!complete.ok() || !count) return Error::make(22, "protocol: truncated BatchGranted");
  m.complete = complete.value() != 0;
  // No reserve() from the wire-supplied count: a corrupted count must
  // fail on the bounds-checked reads below, not allocate.
  for (std::uint32_t i = 0; i < count.value(); ++i) {
    auto g = read_grant_body(rd);
    if (!g) return g.error();
    m.grants.push_back(g.value());
  }
  auto err = rd.str();
  auto request_id = rd.u64();
  if (!err || !request_id) return Error::make(22, "protocol: truncated BatchGranted");
  m.error = err.value();
  m.request_id = request_id.value();
  return m;
}

Result<LeaseRenewedMsg> decode_lease_renewed(const Bytes& raw) {
  auto r = open(raw, MsgType::LeaseRenewed);
  if (!r) return r.error();
  auto& rd = r.value();
  LeaseRenewedMsg m;
  auto lease = rd.u64();
  auto expires = rd.u64();
  if (!lease || !expires) return Error::make(22, "protocol: truncated LeaseRenewed");
  m.lease_id = lease.value();
  m.expires_at = expires.value();
  return m;
}

Result<LeaseTerminatedMsg> decode_lease_terminated(const Bytes& raw) {
  auto r = open(raw, MsgType::LeaseTerminated);
  if (!r) return r.error();
  auto& rd = r.value();
  LeaseTerminatedMsg m;
  auto lease = rd.u64();
  auto reason = rd.u8();
  auto evicted = rd.u64();
  auto seq = rd.u64();
  if (!lease || !reason.ok() || !evicted || !seq) {
    return Error::make(22, "protocol: truncated LeaseTerminated");
  }
  m.lease_id = lease.value();
  m.reason = reason.value();
  m.evicted_at = evicted.value();
  m.seq = seq.value();
  return m;
}

Result<LeasesTerminatedMsg> decode_leases_terminated(const Bytes& raw) {
  auto r = open(raw, MsgType::LeasesTerminated);
  if (!r) return r.error();
  auto& rd = r.value();
  LeasesTerminatedMsg m;
  auto reason = rd.u8();
  auto evicted = rd.u64();
  auto count = rd.u32();
  if (!reason.ok() || !evicted || !count) {
    return Error::make(22, "protocol: truncated LeasesTerminated");
  }
  m.reason = reason.value();
  m.evicted_at = evicted.value();
  // No reserve() from the wire-supplied count: a corrupted count must
  // fail on the bounds-checked reads below, not allocate.
  for (std::uint32_t i = 0; i < count.value(); ++i) {
    auto id = rd.u64();
    if (!id) return Error::make(22, "protocol: truncated LeasesTerminated");
    m.lease_ids.push_back(id.value());
  }
  auto seq = rd.u64();
  if (!seq) return Error::make(22, "protocol: truncated LeasesTerminated");
  m.seq = seq.value();
  return m;
}

Result<SubscribeEventsMsg> decode_subscribe_events(const Bytes& raw) {
  auto r = open(raw, MsgType::SubscribeEvents);
  if (!r) return r.error();
  auto client = r.value().u32();
  if (!client) return Error::make(22, "protocol: truncated SubscribeEvents");
  return SubscribeEventsMsg{client.value()};
}

Result<LeaseDeniedMsg> decode_lease_denied(std::span<const std::uint8_t> raw) {
  if (!open_fixed(raw, MsgType::LeaseDenied, kLeaseDeniedWireSize)) {
    return Error::make(22, "protocol: bad LeaseDenied");
  }
  LeaseDeniedMsg m;
  const std::uint8_t* p = raw.data() + 1;
  p = take(p, m.reason);
  p = take(p, m.retry_after);
  take(p, m.request_id);
  return m;
}

Result<JournalRecordMsg> decode_journal_record(std::span<const std::uint8_t> raw) {
  if (!open_fixed(raw, MsgType::JournalRecord, kJournalRecordWireSize)) {
    return Error::make(22, "protocol: bad JournalRecord");
  }
  JournalRecordMsg m;
  const std::uint8_t* p = raw.data() + 1;
  p = take(p, m.seq);
  p = take(p, m.op);
  p = take(p, m.lease_id);
  p = take(p, m.client_id);
  p = take(p, m.executor);
  p = take(p, m.workers);
  p = take(p, m.memory);
  p = take(p, m.time);
  p = take(p, m.aux);
  p = take(p, m.aux2);
  take(p, m.checksum);
  return m;
}

Result<SnapshotOfferMsg> decode_snapshot_offer(std::span<const std::uint8_t> raw) {
  if (!open_fixed(raw, MsgType::SnapshotOffer, kSnapshotOfferWireSize)) {
    return Error::make(22, "protocol: bad SnapshotOffer");
  }
  SnapshotOfferMsg m;
  const std::uint8_t* p = raw.data() + 1;
  p = take(p, m.manager_epoch);
  p = take(p, m.upto_seq);
  p = take(p, m.digest);
  take(p, m.lease_count);
  return m;
}

Result<FailoverAnnounceMsg> decode_failover_announce(std::span<const std::uint8_t> raw) {
  if (!open_fixed(raw, MsgType::FailoverAnnounce, kFailoverAnnounceWireSize)) {
    return Error::make(22, "protocol: bad FailoverAnnounce");
  }
  FailoverAnnounceMsg m;
  const std::uint8_t* p = raw.data() + 1;
  p = take(p, m.manager_epoch);
  p = take(p, m.applied_seq);
  take(p, m.promoted_at);
  return m;
}

Result<LeaseRevalidateMsg> decode_lease_revalidate(std::span<const std::uint8_t> raw) {
  if (!open_fixed(raw, MsgType::LeaseRevalidate, kLeaseRevalidateWireSize)) {
    return Error::make(22, "protocol: bad LeaseRevalidate");
  }
  LeaseRevalidateMsg m;
  const std::uint8_t* p = raw.data() + 1;
  p = take(p, m.client_id);
  p = take(p, m.lease_id);
  take(p, m.request_id);
  return m;
}

Result<InvocationCancelMsg> decode_invocation_cancel(std::span<const std::uint8_t> raw) {
  if (!open_fixed(raw, MsgType::InvocationCancel, kInvocationCancelWireSize)) {
    return Error::make(22, "protocol: bad InvocationCancel");
  }
  InvocationCancelMsg m;
  const std::uint8_t* p = raw.data() + 1;
  p = take(p, m.client_id);
  p = take(p, m.invocation_tag);
  take(p, m.request_id);
  return m;
}

Result<HealthReportMsg> decode_health_report(std::span<const std::uint8_t> raw) {
  if (!open_fixed(raw, MsgType::HealthReport, kHealthReportWireSize)) {
    return Error::make(22, "protocol: bad HealthReport");
  }
  HealthReportMsg m;
  const std::uint8_t* p = raw.data() + 1;
  p = take(p, m.client_id);
  p = take(p, m.device);
  p = take(p, m.latency_us);
  p = take(p, m.ok_count);
  p = take(p, m.fail_count);
  take(p, m.request_id);
  return m;
}

Result<HealthReportOkMsg> decode_health_report_ok(std::span<const std::uint8_t> raw) {
  if (!open_fixed(raw, MsgType::HealthReportOk, kHealthReportOkWireSize)) {
    return Error::make(22, "protocol: bad HealthReportOk");
  }
  HealthReportOkMsg m;
  take(raw.data() + 1, m.request_id);
  return m;
}

bool is_reply_type(MsgType t) {
  switch (t) {
    case MsgType::LeaseGrant:
    case MsgType::LeaseError:
    case MsgType::LeaseDenied:
    case MsgType::ExtendOk:
    case MsgType::BatchGranted:
    case MsgType::ReleaseOk:
    case MsgType::RegisterOk:
    case MsgType::HealthReportOk:
      return true;
    default:
      return false;
  }
}

Result<std::uint64_t> reply_request_id(const Bytes& raw) {
  auto t = peek_type(raw);
  if (!t) return t.error();
  if (!is_reply_type(t.value())) return Error::make(24, "protocol: not a reply type");
  // Every reply appends the echoed id as its final 8 bytes; reading it
  // positionally keeps reply matching O(1) even for variable-length
  // replies (BatchGranted, LeaseError).
  if (raw.size() < 1 + 8) return Error::make(22, "protocol: truncated reply");
  std::uint64_t id = 0;
  std::memcpy(&id, raw.data() + raw.size() - 8, 8);
  return id;
}

const char* to_string(SandboxType t) {
  return t == SandboxType::Docker ? "docker" : "bare-metal";
}

const char* to_string(DenialReason r) {
  switch (r) {
    case DenialReason::Overload: return "overload";
    case DenialReason::QuotaExceeded: return "quota-exceeded";
  }
  return "unknown";
}

const char* to_string(TerminationReason r) {
  switch (r) {
    case TerminationReason::QuotaPressure: return "quota-pressure";
    case TerminationReason::Drain: return "drain";
    case TerminationReason::Rebalance: return "rebalance";
  }
  return "unknown";
}

}  // namespace rfs::rfaas

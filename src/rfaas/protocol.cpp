#include "rfaas/protocol.hpp"

#include <cstring>

namespace rfs::rfaas {

void InvocationHeader::pack(std::uint8_t* out) const {
  std::memcpy(out, &result_addr, 8);
  std::memcpy(out + 8, &result_rkey, 4);
}

InvocationHeader InvocationHeader::unpack(const std::uint8_t* in) {
  InvocationHeader h;
  std::memcpy(&h.result_addr, in, 8);
  std::memcpy(&h.result_rkey, in + 8, 4);
  return h;
}

namespace {
ByteWriter header(MsgType type) {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(type));
  return w;
}

Result<ByteReader> open(const Bytes& raw, MsgType expected) {
  ByteReader r(raw);
  auto t = r.u8();
  if (!t) return t.error();
  if (t.value() != static_cast<std::uint8_t>(expected)) {
    return Error::make(20, "protocol: unexpected message type");
  }
  return r;
}
}  // namespace

Bytes encode(MsgType type) { return header(type).take(); }

Bytes encode(const RegisterExecutorMsg& m) {
  auto w = header(MsgType::RegisterExecutor);
  w.u32(m.device);
  w.u16(m.alloc_port);
  w.u16(m.rdma_port);
  w.u32(m.cores);
  w.u64(m.memory_bytes);
  return w.take();
}

Bytes encode(const RegisterOkMsg& m) {
  auto w = header(MsgType::RegisterOk);
  w.u16(m.rm_rdma_port);
  w.u64(m.billing_addr);
  w.u32(m.billing_rkey);
  return w.take();
}

Bytes encode(const LeaseRequestMsg& m) {
  auto w = header(MsgType::LeaseRequest);
  w.u32(m.client_id);
  w.u32(m.workers);
  w.u64(m.memory_bytes);
  w.u64(m.timeout);
  return w.take();
}

namespace {
void write_grant_body(ByteWriter& w, const LeaseGrantMsg& m) {
  w.u64(m.lease_id);
  w.u32(m.device);
  w.u16(m.alloc_port);
  w.u16(m.rdma_port);
  w.u32(m.workers);
  w.u64(m.expires_at);
}

Result<LeaseGrantMsg> read_grant_body(ByteReader& rd) {
  LeaseGrantMsg m;
  auto lease = rd.u64();
  auto device = rd.u32();
  auto alloc_port = rd.u16();
  auto rdma_port = rd.u16();
  auto workers = rd.u32();
  auto expires = rd.u64();
  if (!lease || !device || !alloc_port || !rdma_port || !workers || !expires) {
    return Error::make(22, "protocol: truncated lease grant body");
  }
  m.lease_id = lease.value();
  m.device = device.value();
  m.alloc_port = alloc_port.value();
  m.rdma_port = rdma_port.value();
  m.workers = workers.value();
  m.expires_at = expires.value();
  return m;
}
}  // namespace

Bytes encode(const LeaseGrantMsg& m) {
  auto w = header(MsgType::LeaseGrant);
  write_grant_body(w, m);
  return w.take();
}

Bytes encode_lease_error(const std::string& reason) {
  auto w = header(MsgType::LeaseError);
  w.str(reason);
  return w.take();
}

Bytes encode(const AllocationRequestMsg& m) {
  auto w = header(MsgType::AllocationRequest);
  w.u64(m.lease_id);
  w.u32(m.client_id);
  w.u32(m.workers);
  w.u64(m.memory_bytes);
  w.u8(m.sandbox);
  w.u8(m.policy);
  w.u64(m.hot_timeout);
  w.u64(m.expires_at);
  return w.take();
}

Bytes encode(const ReleaseResourcesMsg& m) {
  auto w = header(MsgType::ReleaseResources);
  w.u64(m.lease_id);
  w.u32(m.workers);
  w.u64(m.memory_bytes);
  return w.take();
}

Bytes encode(const AllocationReplyMsg& m) {
  auto w = header(MsgType::AllocationReply);
  w.u8(m.ok ? 1 : 0);
  w.u64(m.sandbox_id);
  w.u16(m.rdma_port);
  w.u64(m.spawn_ns);
  w.str(m.error);
  return w.take();
}

Bytes encode(const SubmitCodeOkMsg& m) {
  auto w = header(MsgType::SubmitCodeOk);
  w.u16(m.fn_index);
  return w.take();
}

Bytes encode(const SubmitCodeMsg& m) {
  auto w = header(MsgType::SubmitCode);
  w.u64(m.sandbox_id);
  w.str(m.function_name);
  w.u64(m.code_size);
  // The code bytes themselves are represented by size on the wire; the
  // transfer cost is paid by the transport, the content by the registry.
  return w.take();
}

Bytes encode(const DeallocateMsg& m) {
  auto w = header(MsgType::Deallocate);
  w.u64(m.sandbox_id);
  w.u64(m.lease_id);
  return w.take();
}

Bytes encode(const ExtendLeaseMsg& m) {
  auto w = header(MsgType::ExtendLease);
  w.u64(m.lease_id);
  w.u64(m.extension);
  return w.take();
}

Bytes encode(const ExtendOkMsg& m) {
  auto w = header(MsgType::ExtendOk);
  w.u64(m.lease_id);
  w.u64(m.expires_at);
  return w.take();
}

Bytes encode(const BatchAllocateMsg& m) {
  auto w = header(MsgType::BatchAllocate);
  w.u32(m.client_id);
  w.u32(m.workers);
  w.u64(m.memory_bytes);
  w.u64(m.timeout);
  w.u8(m.mode);
  return w.take();
}

Bytes encode(const BatchGrantedMsg& m) {
  auto w = header(MsgType::BatchGranted);
  w.u8(m.complete ? 1 : 0);
  w.u32(static_cast<std::uint32_t>(m.grants.size()));
  for (const auto& g : m.grants) write_grant_body(w, g);
  w.str(m.error);
  return w.take();
}

Bytes encode(const LeaseRenewedMsg& m) {
  auto w = header(MsgType::LeaseRenewed);
  w.u64(m.lease_id);
  w.u64(m.expires_at);
  return w.take();
}

Bytes encode(const LeaseTerminatedMsg& m) {
  auto w = header(MsgType::LeaseTerminated);
  w.u64(m.lease_id);
  w.u8(m.reason);
  w.u64(m.evicted_at);
  return w.take();
}

Bytes encode(const SubscribeEventsMsg& m) {
  auto w = header(MsgType::SubscribeEvents);
  w.u32(m.client_id);
  return w.take();
}

Result<MsgType> peek_type(const Bytes& raw) {
  if (raw.empty()) return Error::make(21, "protocol: empty message");
  auto v = raw[0];
  if (v >= static_cast<std::uint8_t>(MsgType::Count)) {
    return Error::make(21, "protocol: unknown message type");
  }
  return static_cast<MsgType>(v);
}

Result<RegisterExecutorMsg> decode_register(const Bytes& raw) {
  auto r = open(raw, MsgType::RegisterExecutor);
  if (!r) return r.error();
  auto& rd = r.value();
  RegisterExecutorMsg m;
  auto device = rd.u32();
  auto alloc_port = rd.u16();
  auto rdma_port = rd.u16();
  auto cores = rd.u32();
  auto memory = rd.u64();
  if (!device || !alloc_port || !rdma_port || !cores || !memory) {
    return Error::make(22, "protocol: truncated RegisterExecutor");
  }
  m.device = device.value();
  m.alloc_port = alloc_port.value();
  m.rdma_port = rdma_port.value();
  m.cores = cores.value();
  m.memory_bytes = memory.value();
  return m;
}

Result<LeaseRequestMsg> decode_lease_request(const Bytes& raw) {
  auto r = open(raw, MsgType::LeaseRequest);
  if (!r) return r.error();
  auto& rd = r.value();
  LeaseRequestMsg m;
  auto client = rd.u32();
  auto workers = rd.u32();
  auto memory = rd.u64();
  auto timeout = rd.u64();
  if (!client || !workers || !memory || !timeout) {
    return Error::make(22, "protocol: truncated LeaseRequest");
  }
  m.client_id = client.value();
  m.workers = workers.value();
  m.memory_bytes = memory.value();
  m.timeout = timeout.value();
  return m;
}

Result<LeaseGrantMsg> decode_lease_grant(const Bytes& raw) {
  auto r = open(raw, MsgType::LeaseGrant);
  if (!r) return r.error();
  return read_grant_body(r.value());
}

Result<std::string> decode_lease_error(const Bytes& raw) {
  auto r = open(raw, MsgType::LeaseError);
  if (!r) return r.error();
  return r.value().str();
}

Result<AllocationRequestMsg> decode_allocation_request(const Bytes& raw) {
  auto r = open(raw, MsgType::AllocationRequest);
  if (!r) return r.error();
  auto& rd = r.value();
  AllocationRequestMsg m;
  auto lease = rd.u64();
  auto client = rd.u32();
  auto workers = rd.u32();
  auto memory = rd.u64();
  auto sandbox = rd.u8();
  auto policy = rd.u8();
  auto hot_timeout = rd.u64();
  auto expires = rd.u64();
  if (!lease || !client || !workers || !memory || !sandbox.ok() || !policy.ok() ||
      !hot_timeout.ok() || !expires.ok()) {
    return Error::make(22, "protocol: truncated AllocationRequest");
  }
  m.lease_id = lease.value();
  m.client_id = client.value();
  m.workers = workers.value();
  m.memory_bytes = memory.value();
  m.sandbox = sandbox.value();
  m.policy = policy.value();
  m.hot_timeout = hot_timeout.value();
  m.expires_at = expires.value();
  return m;
}

Result<RegisterOkMsg> decode_register_ok(const Bytes& raw) {
  auto r = open(raw, MsgType::RegisterOk);
  if (!r) return r.error();
  auto& rd = r.value();
  RegisterOkMsg m;
  auto port = rd.u16();
  auto addr = rd.u64();
  auto rkey = rd.u32();
  if (!port || !addr || !rkey) return Error::make(22, "protocol: truncated RegisterOk");
  m.rm_rdma_port = port.value();
  m.billing_addr = addr.value();
  m.billing_rkey = rkey.value();
  return m;
}

Result<ReleaseResourcesMsg> decode_release(const Bytes& raw) {
  auto r = open(raw, MsgType::ReleaseResources);
  if (!r) return r.error();
  auto& rd = r.value();
  ReleaseResourcesMsg m;
  auto lease = rd.u64();
  auto workers = rd.u32();
  auto memory = rd.u64();
  if (!lease || !workers || !memory) return Error::make(22, "protocol: truncated Release");
  m.lease_id = lease.value();
  m.workers = workers.value();
  m.memory_bytes = memory.value();
  return m;
}

Result<AllocationReplyMsg> decode_allocation_reply(const Bytes& raw) {
  auto r = open(raw, MsgType::AllocationReply);
  if (!r) return r.error();
  auto& rd = r.value();
  AllocationReplyMsg m;
  auto ok = rd.u8();
  auto sandbox = rd.u64();
  auto port = rd.u16();
  auto spawn = rd.u64();
  auto err = rd.str();
  if (!ok || !sandbox || !port || !spawn || !err) {
    return Error::make(22, "protocol: truncated AllocationReply");
  }
  m.ok = ok.value() != 0;
  m.sandbox_id = sandbox.value();
  m.rdma_port = port.value();
  m.spawn_ns = spawn.value();
  m.error = err.value();
  return m;
}

Result<SubmitCodeOkMsg> decode_submit_code_ok(const Bytes& raw) {
  auto r = open(raw, MsgType::SubmitCodeOk);
  if (!r) return r.error();
  auto idx = r.value().u16();
  if (!idx) return Error::make(22, "protocol: truncated SubmitCodeOk");
  return SubmitCodeOkMsg{idx.value()};
}

Result<SubmitCodeMsg> decode_submit_code(const Bytes& raw) {
  auto r = open(raw, MsgType::SubmitCode);
  if (!r) return r.error();
  auto& rd = r.value();
  SubmitCodeMsg m;
  auto sandbox = rd.u64();
  auto name = rd.str();
  auto size = rd.u64();
  if (!sandbox || !name || !size) return Error::make(22, "protocol: truncated SubmitCode");
  m.sandbox_id = sandbox.value();
  m.function_name = name.value();
  m.code_size = size.value();
  return m;
}

Result<DeallocateMsg> decode_deallocate(const Bytes& raw) {
  auto r = open(raw, MsgType::Deallocate);
  if (!r) return r.error();
  auto& rd = r.value();
  DeallocateMsg m;
  auto sandbox = rd.u64();
  auto lease = rd.u64();
  if (!sandbox || !lease) return Error::make(22, "protocol: truncated Deallocate");
  m.sandbox_id = sandbox.value();
  m.lease_id = lease.value();
  return m;
}

Result<ExtendLeaseMsg> decode_extend_lease(const Bytes& raw) {
  auto r = open(raw, MsgType::ExtendLease);
  if (!r) return r.error();
  auto& rd = r.value();
  ExtendLeaseMsg m;
  auto lease = rd.u64();
  auto extension = rd.u64();
  if (!lease || !extension) return Error::make(22, "protocol: truncated ExtendLease");
  m.lease_id = lease.value();
  m.extension = extension.value();
  return m;
}

Result<ExtendOkMsg> decode_extend_ok(const Bytes& raw) {
  auto r = open(raw, MsgType::ExtendOk);
  if (!r) return r.error();
  auto& rd = r.value();
  ExtendOkMsg m;
  auto lease = rd.u64();
  auto expires = rd.u64();
  if (!lease || !expires) return Error::make(22, "protocol: truncated ExtendOk");
  m.lease_id = lease.value();
  m.expires_at = expires.value();
  return m;
}

Result<BatchAllocateMsg> decode_batch_allocate(const Bytes& raw) {
  auto r = open(raw, MsgType::BatchAllocate);
  if (!r) return r.error();
  auto& rd = r.value();
  BatchAllocateMsg m;
  auto client = rd.u32();
  auto workers = rd.u32();
  auto memory = rd.u64();
  auto timeout = rd.u64();
  auto mode = rd.u8();
  if (!client || !workers || !memory || !timeout || !mode.ok()) {
    return Error::make(22, "protocol: truncated BatchAllocate");
  }
  m.client_id = client.value();
  m.workers = workers.value();
  m.memory_bytes = memory.value();
  m.timeout = timeout.value();
  m.mode = mode.value();
  return m;
}

Result<BatchGrantedMsg> decode_batch_granted(const Bytes& raw) {
  auto r = open(raw, MsgType::BatchGranted);
  if (!r) return r.error();
  auto& rd = r.value();
  BatchGrantedMsg m;
  auto complete = rd.u8();
  auto count = rd.u32();
  if (!complete.ok() || !count) return Error::make(22, "protocol: truncated BatchGranted");
  m.complete = complete.value() != 0;
  // No reserve() from the wire-supplied count: a corrupted count must
  // fail on the bounds-checked reads below, not allocate.
  for (std::uint32_t i = 0; i < count.value(); ++i) {
    auto g = read_grant_body(rd);
    if (!g) return g.error();
    m.grants.push_back(g.value());
  }
  auto err = rd.str();
  if (!err) return Error::make(22, "protocol: truncated BatchGranted");
  m.error = err.value();
  return m;
}

Result<LeaseRenewedMsg> decode_lease_renewed(const Bytes& raw) {
  auto r = open(raw, MsgType::LeaseRenewed);
  if (!r) return r.error();
  auto& rd = r.value();
  LeaseRenewedMsg m;
  auto lease = rd.u64();
  auto expires = rd.u64();
  if (!lease || !expires) return Error::make(22, "protocol: truncated LeaseRenewed");
  m.lease_id = lease.value();
  m.expires_at = expires.value();
  return m;
}

Result<LeaseTerminatedMsg> decode_lease_terminated(const Bytes& raw) {
  auto r = open(raw, MsgType::LeaseTerminated);
  if (!r) return r.error();
  auto& rd = r.value();
  LeaseTerminatedMsg m;
  auto lease = rd.u64();
  auto reason = rd.u8();
  auto evicted = rd.u64();
  if (!lease || !reason.ok() || !evicted) {
    return Error::make(22, "protocol: truncated LeaseTerminated");
  }
  m.lease_id = lease.value();
  m.reason = reason.value();
  m.evicted_at = evicted.value();
  return m;
}

Result<SubscribeEventsMsg> decode_subscribe_events(const Bytes& raw) {
  auto r = open(raw, MsgType::SubscribeEvents);
  if (!r) return r.error();
  auto client = r.value().u32();
  if (!client) return Error::make(22, "protocol: truncated SubscribeEvents");
  return SubscribeEventsMsg{client.value()};
}

const char* to_string(SandboxType t) {
  return t == SandboxType::Docker ? "docker" : "bare-metal";
}

const char* to_string(TerminationReason r) {
  switch (r) {
    case TerminationReason::QuotaPressure: return "quota-pressure";
    case TerminationReason::Drain: return "drain";
    case TerminationReason::Rebalance: return "rebalance";
  }
  return "unknown";
}

}  // namespace rfs::rfaas

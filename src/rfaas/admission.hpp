// Ingress admission control: token-bucket policing + weighted fair
// queueing in front of the resource manager's shard routing.
//
// The control plane is fast per-op (fig16), but speed alone does not
// survive overload: before this layer, every LeaseRequest paid the full
// pipeline — shard gate, placement scan, and on denial a quota-eviction
// pass — so demand beyond capacity made each request *more* expensive
// exactly when there were more of them. The admitter inverts that: one
// mutex, a handful of integer/double updates, and an early LeaseDenied
// with a retry_after hint. Saying no is O(1) and touches no shard state.
//
// Two mechanisms compose, both deterministic given an explicit clock:
//
//  - Per-tenant token bucket (policing): absolute rate caps. A tenant's
//    bucket holds up to `burst` tokens and refills at `rate_hz`; a
//    request with no token is shed with retry_after = time until one
//    token exists. rate 0 with burst 0 is a blocked tenant (always
//    shed); the config-default rate 0 disables policing entirely.
//
//  - Weighted fair queueing over the aggregate capacity: a global
//    bucket paces total admissions at `capacity_hz` (this is what keeps
//    goodput ≈ capacity while overloaded), and a fluid-GPS virtual
//    clock shares that capacity by tenant weight. Each tenant carries a
//    virtual finish tag advanced by 1/weight per admission; global
//    virtual time advances with the clock at capacity/weight_sum (the
//    rate a fully backlogged system serves virtual work). A tenant more
//    than `wfq_credit` virtual units ahead of global time is shed — so
//    under saturation each backlogged tenant is pinned at the credit
//    boundary and admitted at exactly capacity * weight / weight_sum,
//    and a light tenant can never be starved: its lag bound is the same
//    credit, and the clock-driven virtual time always drains it. The
//    fairness check only fires while the capacity bucket is contended
//    (below full): an uncontended admitter is work-conserving — free
//    capacity is never shed in the name of weight shares, and tag
//    clamping guarantees uncontended use never becomes debt later.
//
// Thread safety: all state sits behind one std::mutex. The sim calls
// admit() from a single thread, but the manager's counters are also
// read from threaded stress tests (and a future threaded frontend), so
// the lock — not the sim's cooperative scheduling — is the contract;
// tests/admission_test.cpp races admit() against set_weight() under
// TSan to hold it.
#pragma once

#include <cstdint>
#include <mutex>
#include <unordered_map>

#include "common/units.hpp"
#include "rfaas/config.hpp"

namespace rfs::rfaas {

/// The admission verdict for one request.
struct AdmissionDecision {
  bool admitted = true;
  Duration retry_after = 0;  ///< shed only: wait at least this before retrying
};

/// Per-tenant token buckets + SFQ-over-capacity. One instance per
/// resource manager frontend; see the file comment for the model.
class Admission {
 public:
  explicit Admission(AdmissionConfig config);

  /// Whether any admission mechanism is configured. When false, admit()
  /// short-circuits to "admitted" without taking the lock's slow path.
  [[nodiscard]] bool enabled() const { return enabled_; }

  /// Sets a tenant's WFQ weight (>= 1; 0 is clamped to 1). Unknown
  /// tenants default to `config.default_weight`.
  void set_weight(std::uint32_t tenant, std::uint32_t weight);

  /// Overrides one tenant's policing bucket (rate 0 + burst 0 = always
  /// shed — an administratively blocked tenant).
  void set_rate(std::uint32_t tenant, double rate_hz, double burst);

  /// The admission decision for one request from `tenant` arriving at
  /// `now` (virtual or wall time — the admitter only ever diffs it).
  AdmissionDecision admit(std::uint32_t tenant, Time now);

  /// Counters (cumulative, monotone).
  [[nodiscard]] std::uint64_t admitted() const;
  [[nodiscard]] std::uint64_t shed_rate() const;   ///< policing-bucket sheds
  [[nodiscard]] std::uint64_t shed_capacity() const;  ///< capacity-bucket sheds
  [[nodiscard]] std::uint64_t shed_wfq() const;    ///< fairness-credit sheds
  [[nodiscard]] std::uint64_t sheds() const;       ///< all sheds combined

 private:
  struct Bucket {
    double tokens = 0;
    double rate_hz = 0;
    double burst = 0;
    Time last_refill = 0;
    bool limited = false;  ///< policing configured for this bucket
  };

  struct Tenant {
    Bucket bucket;
    double finish = 0;  ///< SFQ virtual finish tag
    std::uint32_t weight = 1;
  };

  static void refill(Bucket& b, Time now);
  [[nodiscard]] Duration hint(double deficit_tokens, double rate_hz) const;
  Tenant& tenant_slot(std::uint32_t tenant);

  AdmissionConfig config_;
  bool enabled_ = false;

  mutable std::mutex mu_;
  std::unordered_map<std::uint32_t, Tenant> tenants_;
  Bucket capacity_;
  double vtime_ = 0;        ///< fluid-GPS global virtual time
  Time vtime_at_ = 0;       ///< clock instant vtime_ was last advanced to
  double weight_sum_ = 0;   ///< sum of known tenant weights (GPS clock rate)

  std::uint64_t admitted_ = 0;
  std::uint64_t shed_rate_ = 0;
  std::uint64_t shed_capacity_ = 0;
  std::uint64_t shed_wfq_ = 0;
};

}  // namespace rfs::rfaas

#include "rfaas/session.hpp"

#include <algorithm>

#include "sim/engine.hpp"

namespace rfs::rfaas {

namespace {

/// Bound on remembered completed-request ids and push sequence numbers.
/// One outstanding call per session means a wandering duplicate can lag
/// the live request by at most the injector's delay bound, far less than
/// 256 exchanges; eviction therefore never forgets a live duplicate.
constexpr std::size_t kCompletedWindow = 256;
constexpr std::size_t kPushSeqWindow = 256;

}  // namespace

Session::Session(sim::Engine& engine, std::shared_ptr<net::TcpStream> stream,
                 SessionOptions options)
    : state_(std::make_shared<State>(engine, std::move(stream), options)) {
  sim::spawn(engine, pump(state_));
}

std::uint64_t Session::next_request_id() {
  ++state_->sequence;
  return (static_cast<std::uint64_t>(state_->options.epoch) << 32) |
         static_cast<std::uint64_t>(state_->sequence);
}

Duration Session::current_rto() const { return rto_of(*state_); }

Duration Session::rto_of(const State& st) {
  if (!st.has_rtt) return st.options.rto_initial;
  const double rto = st.srtt + 4.0 * st.rttvar;
  return std::clamp(static_cast<Duration>(rto), st.options.rto_min, st.options.rto_max);
}

void Session::note_rtt(State& st, Duration sample) {
  // RFC 6298 smoothing (alpha = 1/8, beta = 1/4).
  const double s = static_cast<double>(sample);
  if (!st.has_rtt) {
    st.srtt = s;
    st.rttvar = s / 2.0;
    st.has_rtt = true;
    return;
  }
  const double err = s - st.srtt;
  st.rttvar = 0.75 * st.rttvar + 0.25 * (err < 0 ? -err : err);
  st.srtt = 0.875 * st.srtt + 0.125 * s;
}

sim::Task<void> Session::wake_at(std::shared_ptr<State> st, Time deadline) {
  const Time now = st->engine.now();
  if (deadline > now) co_await sim::delay(deadline - now);
  // Possibly stale (the call may have moved on to a later attempt); a
  // spurious set only makes the waiter re-check its own deadline.
  st->reply_event.set();
}

sim::Task<Result<Bytes>> Session::call(Bytes request, std::uint64_t request_id) {
  auto st = state_;
  co_await st->call_mutex.lock();
  ++st->calls;
  st->waiting = true;
  st->pending_id = request_id;
  st->pending_reply.reset();

  Result<Bytes> out = Error::make(30, "session: retransmit budget exhausted");
  Duration rto = rto_of(*st);
  bool retransmitted = false;
  for (unsigned attempt = 0; attempt <= st->options.max_retransmits; ++attempt) {
    if (st->closed || st->stream->closed()) {
      out = Error::make(31, "session: stream closed");
      break;
    }
    if (attempt > 0) {
      ++st->retransmits;
      retransmitted = true;
    }
    const Time sent_at = st->engine.now();
    st->stream->send(Bytes(request));
    const Time deadline = sent_at + rto;
    while (!st->pending_reply && !st->closed && st->engine.now() < deadline) {
      st->reply_event.reset();
      sim::spawn(st->engine, wake_at(st, deadline));
      co_await st->reply_event.wait();
    }
    if (st->pending_reply) {
      // Karn's rule: an exchange that was ever retransmitted yields no
      // RTT sample (the reply could answer either transmission).
      if (!retransmitted) note_rtt(*st, st->engine.now() - sent_at);
      out = std::move(*st->pending_reply);
      st->pending_reply.reset();
      break;
    }
    rto = std::min<Duration>(rto * 2, st->options.rto_max);
  }
  if (!out.ok()) ++st->call_failures;

  st->waiting = false;
  st->pending_id = 0;
  st->call_mutex.unlock();
  co_return out;
}

sim::Task<std::optional<Bytes>> Session::next_push() {
  auto st = state_;
  while (true) {
    if (!st->pushes.empty()) {
      Bytes msg = std::move(st->pushes.front());
      st->pushes.pop_front();
      co_return msg;
    }
    if (st->closed) co_return std::nullopt;
    st->push_event.reset();
    co_await st->push_event.wait();
  }
}

void Session::send_raw(Bytes message) { state_->stream->send(std::move(message)); }

sim::Task<void> Session::pump(std::shared_ptr<State> st) {
  while (true) {
    auto raw = co_await st->stream->recv();
    if (!raw) break;
    classify(*st, std::move(*raw));
  }
  st->closed = true;
  st->reply_event.set();
  st->push_event.set();
}

void Session::record_completed(State& st, std::uint64_t id, const Bytes& reply) {
  std::uint64_t lease_id = 0;
  if (auto type = peek_type(reply); type && type.value() == MsgType::LeaseGrant) {
    if (auto grant = decode_lease_grant(reply)) lease_id = grant.value().lease_id;
  }
  st.completed.emplace(id, lease_id);
  st.completed_fifo.push_back(id);
  if (st.completed_fifo.size() > kCompletedWindow) {
    st.completed.erase(st.completed_fifo.front());
    st.completed_fifo.pop_front();
  }
}

void Session::classify(State& st, Bytes msg) {
  auto type = peek_type(msg);
  if (!type) return;  // garbage frame: drop

  if (is_reply_type(type.value())) {
    auto id = reply_request_id(msg);
    if (!id) return;
    if (id.value() != 0 && st.waiting && id.value() == st.pending_id) {
      record_completed(st, id.value(), msg);
      st.pending_reply = std::move(msg);
      st.reply_event.set();
      return;
    }
    if (auto it = st.completed.find(id.value()); it != st.completed.end()) {
      ++st.duplicate_replies;
      // The invariant the chaos gate pins to zero: a re-answer to a
      // completed request naming a DIFFERENT lease would be a second
      // grant for one logical request.
      if (type.value() == MsgType::LeaseGrant && it->second != 0) {
        if (auto grant = decode_lease_grant(msg);
            grant && grant.value().lease_id != it->second) {
          ++st.double_grants;
        }
      }
      return;
    }
    ++st.stale_replies;  // reply to a request we gave up on: drop
    return;
  }

  // Push path. Sequenced eviction pushes (seq != 0) deduplicate here so
  // duplicated deliveries never reach the owner's termination handler.
  std::uint64_t seq = 0;
  if (type.value() == MsgType::LeaseTerminated) {
    if (auto m = decode_lease_terminated(msg)) seq = m.value().seq;
  } else if (type.value() == MsgType::LeasesTerminated) {
    if (auto m = decode_leases_terminated(msg)) seq = m.value().seq;
  }
  if (seq != 0) {
    if (st.push_seqs.contains(seq)) {
      ++st.duplicate_pushes;
      return;
    }
    st.push_seqs.emplace(seq, true);
    st.push_seqs_fifo.push_back(seq);
    if (st.push_seqs_fifo.size() > kPushSeqWindow) {
      st.push_seqs.erase(st.push_seqs_fifo.front());
      st.push_seqs_fifo.pop_front();
    }
  }
  st.pushes.push_back(std::move(msg));
  st.push_event.set();
}

}  // namespace rfs::rfaas

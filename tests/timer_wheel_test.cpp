// Unit tests for the deadline-bucketed timer wheel: clock-edge contract,
// re-arm across buckets, lazy cancellation, and overflow cascade.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "sim/timer_wheel.hpp"

namespace rfs::sim {
namespace {

std::vector<TimerWheel::Id> fire(TimerWheel& wheel, Time now) {
  std::vector<TimerWheel::Id> expired;
  wheel.advance(now, expired);
  return expired;
}

TEST(TimerWheel, ArmAndExpire) {
  TimerWheel wheel;
  const auto id = wheel.arm(5_ms);
  EXPECT_NE(id, 0u);
  EXPECT_TRUE(wheel.armed(id));
  EXPECT_EQ(wheel.deadline_of(id), 5_ms);

  EXPECT_TRUE(fire(wheel, 4_ms).empty());
  EXPECT_TRUE(wheel.armed(id));

  const auto expired = fire(wheel, 5_ms);
  ASSERT_EQ(expired.size(), 1u);
  EXPECT_EQ(expired[0], id);
  EXPECT_FALSE(wheel.armed(id));
  EXPECT_EQ(wheel.deadline_of(id), 0u);
}

// The clock-edge contract: a timer armed exactly AT `now` fires on that
// advance; one armed a single tick later does not.
TEST(TimerWheel, ClockEdge) {
  TimerWheel wheel;
  (void)fire(wheel, 10_ms);
  const auto at_now = wheel.arm(10_ms);
  const auto one_later = wheel.arm(10_ms + 1);

  const auto expired = fire(wheel, 10_ms);
  ASSERT_EQ(expired.size(), 1u);
  EXPECT_EQ(expired[0], at_now);
  EXPECT_TRUE(wheel.armed(one_later));

  const auto next = fire(wheel, 10_ms + 1);
  ASSERT_EQ(next.size(), 1u);
  EXPECT_EQ(next[0], one_later);
}

// Arming a deadline already in the past must fire on the next advance,
// not a full wheel revolution later.
TEST(TimerWheel, PastDeadlineFiresOnNextAdvance) {
  TimerWheel wheel;
  (void)fire(wheel, 100_ms);
  const auto id = wheel.arm(1_ms);  // long behind the cursor
  const auto expired = fire(wheel, 100_ms);
  ASSERT_EQ(expired.size(), 1u);
  EXPECT_EQ(expired[0], id);
}

TEST(TimerWheel, CancelSuppressesExpiry) {
  TimerWheel wheel;
  const auto id = wheel.arm(2_ms);
  EXPECT_TRUE(wheel.cancel(id));
  EXPECT_FALSE(wheel.armed(id));
  EXPECT_FALSE(wheel.cancel(id));  // second cancel: already gone
  EXPECT_TRUE(fire(wheel, 10_ms).empty());
}

TEST(TimerWheel, CancelAfterExpiryFails) {
  TimerWheel wheel;
  const auto id = wheel.arm(1_ms);
  (void)fire(wheel, 1_ms);
  EXPECT_FALSE(wheel.cancel(id));
}

TEST(TimerWheel, RearmLaterMovesDeadline) {
  TimerWheel wheel;
  const auto id = wheel.arm(3_ms);
  EXPECT_TRUE(wheel.rearm(id, 30_ms));
  EXPECT_EQ(wheel.deadline_of(id), 30_ms);

  EXPECT_TRUE(fire(wheel, 3_ms).empty());  // stale slot dropped lazily
  EXPECT_TRUE(wheel.armed(id));

  const auto expired = fire(wheel, 30_ms);
  ASSERT_EQ(expired.size(), 1u);
  EXPECT_EQ(expired[0], id);
}

TEST(TimerWheel, RearmEarlierFiresEarlier) {
  TimerWheel wheel;
  const auto id = wheel.arm(50_ms);
  EXPECT_TRUE(wheel.rearm(id, 5_ms));
  const auto expired = fire(wheel, 5_ms);
  ASSERT_EQ(expired.size(), 1u);
  EXPECT_EQ(expired[0], id);
}

TEST(TimerWheel, RearmUnknownIdFails) {
  TimerWheel wheel;
  EXPECT_FALSE(wheel.rearm(12345, 1_ms));
  const auto id = wheel.arm(1_ms);
  (void)fire(wheel, 1_ms);
  EXPECT_FALSE(wheel.rearm(id, 2_ms));  // expired ids are forgotten
}

TEST(TimerWheel, NextDeadlineTracksEarliestLiveTimer) {
  TimerWheel wheel;
  EXPECT_EQ(wheel.next_deadline(), 0u);
  const auto a = wheel.arm(7_ms);
  (void)wheel.arm(3_ms);
  const auto c = wheel.arm(9_ms);
  EXPECT_EQ(wheel.next_deadline(), 3_ms);
  (void)fire(wheel, 3_ms);
  EXPECT_EQ(wheel.next_deadline(), 7_ms);
  EXPECT_TRUE(wheel.cancel(a));
  EXPECT_EQ(wheel.next_deadline(), 9_ms);
  EXPECT_TRUE(wheel.cancel(c));
  EXPECT_EQ(wheel.next_deadline(), 0u);
  EXPECT_TRUE(wheel.empty());
}

// Timers beyond the ring's horizon park in the overflow list and cascade
// in as the cursor approaches; they still fire at the right time.
TEST(TimerWheel, OverflowCascade) {
  TimerWheel wheel(/*shift=*/10, /*buckets=*/8);  // horizon = 8 << 10 ns
  const Time horizon = 8u << 10;
  const auto near = wheel.arm(512);
  const auto far = wheel.arm(horizon * 3 + 100);
  const auto very_far = wheel.arm(horizon * 40);
  EXPECT_EQ(wheel.size(), 3u);

  auto expired = fire(wheel, 1024);
  ASSERT_EQ(expired.size(), 1u);
  EXPECT_EQ(expired[0], near);
  EXPECT_TRUE(wheel.armed(far));

  // Step across several horizons in coarse jumps; the far timer must
  // fire exactly once, on the first advance at/after its deadline.
  expired = fire(wheel, horizon * 3 + 99);
  EXPECT_TRUE(expired.empty());
  expired = fire(wheel, horizon * 3 + 100);
  ASSERT_EQ(expired.size(), 1u);
  EXPECT_EQ(expired[0], far);

  // Cancelled overflow timers are dropped during cascade, not fired.
  EXPECT_TRUE(wheel.cancel(very_far));
  expired = fire(wheel, horizon * 50);
  EXPECT_TRUE(expired.empty());
  EXPECT_TRUE(wheel.empty());
}

// A burst of timers in the same bucket with distinct ns offsets drains
// incrementally: only those at/before `now` fire.
TEST(TimerWheel, SameBucketPartialDrain) {
  TimerWheel wheel(/*shift=*/10, /*buckets=*/8);
  std::vector<TimerWheel::Id> ids;
  for (Time t = 100; t <= 900; t += 100) ids.push_back(wheel.arm(t));
  auto expired = fire(wheel, 500);
  EXPECT_EQ(expired.size(), 5u);  // 100..500
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_TRUE(std::find(expired.begin(), expired.end(), ids[i]) != expired.end());
  }
  expired = fire(wheel, 900);
  EXPECT_EQ(expired.size(), 4u);
  EXPECT_TRUE(wheel.empty());
}

}  // namespace
}  // namespace rfs::sim

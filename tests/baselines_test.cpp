// Tests for the baseline FaaS platforms (AWS Lambda / OpenWhisk /
// Nightcore simulators) and the rmpi runtime.
#include <gtest/gtest.h>

#include "baselines/baselines.hpp"
#include "common/base64.hpp"
#include "fabric/fabric.hpp"
#include "rmpi/rmpi.hpp"

namespace rfs::baselines {
namespace {

struct BaselineFixture : ::testing::Test {
  void SetUp() override {
    eng.make_current();
    registry.add_echo();
  }

  /// Runs an invocation and returns (latency, output).
  template <typename P>
  std::pair<Duration, Bytes> timed_invoke(P& platform, const Bytes& payload) {
    Duration latency = 0;
    Bytes output;
    auto body = [&]() -> sim::Task<void> {
      const Time start = eng.now();
      auto result = co_await platform.invoke("echo", payload);
      latency = eng.now() - start;
      if (result.ok()) output = std::move(result).take();
    };
    sim::spawn(eng, body());
    eng.run();
    return {latency, output};
  }

  sim::Engine eng;
  rfaas::FunctionRegistry registry;
};

TEST_F(BaselineFixture, AwsWarmLatencyMatchesPaper) {
  AwsLambdaSim aws(eng, registry, AwsConfig{});
  Bytes payload(1024);
  fill_pattern(payload, 1);
  auto cold = timed_invoke(aws, payload);
  auto warm = timed_invoke(aws, payload);
  EXPECT_EQ(aws.cold_starts(), 1u);
  // Cold adds the microVM start.
  EXPECT_GT(cold.first, warm.first + 150_ms);
  // Warm 1 kB no-op: 19.64 ms reported in Fig. 1.
  EXPECT_NEAR(to_ms(warm.first), 19.64, 2.5);
  EXPECT_EQ(warm.second, payload);  // base64 round-trip is lossless
}

TEST_F(BaselineFixture, AwsLargePayloadIsBandwidthBound) {
  AwsLambdaSim aws(eng, registry, AwsConfig{});
  Bytes payload(5_MiB);
  fill_pattern(payload, 2);
  (void)timed_invoke(aws, Bytes(1024));  // warm the container
  auto big = timed_invoke(aws, payload);
  // ~600 ms at 5 MB in the paper (both directions bandwidth bound).
  EXPECT_GT(to_ms(big.first), 450.0);
  EXPECT_LT(to_ms(big.first), 1000.0);
  EXPECT_EQ(big.second, payload);
}

TEST_F(BaselineFixture, AwsRejectsOversizedPayload) {
  AwsLambdaSim aws(eng, registry, AwsConfig{});
  bool rejected = false;
  auto body = [&]() -> sim::Task<void> {
    Bytes big(7_MiB);
    auto result = co_await aws.invoke("echo", big);
    rejected = !result.ok() && result.error().code == 413;
  };
  sim::spawn(eng, body());
  eng.run();
  EXPECT_TRUE(rejected);
}

TEST_F(BaselineFixture, AwsCpuShareScalesComputeTime) {
  rfaas::CodePackage busy;
  busy.name = "busy";
  busy.entry = [](const void*, std::uint32_t, void*) -> std::uint32_t { return 0; };
  busy.cost = [](std::uint32_t) -> Duration { return 100_ms; };
  registry.add(std::move(busy));

  AwsConfig small_cfg;
  small_cfg.memory_mb = 512;  // ~29% of a vCPU
  AwsLambdaSim small_fn(eng, registry, small_cfg);
  AwsLambdaSim large_fn(eng, registry, AwsConfig{});

  Duration t_small = 0, t_large = 0;
  auto body = [&]() -> sim::Task<void> {
    Bytes payload(128);
    (void)co_await small_fn.invoke("busy", payload);  // cold
    Time s0 = eng.now();
    (void)co_await small_fn.invoke("busy", payload);
    t_small = eng.now() - s0;
    (void)co_await large_fn.invoke("busy", payload);  // cold
    s0 = eng.now();
    (void)co_await large_fn.invoke("busy", payload);
    t_large = eng.now() - s0;
  };
  sim::spawn(eng, body());
  eng.run();
  // 512 MB gets 512/1769 of a core: ~3.46x slower compute.
  EXPECT_GT(t_small, t_large + 200_ms);
}

TEST_F(BaselineFixture, OpenWhiskLatencyMatchesPaper) {
  OpenWhiskSim ow(eng, registry, OpenWhiskConfig{});
  Bytes payload(1024);
  fill_pattern(payload, 3);
  auto r = timed_invoke(ow, payload);
  // 119.18 ms base in Fig. 1.
  EXPECT_NEAR(to_ms(r.first), 119.2, 10.0);
  EXPECT_EQ(r.second, payload);
}

TEST_F(BaselineFixture, OpenWhiskChargesFileStagingAboveArgvLimit) {
  OpenWhiskSim ow(eng, registry, OpenWhiskConfig{});
  auto small_r = timed_invoke(ow, Bytes(100 * 1024));
  auto large_r = timed_invoke(ow, Bytes(200 * 1024));
  // Beyond bandwidth scaling, the 125 kB argv limit adds staging cost.
  const double bw_delta_ms =
      (base64::encoded_size(200 * 1024) - base64::encoded_size(100 * 1024)) / 1.79e6 * 1e3;
  EXPECT_GT(to_ms(large_r.first) - to_ms(small_r.first), bw_delta_ms + 10.0);
}

TEST_F(BaselineFixture, NightcoreLatencyMatchesPaper) {
  NightcoreSim nc(eng, registry, NightcoreConfig{});
  Bytes payload(1024);
  fill_pattern(payload, 4);
  auto r = timed_invoke(nc, payload);
  // 209.45 us base in Fig. 1.
  EXPECT_NEAR(to_us(r.first), 209.45, 15.0);
  EXPECT_EQ(r.second, payload);
}

TEST_F(BaselineFixture, PlatformOrderingMatchesFig1) {
  // rFaaS < nightcore < AWS < OpenWhisk for small payloads.
  AwsLambdaSim aws(eng, registry, AwsConfig{});
  OpenWhiskSim ow(eng, registry, OpenWhiskConfig{});
  NightcoreSim nc(eng, registry, NightcoreConfig{});
  Bytes payload(1024);
  (void)timed_invoke(aws, payload);  // warm AWS first
  auto aws_r = timed_invoke(aws, payload);
  auto ow_r = timed_invoke(ow, payload);
  auto nc_r = timed_invoke(nc, payload);
  EXPECT_LT(nc_r.first, aws_r.first);
  EXPECT_LT(aws_r.first, ow_r.first);
  // Speedup of nightcore over rFaaS-class latency (4 us) is ~23-39x in
  // the paper; verify the order of magnitude here.
  EXPECT_GT(to_us(nc_r.first) / 4.0, 20.0);
}

}  // namespace
}  // namespace rfs::baselines

namespace rfs::rmpi {
namespace {

struct RmpiFixture : ::testing::Test {
  void SetUp() override {
    eng.make_current();
    for (int i = 0; i < 2; ++i) {
      hosts.push_back(std::make_unique<sim::Host>("h" + std::to_string(i), 36, 16ull << 30));
      devices.push_back(fab.create_device("nic" + std::to_string(i), hosts.back().get()).id());
    }
  }

  sim::Engine eng;
  fabric::Fabric fab{eng};
  std::vector<std::unique_ptr<sim::Host>> hosts;
  std::vector<fabric::DeviceId> devices;

  [[nodiscard]] std::vector<sim::Host*> host_ptrs() {
    std::vector<sim::Host*> v;
    for (auto& h : hosts) v.push_back(h.get());
    return v;
  }
};

TEST_F(RmpiFixture, AllReduceComputesGlobalMaxAndSum) {
  World world(eng, fab.net(), host_ptrs(), devices, 8);
  std::vector<double> maxes(8), sums(8);
  auto done = [&]() -> sim::Task<void> {
    co_await world.run([&](Rank& r) -> sim::Task<void> {
      double v = static_cast<double>(r.rank() + 1);
      maxes[r.rank()] = co_await r.allreduce_max(v);
      sums[r.rank()] = co_await r.allreduce_sum(v);
    });
  };
  sim::spawn(eng, done());
  eng.run();
  for (int r = 0; r < 8; ++r) {
    EXPECT_DOUBLE_EQ(maxes[r], 8.0);
    EXPECT_DOUBLE_EQ(sums[r], 36.0);
  }
}

TEST_F(RmpiFixture, BarrierSynchronizesRanks) {
  World world(eng, fab.net(), host_ptrs(), devices, 4);
  Time slow_done = 0;
  std::vector<Time> after(4);
  auto done = [&]() -> sim::Task<void> {
    co_await world.run([&](Rank& r) -> sim::Task<void> {
      if (r.rank() == 0) {
        co_await sim::delay(5_ms);
        slow_done = sim::Engine::current()->now();
      }
      co_await r.barrier();
      after[r.rank()] = sim::Engine::current()->now();
    });
  };
  sim::spawn(eng, done());
  eng.run();
  for (int r = 0; r < 4; ++r) EXPECT_GE(after[r], slow_done);
}

TEST_F(RmpiFixture, SendRecvDeliversAcrossHosts) {
  World world(eng, fab.net(), host_ptrs(), devices, 2);
  Bytes received;
  auto done = [&]() -> sim::Task<void> {
    co_await world.run([&](Rank& r) -> sim::Task<void> {
      if (r.rank() == 0) {
        Bytes msg(100);
        fill_pattern(msg, 42);
        r.send(1, std::move(msg));
      } else {
        received = co_await r.recv(0);
      }
    });
  };
  sim::spawn(eng, done());
  eng.run();
  ASSERT_EQ(received.size(), 100u);
  Bytes expected(100);
  fill_pattern(expected, 42);
  EXPECT_EQ(received, expected);
}

TEST_F(RmpiFixture, ComputeOccupiesHostCores) {
  World world(eng, fab.net(), host_ptrs(), devices, 4);
  auto done = [&]() -> sim::Task<void> {
    co_await world.run([&](Rank& r) -> sim::Task<void> {
      co_await r.compute(10_ms);
    });
  };
  sim::spawn(eng, done());
  eng.run();
  // 4 ranks on 2x36-core hosts: fully parallel, finishes at 10 ms.
  EXPECT_EQ(eng.now(), 10_ms);
  EXPECT_EQ(hosts[0]->busy_ns() + hosts[1]->busy_ns(), 40_ms);
}

}  // namespace
}  // namespace rfs::rmpi

// Chaos-composed failover: the primary dies and a standby is promoted
// while every client<->manager control link drops, duplicates and
// reorders 5% of its messages. The blackout is no longer clean — calls
// die to loss as well as to the crash, retransmits race the redial
// loop, and duplicate replies arrive under a bumped session epoch.
// Seeded through RFS_CHAOS_SEED exactly like the fig19 suite, so a
// failing seed replays. Labeled `ha` AND `chaos` in CMake.
#include <gtest/gtest.h>

#include <cstdlib>

#include "cluster/harness.hpp"
#include "net/faulty.hpp"

namespace rfs::cluster {
namespace {

std::uint64_t chaos_seed() {
  const char* env = std::getenv("RFS_CHAOS_SEED");
  return env != nullptr ? std::strtoull(env, nullptr, 10) : 1ull;
}

// Manager kill + promotion under 5% symmetric link chaos: the composed
// failure mode the nightly seed sweep hammers. The invariants are the
// same as the clean-failover suite — chaos may slow recovery but must
// never corrupt it.
TEST(FailoverChaos, CrashUnderLossyLinksStaysConsistent) {
  auto spec = ScenarioSpec::uniform(/*executors=*/4, /*cores=*/8,
                                    /*memory_bytes=*/16ull << 30, /*clients=*/4);
  spec.config.journal_enabled = true;
  spec.config.executor_reconnect_attempts = 20;
  spec.config.executor_reconnect_backoff = 25_ms;
  spec.client_reconnect_attempts = 20;
  spec.client_reconnect_backoff = 25_ms;
  spec.inject_faults = true;
  spec.faults = net::FaultSpec::symmetric(0.05);
  spec.faults.delay_min = 100_us;
  spec.faults.delay_max = 1_ms;
  spec.fault_seed = chaos_seed();
  // Loss stretches call completion: widen the per-call retransmit
  // budget so chaos alone cannot kill a session the way a crash does.
  spec.session_options.max_retransmits = 8;
  spec.assert_drained = false;  // the test owns the leak assertion

  Harness h(spec);
  h.start();
  ASSERT_NE(h.attach_standby(), nullptr) << "seed " << chaos_seed();
  h.schedule_failover(/*kill_after=*/700_ms, /*promote_after=*/80_ms);

  LeaseWorkload w;
  w.workers_min = 1;
  w.workers_max = 2;
  w.memory_per_worker = 64ull << 20;
  w.hold_min = 20_ms;
  w.hold_max = 80_ms;
  w.think_min = 10_ms;
  w.think_max = 40_ms;
  w.lease_timeout = 2_s;
  w.subscribe_events = true;
  w.seed = 5 + chaos_seed();
  const auto trace = h.run_lease_workload(w, /*horizon=*/3_s);

  EXPECT_EQ(h.rm().manager_epoch(), 2u) << "seed " << chaos_seed();
  EXPECT_TRUE(h.rm().restored()) << "seed " << chaos_seed();
  EXPECT_GT(trace.granted, 0u) << "seed " << chaos_seed();
  EXPECT_EQ(trace.client_deaths, 0u) << "seed " << chaos_seed();
  EXPECT_EQ(trace.double_grants, 0u) << "seed " << chaos_seed();
  EXPECT_GE(trace.reconnects, 4u) << "seed " << chaos_seed();
  // Chaos-era losses drain through expiry: grace covers a full lease
  // timeout past the horizon.
  EXPECT_EQ(h.leaked_leases_after(3_s), 0u) << "seed " << chaos_seed();
}

}  // namespace
}  // namespace rfs::cluster

// Data-plane fault-tolerance tests: the WorkerFaultInjector's replay
// discipline and double-execution registry, plus end-to-end recovery —
// crash/stuck/gray/corrupt workers survived by deadlines + idempotent
// retries, hedging against gray executors, and breaker-driven
// quarantine through the resource manager. Labeled `dataplane-chaos`
// in CMake so `ctest -L dataplane-chaos` runs this suite alone.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>

#include "cluster/harness.hpp"
#include "common/units.hpp"
#include "net/faulty.hpp"
#include "rfaas/invoker.hpp"

namespace rfs {
namespace {

TEST(WorkerFaultInjector, SameSeedReplaysIdenticalDecisionSequence) {
  net::WorkerFaultInjector a(0xFEED);
  net::WorkerFaultInjector b(0xFEED);
  net::WorkerFaultSpec spec;
  spec.crash_p = 0.1;
  spec.stuck_p = 0.1;
  spec.gray_p = 0.2;
  spec.corrupt_p = 0.1;
  a.set_default(spec);
  b.set_default(spec);
  for (int i = 0; i < 5000; ++i) {
    const auto da = a.decide(3);
    const auto db = b.decide(3);
    EXPECT_EQ(da.crash, db.crash) << "diverged at dispatch " << i;
    EXPECT_EQ(da.stuck, db.stuck) << "diverged at dispatch " << i;
    EXPECT_EQ(da.corrupt, db.corrupt) << "diverged at dispatch " << i;
    EXPECT_EQ(da.gray_delay, db.gray_delay) << "diverged at dispatch " << i;
  }
  EXPECT_EQ(a.counters().crashes, b.counters().crashes);
  EXPECT_EQ(a.counters().grays, b.counters().grays);
}

TEST(WorkerFaultInjector, PerExecutorSpecOverridesDefault) {
  net::WorkerFaultInjector inj(7);
  net::WorkerFaultSpec gray;
  gray.gray_p = 1.0;
  gray.gray_pause_min = 3_ms;
  gray.gray_pause_max = 5_ms;
  inj.set_executor(/*device=*/9, gray);
  for (int i = 0; i < 200; ++i) {
    const auto on_gray = inj.decide(9);
    EXPECT_GE(on_gray.gray_delay, 3_ms);
    EXPECT_LE(on_gray.gray_delay, 5_ms);
    const auto elsewhere = inj.decide(8);  // default spec: healthy
    EXPECT_EQ(elsewhere.gray_delay, 0u);
    EXPECT_FALSE(elsewhere.crash);
  }
  EXPECT_EQ(inj.counters().grays, 200u);
}

TEST(WorkerFaultInjector, ExecutionRegistryCountsDoubles) {
  net::WorkerFaultInjector inj(1);
  EXPECT_TRUE(inj.note_execution(42));
  EXPECT_FALSE(inj.note_execution(42));  // the double-execution gate
  EXPECT_TRUE(inj.note_execution(43));
  // Tag 0 means "fault tolerance off": never tracked, never a double.
  EXPECT_TRUE(inj.note_execution(0));
  EXPECT_TRUE(inj.note_execution(0));
  EXPECT_EQ(inj.counters().double_executions, 1u);
}

// ---------------------------------------------------------------------
// End-to-end recovery through the harness.

struct FaultRun {
  unsigned ok = 0;
  unsigned failed = 0;
  std::uint64_t retries = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t corruptions_detected = 0;
  std::uint64_t hedges = 0;
  std::uint64_t hedge_wins = 0;
  std::uint64_t breaker_trips = 0;
  std::uint64_t rm_quarantined = 0;
  net::WorkerFaultInjector::Counters injected{};
};

struct FaultRunOptions {
  net::WorkerFaultSpec fleet{};    // default spec for every executor
  net::WorkerFaultSpec gray{};     // extra spec pinned to executor 0
  unsigned reps = 40;
  Duration think = 0;              // inter-invocation pacing
  bool hedging = false;
  bool quarantine_tuning = false;  // short Open windows + deep budget
  std::uint32_t retry_budget = 3;
};

FaultRun run_faulted(const FaultRunOptions& opt, std::uint64_t seed = 1) {
  auto spec = cluster::ScenarioSpec::uniform(/*executors=*/4, /*cores=*/4,
                                             /*memory_bytes=*/16ull << 30, /*clients=*/1);
  auto& ft = spec.config.fault_tolerance;
  ft.invocation_deadline = 1_ms;
  ft.retry_budget = opt.retry_budget;
  ft.checksum = true;
  if (opt.hedging) {
    ft.hedging = true;
    ft.hedge_delay = 10_us;
  }
  if (opt.quarantine_tuning) {
    ft.retry_budget = 6;
    ft.breaker_open_timeout = 100_us;
  }
  spec.inject_worker_faults = true;
  spec.worker_faults = opt.fleet;
  spec.fault_seed = seed;

  cluster::Harness h(spec);
  h.registry().add_echo();
  h.start();
  if (opt.gray.enabled()) {
    h.worker_fault_injector()->set_executor(h.executor(0).device().id(), opt.gray);
  }

  FaultRun run;
  auto invoker = h.make_invoker(0, /*client_id=*/1);
  auto scenario = [&]() -> sim::Task<void> {
    rfaas::AllocationSpec alloc;
    alloc.function_name = "echo";
    alloc.workers = 8;  // 4 on (possibly gray) executor 0, 4 elsewhere
    alloc.policy = rfaas::InvocationPolicy::HotAlways;
    auto st = co_await invoker->allocate(alloc);
    EXPECT_TRUE(st.ok()) << (st.ok() ? "" : st.error().message);
    if (!st.ok()) co_return;
    invoker->reserve_slots(4, 4096, 4096);

    std::array<std::uint8_t, 512> payload;
    payload.fill(0x42);
    for (unsigned i = 0; i < opt.reps; ++i) {
      auto r = co_await invoker->invoke_pooled(0, payload);
      if (r.ok) {
        ++run.ok;
      } else {
        ++run.failed;
      }
      if (opt.think != 0) co_await sim::delay(opt.think);
    }
  };
  h.spawn(scenario());
  h.run(h.engine().now() + 600_s);

  run.retries = invoker->ft_retries();
  run.timeouts = invoker->ft_timeouts();
  run.corruptions_detected = invoker->ft_corruptions();
  run.hedges = invoker->hedges_launched();
  run.hedge_wins = invoker->hedge_wins();
  run.breaker_trips = invoker->breaker_trips();
  run.rm_quarantined = h.rm().quarantined_executors();
  run.injected = h.worker_fault_injector()->counters();
  return run;
}

TEST(WorkerFaults, CrashesSurvivedByIdempotentRetries) {
  FaultRunOptions opt;
  opt.fleet.crash_p = 0.05;
  const auto run = run_faulted(opt);
  EXPECT_EQ(run.failed, 0u);
  EXPECT_GT(run.injected.crashes, 0u) << "chaos schedule injected nothing";
  EXPECT_GE(run.retries, run.injected.crashes);  // each crash costs >= 1 retry
  EXPECT_EQ(run.injected.double_executions, 0u);
}

TEST(WorkerFaults, StuckSandboxesSurfaceAsTimeoutsThenRecover) {
  FaultRunOptions opt;
  opt.fleet.stuck_p = 0.05;
  const auto run = run_faulted(opt);
  EXPECT_EQ(run.failed, 0u);
  EXPECT_GT(run.injected.stucks, 0u);
  EXPECT_GE(run.timeouts, run.injected.stucks);  // stuck = deadline expiry
  EXPECT_EQ(run.injected.double_executions, 0u);
}

TEST(WorkerFaults, CorruptionDetectedByChecksumAndRetried) {
  FaultRunOptions opt;
  opt.fleet.corrupt_p = 0.1;
  const auto run = run_faulted(opt);
  EXPECT_EQ(run.failed, 0u);
  EXPECT_GT(run.injected.corruptions, 0u);
  // Every injected flip is caught by the response checksum — none leak
  // into a "successful" result.
  EXPECT_EQ(run.corruptions_detected, run.injected.corruptions);
  EXPECT_EQ(run.injected.double_executions, 0u);
}

TEST(WorkerFaults, ExhaustedRetryBudgetSurfacesTheTimeout) {
  FaultRunOptions opt;
  opt.fleet.stuck_p = 1.0;  // every worker wedges, everywhere
  // 2 attempts x 3 invocations = 6 wedged workers of the 8 held: each
  // invocation fails within its budget while free capacity remains (a
  // fully wedged pool correctly blocks on capacity instead).
  opt.retry_budget = 1;
  opt.reps = 3;
  const auto run = run_faulted(opt);
  // With all attempts wedged the deadline must surface to the caller
  // instead of hanging the client coroutine forever.
  EXPECT_EQ(run.ok, 0u);
  EXPECT_EQ(run.failed, 3u);
  EXPECT_GT(run.timeouts, 0u);
}

TEST(WorkerFaults, HedgingMasksGrayExecutorLatency) {
  FaultRunOptions opt;
  opt.gray.gray_p = 0.8;
  opt.gray.gray_pause_min = 2_ms;
  opt.gray.gray_pause_max = 20_ms;
  opt.hedging = true;
  opt.reps = 20;
  const auto run = run_faulted(opt);
  EXPECT_EQ(run.failed, 0u);
  EXPECT_GT(run.injected.grays, 0u);
  EXPECT_GT(run.hedges, 0u);
  EXPECT_GT(run.hedge_wins, 0u) << "backup on a healthy device should beat a gray pause";
  EXPECT_EQ(run.injected.double_executions, 0u);
}

TEST(WorkerFaults, RepeatedBreakerTripsQuarantineTheGrayExecutor) {
  FaultRunOptions opt;
  opt.gray.gray_p = 0.9;
  opt.gray.gray_pause_min = 2_ms;
  opt.gray.gray_pause_max = 4_ms;
  opt.quarantine_tuning = true;
  opt.reps = 30;
  // Paced client: reaped gray workers need their pause to elapse before
  // they rejoin the pool and can be probed (and re-trip the breaker).
  opt.think = 1_ms;
  const auto run = run_faulted(opt);
  EXPECT_EQ(run.failed, 0u);
  EXPECT_GE(run.breaker_trips, 2u);
  EXPECT_GE(run.rm_quarantined, 1u) << "manager never drained the gray executor";
  EXPECT_EQ(run.injected.double_executions, 0u);
}

}  // namespace
}  // namespace rfs

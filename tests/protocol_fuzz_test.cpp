// Property-style robustness tests of the wire codecs: every prefix
// truncation and random byte corruption of every message type must be
// rejected cleanly (error Result) — never crash, never mis-decode into a
// different type's fields.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "net/http.hpp"
#include "rfaas/protocol.hpp"

namespace rfs::rfaas {
namespace {

std::vector<Bytes> sample_messages() {
  std::vector<Bytes> msgs;
  RegisterExecutorMsg reg;
  reg.device = 3;
  reg.alloc_port = 7000;
  reg.rdma_port = 7001;
  reg.cores = 36;
  reg.memory_bytes = 1ull << 36;
  reg.epoch = 4;
  reg.request_id = (4ull << 32) | 1;
  msgs.push_back(encode(reg));
  msgs.push_back(encode(RegisterOkMsg{6001, 0xFEEDFACE, 77, (4ull << 32) | 1}));
  msgs.push_back(encode(LeaseRequestMsg{9, 16, 1_GiB, 60_s, (1ull << 32) | 9}));
  LeaseGrantMsg grant;
  grant.lease_id = 11;
  grant.workers = 4;
  grant.request_id = (1ull << 32) | 9;
  msgs.push_back(encode(grant));
  msgs.push_back(encode_lease_error("nope"));
  msgs.push_back(encode_lease_error("stale epoch", (2ull << 32) | 3));
  LeaseDeniedMsg denied;
  denied.reason = static_cast<std::uint8_t>(DenialReason::Overload);
  denied.retry_after = 25_ms;
  denied.request_id = (1ull << 32) | 10;
  msgs.push_back(encode(denied));
  AllocationRequestMsg alloc;
  alloc.lease_id = 5;
  alloc.workers = 2;
  msgs.push_back(encode(alloc));
  AllocationReplyMsg reply;
  reply.ok = true;
  reply.sandbox_id = 8;
  reply.error = "";
  msgs.push_back(encode(reply));
  SubmitCodeMsg code;
  code.function_name = "echo";
  code.code_size = 7880;
  msgs.push_back(encode(code));
  msgs.push_back(encode(SubmitCodeOkMsg{3}));
  msgs.push_back(encode(DeallocateMsg{1, 2}));
  msgs.push_back(encode(ReleaseResourcesMsg{1, 2, 3, (5ull << 32) | 8}));
  msgs.push_back(encode(ReleaseOkMsg{1, (5ull << 32) | 8}));
  msgs.push_back(encode(ExtendLeaseMsg{(7ull << 48) | 42, 30_s, (6ull << 32) | 2}));
  msgs.push_back(encode(ExtendOkMsg{(7ull << 48) | 42, 90_s, (6ull << 32) | 2}));
  BatchAllocateMsg batch;
  batch.client_id = 9;
  batch.workers = 32;
  batch.memory_bytes = 256ull << 20;
  batch.timeout = 60_s;
  batch.mode = 1;
  msgs.push_back(encode(batch));
  BatchGrantedMsg granted;
  granted.complete = true;
  LeaseGrantMsg g1;
  g1.lease_id = (1ull << 48) | 7;
  g1.workers = 4;
  granted.grants = {g1, LeaseGrantMsg{}};
  granted.error = "";
  msgs.push_back(encode(granted));
  msgs.push_back(encode(LeaseRenewedMsg{(3ull << 48) | 5, 120_s}));
  LeaseTerminatedMsg term;
  term.lease_id = (2ull << 48) | 9;
  term.reason = static_cast<std::uint8_t>(TerminationReason::Rebalance);
  term.evicted_at = 45_s;
  term.seq = 12;
  msgs.push_back(encode(term));
  LeasesTerminatedMsg sweep;
  sweep.reason = static_cast<std::uint8_t>(TerminationReason::QuotaPressure);
  sweep.evicted_at = 46_s;
  sweep.lease_ids = {(2ull << 48) | 9, (2ull << 48) | 10};
  sweep.seq = 13;
  msgs.push_back(encode(sweep));
  msgs.push_back(encode(SubscribeEventsMsg{77}));
  JournalRecordMsg rec;
  rec.seq = 17;
  rec.op = 2;  // journal::Op::Grant
  rec.lease_id = (3ull << 48) | 9;
  rec.client_id = 5;
  rec.executor = (3ull << 48) | 1;
  rec.workers = 4;
  rec.memory = 256ull << 20;
  rec.time = 90_s;
  rec.aux = 1;
  rec.aux2 = (7ull << 32) | 36;
  rec.checksum = 0xDEADBEEFCAFEull;
  msgs.push_back(encode(rec));
  msgs.push_back(encode(SnapshotOfferMsg{2, 4096, 0xFACEFEEDull, 12}));
  msgs.push_back(encode(FailoverAnnounceMsg{2, 4100, 7_s}));
  msgs.push_back(encode(LeaseRevalidateMsg{5, (3ull << 48) | 9, (4ull << 32) | 2}));
  msgs.push_back(encode(InvocationCancelMsg{7, (2ull << 32) | 15, 0}));
  HealthReportMsg health;
  health.client_id = 7;
  health.device = 3;
  health.latency_us = 812;
  health.ok_count = 40;
  health.fail_count = 3;
  health.request_id = (5ull << 32) | 21;
  msgs.push_back(encode(health));
  msgs.push_back(encode(HealthReportOkMsg{(5ull << 32) | 21}));
  return msgs;
}

/// Tries every decoder on `raw`; returns how many accepted it.
int accepted_by_any(const Bytes& raw) {
  int n = 0;
  n += decode_register(raw).ok();
  n += decode_register_ok(raw).ok();
  n += decode_lease_request(raw).ok();
  n += decode_lease_grant(raw).ok();
  n += decode_lease_error(raw).ok();
  n += decode_lease_denied(raw).ok();
  n += decode_allocation_request(raw).ok();
  n += decode_allocation_reply(raw).ok();
  n += decode_submit_code(raw).ok();
  n += decode_submit_code_ok(raw).ok();
  n += decode_deallocate(raw).ok();
  n += decode_release(raw).ok();
  n += decode_release_ok(raw).ok();
  n += decode_extend_lease(raw).ok();
  n += decode_extend_ok(raw).ok();
  n += decode_batch_allocate(raw).ok();
  n += decode_batch_granted(raw).ok();
  n += decode_lease_renewed(raw).ok();
  n += decode_lease_terminated(raw).ok();
  n += decode_leases_terminated(raw).ok();
  n += decode_subscribe_events(raw).ok();
  n += decode_journal_record(raw).ok();
  n += decode_snapshot_offer(raw).ok();
  n += decode_failover_announce(raw).ok();
  n += decode_lease_revalidate(raw).ok();
  n += decode_invocation_cancel(raw).ok();
  n += decode_health_report(raw).ok();
  n += decode_health_report_ok(raw).ok();
  return n;
}

TEST(ProtocolFuzz, EveryMessageDecodedByExactlyOneDecoder) {
  for (const auto& msg : sample_messages()) {
    EXPECT_EQ(accepted_by_any(msg), 1) << "type byte " << int(msg[0]);
  }
}

TEST(ProtocolFuzz, AllPrefixTruncationsRejected) {
  for (const auto& msg : sample_messages()) {
    // SubmitCode tolerates trailing padding by design (the code bytes),
    // but a *truncated* message must never decode.
    for (std::size_t keep = 0; keep < msg.size(); ++keep) {
      Bytes cut(msg.begin(), msg.begin() + static_cast<std::ptrdiff_t>(keep));
      const auto t_full = peek_type(msg);
      const auto t_cut = peek_type(cut);
      if (!t_cut.ok()) continue;  // unknown type byte: fine
      if (t_cut.value() != t_full.value()) continue;
      // Same type byte but shorter body: the matching decoder must fail.
      EXPECT_EQ(accepted_by_any(cut), 0)
          << "type " << int(msg[0]) << " accepted a " << keep << "-byte prefix of "
          << msg.size();
    }
  }
}

TEST(ProtocolHardened, RequestIdEpochAndSeqRoundTrip) {
  // Every lease-critical field added for lossy-network hardening must
  // survive an encode/decode roundtrip exactly.
  RegisterExecutorMsg reg;
  reg.device = 3;
  reg.epoch = 9;
  reg.request_id = (9ull << 32) | 4;
  auto rdec = decode_register(encode(reg));
  ASSERT_TRUE(rdec.ok());
  EXPECT_EQ(rdec.value().epoch, 9u);
  EXPECT_EQ(rdec.value().request_id, (9ull << 32) | 4);

  auto req = decode_lease_request(encode(LeaseRequestMsg{9, 16, 1_GiB, 60_s, 42}));
  ASSERT_TRUE(req.ok());
  EXPECT_EQ(req.value().request_id, 42u);

  auto rel = decode_release(encode(ReleaseResourcesMsg{1, 2, 3, 55}));
  ASSERT_TRUE(rel.ok());
  EXPECT_EQ(rel.value().request_id, 55u);

  auto rok = decode_release_ok(encode(ReleaseOkMsg{7, 55}));
  ASSERT_TRUE(rok.ok());
  EXPECT_EQ(rok.value().lease_id, 7u);
  EXPECT_EQ(rok.value().request_id, 55u);

  LeaseTerminatedMsg term;
  term.lease_id = 5;
  term.seq = 31;
  auto tdec = decode_lease_terminated(encode(term));
  ASSERT_TRUE(tdec.ok());
  EXPECT_EQ(tdec.value().seq, 31u);

  LeasesTerminatedMsg sweep;
  sweep.lease_ids = {1, 2, 3};
  sweep.seq = 32;
  auto sdec = decode_leases_terminated(encode(sweep));
  ASSERT_TRUE(sdec.ok());
  EXPECT_EQ(sdec.value().seq, 32u);
  EXPECT_EQ(sdec.value().lease_ids.size(), 3u);
}

TEST(ProtocolHardened, ReplyRequestIdExtractsFromEveryReplyType) {
  // The retransmission FSM matches replies to in-flight requests via
  // reply_request_id(); it must work for every type is_reply_type()
  // claims is a reply, and refuse everything else.
  const std::uint64_t id = (3ull << 32) | 17;
  LeaseGrantMsg grant;
  grant.lease_id = 11;
  grant.request_id = id;
  BatchGrantedMsg batch;
  batch.complete = true;
  batch.request_id = id;
  batch.error = "";
  LeaseDeniedMsg denied;
  denied.reason = static_cast<std::uint8_t>(DenialReason::Overload);
  denied.retry_after = 10_ms;
  denied.request_id = id;
  const std::vector<Bytes> replies = {
      encode(grant),
      encode_lease_error("no capacity", id),
      encode(denied),
      encode(ExtendOkMsg{99, 60_s, id}),
      encode(batch),
      encode(ReleaseOkMsg{4, id}),
      encode(RegisterOkMsg{6001, 1, 2, id}),
  };
  for (const auto& raw : replies) {
    auto type = peek_type(raw);
    ASSERT_TRUE(type.ok());
    EXPECT_TRUE(is_reply_type(type.value())) << "type " << int(raw[0]);
    auto rid = reply_request_id(raw);
    ASSERT_TRUE(rid.ok()) << "type " << int(raw[0]);
    EXPECT_EQ(rid.value(), id) << "type " << int(raw[0]);
  }
  // Non-reply messages are not matchable.
  EXPECT_FALSE(is_reply_type(MsgType::LeaseRequest));
  EXPECT_FALSE(is_reply_type(MsgType::LeaseTerminated));
  EXPECT_FALSE(reply_request_id(encode(LeaseRequestMsg{1, 1, 1_GiB, 1_s, 5})).ok());
}

TEST(ProtocolHardened, DuplicateDeliveryDecodesIdentically) {
  // A duplicated frame is byte-identical; decoding it twice must yield
  // the same fields both times (codecs are stateless — the dedup layer
  // above relies on that).
  const Bytes raw = encode(LeaseRequestMsg{9, 16, 1_GiB, 60_s, (8ull << 32) | 6});
  auto first = decode_lease_request(raw);
  auto second = decode_lease_request(raw);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first.value().client_id, second.value().client_id);
  EXPECT_EQ(first.value().request_id, second.value().request_id);
  EXPECT_EQ(first.value().request_id, (8ull << 32) | 6);
}

TEST(ProtocolHardened, FailoverMessagesRoundTripEveryField) {
  // The HA wire messages carry replicated state: any silently dropped
  // or misaligned field corrupts a standby, so every field is pinned.
  JournalRecordMsg rec;
  rec.seq = 0xA1B2C3D4E5ull;
  rec.op = 9;
  rec.lease_id = (7ull << 48) | 1234;
  rec.client_id = 0xCAFE;
  rec.executor = (7ull << 48) | 5;
  rec.workers = 17;
  rec.memory = 3ull << 33;
  rec.time = 123456789;
  rec.aux = 0x1122334455667788ull;
  rec.aux2 = 0x99AABBCCDDEEFF00ull;
  rec.checksum = 0x0123456789ABCDEFull;
  auto rdec = decode_journal_record(encode(rec));
  ASSERT_TRUE(rdec.ok());
  EXPECT_EQ(rdec.value().seq, rec.seq);
  EXPECT_EQ(rdec.value().op, rec.op);
  EXPECT_EQ(rdec.value().lease_id, rec.lease_id);
  EXPECT_EQ(rdec.value().client_id, rec.client_id);
  EXPECT_EQ(rdec.value().executor, rec.executor);
  EXPECT_EQ(rdec.value().workers, rec.workers);
  EXPECT_EQ(rdec.value().memory, rec.memory);
  EXPECT_EQ(rdec.value().time, rec.time);
  EXPECT_EQ(rdec.value().aux, rec.aux);
  EXPECT_EQ(rdec.value().aux2, rec.aux2);
  EXPECT_EQ(rdec.value().checksum, rec.checksum);

  auto odec = decode_snapshot_offer(encode(SnapshotOfferMsg{3, 777, 0xD1CEull, 42}));
  ASSERT_TRUE(odec.ok());
  EXPECT_EQ(odec.value().manager_epoch, 3u);
  EXPECT_EQ(odec.value().upto_seq, 777u);
  EXPECT_EQ(odec.value().digest, 0xD1CEull);
  EXPECT_EQ(odec.value().lease_count, 42u);

  auto adec = decode_failover_announce(encode(FailoverAnnounceMsg{4, 888, 9_s}));
  ASSERT_TRUE(adec.ok());
  EXPECT_EQ(adec.value().manager_epoch, 4u);
  EXPECT_EQ(adec.value().applied_seq, 888u);
  EXPECT_EQ(adec.value().promoted_at, 9_s);

  auto vdec = decode_lease_revalidate(encode(LeaseRevalidateMsg{6, 999, (5ull << 32) | 1}));
  ASSERT_TRUE(vdec.ok());
  EXPECT_EQ(vdec.value().client_id, 6u);
  EXPECT_EQ(vdec.value().lease_id, 999u);
  EXPECT_EQ(vdec.value().request_id, (5ull << 32) | 1);

  // LeaseRevalidate is a request (its replies reuse ExtendOk/LeaseError);
  // the journal/snapshot/announce stream messages are not call replies
  // either — none may be matchable by the retransmission FSM.
  EXPECT_FALSE(is_reply_type(MsgType::LeaseRevalidate));
  EXPECT_FALSE(is_reply_type(MsgType::JournalRecord));
  EXPECT_FALSE(is_reply_type(MsgType::SnapshotOffer));
  EXPECT_FALSE(is_reply_type(MsgType::FailoverAnnounce));
  EXPECT_FALSE(reply_request_id(encode(LeaseRevalidateMsg{1, 2, 3})).ok());
}

TEST(ProtocolFastPath, FailoverEncodeIntoMatchesTheBytesApiByteForByte) {
  // JournalRecord is the replication hot path (one frame per lease
  // transition): the zero-allocation encoder must emit exactly the
  // Bytes-API frame, and undersized buffers must refuse untouched.
  JournalRecordMsg rec;
  rec.seq = 31;
  rec.op = 4;
  rec.lease_id = (1ull << 48) | 2;
  rec.client_id = 9;
  rec.executor = (1ull << 48) | 1;
  rec.workers = 2;
  rec.memory = 64ull << 20;
  rec.time = 42_s;
  rec.aux = 3;
  rec.aux2 = 0;
  rec.checksum = 0xBEEF;
  SnapshotOfferMsg offer{2, 100, 0xABCD, 7};
  FailoverAnnounceMsg ann{2, 101, 5_s};
  LeaseRevalidateMsg reval{9, (1ull << 48) | 2, (6ull << 32) | 4};

  std::uint8_t buf[128];
  EXPECT_EQ(encode_into(rec, buf, sizeof buf), kJournalRecordWireSize);
  EXPECT_EQ(Bytes(buf, buf + kJournalRecordWireSize), encode(rec));
  EXPECT_EQ(encode_into(offer, buf, sizeof buf), kSnapshotOfferWireSize);
  EXPECT_EQ(Bytes(buf, buf + kSnapshotOfferWireSize), encode(offer));
  EXPECT_EQ(encode_into(ann, buf, sizeof buf), kFailoverAnnounceWireSize);
  EXPECT_EQ(Bytes(buf, buf + kFailoverAnnounceWireSize), encode(ann));
  EXPECT_EQ(encode_into(reval, buf, sizeof buf), kLeaseRevalidateWireSize);
  EXPECT_EQ(Bytes(buf, buf + kLeaseRevalidateWireSize), encode(reval));

  EXPECT_EQ(encode_into(rec, buf, kJournalRecordWireSize - 1), 0u);
  EXPECT_EQ(encode_into(offer, buf, kSnapshotOfferWireSize - 1), 0u);
  EXPECT_EQ(encode_into(ann, buf, 0), 0u);
  EXPECT_EQ(encode_into(reval, buf, kLeaseRevalidateWireSize - 1), 0u);

  // Span decode from the stack buffer, truncation and type confusion.
  const std::size_t n = encode_into(rec, buf, sizeof buf);
  EXPECT_TRUE(decode_journal_record(std::span<const std::uint8_t>(buf, n)).ok());
  EXPECT_FALSE(decode_journal_record(std::span<const std::uint8_t>(buf, n - 1)).ok());
  buf[0] = static_cast<std::uint8_t>(MsgType::SnapshotOffer);
  EXPECT_FALSE(decode_journal_record(std::span<const std::uint8_t>(buf, n)).ok());
}

TEST(ProtocolFastPath, FaultToleranceMessagesRoundTripAndRefuseTruncation) {
  // The data-plane FT messages ride the hot path exactly when the fleet
  // is sick: the zero-allocation encoders must match the Bytes API, and
  // every field must survive the roundtrip.
  InvocationCancelMsg cancel{9, (3ull << 32) | 77, (6ull << 32) | 5};
  HealthReportMsg health;
  health.client_id = 9;
  health.device = 2;
  health.latency_us = 1500;
  health.ok_count = 12;
  health.fail_count = 8;
  health.request_id = (6ull << 32) | 6;
  HealthReportOkMsg ack{(6ull << 32) | 6};

  std::uint8_t buf[64];
  EXPECT_EQ(encode_into(cancel, buf, sizeof buf), kInvocationCancelWireSize);
  EXPECT_EQ(Bytes(buf, buf + kInvocationCancelWireSize), encode(cancel));
  auto cdec = decode_invocation_cancel(std::span<const std::uint8_t>(buf, kInvocationCancelWireSize));
  ASSERT_TRUE(cdec.ok());
  EXPECT_EQ(cdec.value().client_id, cancel.client_id);
  EXPECT_EQ(cdec.value().invocation_tag, cancel.invocation_tag);
  EXPECT_EQ(cdec.value().request_id, cancel.request_id);

  EXPECT_EQ(encode_into(health, buf, sizeof buf), kHealthReportWireSize);
  EXPECT_EQ(Bytes(buf, buf + kHealthReportWireSize), encode(health));
  auto hdec = decode_health_report(std::span<const std::uint8_t>(buf, kHealthReportWireSize));
  ASSERT_TRUE(hdec.ok());
  EXPECT_EQ(hdec.value().client_id, health.client_id);
  EXPECT_EQ(hdec.value().device, health.device);
  EXPECT_EQ(hdec.value().latency_us, health.latency_us);
  EXPECT_EQ(hdec.value().ok_count, health.ok_count);
  EXPECT_EQ(hdec.value().fail_count, health.fail_count);
  EXPECT_EQ(hdec.value().request_id, health.request_id);

  EXPECT_EQ(encode_into(ack, buf, sizeof buf), kHealthReportOkWireSize);
  EXPECT_EQ(Bytes(buf, buf + kHealthReportOkWireSize), encode(ack));
  auto adec = decode_health_report_ok(std::span<const std::uint8_t>(buf, kHealthReportOkWireSize));
  ASSERT_TRUE(adec.ok());
  EXPECT_EQ(adec.value().request_id, ack.request_id);

  // Undersized buffers refuse without writing; truncations reject.
  EXPECT_EQ(encode_into(cancel, buf, kInvocationCancelWireSize - 1), 0u);
  EXPECT_EQ(encode_into(health, buf, kHealthReportWireSize - 1), 0u);
  EXPECT_EQ(encode_into(ack, buf, 0), 0u);

  // The HealthReport ack is a matchable reply (retransmission FSM);
  // the fire-and-forget cancel is not.
  EXPECT_TRUE(is_reply_type(MsgType::HealthReportOk));
  EXPECT_FALSE(is_reply_type(MsgType::InvocationCancel));
  EXPECT_FALSE(is_reply_type(MsgType::HealthReport));
}

TEST(ProtocolFastPath, InvocationHeaderRoundTripsAllFaultToleranceFields) {
  // The 32-byte RDMA scratchpad header carries the deadline, idempotency
  // tag and payload checksum the whole FT design hangs off — any packing
  // drift silently disables retries/dedup, so every field is pinned.
  InvocationHeader hdr;
  hdr.result_addr = 0xDEADBEEF00ull;
  hdr.result_rkey = 0xFACE;
  hdr.invocation_tag = (9ull << 32) | 1234;
  hdr.deadline = 5_ms;
  hdr.checksum = payload_checksum(reinterpret_cast<const std::uint8_t*>("abc"), 3);

  std::uint8_t wire[InvocationHeader::kSize];
  hdr.pack(wire);
  const auto back = InvocationHeader::unpack(wire);
  EXPECT_EQ(back.result_addr, hdr.result_addr);
  EXPECT_EQ(back.result_rkey, hdr.result_rkey);
  EXPECT_EQ(back.invocation_tag, hdr.invocation_tag);
  EXPECT_EQ(back.deadline, hdr.deadline);
  EXPECT_EQ(back.checksum, hdr.checksum);

  // fold12 never emits 0 (0 = "not checked" on the wire), and the result
  // imm carries it losslessly next to the id + reject bit.
  for (std::uint32_t c : {0u, 1u, 0xFFFu, 0xABCDEFu, 0xFFFFFFFFu}) {
    const std::uint32_t f = fold12(c);
    EXPECT_NE(f, 0u);
    EXPECT_LE(f, 0xFFFu);
    const std::uint32_t imm = Imm::result(0x7ABCD, false, f);
    EXPECT_EQ(Imm::result_checksum(imm), f);
    EXPECT_EQ(Imm::result_id(imm), 0x7ABCDu);
    EXPECT_FALSE(Imm::rejected(imm));
  }
}

TEST(ProtocolFuzz, RandomCorruptionNeverCrashes) {
  Rng rng(123);
  auto msgs = sample_messages();
  for (int round = 0; round < 2000; ++round) {
    Bytes msg = msgs[rng.uniform_int(0, msgs.size() - 1)];
    // Flip 1-4 random bytes.
    const int flips = static_cast<int>(rng.uniform_int(1, 4));
    for (int f = 0; f < flips; ++f) {
      msg[rng.uniform_int(0, msg.size() - 1)] ^= static_cast<std::uint8_t>(rng.next());
    }
    // Must not crash; at most one decoder may accept (corruption inside
    // payload fields can still parse — that is the transport's job to
    // catch, not the codec's).
    (void)accepted_by_any(msg);
  }
  SUCCEED();
}

TEST(ProtocolFastPath, EncodeIntoMatchesTheBytesApiByteForByte) {
  // The zero-allocation fast path must produce exactly the wire bytes
  // the Bytes API produces (it IS the Bytes API's backend now, but this
  // pins the fixed layouts against accidental drift).
  LeaseRequestMsg req{9, 16, 1_GiB, 60_s};
  LeaseGrantMsg grant;
  grant.lease_id = (5ull << 48) | 123;
  grant.device = 7;
  grant.alloc_port = 7000;
  grant.rdma_port = 7001;
  grant.workers = 4;
  grant.expires_at = 90_s;
  ExtendLeaseMsg extend{(7ull << 48) | 42, 30_s};
  ExtendOkMsg ok{(7ull << 48) | 42, 90_s};
  LeaseDeniedMsg denied;
  denied.reason = static_cast<std::uint8_t>(DenialReason::QuotaExceeded);
  denied.retry_after = 250_ms;
  denied.request_id = (2ull << 32) | 6;

  std::uint8_t buf[64];
  EXPECT_EQ(encode_into(req, buf, sizeof buf), kLeaseRequestWireSize);
  EXPECT_EQ(Bytes(buf, buf + kLeaseRequestWireSize), encode(req));
  EXPECT_EQ(encode_into(grant, buf, sizeof buf), kLeaseGrantWireSize);
  EXPECT_EQ(Bytes(buf, buf + kLeaseGrantWireSize), encode(grant));
  EXPECT_EQ(encode_into(extend, buf, sizeof buf), kExtendLeaseWireSize);
  EXPECT_EQ(Bytes(buf, buf + kExtendLeaseWireSize), encode(extend));
  EXPECT_EQ(encode_into(ok, buf, sizeof buf), kExtendOkWireSize);
  EXPECT_EQ(Bytes(buf, buf + kExtendOkWireSize), encode(ok));
  EXPECT_EQ(encode_into(denied, buf, sizeof buf), kLeaseDeniedWireSize);
  EXPECT_EQ(Bytes(buf, buf + kLeaseDeniedWireSize), encode(denied));

  // Undersized buffers refuse without writing.
  EXPECT_EQ(encode_into(req, buf, kLeaseRequestWireSize - 1), 0u);
  EXPECT_EQ(encode_into(grant, buf, 0), 0u);
  EXPECT_EQ(encode_into(denied, buf, kLeaseDeniedWireSize - 1), 0u);
}

TEST(ProtocolFastPath, SpanDecodersRoundTripFromStackBuffers) {
  LeaseGrantMsg grant;
  grant.lease_id = (3ull << 48) | 77;
  grant.device = 2;
  grant.alloc_port = 6100;
  grant.rdma_port = 6101;
  grant.workers = 12;
  grant.expires_at = 12345678;

  std::uint8_t buf[64];
  const std::size_t n = encode_into(grant, buf, sizeof buf);
  auto decoded = decode_lease_grant(std::span<const std::uint8_t>(buf, n));
  EXPECT_TRUE(decoded.ok());
  if (decoded.ok()) {
    EXPECT_EQ(decoded.value().lease_id, grant.lease_id);
    EXPECT_EQ(decoded.value().device, grant.device);
    EXPECT_EQ(decoded.value().alloc_port, grant.alloc_port);
    EXPECT_EQ(decoded.value().rdma_port, grant.rdma_port);
    EXPECT_EQ(decoded.value().workers, grant.workers);
    EXPECT_EQ(decoded.value().expires_at, grant.expires_at);
  }
  // Truncations and a wrong type byte are rejected.
  EXPECT_FALSE(decode_lease_grant(std::span<const std::uint8_t>(buf, n - 1)).ok());
  buf[0] = static_cast<std::uint8_t>(MsgType::LeaseRequest);
  EXPECT_FALSE(decode_lease_grant(std::span<const std::uint8_t>(buf, n)).ok());

  // LeaseDenied is the hot reply under overload: the same stack-buffer
  // roundtrip, truncation and type-confusion guarantees must hold.
  LeaseDeniedMsg denied;
  denied.reason = static_cast<std::uint8_t>(DenialReason::Overload);
  denied.retry_after = 42_ms;
  denied.request_id = (9ull << 32) | 3;
  const std::size_t dn = encode_into(denied, buf, sizeof buf);
  ASSERT_EQ(dn, kLeaseDeniedWireSize);
  auto ddec = decode_lease_denied(std::span<const std::uint8_t>(buf, dn));
  ASSERT_TRUE(ddec.ok());
  EXPECT_EQ(ddec.value().reason, denied.reason);
  EXPECT_EQ(ddec.value().retry_after, denied.retry_after);
  EXPECT_EQ(ddec.value().request_id, denied.request_id);
  EXPECT_FALSE(decode_lease_denied(std::span<const std::uint8_t>(buf, dn - 1)).ok());
  buf[0] = static_cast<std::uint8_t>(MsgType::LeaseGrant);
  EXPECT_FALSE(decode_lease_denied(std::span<const std::uint8_t>(buf, dn)).ok());

  LeaseRequestMsg req{1, 8, 256ull << 20, 60_s};
  const std::size_t rn = encode_into(req, buf, sizeof buf);
  auto rdec = decode_lease_request(std::span<const std::uint8_t>(buf, rn));
  EXPECT_TRUE(rdec.ok());
  if (rdec.ok()) {
    EXPECT_EQ(rdec.value().client_id, req.client_id);
    EXPECT_EQ(rdec.value().workers, req.workers);
    EXPECT_EQ(rdec.value().memory_bytes, req.memory_bytes);
    EXPECT_EQ(rdec.value().timeout, req.timeout);
  }
}

TEST(ProtocolFuzz, HttpParserSurvivesRandomBytes) {
  Rng rng(77);
  for (int round = 0; round < 2000; ++round) {
    Bytes junk(rng.uniform_int(0, 200));
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.next());
    (void)net::HttpRequest::parse(junk);
    (void)net::HttpResponse::parse(junk);
  }
  SUCCEED();
}

TEST(ProtocolFuzz, HttpParserSurvivesMutatedValidMessages) {
  net::HttpRequest req;
  req.method = "POST";
  req.path = "/f/echo";
  req.headers["Host"] = "x";
  req.body = "0123456789";
  const Bytes base = req.serialize();
  Rng rng(31);
  for (int round = 0; round < 2000; ++round) {
    Bytes mutated = base;
    mutated[rng.uniform_int(0, mutated.size() - 1)] ^= static_cast<std::uint8_t>(rng.next());
    auto parsed = net::HttpRequest::parse(mutated);
    if (parsed.ok()) {
      // If it parses AND still advertises a Content-Length, the value
      // must be consistent with the body (a mutated header *name* may
      // remove the length check entirely — that is acceptable HTTP).
      auto it = parsed.value().headers.find("Content-Length");
      if (it != parsed.value().headers.end() && !it->second.empty() &&
          it->second.find_first_not_of("0123456789") == std::string::npos) {
        EXPECT_EQ(parsed.value().body.size(),
                  static_cast<std::size_t>(std::stoul(it->second)));
      }
    }
  }
}

}  // namespace
}  // namespace rfs::rfaas

// Property-style overload invariants, end to end through the harness:
// open-loop arrival storms at 10x and 50x of admission capacity must
// never leak a lease after drain, never spend past a client's retry
// budget, and never let admitted requests queue behind the storm being
// shed (bounded p99). The chaos variant composes overload with seeded
// link faults — the same RFS_CHAOS_SEED knob as the fig19 suite, so a
// failing seed is replayable. Labeled `overload` in CMake
// (`ctest -L overload`, scripts/check.sh --overload).
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "cluster/harness.hpp"
#include "net/faulty.hpp"

namespace rfs::cluster {
namespace {

constexpr double kCapacityHz = 200.0;

std::uint64_t chaos_seed() {
  const char* env = std::getenv("RFS_CHAOS_SEED");
  return env != nullptr ? std::strtoull(env, nullptr, 10) : 1ull;
}

struct OverloadRun {
  MultiTenantTrace trace;
  std::size_t leaked = 0;
  std::uint64_t admitted = 0;
  std::uint64_t sheds = 0;
};

/// Two weighted tenants (3:1) of open-loop Poisson clients at
/// `overload` times the admission capacity, with `retry_budget`
/// retries per simulated client; optionally under symmetric link chaos.
OverloadRun run_overload(double overload, unsigned retry_budget, bool chaos,
                         Duration horizon = 3_s) {
  auto spec = ScenarioSpec::uniform(/*executors=*/8, /*cores=*/36,
                                    /*memory_bytes=*/64ull << 30, /*clients=*/2);
  spec.config.admission.capacity_hz = kCapacityHz;
  spec.config.admission.wfq_credit = 2;
  spec.assert_drained = false;  // the test owns the leak assertion
  if (chaos) {
    spec.inject_faults = true;
    spec.faults = net::FaultSpec::symmetric(0.05);
    spec.faults.delay_min = 100_us;
    spec.faults.delay_max = 1_ms;
    spec.fault_seed = chaos_seed();
  }

  Harness harness(spec);
  harness.start();

  std::vector<TenantWorkload> tenants;
  const double offered_hz = overload * kCapacityHz;
  const std::uint32_t weights[2] = {3, 1};
  for (unsigned t = 0; t < 2; ++t) {
    TenantWorkload w;
    w.name = "t" + std::to_string(t);
    w.clients = 1;
    w.tenant_id = 201 + t;
    w.weight = weights[t];
    w.arrivals = ArrivalProcess::Poisson;
    w.multiplex = 500;
    w.arrival_hz = (offered_hz / 2.0) / 500.0;
    w.retry_budget = retry_budget;
    w.retry_backoff = 5_ms;
    w.lease.workers_min = 1;
    w.lease.workers_max = 1;
    w.lease.memory_per_worker = 64ull << 20;
    w.lease.hold_min = 20_ms;
    w.lease.hold_max = 80_ms;
    w.lease.lease_timeout = 30_s;
    w.lease.seed = 4000 + t;
    tenants.push_back(w);
  }

  OverloadRun run;
  run.trace = harness.run_multi_tenant_workload(tenants, horizon, /*sample_every=*/1_s);
  run.leaked = harness.leaked_leases_after(chaos ? 10_s : 5_s);
  run.admitted = harness.rm().admission().admitted();
  run.sheds = harness.rm().admission().sheds();
  return run;
}

TEST(OverloadInvariants, TenfoldStormDrainsCleanAndHonorsBudgets) {
  auto run = run_overload(/*overload=*/10, /*retry_budget=*/2, /*chaos=*/false);
  const auto& a = run.trace.aggregate;

  // The storm actually happened, and the admitter carried it.
  EXPECT_GT(a.offered, 10u * a.granted / 2);
  EXPECT_GT(a.granted, 0u);
  EXPECT_GT(run.sheds, 0u);

  // Invariant 1: every granted lease is returned — nothing leaks, no
  // matter how many sheds and retries surrounded it.
  EXPECT_EQ(run.leaked, 0u);

  // Invariant 2: no simulated client ever spends past its budget, and
  // the budget was genuinely exercised (retries happened, some clients
  // exhausted them).
  EXPECT_LE(a.max_retries, 2u);
  EXPECT_GT(a.retries, 0u);
  EXPECT_GT(a.retry_exhausted, 0u);

  // Invariant 3: a grant implies a manager-side admission — the early
  // shed can never be bypassed.
  EXPECT_GE(run.admitted, a.granted);
  EXPECT_EQ(a.client_deaths, 0u);
}

TEST(OverloadInvariants, FiftyfoldStormKeepsGoodputAndBoundedTail) {
  // The unloaded run anchors the tail bound; no retries in either so
  // grant latency is the pure admitted path.
  auto base = run_overload(/*overload=*/0.5, /*retry_budget=*/0, /*chaos=*/false);
  auto storm = run_overload(/*overload=*/50, /*retry_budget=*/0, /*chaos=*/false);
  const auto& a = storm.trace.aggregate;

  EXPECT_EQ(storm.leaked, 0u);
  EXPECT_EQ(a.retries, 0u);  // budget 0 means the client never re-offers

  // Goodput pins to capacity while 50x demand is shed in O(1).
  const double goodput = static_cast<double>(a.granted) / to_s(3_s);
  EXPECT_GE(goodput, 0.9 * kCapacityHz);

  // Admitted requests must not queue behind the storm: p99 within 5x of
  // the unloaded tail (the same bound bench/fig17_overload gates on).
  const double p99_base = base.trace.aggregate.grant_latency_percentile(99);
  const double p99_storm = a.grant_latency_percentile(99);
  ASSERT_GT(p99_base, 0.0);
  EXPECT_LE(p99_storm, 5.0 * p99_base);

  // Weighted fairness holds at 50x: the 3:1 split lands within 15%.
  ASSERT_EQ(storm.trace.tenants.size(), 2u);
  const auto& heavy = storm.trace.tenants[0];
  const auto& light = storm.trace.tenants[1];
  const double share = static_cast<double>(heavy.granted) /
                       static_cast<double>(heavy.granted + light.granted);
  EXPECT_NEAR(share, 0.75, 0.15 * 0.75);
}

TEST(OverloadInvariants, OverloadComposesWithLinkChaos) {
  // 10x overload plus 5% symmetric drop/dup/reorder on every control
  // link, seeded like fig19: retransmission, dedup replay of cached
  // denials, retry budgets and the expiry sweep all compose — and the
  // drain invariant still holds exactly.
  auto run = run_overload(/*overload=*/10, /*retry_budget=*/3, /*chaos=*/true);
  const auto& a = run.trace.aggregate;

  EXPECT_EQ(run.leaked, 0u) << "seed " << chaos_seed();
  EXPECT_GT(a.granted, 0u);
  EXPECT_LE(a.max_retries, 3u) << "seed " << chaos_seed();
  EXPECT_EQ(a.client_deaths, 0u) << "seed " << chaos_seed();
  EXPECT_GE(run.admitted, a.granted);
}

}  // namespace
}  // namespace rfs::cluster

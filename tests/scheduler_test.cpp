// Tests of the lease-scheduling layer: ExecutorRegistry bookkeeping, the
// three placement policies (placement order, partial grants, capacity
// exhaustion, oversubscription), determinism across runs with the same
// seed, and the harness-driven utilization comparison that backs Fig. 2b.
#include <gtest/gtest.h>

#include "cluster/harness.hpp"
#include "rfaas/scheduler.hpp"

namespace rfs::rfaas {
namespace {

ExecutorEntry entry(std::uint32_t free_workers, std::uint64_t free_memory = 64ull << 30,
                    std::uint32_t locality = 0) {
  ExecutorEntry e;
  e.total_workers = free_workers;
  e.free_workers = free_workers;
  e.free_memory = free_memory;
  e.alive = true;
  e.locality = locality;
  return e;
}

ScheduleRequest request(std::uint32_t workers, std::uint64_t memory_per_worker = 1 << 20,
                        std::uint32_t locality = 0) {
  ScheduleRequest r;
  r.workers = workers;
  r.memory_per_worker = memory_per_worker;
  r.client_locality = locality;
  return r;
}

/// Runs one place-and-commit cycle the way the resource manager does.
std::optional<Placement> grant(Scheduler& s, ExecutorRegistry& reg, const ScheduleRequest& req) {
  std::vector<bool> excluded(reg.size(), false);
  while (auto p = s.place(reg, req, excluded)) {
    if (reg.try_claim(p->executor, p->workers, p->memory)) return p;
    excluded[p->executor] = true;
  }
  return std::nullopt;
}

// --------------------------------------------------------------------------
// ExecutorRegistry
// --------------------------------------------------------------------------

TEST(ExecutorRegistry, ClaimReleaseRoundTrip) {
  ExecutorRegistry reg;
  reg.add(entry(4, 1 << 30));
  EXPECT_TRUE(reg.try_claim(0, 3, 3 << 20));
  EXPECT_EQ(reg.at(0).free_workers, 1u);
  EXPECT_EQ(reg.free_workers_total(), 1u);
  reg.release(0, 3, 3 << 20);
  EXPECT_EQ(reg.at(0).free_workers, 4u);
  EXPECT_EQ(reg.at(0).free_memory, 1ull << 30);
}

TEST(ExecutorRegistry, ClaimFailsOnDeadOrOverCapacity) {
  ExecutorRegistry reg;
  reg.add(entry(4, 1 << 30));
  EXPECT_FALSE(reg.try_claim(0, 5, 0));          // more workers than free
  EXPECT_FALSE(reg.try_claim(0, 1, 2ull << 30));  // more memory than free
  reg.mark_dead(0);
  EXPECT_FALSE(reg.try_claim(0, 1, 0));
  EXPECT_EQ(reg.alive_count(), 0u);
  EXPECT_EQ(reg.free_workers_total(), 0u);
}

TEST(ExecutorRegistry, ReleaseOnDeadExecutorIsNoOp) {
  ExecutorRegistry reg;
  reg.add(entry(4));
  ASSERT_TRUE(reg.try_claim(0, 2, 0));
  reg.mark_dead(0);
  reg.release(0, 2, 0);  // late release of a lease the death already dropped
  EXPECT_EQ(reg.at(0).free_workers, 0u);
}

// --------------------------------------------------------------------------
// Round-robin: seed-equivalent placement order
// --------------------------------------------------------------------------

TEST(RoundRobin, ReproducesSeedPlacementOrder) {
  // The seed scanned from a cursor, granted min(free, requested) on the
  // first executor with spare capacity, and advanced the cursor past the
  // grantee. Three 2-worker executors, six 1-worker requests must land
  // 0, 1, 2, 0, 1, 2 — exactly the seed's order.
  ExecutorRegistry reg;
  for (int i = 0; i < 3; ++i) reg.add(entry(2));
  RoundRobinScheduler rr;
  std::vector<std::size_t> order;
  for (int i = 0; i < 6; ++i) {
    auto p = grant(rr, reg, request(1));
    ASSERT_TRUE(p.has_value());
    order.push_back(p->executor);
  }
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 0, 1, 2}));
}

TEST(RoundRobin, PartialGrantAndCursorAdvance) {
  ExecutorRegistry reg;
  reg.add(entry(2));
  reg.add(entry(8));
  RoundRobinScheduler rr;

  // Request 8 workers: executor 0 grants only its 2 free (partial).
  auto p1 = grant(rr, reg, request(8));
  ASSERT_TRUE(p1.has_value());
  EXPECT_EQ(p1->executor, 0u);
  EXPECT_EQ(p1->workers, 2u);

  // The cursor moved past executor 0; the next request lands on 1.
  auto p2 = grant(rr, reg, request(8));
  ASSERT_TRUE(p2.has_value());
  EXPECT_EQ(p2->executor, 1u);
  EXPECT_EQ(p2->workers, 8u);
}

TEST(RoundRobin, SkipsExecutorWithoutMemory) {
  // Seed rule: min(free, requested) workers must fit in free memory or
  // the executor is skipped entirely (no shrinking).
  ExecutorRegistry reg;
  reg.add(entry(4, /*free_memory=*/1 << 20));
  reg.add(entry(4, /*free_memory=*/1 << 30));
  RoundRobinScheduler rr;
  auto p = grant(rr, reg, request(4, /*memory_per_worker=*/1 << 20));
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->executor, 1u);
}

TEST(RoundRobin, ExhaustionYieldsNoPlacement) {
  ExecutorRegistry reg;
  reg.add(entry(1));
  RoundRobinScheduler rr;
  ASSERT_TRUE(grant(rr, reg, request(1)).has_value());
  EXPECT_FALSE(grant(rr, reg, request(1)).has_value());
}

TEST(RoundRobin, DeadBetweenScanAndGrantFailsCleanly) {
  ExecutorRegistry reg;
  reg.add(entry(4));
  reg.add(entry(4));
  RoundRobinScheduler rr;

  // The policy picks executor 0, but it dies before the commit: the
  // grant loop must exclude it and retry, landing on executor 1.
  std::vector<bool> excluded(reg.size(), false);
  auto p = rr.place(reg, request(2), excluded);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->executor, 0u);
  reg.mark_dead(0);
  EXPECT_FALSE(reg.try_claim(p->executor, p->workers, p->memory));

  excluded[p->executor] = true;
  auto retry = rr.place(reg, request(2), excluded);
  ASSERT_TRUE(retry.has_value());
  EXPECT_EQ(retry->executor, 1u);
  EXPECT_TRUE(reg.try_claim(retry->executor, retry->workers, retry->memory));

  // With everything dead the loop terminates with no placement.
  reg.mark_dead(1);
  EXPECT_FALSE(grant(rr, reg, request(1)).has_value());
}

// --------------------------------------------------------------------------
// Least-loaded
// --------------------------------------------------------------------------

TEST(LeastLoaded, PicksFreestAndBreaksTiesByIndex) {
  ExecutorRegistry reg;
  reg.add(entry(2));
  reg.add(entry(6));
  reg.add(entry(6));
  LeastLoadedScheduler ll;
  auto p1 = grant(ll, reg, request(1));
  ASSERT_TRUE(p1.has_value());
  EXPECT_EQ(p1->executor, 1u);  // tie between 1 and 2 -> lowest index
  auto p2 = grant(ll, reg, request(1));
  ASSERT_TRUE(p2.has_value());
  EXPECT_EQ(p2->executor, 2u);  // now 2 is freest
}

TEST(LeastLoaded, PartialGrantsPreferBiggestPool) {
  // Round-robin would grant 1 worker from the nearly-full executor the
  // cursor points at; least-loaded always grants from the deepest pool.
  ExecutorRegistry reg;
  reg.add(entry(1));
  reg.add(entry(8));
  LeastLoadedScheduler ll;
  auto p = grant(ll, reg, request(4));
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->executor, 1u);
  EXPECT_EQ(p->workers, 4u);
}

TEST(LeastLoaded, ExhaustionYieldsNoPlacement) {
  ExecutorRegistry reg;
  reg.add(entry(2));
  reg.add(entry(2));
  LeastLoadedScheduler ll;
  ASSERT_TRUE(grant(ll, reg, request(4)).has_value());
  ASSERT_TRUE(grant(ll, reg, request(4)).has_value());
  EXPECT_FALSE(grant(ll, reg, request(1)).has_value());
}

// --------------------------------------------------------------------------
// Power-of-two-choices
// --------------------------------------------------------------------------

TEST(PowerOfTwo, DeterministicForFixedSeed) {
  auto run_once = [](std::uint64_t seed) {
    ExecutorRegistry reg;
    for (int i = 0; i < 8; ++i) reg.add(entry(16));
    PowerOfTwoScheduler p2c(seed, /*prefer_locality=*/false);
    std::vector<std::size_t> order;
    for (int i = 0; i < 32; ++i) {
      auto p = grant(p2c, reg, request(2));
      EXPECT_TRUE(p.has_value());
      if (!p) break;
      order.push_back(p->executor);
    }
    return order;
  };
  EXPECT_EQ(run_once(42), run_once(42));
  EXPECT_NE(run_once(42), run_once(43));  // different stream, same mechanism
}

TEST(PowerOfTwo, PrefersClientLocalityWithTwoExecutors) {
  // With exactly two executors the sampled pair is always {0, 1}, so the
  // locality preference fully determines the winner while both fit.
  ExecutorRegistry reg;
  reg.add(entry(4, 64ull << 30, /*locality=*/0));
  reg.add(entry(4, 64ull << 30, /*locality=*/1));
  PowerOfTwoScheduler p2c(7, /*prefer_locality=*/true);
  for (int i = 0; i < 4; ++i) {
    auto p = grant(p2c, reg, request(1, 1 << 20, /*locality=*/1));
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(p->executor, 1u);
  }
  // Local executor exhausted: the remote one serves the overflow.
  auto p = grant(p2c, reg, request(1, 1 << 20, /*locality=*/1));
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->executor, 0u);
}

TEST(PowerOfTwo, BalancesBetterThanArrivalOrder) {
  // Classic two-choices property: with many single-worker grants and no
  // releases, the max load across executors stays near the mean.
  ExecutorRegistry reg;
  for (int i = 0; i < 16; ++i) reg.add(entry(64));
  PowerOfTwoScheduler p2c(11, /*prefer_locality=*/false);
  for (int i = 0; i < 256; ++i) {
    ASSERT_TRUE(grant(p2c, reg, request(1)).has_value());
  }
  std::uint32_t max_used = 0, min_used = UINT32_MAX;
  for (std::size_t i = 0; i < reg.size(); ++i) {
    const std::uint32_t used = 64 - reg.at(i).free_workers;
    max_used = std::max(max_used, used);
    min_used = std::min(min_used, used);
  }
  EXPECT_LE(max_used - min_used, 8u);  // mean load is 16 per executor
}

// --------------------------------------------------------------------------
// LocalityFirst: rack-local least-loaded, power-of-two fallback
// --------------------------------------------------------------------------

TEST(LocalityFirst, PicksLeastLoadedExecutorInTheClientsRack) {
  ExecutorRegistry reg;
  reg.add(entry(8, 64ull << 30, /*locality=*/0));   // remote, freest overall
  reg.add(entry(2, 64ull << 30, /*locality=*/1));   // local
  reg.add(entry(4, 64ull << 30, /*locality=*/1));   // local, freer
  LocalityFirstScheduler sched(7);
  auto p = grant(sched, reg, request(1, 1 << 20, /*locality=*/1));
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->executor, 2u);  // local beats freer-but-remote
}

TEST(LocalityFirst, FallsBackToPowerOfTwoWhenTheRackIsFull) {
  ExecutorRegistry reg;
  reg.add(entry(1, 64ull << 30, /*locality=*/1));
  reg.add(entry(8, 64ull << 30, /*locality=*/0));
  LocalityFirstScheduler sched(7);
  auto p1 = grant(sched, reg, request(1, 1 << 20, /*locality=*/1));
  ASSERT_TRUE(p1.has_value());
  EXPECT_EQ(p1->executor, 0u);  // drains the rack
  auto p2 = grant(sched, reg, request(1, 1 << 20, /*locality=*/1));
  ASSERT_TRUE(p2.has_value());
  EXPECT_EQ(p2->executor, 1u);  // cross-rack fallback still places
}

TEST(LocalityFirst, SkipsExcludedLocalExecutors) {
  ExecutorRegistry reg;
  reg.add(entry(4, 64ull << 30, /*locality=*/1));
  reg.add(entry(2, 64ull << 30, /*locality=*/1));
  LocalityFirstScheduler sched(7);
  std::vector<bool> excluded{true, false};  // e.g. found dead at commit
  auto p = sched.place(reg, request(1, 1 << 20, /*locality=*/1), excluded);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->executor, 1u);
}

// --------------------------------------------------------------------------
// Config plumbing and oversubscription (platform level)
// --------------------------------------------------------------------------

TEST(SchedulerConfig, FactorySelectsPolicy) {
  Config c;
  EXPECT_STREQ(make_scheduler(c)->name(), "round-robin");
  c.scheduling = SchedulingPolicy::LeastLoaded;
  EXPECT_STREQ(make_scheduler(c)->name(), "least-loaded");
  c.scheduling = SchedulingPolicy::PowerOfTwoChoices;
  EXPECT_STREQ(make_scheduler(c)->name(), "power-of-two");
  c.scheduling = SchedulingPolicy::LocalityFirst;
  EXPECT_STREQ(make_scheduler(c)->name(), "locality-first");
  EXPECT_STREQ(to_string(SchedulingPolicy::LeastLoaded), "least-loaded");
  EXPECT_STREQ(to_string(SchedulingPolicy::LocalityFirst), "locality-first");
}

TEST(SchedulerConfig, OversubscriptionScalesLeaseCapacity) {
  auto spec = cluster::ScenarioSpec::uniform(/*executors=*/2, /*cores=*/4);
  spec.config.lease_oversubscription = 2.0;
  cluster::Harness h(spec);
  h.start();
  // 2 executors x 4 cores x 2.0 oversubscription = 16 leasable workers.
  EXPECT_EQ(h.rm().free_workers_total(), 16u);
  EXPECT_EQ(h.rm().registry().total_workers(), 16u);
}

// --------------------------------------------------------------------------
// Harness-level: placement log determinism and utilization ordering
// --------------------------------------------------------------------------

cluster::ScenarioSpec hetero_spec(SchedulingPolicy policy) {
  cluster::ScenarioSpec spec;
  spec.executors = {{1, 16, 64ull << 30}, {3, 4, 16ull << 30}};
  spec.client_hosts = 6;
  spec.racks = 2;
  spec.config.scheduling = policy;
  return spec;
}

cluster::LeaseWorkload test_workload() {
  cluster::LeaseWorkload w;
  w.workers_min = 1;
  w.workers_max = 8;
  w.memory_per_worker = 64ull << 20;
  w.hold_min = 1_s;
  w.hold_max = 8_s;
  w.think_min = 50_ms;
  w.think_max = 500_ms;
  w.seed = 99;
  return w;
}

TEST(HarnessScheduling, IdenticalPlacementsAcrossTwoSeededRuns) {
  auto run_once = [](SchedulingPolicy policy) {
    cluster::Harness h(hetero_spec(policy));
    h.start();
    (void)h.run_lease_workload(test_workload(), /*horizon=*/20_s);
    return h.rm().placement_log();
  };
  for (auto policy : {SchedulingPolicy::RoundRobin, SchedulingPolicy::LeastLoaded,
                      SchedulingPolicy::PowerOfTwoChoices}) {
    auto a = run_once(policy);
    auto b = run_once(policy);
    ASSERT_FALSE(a.empty());
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].executor, b[i].executor) << "placement " << i;
      EXPECT_EQ(a[i].workers, b[i].workers) << "placement " << i;
    }
  }
}

TEST(HarnessScheduling, LeastLoadedUtilizationAtLeastRoundRobin) {
  auto run_once = [](SchedulingPolicy policy) {
    cluster::Harness h(hetero_spec(policy));
    h.start();
    return h.run_lease_workload(test_workload(), /*horizon=*/40_s);
  };
  auto rr = run_once(SchedulingPolicy::RoundRobin);
  auto ll = run_once(SchedulingPolicy::LeastLoaded);
  EXPECT_GE(ll.mean_utilization(), rr.mean_utilization());
  EXPECT_GT(ll.granted + ll.denied, 0u);
}

TEST(LeaseLifecycle, HeartbeatSweepReclaimsExpiredLease) {
  // A lease acquired over raw TCP with no sandbox behind it: the executor
  // side never tears anything down, so only the resource manager's
  // heartbeat sweep can return the workers to the free pool.
  auto spec = cluster::ScenarioSpec::uniform(/*executors=*/1, /*cores=*/4);
  cluster::Harness h(spec);
  h.start();
  ASSERT_EQ(h.rm().free_workers_total(), 4u);

  auto client = [](cluster::Harness* hp) -> sim::Task<void> {
    auto conn = co_await hp->tcp().connect(hp->client_device(0).id(), hp->rm().device().id(),
                                           hp->rm().port());
    EXPECT_TRUE(conn.ok());
    if (!conn.ok()) co_return;
    LeaseRequestMsg req;
    req.client_id = 1;
    req.workers = 2;
    req.memory_bytes = 64ull << 20;
    req.timeout = 3_s;
    conn.value()->send(encode(req));
    auto raw = co_await conn.value()->recv();
    EXPECT_TRUE(raw.has_value());
    if (!raw.has_value()) co_return;
    EXPECT_TRUE(decode_lease_grant(*raw).ok());
    // Never released: the client walks away holding the grant.
  };
  h.spawn(client(&h));
  h.run_for(1_s);
  EXPECT_EQ(h.rm().active_leases(), 1u);
  EXPECT_EQ(h.rm().free_workers_total(), 2u);

  // Past the 3 s expiry plus a heartbeat period: the sweep reclaims.
  h.run_for(5_s);
  EXPECT_EQ(h.rm().active_leases(), 0u);
  EXPECT_EQ(h.rm().free_workers_total(), 4u);
}

TEST(HarnessScheduling, EveryPlacementFlowsThroughScheduler) {
  // The placement log is written by the single grant path; the number of
  // logged placements must equal the number of grants observed by the
  // workload counters.
  cluster::Harness h(hetero_spec(SchedulingPolicy::RoundRobin));
  h.start();
  auto trace = h.run_lease_workload(test_workload(), /*horizon=*/20_s);
  EXPECT_EQ(h.rm().placement_log().size(), trace.granted);
}

}  // namespace
}  // namespace rfs::rfaas

// Chaos-layer unit tests: the FaultInjector must be (a) exactly
// replayable from its seed — the whole CI chaos gate rests on "failing
// seed reproduces the failure" — and (b) statistically honest, i.e. a
// 30% drop knob really drops ~30% of messages. Labeled `chaos` in
// CMake so `ctest -L chaos` runs the lossy-network suite alone.
#include <gtest/gtest.h>

#include <vector>

#include "common/units.hpp"
#include "net/faulty.hpp"

namespace rfs::net {
namespace {

TEST(FaultInjector, SameSeedReplaysIdenticalDecisionSequence) {
  const std::uint64_t seed = 0xC0FFEE;
  FaultInjector a(seed);
  FaultInjector b(seed);
  a.set_default(FaultSpec::symmetric(0.2));
  b.set_default(FaultSpec::symmetric(0.2));

  for (int i = 0; i < 5000; ++i) {
    const Time now = static_cast<Time>(i) * 10_us;
    const auto da = a.decide(1, 2, now);
    const auto db = b.decide(1, 2, now);
    EXPECT_EQ(da.drop, db.drop) << "diverged at message " << i;
    EXPECT_EQ(da.duplicates, db.duplicates) << "diverged at message " << i;
    EXPECT_EQ(da.extra_delay, db.extra_delay) << "diverged at message " << i;
  }
  EXPECT_EQ(a.counters().dropped, b.counters().dropped);
  EXPECT_EQ(a.counters().duplicated, b.counters().duplicated);
  EXPECT_EQ(a.counters().reordered, b.counters().reordered);
  EXPECT_EQ(a.seed(), seed);
}

TEST(FaultInjector, DifferentSeedsDiverge) {
  FaultInjector a(1);
  FaultInjector b(2);
  a.set_default(FaultSpec::symmetric(0.3));
  b.set_default(FaultSpec::symmetric(0.3));
  std::uint64_t differing = 0;
  for (int i = 0; i < 2000; ++i) {
    const auto da = a.decide(1, 2, 0);
    const auto db = b.decide(1, 2, 0);
    differing += (da.drop != db.drop) || (da.duplicates != db.duplicates) ||
                 (da.extra_delay != db.extra_delay);
  }
  EXPECT_GT(differing, 0u);
}

TEST(FaultInjector, ObservedRatesMatchConfiguredProbabilities) {
  FaultInjector inj(42);
  FaultSpec spec;
  spec.drop_p = 0.3;
  spec.dup_p = 0.3;
  spec.reorder_p = 0.3;
  inj.set_link(1, 2, spec);

  const int n = 20000;
  for (int i = 0; i < n; ++i) (void)inj.decide(1, 2, 0);

  const auto& c = inj.counters();
  EXPECT_EQ(c.messages, static_cast<std::uint64_t>(n));
  // 20k Bernoulli trials at p=0.3: >5 sigma bounds, deterministic seed.
  // Duplication/reordering only applies to messages that survived the
  // drop roll, so their observed rate is p * (1 - drop_p) = 0.21.
  EXPECT_NEAR(static_cast<double>(c.dropped) / n, 0.3, 0.02);
  EXPECT_NEAR(static_cast<double>(c.duplicated) / n, 0.3 * 0.7, 0.02);
  EXPECT_NEAR(static_cast<double>(c.reordered) / n, 0.3 * 0.7, 0.02);
  EXPECT_EQ(c.partitioned, 0u);
}

TEST(FaultInjector, LosslessSpecTouchesNothing) {
  FaultInjector inj(7);
  for (int i = 0; i < 1000; ++i) {
    const auto d = inj.decide(3, 4, static_cast<Time>(i));
    EXPECT_FALSE(d.drop);
    EXPECT_EQ(d.duplicates, 0u);
    EXPECT_EQ(d.extra_delay, 0u);
  }
  EXPECT_EQ(inj.counters().dropped, 0u);
  EXPECT_EQ(inj.counters().duplicated, 0u);
}

TEST(FaultInjector, LinkSpecIsDirectionAgnostic) {
  FaultInjector inj(11);
  FaultSpec spec;
  spec.drop_p = 1.0;  // certain drop on the configured pair
  inj.set_link(5, 9, spec);

  const auto forward = inj.decide(5, 9, 0);
  const auto reverse = inj.decide(9, 5, 0);
  EXPECT_TRUE(forward.drop);
  EXPECT_TRUE(reverse.drop);
  // Unrelated links stay on the (lossless) default.
  EXPECT_FALSE(inj.decide(5, 8, 0).drop);
}

TEST(FaultInjector, PartitionBlackHolesTheWindowOnly) {
  FaultInjector inj(13);
  inj.add_partition(1, 2, 10_ms, 20_ms);

  EXPECT_FALSE(inj.decide(1, 2, 9_ms).drop);
  EXPECT_TRUE(inj.decide(1, 2, 10_ms).drop);    // inclusive start
  EXPECT_TRUE(inj.decide(2, 1, 15_ms).drop);    // both directions
  EXPECT_FALSE(inj.decide(1, 2, 20_ms).drop);   // exclusive end
  EXPECT_FALSE(inj.decide(1, 3, 15_ms).drop);   // other peers unaffected
  EXPECT_EQ(inj.counters().partitioned, 2u);
}

TEST(FaultInjector, HeldMessagesGetBoundedExtraDelay) {
  FaultInjector inj(17);
  FaultSpec spec;
  spec.reorder_p = 1.0;
  spec.delay_min = 100_us;
  spec.delay_max = 1_ms;
  inj.set_link(1, 2, spec);

  for (int i = 0; i < 500; ++i) {
    const auto d = inj.decide(1, 2, 0);
    EXPECT_GE(d.extra_delay, 100_us);
    EXPECT_LE(d.extra_delay, 1_ms);
  }
  EXPECT_EQ(inj.counters().reordered, 500u);
}

}  // namespace
}  // namespace rfs::net

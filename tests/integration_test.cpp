// Cross-module integration scenarios beyond the per-module suites:
// multi-tenant isolation, oversubscription stress, capacity lifecycle,
// parameterized policy/payload sweeps, and failure injection.
#include <gtest/gtest.h>

#include "rfaas/platform.hpp"
#include "workloads/faas_functions.hpp"
#include "workloads/image.hpp"

namespace rfs::rfaas {
namespace {

template <typename MakeTask>
void drive(Platform& p, Duration horizon, MakeTask&& make_task) {
  bool finished = false;
  auto wrapper = [](bool* done, sim::Task<void> inner) -> sim::Task<void> {
    co_await std::move(inner);
    *done = true;
  };
  sim::spawn(p.engine(), wrapper(&finished, make_task()));
  p.run(p.engine().now() + horizon);
  ASSERT_TRUE(finished) << "scenario did not finish within the horizon";
}

TEST(Integration, TenBillingIsIsolatedPerTenant) {
  PlatformOptions opts;
  opts.spot_executors = 2;
  opts.cores_per_executor = 8;
  opts.config.billing_flush_period = 20_ms;
  Platform p(opts);
  p.registry().add_echo();
  CodePackage busy;
  busy.name = "busy";
  busy.entry = [](const void*, std::uint32_t, void*) -> std::uint32_t { return 0; };
  busy.cost = [](std::uint32_t) -> Duration { return 2_ms; };
  p.registry().add(std::move(busy));
  p.start();

  auto heavy = p.make_invoker(0, 100);
  auto light = p.make_invoker(0, 101);
  drive(p, 120_s, [&]() -> sim::Task<void> {
    AllocationSpec spec;
    spec.function_name = "busy";
    spec.policy = InvocationPolicy::WarmAlways;
    EXPECT_TRUE((co_await heavy->allocate(spec)).ok());
    spec.function_name = "echo";
    EXPECT_TRUE((co_await light->allocate(spec)).ok());
    auto in_h = heavy->input_buffer<std::uint8_t>(64);
    auto out_h = heavy->output_buffer<std::uint8_t>(64);
    auto in_l = light->input_buffer<std::uint8_t>(64);
    auto out_l = light->output_buffer<std::uint8_t>(64);
    for (int i = 0; i < 10; ++i) {
      (void)co_await heavy->invoke(0, in_h, 8, out_h);
      (void)co_await light->invoke(0, in_l, 8, out_l);
    }
    co_await heavy->deallocate();
    co_await light->deallocate();
    co_await sim::delay(100_ms);
  });

  auto heavy_usage = p.rm().billing().usage(100);
  auto light_usage = p.rm().billing().usage(101);
  // 10 invocations x 2 ms >> 10 echo dispatches.
  EXPECT_GE(heavy_usage.compute_ns, 10 * 2_ms);
  EXPECT_LT(light_usage.compute_ns, 1_ms);
  EXPECT_GT(p.rm().billing().cost(100, p.config().billing),
            p.rm().billing().cost(101, p.config().billing));
}

TEST(Integration, OversubscriptionStressStillCompletesAllWork) {
  // 12 warm workers on a 4-core host: invocations contend for cores and
  // some get rejected + redirected, but every submission must finish.
  PlatformOptions opts;
  opts.spot_executors = 1;
  opts.cores_per_executor = 4;
  opts.config.lease_oversubscription = 3.0;  // 12 sandboxes on 4 cores
  Platform p(opts);
  CodePackage busy;
  busy.name = "busy";
  busy.entry = [](const void*, std::uint32_t, void*) -> std::uint32_t { return 0; };
  busy.cost = [](std::uint32_t) -> Duration { return 500_us; };
  p.registry().add(std::move(busy));
  p.start();

  auto invoker = p.make_invoker(0, 1);
  int ok = 0, rejected_final = 0;
  drive(p, 600_s, [&]() -> sim::Task<void> {
    AllocationSpec spec;
    spec.function_name = "busy";
    spec.workers = 12;  // oversubscribed 3x
    spec.policy = InvocationPolicy::WarmAlways;
    EXPECT_TRUE((co_await invoker->allocate(spec)).ok());

    std::vector<rdmalib::Buffer<std::uint8_t>> ins, outs;
    std::vector<sim::Future<InvocationResult>> futures;
    for (int i = 0; i < 48; ++i) {
      ins.push_back(invoker->input_buffer<std::uint8_t>(64));
      outs.push_back(invoker->output_buffer<std::uint8_t>(64));
      futures.push_back(invoker->submit(0, ins.back(), 8, outs.back()));
      // "Invocations often arrive independently, at different times"
      // (Sec. III-D): offered load ~1.2x the 4-core service rate, so the
      // oversubscribed workers regularly hit busy cores and redirect.
      co_await sim::delay(105_us);
    }
    for (auto& f : futures) {
      auto r = co_await f.get();
      if (r.ok) {
        ++ok;
      } else if (r.rejected) {
        ++rejected_final;
      }
    }
    co_await invoker->deallocate();
  });
  // Redirects must land almost every invocation on a free core; a
  // simultaneous burst may still exhaust its attempts (and that is the
  // documented behaviour: the client observes the rejection).
  EXPECT_EQ(ok + rejected_final, 48);
  EXPECT_GE(ok, 40);
  EXPECT_GT(invoker->total_rejections(), 0u);  // contention did happen
}

TEST(Integration, CapacityRecoversAcrossAllocateDeallocateCycles) {
  PlatformOptions opts;
  opts.spot_executors = 2;
  opts.cores_per_executor = 4;
  Platform p(opts);
  p.registry().add_echo();
  p.start();
  const std::uint32_t free0 = p.rm().free_workers_total();

  for (int cycle = 0; cycle < 3; ++cycle) {
    auto invoker = p.make_invoker(0, static_cast<std::uint32_t>(cycle + 1));
    drive(p, 60_s, [&]() -> sim::Task<void> {
      AllocationSpec spec;
      spec.function_name = "echo";
      spec.workers = 8;  // everything
      EXPECT_TRUE((co_await invoker->allocate(spec)).ok());
      EXPECT_EQ(p.rm().free_workers_total(), 0u);
      auto in = invoker->input_buffer<std::uint8_t>(64);
      auto out = invoker->output_buffer<std::uint8_t>(64);
      auto r = co_await invoker->invoke(0, in, 8, out);
      EXPECT_TRUE(r.ok);
      co_await invoker->deallocate();
      co_await sim::delay(10_ms);  // release notifications propagate
    });
    EXPECT_EQ(p.rm().free_workers_total(), free0) << "cycle " << cycle;
    EXPECT_EQ(p.rm().active_leases(), 0u);
  }
}

TEST(Integration, CodeSizeAffectsSubmissionTimeOnly) {
  PlatformOptions opts;
  opts.spot_executors = 1;
  Platform p(opts);
  p.registry().add_echo();
  p.start();

  Duration small_submit = 0, large_submit = 0;
  drive(p, 120_s, [&]() -> sim::Task<void> {
    auto a = p.make_invoker(0, 1);
    AllocationSpec spec;
    spec.function_name = "echo";
    spec.code_size = 8 * 1024;
    EXPECT_TRUE((co_await a->allocate(spec)).ok());
    small_submit = a->cold_start().submit_code;

    auto b = p.make_invoker(0, 2);
    spec.code_size = 8 * 1024 * 1024;  // a fat library
    EXPECT_TRUE((co_await b->allocate(spec)).ok());
    large_submit = b->cold_start().submit_code;
    EXPECT_EQ(a->cold_start().spawn_workers, b->cold_start().spawn_workers);
  });
  // 8 MB over TCP (~4.3 GB/s) + install time scaling dominates.
  EXPECT_GT(large_submit, small_submit + 10_ms);
}

TEST(Integration, HeartbeatsKeepHealthyExecutorsAlive) {
  PlatformOptions opts;
  opts.spot_executors = 2;
  Platform p(opts);
  p.registry().add_echo();
  p.start();
  p.run(p.engine().now() + 30_s);  // many heartbeat periods
  EXPECT_EQ(p.rm().alive_executors(), 2u);
}

TEST(Integration, CrashedExecutorLeasesAreReclaimed) {
  PlatformOptions opts;
  opts.spot_executors = 2;
  opts.cores_per_executor = 4;
  Platform p(opts);
  p.registry().add_echo();
  p.start();

  auto invoker = p.make_invoker(0, 1);
  drive(p, 60_s, [&]() -> sim::Task<void> {
    AllocationSpec spec;
    spec.function_name = "echo";
    spec.workers = 8;  // spans both executors
    EXPECT_TRUE((co_await invoker->allocate(spec)).ok());
  });
  EXPECT_EQ(p.rm().active_leases(), 2u);

  p.executor(0).stop(/*crash=*/true);
  p.run(p.engine().now() + 10_s);
  EXPECT_EQ(p.rm().alive_executors(), 1u);
  // The dead executor's lease is gone; the healthy one's remains.
  EXPECT_EQ(p.rm().active_leases(), 1u);
}

struct PolicyPayloadCase {
  InvocationPolicy policy;
  std::size_t payload;
};

class PolicyPayloadSweep : public ::testing::TestWithParam<PolicyPayloadCase> {};

TEST_P(PolicyPayloadSweep, EchoIntegrityUnderEveryPolicy) {
  PlatformOptions opts;
  opts.spot_executors = 1;
  opts.cores_per_executor = 4;
  Platform p(opts);
  p.registry().add_echo();
  p.start();

  auto invoker = p.make_invoker(0, 1);
  const auto param = GetParam();
  InvocationResult res;
  rdmalib::Buffer<std::uint8_t> in = invoker->input_buffer<std::uint8_t>(param.payload);
  rdmalib::Buffer<std::uint8_t> out = invoker->output_buffer<std::uint8_t>(param.payload);
  fill_pattern({in.data(), param.payload}, param.payload);

  drive(p, 60_s, [&]() -> sim::Task<void> {
    AllocationSpec spec;
    spec.function_name = "echo";
    spec.policy = param.policy;
    EXPECT_TRUE((co_await invoker->allocate(spec)).ok());
    res = co_await invoker->invoke(0, in, param.payload, out);
    co_await invoker->deallocate();
  });

  EXPECT_TRUE(res.ok);
  EXPECT_EQ(res.output_bytes, param.payload);
  EXPECT_EQ(crc32(std::span<const std::uint8_t>(in.data(), param.payload)),
            crc32(std::span<const std::uint8_t>(out.data(), param.payload)));
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, PolicyPayloadSweep,
    ::testing::Values(PolicyPayloadCase{InvocationPolicy::HotAlways, 1},
                      PolicyPayloadCase{InvocationPolicy::HotAlways, 4096},
                      PolicyPayloadCase{InvocationPolicy::HotAlways, 1048576},
                      PolicyPayloadCase{InvocationPolicy::WarmAlways, 1},
                      PolicyPayloadCase{InvocationPolicy::WarmAlways, 4096},
                      PolicyPayloadCase{InvocationPolicy::WarmAlways, 1048576},
                      PolicyPayloadCase{InvocationPolicy::Adaptive, 1},
                      PolicyPayloadCase{InvocationPolicy::Adaptive, 4096},
                      PolicyPayloadCase{InvocationPolicy::Adaptive, 1048576}));

TEST(Integration, RealWorkloadEndToEndThroughPlatform) {
  // The thumbnail function through the full platform: lease, RDMA
  // transfer, real decode/resize/encode in the sandbox, result write.
  PlatformOptions opts;
  opts.spot_executors = 1;
  Platform p(opts);
  workloads::register_all(p.registry());
  p.start();

  auto img = workloads::synthetic_image(97'000, 5);
  auto ppm = workloads::encode_ppm(img);
  auto invoker = p.make_invoker(0, 1);
  auto in = invoker->input_buffer<std::uint8_t>(ppm.size());
  auto out = invoker->output_buffer<std::uint8_t>(1_MiB);
  std::memcpy(in.data(), ppm.data(), ppm.size());
  InvocationResult res;

  drive(p, 60_s, [&]() -> sim::Task<void> {
    AllocationSpec spec;
    spec.function_name = "thumbnail";
    spec.policy = InvocationPolicy::HotAlways;
    EXPECT_TRUE((co_await invoker->allocate(spec)).ok());
    res = co_await invoker->invoke(0, in, ppm.size(), out);
    co_await invoker->deallocate();
  });

  ASSERT_TRUE(res.ok);
  auto thumb = workloads::decode_ppm(std::span<const std::uint8_t>(out.raw(), res.output_bytes));
  ASSERT_TRUE(thumb.ok());
  EXPECT_LE(thumb.value().width, 128u);
  // The compute time dominates the RTT (4.4 ms-scale, not microseconds).
  EXPECT_GT(res.latency(), 3_ms);
}

}  // namespace
}  // namespace rfs::rfaas

// Tests for the zero-copy invocation data plane and the predictive warm
// sandbox pool (fig18):
//   - invocation frame codecs (encode_into / span decode / response decode)
//     and the coalesced LeasesTerminated message,
//   - fabric doorbell batching (post_send_many) and batched completion
//     draining (wait_polling_many), pinned to single-post/single-poll
//     semantics and to exact model timing,
//   - zero heap allocations on the invocation frame path (same global
//     operator-new hook as bench/fig16_hotpath.cpp),
//   - the invoker's registered slot pool (invoke_pooled),
//   - the executor warm pool state machine: park on retirement, revive on
//     a matching re-allocation, capacity / predictive eviction, memory
//     accounting, and the disabled-by-default seed behaviour,
//   - graceful drain: in-flight invocations finish before sandbox
//     teardown on eviction,
//   - end-to-end coalescing: one eviction sweep, one push per stream.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <new>

#include "cluster/harness.hpp"
#include "rfaas/platform.hpp"

// --------------------------------------------------------------------------
// Allocation counting (each tests/*.cpp builds into its own binary, so
// replacing global new/delete here is hermetic). The frame-path test
// demands zero allocations between two counter reads.
// --------------------------------------------------------------------------

namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace rfs::rfaas {
namespace {

// --------------------------------------------------------------------------
// Protocol: invocation frames and coalesced terminations
// --------------------------------------------------------------------------

TEST(DataPlaneProtocol, InvocationFrameRoundTrip) {
  std::uint8_t frame[InvocationHeader::kSize + 64];
  InvocationHeader h;
  h.result_addr = 0xABCDEF0123456789ull;
  h.result_rkey = 0xCAFE;
  ASSERT_EQ(encode_into(h, frame, sizeof(frame)), InvocationHeader::kSize);
  for (std::size_t i = 0; i < 64; ++i) {
    frame[InvocationHeader::kSize + i] = static_cast<std::uint8_t>(i * 3);
  }

  auto decoded = decode_invocation_frame({frame, sizeof(frame)},
                                         InvocationHeader::kSize + 16);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().header.result_addr, h.result_addr);
  EXPECT_EQ(decoded.value().header.result_rkey, h.result_rkey);
  ASSERT_EQ(decoded.value().payload.size(), 16u);
  // The payload view aliases the receive buffer — no copy.
  EXPECT_EQ(decoded.value().payload.data(), frame + InvocationHeader::kSize);
  EXPECT_EQ(decoded.value().payload[5], frame[InvocationHeader::kSize + 5]);
}

TEST(DataPlaneProtocol, InvocationFrameRejectsShortAndOverrunningWrites) {
  std::uint8_t frame[InvocationHeader::kSize + 8] = {};
  // Shorter than the header: not a valid submit frame.
  EXPECT_FALSE(decode_invocation_frame({frame, sizeof(frame)},
                                       InvocationHeader::kSize - 1)
                   .ok());
  // Claims more bytes than the buffer holds.
  EXPECT_FALSE(decode_invocation_frame({frame, sizeof(frame)},
                                       InvocationHeader::kSize + 9)
                   .ok());
  // encode_into refuses a too-small buffer instead of overrunning it.
  EXPECT_EQ(encode_into(InvocationHeader{}, frame, InvocationHeader::kSize - 1), 0u);
}

TEST(DataPlaneProtocol, InvocationResponseDecode) {
  fabric::Wc wc;
  wc.imm = Imm::result(/*id=*/12345, /*rejected=*/false);
  wc.has_imm = true;
  wc.byte_len = 512;
  auto resp = decode_invocation_response(wc);
  EXPECT_EQ(resp.invocation_id, 12345u);
  EXPECT_FALSE(resp.rejected);
  EXPECT_EQ(resp.output_bytes, 512u);

  wc.imm = Imm::result(/*id=*/77, /*rejected=*/true);
  wc.byte_len = 0;
  resp = decode_invocation_response(wc);
  EXPECT_EQ(resp.invocation_id, 77u);
  EXPECT_TRUE(resp.rejected);
}

TEST(DataPlaneProtocol, LeasesTerminatedRoundTrip) {
  LeasesTerminatedMsg m;
  m.reason = static_cast<std::uint8_t>(TerminationReason::QuotaPressure);
  m.evicted_at = 123456789;
  m.lease_ids = {7, 42, 1ull << 40};
  auto decoded = decode_leases_terminated(encode(m));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().reason, m.reason);
  EXPECT_EQ(decoded.value().evicted_at, m.evicted_at);
  EXPECT_EQ(decoded.value().lease_ids, m.lease_ids);
}

TEST(DataPlaneProtocol, LeasesTerminatedRejectsTruncation) {
  LeasesTerminatedMsg m;
  m.lease_ids = {1, 2, 3};
  Bytes wire = encode(m);
  for (std::size_t cut = 1; cut < wire.size(); ++cut) {
    Bytes truncated(wire.begin(), wire.begin() + cut);
    EXPECT_FALSE(decode_leases_terminated(truncated).ok()) << "cut=" << cut;
  }
}

// --------------------------------------------------------------------------
// Frame path allocates nothing
// --------------------------------------------------------------------------

TEST(DataPlaneProtocol, FramePathMakesNoAllocations) {
  std::uint8_t frame[InvocationHeader::kSize + 128];
  InvocationHeader h;
  h.result_addr = reinterpret_cast<std::uint64_t>(frame);
  h.result_rkey = 99;

  const std::uint64_t before = g_allocations.load(std::memory_order_relaxed);

  // Submit side: header into the registered buffer, WR + SGE on the
  // stack, immediate packed into 32 bits.
  std::size_t written = encode_into(h, frame, sizeof(frame));
  fabric::SendWr wr;
  wr.opcode = fabric::Opcode::WriteImm;
  wr.sge = {{reinterpret_cast<std::uint64_t>(frame),
             static_cast<std::uint32_t>(written + 64), 1}};
  wr.imm = Imm::invocation(/*fn=*/3, /*id=*/4242);

  // Executor side: span decode of the received frame.
  auto decoded = decode_invocation_frame({frame, sizeof(frame)},
                                         InvocationHeader::kSize + 64);

  // Response side: the reply is the packed immediate + byte count.
  fabric::Wc wc;
  wc.imm = Imm::result(Imm::invocation_id(wr.imm), false);
  wc.has_imm = true;
  wc.byte_len = 64;
  auto resp = decode_invocation_response(wc);

  const std::uint64_t after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0u) << "invocation frame path must not allocate";

  // Checks after the counter read (gtest itself may allocate).
  ASSERT_EQ(written, InvocationHeader::kSize);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().header.result_rkey, 99u);
  EXPECT_EQ(resp.invocation_id, 4242u);
  EXPECT_EQ(resp.output_bytes, 64u);
}

}  // namespace
}  // namespace rfs::rfaas

// --------------------------------------------------------------------------
// Fabric: doorbell batching and batched completion draining
// --------------------------------------------------------------------------

namespace rfs::fabric {
namespace {

class DataPlaneFabricTest : public ::testing::Test {
 protected:
  void SetUp() override {
    eng.make_current();
    devA = &fab.create_device("A");
    devB = &fab.create_device("B");
    pdA = devA->alloc_pd();
    pdB = devB->alloc_pd();
    scqA = std::make_unique<CompletionQueue>(fab.model());
    rcqA = std::make_unique<CompletionQueue>(fab.model());
    scqB = std::make_unique<CompletionQueue>(fab.model());
    rcqB = std::make_unique<CompletionQueue>(fab.model());
    qpA = devA->create_qp(pdA, scqA.get(), rcqA.get());
    qpB = devB->create_qp(pdB, scqB.get(), rcqB.get());
    QueuePair::connect_pair(*qpA, *qpB);
  }

  [[nodiscard]] Duration write_latency(std::uint64_t n, bool inlined) const {
    const auto& m = fab.model();
    return m.post_overhead + (inlined ? 0 : m.dma_read_latency) + m.wire_latency +
           m.wire_time(n) + m.cqe_overhead;
  }

  /// Builds an 8-byte inline write WR into `dst` (registered under mrB).
  [[nodiscard]] SendWr make_write(std::uint64_t wr_id, const std::uint8_t* src,
                                  MemoryRegion* mrA, std::uint8_t* dst,
                                  MemoryRegion* mrB) const {
    SendWr wr;
    wr.wr_id = wr_id;
    wr.opcode = Opcode::Write;
    wr.sge = {{reinterpret_cast<std::uint64_t>(src), 8, mrA->lkey()}};
    wr.remote_addr = reinterpret_cast<std::uint64_t>(dst);
    wr.rkey = mrB->rkey();
    wr.inline_data = true;
    return wr;
  }

  sim::Engine eng;
  Fabric fab{eng};
  Device* devA = nullptr;
  Device* devB = nullptr;
  ProtectionDomain* pdA = nullptr;
  ProtectionDomain* pdB = nullptr;
  std::unique_ptr<CompletionQueue> scqA, rcqA, scqB, rcqB;
  QueuePair* qpA = nullptr;
  QueuePair* qpB = nullptr;
};

struct Completion {
  Time at = 0;
  std::uint64_t wr_id = 0;
};

sim::Task<void> collect(sim::Engine& eng, CompletionQueue& cq, std::size_t n,
                        std::vector<Completion>& out) {
  for (std::size_t i = 0; i < n; ++i) {
    Wc wc = co_await cq.wait_polling();
    out.push_back({eng.now(), wc.wr_id});
  }
}

TEST_F(DataPlaneFabricTest, BatchedPostPaysOneDoorbell) {
  Bytes src(16), dst(16);
  fill_pattern(src, 7);
  auto* mrA = pdA->register_memory(src.data(), src.size(), LocalWrite);
  auto* mrB = pdB->register_memory(dst.data(), dst.size(), RemoteWrite);

  std::array<SendWr, 2> wrs = {
      make_write(1, src.data(), mrA, dst.data(), mrB),
      make_write(2, src.data() + 8, mrA, dst.data() + 8, mrB),
  };
  std::vector<Completion> recs;
  ASSERT_TRUE(qpA->post_send_many({wrs.data(), wrs.size()}).ok());
  sim::spawn(eng, collect(eng, *scqA, 2, recs));
  eng.run();

  EXPECT_EQ(src, dst);
  ASSERT_EQ(recs.size(), 2u);
  // The first WR pays the doorbell (MMIO + WQE fetch); the second rides
  // the same doorbell and completes post_overhead earlier.
  const Duration full = write_latency(8, true);
  EXPECT_EQ(recs[0].wr_id, 2u);
  EXPECT_EQ(recs[0].at, full - fab.model().post_overhead);
  EXPECT_EQ(recs[1].wr_id, 1u);
  EXPECT_EQ(recs[1].at, full);
}

TEST_F(DataPlaneFabricTest, SinglePostsEachPayTheirOwnDoorbell) {
  Bytes src(16), dst(16);
  fill_pattern(src, 9);
  auto* mrA = pdA->register_memory(src.data(), src.size(), LocalWrite);
  auto* mrB = pdB->register_memory(dst.data(), dst.size(), RemoteWrite);

  std::vector<Completion> recs;
  ASSERT_TRUE(qpA->post_send(make_write(1, src.data(), mrA, dst.data(), mrB)).ok());
  ASSERT_TRUE(
      qpA->post_send(make_write(2, src.data() + 8, mrA, dst.data() + 8, mrB)).ok());
  sim::spawn(eng, collect(eng, *scqA, 2, recs));
  eng.run();

  EXPECT_EQ(src, dst);
  ASSERT_EQ(recs.size(), 2u);
  // Both pay a full doorbell, so neither finishes before write_latency;
  // the second serializes behind the first on the TX link.
  const Duration full = write_latency(8, true);
  EXPECT_EQ(recs[0].wr_id, 1u);
  EXPECT_EQ(recs[0].at, full);
  EXPECT_EQ(recs[1].wr_id, 2u);
  EXPECT_EQ(recs[1].at, full + fab.model().wire_time(8));
}

TEST_F(DataPlaneFabricTest, BatchedPostValidatesWholeChainBeforePosting) {
  Bytes src(16), dst(16);
  auto* mrA = pdA->register_memory(src.data(), src.size(), LocalWrite);
  auto* mrB = pdB->register_memory(dst.data(), dst.size(), RemoteWrite);

  std::array<SendWr, 2> wrs = {
      make_write(1, src.data(), mrA, dst.data(), mrB),
      make_write(2, src.data() + 8, mrA, dst.data() + 8, mrB),
  };
  wrs[1].sge[0].lkey = 0xDEAD;  // second WR is bad: nothing may post
  EXPECT_FALSE(qpA->post_send_many({wrs.data(), wrs.size()}).ok());
  eng.run();
  Wc wc;
  EXPECT_EQ(scqA->poll(std::span<Wc>(&wc, 1)), 0u);
}

TEST_F(DataPlaneFabricTest, BatchedPollDrainsFifoLikeRepeatedSinglePolls) {
  Bytes src(48), dst(48);
  fill_pattern(src, 3);
  auto* mrA = pdA->register_memory(src.data(), src.size(), LocalWrite);
  auto* mrB = pdB->register_memory(dst.data(), dst.size(), RemoteWrite);

  for (std::uint64_t i = 0; i < 6; ++i) {
    ASSERT_TRUE(
        qpA->post_send(make_write(i + 1, src.data() + 8 * i, mrA, dst.data() + 8 * i, mrB))
            .ok());
  }
  eng.run();  // all six CQEs are queued now

  std::vector<std::uint64_t> order;
  auto drain = [&]() -> sim::Task<void> {
    // First half through the single-completion API...
    for (int i = 0; i < 3; ++i) {
      Wc wc = co_await scqA->wait_polling();
      order.push_back(wc.wr_id);
    }
    // ...rest through one batched drain: same completions, same order.
    std::array<Wc, 8> wcs;
    std::size_t got = co_await scqA->wait_polling_many({wcs.data(), wcs.size()});
    for (std::size_t i = 0; i < got; ++i) order.push_back(wcs[i].wr_id);
  };
  sim::spawn(eng, drain());
  eng.run();

  EXPECT_EQ(order, (std::vector<std::uint64_t>{1, 2, 3, 4, 5, 6}));
  EXPECT_EQ(src, dst);
}

TEST_F(DataPlaneFabricTest, BatchedPollWakesOnArrival) {
  Bytes src(8), dst(8);
  fill_pattern(src, 1);
  auto* mrA = pdA->register_memory(src.data(), src.size(), LocalWrite);
  auto* mrB = pdB->register_memory(dst.data(), dst.size(), RemoteWrite);

  std::size_t got = 0;
  Time woke_at = 0;
  auto waiter = [&]() -> sim::Task<void> {
    std::array<Wc, 4> wcs;
    got = co_await scqA->wait_polling_many({wcs.data(), wcs.size()});
    woke_at = eng.now();
    EXPECT_EQ(wcs[0].wr_id, 5u);
  };
  sim::spawn(eng, waiter());  // waits on an empty CQ
  ASSERT_TRUE(qpA->post_send(make_write(5, src.data(), mrA, dst.data(), mrB)).ok());
  eng.run();

  EXPECT_EQ(got, 1u);
  EXPECT_EQ(woke_at, write_latency(8, true));
}

}  // namespace
}  // namespace rfs::fabric

// --------------------------------------------------------------------------
// End-to-end: slot pool, warm pool, graceful drain, coalesced pushes
// --------------------------------------------------------------------------

namespace rfs::rfaas {
namespace {

cluster::ScenarioSpec small_fleet(unsigned executors = 1, unsigned cores = 4) {
  return cluster::ScenarioSpec::uniform(executors, cores, 32ull << 30, /*clients=*/1);
}

/// Drives a client task and runs the harness for `horizon` of virtual time.
template <typename MakeTask>
void drive(cluster::Harness& h, Duration horizon, MakeTask&& make_task) {
  bool finished = false;
  auto wrapper = [](bool* done, sim::Task<void> inner) -> sim::Task<void> {
    co_await std::move(inner);
    *done = true;
  };
  h.spawn(wrapper(&finished, make_task()));
  h.run_for(horizon);
  ASSERT_TRUE(finished) << "client task did not finish within the horizon";
}

TEST(SlotPool, PooledInvocationMatchesEchoSemantics) {
  cluster::Harness h(small_fleet());
  h.registry().add_echo();
  h.start();
  auto invoker = h.make_invoker();

  InvocationResult warmup{}, measured{};
  drive(h, 10_s, [&]() -> sim::Task<void> {
    AllocationSpec spec;
    spec.function_name = "echo";
    spec.workers = 1;
    spec.policy = InvocationPolicy::HotAlways;
    auto st = co_await invoker->allocate(spec);
    EXPECT_TRUE(st.ok()) << (st.ok() ? "" : st.error().message);
    invoker->reserve_slots(/*count=*/2, /*max_input=*/64, /*max_output=*/64);
    EXPECT_EQ(invoker->slot_count(), 2u);

    std::array<std::uint8_t, 16> payload;
    payload.fill(0x5A);
    warmup = co_await invoker->invoke_pooled(0, payload);
    measured = co_await invoker->invoke_pooled(0, payload);
    co_await invoker->deallocate();
  });

  EXPECT_TRUE(warmup.ok);
  EXPECT_TRUE(measured.ok);
  EXPECT_EQ(measured.output_bytes, 16u);
  // The pooled fast path serves a hot invocation at the same RTT as the
  // per-call-buffer API (~4 us hot no-op echo) — the win is that it pays
  // no registration or allocation per call, not a different wire cost.
  EXPECT_NEAR(static_cast<double>(measured.latency()), 4012.0, 60.0);
}

TEST(SlotPool, ConcurrentCallersShareSlotsViaTheSemaphore) {
  cluster::Harness h(small_fleet());
  h.registry().add_echo();
  h.start();
  auto invoker = h.make_invoker();

  unsigned ok_count = 0;
  drive(h, 10_s, [&]() -> sim::Task<void> {
    AllocationSpec spec;
    spec.function_name = "echo";
    spec.workers = 2;
    spec.policy = InvocationPolicy::HotAlways;
    auto st = co_await invoker->allocate(spec);
    EXPECT_TRUE(st.ok()) << (st.ok() ? "" : st.error().message);
    invoker->reserve_slots(/*count=*/2, /*max_input=*/64, /*max_output=*/64);

    // 6 concurrent submissions over 2 slots: the semaphore queues the
    // overflow instead of failing or corrupting slot state.
    sim::WaitGroup wg(6);
    std::array<std::uint8_t, 8> payload;
    payload.fill(0x11);
    auto one = [&]() -> sim::Task<void> {
      auto r = co_await invoker->invoke_pooled(0, payload);
      if (r.ok) ++ok_count;
      wg.done();
    };
    for (int i = 0; i < 6; ++i) sim::spawn(h.engine(), one());
    co_await wg.wait();
    co_await invoker->deallocate();
  });

  EXPECT_EQ(ok_count, 6u);
}

TEST(SlotPool, PooledInvokeWithoutReservationFailsCleanly) {
  cluster::Harness h(small_fleet());
  h.registry().add_echo();
  h.start();
  auto invoker = h.make_invoker();

  InvocationResult r{};
  drive(h, 10_s, [&]() -> sim::Task<void> {
    AllocationSpec spec;
    spec.function_name = "echo";
    spec.policy = InvocationPolicy::HotAlways;
    auto st = co_await invoker->allocate(spec);
    EXPECT_TRUE(st.ok());
    std::array<std::uint8_t, 8> payload{};
    r = co_await invoker->invoke_pooled(0, payload);  // no reserve_slots()
    co_await invoker->deallocate();
  });
  EXPECT_FALSE(r.ok);
}

// --------------------------------------------------------------------------
// Warm pool state machine
// --------------------------------------------------------------------------

TEST(WarmPool, DisabledByDefaultKeepsSeedBehavior) {
  cluster::Harness h(small_fleet());
  h.registry().add_echo();
  h.start();
  auto invoker = h.make_invoker();

  drive(h, 10_s, [&]() -> sim::Task<void> {
    AllocationSpec spec;
    spec.function_name = "echo";
    EXPECT_TRUE((co_await invoker->allocate(spec)).ok());
    co_await invoker->deallocate();
    co_await sim::delay(1_s);
  });

  EXPECT_EQ(h.executor(0).warm_pool_size(), 0u);
  EXPECT_EQ(h.executor(0).warm_pool_stats().parked, 0u);
  EXPECT_EQ(h.executor(0).warm_pool_memory_bytes(), 0u);
  EXPECT_EQ(h.executor(0).live_sandboxes(), 0u);
}

TEST(WarmPool, RetirementParksAndMatchingReallocationHits) {
  auto spec_fleet = small_fleet();
  spec_fleet.config.warm_pool_capacity = 4;
  cluster::Harness h(spec_fleet);
  h.registry().add_echo();
  h.start();
  auto invoker = h.make_invoker();

  std::size_t parked_size = 0;
  std::uint64_t parked_memory = 0;
  Duration cold_spawn = 0, warm_spawn = 0;
  InvocationResult after_revive{};

  drive(h, 30_s, [&]() -> sim::Task<void> {
    AllocationSpec spec;
    spec.function_name = "echo";
    spec.workers = 1;
    spec.policy = InvocationPolicy::HotAlways;
    EXPECT_TRUE((co_await invoker->allocate(spec)).ok());
    cold_spawn = invoker->cold_start().spawn_workers;
    co_await invoker->deallocate();
    co_await sim::delay(100_ms);

    parked_size = h.executor(0).warm_pool_size();
    parked_memory = h.executor(0).warm_pool_memory_bytes();

    // Same client, same shape: served by reviving the pooled sandbox.
    EXPECT_TRUE((co_await invoker->allocate(spec)).ok());
    warm_spawn = invoker->cold_start().spawn_workers;
    auto in = invoker->input_buffer<std::uint8_t>(64);
    auto out = invoker->output_buffer<std::uint8_t>(64);
    fill_pattern({in.data(), 64}, 42);
    (void)co_await invoker->invoke(0, in, 16, out);
    after_revive = co_await invoker->invoke(0, in, 16, out);
    EXPECT_TRUE(std::equal(in.data(), in.data() + 16, out.data()));
    co_await invoker->deallocate();
  });

  const auto& stats = h.executor(0).warm_pool_stats();
  EXPECT_EQ(parked_size, 1u);
  EXPECT_GT(parked_memory, 0u);  // the pool's cost: memory stays reserved
  EXPECT_GE(stats.parked, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);  // only the first, cold allocation
  EXPECT_TRUE(after_revive.ok);
  // Reviving skips process spawn + buffer registration: the second
  // allocation adds microseconds to the (cumulative) spawn breakdown,
  // orders of magnitude under the 25 ms bare-metal cold spawn.
  EXPECT_GT(cold_spawn, 25_ms);
  EXPECT_LT(warm_spawn - cold_spawn, 1_ms);
}

TEST(WarmPool, MismatchedShapeMissesAndGoesCold) {
  auto spec_fleet = small_fleet();
  spec_fleet.config.warm_pool_capacity = 4;
  cluster::Harness h(spec_fleet);
  h.registry().add_echo();
  h.start();
  auto invoker = h.make_invoker();

  drive(h, 30_s, [&]() -> sim::Task<void> {
    AllocationSpec spec;
    spec.function_name = "echo";
    spec.workers = 1;
    EXPECT_TRUE((co_await invoker->allocate(spec)).ok());
    co_await invoker->deallocate();
    co_await sim::delay(100_ms);

    spec.workers = 2;  // different shape: the pooled 1-worker sandbox can't serve it
    EXPECT_TRUE((co_await invoker->allocate(spec)).ok());
    co_await invoker->deallocate();
  });

  const auto& stats = h.executor(0).warm_pool_stats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_GE(stats.parked, 2u);  // both retirements entered the pool
}

TEST(WarmPool, CapacityBoundEvictsOldestParked) {
  auto spec_fleet = small_fleet();
  spec_fleet.config.warm_pool_capacity = 1;
  cluster::Harness h(spec_fleet);
  h.registry().add_echo();
  h.start();
  auto inv1 = h.make_invoker(0, 1);
  auto inv2 = h.make_invoker(0, 2);

  drive(h, 30_s, [&]() -> sim::Task<void> {
    AllocationSpec spec;
    spec.function_name = "echo";
    spec.workers = 1;
    EXPECT_TRUE((co_await inv1->allocate(spec)).ok());
    co_await inv1->deallocate();
    co_await sim::delay(100_ms);
    EXPECT_TRUE((co_await inv2->allocate(spec)).ok());
    co_await inv2->deallocate();
    co_await sim::delay(100_ms);
  });

  const auto& stats = h.executor(0).warm_pool_stats();
  EXPECT_EQ(h.executor(0).warm_pool_size(), 1u);  // bounded
  EXPECT_EQ(stats.parked, 2u);
  EXPECT_EQ(stats.capacity_evictions, 1u);  // client 1's sandbox pushed out
}

TEST(WarmPool, PredictiveSweeperEvictsPastTheKeepAliveHorizon) {
  auto spec_fleet = small_fleet();
  spec_fleet.config.warm_pool_capacity = 4;
  spec_fleet.config.warm_pool_max_keepalive = 2_s;  // no idle samples yet -> horizon = max
  spec_fleet.config.warm_pool_sweep_period = 500_ms;
  cluster::Harness h(spec_fleet);
  h.registry().add_echo();
  h.start();
  auto invoker = h.make_invoker();

  std::size_t size_before_horizon = 0;
  drive(h, 30_s, [&]() -> sim::Task<void> {
    AllocationSpec spec;
    spec.function_name = "echo";
    EXPECT_TRUE((co_await invoker->allocate(spec)).ok());
    co_await invoker->deallocate();
    co_await sim::delay(1_s);
    size_before_horizon = h.executor(0).warm_pool_size();
    co_await sim::delay(9_s);  // well past the 2 s horizon + sweep period
  });

  EXPECT_EQ(size_before_horizon, 1u);  // still warm inside the horizon
  EXPECT_EQ(h.executor(0).warm_pool_size(), 0u);
  EXPECT_EQ(h.executor(0).warm_pool_stats().predictive_evictions, 1u);
  EXPECT_EQ(h.executor(0).warm_pool_memory_bytes(), 0u);
}

TEST(WarmPool, IdleHistoryQuantileDrivesTheHorizon) {
  IdleHistory hist;
  EXPECT_EQ(hist.count(), 0u);
  hist.record(10);
  hist.record(40);
  hist.record(20);
  hist.record(30);
  EXPECT_EQ(hist.count(), 4u);
  EXPECT_EQ(hist.quantile(0.0), 10u);
  EXPECT_EQ(hist.quantile(0.5), 30u);  // nearest-rank over {10,20,30,40}
  EXPECT_EQ(hist.quantile(0.99), 40u);
  EXPECT_EQ(hist.quantile(1.0), 40u);

  // The window retains only the newest kWindow samples.
  for (std::size_t i = 0; i < IdleHistory::kWindow; ++i) hist.record(1000 + i);
  EXPECT_EQ(hist.count(), IdleHistory::kWindow);
  EXPECT_EQ(hist.quantile(0.0), 1000u);
  EXPECT_EQ(hist.quantile(1.0), 1000u + IdleHistory::kWindow - 1);
}

// --------------------------------------------------------------------------
// Graceful drain and coalesced termination pushes
// --------------------------------------------------------------------------

sim::Task<void> invoke_into(Invoker& invoker, rdmalib::Buffer<std::uint8_t>& in,
                            rdmalib::Buffer<std::uint8_t>& out, InvocationResult& result) {
  result = co_await invoker.invoke(0, in, 16, out);
}

TEST(GracefulDrain, InFlightInvocationFinishesBeforeEvictionTeardown) {
  cluster::Harness h(small_fleet());
  CodePackage slow;
  slow.name = "slow";
  slow.entry = [](const void* in, std::uint32_t size, void* out) -> std::uint32_t {
    std::memcpy(out, in, size);
    return size;
  };
  slow.cost = [](std::uint32_t) -> Duration { return 20_ms; };
  h.registry().add(std::move(slow));
  h.start();
  auto invoker = h.make_invoker();

  InvocationResult result{};
  drive(h, 30_s, [&]() -> sim::Task<void> {
    AllocationSpec spec;
    spec.function_name = "slow";
    spec.workers = 1;
    spec.policy = InvocationPolicy::HotAlways;
    EXPECT_TRUE((co_await invoker->allocate(spec)).ok());
    auto in = invoker->input_buffer<std::uint8_t>(64);
    auto out = invoker->output_buffer<std::uint8_t>(64);
    fill_pattern({in.data(), 64}, 5);

    // Launch a 20 ms invocation, then evict its lease 5 ms in: the
    // teardown must wait for the running invocation to deliver.
    sim::spawn(h.engine(), invoke_into(*invoker, in, out, result));
    co_await sim::delay(5_ms);
    (void)h.rm().evict_leases(h.rm().core().active_lease_ids(),
                              TerminationReason::QuotaPressure);
    co_await sim::delay(2_s);
  });

  EXPECT_TRUE(result.ok) << "in-flight invocation was cut off by the eviction";
  EXPECT_GE(result.latency(), 20_ms);
  EXPECT_GE(h.executor(0).drained_in_flight(), 1u);
  EXPECT_EQ(h.executor(0).live_sandboxes(), 0u);  // ...but the sandbox did go away
}

TEST(Coalescing, OneEvictionSweepSendsOnePushPerStream) {
  // Two 1-core executors: a 2-worker allocation spans two leases owned
  // by one (subscribed) client.
  cluster::Harness h(small_fleet(/*executors=*/2, /*cores=*/1));
  h.registry().add_echo();
  h.start();
  auto invoker = h.make_invoker();

  drive(h, 30_s, [&]() -> sim::Task<void> {
    AllocationSpec spec;
    spec.function_name = "echo";
    spec.workers = 2;
    spec.lease_timeout = 30_s;
    spec.self_heal = true;  // subscribes the notification stream
    EXPECT_TRUE((co_await invoker->allocate(spec)).ok());

    auto ids = h.rm().core().active_lease_ids();
    EXPECT_EQ(ids.size(), 2u);
    EXPECT_EQ(h.rm().evict_leases(ids, TerminationReason::QuotaPressure), 2u);
    co_await sim::delay(2_s);
    co_await invoker->deallocate();
  });

  // 2 evicted leases, 3 destination streams (2 executors + 1 client):
  // the client's stream got ONE LeasesTerminated carrying both ids, not
  // two pushes — 3 messages where the per-lease scheme sent 4.
  EXPECT_EQ(h.rm().evictions_notified(), 2u);
  EXPECT_EQ(h.rm().notification_messages(), 3u);
  // The client decoded the batched push: both leases were untracked (and
  // healed, since self_heal is on).
  EXPECT_EQ(invoker->leases().terminations(), 2u);
  EXPECT_GE(invoker->leases().reallocations(), 1u);
}

}  // namespace
}  // namespace rfs::rfaas

// Retransmission-FSM unit tests (ISSUE 7): the Session must recover a
// dropped exchange by timeout + retransmit, cap its exponential backoff,
// fail cleanly when the budget is exhausted, and ignore duplicate
// replies; the manager must answer retransmitted requests from its dedup
// table (never re-running the grant) and fence stale-epoch
// registrations. Labeled `chaos` in CMake (`ctest -L chaos`).
//
// ASSERT_* is forbidden inside coroutine bodies (it expands to a bare
// `return`), so server/client coroutines use EXPECT_* plus co_return
// guards.
#include <gtest/gtest.h>

#include "cluster/harness.hpp"
#include "fabric/fabric.hpp"
#include "net/faulty.hpp"
#include "net/tcp.hpp"
#include "rfaas/protocol.hpp"
#include "rfaas/session.hpp"

namespace rfs::rfaas {
namespace {

/// Tight timeouts so budget-exhaustion tests finish in microseconds of
/// wall time (everything is virtual time anyway).
SessionOptions quick_options() {
  SessionOptions o;
  o.rto_initial = 1_ms;
  o.rto_min = 500_us;
  o.rto_max = 4_ms;
  o.max_retransmits = 3;
  return o;
}

class SessionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    eng.make_current();
    client_dev = &fab.create_device("client");
    server_dev = &fab.create_device("server");
  }

  /// Connects a Session to a fake server; `server` receives the accepted
  /// stream and plays the manager's half of the exchange.
  template <typename ServerFn>
  std::shared_ptr<Session> run_against(ServerFn server_body,
                                       SessionOptions options = quick_options()) {
    auto& listener = tcp.listen(server_dev->id(), 80);
    sim::spawn(eng, [](net::TcpListener* l, ServerFn body) -> sim::Task<void> {
      auto stream = co_await l->accept();
      co_await body(stream);
    }(&listener, server_body));
    std::shared_ptr<Session> session;
    sim::spawn(eng, [](SessionTest* t, SessionOptions opts,
                       std::shared_ptr<Session>* out) -> sim::Task<void> {
      auto res = co_await t->tcp.connect(t->client_dev->id(), t->server_dev->id(), 80);
      EXPECT_TRUE(res.ok());
      if (!res.ok()) co_return;
      *out = std::make_shared<Session>(t->eng, res.value(), opts);
    }(this, options, &session));
    eng.run();
    return session;
  }

  static Bytes grant_reply(std::uint64_t request_id, std::uint64_t lease_id) {
    LeaseGrantMsg grant;
    grant.lease_id = lease_id;
    grant.workers = 1;
    grant.request_id = request_id;
    return encode(grant);
  }

  static Bytes lease_request(std::uint64_t request_id) {
    return encode(LeaseRequestMsg{1, 1, 64ull << 20, 60_s, request_id});
  }

  /// Decodes a LeaseRequest and echoes a grant for `lease_id`; replies
  /// `copies` times (duplicates are byte-identical frames).
  static void answer(net::TcpStream& s, const Bytes& raw, std::uint64_t lease_id,
                     int copies = 1) {
    auto req = decode_lease_request(raw);
    EXPECT_TRUE(req.ok());
    if (!req.ok()) return;
    for (int i = 0; i < copies; ++i) s.send(grant_reply(req.value().request_id, lease_id));
  }

  sim::Engine eng;
  fabric::Fabric fab;
  fabric::Device* client_dev = nullptr;
  fabric::Device* server_dev = nullptr;
  net::TcpNetwork tcp{eng, fab.net()};

  SessionTest() : fab(eng) {}
};

TEST_F(SessionTest, LosslessCallCompletesWithoutRetransmit) {
  auto session = run_against([](std::shared_ptr<net::TcpStream> s) -> sim::Task<void> {
    auto raw = co_await s->recv();
    EXPECT_TRUE(raw.has_value());
    if (raw) answer(*s, *raw, 42);
  });
  ASSERT_NE(session, nullptr);

  Result<Bytes> reply = Error::make(1, "not run");
  sim::spawn(eng, [](std::shared_ptr<Session> ss, Result<Bytes>* out) -> sim::Task<void> {
    const auto id = ss->next_request_id();
    *out = co_await ss->call(lease_request(id), id);
  }(session, &reply));
  eng.run();

  ASSERT_TRUE(reply.ok());
  auto grant = decode_lease_grant(reply.value());
  ASSERT_TRUE(grant.ok());
  EXPECT_EQ(grant.value().lease_id, 42u);
  EXPECT_EQ(session->retransmits(), 0u);
  EXPECT_EQ(session->call_failures(), 0u);
  // One clean RTT sample: the adaptive RTO clamps to the floor, well
  // under the pre-sample initial timeout.
  EXPECT_GE(session->current_rto(), quick_options().rto_min);
  EXPECT_LT(session->current_rto(), quick_options().rto_initial);
}

TEST_F(SessionTest, TimeoutFiresAndRetransmitRecoversLostRequest) {
  // The server swallows the first delivery — exactly what a dropped
  // request looks like — and answers the retransmitted copy.
  auto session = run_against([](std::shared_ptr<net::TcpStream> s) -> sim::Task<void> {
    auto first = co_await s->recv();
    EXPECT_TRUE(first.has_value());  // swallowed
    auto second = co_await s->recv();
    EXPECT_TRUE(second.has_value());
    if (second) answer(*s, *second, 7);
  });
  ASSERT_NE(session, nullptr);

  Result<Bytes> reply = Error::make(1, "not run");
  Time started = 0, finished = 0;
  sim::spawn(eng, [](sim::Engine* e, std::shared_ptr<Session> ss, Result<Bytes>* out,
                     Time* t0, Time* t1) -> sim::Task<void> {
    const auto id = ss->next_request_id();
    *t0 = e->now();
    *out = co_await ss->call(lease_request(id), id);
    *t1 = e->now();
  }(&eng, session, &reply, &started, &finished));
  eng.run();

  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(session->retransmits(), 1u);
  EXPECT_EQ(session->call_failures(), 0u);
  // The recovery had to sit through at least one full initial RTO.
  EXPECT_GE(finished - started, quick_options().rto_initial);
}

TEST_F(SessionTest, BudgetExhaustionFailsCleanlyWithCappedBackoff) {
  // The server never answers: the call must burn its whole retransmit
  // budget with exponential backoff capped at rto_max, then fail.
  auto session = run_against([](std::shared_ptr<net::TcpStream> s) -> sim::Task<void> {
    while (true) {
      auto raw = co_await s->recv();
      if (!raw.has_value()) co_return;  // swallow everything
    }
  });
  ASSERT_NE(session, nullptr);

  Result<Bytes> reply = Error::make(1, "not run");
  Time started = 0, finished = 0;
  sim::spawn(eng, [](sim::Engine* e, std::shared_ptr<Session> ss, Result<Bytes>* out,
                     Time* t0, Time* t1) -> sim::Task<void> {
    const auto id = ss->next_request_id();
    *t0 = e->now();
    *out = co_await ss->call(lease_request(id), id);
    *t1 = e->now();
  }(&eng, session, &reply, &started, &finished));
  eng.run();

  EXPECT_FALSE(reply.ok());
  EXPECT_EQ(session->retransmits(), quick_options().max_retransmits);
  EXPECT_EQ(session->call_failures(), 1u);
  // Backoff doubles from rto_initial=1ms but caps at rto_max=4ms:
  // the waits are 1, 2, 4, 4 ms. An uncapped doubling would be
  // 1+2+4+8 = 15 ms; the cap keeps total wait at 11 ms.
  const Duration elapsed = finished - started;
  EXPECT_GE(elapsed, 11_ms);
  EXPECT_LT(elapsed, 15_ms);
}

TEST_F(SessionTest, DuplicateReplyIsCountedAndDropped) {
  // The server answers twice (a duplicated reply frame). The second copy
  // must be absorbed by the session — counted, never surfaced — and the
  // session must stay usable for the next call.
  auto session = run_against([](std::shared_ptr<net::TcpStream> s) -> sim::Task<void> {
    auto raw = co_await s->recv();
    EXPECT_TRUE(raw.has_value());
    if (raw) answer(*s, *raw, 9, /*copies=*/2);
    auto next = co_await s->recv();
    if (next) answer(*s, *next, 10);
  });
  ASSERT_NE(session, nullptr);

  bool both_ok = false;
  sim::spawn(eng, [](std::shared_ptr<Session> ss, bool* ok) -> sim::Task<void> {
    const auto id1 = ss->next_request_id();
    auto r1 = co_await ss->call(SessionTest::lease_request(id1), id1);
    const auto id2 = ss->next_request_id();
    auto r2 = co_await ss->call(SessionTest::lease_request(id2), id2);
    *ok = r1.ok() && r2.ok();
  }(session, &both_ok));
  eng.run();

  EXPECT_TRUE(both_ok);
  EXPECT_EQ(session->duplicate_replies(), 1u);
  EXPECT_EQ(session->double_grants(), 0u);
}

TEST_F(SessionTest, ConflictingDuplicateGrantTripsTheDoubleGrantDetector) {
  // Same request id, DIFFERENT lease id: that is a real double-grant —
  // the invariant the chaos gate pins to zero — and must be flagged.
  auto session = run_against([](std::shared_ptr<net::TcpStream> s) -> sim::Task<void> {
    auto raw = co_await s->recv();
    EXPECT_TRUE(raw.has_value());
    if (raw) {
      answer(*s, *raw, 9);
      answer(*s, *raw, 666);  // conflicting grant for the same request id
    }
    (void)co_await s->recv();  // hold the stream open
  });
  ASSERT_NE(session, nullptr);

  sim::spawn(eng, [](std::shared_ptr<Session> ss) -> sim::Task<void> {
    const auto id = ss->next_request_id();
    (void)co_await ss->call(SessionTest::lease_request(id), id);
    co_await sim::delay(10_ms);  // let the duplicate land
    ss->stream()->close();
  }(session));
  eng.run();

  EXPECT_EQ(session->double_grants(), 1u);
}

TEST_F(SessionTest, StreamCloseFailsTheCallImmediately) {
  auto session = run_against([](std::shared_ptr<net::TcpStream> s) -> sim::Task<void> {
    auto raw = co_await s->recv();
    EXPECT_TRUE(raw.has_value());
    s->close();  // manager dies mid-exchange
  });
  ASSERT_NE(session, nullptr);

  Result<Bytes> reply = Error::make(1, "not run");
  sim::spawn(eng, [](std::shared_ptr<Session> ss, Result<Bytes>* out) -> sim::Task<void> {
    const auto id = ss->next_request_id();
    *out = co_await ss->call(SessionTest::lease_request(id), id);
  }(session, &reply));
  eng.run();

  EXPECT_FALSE(reply.ok());
  EXPECT_TRUE(session->closed());
  EXPECT_EQ(session->call_failures(), 1u);
}

// --------------------------------------------------------------------------
// Manager-side idempotence through the harness
// --------------------------------------------------------------------------

TEST(ManagerDedup, RetransmittedLeaseRequestIsAnsweredFromTheDedupTable) {
  auto spec = cluster::ScenarioSpec::uniform(/*executors=*/2, /*cores=*/8,
                                             /*memory_bytes=*/32ull << 30, /*clients=*/1);
  cluster::Harness h(spec);
  h.start();

  auto scenario = [&]() -> sim::Task<void> {
    auto res = co_await h.tcp().connect(h.client_device(0).id(), h.rm().device().id(),
                                        h.rm().port());
    EXPECT_TRUE(res.ok());
    if (!res.ok()) co_return;
    auto stream = res.value();

    // The same wire bytes delivered twice — exactly what a retransmitted
    // (or network-duplicated) request looks like to the manager.
    const Bytes req = encode(LeaseRequestMsg{1, 2, 64ull << 20, 60_s, (1ull << 32) | 1});
    stream->send(req);
    stream->send(req);

    auto first = co_await stream->recv();
    auto second = co_await stream->recv();
    EXPECT_TRUE(first.has_value());
    EXPECT_TRUE(second.has_value());
    if (!first || !second) co_return;
    auto g1 = decode_lease_grant(*first);
    auto g2 = decode_lease_grant(*second);
    EXPECT_TRUE(g1.ok());
    EXPECT_TRUE(g2.ok());
    if (!g1.ok() || !g2.ok()) co_return;
    // Byte-identical replay of the SAME grant: no second lease exists.
    EXPECT_EQ(g1.value().lease_id, g2.value().lease_id);
    EXPECT_EQ(*first, *second);

    // Duplicated release: second copy replays ReleaseOk, releases once.
    const Bytes rel = encode(
        ReleaseResourcesMsg{g1.value().lease_id, 1, 0, (1ull << 32) | 2});
    stream->send(rel);
    stream->send(rel);
    auto ok1 = co_await stream->recv();
    auto ok2 = co_await stream->recv();
    EXPECT_TRUE(ok1.has_value());
    EXPECT_TRUE(ok2.has_value());
    if (!ok1 || !ok2) co_return;
    EXPECT_TRUE(decode_release_ok(*ok1).ok());
    EXPECT_EQ(*ok1, *ok2);
  };
  h.spawn(scenario());
  h.run_for(5_s);

  EXPECT_EQ(h.rm().dedup_hits(), 2u);  // one duplicate request + one release
  EXPECT_EQ(h.rm().active_leases(), 0u);
  EXPECT_EQ(h.rm().free_workers_total(), h.rm().total_workers());
}

TEST(ManagerDedup, StaleEpochRegistrationIsFenced) {
  auto spec = cluster::ScenarioSpec::uniform(/*executors=*/1, /*cores=*/8,
                                             /*memory_bytes=*/32ull << 30, /*clients=*/1);
  cluster::Harness h(spec);
  h.start();

  auto scenario = [&]() -> sim::Task<void> {
    auto res = co_await h.tcp().connect(h.client_device(0).id(), h.rm().device().id(),
                                        h.rm().port());
    EXPECT_TRUE(res.ok());
    if (!res.ok()) co_return;
    auto stream = res.value();

    RegisterExecutorMsg reg;
    reg.device = h.client_device(0).id();  // any fabric device works
    reg.alloc_port = 7100;
    reg.rdma_port = 7101;
    reg.cores = 4;
    reg.memory_bytes = 1_GiB;
    reg.epoch = 5;
    reg.request_id = (5ull << 32) | 1;
    stream->send(encode(reg));
    auto first = co_await stream->recv();
    EXPECT_TRUE(first.has_value());
    if (!first) co_return;
    EXPECT_TRUE(decode_register_ok(*first).ok());

    // A replay from an abandoned session (same epoch, fresh request id)
    // must be refused — admitting it would double-count the device.
    reg.request_id = (5ull << 32) | 2;
    stream->send(encode(reg));
    auto second = co_await stream->recv();
    EXPECT_TRUE(second.has_value());
    if (!second) co_return;
    EXPECT_TRUE(decode_lease_error(*second).ok());

    // A NEWER epoch supersedes: the restarted executor re-registers.
    reg.epoch = 6;
    reg.request_id = (6ull << 32) | 1;
    stream->send(encode(reg));
    auto third = co_await stream->recv();
    EXPECT_TRUE(third.has_value());
    if (!third) co_return;
    EXPECT_TRUE(decode_register_ok(*third).ok());
  };
  h.spawn(scenario());
  h.run_for(5_s);

  EXPECT_EQ(h.rm().fenced_registrations(), 1u);
}

TEST(ManagerDedup, ChaosWorkloadHoldsLeaseInvariantsEndToEnd) {
  // A short lossy end-to-end run in tier-1: 5% symmetric drop/dup/
  // reorder on every client<->manager link, every client must survive,
  // no lease may double-grant, and the tables must drain to empty.
  // (bench/fig19_chaos runs the full schedule matrix; this pins the
  // machinery into the default test suite.)
  auto spec = cluster::ScenarioSpec::uniform(/*executors=*/4, /*cores=*/8,
                                             /*memory_bytes=*/32ull << 30, /*clients=*/4);
  spec.inject_faults = true;
  spec.faults = net::FaultSpec::symmetric(0.05);
  spec.fault_seed = 99;
  spec.session_options.rto_min = 100_us;
  spec.session_options.rto_initial = 1_ms;
  cluster::Harness h(spec);
  h.start();

  cluster::LeaseWorkload w;
  w.workers_min = 1;
  w.workers_max = 4;
  w.memory_per_worker = 64ull << 20;
  w.hold_min = 50_ms;
  w.hold_max = 500_ms;
  w.think_min = 10_ms;
  w.think_max = 100_ms;
  w.seed = 31;
  auto trace = h.run_lease_workload(w, /*horizon=*/10_s);

  EXPECT_GT(trace.granted, 0u);
  EXPECT_GT(trace.retransmits, 0u);  // the chaos actually bit
  EXPECT_EQ(trace.double_grants, 0u);
  EXPECT_EQ(trace.client_deaths, 0u);
  EXPECT_EQ(trace.client_survival_pct(), 100.0);
  // assert_drained (default) aborts the process if anything leaks.
  EXPECT_EQ(h.leaked_leases_after(/*grace=*/120_s), 0u);
  EXPECT_GT(h.fault_injector()->counters().dropped, 0u);
}

}  // namespace
}  // namespace rfs::rfaas

// Replay-equivalence tests of the replication journal (journal.hpp) and
// the warm standby replica (replica.hpp): seeded random op sequences —
// grants, renews, releases, expiry sweeps, quota evictions, drains,
// rebalances, executor deaths — run against a journaling primary, then
// the journal replays on a fresh replica and the two managers' canonical
// states must compare (and digest) identically. Also pinned: snapshot +
// suffix replay equals full replay, the wire-framed replication stream
// is lossless, and truncation / corruption / reordering of the log is
// detected rather than silently replayed.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.hpp"
#include "rfaas/journal.hpp"
#include "rfaas/protocol.hpp"
#include "rfaas/replica.hpp"
#include "rfaas/sharded_manager.hpp"

namespace rfs::rfaas {
namespace {

using SRM = ShardedResourceManager;

ExecutorEntry entry(std::uint32_t workers, std::uint64_t memory = 64ull << 30,
                    std::uint32_t locality = 0) {
  ExecutorEntry e;
  e.total_workers = workers;
  e.free_workers = workers;
  e.free_memory = memory;
  e.alive = true;
  e.locality = locality;
  e.info.cores = workers;
  e.info.memory_bytes = memory;
  return e;
}

ScheduleRequest request(std::uint32_t workers, std::uint64_t memory_per_worker = 1 << 20) {
  ScheduleRequest r;
  r.workers = workers;
  r.memory_per_worker = memory_per_worker;
  return r;
}

Config journaled_config(unsigned shards, std::uint64_t seed = 42,
                        SchedulingPolicy policy = SchedulingPolicy::RoundRobin) {
  Config c;
  c.manager_shards = shards;
  c.scheduling = policy;
  c.scheduler_seed = seed;
  c.journal_enabled = true;
  return c;
}

/// Drives a seeded random op mix against a primary, remembering the
/// lease ids and executor ids it created so later ops can target them.
/// Stale targets are fine — release/renew/evict of a gone lease is a
/// no-op on the primary and journals nothing.
struct OpDriver {
  SRM& m;
  Rng rng;
  Time now = 0;
  std::vector<std::uint64_t> leases;
  std::vector<std::uint64_t> executors;

  OpDriver(SRM& manager, std::uint64_t seed) : m(manager), rng(seed) {}

  std::uint64_t pick(const std::vector<std::uint64_t>& v) {
    return v[rng.uniform_int(0, v.size() - 1)];
  }

  void grant(std::uint32_t max_workers, Duration timeout) {
    const auto client = static_cast<std::uint32_t>(rng.uniform_int(1, 6));
    auto g = m.grant(request(static_cast<std::uint32_t>(rng.uniform_int(1, max_workers))),
                     client, timeout, now);
    if (g) leases.push_back(g->lease_id);
  }

  void release() {
    if (!leases.empty()) m.release(pick(leases));
  }

  void renew(Duration extend) {
    if (!leases.empty()) m.renew(pick(leases), now + extend);
  }

  void evict() {
    if (!leases.empty()) m.evict(pick(leases));
  }
};

/// Replays the primary's full serialized journal on a fresh replica and
/// asserts canonical-state and digest equality.
void expect_replay_equivalent(const SRM& primary, const Config& config) {
  ASSERT_NE(primary.journal(), nullptr);
  StandbyReplica replica(config);
  const Bytes log = primary.journal()->serialize();
  auto replayed = replica.replay(log);
  ASSERT_TRUE(replayed.ok()) << replayed.error().message;
  EXPECT_EQ(replica.applied_seq(), primary.journal()->last_seq());

  const auto want = primary.export_state();
  const auto got = replica.export_state();
  EXPECT_TRUE(want == got);
  EXPECT_EQ(want.digest(), got.digest());
}

// --------------------------------------------------------------------------
// Journal mechanics
// --------------------------------------------------------------------------

TEST(Journal, AppendAssignsSeqAndChainsChecksums) {
  Journal j;
  JournalRecordMsg a;
  a.op = static_cast<std::uint8_t>(journal::Op::Grant);
  a.lease_id = 7;
  const auto a_out = j.append(a);
  JournalRecordMsg b;
  b.op = static_cast<std::uint8_t>(journal::Op::Release);
  b.lease_id = 7;
  const auto b_out = j.append(b);

  EXPECT_EQ(a_out.seq, 1u);
  EXPECT_EQ(b_out.seq, 2u);
  EXPECT_EQ(a_out.checksum, journal::chain_checksum(a_out, 0));
  EXPECT_EQ(b_out.checksum, journal::chain_checksum(b_out, a_out.checksum));
  EXPECT_EQ(j.last_seq(), 2u);
  EXPECT_EQ(j.last_checksum(), b_out.checksum);
}

TEST(Journal, SinksSeeEveryRecordInOrder) {
  Journal j;
  std::vector<std::uint64_t> seen;
  j.add_sink([&](const JournalRecordMsg& r) { seen.push_back(r.seq); });
  for (int i = 0; i < 5; ++i) {
    JournalRecordMsg r;
    r.op = static_cast<std::uint8_t>(journal::Op::Renew);
    j.append(r);
  }
  EXPECT_EQ(seen, (std::vector<std::uint64_t>{1, 2, 3, 4, 5}));
}

TEST(Journal, SerializeDeserializeRoundTrips) {
  Journal j;
  for (std::uint64_t i = 0; i < 16; ++i) {
    JournalRecordMsg r;
    r.op = static_cast<std::uint8_t>(journal::Op::Grant);
    r.lease_id = i;
    r.client_id = static_cast<std::uint32_t>(i % 3);
    r.memory = i << 20;
    j.append(r);
  }
  auto records = Journal::deserialize(j.serialize());
  ASSERT_TRUE(records.ok()) << records.error().message;
  ASSERT_EQ(records.value().size(), 16u);
  for (std::uint64_t i = 0; i < 16; ++i) {
    EXPECT_EQ(records.value()[i].seq, i + 1);
    EXPECT_EQ(records.value()[i].lease_id, i);
  }
}

TEST(Journal, TruncateKeepsSuffixReplayable) {
  Journal j;
  for (int i = 0; i < 10; ++i) {
    JournalRecordMsg r;
    r.op = static_cast<std::uint8_t>(journal::Op::Renew);
    r.lease_id = static_cast<std::uint64_t>(i);
    j.append(r);
  }
  j.truncate_before(7);  // records 1..6 folded into a snapshot
  EXPECT_EQ(j.size(), 4u);
  EXPECT_EQ(j.base_seq(), 7u);
  auto suffix = Journal::deserialize(j.serialize());
  ASSERT_TRUE(suffix.ok()) << suffix.error().message;
  ASSERT_EQ(suffix.value().size(), 4u);
  EXPECT_EQ(suffix.value().front().seq, 7u);
}

// --------------------------------------------------------------------------
// Corruption and truncation detection
// --------------------------------------------------------------------------

TEST(JournalCorruption, TruncatedTailIsDetected) {
  Journal j;
  for (int i = 0; i < 8; ++i) {
    JournalRecordMsg r;
    r.op = static_cast<std::uint8_t>(journal::Op::Grant);
    r.lease_id = static_cast<std::uint64_t>(i);
    j.append(r);
  }
  const Bytes log = j.serialize();
  // Chop the log at every prefix length: none may decode cleanly
  // (a shorter log that still decodes would be a silently lost tail).
  for (std::size_t keep = 0; keep < log.size(); ++keep) {
    Bytes chopped(log.begin(), log.begin() + static_cast<std::ptrdiff_t>(keep));
    auto records = Journal::deserialize(chopped);
    EXPECT_FALSE(records.ok()) << "decoded a log truncated to " << keep << " bytes";
  }
}

TEST(JournalCorruption, BitFlipsAreDetected) {
  Journal j;
  for (int i = 0; i < 8; ++i) {
    JournalRecordMsg r;
    r.op = static_cast<std::uint8_t>(journal::Op::Grant);
    r.lease_id = static_cast<std::uint64_t>(i);
    r.workers = 2;
    j.append(r);
  }
  const Bytes log = j.serialize();
  Rng rng(0xC0FFEEu);
  int rejected = 0, trials = 0;
  for (int t = 0; t < 200; ++t) {
    Bytes corrupted = log;
    const auto at = rng.uniform_int(0, corrupted.size() - 1);
    const auto bit = static_cast<std::uint8_t>(1u << rng.uniform_int(0, 7));
    corrupted[at] ^= bit;
    ++trials;
    if (!Journal::deserialize(corrupted).ok()) ++rejected;
  }
  // A flip landing in a record's own checksum field can only forge a
  // valid chain by colliding splitmix64; everything else must be caught
  // structurally or by the chain. Demand every trial rejects.
  EXPECT_EQ(rejected, trials);
}

TEST(JournalCorruption, ReplicaRejectsSeqGapsAndChainBreaks) {
  Journal j;
  std::vector<JournalRecordMsg> records;
  for (int i = 0; i < 4; ++i) {
    JournalRecordMsg r;
    r.op = static_cast<std::uint8_t>(journal::Op::Renew);
    r.lease_id = 99;  // no such lease: apply() would fail, but the
                      // sequencing checks fire first on the bad records
    records.push_back(j.append(r));
  }
  const Config config = journaled_config(1);

  // Gap: skipping record 1 means record 2 arrives at applied_seq 0.
  StandbyReplica gap(config);
  auto gapped = gap.apply(records[1]);
  ASSERT_FALSE(gapped.ok());
  EXPECT_EQ(gapped.error().code, 53);

  // Chain break: record 1 with a tampered payload fails the checksum.
  StandbyReplica chain(config);
  JournalRecordMsg tampered = records[0];
  tampered.lease_id = 100;
  auto broken = chain.apply(tampered);
  ASSERT_FALSE(broken.ok());
  EXPECT_EQ(broken.error().code, 54);

  // Duplicate delivery of an applied seq is benign (at-least-once sink).
  StandbyReplica dup(config);
  JournalRecordMsg grant;
  grant.op = static_cast<std::uint8_t>(journal::Op::AddExecutor);
  grant.workers = 4;
  grant.memory = 64ull << 30;
  Journal j2;
  const auto rec = j2.append(grant);
  ASSERT_TRUE(dup.apply(rec).ok());
  ASSERT_TRUE(dup.apply(rec).ok());  // replayed duplicate: no-op
  EXPECT_EQ(dup.applied_seq(), 1u);
}

TEST(JournalCorruption, SnapshotDigestMismatchIsRejected) {
  const Config config = journaled_config(2);
  SRM primary(config);
  primary.add_executor(entry(8));
  primary.add_executor(entry(8));
  ASSERT_TRUE(primary.grant(request(2), 1, 1000, 0).has_value());

  auto state = primary.export_state();
  SnapshotOfferMsg offer;
  offer.manager_epoch = 2;
  offer.upto_seq = primary.journal()->last_seq();
  offer.digest = state.digest();
  offer.lease_count = 1;

  // Tamper with the state after the digest was taken: a torn snapshot.
  auto torn = state;
  torn.shards[0].next_lease += 1;
  StandbyReplica replica(config);
  auto installed = replica.install_snapshot(torn, offer, 0);
  ASSERT_FALSE(installed.ok());
  EXPECT_EQ(installed.error().code, 50);

  // The intact snapshot installs and reports the offered epoch.
  auto ok = replica.install_snapshot(state, offer, 0);
  ASSERT_TRUE(ok.ok()) << ok.error().message;
  EXPECT_EQ(replica.snapshot_epoch(), 2u);
  EXPECT_TRUE(replica.export_state() == state);
}

// --------------------------------------------------------------------------
// Replay equivalence: seeded op-sequence shapes
// --------------------------------------------------------------------------

// Shape 1: grant/release-heavy steady state — the common-case traffic of
// a loaded manager, across shards and tenants, with occasional renews.
TEST(ReplayEquivalence, GrantReleaseHeavyShape) {
  for (const std::uint64_t seed : {1u, 7u, 1234u}) {
    const Config config = journaled_config(4, seed);
    SRM primary(config);
    OpDriver drv(primary, seed);
    for (int i = 0; i < 12; ++i) drv.executors.push_back(primary.add_executor(entry(8)));
    for (int i = 0; i < 400; ++i) {
      const double p = drv.rng.uniform();
      if (p < 0.55) {
        drv.grant(/*max_workers=*/3, /*timeout=*/10'000'000);
      } else if (p < 0.85) {
        drv.release();
      } else {
        drv.renew(/*extend=*/20'000'000);
      }
      drv.now += 1000;
    }
    ASSERT_GT(primary.grants(), 0u);
    expect_replay_equivalent(primary, config);
  }
}

// Shape 2: churn with expiry — short leases, periodic heartbeat-style
// sweeps (both the indexed heap drain and the reference full scan) and
// renewals racing the deadline.
TEST(ReplayEquivalence, ExpiryChurnShape) {
  for (const std::uint64_t seed : {3u, 11u, 2026u}) {
    const Config config = journaled_config(2, seed, SchedulingPolicy::PowerOfTwoChoices);
    SRM primary(config);
    OpDriver drv(primary, seed);
    for (int i = 0; i < 6; ++i) drv.executors.push_back(primary.add_executor(entry(6)));
    for (int i = 0; i < 300; ++i) {
      const double p = drv.rng.uniform();
      if (p < 0.5) {
        drv.grant(/*max_workers=*/2, /*timeout=*/5'000);  // expires in 5 us
      } else if (p < 0.7) {
        drv.renew(/*extend=*/8'000);
      } else if (p < 0.8) {
        drv.release();
      }
      drv.now += 1'000;
      if (i % 16 == 0) primary.sweep_expired(drv.now);
      if (i % 64 == 32) primary.sweep_expired_scan(drv.now);  // reference path
    }
    primary.sweep_expired(drv.now + 100'000);
    expect_replay_equivalent(primary, config);
  }
}

// Shape 3: operator-driven reshaping — quota evictions, drains, shard
// rebalances, executor deaths and late registrations interleaved with
// live traffic. Exercises every journaled op including Migrate,
// SetDraining and MarkDead.
TEST(ReplayEquivalence, RebalanceDrainEvictShape) {
  for (const std::uint64_t seed : {5u, 21u, 4242u}) {
    const Config config = journaled_config(3, seed);
    SRM primary(config);
    OpDriver drv(primary, seed);
    for (int i = 0; i < 9; ++i) {
      drv.executors.push_back(
          primary.add_executor(entry(8, 64ull << 30, static_cast<std::uint32_t>(i % 3))));
    }
    for (int i = 0; i < 250; ++i) {
      const double p = drv.rng.uniform();
      if (p < 0.45) {
        drv.grant(/*max_workers=*/4, /*timeout=*/50'000'000);
      } else if (p < 0.6) {
        drv.release();
      } else if (p < 0.7) {
        drv.evict();
      } else if (p < 0.78) {
        primary.reclaim_quota(/*requesting_client=*/7, /*quota_workers=*/6,
                              /*workers_needed=*/4);
      } else if (p < 0.86) {
        primary.drain_executor(drv.pick(drv.executors));
      } else if (p < 0.92) {
        primary.rebalance(/*max_skew=*/1.2, /*max_moves=*/2, drv.now);
      } else if (p < 0.96) {
        primary.mark_dead(drv.pick(drv.executors));
      } else {
        drv.executors.push_back(primary.add_executor(
            entry(static_cast<std::uint32_t>(drv.rng.uniform_int(2, 8)))));
      }
      drv.now += 10'000;
    }
    expect_replay_equivalent(primary, config);
  }
}

// --------------------------------------------------------------------------
// Wire-framed replication stream
// --------------------------------------------------------------------------

// The live replication path ships each record as a wire frame the moment
// it is appended; a replica fed through encode/decode must converge to
// the same state as one fed the in-memory records.
TEST(ReplayEquivalence, WireFramedSinkStreamsLosslessly) {
  const std::uint64_t seed = 99;
  const Config config = journaled_config(2, seed);
  SRM primary(config);
  StandbyReplica replica(config);
  primary.journal()->add_sink([&](const JournalRecordMsg& r) {
    const Bytes frame = encode(r);  // full wire frame, type byte included
    auto applied = replica.apply_wire(frame);
    ASSERT_TRUE(applied.ok()) << applied.error().message;
  });

  OpDriver drv(primary, seed);
  for (int i = 0; i < 8; ++i) drv.executors.push_back(primary.add_executor(entry(8)));
  for (int i = 0; i < 200; ++i) {
    const double p = drv.rng.uniform();
    if (p < 0.5) {
      drv.grant(3, 10'000'000);
    } else if (p < 0.75) {
      drv.release();
    } else if (p < 0.9) {
      drv.renew(20'000'000);
    } else {
      drv.evict();
    }
    drv.now += 2'000;
    if (i % 32 == 0) primary.sweep_expired(drv.now);
  }

  EXPECT_EQ(replica.applied_seq(), primary.journal()->last_seq());
  const auto want = primary.export_state();
  const auto got = replica.export_state();
  EXPECT_TRUE(want == got);
  EXPECT_EQ(want.digest(), got.digest());
}

// --------------------------------------------------------------------------
// Snapshot + suffix equals full replay
// --------------------------------------------------------------------------

TEST(ReplayEquivalence, SnapshotPlusSuffixEqualsFullReplay) {
  const std::uint64_t seed = 17;
  const Config config = journaled_config(3, seed);
  SRM primary(config);
  OpDriver drv(primary, seed);
  for (int i = 0; i < 9; ++i) drv.executors.push_back(primary.add_executor(entry(8)));

  auto run_ops = [&](int count) {
    for (int i = 0; i < count; ++i) {
      const double p = drv.rng.uniform();
      if (p < 0.5) {
        drv.grant(3, 10'000'000);
      } else if (p < 0.75) {
        drv.release();
      } else if (p < 0.9) {
        drv.renew(20'000'000);
      } else {
        drv.evict();
      }
      drv.now += 1'500;
    }
  };

  run_ops(150);

  // Mid-history snapshot, exactly what a periodic SnapshotOffer carries.
  const auto snapshot = primary.export_state();
  SnapshotOfferMsg offer;
  offer.manager_epoch = 1;
  offer.upto_seq = primary.journal()->last_seq();
  offer.digest = snapshot.digest();
  offer.lease_count = 0;
  for (const auto& shard : snapshot.shards) offer.lease_count += shard.leases.size();

  run_ops(150);
  primary.sweep_expired(drv.now + 100'000'000);

  // Replica A: full replay from genesis.
  StandbyReplica full(config);
  ASSERT_TRUE(full.replay(primary.journal()->serialize()).ok());

  // Replica B: snapshot install + suffix replay (the warm-standby path).
  StandbyReplica warm(config);
  auto installed = warm.install_snapshot(snapshot, offer, drv.now);
  ASSERT_TRUE(installed.ok()) << installed.error().message;
  ASSERT_TRUE(warm.replay(primary.journal()->serialize(offer.upto_seq + 1)).ok());

  const auto want = primary.export_state();
  EXPECT_TRUE(full.export_state() == want);
  EXPECT_TRUE(warm.export_state() == want);
  EXPECT_EQ(full.export_state().digest(), want.digest());
  EXPECT_EQ(warm.export_state().digest(), want.digest());
  EXPECT_EQ(full.applied_seq(), warm.applied_seq());

  // Primary-side log truncation behind the snapshot: the retained suffix
  // still replays onto a snapshot-installed replica.
  primary.journal()->truncate_before(offer.upto_seq + 1);
  StandbyReplica late(config);
  ASSERT_TRUE(late.install_snapshot(snapshot, offer, drv.now).ok());
  ASSERT_TRUE(late.replay(primary.journal()->serialize()).ok());
  EXPECT_TRUE(late.export_state() == want);
}

// A replica that replays the same log twice (retransmitted suffix after
// a reconnect) converges once and ignores the duplicates.
TEST(ReplayEquivalence, DuplicateSuffixReplayIsIdempotent) {
  const Config config = journaled_config(2, 23);
  SRM primary(config);
  OpDriver drv(primary, 23);
  for (int i = 0; i < 4; ++i) drv.executors.push_back(primary.add_executor(entry(4)));
  for (int i = 0; i < 60; ++i) {
    if (drv.rng.uniform() < 0.7) {
      drv.grant(2, 5'000'000);
    } else {
      drv.release();
    }
    drv.now += 1'000;
  }

  StandbyReplica replica(config);
  const Bytes log = primary.journal()->serialize();
  ASSERT_TRUE(replica.replay(log).ok());
  ASSERT_TRUE(replica.replay(log).ok());  // full retransmission: benign
  EXPECT_EQ(replica.applied_seq(), primary.journal()->last_seq());
  EXPECT_TRUE(replica.export_state() == primary.export_state());
}

}  // namespace
}  // namespace rfs::rfaas

// Tests for the TCP overlay and the HTTP message model.
#include <gtest/gtest.h>

#include "fabric/fabric.hpp"
#include "net/http.hpp"
#include "net/tcp.hpp"

namespace rfs::net {
namespace {

class NetTest : public ::testing::Test {
 protected:
  void SetUp() override {
    eng.make_current();
    devA = &fab.create_device("A");
    devB = &fab.create_device("B");
  }

  sim::Engine eng;
  fabric::Fabric fab{eng};
  fabric::Device* devA = nullptr;
  fabric::Device* devB = nullptr;
  TcpNetwork tcp{eng, fab.net()};
};

TEST_F(NetTest, ConnectSendReceive) {
  auto& listener = tcp.listen(devB->id(), 80);
  Bytes received;
  auto server = [&]() -> sim::Task<void> {
    auto stream = co_await listener.accept();
    auto msg = co_await stream->recv();
    if (msg) received = *msg;
    stream->send(Bytes{42});
  };
  Bytes reply;
  auto client = [&]() -> sim::Task<void> {
    auto res = co_await tcp.connect(devA->id(), devB->id(), 80);
    EXPECT_TRUE(res.ok());
    auto stream = res.value();
    Bytes payload(1000);
    fill_pattern(payload, 7);
    stream->send(payload);
    auto r = co_await stream->recv();
    if (r) reply = *r;
  };
  sim::spawn(eng, server());
  sim::spawn(eng, client());
  eng.run();
  EXPECT_EQ(received.size(), 1000u);
  EXPECT_EQ(reply, Bytes{42});
}

TEST_F(NetTest, TcpSlowerThanRdmaForSmallMessages) {
  // One TCP round trip must exceed the RDMA ping-pong RTT (Fig. 8).
  auto& listener = tcp.listen(devB->id(), 80);
  auto server = [&]() -> sim::Task<void> {
    auto stream = co_await listener.accept();
    auto msg = co_await stream->recv();
    (void)msg;
    stream->send(Bytes{1});
  };
  Time start = 0, end = 0;
  auto client = [&]() -> sim::Task<void> {
    auto res = co_await tcp.connect(devA->id(), devB->id(), 80);
    auto stream = res.value();
    start = eng.now();
    stream->send(Bytes{1});
    (void)co_await stream->recv();
    end = eng.now();
  };
  sim::spawn(eng, server());
  sim::spawn(eng, client());
  eng.run();
  Duration rtt = end - start;
  EXPECT_GT(rtt, 15_us);  // ~19 us with the netperf-calibrated model
  EXPECT_LT(rtt, 25_us);
}

TEST_F(NetTest, ConnectionRefusedWithoutListener) {
  bool refused = false;
  auto client = [&]() -> sim::Task<void> {
    auto res = co_await tcp.connect(devA->id(), devB->id(), 12345);
    refused = !res.ok();
  };
  sim::spawn(eng, client());
  eng.run();
  EXPECT_TRUE(refused);
}

TEST_F(NetTest, CloseWakesPeer) {
  auto& listener = tcp.listen(devB->id(), 80);
  bool saw_close = false;
  auto server = [&]() -> sim::Task<void> {
    auto stream = co_await listener.accept();
    auto msg = co_await stream->recv();
    saw_close = !msg.has_value();
  };
  auto client = [&]() -> sim::Task<void> {
    auto res = co_await tcp.connect(devA->id(), devB->id(), 80);
    res.value()->close();
  };
  sim::spawn(eng, server());
  sim::spawn(eng, client());
  eng.run();
  EXPECT_TRUE(saw_close);
}

TEST_F(NetTest, MessagesStayOrdered) {
  auto& listener = tcp.listen(devB->id(), 80);
  std::vector<std::uint8_t> order;
  auto server = [&]() -> sim::Task<void> {
    auto stream = co_await listener.accept();
    for (int i = 0; i < 5; ++i) {
      auto msg = co_await stream->recv();
      if (msg) order.push_back((*msg)[0]);
    }
  };
  auto client = [&]() -> sim::Task<void> {
    auto res = co_await tcp.connect(devA->id(), devB->id(), 80);
    for (std::uint8_t i = 0; i < 5; ++i) {
      Bytes b(1 + 100 * i);  // varying sizes must not reorder delivery
      b[0] = i;
      res.value()->send(std::move(b));
    }
  };
  sim::spawn(eng, server());
  sim::spawn(eng, client());
  eng.run();
  EXPECT_EQ(order, (std::vector<std::uint8_t>{0, 1, 2, 3, 4}));
}

TEST(Http, RequestRoundTrip) {
  HttpRequest req;
  req.method = "POST";
  req.path = "/2015-03-31/functions/echo/invocations";
  req.headers["Host"] = "lambda.example.com";
  req.body = "{\"payload\":\"abc\"}";
  auto raw = req.serialize();
  auto parsed = HttpRequest::parse(raw);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().method, "POST");
  EXPECT_EQ(parsed.value().path, req.path);
  EXPECT_EQ(parsed.value().body, req.body);
  EXPECT_EQ(parsed.value().headers.at("Host"), "lambda.example.com");
  EXPECT_EQ(parsed.value().headers.at("Content-Length"), "17");
}

TEST(Http, ResponseRoundTrip) {
  HttpResponse resp;
  resp.status = 413;
  resp.body = "too big";
  auto raw = resp.serialize();
  auto parsed = HttpResponse::parse(raw);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().status, 413);
  EXPECT_FALSE(parsed.value().ok());
  EXPECT_EQ(parsed.value().body, "too big");
}

TEST(Http, RejectsContentLengthMismatch) {
  HttpRequest req;
  req.body = "hello";
  auto raw = req.serialize();
  raw.pop_back();  // truncate body
  EXPECT_FALSE(HttpRequest::parse(raw).ok());
}

TEST(Http, RejectsGarbage) {
  Bytes junk{'n', 'o', 'p', 'e'};
  EXPECT_FALSE(HttpRequest::parse(junk).ok());
  EXPECT_FALSE(HttpResponse::parse(junk).ok());
}

TEST_F(NetTest, HttpOverTcp) {
  auto& listener = tcp.listen(devB->id(), 8080);
  auto server = [&]() -> sim::Task<void> {
    auto stream = co_await listener.accept();
    auto req = co_await http_read_request(*stream);
    EXPECT_TRUE(req.has_value());
    HttpResponse resp;
    resp.status = 200;
    resp.body = req->body;  // echo
    http_write_response(*stream, resp);
  };
  std::string echoed;
  auto client = [&]() -> sim::Task<void> {
    auto res = co_await tcp.connect(devA->id(), devB->id(), 8080);
    HttpRequest req;
    req.body = "ping-body";
    auto resp = co_await http_roundtrip(*res.value(), req);
    EXPECT_TRUE(resp.ok());
    echoed = resp.value().body;
  };
  sim::spawn(eng, server());
  sim::spawn(eng, client());
  eng.run();
  EXPECT_EQ(echoed, "ping-body");
}

}  // namespace
}  // namespace rfs::net
